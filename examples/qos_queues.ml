(* QoS queues, administered through flow files — a feature the paper's
   prototype explicitly lacked ("multiple tables and queues are not yet
   implemented", §8). A bulk-transfer flow is pinned to a 1 Mbps queue
   while interactive traffic rides the fast path; the rate limit shows
   up as queue drops, all visible from the file system.

     dune exec examples/qos_queues.exe *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet

let cred = Vfs.Cred.root

let () =
  let built = N.Topo_gen.linear ~hosts_per_switch:2 1 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let yfs = Yanc.Controller.yfs ctl in
  let sw = Option.get (N.Network.switch built.net 1L) in

  (* out-of-band queue provisioning, as on OF 1.0 hardware *)
  N.Sim_switch.add_queue sw ~port:2 ~queue_id:1 ~rate_mbps:1;
  Printf.printf "provisioned queue 1 on sw1/port_2 at 1 Mbps\n";

  (* policy, written as files: bulk (dst port 9999) -> slow queue;
     everything else -> plain forwarding *)
  (match
     Apps.Flow_pusher.push_config yfs ~cred
       "sw1 name=bulk-limited priority=200 match.dl_type=0x0800 \
        match.nw_proto=17 match.tp_dst=9999 action.0.enqueue=2:1\n\
        sw1 name=default priority=10 action.0.out=flood"
   with
  | Ok n -> Printf.printf "pushed %d flows (see flows/bulk-limited/action.0.enqueue)\n" n
  | Error e -> failwith e);
  Yanc.Controller.run_for ctl 0.3;

  (* offer 40 x 60KB bulk datagrams in one burst, plus a ping *)
  let h2 = Option.get (N.Network.host built.net "h2") in
  for i = 1 to 40 do
    N.Network.send_from_host built.net "h1"
      [ P.Builder.udp
          ~src_mac:(N.Topo_gen.host_mac 1)
          ~dst_mac:(N.Sim_host.mac h2)
          ~src_ip:(N.Topo_gen.host_ip 1) ~dst_ip:(N.Topo_gen.host_ip 2)
          ~src_port:(5000 + i) ~dst_port:9999
          (String.make 60_000 'b') ]
  done;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  ignore (Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> []));

  Printf.printf "\nbulk datagrams delivered: %d/40 (queue enforced the limit)\n"
    (List.length (N.Sim_host.received_udp h2));
  Printf.printf "interactive ping: %s (unaffected, rode the default flow)\n"
    (if N.Sim_host.ping_results h1 <> [] then "ok" else "FAILED");
  List.iter
    (fun (q : N.Sim_switch.queue_stats) ->
      Printf.printf "queue %d: rate=%dMbps tx=%Ld dropped=%Ld\n" q.queue_id
        q.rate_mbps q.tx_packets q.dropped)
    (N.Sim_switch.queue_stats sw ~port:2);
  print_endline "qos_queues done."
