(* §7.2: middlebox state as files. A 'firewall' is a set of flow entries
   on an edge switch; elastic scale-out is `cp -r`, draining is `rm -r`,
   and a full move is the Migrator's `mv` — "rather than custom
   protocols".

     dune exec examples/middlebox_migration.exe *)

module Y = Yancfs
module N = Netsim

let cred = Vfs.Cred.root

let hw_flows net dpid =
  match N.Network.switch net dpid with
  | Some sw -> (
    match N.Sim_switch.table sw 0 with
    | Some t -> N.Flow_table.length t
    | None -> 0)
  | None -> 0

let () =
  Printf.printf "network: 3 switches; sw1 runs the 'firewall middlebox'\n%!";
  let built = N.Topo_gen.linear 3 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;
  let yfs = Yanc.Controller.yfs ctl in

  (* the firewall's rule set *)
  let rules =
    "sw1 name=fw-no-telnet priority=900 match.dl_type=0x0800 match.nw_proto=6 \
     match.tp_dst=23 action.0.out=drop\n\
     sw1 name=fw-no-smb priority=900 match.dl_type=0x0800 match.nw_proto=6 \
     match.tp_dst=445 action.0.out=drop\n\
     sw1 name=fw-rate-dns priority=800 match.dl_type=0x0800 match.nw_proto=17 \
     match.tp_dst=53 action.0.out=controller:64"
  in
  (match Apps.Flow_pusher.push_config yfs ~cred rules with
  | Ok n -> Printf.printf "installed %d firewall rules on sw1\n" n
  | Error e -> failwith e);
  Yanc.Controller.run_for ctl 0.3;
  Printf.printf "hardware: sw1=%d sw2=%d sw3=%d rules\n"
    (hw_flows built.net 1L) (hw_flows built.net 2L) (hw_flows built.net 3L);

  (* scale OUT: copy the middlebox state to sw2 with cp -r *)
  Printf.printf "\nelastic scale-out: cp -r the rule directories to sw2\n";
  let sh = Shell.Env.create (Yanc.Controller.fs ctl) in
  List.iter
    (fun rule ->
      let cmd =
        Printf.sprintf "cp -r /net/switches/sw1/flows/%s /net/switches/sw2/flows/%s"
          rule rule
      in
      Printf.printf "$ %s\n" cmd;
      let r = Shell.Pipeline.run sh cmd in
      assert (r.Shell.Pipeline.code = 0))
    [ "fw-no-telnet"; "fw-no-smb"; "fw-rate-dns" ];
  Yanc.Controller.run_for ctl 0.3;
  Printf.printf "hardware: sw1=%d sw2=%d sw3=%d rules\n"
    (hw_flows built.net 1L) (hw_flows built.net 2L) (hw_flows built.net 3L);

  (* full MOVE to sw3 (e.g. the sw1 box is being serviced), using the
     library migrator, which can also remap ports *)
  Printf.printf "\nlive move: migrate sw1's middlebox state to sw3 (mv semantics)\n";
  (match Apps.Migrator.move_flows yfs ~cred ~src:"sw1" ~dst:"sw3" () with
  | Ok n -> Printf.printf "moved %d flow directories\n" n
  | Error e -> failwith e);
  Yanc.Controller.run_for ctl 0.3;
  Printf.printf "hardware: sw1=%d sw2=%d sw3=%d rules\n"
    (hw_flows built.net 1L) (hw_flows built.net 2L) (hw_flows built.net 3L);

  (* the firewall still fires: telnet from h1 must die at sw2/sw3 while
     ping passes (flood rules for basic connectivity) *)
  ignore
    (Apps.Flow_pusher.push_config yfs ~cred
       "* name=flood priority=10 action.0.out=flood");
  Yanc.Controller.run_for ctl 0.3;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 3) ~seq:1);
  let ping_ok =
    Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> [])
  in
  let h3 = Option.get (N.Network.host built.net "h3") in
  N.Sim_host.listen h3 23;
  let dst_mac = N.Topo_gen.host_mac 3 in
  N.Network.send_from_host built.net "h1"
    [ N.Sim_host.tcp_connect h1 ~dst_ip:(N.Topo_gen.host_ip 3) ~dst_mac
        ~src_port:40000 ~dst_port:23 ];
  let telnet_blocked =
    not
      (Yanc.Controller.run_until ~timeout:2. ctl (fun () ->
           N.Sim_host.tcp_established h1 <> []))
  in
  Printf.printf "\nafter migration: ping %s, telnet %s\n"
    (if ping_ok then "passes" else "FAILS")
    (if telnet_blocked then "blocked by the migrated firewall" else "LEAKED");
  print_endline "middlebox_migration done."
