(* The paper's §8 prototype at datacenter scale: LLDP topology daemon +
   reactive exact-match router on a k=4 fat tree. Every component
   interacts only through the file system.

     dune exec examples/reactive_router.exe *)

module N = Netsim

let () =
  Printf.printf "building a k=4 fat tree (20 switches, 16 hosts)...\n%!";
  let built = N.Topo_gen.fat_tree ~k:4 () in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let topo = Apps.Topology.create yfs in
  let router = Apps.Router.create yfs in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.add_app ctl (Apps.Router.app router);

  Printf.printf "running LLDP discovery...\n%!";
  Yanc.Controller.run_for ctl 3.0;
  Printf.printf "  %d fabric links discovered (ground truth: 32)\n"
    (List.length (Apps.Topology.links topo));

  let cost = Vfs.Fs.cost (Yanc.Controller.fs ctl) in
  let ping src dst_n =
    let h = Option.get (N.Network.host built.net src) in
    let seq = List.length (N.Sim_host.ping_results h) + 1 in
    let crossings_before = Vfs.Cost.crossings cost in
    N.Network.send_from_host built.net src
      (N.Sim_host.ping h ~now:(N.Network.now built.net)
         ~dst:(N.Topo_gen.host_ip dst_n) ~seq);
    let ok =
      Yanc.Controller.run_until ctl (fun () ->
          List.length (N.Sim_host.ping_results h) >= seq)
    in
    let rtt =
      match List.rev (N.Sim_host.ping_results h) with
      | r :: _ -> r.N.Sim_host.rtt
      | [] -> nan
    in
    Printf.printf "  %-4s -> h%-2d : %-4s rtt=%6.2f ms  syscalls=%d\n" src dst_n
      (if ok then "ok" else "FAIL")
      (rtt *. 1000.)
      (Vfs.Cost.crossings cost - crossings_before)
  in

  Printf.printf "\nfirst packets (reactive path setup through packet-ins):\n";
  ping "h1" 2;   (* same edge switch *)
  ping "h1" 3;   (* same pod *)
  ping "h1" 16;  (* across the core *)
  ping "h8" 9;   (* pod 2 -> pod 3 *)

  Printf.printf "\nsame flows again (pure hardware, no controller involvement):\n";
  ping "h1" 2;
  ping "h1" 16;

  Printf.printf "\nrouter state: %d paths installed, %d hosts tracked\n"
    (Apps.Router.paths_installed router)
    (Apps.Router.hosts_tracked router);

  (* the hosts directory is a live inventory *)
  let sh = Shell.Env.create (Yanc.Controller.fs ctl) in
  let r = Shell.Pipeline.run sh "ls /net/hosts | wc -l" in
  Printf.printf "hosts published under /net/hosts: %s" r.Shell.Pipeline.out;

  let delivered, dropped = N.Network.stats built.net in
  Printf.printf "data plane: %d frames delivered, %d dropped\n" delivered dropped;
  print_endline "reactive_router done."
