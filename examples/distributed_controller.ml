(* The paper's §6 proof of concept, end to end: layer a distributed file
   system over the yanc tree and you have a distributed controller.
   Three controller nodes share state; the driver lives on node A; an
   administrator on node C pushes flows; a partition and heal shows the
   consistency machinery.

     dune exec examples/distributed_controller.exe *)

module Y = Yancfs
module N = Netsim
module Fs = Vfs.Fs

let cred = Vfs.Cred.root

let () =
  Printf.printf "network: 2 switches, 2 hosts; controller cluster: 3 nodes\n%!";
  let built = N.Topo_gen.linear 2 in
  let cluster =
    Dfs.Cluster.create ~consistency:Dfs.Consistency.Sequential ~rtt:0.001 ~n:3 ()
  in
  let node name i = (name, Y.Yanc_fs.create (Dfs.Cluster.node cluster i)) in
  let _, yfs_a = node "A" 0 in
  let _, yfs_b = node "B" 1 in
  let _, yfs_c = node "C" 2 in

  (* only node A talks to the switches *)
  let mgr = Driver.Manager.create ~yfs:yfs_a ~net:built.net () in
  Driver.Manager.attach mgr ~dpid:1L ~version:Driver.Manager.V10;
  Driver.Manager.attach mgr ~dpid:2L ~version:Driver.Manager.V13;
  Driver.Manager.run_control mgr ~now:0.;

  Printf.printf "\nafter the handshake, every node sees the switches:\n";
  List.iter
    (fun (name, yfs) ->
      Printf.printf "  node %s: /net/switches = [%s]\n" name
        (String.concat "; " (Y.Yanc_fs.switch_names yfs)))
    [ "A", yfs_a; "B", yfs_b; "C", yfs_c ];

  Printf.printf "\nan admin on node C pushes flood flows with the shell:\n";
  let sh_c = Shell.Env.create (Dfs.Cluster.node cluster 2) in
  let script =
    "mkdir /net/switches/sw1/flows/flood /net/switches/sw2/flows/flood\n\
     echo flood > /net/switches/sw1/flows/flood/action.0.out\n\
     echo flood > /net/switches/sw2/flows/flood/action.0.out\n\
     echo 1 > /net/switches/sw1/flows/flood/version\n\
     echo 1 > /net/switches/sw2/flows/flood/version"
  in
  print_endline script;
  let r = Shell.Pipeline.run_script sh_c script in
  assert (r.Shell.Pipeline.code = 0);

  (* node A's driver picks the replicated writes up *)
  Driver.Manager.run_control mgr ~now:1.;
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:0. ~dst:(N.Topo_gen.host_ip 2) ~seq:1);
  N.Network.run built.net;
  Printf.printf "\nping h1 -> h2 through flows written on node C: %s\n"
    (if N.Sim_host.ping_results h1 <> [] then "ok" else "FAILED");

  (* counters written by node A's driver are visible on node B *)
  Driver.Manager.run_control mgr ~now:6.;
  (match
     Fs.read_file (Dfs.Cluster.node cluster 1) ~cred
       (Vfs.Path.child
          (Y.Layout.flow_counters ~root:(Y.Yanc_fs.root yfs_b) ~switch:"sw1" "flood")
          "packets")
   with
  | Ok v -> Printf.printf "node B reads sw1 flood counters: %s packets\n" (String.trim v)
  | Error e -> Printf.printf "node B counters: %s\n" (Vfs.Errno.to_string e));

  (* ---- partition ------------------------------------------------------ *)
  Printf.printf "\npartitioning node C away from the cluster...\n";
  Dfs.Cluster.set_partitioned cluster 2 true;
  let r =
    Shell.Pipeline.run sh_c
      "mkdir /net/switches/sw1/flows/during && echo 1 > /net/switches/sw1/flows/during/version"
  in
  assert (r.Shell.Pipeline.code = 0);
  Printf.printf "  node C wrote a flow while cut off; node A sees %d flows on sw1\n"
    (List.length (Y.Yanc_fs.flow_names yfs_a ~cred "sw1"));
  Printf.printf "healing the partition...\n";
  Dfs.Cluster.set_partitioned cluster 2 false;
  Printf.printf "  after heal, node A sees %d flows on sw1: [%s]\n"
    (List.length (Y.Yanc_fs.flow_names yfs_a ~cred "sw1"))
    (String.concat "; " (Y.Yanc_fs.flow_names yfs_a ~cred "sw1"));
  Driver.Manager.run_control mgr ~now:7.;

  (* the replication counters through the telemetry registry — the same
     dfs.* series a full controller serves at /yanc/.proc/metrics *)
  let reg = Telemetry.Registry.create () in
  Dfs.Cluster.register cluster reg;
  Printf.printf "\ncluster metrics (the registry's dfs.* series):\n%s"
    (Telemetry.Registry.render (Telemetry.Registry.snapshot reg));
  print_endline "distributed_controller done."
