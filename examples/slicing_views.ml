(* The paper's §4.2 scenario, verbatim: "slice traffic on port 22 out of
   the network, and then create a virtual single-big-switch topology" —
   two stacked views with an isolated tenant on top (§5.3).

     dune exec examples/slicing_views.exe *)

module Y = Yancfs
module N = Netsim
module OF = Openflow
module P = Packet

let cred = Vfs.Cred.root

let () =
  Printf.printf "underlay: 3 switches in a line, hosts at both ends\n%!";
  let built = N.Topo_gen.linear 3 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let topo = Apps.Topology.create yfs in
  Yanc.Controller.add_app ctl (Apps.Topology.app topo);
  Yanc.Controller.run_for ctl 3.0;

  (* -------- layer 1: slice tcp/22 out of the network ---------------- *)
  Printf.printf "\nlayer 1: an ssh slice of all three switches\n";
  let ssh =
    { OF.Of_match.any with
      OF.Of_match.dl_type = Some 0x0800; nw_proto = Some 6; tp_dst = Some 22 }
  in
  let slicer =
    Result.get_ok
      (Views.Slicer.create ~master:yfs
         { Views.Slicer.view = "ssh";
           switches = [ "sw1", []; "sw2", []; "sw3", [] ];
           flowspace = ssh; priority_cap = 30000 })
  in
  Yanc.Controller.add_app ctl (Views.Slicer.app slicer);
  Yanc.Controller.run_for ctl 0.5;

  (* -------- layer 2: one big switch on top of the slice -------------- *)
  Printf.printf "layer 2: a single-big-switch view stacked on the slice\n";
  let bigsw =
    Result.get_ok
      (Views.Big_switch.create ~master:(Views.Slicer.view_fs slicer)
         ~view:"big" ())
  in
  Yanc.Controller.add_app ctl (Views.Big_switch.app bigsw);
  Yanc.Controller.run_for ctl 0.5;
  Printf.printf "  virtual ports: %s\n"
    (String.concat ", "
       (List.map
          (fun (v, (sw, p)) -> Printf.sprintf "%d->%s/%d" v sw p)
          (Views.Big_switch.port_map bigsw)));

  (* -------- the tenant -------------------------------------------------- *)
  Printf.printf "\ntenant: writes ONE flow on the big switch, in its own view\n";
  let tenant_fs = Views.Big_switch.view_fs bigsw in
  (match
     Y.Yanc_fs.create_flow tenant_fs ~cred ~switch:"big0" ~name:"ssh-to-h3"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with
             OF.Of_match.dl_type = Some 0x0800; nw_proto = Some 6 };
         actions = [ OF.Action.Output (OF.Action.Physical 2) ];
         priority = 500 }
   with
  | Ok () -> ()
  | Error e -> failwith (Vfs.Errno.to_string e));
  Yanc.Controller.run_for ctl 0.5;

  Printf.printf "the stack compiled it to the physical network:\n";
  List.iter
    (fun sw ->
      List.iter
        (fun name ->
          match Y.Yanc_fs.read_flow yfs ~cred ~switch:sw name with
          | Ok flow ->
            Printf.printf "  %s/%s: %s -> %s\n" sw name
              (Format.asprintf "%a" OF.Of_match.pp flow.Y.Flowdir.of_match)
              (Format.asprintf "%a" OF.Action.pp_list flow.Y.Flowdir.actions)
          | Error _ -> ())
        (Y.Yanc_fs.flow_names yfs ~cred sw))
    (Y.Yanc_fs.switch_names yfs);

  (* tenant flows stay inside the flowspace: tp_dst=22 got added by the
     slicer even though the tenant matched all tcp *)
  Printf.printf
    "\nnote: the slicer forced tp_dst=22 onto the tenant's tcp-wide match.\n";

  (* an escape attempt *)
  Printf.printf "\ntenant tries to capture ALL traffic (outside its slice):\n";
  ignore
    (Y.Yanc_fs.create_flow tenant_fs ~cred ~switch:"big0" ~name:"grab-all"
       { Y.Flowdir.default with
         Y.Flowdir.of_match =
           { OF.Of_match.any with OF.Of_match.dl_type = Some 0x0806 };
         actions = [ OF.Action.Output (OF.Action.Physical 1) ] });
  Yanc.Controller.run_for ctl 0.5;
  let err_path =
    Vfs.Path.child
      (Y.Layout.flow
         ~root:(Y.Yanc_fs.root (Views.Slicer.view_fs slicer))
         ~switch:"sw1" "v.big.grab-all.sw1")
      "error"
  in
  ignore err_path;
  (* the big switch compiled it into the slice view; the slicer rejected
     those flows there: *)
  let slice_fs = Views.Slicer.view_fs slicer in
  List.iter
    (fun sw ->
      List.iter
        (fun name ->
          let dir = Y.Layout.flow ~root:(Y.Yanc_fs.root slice_fs) ~switch:sw name in
          match
            Vfs.Fs.read_file (Y.Yanc_fs.fs slice_fs) ~cred
              (Vfs.Path.child dir "error")
          with
          | Ok msg -> Printf.printf "  %s/%s rejected: %s\n" sw name (String.trim msg)
          | Error _ -> ())
        (Y.Yanc_fs.flow_names slice_fs ~cred sw))
    (Y.Yanc_fs.switch_names slice_fs);

  (* -------- namespace isolation ------------------------------------------ *)
  Printf.printf "\nnamespaces (paper 5.3): tenants cannot see each other\n";
  let alice = Vfs.Cred.make ~uid:1001 ~gid:1001 () in
  let mallory = Vfs.Cred.make ~uid:6666 ~gid:6666 () in
  ignore (Views.Namespace.provision yfs ~view:"alice-net" ~owner:alice);
  (match Views.Namespace.enter yfs ~cred:mallory ~view:"alice-net" with
  | Error e ->
    Printf.printf "  mallory entering alice-net: %s (good)\n" (Vfs.Errno.message e)
  | Ok _ -> Printf.printf "  ISOLATION FAILURE\n");
  (match Views.Namespace.enter yfs ~cred:alice ~view:"alice-net" with
  | Ok _ -> Printf.printf "  alice entering alice-net: ok\n"
  | Error e -> Printf.printf "  unexpected: %s\n" (Vfs.Errno.to_string e));
  print_endline "\nslicing_views done."
