(* Quickstart: bring up a 3-switch network, administer it entirely from
   the shell — exactly the workflow the paper's §5.4 advertises.

     dune exec examples/quickstart.exe *)

module N = Netsim

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let sh env line =
  Printf.printf "$ %s\n" line;
  let r = Shell.Pipeline.run env line in
  print_string r.Shell.Pipeline.out;
  if r.Shell.Pipeline.err <> "" then prerr_string r.Shell.Pipeline.err;
  r.Shell.Pipeline.code

let () =
  step "boot: 3 switches in a line, one host per switch";
  let built = N.Topo_gen.linear 3 in
  let ctl = Yanc.Controller.create ~net:built.net () in
  Yanc.Controller.attach_switches ctl;
  Yanc.Controller.run_for ctl 0.3;

  let env = Shell.Env.create (Yanc.Controller.fs ctl) in

  step "the network is a file system (paper Figure 2)";
  ignore (sh env "tree /net");

  step "a quick overview of the switches (paper 5.4)";
  ignore (sh env "ls -l /net/switches");
  ignore (sh env "cat /net/switches/sw1/id /net/switches/sw1/protocol");

  step "the static flow pusher is a shell script (paper 8)";
  let pusher =
    String.concat "\n"
      (List.concat_map
         (fun sw ->
           [ Printf.sprintf "mkdir /net/switches/%s/flows/flood" sw;
             Printf.sprintf "echo flood > /net/switches/%s/flows/flood/action.0.out" sw;
             Printf.sprintf "echo 10 > /net/switches/%s/flows/flood/priority" sw;
             Printf.sprintf "echo 1 > /net/switches/%s/flows/flood/version" sw ])
         [ "sw1"; "sw2"; "sw3" ])
  in
  print_string (pusher ^ "\n");
  let r = Shell.Pipeline.run_script env pusher in
  assert (r.Shell.Pipeline.code = 0);
  Yanc.Controller.run_for ctl 0.3;

  step "ping h1 -> h3 across all three switches";
  let h1 = Option.get (N.Network.host built.net "h1") in
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 3) ~seq:1);
  let ok =
    Yanc.Controller.run_until ctl (fun () -> N.Sim_host.ping_results h1 <> [])
  in
  Printf.printf "ping: %s\n"
    (if ok then "64 bytes from 10.0.0.3: icmp_seq=1  (OK)" else "FAILED");

  step "find every flow that floods (paper's find|grep one-liner)";
  ignore (sh env "find /net -name action.0.out -exec grep flood");

  step "live counters, read with cat";
  Yanc.Controller.run_for ctl 6.0;
  ignore (sh env "cat /net/switches/sw2/flows/flood/counters/packets");

  step "take a port down with echo (paper 3.1), watch the ping fail";
  ignore (sh env "echo 1 > /net/switches/sw2/ports/port_1/config.port_down");
  Yanc.Controller.run_for ctl 0.3;
  N.Network.send_from_host built.net "h1"
    (N.Sim_host.ping h1 ~now:(N.Network.now built.net)
       ~dst:(N.Topo_gen.host_ip 3) ~seq:2);
  let blocked =
    not
      (Yanc.Controller.run_until ~timeout:2. ctl (fun () ->
           List.length (N.Sim_host.ping_results h1) >= 2))
  in
  Printf.printf "ping while port down: %s\n"
    (if blocked then "blocked (expected)" else "unexpectedly succeeded");
  ignore (sh env "echo 0 > /net/switches/sw2/ports/port_1/config.port_down");
  Yanc.Controller.run_for ctl 0.3;

  step "syscall accounting (paper 8.1)";
  Printf.printf "this session cost %s\n"
    (Format.asprintf "%a" Vfs.Cost.pp (Vfs.Fs.cost (Yanc.Controller.fs ctl)));
  print_endline "\nquickstart done."
