(* yancctl: build a simulated network, run the yanc controller over it,
   and administer it with shell one-liners — the whole paper from one
   command line.

   Examples:
     yancctl run --topo linear:3 --apps topology,router --ping h1:h3
     yancctl run --topo fat-tree:4 --apps topology,router --ping h1:h16 \
       --exec 'ls -l /net/switches' --exec 'find /net -name peer'
     yancctl tree --topo star:4
     yancctl shell --topo linear:2 --script pusher.sh *)

module N = Netsim

let setup_logs () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning)

(* --- topology specs: "<kind>:<n>" ---------------------------------------------- *)

(* A spec parses to a builder awaiting the datapath strategy (its own
   flag), so the two compose regardless of option order. *)
let parse_topo spec =
  let fail () = Error (`Msg (Printf.sprintf "unknown topology %S" spec)) in
  match String.split_on_char ':' spec with
  | [ "linear"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (fun strategy -> N.Topo_gen.linear ~strategy n)
    | _ -> fail ())
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 3 -> Ok (fun strategy -> N.Topo_gen.ring ~strategy n)
    | _ -> fail ())
  | [ "star"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 ->
      Ok (fun strategy -> N.Topo_gen.star ~leaves:n ~strategy ())
    | _ -> fail ())
  | [ "tree"; spec2 ] -> (
    match String.split_on_char 'x' spec2 with
    | [ f; d ] -> (
      match int_of_string_opt f, int_of_string_opt d with
      | Some fanout, Some depth ->
        Ok (fun strategy -> N.Topo_gen.tree ~fanout ~depth ~strategy ())
      | _ -> fail ())
    | _ -> fail ())
  | [ "fat-tree"; k ] -> (
    match int_of_string_opt k with
    | Some k when k mod 2 = 0 ->
      Ok (fun strategy -> N.Topo_gen.fat_tree ~k ~strategy ())
    | _ -> fail ())
  | [ "random"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 ->
      Ok (fun strategy -> N.Topo_gen.random ~extra_links:(n / 2) ~strategy n)
    | _ -> fail ())
  | _ -> fail ()

let topo_conv =
  Cmdliner.Arg.conv
    ( (fun s -> parse_topo s),
      fun ppf _ -> Format.pp_print_string ppf "<topology>" )

(* --- controller assembly --------------------------------------------------------- *)

let build ~topo ~of13 ~apps =
  let ctl = Yanc.Controller.create ~net:topo.N.Topo_gen.net () in
  Yanc.Controller.attach_switches
    ~version:(if of13 then Yanc.Controller.V13 else Yanc.Controller.V10)
    ctl;
  let yfs = Yanc.Controller.yfs ctl in
  let cred = Vfs.Cred.root in
  List.iter
    (fun app ->
      match app with
      | "topology" ->
        Yanc.Controller.add_app ctl (Apps.Topology.app (Apps.Topology.create yfs))
      | "router" ->
        Yanc.Controller.add_app ctl (Apps.Router.app (Apps.Router.create yfs))
      | "learning" ->
        Yanc.Controller.add_app ctl
          (Apps.Learning_switch.app (Apps.Learning_switch.create yfs))
      | "arpd" ->
        Yanc.Controller.add_app ctl (Apps.Arp_daemon.app (Apps.Arp_daemon.create yfs))
      | "switch-watcher" ->
        Yanc.Controller.add_app ctl
          (Apps.Switch_watcher.app (Apps.Switch_watcher.create yfs))
      | "auditor" ->
        (* change-gated: quiet periods cost an event drain, not a walk *)
        Yanc.Controller.add_app ctl
          (Apps.Auditor.watched_app yfs ~cred
             ~out:(Vfs.Path.of_string_exn "/var/log/audit") ~period:5.)
      | "flow-watcher" ->
        Yanc.Controller.add_app ctl
          (Apps.Flow_pusher.watching yfs ~cred
             ~path:(Vfs.Path.of_string_exn "/etc/flows"))
      | "accounting" ->
        Yanc.Controller.add_app ctl
          (Apps.Accounting.app yfs ~cred
             ~dir:(Vfs.Path.of_string_exn "/var/accounting") ~period:5.)
      | other -> Printf.eprintf "warning: unknown app %S (skipped)\n" other)
    apps;
  ctl

let do_ping ctl topo spec =
  match String.split_on_char ':' spec with
  | [ src; dst ] when String.length dst > 1 && dst.[0] = 'h' -> (
    let net = topo.N.Topo_gen.net in
    match
      N.Network.host net src, int_of_string_opt (String.sub dst 1 (String.length dst - 1))
    with
    | Some h, Some dst_n ->
      let seq = List.length (N.Sim_host.ping_results h) + 1 in
      N.Network.send_from_host net src
        (N.Sim_host.ping h ~now:(N.Network.now net) ~dst:(N.Topo_gen.host_ip dst_n) ~seq);
      let ok =
        (* a fine idle tick keeps the measured RTT close to the
           data-plane latency rather than the scheduler quantum *)
        Yanc.Controller.run_until ~tick:0.002 ctl (fun () ->
            List.length (N.Sim_host.ping_results h) >= seq)
      in
      if ok then
        let r = List.nth (N.Sim_host.ping_results h) (seq - 1) in
        Printf.printf "PING %s -> %s: seq=%d rtt=%.3f ms\n" src dst seq
          (r.N.Sim_host.rtt *. 1000.)
      else Printf.printf "PING %s -> %s: TIMEOUT\n" src dst
    | _ -> Printf.eprintf "bad ping spec %S (want hX:hY)\n" spec)
  | _ -> Printf.eprintf "bad ping spec %S (want hX:hY)\n" spec

(* --- the one counter printer --------------------------------------------------------- *)

(* Every command that reports counters goes through the registry
   snapshot — the same data /yanc/.proc/metrics serves — filtered by
   name prefix. One formatter, not one per command. *)
let print_metrics ?(prefixes = []) ctl =
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let snap =
    Telemetry.Registry.snapshot
      (Telemetry.registry (Yanc.Controller.telemetry ctl))
  in
  List.iter
    (fun (name, v) ->
      if prefixes = [] || List.exists (fun p -> starts_with p name) prefixes
      then Printf.printf "%s %s\n" name (Telemetry.Registry.render_value v))
    (Telemetry.Registry.entries snap)

(* Per-switch control-channel health. Returns true when any driver has
   written a switch off as dead — callers turn that into a nonzero exit
   so scripts and monitors catch it without parsing the table. *)
let print_link_status ctl =
  let mgr = Yanc.Controller.manager ctl in
  let statuses = Driver.Manager.statuses mgr in
  if statuses <> [] then begin
    Printf.printf "%-8s %-12s %11s %7s %7s %10s\n" "SWITCH" "STATUS"
      "DISCONNECTS" "RETRIES" "RESYNCS" "KEEPALIVES";
    List.iter
      (fun (dpid, status) ->
        let name =
          match Driver.Manager.switch_name mgr ~dpid with
          | Some n -> n
          | None -> Printf.sprintf "dpid:%Ld" dpid
        in
        match Driver.Manager.link_counters mgr ~dpid with
        | None -> ()
        | Some (c : Driver.Driver_intf.link_counters) ->
          Printf.printf "%-8s %-12s %11d %7d %7d %10d\n" name
            (Driver.Driver_intf.status_to_string status)
            c.disconnects c.retries c.resyncs c.keepalives_sent)
      statuses;
    print_newline ()
  end;
  List.exists (fun (_, s) -> s = Driver.Driver_intf.Dead) statuses

(* --- commands ---------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let run_cmd config_file topo datapath of13 apps duration execs pings stats =
  setup_logs ();
  (* a config file, when given, takes precedence over the flags *)
  let topo, of13, apps, duration, flows =
    match config_file with
    | None -> Ok topo, of13, apps, duration, []
    | Some path -> (
      match Yanc.Config.parse (read_file path) with
      | Error e ->
        Printf.eprintf "yancctl: %s: %s\n" path e;
        exit 2
      | Ok c ->
        parse_topo c.Yanc.Config.topology, c.of13, c.apps, c.duration, c.flows )
  in
  let topo =
    match topo with
    | Ok f -> f datapath
    | Error (`Msg e) ->
      Printf.eprintf "yancctl: %s\n" e;
      exit 2
  in
  let ctl = build ~topo ~of13 ~apps in
  Yanc.Controller.run_for ctl 0.3;
  (if flows <> [] then
     match
       Apps.Flow_pusher.push_config (Yanc.Controller.yfs ctl) ~cred:Vfs.Cred.root
         (String.concat "\n" flows)
     with
     | Ok n -> Printf.printf "pushed %d static flows\n" n
     | Error e -> Printf.eprintf "yancctl: flow push: %s\n" e);
  Yanc.Controller.run_for ctl duration;
  let env = Shell.Env.create (Yanc.Controller.fs ctl) in
  List.iter (do_ping ctl topo) pings;
  List.iter
    (fun line ->
      Printf.printf "$ %s\n" line;
      let r = Shell.Pipeline.run env line in
      print_string r.Shell.Pipeline.out;
      prerr_string r.Shell.Pipeline.err)
    execs;
  if stats then
    print_metrics ctl
      ~prefixes:[ "net."; "vfs."; "fs."; "fsnotify."; "datapath." ];
  0

let tree_cmd topo datapath of13 =
  setup_logs ();
  let ctl = build ~topo:(topo datapath) ~of13 ~apps:[ "topology" ] in
  Yanc.Controller.run_for ctl 3.0;
  print_string (Yancfs.Yanc_fs.tree (Yanc.Controller.yfs ctl));
  0

let counters_cmd topo datapath of13 apps duration switch =
  setup_logs ();
  let ctl = build ~topo:(topo datapath) ~of13 ~apps in
  Yanc.Controller.run_for ctl duration;
  let yfs = Yanc.Controller.yfs ctl in
  let fp = Libyanc.Fastpath.create yfs in
  let switches =
    match switch with
    | Some s -> [ s ]
    | None -> Yancfs.Yanc_fs.switch_names yfs
  in
  let code = ref 0 in
  List.iter
    (fun sw ->
      match Libyanc.Fastpath.read_flow_counters fp ~switch:sw with
      | Ok rows ->
        Printf.printf "%s: %d flows reporting\n" sw (List.length rows);
        List.iter
          (fun (flow, packets, bytes) ->
            Printf.printf "  %-24s %10Ld pkts %12Ld bytes\n" flow packets bytes)
          rows
      | Error e ->
        (* The errno matters here: an unknown switch (enoent) and a
           permission problem (eacces) print differently and fail. *)
        code := 1;
        Printf.eprintf "yancctl: counters: %s: %s\n" sw (Vfs.Errno.message e))
    switches;
  let any_dead = print_link_status ctl in
  if any_dead then begin
    Printf.eprintf "yancctl: counters: switch control channel dead\n";
    code := 1
  end;
  print_metrics ctl ~prefixes:[ "fsnotify."; "datapath."; "driver." ];
  !code

let top_cmd topo datapath of13 apps duration =
  setup_logs ();
  let ctl = build ~topo:(topo datapath) ~of13 ~apps in
  Yanc.Controller.run_for ctl duration;
  Printf.printf "yanc top — %.2fs simulated\n\n" (Yanc.Controller.now ctl);
  Printf.printf "%-16s %-10s %8s %10s %10s\n" "APP" "SCHEDULE" "ITER"
    "CPU_MS" "LAST_RUN";
  let by_runtime =
    List.sort
      (fun (_, (a : Yanc.Scheduler.app_stats)) (_, b) ->
        compare b.Yanc.Scheduler.runtime_ns a.Yanc.Scheduler.runtime_ns)
      (Yanc.Scheduler.stats (Yanc.Controller.scheduler ctl))
  in
  List.iter
    (fun (name, (s : Yanc.Scheduler.app_stats)) ->
      Printf.printf "%-16s %-10s %8d %10.3f %10s\n" name s.schedule
        s.iterations
        (float_of_int s.runtime_ns /. 1e6)
        (if s.last_run = neg_infinity then "never"
         else Printf.sprintf "%.2f" s.last_run))
    by_runtime;
  print_newline ();
  let any_dead = print_link_status ctl in
  (* The registry itself, read the way any application would read it:
     cat(1) on the proc file, through the shell. *)
  let env = Shell.Env.create (Yanc.Controller.fs ctl) in
  let r = Shell.Pipeline.run env "cat /yanc/.proc/metrics" in
  print_string r.Shell.Pipeline.out;
  prerr_string r.Shell.Pipeline.err;
  if any_dead then begin
    Printf.eprintf "yancctl: top: switch control channel dead\n";
    1
  end
  else r.Shell.Pipeline.code

(* --- cluster: sharded multi-node controller status ----------------------------- *)

let cluster_cmd topo datapath of13 nodes kill duration =
  setup_logs ();
  let built = topo datapath in
  let c =
    Yanc.Cluster.create
      ~version:(if of13 then Yanc.Controller.V13 else Yanc.Controller.V10)
      ~n:nodes ~net:built.N.Topo_gen.net ()
  in
  let settled =
    Yanc.Cluster.run_until ~tick:0.01 c (fun () -> Yanc.Cluster.converged c)
  in
  (match kill with
  | Some i when i >= 0 && i < Yanc.Cluster.size c ->
    Yanc.Cluster.kill c i;
    (* survivors need the lease to expire before they take over *)
    ignore
      (Yanc.Cluster.run_until ~tick:0.01 c (fun () ->
           Yanc.Cluster.converged c))
  | Some i ->
    Printf.eprintf "yancctl: cluster: no node %d (have %d)\n" i
      (Yanc.Cluster.size c)
  | None -> ());
  Yanc.Cluster.run_for ~tick:0.01 c duration;
  let now = N.Network.now (Yanc.Cluster.net c) in
  let dfs = Yanc.Cluster.dfs c in
  let dpids = built.N.Topo_gen.dpids in
  Printf.printf "cluster: %d node(s), %d switches, %.2fs simulated\n\n"
    (Yanc.Cluster.size c) (List.length dpids) now;
  Printf.printf "%-8s %-6s %10s %9s %9s %10s\n" "NODE" "STATE" "LEASE_S"
    "SWITCHES" "INSTALLS" "TAKEOVERS";
  (* Leases as the survivors see them: read from the first live node's
     replica, the same files the reconcile beat derives membership from. *)
  let viewer =
    match Yanc.Cluster.live_indexes c with i :: _ -> i | [] -> 0
  in
  let fs = Dfs.Cluster.node dfs viewer in
  List.iter
    (fun i ->
      let name = Yanc.Cluster.name_of c i in
      let lease =
        match
          Vfs.Fs.read_file fs ~cred:Vfs.Cred.root
            (Yancfs.Layout.cluster_lease name)
        with
        | Ok data -> (
          match float_of_string_opt (String.trim data) with
          | Some expiry -> Printf.sprintf "%+.2f" (expiry -. now)
          | None -> "?")
        | Error _ -> "-"
      in
      let attached =
        (* a dead node's manager is frozen state, not ownership *)
        if Yanc.Cluster.alive c i then
          string_of_int
            (List.length
               (Driver.Manager.attached
                  (Yanc.Controller.manager (Yanc.Cluster.controller c i))))
        else "-"
      in
      Printf.printf "%-8s %-6s %10s %9s %9d %10d\n" name
        (if Yanc.Cluster.alive c i then "live" else "dead")
        lease attached
        (Yanc.Cluster.node_installs c i)
        (Yanc.Cluster.takeovers c i))
    (List.init (Yanc.Cluster.size c) Fun.id);
  let unowned = Yanc.Cluster.unowned c in
  Printf.printf "\nshards: %d owned, %d unowned%s\n"
    (List.length dpids - List.length unowned)
    (List.length unowned)
    (if unowned = [] then ""
     else
       Printf.sprintf " (%s)"
         (String.concat ", " (List.map Int64.to_string unowned)));
  if not settled then
    Printf.eprintf "yancctl: cluster: boot did not converge\n";
  if unowned <> [] || not settled then 1 else 0

(* --- observability: cluster trace, health, blackbox ---------------------------- *)

let boot_cluster ~built ~of13 ~nodes =
  let c =
    Yanc.Cluster.create
      ~version:(if of13 then Yanc.Controller.V13 else Yanc.Controller.V10)
      ~n:nodes ~net:built.N.Topo_gen.net ()
  in
  if
    not
      (Yanc.Cluster.run_until ~tick:0.01 c (fun () -> Yanc.Cluster.converged c))
  then Printf.eprintf "yancctl: cluster boot did not converge\n";
  c

let node_index_of_name c name =
  let rec go i =
    if i >= Yanc.Cluster.size c then None
    else if Yanc.Cluster.name_of c i = name then Some i
    else go (i + 1)
  in
  go 0

let list_nodes c =
  Printf.eprintf "nodes:\n";
  List.iter
    (fun i ->
      Printf.eprintf "  %s (%s)\n" (Yanc.Cluster.name_of c i)
        (if Yanc.Cluster.alive c i then "live" else "dead"))
    (List.init (Yanc.Cluster.size c) Fun.id)

(* A node's proc files are generators on its own replica — read them
   through that node's fs, exactly where its processes would. *)
let read_node_proc c i file =
  let proc = Yancfs.Layout.node_proc_root (Yanc.Cluster.name_of c i) in
  Vfs.Fs.read_file
    (Yanc.Controller.fs (Yanc.Cluster.controller c i))
    ~cred:Vfs.Cred.root (file ~proc)

(* One cross-node write, traced from the client side: create a flow on
   node 0's replica for a switch owned elsewhere, so the span tree
   crosses the op-log — yancctl.flow_write → dfs.forward → dfs.apply on
   the owner → driver.flow_mod → switch.install — under ONE trace id
   visible in two nodes' rings. *)
let traced_cross_write c built =
  let dpid =
    match
      List.find_opt
        (fun d -> Yanc.Cluster.owner_index c d <> Some 0)
        built.N.Topo_gen.dpids
    with
    | Some d -> d
    | None -> List.hd built.N.Topo_gen.dpids
  in
  let swname = Yancfs.Yanc_fs.switch_name_of_dpid dpid in
  let ctl0 = Yanc.Cluster.controller c 0 in
  let tr = Telemetry.tracer (Yanc.Controller.telemetry ctl0) in
  ignore (Telemetry.Tracer.fresh tr);
  Fun.protect
    ~finally:(fun () -> Telemetry.Tracer.clear tr)
    (fun () ->
      Telemetry.Tracer.span tr ~stage:"yancctl.flow_write" (fun () ->
          Telemetry.Tracer.stamp tr
            (Yancfs.Layout.trace_key_flow ~switch:swname "ctl0");
          let flow =
            { Yancfs.Flowdir.default with
              Yancfs.Flowdir.of_match =
                { Openflow.Of_match.any with Openflow.Of_match.in_port = Some 1 };
              actions = [ Openflow.Action.Output (Openflow.Action.Physical 2) ];
              priority = 77 }
          in
          match
            Yancfs.Yanc_fs.create_flow (Yanc.Controller.yfs ctl0)
              ~cred:Vfs.Cred.root ~switch:swname ~name:"ctl0" flow
          with
          | Ok () -> ()
          | Error e ->
            Printf.eprintf "yancctl: trace: create_flow: %s\n"
              (Vfs.Errno.message e)))

(* The per-stage table over the fleet: merged rollup entries, so a
   stage's p99 is the percentile of the union of every node's spans. *)
let print_cluster_stage_table c =
  let entries = Telemetry.Registry.entries (Yanc.Cluster.rollup_snapshot c) in
  let has_suffix s suf =
    let ls = String.length s and lf = String.length suf in
    ls > lf && String.sub s (ls - lf) lf = suf
  in
  let stages =
    List.filter_map
      (fun (name, v) ->
        if
          String.length name > 12
          && String.sub name 0 6 = "trace."
          && has_suffix name ".count"
        then Some (String.sub name 6 (String.length name - 12), v)
        else None)
      entries
  in
  let get stage suf =
    Option.value ~default:0.
      (List.assoc_opt (Printf.sprintf "trace.%s.%s" stage suf) entries)
  in
  let stages =
    List.sort
      (fun (a, _) (b, _) -> compare (get a "p50") (get b "p50"))
      stages
  in
  Printf.printf "%-20s %8s %12s %12s %12s\n" "STAGE" "SPANS" "P50_MS"
    "P99_MS" "MAX_MS";
  List.iter
    (fun (stage, count) ->
      Printf.printf "%-20s %8.0f %12.4f %12.4f %12.4f\n" stage count
        (get stage "p50" *. 1e3)
        (get stage "p99" *. 1e3)
        (get stage "max" *. 1e3))
    stages

let trace_cluster built ~of13 ~nodes ~duration ~node_name =
  let c = boot_cluster ~built ~of13 ~nodes in
  traced_cross_write c built;
  Yanc.Cluster.run_for ~tick:0.01 c (max 0.5 duration);
  let cat_pipe i =
    match read_node_proc c i Yancfs.Layout.proc_trace_pipe with
    | Ok data -> print_string data
    | Error e -> Printf.eprintf "yancctl: trace: %s\n" (Vfs.Errno.message e)
  in
  match node_name with
  | Some name -> (
    match node_index_of_name c name with
    | None ->
      Printf.eprintf "yancctl: trace: no node %S\n" name;
      list_nodes c;
      2
    | Some i ->
      cat_pipe i;
      print_newline ();
      print_cluster_stage_table c;
      0)
  | None ->
    List.iter
      (fun i ->
        Printf.printf "# node %s\n" (Yanc.Cluster.name_of c i);
        cat_pipe i)
      (Yanc.Cluster.live_indexes c);
    print_newline ();
    print_cluster_stage_table c;
    0

let trace_cmd topo datapath of13 apps duration pings pipe nodes node_name =
  setup_logs ();
  let topo = topo datapath in
  if nodes > 1 || node_name <> None then
    trace_cluster topo ~of13 ~nodes:(max 2 nodes) ~duration ~node_name
  else begin
  let ctl = build ~topo ~of13 ~apps in
  Yanc.Controller.run_for ctl duration;
  List.iter (do_ping ctl topo) pings;
  (if pipe then begin
     let env = Shell.Env.create (Yanc.Controller.fs ctl) in
     let r = Shell.Pipeline.run env "cat /yanc/.proc/trace_pipe" in
     print_string r.Shell.Pipeline.out;
     prerr_string r.Shell.Pipeline.err;
     print_newline ()
   end);
  let reg = Telemetry.registry (Yanc.Controller.telemetry ctl) in
  let stages =
    List.filter_map
      (fun (name, h) ->
        if String.length name > 6 && String.sub name 0 6 = "trace." then
          Some (String.sub name 6 (String.length name - 6), h)
        else None)
      (Telemetry.Registry.histograms reg)
  in
  (* Mean end-to-end latency orders the stages as the pipeline ran. *)
  let mean h =
    if Telemetry.Registry.hist_count h = 0 then 0.
    else
      Telemetry.Registry.percentile h 0.5
  in
  let stages =
    List.sort (fun (_, a) (_, b) -> compare (mean a) (mean b)) stages
  in
  Printf.printf "%-20s %8s %12s %12s %12s\n" "STAGE" "SPANS" "P50_MS"
    "P99_MS" "MAX_MS";
  List.iter
    (fun (stage, h) ->
      Printf.printf "%-20s %8d %12.4f %12.4f %12.4f\n" stage
        (Telemetry.Registry.hist_count h)
        (Telemetry.Registry.percentile h 0.5 *. 1e3)
        (Telemetry.Registry.percentile h 0.99 *. 1e3)
        (Telemetry.Registry.hist_max h *. 1e3))
    stages;
  0
  end

(* --- health: the SLO probe table, judged from the health file ------------------- *)

let finish_health report =
  print_string report;
  match Telemetry.Health.status_of_render report with
  | Some level -> Telemetry.Health.exit_code level
  | None ->
    Printf.eprintf "yancctl: health: unparseable report\n";
    2

let health_cmd topo datapath of13 apps nodes kill duration watch =
  setup_logs ();
  let built = topo datapath in
  if nodes > 1 then begin
    let c = boot_cluster ~built ~of13 ~nodes in
    let read_health () =
      match Yanc.Cluster.live_indexes c with
      | [] -> "status crit\nlive_nodes crit value=0 limit=1 series=cluster.live_nodes\n"
      | i :: _ -> (
        let fs = Yanc.Controller.fs (Yanc.Cluster.controller c i) in
        match
          Vfs.Fs.read_file fs ~cred:Vfs.Cred.root
            (Yancfs.Layout.proc_health
               ~proc:Yancfs.Layout.cluster_proc_root)
        with
        | Ok data -> data
        | Error e ->
          Printf.sprintf "status crit\nhealth_file crit value=na limit=0 series=%s\n"
            (Vfs.Errno.message e))
    in
    let steps = if watch then 5 else 1 in
    for s = 1 to steps do
      Yanc.Cluster.run_for ~tick:0.01 c (duration /. float_of_int steps);
      if watch && s < steps then begin
        Printf.printf "--- t=%.2f\n" (N.Network.now (Yanc.Cluster.net c));
        print_string (read_health ())
      end
    done;
    (match kill with
    | Some i when i >= 0 && i < Yanc.Cluster.size c ->
      (* kill and judge immediately: the pre-takeover window is exactly
         what the probe table must catch (unowned shards -> crit) *)
      Yanc.Cluster.kill c i;
      Printf.printf "--- killed %s (pre-takeover)\n" (Yanc.Cluster.name_of c i)
    | Some i ->
      Printf.eprintf "yancctl: health: no node %d (have %d)\n" i
        (Yanc.Cluster.size c)
    | None -> ());
    if watch then Printf.printf "--- t=%.2f\n" (N.Network.now (Yanc.Cluster.net c));
    finish_health (read_health ())
  end
  else begin
    let ctl = build ~topo:built ~of13 ~apps in
    let read_health () =
      match
        Vfs.Fs.read_file (Yanc.Controller.fs ctl) ~cred:Vfs.Cred.root
          (Yancfs.Layout.proc_health
             ~proc:Yancfs.Layout.default_proc_root)
      with
      | Ok data -> data
      | Error e ->
        Printf.sprintf "status crit\nhealth_file crit value=na limit=0 series=%s\n"
          (Vfs.Errno.message e)
    in
    let steps = if watch then 5 else 1 in
    for s = 1 to steps do
      Yanc.Controller.run_for ctl (duration /. float_of_int steps);
      if watch && s < steps then begin
        Printf.printf "--- t=%.2f\n" (Yanc.Controller.now ctl);
        print_string (read_health ())
      end
    done;
    finish_health (read_health ())
  end

(* --- blackbox: the flight recorder, live window or replicated dumps ------------- *)

let blackbox_cmd topo datapath of13 nodes kill duration node_name =
  setup_logs ();
  let built = topo datapath in
  if nodes > 1 || node_name <> None || kill <> None then begin
    let nodes = max 2 nodes in
    let c = boot_cluster ~built ~of13 ~nodes in
    traced_cross_write c built;
    Yanc.Cluster.run_for ~tick:0.01 c duration;
    (match kill with
    | Some i when i >= 0 && i < Yanc.Cluster.size c ->
      Yanc.Cluster.kill c i;
      (* survivors detect the death, dump their boxes, take over *)
      ignore
        (Yanc.Cluster.run_until ~tick:0.01 c (fun () ->
             Yanc.Cluster.converged c))
    | Some i ->
      Printf.eprintf "yancctl: blackbox: no node %d (have %d)\n" i
        (Yanc.Cluster.size c)
    | None -> ());
    match node_name with
    | Some name -> (
      match node_index_of_name c name with
      | None ->
        Printf.eprintf "yancctl: blackbox: no node %S\n" name;
        list_nodes c;
        2
      | Some i -> (
        match read_node_proc c i Yancfs.Layout.proc_blackbox with
        | Ok data ->
          print_string data;
          0
        | Error e ->
          Printf.eprintf "yancctl: blackbox: %s\n" (Vfs.Errno.message e);
          1))
    | None -> (
      (* post-mortems are replicated files — read them off a survivor *)
      let viewer =
        match Yanc.Cluster.live_indexes c with i :: _ -> i | [] -> 0
      in
      let fs = Yanc.Controller.fs (Yanc.Cluster.controller c viewer) in
      let cred = Vfs.Cred.root in
      match Vfs.Fs.readdir fs ~cred Yancfs.Layout.blackbox_dumps_dir with
      | Ok (_ :: _ as dumps) ->
        List.iter
          (fun name ->
            Printf.printf "# /yanc/blackbox/%s\n" name;
            match
              Vfs.Fs.read_file fs ~cred
                (Vfs.Path.child Yancfs.Layout.blackbox_dumps_dir name)
            with
            | Ok data -> print_string data
            | Error e ->
              Printf.eprintf "yancctl: blackbox: %s: %s\n" name
                (Vfs.Errno.message e))
          dumps;
        0
      | Ok [] | Error _ ->
        (* nothing crashed: show every live node's current window *)
        List.iter
          (fun i ->
            Printf.printf "# node %s (live window)\n"
              (Yanc.Cluster.name_of c i);
            match read_node_proc c i Yancfs.Layout.proc_blackbox with
            | Ok data -> print_string data
            | Error e ->
              Printf.eprintf "yancctl: blackbox: %s\n" (Vfs.Errno.message e))
          (Yanc.Cluster.live_indexes c);
        0)
  end
  else begin
    let ctl = build ~topo:built ~of13 ~apps:[ "topology"; "router" ] in
    Yanc.Controller.run_for ctl duration;
    match
      Vfs.Fs.read_file (Yanc.Controller.fs ctl) ~cred:Vfs.Cred.root
        (Yancfs.Layout.proc_blackbox ~proc:Yancfs.Layout.default_proc_root)
    with
    | Ok data ->
      print_string data;
      0
    | Error e ->
      Printf.eprintf "yancctl: blackbox: %s\n" (Vfs.Errno.message e);
      1
  end

let shell_cmd topo datapath of13 apps script_file lines =
  setup_logs ();
  let ctl = build ~topo:(topo datapath) ~of13 ~apps in
  Yanc.Controller.run_for ctl 1.0;
  let env = Shell.Env.create (Yanc.Controller.fs ctl) in
  let code = ref 0 in
  (match script_file with
  | Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    let r = Shell.Pipeline.run_script env content in
    print_string r.Shell.Pipeline.out;
    prerr_string r.Shell.Pipeline.err;
    code := r.Shell.Pipeline.code
  | None -> ());
  List.iter
    (fun line ->
      let r = Shell.Pipeline.run env line in
      print_string r.Shell.Pipeline.out;
      prerr_string r.Shell.Pipeline.err;
      if r.Shell.Pipeline.code <> 0 then code := r.Shell.Pipeline.code)
    lines;
  Yanc.Controller.run_for ctl 0.5;
  !code

(* --- policy: compile a policy file, or watch the engine run it ------------------ *)

let demo_policy =
  "# demo policy: ARP to the controller, web to port 1, DNS to port 2\n\
   filter dl_type = 0x0806 ; controller\n\
   | filter dl_type = 0x0800 && tp_dst = 80 ; fwd(1)\n\
   | filter dl_type = 0x0800 && tp_dst = 53 ; fwd(2)\n"

let read_host_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let policy_check text =
  match Policy.Syntax.parse text with
  | Error e ->
    Printf.eprintf "yancctl: policy: %s\n" e;
    1
  | Ok ir -> (
    match Policy.Compile.to_flows ir with
    | Error e ->
      Printf.eprintf "yancctl: policy: %s\n" e;
      1
    | Ok rules ->
      Printf.printf "parsed: %s\n" (Policy.Syntax.to_string ir);
      Printf.printf "compiled: %d classifier rules\n\n" (List.length rules);
      print_string (Policy.Compile.render rules);
      0)

let policy_cmd action file topo datapath of13 duration =
  setup_logs ();
  let text =
    match file with Some f -> read_host_file f | None -> demo_policy
  in
  if action = "check" then policy_check text
  else begin
    let built = topo datapath in
    let ctl = build ~topo:built ~of13 ~apps:[ "topology" ] in
    let eng = Yanc.Controller.add_policy_engine ctl in
    let cred = Vfs.Cred.root in
    let fs = Yanc.Controller.fs ctl in
    (match
       Vfs.Fs.write_file fs ~cred (Yancfs.Layout.policy_file "main") text
     with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "yancctl: policy: write: %s\n" (Vfs.Errno.message e));
    Yanc.Controller.run_for ctl duration;
    let proc_report =
      match
        Vfs.Fs.read_file fs ~cred
          (Yancfs.Layout.proc_policy ~proc:Yancfs.Layout.default_proc_root)
      with
      | Ok s -> s
      | Error e -> Printf.sprintf "(unreadable: %s)\n" (Vfs.Errno.message e)
    in
    match action with
    | "stats" ->
      (* the engine's own series plus the commit queue it drives *)
      print_string "--- /yanc/.proc/policy\n";
      print_string proc_report;
      print_string "--- policy.* and driver.commit.* metrics\n";
      (match
         Vfs.Fs.read_file fs ~cred
           (Yancfs.Layout.proc_metrics ~proc:Yancfs.Layout.default_proc_root)
       with
      | Ok metrics ->
        String.split_on_char '\n' metrics
        |> List.iter (fun line ->
               let has p =
                 String.length line >= String.length p
                 && String.sub line 0 (String.length p) = p
               in
               if has "policy." || has "driver.commit." then
                 print_endline line)
      | Error e ->
        Printf.eprintf "yancctl: policy: metrics: %s\n" (Vfs.Errno.message e));
      0
    | _ ->
      (* show *)
      print_string "--- /yanc/policy/main\n";
      print_string text;
      if text <> "" && text.[String.length text - 1] <> '\n' then
        print_newline ();
      print_string "--- /yanc/.proc/policy\n";
      print_string proc_report;
      print_string "--- compiled rules (installed on every switch)\n";
      print_string (Policy.Compile.render (Apps.Policy_engine.desired eng));
      let yfs = Yanc.Controller.yfs ctl in
      List.iter
        (fun swname ->
          let n =
            Yancfs.Yanc_fs.flow_name_set yfs ~cred swname
            |> Yancfs.Yanc_fs.Name_set.filter (fun name ->
                   let p = Apps.Policy_engine.flow_prefix in
                   String.length name > String.length p
                   && String.sub name 0 (String.length p) = p)
            |> Yancfs.Yanc_fs.Name_set.cardinal
          in
          Printf.printf "%s: %d policy flows installed\n" swname n)
        (Yancfs.Yanc_fs.switch_names yfs);
      0
  end

(* --- cmdliner wiring ------------------------------------------------------------------ *)

open Cmdliner

let topo_arg =
  Arg.(
    value
    & opt topo_conv (fun strategy -> N.Topo_gen.linear ~strategy 2)
    & info [ "t"; "topo" ] ~docv:"TOPOLOGY"
        ~doc:
          "Simulated topology: linear:N, ring:N, star:N, tree:FxD, \
           fat-tree:K, random:N.")

let datapath_arg =
  Arg.(
    value
    & opt
        (enum
           [ "linear", N.Flow_table.Linear;
             "hash", N.Flow_table.Exact_hash;
             "classifier", N.Flow_table.Classifier ])
        N.Flow_table.Classifier
    & info [ "datapath" ] ~docv:"STRATEGY"
        ~doc:
          "Switch flow-table lookup strategy: classifier (tuple-space \
           search with a microflow cache, the default), hash (exact-match \
           fast path), or linear (the reference scan).")

let of13_arg =
  Arg.(value & flag & info [ "of13" ] ~doc:"Attach OpenFlow 1.3 drivers instead of 1.0.")

let apps_arg =
  Arg.(
    value
    & opt (list string) [ "topology"; "router" ]
    & info [ "a"; "apps" ] ~docv:"APPS"
        ~doc:
          "Applications to run: topology, router, learning, arpd, auditor, \
           accounting, switch-watcher, flow-watcher (re-pushes /etc/flows on \
           change).")

let duration_arg =
  Arg.(
    value & opt float 3.0
    & info [ "d"; "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated seconds to run before executing pings/commands.")

let exec_arg =
  Arg.(
    value & opt_all string []
    & info [ "e"; "exec" ] ~docv:"CMD" ~doc:"Shell command to run against the tree.")

let ping_arg =
  Arg.(
    value & opt_all string []
    & info [ "ping" ] ~docv:"hX:hY" ~doc:"Send a ping between two hosts.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print frame and syscall statistics.")

let config_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "c"; "config" ] ~docv:"FILE"
        ~doc:
          "Controller config file (topology/protocol/app/duration/flow \
           lines); overrides the corresponding flags.")

let run_t =
  Cmd.v
    (Cmd.info "run" ~doc:"Run a controller over a simulated network.")
    Term.(
      const run_cmd $ config_arg $ topo_arg $ datapath_arg $ of13_arg
      $ apps_arg $ duration_arg $ exec_arg $ ping_arg $ stats_arg)

let tree_t =
  Cmd.v
    (Cmd.info "tree" ~doc:"Print the /net hierarchy after discovery (Figure 2).")
    Term.(const tree_cmd $ topo_arg $ datapath_arg $ of13_arg)

let script_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "script" ] ~docv:"FILE" ~doc:"Shell script file to run against /net.")

let lines_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"CMD" ~doc:"Commands to run.")

let shell_t =
  Cmd.v
    (Cmd.info "shell" ~doc:"Run shell commands or a script against a live controller.")
    Term.(
      const shell_cmd $ topo_arg $ datapath_arg $ of13_arg $ apps_arg
      $ script_arg $ lines_arg)

let switch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "switch" ] ~docv:"SWITCH"
        ~doc:"Only this switch (default: all discovered switches).")

let counters_t =
  Cmd.v
    (Cmd.info "counters"
       ~doc:
         "Dump per-flow packet/byte counters via the libyanc fastpath, plus \
          the controller's fsnotify routing counters.")
    Term.(
      const counters_cmd $ topo_arg $ datapath_arg $ of13_arg $ apps_arg
      $ duration_arg $ switch_arg)

let top_t =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Per-app scheduler accounting (iterations, CPU time, last run) \
          followed by the full metrics registry as served by \
          /yanc/.proc/metrics.")
    Term.(
      const top_cmd $ topo_arg $ datapath_arg $ of13_arg $ apps_arg
      $ duration_arg)

let pipe_arg =
  Arg.(
    value & flag
    & info [ "pipe" ]
        ~doc:"Also dump the raw span records from /yanc/.proc/trace_pipe.")

let nodes_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "nodes" ] ~docv:"N"
        ~doc:"Controller nodes to run (sharded switch ownership).")

let kill_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill" ] ~docv:"NODE"
        ~doc:
          "After boot converges, kill this node index and wait for the \
           survivors to take its shards over before reporting.")

let trace_nodes_arg =
  Arg.(
    value & opt int 1
    & info [ "n"; "nodes" ] ~docv:"N"
        ~doc:
          "Run an N-node cluster instead of one controller, drive a \
           traced cross-node write, and report the fleet-merged stage \
           table (implies cluster mode for N > 1).")

let node_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "node" ] ~docv:"NAME"
        ~doc:
          "In cluster mode, read this node's \
           /yanc/nodes/NAME/.proc/trace_pipe (trace) or live flight \
           recorder (blackbox); an unknown name lists the nodes.")

let trace_t =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace packet-ins end to end: run a workload, then report \
          per-stage latency percentiles from the span tracer \
          (scheduler wake, app handler, yancfs write, flow-mod encode, \
          switch install). With --nodes N or --node NAME, boot a \
          cluster, drive a traced write that replicates across nodes, \
          and dump the named node's span ring — one trace id spans the \
          originating and owning node.")
    Term.(
      const trace_cmd $ topo_arg $ datapath_arg $ of13_arg $ apps_arg
      $ duration_arg $ ping_arg $ pipe_arg $ trace_nodes_arg $ node_arg)

let watch_arg =
  Arg.(
    value & flag
    & info [ "watch" ]
        ~doc:"Print an interim health report at each fifth of the run.")

let health_nodes_arg =
  Arg.(
    value & opt int 1
    & info [ "n"; "nodes" ] ~docv:"N"
        ~doc:
          "Judge an N-node cluster's merged rollup \
           (/yanc/cluster/.proc/health) instead of one controller's \
           /yanc/.proc/health.")

let health_kill_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill" ] ~docv:"NODE"
        ~doc:
          "Kill this node index after the run and judge health \
           immediately — pre-takeover, so unowned shards must trip the \
           crit probe and the exit code.")

let health_t =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Evaluate the SLO probe table against the health file \
          (/yanc/.proc/health, or the cluster rollup with --nodes) and \
          exit nonzero on any crit breach: dead switches, driver fs \
          errors, unowned shards, takeover-latency p99. Warnings \
          (install-latency, trace-ring overruns) inform but pass.")
    Term.(
      const health_cmd $ topo_arg $ datapath_arg $ of13_arg $ apps_arg
      $ health_nodes_arg $ health_kill_arg $ duration_arg $ watch_arg)

let blackbox_t =
  Cmd.v
    (Cmd.info "blackbox"
       ~doc:
         "Read the flight recorder: the always-on bounded ring of \
          recent spans, status transitions and faults. Single node \
          prints the live window from /yanc/.proc/blackbox; with \
          --nodes and --kill, prints the post-mortem dumps the \
          survivors replicated under /yanc/blackbox when they detected \
          the death; --node NAME prints one node's live window.")
    Term.(
      const blackbox_cmd $ topo_arg $ datapath_arg $ of13_arg
      $ trace_nodes_arg $ kill_arg $ duration_arg $ node_arg)

let cluster_t =
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Boot an N-node sharded cluster over the topology and report \
          membership (lease validity as read from a live replica), \
          per-node attached switches, installs and takeovers, and the \
          shard ownership invariant — nonzero exit if any shard is \
          unowned.")
    Term.(
      const cluster_cmd $ topo_arg $ datapath_arg $ of13_arg $ nodes_arg
      $ kill_arg $ duration_arg)

let policy_action_arg =
  Arg.(
    value
    & pos 0 (enum [ "show", "show"; "check", "check"; "stats", "stats" ]) "show"
    & info [] ~docv:"ACTION"
        ~doc:
          "$(b,check) parses and compiles the policy and prints the \
           classifier (exit 1 on error, no controller involved); \
           $(b,show) runs the engine over a demo rig and reports the \
           installed state; $(b,stats) dumps the policy.* and \
           driver.commit.* series after such a run.")

let policy_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"FILE"
        ~doc:
          "Policy text to use (concrete syntax, see /yanc/policy in the \
           README); default is a small built-in demo policy.")

let policy_t =
  Cmd.v
    (Cmd.info "policy"
       ~doc:
         "The policy compiler: check a policy file offline, or boot a \
          demo controller, drop the policy into /yanc/policy/ and report \
          what the engine compiled and installed \
          (/yanc/.proc/policy, compiled rules, per-switch flow counts).")
    Term.(
      const policy_cmd $ policy_action_arg $ policy_file_arg $ topo_arg
      $ datapath_arg $ of13_arg $ duration_arg)

let main =
  Cmd.group
    (Cmd.info "yancctl" ~version:"1.0.0"
       ~doc:"yanc: a file-system-centric SDN controller (simulated).")
    [ run_t; tree_t; shell_t; counters_t; top_t; trace_t; cluster_t;
      health_t; blackbox_t; policy_t ]

let () = exit (Cmd.eval' main)
