(** Consistency models for the distributed file-system layer.

    Paper §6: "each distributed file system has a different
    implementation (centralized, peer-to-peer with a DHT, etc.) with
    varying trade-offs" — and names NFS, sshfs and WheelFS (whose
    selling point is {e configurable} consistency). These three models
    span that space:

    - {!Sequential} — a centralized/WheelFS-strict style: a write blocks
      until every replica has applied it, so reads anywhere see the
      latest write. Highest write latency, zero staleness.
    - {!Close_to_open} — NFS semantics: a write is visible remotely only
      after the writer's flush and the reader's attribute-cache
      revalidation; modelled as a visibility delay equal to the
      attribute-cache timeout. Cheap writes, bounded staleness.
    - {!Eventual} — DHT/sshfs-async style: updates propagate in the
      background after a propagation delay. Cheapest writes, unbounded
      ordering guarantees across writers (per-origin FIFO only). *)

type t =
  | Sequential
  | Close_to_open of { attr_cache_s : float }
  | Eventual of { propagation_s : float }

val nfs : t
(** [Close_to_open] with the Linux default 3 s attribute cache. *)

val visibility_delay : t -> float
(** How long after a local write a remote node observes it. *)

val write_blocks_for : t -> rtt:float -> replicas:int -> float
(** The time the {e writer} is stalled per operation: a full round to
    every other replica under [Sequential], nothing otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
