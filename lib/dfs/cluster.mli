(** A distributed file system layered over N {!Vfs.Fs.t} replicas —
    yanc's path to a distributed controller (paper §6): every controller
    node mounts a replica; a flow entry written on one machine "will
    then show up on the device" hosting the driver.

    Replication consumes each origin's mutation stream (the same stream
    fsnotify uses) and replays it on the other replicas according to the
    {!Consistency.t} model; replayed ops are re-emitted locally so
    watchers on a replica fire as if the write were local. Replay is
    idempotent, so partitioned nodes reconcile by draining their queue
    when the partition heals.

    The cluster has a clock ({!advance}) driving delayed visibility;
    under [Sequential] the ops apply inside the originating write. *)

type t

type metrics = {
  ops_originated : int;
  ops_replicated : int;
  ops_coalesced : int;
      (** queued content ops superseded by a later write to the same
          path before their visibility time (last-write-wins) *)
  emits_elided : int;
      (** replicated ops replayed with notification suppressed because
          a later op of the same drain run covers them (see
          {!set_emit_class}) *)
  writer_blocked_s : float;
      (** total time writers stalled (Sequential rounds) *)
  max_queue : int;  (** high-water mark of pending replications *)
}

val create :
  ?consistency:Consistency.t -> ?rtt:float -> n:int -> unit -> t
(** [n] replicas (default consistency {!Consistency.nfs}, rtt 1 ms).
    Each replica is a fresh file system. *)

val of_replicas : ?consistency:Consistency.t -> ?rtt:float -> Vfs.Fs.t list -> t
(** Wrap existing file systems (e.g. ones that already host /net). *)

val node : t -> int -> Vfs.Fs.t
val nodes : t -> Vfs.Fs.t list
val size : t -> int
val consistency : t -> Consistency.t

val now : t -> float
val advance : t -> float -> unit
(** Move the cluster clock forward and apply every replication whose
    visibility time has arrived. *)

val flush : t -> unit
(** Apply everything pending regardless of time — an fsync/umount. *)

val converged : t -> bool
(** No replications pending and no partitioned queue non-empty. *)

val pending : t -> int

val stashed : t -> int -> int
(** Ops held in node [i]'s partition stash (both directions) — lets a
    caller treat a permanently dead node's stash as out of scope when
    judging convergence. *)

val set_partitioned : t -> int -> bool -> unit
(** Cut a node off: ops to and from it queue. Healing replays both
    directions (last-writer-wins at the file level). *)

(** {1 Per-object consistency requirements (paper §5.1)}

    "We plan on utilizing [extended attributes] to specify consistency
    requirements for various network resources." An object (or any of
    its ancestors — the nearest annotation wins) carrying the
    [user.consistency] xattr overrides the cluster's model for ops under
    it: ["strict"] replicates synchronously even in an eventually
    consistent cluster; ["relaxed"] defers replication even under
    [Sequential]. *)

val consistency_xattr : string
(** ["user.consistency"] *)

val effective_consistency : t -> origin:int -> Vfs.Path.t -> Consistency.t
(** The model that will govern a write at this path (exposed for tests
    and introspection). *)

val partitioned : t -> int -> bool

(** {1 Sharded replication}

    The partitioned-ownership optimisation: a routing policy narrows
    where an op travels, so a sharded subtree's writes ride the op-log
    only to its replica set instead of every node. *)

val set_route : t -> (Vfs.Op.t -> origin:int -> int list option) option -> unit
(** Install (or clear) the routing policy. The policy returns the
    replica indexes an op should reach ([None] = every peer, the
    default); the origin is always excluded. *)

val set_emit_class : t -> (Vfs.Op.t -> string option) option -> unit
(** Notification-batching policy: ops mapped to the same class [Some c]
    are interchangeable to watchers (any one event dirty-marks the same
    object — e.g. every field file of one flow directory), so a drain
    suppresses fsnotify on all but the last op of a consecutive
    same-(target, class) run. [None] from the policy (or no policy, the
    default) means the op always notifies. *)

val emits_elided : t -> int
(** Replicated ops whose notification was suppressed by the batching
    policy. *)

val set_tracing :
  t ->
  ((int -> Telemetry.Tracer.t option) * (Vfs.Op.t -> string option)) option ->
  unit
(** Cross-node trace propagation. [(tracer, key_of)]: [tracer i] is
    replica [i]'s span tracer (None when a replica has no controller);
    [key_of op] is the correlation key the applying side should
    re-stamp (e.g. a flow path key, so the owning node's driver resumes
    the trace at install time). With hooks installed, an op originated
    inside an ambient trace records a [dfs.forward] span at the origin
    and carries its trace context [(id, origin time, origin round)] to
    every target, where the replay runs as a [dfs.apply] span under the
    {e originating} trace id — one trace spanning both nodes' rings. *)

val set_prefix_consistency : t -> (string * Consistency.t) list -> unit
(** Path-prefix consistency overrides, consulted before any xattr
    probe: one string compare per op instead of an ancestor walk —
    how the cluster pins [/yanc/cluster] metadata to [Sequential]
    while flow state stays on the delayed op-log. *)

val set_xattr_probing : t -> bool -> unit
(** Disable the per-op xattr ancestor probe entirely (hot-path mode:
    prefix overrides only). Default [true]. *)

val sync_subtree : t -> from_:int -> to_:int -> Vfs.Path.t -> int
(** Anti-entropy state transfer: materialise [from_]'s current state
    under a path onto [to_] (dirs, file contents, symlinks), replayed
    through the normal apply path so watchers on the target fire.
    Returns the number of ops synthesised. *)

val drop_origin_pending : t -> int -> int
(** Drop every queued op originated by this node — the op-log tail that
    dies with a killed process. Returns the number dropped. *)

val replay_busy_s : t -> int -> float
(** CPU seconds replica [i] has spent applying ops from peers (replay +
    sync) — the replication share of a node's busy time. *)

val ops_synced : t -> int

val ops_dropped : t -> int

val metrics : t -> metrics

val register : t -> Telemetry.Registry.t -> unit
(** Publish the replication counters as [dfs.*] gauges (ops originated,
    replicated and coalesced, writer stall time, queue high-water mark,
    live pending count, node count) — the cluster's seat in the
    controller's unified registry. *)
