module Fs = Vfs.Fs

type op_state =
  | Queued   (* in [queue], awaiting its visibility time *)
  | Stashed  (* held in a partition stash *)
  | Done     (* applied to the target replica *)
  | Dead     (* coalesced away by a later write to the same path *)

type pending_op = {
  due : float;
  target : int;
  op : Vfs.Op.t;
  mutable state : op_state;
}

type t = {
  consistency : Consistency.t;
  rtt : float;
  replicas : Fs.t array;
  mutable clock : float;
  queue : pending_op Queue.t;      (* kept in arrival order *)
  mutable queued_live : int;       (* non-[Dead] entries in [queue] *)
  partitioned : bool array;
  stash : pending_op list array;   (* held while the target is cut off;
                                      newest first, reversed on heal *)
  (* Still-queued content ops per (target, path string) — the window a
     later truncate-to-zero may coalesce over. *)
  candidates : (string, pending_op list) Hashtbl.t array;
  mutable applying : bool;         (* replication-echo guard *)
  mutable ops_originated : int;
  mutable ops_replicated : int;
  mutable ops_coalesced : int;
  mutable writer_blocked_s : float;
  mutable max_queue : int;
}

let apply t target op =
  t.applying <- true;
  Fun.protect
    ~finally:(fun () -> t.applying <- false)
    (fun () ->
      t.ops_replicated <- t.ops_replicated + 1;
      ignore (Fs.replay ~emit:true t.replicas.(target) op))

let stash_op t p =
  p.state <- Stashed;
  t.stash.(p.target) <- p :: t.stash.(p.target)

(* Last-write-wins coalescing (the dirty-set discipline, applied to the
   replication stream): [Fs.write_file] on an existing file emits
   Truncate{size=0} + Write, so a truncate-to-zero supersedes every
   content op still queued for the same (target, path) — repeated
   rewrites of one flow field or version file replicate as one final
   state, O(dirty) for the replica instead of O(writes). Structural ops
   close the window conservatively: a rename/unlink/create boundary
   means earlier content may end up at another path, so nothing queued
   before it is ever coalesced across it. *)
let coalesce_into t (p : pending_op) =
  let cands = t.candidates.(p.target) in
  match p.op with
  | Vfs.Op.Truncate { path; size = 0 } ->
    let key = Vfs.Path.to_string path in
    let prior = Option.value ~default:[] (Hashtbl.find_opt cands key) in
    List.iter
      (fun q ->
        if q.state = Queued then begin
          q.state <- Dead;
          t.queued_live <- t.queued_live - 1;
          t.ops_coalesced <- t.ops_coalesced + 1
        end)
      prior;
    Hashtbl.replace cands key [ p ]
  | Vfs.Op.Write { path; _ } | Vfs.Op.Truncate { path; _ } ->
    let key = Vfs.Path.to_string path in
    let prior = Option.value ~default:[] (Hashtbl.find_opt cands key) in
    Hashtbl.replace cands key (p :: prior)
  | op when Vfs.Op.is_structural op -> Hashtbl.reset cands
  | _ -> ()

let enqueue t p =
  if t.partitioned.(p.target) then stash_op t p
  else begin
    coalesce_into t p;
    Queue.push p t.queue;
    t.queued_live <- t.queued_live + 1;
    t.max_queue <- max t.max_queue t.queued_live
  end

let consistency_xattr = "user.consistency"

(* The nearest [user.consistency] annotation on the path or an ancestor
   overrides the cluster-wide model (paper §5.1). *)
let effective_consistency t ~origin path =
  let fs = t.replicas.(origin) in
  let rec probe = function
    | None -> t.consistency
    | Some p -> (
      match
        Vfs.Cost.suspended (Fs.cost fs) (fun () ->
            Fs.getxattr fs ~cred:Vfs.Cred.root p ~name:consistency_xattr)
      with
      | Ok v -> (
        match String.trim v with
        | "strict" -> Consistency.Sequential
        | "relaxed" -> Consistency.Eventual { propagation_s = 1.0 }
        | _ -> t.consistency)
      | Error _ -> probe (Vfs.Path.parent p))
  in
  probe (Some path)

let on_origin_op t origin op =
  if not t.applying then begin
    t.ops_originated <- t.ops_originated + 1;
    if t.partitioned.(origin) then
      (* The origin is cut off: remember its writes for every peer. *)
      Array.iteri
        (fun target _ ->
          if target <> origin then
            t.stash.(origin) <-
              { due = t.clock; target; op; state = Stashed } :: t.stash.(origin))
        t.replicas
    else begin
      let consistency = effective_consistency t ~origin (Vfs.Op.path op) in
      match consistency with
      | Consistency.Sequential ->
        (* Synchronous round: the writer stalls for a full RTT per
           replica; partitioned targets still stash. *)
        t.writer_blocked_s <-
          t.writer_blocked_s
          +. Consistency.write_blocks_for consistency ~rtt:t.rtt
               ~replicas:(Array.length t.replicas);
        Array.iteri
          (fun target _ ->
            if target <> origin then
              if t.partitioned.(target) then
                stash_op t { due = t.clock; target; op; state = Stashed }
              else apply t target op)
          t.replicas
      | Consistency.Close_to_open _ | Consistency.Eventual _ ->
        let due = t.clock +. Consistency.visibility_delay consistency in
        Array.iteri
          (fun target _ ->
            if target <> origin then enqueue t { due; target; op; state = Queued })
          t.replicas
    end
  end

let make ~consistency ~rtt replicas =
  let n = Array.length replicas in
  let t =
    { consistency; rtt; replicas; clock = 0.;
      queue = Queue.create (); queued_live = 0;
      partitioned = Array.make n false;
      stash = Array.make n [];
      candidates = Array.init n (fun _ -> Hashtbl.create 64);
      applying = false; ops_originated = 0; ops_replicated = 0;
      ops_coalesced = 0; writer_blocked_s = 0.; max_queue = 0 }
  in
  Array.iteri (fun i fs -> ignore (Fs.subscribe fs (on_origin_op t i))) replicas;
  t

let create ?(consistency = Consistency.nfs) ?(rtt = 0.001) ~n () =
  make ~consistency ~rtt (Array.init (max 1 n) (fun _ -> Fs.create ()))

let of_replicas ?(consistency = Consistency.nfs) ?(rtt = 0.001) replicas =
  make ~consistency ~rtt (Array.of_list replicas)

let node t i = t.replicas.(i)

let nodes t = Array.to_list t.replicas

let size t = Array.length t.replicas

let consistency t = t.consistency

let now t = t.clock

let drain t ~all =
  (* One pass over the queue: due ops apply (or stash, if their target
     got cut off meanwhile), not-yet-due ops re-queue behind them in
     arrival order, dead ops fall out. *)
  let n = Queue.length t.queue in
  for _ = 1 to n do
    let p = Queue.pop t.queue in
    match p.state with
    | Dead -> () (* coalesced away *)
    | Queued when all || p.due <= t.clock ->
      t.queued_live <- t.queued_live - 1;
      if t.partitioned.(p.target) then stash_op t p
      else begin
        p.state <- Done;
        apply t p.target p.op
      end
    | Queued -> Queue.push p t.queue
    | Stashed | Done -> () (* unreachable: such ops left the queue *)
  done

let advance t dt =
  t.clock <- t.clock +. dt;
  drain t ~all:false

let flush t = drain t ~all:true

let pending t =
  t.queued_live + Array.fold_left (fun acc s -> acc + List.length s) 0 t.stash

let converged t = pending t = 0

let partitioned t i = t.partitioned.(i)

let set_partitioned t i cut =
  if t.partitioned.(i) && not cut then begin
    t.partitioned.(i) <- false;
    (* Heal: deliver everything held for and from this node (the stash
       is newest-first, so replay it reversed to keep arrival order). *)
    let held = List.rev t.stash.(i) in
    t.stash.(i) <- [];
    List.iter
      (fun p ->
        if p.target = i || not t.partitioned.(p.target) then begin
          p.state <- Done;
          apply t p.target p.op
        end
        else stash_op t p)
      held
  end
  else t.partitioned.(i) <- cut

type metrics = {
  ops_originated : int;
  ops_replicated : int;
  ops_coalesced : int;
  writer_blocked_s : float;
  max_queue : int;
}

let metrics (t : t) =
  { ops_originated = t.ops_originated;
    ops_replicated = t.ops_replicated;
    ops_coalesced = t.ops_coalesced;
    writer_blocked_s = t.writer_blocked_s;
    max_queue = t.max_queue }

let register (t : t) registry =
  let g name f = Telemetry.Registry.gauge registry ("dfs." ^ name) f in
  let gi name f = g name (fun () -> float_of_int (f ())) in
  gi "ops_originated" (fun () -> t.ops_originated);
  gi "ops_replicated" (fun () -> t.ops_replicated);
  gi "ops_coalesced" (fun () -> t.ops_coalesced);
  g "writer_blocked_s" (fun () -> t.writer_blocked_s);
  gi "max_queue" (fun () -> t.max_queue);
  gi "pending" (fun () -> pending t);
  gi "nodes" (fun () -> size t)
