module Fs = Vfs.Fs

type op_state =
  | Queued   (* in [queue], awaiting its visibility time *)
  | Stashed  (* held in a partition stash *)
  | Done     (* applied to the target replica *)
  | Dead     (* coalesced away by a later write to the same path *)

type pending_op = {
  due : float;
  origin : int;
  target : int;
  op : Vfs.Op.t;
  (* The originating trace context [(id, origin time, origin round)],
     carried across the wire so the applying replica's tracer can
     adopt it — cross-node trace propagation. *)
  trace : (int * float * int) option;
  mutable state : op_state;
}

type t = {
  consistency : Consistency.t;
  rtt : float;
  replicas : Fs.t array;
  mutable clock : float;
  queue : pending_op Queue.t;      (* kept in arrival order *)
  mutable queued_live : int;       (* non-[Dead] entries in [queue] *)
  partitioned : bool array;
  stash : pending_op list array;   (* held while the target is cut off;
                                      newest first, reversed on heal *)
  (* Still-queued content ops per (target, path string) — the window a
     later truncate-to-zero may coalesce over. *)
  candidates : (string, pending_op list) Hashtbl.t array;
  (* Still-queued default-mode [Create]s per (target, path string): a
     following whole-file [Write] makes them redundant, because a
     replayed [Write] creates its file on ENOENT. *)
  creates : (string, pending_op) Hashtbl.t array;
  mutable applying : bool;         (* replication-echo guard *)
  (* Sharded replication: when set, an op travels only to the replicas
     the policy names (minus the origin) instead of every peer — the
     partitioned-ownership optimisation. [None] from the policy means
     "everywhere" (metadata, unsharded paths). *)
  mutable route : (Vfs.Op.t -> origin:int -> int list option) option;
  (* Notification batching: ops mapped to the same class by this
     policy are interchangeable as far as watchers care (e.g. every
     file of one flow directory marks the same flow dirty), so a drain
     replays a consecutive same-(target, class) run with fsnotify
     suppressed on all but the last op — inotify-style coalescing moved
     to where the burst is visible. [None] means "always emit". *)
  mutable emit_class : (Vfs.Op.t -> string option) option;
  (* Path-prefix consistency overrides, checked before any xattr probe:
     a cheap string compare on the hot path instead of an ancestor walk. *)
  mutable prefix_consistency : (string * Consistency.t) list;
  (* Cross-node tracing: [tracer i] is replica [i]'s tracer (None for a
     replica with no controller, e.g. bare DFS tests), [key_of] maps an
     op to the correlation key the applying side should re-stamp (a
     flow path key, so the owner's driver resumes the trace on
     install). Installed by the sharded controller; both hooks live
     outside the record so a bare cluster never pays them. *)
  mutable trace_tracer : (int -> Telemetry.Tracer.t option) option;
  mutable trace_key_of : (Vfs.Op.t -> string option) option;
  (* Span dedup: a traced burst (mkdir + attribute writes of one flow,
     or one drain batch) is one logical hop, so [dfs.forward]/[dfs.apply]
     record ONE span per consecutive same-trace run, not one per op —
     the adopt/stamp still happens per op (resume correctness), only
     the ring record is elided. Apply dedup is per target (a drain
     interleaves targets op by op, so a shared cursor would miss every
     time). Keeps tracing-on overhead bounded by bursts, not op count. *)
  mutable last_fwd_trace : int;
  last_apply : int array;
  mutable probe_xattrs : bool;
  replay_busy : float array;       (* CPU seconds each replica spent
                                      applying peers' ops *)
  mutable ops_originated : int;
  mutable ops_replicated : int;
  mutable ops_coalesced : int;
  mutable emits_elided : int;
  mutable ops_synced : int;
  mutable ops_dropped : int;
  mutable writer_blocked_s : float;
  mutable max_queue : int;
}

let tracer_of t i =
  match t.trace_tracer with None -> None | Some f -> f i

let apply ?(emit = true) ?trace t target op =
  t.applying <- true;
  let t0 = Sys.time () in
  Fun.protect
    ~finally:(fun () ->
      t.applying <- false;
      t.replay_busy.(target) <- t.replay_busy.(target) +. (Sys.time () -. t0))
    (fun () ->
      t.ops_replicated <- t.ops_replicated + 1;
      if not emit then t.emits_elided <- t.emits_elided + 1;
      let replay () = ignore (Fs.replay ~emit t.replicas.(target) op) in
      match trace with
      | None -> replay ()
      | Some (id, origin, origin_round) -> (
        match tracer_of t target with
        | Some tr when Telemetry.Tracer.enabled tr ->
          (* The op arrived carrying its originating trace: adopt it so
             the replay's span joins the cross-node trace, and re-stamp
             the correlation key so this replica's driver resumes it at
             install time (dfs.forward → dfs.apply → driver.flow_mod). *)
          Telemetry.Tracer.adopt tr ~trace:id ~origin ~origin_round;
          (match t.trace_key_of with
          | Some key_of -> (
            match key_of op with
            | Some key -> Telemetry.Tracer.stamp tr key
            | None -> ())
          | None -> ());
          let first = t.last_apply.(target) <> id in
          if first then t.last_apply.(target) <- id;
          Fun.protect
            ~finally:(fun () -> Telemetry.Tracer.clear tr)
            (fun () ->
              if first then Telemetry.Tracer.span tr ~stage:"dfs.apply" replay
              else replay ())
        | _ -> replay ()))

let stash_op t p =
  p.state <- Stashed;
  t.stash.(p.target) <- p :: t.stash.(p.target)

(* Last-write-wins coalescing (the dirty-set discipline, applied to the
   replication stream): [Fs.write_file] on an existing file emits
   Truncate{size=0} + Write, so a truncate-to-zero supersedes every
   content op still queued for the same (target, path) — repeated
   rewrites of one flow field or version file replicate as one final
   state, O(dirty) for the replica instead of O(writes). Structural ops
   close the window conservatively: a rename/unlink/create boundary
   means earlier content may end up at another path, so nothing queued
   before it is ever coalesced across it. *)
let coalesce_into t (p : pending_op) =
  let cands = t.candidates.(p.target) in
  match p.op with
  | Vfs.Op.Truncate { path; size = 0 } ->
    let key = Vfs.Path.to_string path in
    let prior = Option.value ~default:[] (Hashtbl.find_opt cands key) in
    List.iter
      (fun q ->
        if q.state = Queued then begin
          q.state <- Dead;
          t.queued_live <- t.queued_live - 1;
          t.ops_coalesced <- t.ops_coalesced + 1
        end)
      prior;
    Hashtbl.replace cands key [ p ]
  | Vfs.Op.Write { path; off; _ } ->
    let key = Vfs.Path.to_string path in
    (* A whole-file write makes a still-queued default-mode [Create]
       of the same file redundant: replaying the [Write] creates it. *)
    if off = 0 then begin
      match Hashtbl.find_opt t.creates.(p.target) key with
      | Some c when c.state = Queued ->
        c.state <- Dead;
        t.queued_live <- t.queued_live - 1;
        t.ops_coalesced <- t.ops_coalesced + 1;
        Hashtbl.remove t.creates.(p.target) key
      | _ -> ()
    end;
    let prior = Option.value ~default:[] (Hashtbl.find_opt cands key) in
    Hashtbl.replace cands key (p :: prior)
  | Vfs.Op.Truncate { path; _ } ->
    let key = Vfs.Path.to_string path in
    let prior = Option.value ~default:[] (Hashtbl.find_opt cands key) in
    Hashtbl.replace cands key (p :: prior)
  | Vfs.Op.Create { path; mode } when mode land 0o7777 = 0o644 ->
    Hashtbl.reset cands;
    Hashtbl.replace t.creates.(p.target) (Vfs.Path.to_string path) p
  | op when Vfs.Op.is_structural op ->
    Hashtbl.reset cands;
    Hashtbl.reset t.creates.(p.target)
  | _ -> ()

let enqueue t p =
  if t.partitioned.(p.target) then stash_op t p
  else begin
    coalesce_into t p;
    Queue.push p t.queue;
    t.queued_live <- t.queued_live + 1;
    t.max_queue <- max t.max_queue t.queued_live
  end

let consistency_xattr = "user.consistency"

(* The nearest [user.consistency] annotation on the path or an ancestor
   overrides the cluster-wide model (paper §5.1); a registered path
   prefix does the same without touching the file system — the form the
   sharded controller uses so the per-op check is one string compare. *)
let effective_consistency t ~origin path =
  let s = Vfs.Path.to_string path in
  let by_prefix =
    List.find_opt
      (fun (prefix, _) ->
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix)
      t.prefix_consistency
  in
  match by_prefix with
  | Some (_, c) -> c
  | None ->
    if not t.probe_xattrs then t.consistency
    else begin
      let fs = t.replicas.(origin) in
      let rec probe = function
        | None -> t.consistency
        | Some p -> (
          match
            Vfs.Cost.suspended (Fs.cost fs) (fun () ->
                Fs.getxattr fs ~cred:Vfs.Cred.root p ~name:consistency_xattr)
          with
          | Ok v -> (
            match String.trim v with
            | "strict" -> Consistency.Sequential
            | "relaxed" -> Consistency.Eventual { propagation_s = 1.0 }
            | _ -> t.consistency)
          | Error _ -> probe (Vfs.Path.parent p))
      in
      probe (Some path)
    end

(* The replicas an op travels to: everyone but the origin, unless a
   routing policy narrows it (sharded subtrees go only to their
   replica set). *)
let targets_of t ~origin op =
  match t.route with
  | None -> None
  | Some route -> (
    match route op ~origin with
    | None -> None
    | Some l -> Some (List.filter (fun i -> i <> origin && i >= 0 && i < Array.length t.replicas) l))

let iter_targets t ~origin op f =
  match targets_of t ~origin op with
  | None ->
    Array.iteri (fun target _ -> if target <> origin then f target) t.replicas
  | Some l -> List.iter f l

let on_origin_op t origin op =
  if not t.applying then begin
    t.ops_originated <- t.ops_originated + 1;
    (* Capture the ambient trace (if the origin's controller is inside
       one) so it rides the op to every target replica. *)
    let trace =
      match tracer_of t origin with
      | Some tr -> Telemetry.Tracer.context tr
      | None -> None
    in
    let forward () =
      if t.partitioned.(origin) then
        (* The origin is cut off: remember its writes for every peer. *)
        iter_targets t ~origin op (fun target ->
            t.stash.(origin) <-
              { due = t.clock; origin; target; op; trace; state = Stashed }
              :: t.stash.(origin))
      else begin
        let consistency = effective_consistency t ~origin (Vfs.Op.path op) in
        match consistency with
        | Consistency.Sequential ->
          (* Synchronous round: the writer stalls for a full RTT per
             replica; partitioned targets still stash. *)
          t.writer_blocked_s <-
            t.writer_blocked_s
            +. Consistency.write_blocks_for consistency ~rtt:t.rtt
                 ~replicas:(Array.length t.replicas);
          iter_targets t ~origin op (fun target ->
              if t.partitioned.(target) then
                stash_op t
                  { due = t.clock; origin; target; op; trace; state = Stashed }
              else apply ?trace t target op)
        | Consistency.Close_to_open _ | Consistency.Eventual _ ->
          let due = t.clock +. Consistency.visibility_delay consistency in
          iter_targets t ~origin op (fun target ->
              enqueue t { due; origin; target; op; trace; state = Queued })
      end
    in
    match (trace, tracer_of t origin) with
    | Some (id, _, _), Some tr when t.last_fwd_trace <> id ->
      t.last_fwd_trace <- id;
      Telemetry.Tracer.span tr ~stage:"dfs.forward" forward
    | _ -> forward ()
  end

let make ~consistency ~rtt replicas =
  let n = Array.length replicas in
  let t =
    { consistency; rtt; replicas; clock = 0.;
      queue = Queue.create (); queued_live = 0;
      partitioned = Array.make n false;
      stash = Array.make n [];
      candidates = Array.init n (fun _ -> Hashtbl.create 64);
      creates = Array.init n (fun _ -> Hashtbl.create 64);
      applying = false; route = None; emit_class = None;
      prefix_consistency = [];
      trace_tracer = None; trace_key_of = None;
      last_fwd_trace = 0; last_apply = Array.make n 0;
      probe_xattrs = true; replay_busy = Array.make n 0.;
      ops_originated = 0; ops_replicated = 0;
      ops_coalesced = 0; emits_elided = 0; ops_synced = 0; ops_dropped = 0;
      writer_blocked_s = 0.; max_queue = 0 }
  in
  Array.iteri (fun i fs -> ignore (Fs.subscribe fs (on_origin_op t i))) replicas;
  t

let create ?(consistency = Consistency.nfs) ?(rtt = 0.001) ~n () =
  make ~consistency ~rtt (Array.init (max 1 n) (fun _ -> Fs.create ()))

let of_replicas ?(consistency = Consistency.nfs) ?(rtt = 0.001) replicas =
  make ~consistency ~rtt (Array.of_list replicas)

let node t i = t.replicas.(i)

let nodes t = Array.to_list t.replicas

let size t = Array.length t.replicas

let consistency t = t.consistency

let now t = t.clock

let drain t ~all =
  (* One pass over the queue: due ops apply (or stash, if their target
     got cut off meanwhile), not-yet-due ops re-queue behind them in
     arrival order, dead ops fall out. *)
  let n = Queue.length t.queue in
  let due = ref [] in
  for _ = 1 to n do
    let p = Queue.pop t.queue in
    match p.state with
    | Dead -> () (* coalesced away *)
    | Queued when all || p.due <= t.clock ->
      t.queued_live <- t.queued_live - 1;
      if t.partitioned.(p.target) then stash_op t p
      else begin
        p.state <- Done;
        due := p :: !due
      end
    | Queued -> Queue.push p t.queue
    | Stashed | Done -> () (* unreachable: such ops left the queue *)
  done;
  (* Replay the due ops in arrival order. A consecutive run with the
     same target and the same emit class — a flow directory's burst of
     field writes landing on one replica — notifies only on its last
     op: the watchers' dirty-marking is per class, so one event covers
     the run and the replica skips the per-op hook fan-out. *)
  let due = Array.of_list (List.rev !due) in
  let m = Array.length due in
  let class_of p =
    match t.emit_class with None -> None | Some f -> f p.op
  in
  Array.iteri
    (fun i p ->
      let emit =
        i = m - 1
        || due.(i + 1).target <> p.target
        ||
        match class_of p with
        | None -> true
        | Some c -> class_of due.(i + 1) <> Some c
      in
      apply ~emit ?trace:p.trace t p.target p.op)
    due

let advance t dt =
  t.clock <- t.clock +. dt;
  drain t ~all:false

let flush t = drain t ~all:true

let pending t =
  t.queued_live + Array.fold_left (fun acc s -> acc + List.length s) 0 t.stash

let stashed t i = List.length t.stash.(i)

let converged t = pending t = 0

let partitioned t i = t.partitioned.(i)

let set_partitioned t i cut =
  if t.partitioned.(i) && not cut then begin
    t.partitioned.(i) <- false;
    (* Heal: deliver everything held for and from this node (the stash
       is newest-first, so replay it reversed to keep arrival order). *)
    let held = List.rev t.stash.(i) in
    t.stash.(i) <- [];
    List.iter
      (fun p ->
        if p.target = i || not t.partitioned.(p.target) then begin
          p.state <- Done;
          apply ?trace:p.trace t p.target p.op
        end
        else stash_op t p)
      held
  end
  else t.partitioned.(i) <- cut

let set_route t route = t.route <- route

let set_emit_class t f = t.emit_class <- f

let set_tracing t hooks =
  match hooks with
  | None ->
    t.trace_tracer <- None;
    t.trace_key_of <- None
  | Some (tracer, key_of) ->
    t.trace_tracer <- Some tracer;
    t.trace_key_of <- Some key_of

let emits_elided t = t.emits_elided

let set_prefix_consistency t prefixes = t.prefix_consistency <- prefixes

let set_xattr_probing t b = t.probe_xattrs <- b

let replay_busy_s t i = t.replay_busy.(i)

(* Anti-entropy: materialise [from_]'s current state under [path] on
   [to_] by replaying synthetic ops — the state transfer a replica-set
   change needs (a promoted secondary, a joining node). Idempotent over
   whatever the target already holds; files are truncated + rewritten,
   symlinks re-pointed. *)
let sync_subtree t ~from_ ~to_ path =
  let fs = t.replicas.(from_) in
  let cred = Vfs.Cred.root in
  let put op =
    t.ops_synced <- t.ops_synced + 1;
    apply t to_ op
  in
  let copy p (st : Fs.stat) =
    match st.kind with
    | Fs.Dir -> put (Vfs.Op.Mkdir { path = p; mode = st.mode })
    | Fs.File -> (
      match Vfs.Cost.suspended (Fs.cost fs) (fun () -> Fs.read_file fs ~cred p) with
      | Error _ -> ()
      | Ok data ->
        put (Vfs.Op.Create { path = p; mode = st.mode });
        put (Vfs.Op.Truncate { path = p; size = 0 });
        if data <> "" then put (Vfs.Op.Write { path = p; off = 0; data }))
    | Fs.Symlink -> (
      match Vfs.Cost.suspended (Fs.cost fs) (fun () -> Fs.readlink fs ~cred p) with
      | Error _ -> ()
      | Ok target ->
        put (Vfs.Op.Unlink { path = p });
        put (Vfs.Op.Symlink { path = p; target }))
  in
  let before = t.ops_synced in
  (match
     Vfs.Cost.suspended (Fs.cost fs) (fun () ->
         Fs.fold fs ~cred path ~init:() (fun () p st ->
             copy p st;
             ((), `Continue)))
   with
  | Ok () | Error _ -> ());
  t.ops_synced - before

(* A killed node's not-yet-visible ops never left the box: drop them
   from the queue (the op-log tail that died with the process). *)
let drop_origin_pending t origin =
  let dropped = ref 0 in
  Queue.iter
    (fun p ->
      if p.state = Queued && p.origin = origin then begin
        p.state <- Dead;
        t.queued_live <- t.queued_live - 1;
        incr dropped
      end)
    t.queue;
  t.ops_dropped <- t.ops_dropped + !dropped;
  !dropped

let ops_synced t = t.ops_synced

let ops_dropped t = t.ops_dropped

type metrics = {
  ops_originated : int;
  ops_replicated : int;
  ops_coalesced : int;
  emits_elided : int;
  writer_blocked_s : float;
  max_queue : int;
}

let metrics (t : t) =
  { ops_originated = t.ops_originated;
    ops_replicated = t.ops_replicated;
    ops_coalesced = t.ops_coalesced;
    emits_elided = t.emits_elided;
    writer_blocked_s = t.writer_blocked_s;
    max_queue = t.max_queue }

let register (t : t) registry =
  let g name f = Telemetry.Registry.gauge registry ("dfs." ^ name) f in
  let gi name f = g name (fun () -> float_of_int (f ())) in
  gi "ops_originated" (fun () -> t.ops_originated);
  gi "ops_replicated" (fun () -> t.ops_replicated);
  gi "ops_coalesced" (fun () -> t.ops_coalesced);
  gi "ops_synced" (fun () -> t.ops_synced);
  gi "ops_dropped" (fun () -> t.ops_dropped);
  g "writer_blocked_s" (fun () -> t.writer_blocked_s);
  gi "max_queue" (fun () -> t.max_queue);
  gi "pending" (fun () -> pending t);
  gi "nodes" (fun () -> size t)
