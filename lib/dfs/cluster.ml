module Fs = Vfs.Fs

type pending_op = { due : float; target : int; op : Vfs.Op.t }

type t = {
  consistency : Consistency.t;
  rtt : float;
  replicas : Fs.t array;
  mutable clock : float;
  mutable queue : pending_op list; (* kept in arrival order *)
  partitioned : bool array;
  stash : pending_op list array;   (* held while the target is cut off *)
  mutable applying : bool;         (* replication-echo guard *)
  mutable ops_originated : int;
  mutable ops_replicated : int;
  mutable writer_blocked_s : float;
  mutable max_queue : int;
}

let apply t target op =
  t.applying <- true;
  Fun.protect
    ~finally:(fun () -> t.applying <- false)
    (fun () ->
      t.ops_replicated <- t.ops_replicated + 1;
      ignore (Fs.replay ~emit:true t.replicas.(target) op))

let enqueue t p =
  if t.partitioned.(p.target) then
    t.stash.(p.target) <- t.stash.(p.target) @ [ p ]
  else begin
    t.queue <- t.queue @ [ p ];
    t.max_queue <- max t.max_queue (List.length t.queue)
  end

let consistency_xattr = "user.consistency"

(* The nearest [user.consistency] annotation on the path or an ancestor
   overrides the cluster-wide model (paper §5.1). *)
let effective_consistency t ~origin path =
  let fs = t.replicas.(origin) in
  let rec probe = function
    | None -> t.consistency
    | Some p -> (
      match
        Vfs.Cost.suspended (Fs.cost fs) (fun () ->
            Fs.getxattr fs ~cred:Vfs.Cred.root p ~name:consistency_xattr)
      with
      | Ok v -> (
        match String.trim v with
        | "strict" -> Consistency.Sequential
        | "relaxed" -> Consistency.Eventual { propagation_s = 1.0 }
        | _ -> t.consistency)
      | Error _ -> probe (Vfs.Path.parent p))
  in
  probe (Some path)

let on_origin_op t origin op =
  if not t.applying then begin
    t.ops_originated <- t.ops_originated + 1;
    if t.partitioned.(origin) then
      (* The origin is cut off: remember its writes for every peer. *)
      Array.iteri
        (fun target _ ->
          if target <> origin then
            t.stash.(origin) <- t.stash.(origin) @ [ { due = t.clock; target; op } ])
        t.replicas
    else begin
      let consistency = effective_consistency t ~origin (Vfs.Op.path op) in
      match consistency with
      | Consistency.Sequential ->
        (* Synchronous round: the writer stalls for a full RTT per
           replica; partitioned targets still stash. *)
        t.writer_blocked_s <-
          t.writer_blocked_s
          +. Consistency.write_blocks_for consistency ~rtt:t.rtt
               ~replicas:(Array.length t.replicas);
        Array.iteri
          (fun target _ ->
            if target <> origin then
              if t.partitioned.(target) then
                t.stash.(target) <- t.stash.(target) @ [ { due = t.clock; target; op } ]
              else apply t target op)
          t.replicas
      | Consistency.Close_to_open _ | Consistency.Eventual _ ->
        let due = t.clock +. Consistency.visibility_delay consistency in
        Array.iteri
          (fun target _ ->
            if target <> origin then enqueue t { due; target; op })
          t.replicas
    end
  end

let make ~consistency ~rtt replicas =
  let n = Array.length replicas in
  let t =
    { consistency; rtt; replicas; clock = 0.; queue = [];
      partitioned = Array.make n false;
      stash = Array.make n [];
      applying = false; ops_originated = 0; ops_replicated = 0;
      writer_blocked_s = 0.; max_queue = 0 }
  in
  Array.iteri (fun i fs -> ignore (Fs.subscribe fs (on_origin_op t i))) replicas;
  t

let create ?(consistency = Consistency.nfs) ?(rtt = 0.001) ~n () =
  make ~consistency ~rtt (Array.init (max 1 n) (fun _ -> Fs.create ()))

let of_replicas ?(consistency = Consistency.nfs) ?(rtt = 0.001) replicas =
  make ~consistency ~rtt (Array.of_list replicas)

let node t i = t.replicas.(i)

let nodes t = Array.to_list t.replicas

let size t = Array.length t.replicas

let consistency t = t.consistency

let now t = t.clock

let drain t ~all =
  let due, later =
    List.partition (fun p -> all || p.due <= t.clock) t.queue
  in
  t.queue <- later;
  List.iter
    (fun p ->
      if t.partitioned.(p.target) then
        t.stash.(p.target) <- t.stash.(p.target) @ [ p ]
      else apply t p.target p.op)
    due

let advance t dt =
  t.clock <- t.clock +. dt;
  drain t ~all:false

let flush t = drain t ~all:true

let pending t =
  List.length t.queue + Array.fold_left (fun acc s -> acc + List.length s) 0 t.stash

let converged t = pending t = 0

let partitioned t i = t.partitioned.(i)

let set_partitioned t i cut =
  if t.partitioned.(i) && not cut then begin
    t.partitioned.(i) <- false;
    (* Heal: deliver everything held for and from this node. *)
    let held = t.stash.(i) in
    t.stash.(i) <- [];
    List.iter
      (fun p ->
        if p.target = i || not t.partitioned.(p.target) then apply t p.target p.op
        else t.stash.(p.target) <- t.stash.(p.target) @ [ p ])
      held
  end
  else t.partitioned.(i) <- cut

type metrics = {
  ops_originated : int;
  ops_replicated : int;
  writer_blocked_s : float;
  max_queue : int;
}

let metrics (t : t) =
  { ops_originated = t.ops_originated;
    ops_replicated = t.ops_replicated;
    writer_blocked_s = t.writer_blocked_s;
    max_queue = t.max_queue }

let register (t : t) registry =
  let g name f = Telemetry.Registry.gauge registry ("dfs." ^ name) f in
  let gi name f = g name (fun () -> float_of_int (f ())) in
  gi "ops_originated" (fun () -> t.ops_originated);
  gi "ops_replicated" (fun () -> t.ops_replicated);
  g "writer_blocked_s" (fun () -> t.writer_blocked_s);
  gi "max_queue" (fun () -> t.max_queue);
  gi "pending" (fun () -> pending t);
  gi "nodes" (fun () -> size t)
