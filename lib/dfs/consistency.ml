type t =
  | Sequential
  | Close_to_open of { attr_cache_s : float }
  | Eventual of { propagation_s : float }

let nfs = Close_to_open { attr_cache_s = 3.0 }

let visibility_delay = function
  | Sequential -> 0.
  | Close_to_open { attr_cache_s } -> attr_cache_s
  | Eventual { propagation_s } -> propagation_s

let write_blocks_for t ~rtt ~replicas =
  match t with
  | Sequential -> rtt *. float_of_int (max 0 (replicas - 1))
  | Close_to_open _ | Eventual _ -> 0.

let to_string = function
  | Sequential -> "sequential"
  | Close_to_open { attr_cache_s } ->
    Printf.sprintf "close-to-open(ac=%.1fs)" attr_cache_s
  | Eventual { propagation_s } ->
    Printf.sprintf "eventual(delay=%.1fs)" propagation_s

let pp ppf t = Format.pp_print_string ppf (to_string t)
