(* Rendezvous (highest-random-weight) hashing over the member set.

   Every node computes the same pure function of (dpid, membership), so
   the shard map needs no coordination beyond agreeing on who is alive:
   the owner of a switch is the member whose hash wins for that dpid.
   When a member leaves, only the switches it owned move (each to its
   runner-up); when a member joins, only the switches it now wins move
   to it — the minimal-movement property the cluster leans on to keep
   takeover traffic proportional to the failure, not the fleet. *)

(* splitmix64 finalizer: full-avalanche mixing so near-identical inputs
   (consecutive dpids, "n0"/"n1" member names) land far apart. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_member member =
  (* FNV-1a over the name, then finalized: the per-member seed. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    member;
  mix64 !h

let score ~member ~dpid = mix64 (Int64.logxor (hash_member member) dpid)

(* Unsigned comparison: scores are raw 64-bit lanes. *)
let score_lt a b = Int64.unsigned_compare a b < 0

let owner ~members ~dpid =
  List.fold_left
    (fun best m ->
      let s = score ~member:m ~dpid in
      match best with
      | Some (bs, bm) when score_lt s bs || (s = bs && String.compare m bm > 0)
        -> best
      | _ -> Some (s, m))
    None members
  |> Option.map snd

let replicas ~members ~k ~dpid =
  if k <= 0 then []
  else
    let scored = List.map (fun m -> (score ~member:m ~dpid, m)) members in
    let sorted =
      List.sort
        (fun (s1, m1) (s2, m2) ->
          (* highest score first; ties broken by name so the order is a
             pure function of the inputs *)
          let c = Int64.unsigned_compare s2 s1 in
          if c <> 0 then c else String.compare m1 m2)
        scored
    in
    List.filteri (fun i _ -> i < k) (List.map snd sorted)

let assign ~members ~dpids =
  List.filter_map
    (fun dpid -> Option.map (fun m -> (dpid, m)) (owner ~members ~dpid))
    dpids

(* Consistent hashing with bounded loads: pure rendezvous hashing
   assigns each dpid an independent coin flip among the members, so a
   fleet of D switches lands binomially — an 80-switch k=8 fat-tree
   split 47/33 across two nodes is well within one sigma, and the
   overloaded node becomes the whole cluster's critical path. Capping
   every member at ceil(slack * D/N) and spilling an over-cap dpid down
   its own preference order keeps the imbalance bounded by [slack]
   while still moving only O(D/N) shards per membership change: an
   off-cap dpid sits at its rendezvous first choice exactly as before,
   and only the overflow tail is placement-order dependent. *)
let assign_balanced ?(slack = 1.10) ~members ~dpids () =
  match members with
  | [] -> []
  | _ ->
    (* Sorted, deduplicated dpids: the fill order must be a pure
       function of the *set* so every node computes the same map. *)
    let dpids = List.sort_uniq Int64.compare dpids in
    let n = List.length members and d = List.length dpids in
    let cap =
      max 1 (int_of_float (ceil (slack *. float_of_int d /. float_of_int n)))
    in
    let load = Hashtbl.create n in
    List.iter (fun m -> Hashtbl.replace load m 0) members;
    List.map
      (fun dpid ->
        let prefs = replicas ~members ~k:n ~dpid in
        let rec place = function
          | [] -> List.hd prefs (* unreachable: n * cap >= d *)
          | m :: rest ->
            if Hashtbl.find load m < cap then m else place rest
        in
        let m = place prefs in
        Hashtbl.replace load m (1 + Hashtbl.find load m);
        (dpid, m))
      dpids

let spread ~members ~dpids =
  let counts = Hashtbl.create (List.length members) in
  List.iter (fun m -> Hashtbl.replace counts m 0) members;
  List.iter
    (fun (_, m) ->
      Hashtbl.replace counts m (1 + Option.value ~default:0 (Hashtbl.find_opt counts m)))
    (assign ~members ~dpids);
  List.sort compare (Hashtbl.fold (fun m c acc -> (m, c) :: acc) counts [])
