(** The deterministic shard map: rendezvous (highest-random-weight)
    hashing of switches onto controller nodes.

    Ownership is a pure function of (dpid, membership) — every node
    that agrees on who is alive agrees on who owns what, with no
    coordination. Membership changes move only the shards they must:
    a departed node's switches land on their runner-ups, a joined
    node takes only the switches it now wins. *)

val score : member:string -> dpid:int64 -> int64
(** The rendezvous weight of [member] for [dpid] (exposed for tests). *)

val owner : members:string list -> dpid:int64 -> string option
(** The member with the highest weight for [dpid]; [None] iff
    [members] is empty. Member-list order is irrelevant. *)

val replicas : members:string list -> k:int -> dpid:int64 -> string list
(** The top-[k] members by weight, owner first — the replica set whose
    file systems carry this switch's flow state. Fewer than [k] when
    the membership is smaller. *)

val assign : members:string list -> dpids:int64 list -> (int64 * string) list
(** [owner] over a fleet. *)

val assign_balanced :
  ?slack:float -> members:string list -> dpids:int64 list -> unit ->
  (int64 * string) list
(** Consistent hashing with bounded loads: rendezvous preference order
    per dpid, but no member carries more than
    [ceil (slack * |dpids| / |members|)] shards (default slack 1.10) —
    an over-cap dpid spills to its next-highest-weight member. A pure
    function of the two sets (list order and duplicates are
    irrelevant); the result is sorted by dpid. Off-cap dpids sit at
    their rendezvous first choice, so membership changes still move
    roughly the minimal set plus the bounded overflow tail. *)

val spread : members:string list -> dpids:int64 list -> (string * int) list
(** Shards per member (sorted by name) — balance introspection. *)
