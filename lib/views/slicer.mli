(** The slicer (paper §4.2): "a slice of a network is a subset of the
    hardware and header space across one or more switches; the original
    topology is not changed."

    A slice daemon maintains a live translation between the master tree
    and a view tree:

    - {b downward} — flows a tenant commits in the view are checked
      against the slice's {e flowspace} (their match must stay inside
      it: the enforced match is the intersection; a disjoint match gets
      an [error] file and never reaches hardware), actions are checked
      against the slice's port set, and the result is written to the
      master switch under a slice-prefixed name. Tenant packet-out
      requests are forwarded with the same port filter.
    - {b upward} — switch attributes, the sliced ports and intra-slice
      [peer] links are mirrored into the view; packet-ins whose headers
      fall inside the flowspace (and whose ingress is a sliced port) are
      republished to the view's subscribers; flow counters are copied
      back onto the tenant's flow directories.

    Slices stack: the master handle may itself be a view. *)

type config = {
  view : string;
  switches : (string * int list) list;
      (** sliced switch and the ports the tenant may use; [[]] = all *)
  flowspace : Openflow.Of_match.t;
  priority_cap : int;  (** tenant priorities are clamped below this *)
}

type t

val create :
  ?cred:Vfs.Cred.t -> master:Yancfs.Yanc_fs.t -> config ->
  (t, Vfs.Errno.t) result
(** Create the view and mirror the sliced switches into it. *)

val view_fs : t -> Yancfs.Yanc_fs.t

val run : t -> now:float -> unit

val app : t -> Apps.App_intf.t

val flows_accepted : t -> int
val flows_rejected : t -> int
