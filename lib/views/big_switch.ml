module Y = Yancfs
module P = Packet
module OF = Openflow
module Fs = Vfs.Fs

type compiled = { version : int; installed : (string * string) list }
(* per view flow: master (switch, flow name) pairs *)

type t = {
  master : Y.Yanc_fs.t;
  view_fs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  view : string;
  switch_name : string;
  mutable vports : (int * (string * int)) list;
  synced : (string, compiled) Hashtbl.t;
  subscribed : (string, unit) Hashtbl.t;
  mutable compiled_count : int;
}

let ( let* ) = Result.bind

let buffer_app t = "bigsw-" ^ t.view

let create ?(cred = Vfs.Cred.root) ?(switch_name = "big0") ~master ~view () =
  let* view_fs = Y.Yanc_fs.in_view master ~cred view in
  let* () =
    Y.Yanc_fs.add_switch view_fs ~name:switch_name ~dpid:0L
      ~protocol:"virtual-big-switch" ~n_buffers:0 ~n_tables:1
      ~capabilities:[ "virtual" ] ~actions:[]
  in
  Ok
    { master; view_fs; cred; view; switch_name; vports = [];
      synced = Hashtbl.create 32; subscribed = Hashtbl.create 16;
      compiled_count = 0 }

let view_fs t = t.view_fs

let port_map t = t.vports

(* --- underlay inspection --------------------------------------------------- *)

let edge_ports t =
  Y.Yanc_fs.switch_names t.master
  |> List.concat_map (fun switch ->
         Y.Yanc_fs.port_numbers t.master ~cred:t.cred switch
         |> List.filter_map (fun port ->
                if Y.Yanc_fs.peer_of t.master ~cred:t.cred ~switch ~port = None
                then Some (switch, port)
                else None))
  |> List.sort compare

let refresh_ports t =
  let edges = edge_ports t in
  t.vports <- List.mapi (fun i e -> i + 1, e) edges;
  List.iter
    (fun (vport, (switch, port)) ->
      match Y.Yanc_fs.read_port t.master ~cred:t.cred ~switch port with
      | Ok info ->
        ignore
          (Y.Yanc_fs.set_port t.view_fs ~switch:t.switch_name
             { info with
               Openflow.Of_types.Port_info.port_no = vport;
               name = Printf.sprintf "%s-%s-p%d" t.switch_name switch port })
      | Error _ -> ())
    t.vports

let real_of_vport t vport = List.assoc_opt vport t.vports

let vport_of_real t real =
  List.find_map (fun (v, r) -> if r = real then Some v else None) t.vports

(* Next-hop port from every switch toward [target] over peer links. *)
let routes_to t target =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun switch ->
      List.iter
        (fun port ->
          match Y.Yanc_fs.peer_of t.master ~cred:t.cred ~switch ~port with
          | Some (psw, _) -> Hashtbl.add adj switch (port, psw)
          | None -> ())
        (Y.Yanc_fs.port_numbers t.master ~cred:t.cred switch))
    (Y.Yanc_fs.switch_names t.master);
  (* BFS outward from the target; record, per reached switch, the port
     leading back toward the target. *)
  let next_hop = Hashtbl.create 16 in
  let visited = Hashtbl.create 16 in
  Hashtbl.replace visited target ();
  let queue = Queue.create () in
  Queue.push target queue;
  while not (Queue.is_empty queue) do
    let sw = Queue.pop queue in
    (* For every switch with a link into [sw], set its next hop. *)
    Hashtbl.iter
      (fun from_sw (port, to_sw) ->
        if to_sw = sw && not (Hashtbl.mem visited from_sw) then begin
          Hashtbl.replace visited from_sw ();
          Hashtbl.replace next_hop from_sw port;
          Queue.push from_sw queue
        end)
      adj
  done;
  next_hop

(* --- flow compilation --------------------------------------------------------- *)

let split_actions actions =
  List.fold_left
    (fun (outs, rewrites, other) a ->
      match a with
      | OF.Action.Output (OF.Action.Physical v) -> (v :: outs, rewrites, other)
      | OF.Action.Output _ -> (outs, rewrites, a :: other)
      | a -> (outs, a :: rewrites, other))
    ([], [], []) actions
  |> fun (a, b, c) -> List.rev a, List.rev b, List.rev c

let master_flow_name t vname sw = Printf.sprintf "v.%s.%s.%s" t.view vname sw

let install_master_flow t ~switch ~name flow =
  let result =
    match Y.Yanc_fs.create_flow t.master ~cred:t.cred ~switch ~name flow with
    | Ok () -> Ok ()
    | Error Vfs.Errno.EEXIST ->
      (* Update in place, preserving the version chain. *)
      let dir = Y.Layout.flow ~root:(Y.Yanc_fs.root t.master) ~switch name in
      Result.map ignore
        (Y.Flowdir.update (Y.Yanc_fs.fs t.master) ~cred:t.cred dir
           (fun old -> { flow with Y.Flowdir.version = old.Y.Flowdir.version }))
    | Error e -> Error (Vfs.Errno.message e)
  in
  match result with Ok () -> true | Error _ -> false

let remove_installed t installed =
  List.iter
    (fun (switch, name) ->
      ignore (Y.Yanc_fs.delete_flow t.master ~cred:t.cred ~switch name))
    installed

let compile_flow t vname (flow : Y.Flowdir.t) =
  let vfs = Y.Yanc_fs.fs t.view_fs in
  let vdir = Y.Layout.flow ~root:(Y.Yanc_fs.root t.view_fs) ~switch:t.switch_name vname in
  let fail msg =
    ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir (Some msg));
    []
  in
  if List.exists (function OF.Action.Enqueue _ -> true | _ -> false) flow.actions
  then fail "QoS enqueue is not supported on virtual switches"
  else
  let outs, rewrites, other = split_actions flow.actions in
  let ingress =
    match flow.of_match.OF.Of_match.in_port with
    | None -> Ok None
    | Some v -> (
      match real_of_vport t v with
      | Some real -> Ok (Some real)
      | None -> Error (Printf.sprintf "virtual in_port %d does not exist" v))
  in
  match ingress with
  | Error e -> fail e
  | Ok ingress -> (
    match outs, other with
    | [], _ ->
      (* A drop (or controller-only) rule: install on the ingress switch
         or everywhere. *)
      let targets =
        match ingress with
        | Some (sw, _) -> [ sw ]
        | None -> Y.Yanc_fs.switch_names t.master
      in
      List.filter_map
        (fun sw ->
          let of_match =
            { flow.of_match with
              OF.Of_match.in_port =
                (match ingress with
                | Some (isw, iport) when isw = sw -> Some iport
                | _ -> None) }
          in
          let name = master_flow_name t vname sw in
          if
            install_master_flow t ~switch:sw ~name
              { flow with Y.Flowdir.of_match; actions = other; version = 0;
                buffer_id = None }
          then Some (sw, name)
          else None)
        targets
    | [ vout ], _ -> (
      match real_of_vport t vout with
      | None -> fail (Printf.sprintf "virtual output port %d does not exist" vout)
      | Some (egress_sw, egress_port) ->
        let next_hop = routes_to t egress_sw in
        let targets =
          match ingress with
          | Some (sw, _) -> [ sw ]
          | None -> Y.Yanc_fs.switch_names t.master
        in
        (* Transit rules are needed on every switch on any path; with
           ingress unknown we install on all switches. With a known
           ingress we still install transit rules everywhere along the
           unique BFS route by walking it. *)
        let route_switches =
          match ingress with
          | None -> targets
          | Some (isw, _) ->
            let rec walk sw acc =
              if sw = egress_sw then List.rev (sw :: acc)
              else
                match Hashtbl.find_opt next_hop sw with
                | None -> List.rev (sw :: acc) (* unreachable: egress only *)
                | Some port -> (
                  match Y.Yanc_fs.peer_of t.master ~cred:t.cred ~switch:sw ~port with
                  | Some (nsw, _) -> walk nsw (sw :: acc)
                  | None -> List.rev (sw :: acc))
            in
            walk isw []
        in
        List.filter_map
          (fun sw ->
            let actions =
              if sw = egress_sw then
                rewrites @ other
                @ [ OF.Action.Output (OF.Action.Physical egress_port) ]
              else
                match Hashtbl.find_opt next_hop sw with
                | Some port -> [ OF.Action.Output (OF.Action.Physical port) ]
                | None -> []
            in
            if actions = [] then None
            else begin
              let of_match =
                { flow.of_match with
                  OF.Of_match.in_port =
                    (match ingress with
                    | Some (isw, iport) when isw = sw -> Some iport
                    | _ -> None) }
              in
              let name = master_flow_name t vname sw in
              if
                install_master_flow t ~switch:sw ~name
                  { flow with Y.Flowdir.of_match; actions; version = 0;
                    buffer_id = None }
              then Some (sw, name)
              else None
            end)
          route_switches)
    | _ :: _ :: _, _ ->
      fail "multiple virtual output ports are not supported by this virtualizer")

let sync_flows_down t =
  let vfs = Y.Yanc_fs.fs t.view_fs in
  let live = Y.Yanc_fs.flow_names t.view_fs ~cred:t.cred t.switch_name in
  List.iter
    (fun vname ->
      let vdir =
        Y.Layout.flow ~root:(Y.Yanc_fs.root t.view_fs) ~switch:t.switch_name vname
      in
      match Y.Flowdir.read_version vfs ~cred:t.cred vdir with
      | None -> ()
      | Some version ->
        let stale =
          match Hashtbl.find_opt t.synced vname with
          | Some c -> c.version < version
          | None -> true
        in
        if stale then begin
          (match Hashtbl.find_opt t.synced vname with
          | Some c -> remove_installed t c.installed
          | None -> ());
          match Y.Yanc_fs.read_flow t.view_fs ~cred:t.cred ~switch:t.switch_name vname with
          | Error msg ->
            ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir (Some msg));
            Hashtbl.replace t.synced vname { version; installed = [] }
          | Ok flow ->
            ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir None);
            let installed = compile_flow t vname flow in
            if installed <> [] then t.compiled_count <- t.compiled_count + 1;
            Hashtbl.replace t.synced vname { version; installed }
        end)
    live;
  (* Deletions. *)
  let gone =
    Hashtbl.fold
      (fun vname c acc ->
        if List.mem vname live then acc else (vname, c) :: acc)
      t.synced []
  in
  List.iter
    (fun (vname, c) ->
      Hashtbl.remove t.synced vname;
      remove_installed t c.installed)
    gone

(* --- events and packet-out ------------------------------------------------------ *)

let sync_events_up t =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (Y.Yanc_fs.fs t.master) ~cred:t.cred
            ~root:(Y.Yanc_fs.root t.master) ~switch ~app:(buffer_app t)
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter
        (fun (ev : Y.Eventdir.event) ->
          match vport_of_real t (switch, ev.in_port) with
          | None -> () (* interior port: not visible on the big switch *)
          | Some vport ->
            ignore
              (Y.Eventdir.publish (Y.Yanc_fs.fs t.view_fs)
                 ~root:(Y.Yanc_fs.root t.view_fs) ~switch:t.switch_name
                 ~in_port:vport ~reason:ev.reason ~buffer_id:None
                 ~total_len:ev.total_len ~data:ev.data))
        (Y.Eventdir.consume (Y.Yanc_fs.fs t.master) ~cred:t.cred
           ~root:(Y.Yanc_fs.root t.master) ~switch ~app:(buffer_app t)))
    (Y.Yanc_fs.switch_names t.master)

let sync_packet_out t =
  List.iter
    (fun (req : Y.Outdir.request) ->
      List.iter
        (fun action ->
          match action with
          | OF.Action.Output (OF.Action.Physical v) -> (
            match real_of_vport t v with
            | Some (sw, port) ->
              ignore
                (Y.Outdir.submit (Y.Yanc_fs.fs t.master) ~cred:t.cred
                   ~root:(Y.Yanc_fs.root t.master) ~switch:sw
                   ~actions:[ OF.Action.Output (OF.Action.Physical port) ]
                   ~data:req.data ())
            | None -> ())
          | OF.Action.Output (OF.Action.Flood | OF.Action.All) ->
            List.iter
              (fun (_, (sw, port)) ->
                ignore
                  (Y.Outdir.submit (Y.Yanc_fs.fs t.master) ~cred:t.cred
                     ~root:(Y.Yanc_fs.root t.master) ~switch:sw
                     ~actions:[ OF.Action.Output (OF.Action.Physical port) ]
                     ~data:req.data ()))
              t.vports
          | _ -> ())
        req.actions)
    (Y.Outdir.consume (Y.Yanc_fs.fs t.view_fs) ~root:(Y.Yanc_fs.root t.view_fs)
       ~switch:t.switch_name)

(* Every packet of a virtual flow crosses its egress hop exactly once,
   so the egress-switch rule carries the true counters. *)
let sync_counters_up t =
  let mfs = Y.Yanc_fs.fs t.master in
  let vroot = Y.Yanc_fs.root t.view_fs in
  Hashtbl.iter
    (fun vname c ->
      match List.rev c.installed with
      | [] -> ()
      | (egress_sw, mname) :: _ ->
        let counters =
          Y.Layout.flow_counters ~root:(Y.Yanc_fs.root t.master)
            ~switch:egress_sw mname
        in
        let read file =
          match Fs.read_file mfs ~cred:t.cred (Vfs.Path.child counters file) with
          | Ok v -> Int64.of_string_opt (String.trim v)
          | Error _ -> None
        in
        (match read "packets", read "bytes" with
        | Some packets, Some bytes ->
          ignore
            (Y.Flowdir.write_counters (Y.Yanc_fs.fs t.view_fs) ~cred:t.cred
               (Y.Layout.flow ~root:vroot ~switch:t.switch_name vname)
               ~packets ~bytes ~duration_s:0)
        | _ -> ()))
    t.synced

let run t ~now:_ =
  refresh_ports t;
  sync_flows_down t;
  sync_events_up t;
  sync_packet_out t;
  sync_counters_up t

let app t =
  Apps.App_intf.daemon ~name:("bigswitch-" ^ t.view) (fun ~now -> run t ~now)

let flows_compiled t = t.compiled_count
