(** Per-application isolation (paper §5.3): the moral equivalent of
    mount namespaces + Unix users. A tenant is provisioned a view
    directory owned by its uid with group/other access removed, so the
    tenant's credential can work freely inside its own subtree and
    cannot even traverse into other tenants' views, while yanc system
    applications (root) see everything. *)

val provision :
  Yancfs.Yanc_fs.t -> view:string -> owner:Vfs.Cred.t ->
  (Yancfs.Yanc_fs.t, Vfs.Errno.t) result
(** Create (or adopt) [<root>/views/<view>], chown its subtree to the
    owner, chmod it 0o700, and return a yanc handle rooted there. Must
    be called with enough privilege to chown (i.e. by root). *)

val enter :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> view:string ->
  (Yancfs.Yanc_fs.t, Vfs.Errno.t) result
(** Enter an existing view with a tenant credential; fails with [EACCES]
    if the credential cannot traverse it. *)
