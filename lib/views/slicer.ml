module Y = Yancfs
module P = Packet
module OF = Openflow
module Fs = Vfs.Fs

type config = {
  view : string;
  switches : (string * int list) list;
  flowspace : OF.Of_match.t;
  priority_cap : int;
}

type t = {
  master : Y.Yanc_fs.t;
  view_fs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  config : config;
  synced : (string * string, int) Hashtbl.t; (* (switch, view flow) -> version *)
  mutable accepted : int;
  mutable rejected : int;
}

let ( let* ) = Result.bind

let buffer_app t = "slice-" ^ t.config.view

let allowed_ports t switch =
  match List.assoc_opt switch t.config.switches with
  | Some [] | None ->
    Y.Yanc_fs.port_numbers t.master ~cred:t.cred switch
  | Some ports -> ports

let sliced_switches t = List.map fst t.config.switches

let mirror_switch t switch ports =
  (match Y.Yanc_fs.switch_dpid t.master switch with
  | None -> ()
  | Some dpid ->
    ignore
      (Y.Yanc_fs.add_switch t.view_fs ~name:switch ~dpid
         ~protocol:
           (Option.value (Y.Yanc_fs.switch_protocol t.master switch)
              ~default:"unknown")
         ~n_buffers:0 ~n_tables:1 ~capabilities:[ "sliced" ] ~actions:[]));
  let ports = if ports = [] then allowed_ports t switch else ports in
  List.iter
    (fun port ->
      match Y.Yanc_fs.read_port t.master ~cred:t.cred ~switch port with
      | Ok info -> ignore (Y.Yanc_fs.set_port t.view_fs ~switch info)
      | Error _ -> ())
    ports;
  ignore
    (Y.Eventdir.subscribe (Y.Yanc_fs.fs t.master) ~cred:t.cred
       ~root:(Y.Yanc_fs.root t.master) ~switch ~app:(buffer_app t))

let create ?(cred = Vfs.Cred.root) ~master config =
  let* view_fs = Y.Yanc_fs.in_view master ~cred config.view in
  let t =
    { master; view_fs; cred; config; synced = Hashtbl.create 64; accepted = 0;
      rejected = 0 }
  in
  List.iter (fun (sw, ports) -> mirror_switch t sw ports) config.switches;
  Ok t

let view_fs t = t.view_fs

(* --- topology mirroring ------------------------------------------------------- *)

let in_slice t switch port =
  List.exists
    (fun (sw, ports) -> sw = switch && (ports = [] || List.mem port ports))
    t.config.switches

let mirror_topology t =
  List.iter
    (fun (switch, ports) ->
      let ports = if ports = [] then allowed_ports t switch else ports in
      List.iter
        (fun port ->
          let master_peer = Y.Yanc_fs.peer_of t.master ~cred:t.cred ~switch ~port in
          let view_peer = Y.Yanc_fs.peer_of t.view_fs ~cred:t.cred ~switch ~port in
          let wanted =
            match master_peer with
            | Some (psw, pport) when in_slice t psw pport -> Some (psw, pport)
            | Some _ | None -> None
          in
          if wanted <> view_peer then
            ignore
              (Y.Yanc_fs.set_peer t.view_fs ~cred:t.cred ~switch ~port
                 ~peer:wanted))
        ports)
    t.config.switches

(* --- downward flow sync --------------------------------------------------------- *)

let master_flow_name t view_flow = Printf.sprintf "s.%s.%s" t.config.view view_flow

(* Rewrite outputs through the slice's port filter. [Flood]/[All] become
   explicit outputs on every allowed port; a physical port outside the
   slice is a violation. *)
let translate_actions t switch actions =
  let allowed = allowed_ports t switch in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | OF.Action.Output (OF.Action.Physical p) :: rest ->
      if List.mem p allowed then go (OF.Action.Output (OF.Action.Physical p) :: acc) rest
      else Error (Printf.sprintf "output port %d outside slice" p)
    | (OF.Action.Enqueue { port; _ } as a) :: rest ->
      if List.mem port allowed then go (a :: acc) rest
      else Error (Printf.sprintf "enqueue port %d outside slice" port)
    | OF.Action.Output (OF.Action.Flood | OF.Action.All) :: rest ->
      let outs =
        List.map (fun p -> OF.Action.Output (OF.Action.Physical p)) allowed
      in
      go (List.rev_append outs acc) rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] actions

let sync_flow_down t switch view_flow =
  let vdir = Y.Layout.flow ~root:(Y.Yanc_fs.root t.view_fs) ~switch view_flow in
  let vfs = Y.Yanc_fs.fs t.view_fs in
  match Y.Flowdir.read_version vfs ~cred:t.cred vdir with
  | None -> ()
  | Some version ->
    let key = switch, view_flow in
    let stale =
      match Hashtbl.find_opt t.synced key with
      | Some v -> v < version
      | None -> true
    in
    if stale then begin
      Hashtbl.replace t.synced key version;
      match Y.Yanc_fs.read_flow t.view_fs ~cred:t.cred ~switch view_flow with
      | Error msg ->
        t.rejected <- t.rejected + 1;
        ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir (Some msg))
      | Ok flow -> (
        let enforced = OF.Of_match.intersect flow.of_match t.config.flowspace in
        let actions = translate_actions t switch flow.actions in
        match enforced, actions with
        | None, _ ->
          t.rejected <- t.rejected + 1;
          ignore
            (Y.Flowdir.set_error vfs ~cred:t.cred vdir
               (Some "match outside the slice flowspace"))
        | _, Error e ->
          t.rejected <- t.rejected + 1;
          ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir (Some e))
        | Some of_match, Ok actions ->
          ignore (Y.Flowdir.set_error vfs ~cred:t.cred vdir None);
          t.accepted <- t.accepted + 1;
          let target = master_flow_name t view_flow in
          let mflow =
            { flow with
              Y.Flowdir.of_match;
              actions;
              priority = min flow.priority t.config.priority_cap;
              version = 0;
              buffer_id = None }
          in
          let result =
            match
              Y.Yanc_fs.create_flow t.master ~cred:t.cred ~switch ~name:target
                mflow
            with
            | Ok () -> Ok ()
            | Error Vfs.Errno.EEXIST ->
              (* Update in place, preserving the version chain. *)
              let mdir =
                Y.Layout.flow ~root:(Y.Yanc_fs.root t.master) ~switch target
              in
              Result.map ignore
                (Y.Flowdir.update (Y.Yanc_fs.fs t.master) ~cred:t.cred mdir
                   (fun old ->
                     { mflow with Y.Flowdir.version = old.Y.Flowdir.version }))
            | Error e -> Error (Vfs.Errno.message e)
          in
          ignore result)
    end

let sync_deletions t switch =
  let live = Y.Yanc_fs.flow_names t.view_fs ~cred:t.cred switch in
  let gone =
    Hashtbl.fold
      (fun (sw, name) _ acc ->
        if sw = switch && not (List.mem name live) then name :: acc else acc)
      t.synced []
  in
  List.iter
    (fun name ->
      Hashtbl.remove t.synced (switch, name);
      ignore
        (Y.Yanc_fs.delete_flow t.master ~cred:t.cred ~switch
           (master_flow_name t name)))
    gone

(* --- upward sync ------------------------------------------------------------------ *)

let sync_events_up t switch =
  let master_fs = Y.Yanc_fs.fs t.master in
  List.iter
    (fun (ev : Y.Eventdir.event) ->
      if in_slice t switch ev.in_port then begin
        match Y.Eventdir.frame_of ev with
        | None -> ()
        | Some frame ->
          let headers = P.Headers.of_eth ~in_port:ev.in_port frame in
          if OF.Of_match.matches t.config.flowspace headers then
            ignore
              (Y.Eventdir.publish (Y.Yanc_fs.fs t.view_fs)
                 ~root:(Y.Yanc_fs.root t.view_fs) ~switch ~in_port:ev.in_port
                 ~reason:ev.reason ~buffer_id:None ~total_len:ev.total_len
                 ~data:ev.data)
      end)
    (Y.Eventdir.consume master_fs ~cred:t.cred ~root:(Y.Yanc_fs.root t.master)
       ~switch ~app:(buffer_app t))

let sync_counters_up t switch =
  let mroot = Y.Yanc_fs.root t.master in
  let vroot = Y.Yanc_fs.root t.view_fs in
  let mfs = Y.Yanc_fs.fs t.master in
  let vfs = Y.Yanc_fs.fs t.view_fs in
  Hashtbl.iter
    (fun (sw, name) _ ->
      if sw = switch then begin
        let mcounters =
          Y.Layout.flow_counters ~root:mroot ~switch (master_flow_name t name)
        in
        let read file =
          match Fs.read_file mfs ~cred:t.cred (Vfs.Path.child mcounters file) with
          | Ok v -> Int64.of_string_opt (String.trim v)
          | Error _ -> None
        in
        match read "packets", read "bytes" with
        | Some packets, Some bytes ->
          ignore
            (Y.Flowdir.write_counters vfs ~cred:t.cred
               (Y.Layout.flow ~root:vroot ~switch name)
               ~packets ~bytes ~duration_s:0)
        | _ -> ()
      end)
    t.synced

let sync_packet_out t switch =
  List.iter
    (fun (req : Y.Outdir.request) ->
      match translate_actions t switch req.actions with
      | Error _ -> () (* dropped: tenant tried to leave the slice *)
      | Ok actions ->
        ignore
          (Y.Outdir.submit (Y.Yanc_fs.fs t.master) ~cred:t.cred
             ~root:(Y.Yanc_fs.root t.master) ~switch ?in_port:req.in_port
             ~actions ~data:req.data ()))
    (Y.Outdir.consume (Y.Yanc_fs.fs t.view_fs) ~root:(Y.Yanc_fs.root t.view_fs)
       ~switch)

let run t ~now:_ =
  mirror_topology t;
  List.iter
    (fun switch ->
      List.iter (sync_flow_down t switch)
        (Y.Yanc_fs.flow_names t.view_fs ~cred:t.cred switch);
      sync_deletions t switch;
      sync_events_up t switch;
      sync_counters_up t switch;
      sync_packet_out t switch)
    (sliced_switches t)

let app t =
  Apps.App_intf.daemon ~name:("slicer-" ^ t.config.view) (fun ~now -> run t ~now)

let flows_accepted t = t.accepted

let flows_rejected t = t.rejected
