(** The single-big-switch virtualizer (paper §4.2): "network
    virtualization provides any arbitrary transformation, such as
    combining multiple switches and forming a new topology".

    The daemon presents, inside a view, one virtual switch ([big0] by
    default) whose ports are the {e edge} ports of the underlying
    network (ports without a [peer] link), numbered 1..n. Tenant flows
    written on the virtual switch are compiled to the physical network:

    - a flow whose action outputs virtual port [v] becomes one flow per
      physical switch forwarding along the shortest [peer]-link path
      toward [v]'s real (switch, port) — header rewrites are applied at
      the egress hop only;
    - a virtual [in_port] match is translated to the real ingress
      (switch, port) and only installed there;
    - packet-ins arriving on underlay edge ports are republished on the
      virtual switch with the virtual ingress port;
    - tenant packet-outs on a virtual port go to the real port's switch.

    The underlay handle may itself be a slicer view — stacking views is
    exactly composing these daemons (paper: "views can be stacked
    arbitrarily"). *)

type t

val create :
  ?cred:Vfs.Cred.t -> ?switch_name:string -> master:Yancfs.Yanc_fs.t ->
  view:string -> unit -> (t, Vfs.Errno.t) result

val view_fs : t -> Yancfs.Yanc_fs.t

val port_map : t -> (int * (string * int)) list
(** virtual port -> (real switch, real port), refreshed on each run. *)

val run : t -> now:float -> unit

val app : t -> Apps.App_intf.t

val flows_compiled : t -> int
