module Y = Yancfs
module Fs = Vfs.Fs

let ( let* ) = Result.bind

let provision master ~view ~owner =
  let* vyfs = Y.Yanc_fs.in_view master ~cred:Vfs.Cred.root view in
  let fs = Y.Yanc_fs.fs master in
  let vroot = Y.Yanc_fs.root vyfs in
  let* () =
    Fs.fold fs ~cred:Vfs.Cred.root vroot ~init:() (fun () path _ ->
        ignore
          (Fs.chown fs ~cred:Vfs.Cred.root path ~uid:owner.Vfs.Cred.uid
             ~gid:owner.Vfs.Cred.gid);
        ((), `Continue))
  in
  let* () = Fs.chmod fs ~cred:Vfs.Cred.root vroot 0o700 in
  Ok vyfs

let enter master ~cred ~view =
  let fs = Y.Yanc_fs.fs master in
  let vroot = Y.Layout.view ~root:(Y.Yanc_fs.root master) view in
  let* () = Fs.access fs ~cred vroot Vfs.Perm.x_ok in
  Y.Yanc_fs.in_view master ~cred view
