module M = Openflow.Of_match
module A = Openflow.Action

type rule = { rmatch : M.t; atoms : Ir.atom list }
type classifier = rule list

exception Too_big of string

(* Size guards: compilation must terminate with a clean error on
   adversarial input rather than loop or exhaust memory. The limits are
   fixed constants so compilation stays deterministic. *)
let max_rules = 200_000
let max_pairs = 4_000_000

let check_rules n =
  if n > max_rules then
    raise (Too_big (Fmt.str "classifier exceeds %d rules" max_rules))

let check_pairs a b =
  if a * b > max_pairs then
    raise
      (Too_big (Fmt.str "cross-product exceeds %d rule pairs" max_pairs))

(* Deduplicate exactly-equal matches keeping the first occurrence: a
   later rule with an identical match is fully shadowed, so dropping it
   preserves first-match semantics. O(n) and deterministic. *)
let dedup_exact rules =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.rmatch then false
      else (
        Hashtbl.add seen r.rmatch ();
        true))
    rules

(* ------------------------------------------------------------------ *)
(* Predicates → total boolean classifiers                             *)
(* ------------------------------------------------------------------ *)

type brule = { bmatch : M.t; verdict : bool }

let cross_bool f ca cb =
  check_pairs (List.length ca) (List.length cb);
  let rows =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            match M.intersect a.bmatch b.bmatch with
            | Some m -> Some { bmatch = m; verdict = f a.verdict b.verdict }
            | None -> None)
          cb)
      ca
  in
  check_rules (List.length rows);
  rows

let bdedup rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r.bmatch then false
      else (
        Hashtbl.add seen r.bmatch ();
        true))
    rows

let rec pred_compile (p : Ir.pred) : brule list =
  match p with
  | True -> [ { bmatch = M.any; verdict = true } ]
  | False -> [ { bmatch = M.any; verdict = false } ]
  | Test m ->
      if M.equal m M.any then [ { bmatch = M.any; verdict = true } ]
      else
        [
          { bmatch = m; verdict = true }; { bmatch = M.any; verdict = false };
        ]
  | Not a ->
      List.map (fun r -> { r with verdict = not r.verdict }) (pred_compile a)
  | And (a, b) -> bdedup (cross_bool ( && ) (pred_compile a) (pred_compile b))
  | Or (a, b) -> bdedup (cross_bool ( || ) (pred_compile a) (pred_compile b))

(* ------------------------------------------------------------------ *)
(* Pre-image of a match under a rewrite (the seq construction)        *)
(* ------------------------------------------------------------------ *)

(* [inv_apply mods m] is the match hit by exactly the packets whose
   image under [mods] hits [m] — [None] when that set is empty. For a
   field the rewrite sets to [v]: a constraint on it is either already
   satisfied by [v] (drop the constraint) or unsatisfiable. Unmodified
   fields keep their constraint. *)
let inv_field (set : 'v option) (want : 'v option) :
    [ `Keep | `Drop | `Unsat ] =
  match (set, want) with
  | None, _ -> `Keep
  | Some _, None -> `Drop
  | Some v, Some c -> if Stdlib.compare v c = 0 then `Drop else `Unsat

let inv_prefix (set : Packet.Ipv4_addr.t option)
    (want : Packet.Ipv4_addr.Prefix.t option) : [ `Keep | `Drop | `Unsat ] =
  match (set, want) with
  | None, _ -> `Keep
  | Some _, None -> `Drop
  | Some v, Some p ->
      if Packet.Ipv4_addr.Prefix.matches p v then `Drop else `Unsat

let inv_apply (mods : Ir.mods) (m : M.t) : M.t option =
  let exception Unsat in
  let fld set want = match inv_field set want with
    | `Keep -> want
    | `Drop -> None
    | `Unsat -> raise Unsat
  in
  let pfx set want = match inv_prefix set want with
    | `Keep -> want
    | `Drop -> None
    | `Unsat -> raise Unsat
  in
  match
    {
      M.in_port = m.M.in_port;
      dl_src = fld mods.m_dl_src m.dl_src;
      dl_dst = fld mods.m_dl_dst m.dl_dst;
      dl_vlan = fld mods.m_dl_vlan m.dl_vlan;
      dl_vlan_pcp = fld mods.m_dl_vlan_pcp m.dl_vlan_pcp;
      dl_type = m.dl_type;
      nw_src = pfx mods.m_nw_src m.nw_src;
      nw_dst = pfx mods.m_nw_dst m.nw_dst;
      nw_proto = m.nw_proto;
      nw_tos = fld mods.m_nw_tos m.nw_tos;
      tp_src = fld mods.m_tp_src m.tp_src;
      tp_dst = fld mods.m_tp_dst m.tp_dst;
    }
  with
  | pre -> Some pre
  | exception Unsat -> None

(* ------------------------------------------------------------------ *)
(* Policies → total atom classifiers                                  *)
(* ------------------------------------------------------------------ *)

let cross_union (ca : classifier) (cb : classifier) : classifier =
  check_pairs (List.length ca) (List.length cb);
  let rows =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            match M.intersect a.rmatch b.rmatch with
            | Some m -> Some { rmatch = m; atoms = Ir.union a.atoms b.atoms }
            | None -> None)
          cb)
      ca
  in
  check_rules (List.length rows);
  dedup_exact rows

let rec compile_exn (p : Ir.t) : classifier =
  match p with
  | Filter pr ->
      List.map
        (fun { bmatch; verdict } ->
          { rmatch = bmatch; atoms = (if verdict then [ Ir.atom_id ] else []) })
        (pred_compile pr)
  | Fwd port ->
      [ { rmatch = M.any; atoms = [ { Ir.mods = Ir.no_mods; out = Some port } ] } ]
  | Mod a -> (
      match Ir.mods_of_action a with
      | Some m ->
          [ { rmatch = M.any; atoms = [ { Ir.mods = m; out = None } ] } ]
      | None ->
          raise
            (Too_big (Fmt.str "Mod holds non-rewrite action %a" A.pp a)))
  | Par (p, q) -> cross_union (compile_exn p) (compile_exn q)
  | Ite (pr, p, q) ->
      let cp = compile_exn p and cq = compile_exn q in
      let rows =
        List.concat_map
          (fun { bmatch; verdict } ->
            let branch = if verdict then cp else cq in
            check_pairs 1 (List.length branch);
            List.filter_map
              (fun r ->
                match M.intersect bmatch r.rmatch with
                | Some m -> Some { rmatch = m; atoms = r.atoms }
                | None -> None)
              branch)
          (pred_compile pr)
      in
      check_rules (List.length rows);
      dedup_exact rows
  | Seq (p, q) ->
      let cp = compile_exn p and cq = compile_exn q in
      let fragment { rmatch; atoms } =
        match atoms with
        | [] -> [ { rmatch; atoms = [] } ]
        | _ ->
            (* Per-atom classifiers over cq's pre-images, each total on
               rmatch's domain, cross-unioned together. *)
            let per_atom (a : Ir.atom) =
              List.filter_map
                (fun r2 ->
                  match inv_apply a.Ir.mods r2.rmatch with
                  | None -> None
                  | Some pre -> (
                      match M.intersect rmatch pre with
                      | None -> None
                      | Some m ->
                          Some
                            {
                              rmatch = m;
                              atoms = Ir.norm (List.map (Ir.compose a) r2.atoms);
                            }))
                cq
            in
            List.fold_left
              (fun acc a -> cross_union acc (per_atom a))
              (per_atom (List.hd atoms))
              (List.tl atoms)
      in
      let rows = List.concat_map fragment cp in
      check_rules (List.length rows);
      dedup_exact rows

(* Full shadow elimination is O(n²); run it only on classifiers small
   enough for that to be cheap — the cutoff is a fixed constant so
   output stays deterministic. *)
let shadow_cutoff = 2000

let shadow_elim rules =
  if List.length rules > shadow_cutoff then rules
  else
    let rec go kept = function
      | [] -> List.rev kept
      | r :: rest ->
          if List.exists (fun k -> M.subsumes k.rmatch r.rmatch) kept then
            go kept rest
          else go (r :: kept) rest
    in
    go [] rules

(* Forward redundancy: a rule may go when every later rule its packets
   could fall through to produces the same atoms — the seq/ite
   constructions generate many such rows (predicate-failure fragments
   that drop just like the catch-all below them). Processed back to
   front so removals compound; the trailing catch-all is always kept
   (it is what guarantees the fall-through exists). Only runs when the
   last rule is the catch-all — true of compiler output once
   shadow_elim has pruned everything behind the first [any] row. *)
let forward_elim rules =
  if List.length rules > shadow_cutoff then rules
  else
    match List.rev rules with
    | [] -> []
    | last :: rev_front ->
        if not (M.equal last.rmatch M.any) then rules
        else
          List.fold_left
            (fun tail r ->
              let redundant =
                List.for_all
                  (fun r' ->
                    match M.intersect r.rmatch r'.rmatch with
                    | None -> true
                    | Some _ -> r'.atoms = r.atoms)
                  tail
              in
              if redundant then tail else r :: tail)
            [ last ] rev_front

let compile p =
  match Ir.well_formed p with
  | Error e -> Error e
  | Ok () -> (
      match forward_elim (shadow_elim (dedup_exact (compile_exn p))) with
      | rules -> Ok rules
      | exception Too_big e -> Error e)

let rec classify (cls : classifier) (h : Packet.Headers.t) =
  match cls with
  | [] -> []
  | r :: rest -> if M.matches r.rmatch h then r.atoms else classify rest h

(* ------------------------------------------------------------------ *)
(* Atom set → OpenFlow 1.0 action list                                *)
(* ------------------------------------------------------------------ *)

(* Field state during emission is represented as the Set_* action that
   put the field there ([None] = still at its original value). The pin
   is the Set action that restores the original from the rule's match,
   when the match determines it (exact field, or /32 for the nw
   addresses). *)
type fdesc = {
  fname : string;
  of_mods : Ir.mods -> A.t option;
  of_pin : M.t -> A.t option;
}

let fdescs : fdesc list =
  let host_pin p =
    match p with
    | Some { Packet.Ipv4_addr.Prefix.base; bits = 32 } -> Some base
    | _ -> None
  in
  [
    {
      fname = "dl_src";
      of_mods = (fun m -> Option.map (fun v -> A.Set_dl_src v) m.Ir.m_dl_src);
      of_pin = (fun m -> Option.map (fun v -> A.Set_dl_src v) m.M.dl_src);
    };
    {
      fname = "dl_dst";
      of_mods = (fun m -> Option.map (fun v -> A.Set_dl_dst v) m.Ir.m_dl_dst);
      of_pin = (fun m -> Option.map (fun v -> A.Set_dl_dst v) m.M.dl_dst);
    };
    {
      fname = "dl_vlan";
      of_mods = (fun m -> Option.map (fun v -> A.Set_vlan v) m.Ir.m_dl_vlan);
      of_pin = (fun m -> Option.map (fun v -> A.Set_vlan v) m.M.dl_vlan);
    };
    {
      fname = "dl_vlan_pcp";
      of_mods =
        (fun m -> Option.map (fun v -> A.Set_vlan_pcp v) m.Ir.m_dl_vlan_pcp);
      of_pin =
        (fun m -> Option.map (fun v -> A.Set_vlan_pcp v) m.M.dl_vlan_pcp);
    };
    {
      fname = "nw_src";
      of_mods = (fun m -> Option.map (fun v -> A.Set_nw_src v) m.Ir.m_nw_src);
      of_pin =
        (fun m -> Option.map (fun v -> A.Set_nw_src v) (host_pin m.M.nw_src));
    };
    {
      fname = "nw_dst";
      of_mods = (fun m -> Option.map (fun v -> A.Set_nw_dst v) m.Ir.m_nw_dst);
      of_pin =
        (fun m -> Option.map (fun v -> A.Set_nw_dst v) (host_pin m.M.nw_dst));
    };
    {
      fname = "nw_tos";
      of_mods = (fun m -> Option.map (fun v -> A.Set_nw_tos v) m.Ir.m_nw_tos);
      of_pin = (fun m -> Option.map (fun v -> A.Set_nw_tos v) m.M.nw_tos);
    };
    {
      fname = "tp_src";
      of_mods = (fun m -> Option.map (fun v -> A.Set_tp_src v) m.Ir.m_tp_src);
      of_pin = (fun m -> Option.map (fun v -> A.Set_tp_src v) m.M.tp_src);
    };
    {
      fname = "tp_dst";
      of_mods = (fun m -> Option.map (fun v -> A.Set_tp_dst v) m.Ir.m_tp_dst);
      of_pin = (fun m -> Option.map (fun v -> A.Set_tp_dst v) m.M.tp_dst);
    };
  ]

let emit ~rmatch atoms =
  let outs =
    List.filter (fun (a : Ir.atom) -> a.out <> None) atoms
    |> List.sort (fun (a : Ir.atom) b ->
           match
             Stdlib.compare (Ir.mods_count a.mods) (Ir.mods_count b.mods)
           with
           | 0 -> Stdlib.compare a b
           | c -> c)
  in
  let exception Unreal of string in
  let state = Array.make (List.length fdescs) None in
  let acts = ref [] in
  let step (a : Ir.atom) =
    List.iteri
      (fun i fd ->
        (* Both sides normalized through the pin: a field at its
           original pinned value is the same as one Set to it. *)
        let desired =
          match fd.of_mods a.mods with None -> fd.of_pin rmatch | d -> d
        in
        let current =
          match state.(i) with None -> fd.of_pin rmatch | c -> c
        in
        match (desired, current) with
        | None, None -> ()
        | Some d, Some c when A.equal d c -> ()
        | Some d, _ ->
            acts := d :: !acts;
            state.(i) <- Some d
        | None, Some _ ->
            raise
              (Unreal
                 (Fmt.str
                    "atom set needs the original %s restored between \
                     outputs, but the match does not pin it"
                    fd.fname)))
      fdescs;
    match a.out with
    | Some port -> acts := A.Output port :: !acts
    | None -> assert false
  in
  match List.iter step outs with
  | () -> Ok (List.rev !acts)
  | exception Unreal e -> Error e

(* ------------------------------------------------------------------ *)
(* Named, prioritized flow rules                                      *)
(* ------------------------------------------------------------------ *)

type flow_rule = {
  name : string;
  of_match : M.t;
  priority : int;
  actions : A.t list;
  atoms : Ir.atom list;
}

let priority_base = 50_000
let priority_floor = 33_000

(* Rules are content-named so an unchanged rule keeps its identity (and
   its flow file) across recompiles; priority deliberately stays out of
   the hash so reprioritized-but-unchanged rules are still "the same"
   to the differ. *)
let rule_name ~of_match ~actions =
  let content =
    String.concat ";"
      (List.map (fun (k, v) -> k ^ "=" ^ v) (M.to_fields of_match))
    ^ "/"
    ^ String.concat ";"
        (List.map (fun (k, v) -> k ^ "=" ^ v) (A.to_fields actions))
  in
  "pol_" ^ String.sub (Digest.to_hex (Digest.string content)) 0 16

let priorities n =
  let band = priority_base - priority_floor in
  if n > band then
    Error (Fmt.str "policy compiles to %d rules; at most %d installable" n band)
  else
    let gap = max 1 (min 16 (band / (n + 1))) in
    Ok (List.init n (fun i -> priority_base - ((i + 1) * gap)))

let to_flows p =
  match compile p with
  | Error e -> Error e
  | Ok cls -> (
      let emitted =
        List.map
          (fun r ->
            match emit ~rmatch:r.rmatch r.atoms with
            | Ok actions -> Ok (r, actions)
            | Error e ->
                Error
                  (Fmt.str "unrealizable rule [%a]: %s" M.pp r.rmatch e))
          cls
      in
      match
        List.fold_right
          (fun x acc ->
            match (x, acc) with
            | Ok r, Ok rs -> Ok (r :: rs)
            | Error e, _ | _, Error e -> Error e)
          emitted (Ok [])
      with
      | Error e -> Error e
      | Ok rules -> (
          match priorities (List.length rules) with
          | Error e -> Error e
          | Ok prios ->
              Ok
                (List.map2
                   (fun (r, actions) priority ->
                     {
                       name = rule_name ~of_match:r.rmatch ~actions;
                       of_match = r.rmatch;
                       priority;
                       actions;
                       atoms = r.atoms;
                     })
                   rules prios)))

let render rules =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf r.name;
      Buffer.add_string buf (Fmt.str " prio=%d" r.priority);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Fmt.str " %s=%s" k v))
        (M.to_fields r.of_match);
      Buffer.add_string buf " ->";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Fmt.str " %s=%s" k v))
        (A.to_fields r.actions);
      Buffer.add_char buf '\n')
    rules;
  Buffer.contents buf
