(** The policy compiler: IR → total first-match classifier → named,
    prioritized flow rules.

    The intermediate form is a {e total} classifier — a priority-ordered
    rule list in which some rule matches every packet (the compiler
    maintains a trailing catch-all). Totality is the invariant that
    makes the combinator constructions correct: [par] is the
    lexicographic cross-product with atom-set union, [seq] substitutes
    the right classifier through the pre-image of each left atom's
    rewrites, [ite] restricts each branch to the predicate's rules —
    all three only compose correctly when both inputs are total and
    {!Openflow.Of_match.intersect} is exact, which it is.

    Correctness is stated against {!Interp.eval}:
    [classify (compile p) h = Interp.eval p h] for every packet [h] —
    the randomized property the test suite checks over 500+ cases. *)

type rule = { rmatch : Openflow.Of_match.t; atoms : Ir.atom list }
(** One classifier row: packets matching [rmatch] (and no earlier row)
    produce [atoms]. [atoms = []] is an explicit drop. *)

type classifier = rule list

val compile : Ir.t -> (classifier, string) result
(** Deterministic (same policy → same classifier). Equal matches are
    deduplicated keeping the first; full subsumption-based shadow
    elimination runs when the classifier is ≤ 2000 rules (a fixed,
    deterministic threshold). [Error] on ill-formed policies and on
    blow-ups past the internal size guards — compilation never loops or
    exhausts memory on adversarial input. *)

val classify : classifier -> Packet.Headers.t -> Ir.atom list
(** First-match evaluation — the compiled side of the equivalence
    property. Returns [[]] past the last rule (unreachable on compiler
    output, which is total). *)

val emit :
  rmatch:Openflow.Of_match.t ->
  Ir.atom list ->
  (Openflow.Action.t list, string) result
(** Render an atom set as one OpenFlow 1.0 action list under accumulate
    semantics (each output sends the frame as rewritten so far). Atoms
    are emitted least-rewritten first; a field that must be {e restored}
    to its original value between outputs is re-set from the match when
    the match pins it (exact field, or /32 prefix for the nw
    addresses) — otherwise the rule is honestly [Error] (unrealizable
    in a single OF 1.0 action list; the classic NetCore limitation),
    never silently wrong. *)

type flow_rule = {
  name : string;
      (** ["pol_" ^ 16 hex] — content-addressed over (match, actions),
          {e not} priority, so an unchanged rule keeps its flow file
          across recompiles and the installer can diff by name. *)
  of_match : Openflow.Of_match.t;
  priority : int;
      (** Descending from {!priority_base} in steps of a gap sized so
          all rules stay above {!priority_floor} (above every app's
          default 0x8000 flows); the gaps are what let the incremental
          installer renumber only a changed segment. *)
  actions : Openflow.Action.t list;
  atoms : Ir.atom list;
}

val priority_base : int
val priority_floor : int

val to_flows : Ir.t -> (flow_rule list, string) result
(** The full pipeline: compile, dedup/shadow-eliminate, emit each rule's
    action list, name and prioritize. [Error] if any rule is
    unrealizable (the message names the rule's match). *)

val render : flow_rule list -> string
(** Canonical bytes for a compiled rule list — two compiles of the same
    policy are byte-identical (the determinism property), and the
    engine hashes this to skip no-op recompiles. *)
