(** The reference interpreter — the executable specification the
    classifier compiler is proved against (ISSUE 10's test archetype:
    same linear-spec discipline as the dcache/fsnotify/classifier
    layers, at the semantic level).

    [eval p h] is the denotation of policy [p] on the packet whose
    header view is [h]: the normalized set of {!Ir.atom}s it produces.
    Everything else in the policy layer is judged against this
    function. *)

val eval_pred : Ir.pred -> Packet.Headers.t -> bool

val eval : Ir.t -> Packet.Headers.t -> Ir.atom list
(** Denotational semantics, Kleisli-composed over the powerset monad:
    [Filter] keeps or drops the unit atom, [Fwd]/[Mod] produce one
    atom, [Seq p q] runs [q] on each [p]-atom's rewritten packet and
    composes, [Par] unions, [Ite] branches per packet. The result is
    {!Ir.norm}alized. *)

val emitted :
  Ir.atom list ->
  Packet.Headers.t ->
  (Packet.Headers.t * Openflow.Action.pseudo_port) list
(** The observable effect of an atom set on a packet: one
    (rewritten headers, output port) pair per atom that actually
    outputs (atoms with [out = None] are discarded), sorted and
    deduplicated. This is the value compared against {!replay} in the
    equivalence property. *)

val replay :
  Openflow.Action.t list ->
  Packet.Headers.t ->
  (Packet.Headers.t * Openflow.Action.pseudo_port) list
(** OpenFlow 1.0 switch semantics for a compiled action list: actions
    apply in order to an accumulating header state, and each
    [Output]/[Enqueue] emits the packet {e as rewritten so far}. Sorted
    and deduplicated like {!emitted}, so
    [replay compiled h = emitted (eval p h) h] is the per-rule
    correctness statement for realizable rules. *)
