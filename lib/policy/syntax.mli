(** Concrete syntax for policy files under [/yanc/policy/].

    Grammar (whitespace-insensitive; [#] starts a line comment):

    {v
    policy ::= seq ('|' seq)*                          parallel union
    seq    ::= atom (';' atom)*                        sequential
    atom   ::= '(' policy ')'
             | 'id' | 'drop' | 'flood' | 'all' | 'inport'
             | 'controller' | 'controller' '(' int ')'
             | 'fwd' '(' int ')'
             | 'filter' pred
             | 'if' pred 'then' atom 'else' atom
             | field ':=' value                        header rewrite
    pred   ::= conj ('||' conj)*
    conj   ::= term ('&&' term)*
    term   ::= '!' term | '(' pred ')' | 'true' | 'false'
             | field '=' value                         match test
    v}

    Match fields and value syntax are exactly the flow-file schema of
    {!Openflow.Of_match.set_field} ([nw_src = 10.0.0.0/8],
    [dl_type = 0x0800], [dl_src = aa:bb:cc:dd:ee:ff]); rewrite fields
    are the nine settable ones (no [in_port]/[dl_type]/[nw_proto]),
    values as in {!Openflow.Action.parse_one}. *)

val parse : string -> (Ir.t, string) result
(** Errors name the offending token; the result is always
    {!Ir.well_formed}. *)

val to_string : Ir.t -> string
(** Canonical printing: minimal parentheses, [id]/[drop] sugar,
    [if] branches always parenthesized. [parse (to_string p)]
    reconstructs [p] up to the representation of multi-field [Test]s
    (printed as [&&]-conjunctions of single-field tests). *)

val pred_to_string : Ir.pred -> string
