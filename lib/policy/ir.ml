type pred =
  | True
  | False
  | Test of Openflow.Of_match.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t =
  | Filter of pred
  | Fwd of Openflow.Action.pseudo_port
  | Mod of Openflow.Action.t
  | Seq of t * t
  | Par of t * t
  | Ite of pred * t * t

let drop = Filter False
let id = Filter True

type mods = {
  m_dl_src : Packet.Mac.t option;
  m_dl_dst : Packet.Mac.t option;
  m_dl_vlan : int option;
  m_dl_vlan_pcp : int option;
  m_nw_src : Packet.Ipv4_addr.t option;
  m_nw_dst : Packet.Ipv4_addr.t option;
  m_nw_tos : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

let no_mods =
  {
    m_dl_src = None;
    m_dl_dst = None;
    m_dl_vlan = None;
    m_dl_vlan_pcp = None;
    m_nw_src = None;
    m_nw_dst = None;
    m_nw_tos = None;
    m_tp_src = None;
    m_tp_dst = None;
  }

let mods_of_action (a : Openflow.Action.t) =
  match a with
  | Set_dl_src m -> Some { no_mods with m_dl_src = Some m }
  | Set_dl_dst m -> Some { no_mods with m_dl_dst = Some m }
  | Set_vlan v -> Some { no_mods with m_dl_vlan = Some v }
  | Set_vlan_pcp p -> Some { no_mods with m_dl_vlan_pcp = Some p }
  | Set_nw_src a -> Some { no_mods with m_nw_src = Some a }
  | Set_nw_dst a -> Some { no_mods with m_nw_dst = Some a }
  | Set_nw_tos t -> Some { no_mods with m_nw_tos = Some t }
  | Set_tp_src p -> Some { no_mods with m_tp_src = Some p }
  | Set_tp_dst p -> Some { no_mods with m_tp_dst = Some p }
  | Output _ | Enqueue _ | Strip_vlan -> None

let opt_or a b = match b with Some _ -> b | None -> a

let override a b =
  {
    m_dl_src = opt_or a.m_dl_src b.m_dl_src;
    m_dl_dst = opt_or a.m_dl_dst b.m_dl_dst;
    m_dl_vlan = opt_or a.m_dl_vlan b.m_dl_vlan;
    m_dl_vlan_pcp = opt_or a.m_dl_vlan_pcp b.m_dl_vlan_pcp;
    m_nw_src = opt_or a.m_nw_src b.m_nw_src;
    m_nw_dst = opt_or a.m_nw_dst b.m_nw_dst;
    m_nw_tos = opt_or a.m_nw_tos b.m_nw_tos;
    m_tp_src = opt_or a.m_tp_src b.m_tp_src;
    m_tp_dst = opt_or a.m_tp_dst b.m_tp_dst;
  }

let apply_mods m (h : Packet.Headers.t) =
  {
    h with
    dl_src = (match m.m_dl_src with Some v -> v | None -> h.dl_src);
    dl_dst = (match m.m_dl_dst with Some v -> v | None -> h.dl_dst);
    dl_vlan = opt_or h.dl_vlan m.m_dl_vlan;
    dl_vlan_pcp = opt_or h.dl_vlan_pcp m.m_dl_vlan_pcp;
    nw_src = opt_or h.nw_src m.m_nw_src;
    nw_dst = opt_or h.nw_dst m.m_nw_dst;
    nw_tos = opt_or h.nw_tos m.m_nw_tos;
    tp_src = opt_or h.tp_src m.m_tp_src;
    tp_dst = opt_or h.tp_dst m.m_tp_dst;
  }

let mods_to_actions m : Openflow.Action.t list =
  let add f acc = match f with Some a -> a :: acc | None -> acc in
  []
  |> add (Option.map (fun p -> Openflow.Action.Set_tp_dst p) m.m_tp_dst)
  |> add (Option.map (fun p -> Openflow.Action.Set_tp_src p) m.m_tp_src)
  |> add (Option.map (fun t -> Openflow.Action.Set_nw_tos t) m.m_nw_tos)
  |> add (Option.map (fun a -> Openflow.Action.Set_nw_dst a) m.m_nw_dst)
  |> add (Option.map (fun a -> Openflow.Action.Set_nw_src a) m.m_nw_src)
  |> add (Option.map (fun p -> Openflow.Action.Set_vlan_pcp p) m.m_dl_vlan_pcp)
  |> add (Option.map (fun v -> Openflow.Action.Set_vlan v) m.m_dl_vlan)
  |> add (Option.map (fun d -> Openflow.Action.Set_dl_dst d) m.m_dl_dst)
  |> add (Option.map (fun s -> Openflow.Action.Set_dl_src s) m.m_dl_src)

let mods_count m = List.length (mods_to_actions m)

let well_formed p =
  let rec go = function
    | Filter _ -> Ok ()
    | Fwd Openflow.Action.Drop ->
        Error "Fwd Drop is not a policy; use `drop` (Filter False)"
    | Fwd _ -> Ok ()
    | Mod a -> (
        match mods_of_action a with
        | Some _ -> Ok ()
        | None ->
            Error
              (Fmt.str "Mod holds non-rewrite action %a" Openflow.Action.pp a))
    | Seq (p, q) | Par (p, q) -> (
        match go p with Ok () -> go q | e -> e)
    | Ite (_, p, q) -> ( match go p with Ok () -> go q | e -> e)
  in
  go p

let size p =
  let rec psize = function
    | True | False | Test _ -> 1
    | And (a, b) | Or (a, b) -> 1 + psize a + psize b
    | Not a -> 1 + psize a
  in
  let rec go = function
    | Filter pr -> 1 + psize pr
    | Fwd _ | Mod _ -> 1
    | Seq (p, q) | Par (p, q) -> 1 + go p + go q
    | Ite (pr, p, q) -> 1 + psize pr + go p + go q
  in
  go p

type atom = { mods : mods; out : Openflow.Action.pseudo_port option }

let atom_id = { mods = no_mods; out = None }

let compose a b =
  {
    mods = override a.mods b.mods;
    out = (match b.out with Some _ -> b.out | None -> a.out);
  }

(* Atoms contain only immediates (ints, private-int macs, private-int32
   addresses), so the polymorphic compare is a sound total order. *)
let norm atoms = List.sort_uniq Stdlib.compare atoms
let union a b = norm (List.rev_append a b)

let pp_atom ppf a =
  let acts = mods_to_actions a.mods in
  let out =
    match a.out with
    | Some p -> [ Openflow.Action.Output p ]
    | None -> []
  in
  Fmt.pf ppf "{%a}" Openflow.Action.pp_list (acts @ out)

let pp_atoms = Fmt.(brackets (list ~sep:(any "; ") pp_atom))
