let rec eval_pred p (h : Packet.Headers.t) =
  match p with
  | Ir.True -> true
  | Ir.False -> false
  | Ir.Test m -> Openflow.Of_match.matches m h
  | Ir.And (a, b) -> eval_pred a h && eval_pred b h
  | Ir.Or (a, b) -> eval_pred a h || eval_pred b h
  | Ir.Not a -> not (eval_pred a h)

let rec eval (p : Ir.t) (h : Packet.Headers.t) : Ir.atom list =
  match p with
  | Filter pr -> if eval_pred pr h then [ Ir.atom_id ] else []
  | Fwd port -> [ { Ir.mods = Ir.no_mods; out = Some port } ]
  | Mod a -> (
      match Ir.mods_of_action a with
      | Some m -> [ { Ir.mods = m; out = None } ]
      | None -> [])
  | Seq (p, q) ->
      (* Kleisli bind: run q on each p-atom's rewritten packet. *)
      Ir.norm
        (List.concat_map
           (fun (a : Ir.atom) ->
             let h' = Ir.apply_mods a.mods h in
             List.map (Ir.compose a) (eval q h'))
           (eval p h))
  | Par (p, q) -> Ir.union (eval p h) (eval q h)
  | Ite (pr, p, q) -> if eval_pred pr h then eval p h else eval q h

let emitted atoms h =
  List.sort_uniq Stdlib.compare
    (List.filter_map
       (fun (a : Ir.atom) ->
         match a.out with
         | Some port -> Some (Ir.apply_mods a.mods h, port)
         | None -> None)
       atoms)

let replay actions h =
  let emit, _ =
    List.fold_left
      (fun (acc, h) (act : Openflow.Action.t) ->
        match act with
        | Output Openflow.Action.Drop -> (acc, h)
        | Output port -> ((h, port) :: acc, h)
        | Enqueue { port; _ } -> ((h, Openflow.Action.Physical port) :: acc, h)
        | Strip_vlan ->
            (acc, { h with Packet.Headers.dl_vlan = None; dl_vlan_pcp = None })
        | _ ->
            let m = Option.get (Ir.mods_of_action act) in
            (acc, Ir.apply_mods m h))
      ([], h) actions
  in
  List.sort_uniq Stdlib.compare emit
