module A = Openflow.Action
module M = Openflow.Of_match

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | LPAREN
  | RPAREN
  | SEMI
  | BAR
  | BARBAR
  | AMPAMP
  | BANG
  | EQ
  | ASSIGN
  | WORD of string

let token_to_string = function
  | LPAREN -> "("
  | RPAREN -> ")"
  | SEMI -> ";"
  | BAR -> "|"
  | BARBAR -> "||"
  | AMPAMP -> "&&"
  | BANG -> "!"
  | EQ -> "="
  | ASSIGN -> ":="
  | WORD w -> w

(* Word characters cover every value form the flow-file schema uses:
   MACs (colons), CIDR prefixes (dots, slash), hex dl_type. A ':'
   immediately followed by '=' ends the word so `dl_vlan:=10` lexes as
   an assignment, not one word. *)
let is_word_char s i =
  let c = s.[i] in
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '/'
  || (c = ':' && not (i + 1 < String.length s && s.[i + 1] = '='))

let lex src =
  let n = String.length src in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\r' | '\n' -> go (i + 1) acc
      | '#' ->
          let j = try String.index_from src i '\n' with Not_found -> n in
          go j acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | ';' -> go (i + 1) (SEMI :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '!' -> go (i + 1) (BANG :: acc)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> go (i + 2) (BARBAR :: acc)
      | '|' -> go (i + 1) (BAR :: acc)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> go (i + 2) (AMPAMP :: acc)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (ASSIGN :: acc)
      | _ when is_word_char src i ->
          let j = ref i in
          while !j < n && is_word_char src !j do
            incr j
          done;
          go !j (WORD (String.sub src i (!j - i)) :: acc)
      | c -> Error (Fmt.str "unexpected character %C at offset %d" c i)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent over a token array)                      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type stream = { toks : token array; mutable pos : int }

let peek s = if s.pos < Array.length s.toks then Some s.toks.(s.pos) else None
let advance s = s.pos <- s.pos + 1

let expect s tok what =
  match peek s with
  | Some t when t = tok -> advance s
  | Some t ->
      raise (Parse_error (Fmt.str "expected %s, got %S" what (token_to_string t)))
  | None -> raise (Parse_error (Fmt.str "expected %s, got end of input" what))

let word s what =
  match peek s with
  | Some (WORD w) ->
      advance s;
      w
  | Some t ->
      raise (Parse_error (Fmt.str "expected %s, got %S" what (token_to_string t)))
  | None -> raise (Parse_error (Fmt.str "expected %s, got end of input" what))

let int_word s what =
  let w = word s what in
  match int_of_string_opt w with
  | Some n -> n
  | None -> raise (Parse_error (Fmt.str "expected %s, got %S" what w))

(* The rewrite field names map onto Action.parse_one kinds. *)
let mod_kind_of_field = function
  | "dl_src" -> Some "set_dl_src"
  | "dl_dst" -> Some "set_dl_dst"
  | "dl_vlan" -> Some "set_vlan"
  | "dl_vlan_pcp" -> Some "set_vlan_pcp"
  | "nw_src" -> Some "set_nw_src"
  | "nw_dst" -> Some "set_nw_dst"
  | "nw_tos" -> Some "set_nw_tos"
  | "tp_src" -> Some "set_tp_src"
  | "tp_dst" -> Some "set_tp_dst"
  | _ -> None

let rec parse_pred s =
  let p = parse_conj s in
  match peek s with
  | Some BARBAR ->
      advance s;
      Ir.Or (p, parse_pred s)
  | _ -> p

and parse_conj s =
  let p = parse_term s in
  match peek s with
  | Some AMPAMP ->
      advance s;
      Ir.And (p, parse_conj s)
  | _ -> p

and parse_term s =
  match peek s with
  | Some BANG ->
      advance s;
      Ir.Not (parse_term s)
  | Some LPAREN ->
      advance s;
      let p = parse_pred s in
      expect s RPAREN "`)`";
      p
  | Some (WORD "true") ->
      advance s;
      Ir.True
  | Some (WORD "false") ->
      advance s;
      Ir.False
  | Some (WORD f) -> (
      advance s;
      expect s EQ (Fmt.str "`=` after match field %S" f);
      let v = word s (Fmt.str "value for match field %S" f) in
      match M.set_field M.any f v with
      | Ok m -> Ir.Test m
      | Error e -> raise (Parse_error e))
  | Some t ->
      raise
        (Parse_error (Fmt.str "expected predicate, got %S" (token_to_string t)))
  | None -> raise (Parse_error "expected predicate, got end of input")

(* Right-nested And/Or match the left-to-right reading order; eval is
   unaffected (&&/|| are associative under eval_pred). *)

let rec parse_policy s =
  let p = parse_seq s in
  match peek s with
  | Some BAR ->
      advance s;
      Ir.Par (p, parse_policy s)
  | _ -> p

and parse_seq s =
  let p = parse_atom s in
  match peek s with
  | Some SEMI ->
      advance s;
      Ir.Seq (p, parse_atom_seq s)
  | _ -> p

and parse_atom_seq s =
  (* continuation of a `;` chain: right-nested like the predicates *)
  let p = parse_atom s in
  match peek s with
  | Some SEMI ->
      advance s;
      Ir.Seq (p, parse_atom_seq s)
  | _ -> p

and parse_atom s =
  match peek s with
  | Some LPAREN ->
      advance s;
      let p = parse_policy s in
      expect s RPAREN "`)`";
      p
  | Some (WORD kw) -> (
      advance s;
      match kw with
      | "id" -> Ir.id
      | "drop" -> Ir.drop
      | "flood" -> Ir.Fwd A.Flood
      | "all" -> Ir.Fwd A.All
      | "inport" | "in_port" -> Ir.Fwd A.In_port
      | "controller" -> (
          match peek s with
          | Some LPAREN ->
              advance s;
              let n = int_word s "max-bytes for controller(...)" in
              expect s RPAREN "`)`";
              Ir.Fwd (A.Controller n)
          | _ -> Ir.Fwd (A.Controller 0))
      | "fwd" ->
          expect s LPAREN "`(` after fwd";
          let n = int_word s "port number for fwd(...)" in
          expect s RPAREN "`)`";
          if n <= 0 then
            raise (Parse_error (Fmt.str "fwd(%d): port must be positive" n));
          Ir.Fwd (A.Physical n)
      | "filter" -> Ir.Filter (parse_pred s)
      | "if" ->
          let pr = parse_pred s in
          (match peek s with
          | Some (WORD "then") -> advance s
          | _ -> raise (Parse_error "expected `then` after if-predicate"));
          let p = parse_atom s in
          (match peek s with
          | Some (WORD "else") -> advance s
          | _ -> raise (Parse_error "expected `else` after then-branch"));
          let q = parse_atom s in
          Ir.Ite (pr, p, q)
      | f -> (
          match mod_kind_of_field f with
          | Some kind -> (
              expect s ASSIGN (Fmt.str "`:=` after rewrite field %S" f);
              let v = word s (Fmt.str "value for rewrite field %S" f) in
              match A.parse_one ~kind v with
              | Ok a -> Ir.Mod a
              | Error e -> raise (Parse_error e))
          | None ->
              raise
                (Parse_error
                   (Fmt.str
                      "unknown policy form %S (not a keyword or rewrite field)"
                      f))))
  | Some t ->
      raise (Parse_error (Fmt.str "expected policy, got %S" (token_to_string t)))
  | None -> raise (Parse_error "expected policy, got end of input")

let parse src =
  match lex src with
  | Error e -> Error e
  | Ok [] -> Error "empty policy (write `drop` to drop everything)"
  | Ok toks -> (
      let s = { toks = Array.of_list toks; pos = 0 } in
      match parse_policy s with
      | p -> (
          match peek s with
          | None -> Ok p
          | Some t ->
              Error (Fmt.str "trailing input at %S" (token_to_string t)))
      | exception Parse_error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Canonical printer                                                  *)
(* ------------------------------------------------------------------ *)

let field_of_mod (a : A.t) =
  match a with
  | Set_dl_src m -> ("dl_src", Packet.Mac.to_string m)
  | Set_dl_dst m -> ("dl_dst", Packet.Mac.to_string m)
  | Set_vlan v -> ("dl_vlan", string_of_int v)
  | Set_vlan_pcp v -> ("dl_vlan_pcp", string_of_int v)
  | Set_nw_src a -> ("nw_src", Packet.Ipv4_addr.to_string a)
  | Set_nw_dst a -> ("nw_dst", Packet.Ipv4_addr.to_string a)
  | Set_nw_tos v -> ("nw_tos", string_of_int v)
  | Set_tp_src v -> ("tp_src", string_of_int v)
  | Set_tp_dst v -> ("tp_dst", string_of_int v)
  | Output _ | Enqueue _ | Strip_vlan ->
      invalid_arg "Policy.Syntax: Mod holds a non-rewrite action"

(* Predicate levels: Or = 0, And = 1, unary = 2. *)
let rec pp_pred lvl buf p =
  let parens need body =
    if need then (
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')')
    else body ()
  in
  match p with
  | Ir.True -> Buffer.add_string buf "true"
  | Ir.False -> Buffer.add_string buf "false"
  | Ir.Not a ->
      Buffer.add_char buf '!';
      pp_pred 2 buf a
  | Ir.Or (a, b) ->
      parens (lvl > 0) (fun () ->
          pp_pred 1 buf a;
          Buffer.add_string buf " || ";
          pp_pred 0 buf b)
  | Ir.And (a, b) ->
      parens (lvl > 1) (fun () ->
          pp_pred 2 buf a;
          Buffer.add_string buf " && ";
          pp_pred 1 buf b)
  | Ir.Test m -> (
      match M.to_fields m with
      | [] -> Buffer.add_string buf "true"
      | [ (f, v) ] ->
          Buffer.add_string buf f;
          Buffer.add_string buf " = ";
          Buffer.add_string buf v
      | fields ->
          (* conjunction of single-field tests, at And level *)
          parens (lvl > 1) (fun () ->
              List.iteri
                (fun i (f, v) ->
                  if i > 0 then Buffer.add_string buf " && ";
                  Buffer.add_string buf f;
                  Buffer.add_string buf " = ";
                  Buffer.add_string buf v)
                fields))

(* Policy levels: Par = 0, Seq = 1, atom = 2. *)
let rec pp_policy lvl buf (p : Ir.t) =
  let parens need body =
    if need then (
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')')
    else body ()
  in
  match p with
  | Filter True -> Buffer.add_string buf "id"
  | Filter False -> Buffer.add_string buf "drop"
  | Filter pr ->
      Buffer.add_string buf "filter ";
      pp_pred 0 buf pr
  | Fwd (Physical n) -> Buffer.add_string buf (Fmt.str "fwd(%d)" n)
  | Fwd In_port -> Buffer.add_string buf "inport"
  | Fwd Flood -> Buffer.add_string buf "flood"
  | Fwd All -> Buffer.add_string buf "all"
  | Fwd (Controller 0) -> Buffer.add_string buf "controller"
  | Fwd (Controller n) -> Buffer.add_string buf (Fmt.str "controller(%d)" n)
  | Fwd Drop -> Buffer.add_string buf "drop"
  | Mod a ->
      let f, v = field_of_mod a in
      Buffer.add_string buf f;
      Buffer.add_string buf " := ";
      Buffer.add_string buf v
  | Par (a, b) ->
      parens (lvl > 0) (fun () ->
          pp_policy 1 buf a;
          Buffer.add_string buf " | ";
          pp_policy 0 buf b)
  | Seq (a, b) ->
      parens (lvl > 1) (fun () ->
          pp_policy 2 buf a;
          Buffer.add_string buf " ; ";
          pp_policy 1 buf b)
  | Ite (pr, a, b) ->
      Buffer.add_string buf "if ";
      pp_pred 0 buf pr;
      Buffer.add_string buf " then (";
      pp_policy 0 buf a;
      Buffer.add_string buf ") else (";
      pp_policy 0 buf b;
      Buffer.add_char buf ')'

let to_string p =
  let buf = Buffer.create 256 in
  pp_policy 0 buf p;
  Buffer.contents buf

let pred_to_string p =
  let buf = Buffer.create 64 in
  pp_pred 0 buf p;
  Buffer.contents buf
