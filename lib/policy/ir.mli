(** The policy intermediate representation — a small NetCore-flavored
    algebra over the OpenFlow 12-tuple (paper's "higher layers compose
    on top of the file system"; Frenetic/NetCore is the exemplar).

    A policy maps one packet (its {!Packet.Headers.t} view) to a {e set}
    of {!atom}s. An atom is a header rewrite plus an optional output
    port; atoms without an output represent packets still "in flight"
    inside a [seq] chain and are discarded at top level. The reference
    interpreter ({!Interp.eval}) is the executable specification; the
    classifier compiler ({!Compile}) must agree with it on every packet
    — the same linear-spec discipline the dcache, fsnotify and
    classifier layers use, lifted to the semantic level. *)

(** {1 Predicates}

    Predicates are boolean combinations of match tests. A [Test] holds
    an ordinary {!Openflow.Of_match.t}: a single-field test is a match
    with one field present, and a multi-field match denotes the
    conjunction of its fields. [Test Of_match.any] is [True]. *)

type pred =
  | True
  | False
  | Test of Openflow.Of_match.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(** {1 Policies}

    [Mod] holds a header-rewrite action ([Set_*] constructors of
    {!Openflow.Action.t} only — no outputs, no [Strip_vlan]; see
    {!well_formed}). [Fwd] takes any pseudo-port except [Drop]
    (dropping is [Filter False], written [drop]). *)

type t =
  | Filter of pred                   (** pass matching packets unchanged *)
  | Fwd of Openflow.Action.pseudo_port
  | Mod of Openflow.Action.t         (** rewrite one header field *)
  | Seq of t * t                     (** then: pipe results through *)
  | Par of t * t                     (** union of both results *)
  | Ite of pred * t * t              (** if/then/else *)

val drop : t
(** [Filter False]. *)

val id : t
(** [Filter True]. *)

val well_formed : t -> (unit, string) result
(** [Mod] holds a [Set_*] action and [Fwd] is not [Drop]; the error
    names the offending construct. Parser output is always well formed;
    programmatic IR should be checked before compiling. *)

val size : t -> int
(** Constructor count (predicates included) — the policy-size axis of
    the E22 bench. *)

(** {1 Header rewrites}

    The modifiable fields are exactly the nine the OpenFlow 1.0 action
    set can rewrite ([in_port], [dl_type] and [nw_proto] have no set
    action). [None] means the field is left alone. *)

type mods = {
  m_dl_src : Packet.Mac.t option;
  m_dl_dst : Packet.Mac.t option;
  m_dl_vlan : int option;
  m_dl_vlan_pcp : int option;
  m_nw_src : Packet.Ipv4_addr.t option;
  m_nw_dst : Packet.Ipv4_addr.t option;
  m_nw_tos : int option;
  m_tp_src : int option;
  m_tp_dst : int option;
}

val no_mods : mods

val mods_of_action : Openflow.Action.t -> mods option
(** [Some] for the nine [Set_*] constructors, [None] otherwise. *)

val override : mods -> mods -> mods
(** [override a b]: apply [a] then [b]; [b]'s fields win. Associative
    with identity {!no_mods} — which is what makes [seq] associative. *)

val apply_mods : mods -> Packet.Headers.t -> Packet.Headers.t
(** [apply_mods (override a b) h = apply_mods b (apply_mods a h)]. *)

val mods_to_actions : mods -> Openflow.Action.t list
(** The [Set_*] actions in canonical field order. *)

val mods_count : mods -> int
(** Number of fields set. *)

(** {1 Atoms} *)

type atom = {
  mods : mods;
  out : Openflow.Action.pseudo_port option;
      (** [None]: no output yet — the packet continues through a
          subsequent [seq] stage but is discarded at top level. *)
}

val atom_id : atom
(** No rewrites, no output — the result of [id]. *)

val compose : atom -> atom -> atom
(** Sequential composition: rewrites override left-to-right, the later
    output wins ([None] keeps the earlier one). *)

val norm : atom list -> atom list
(** Canonical atom-set form: sorted, duplicates removed. All IR and
    compiler functions produce and consume normalized lists. *)

val union : atom list -> atom list -> atom list
(** Set union of two normalized lists. *)

val pp_atom : Format.formatter -> atom -> unit
val pp_atoms : Format.formatter -> atom list -> unit
