(** An inotify-like notifier over a {!Vfs.Fs.t}.

    A notifier owns a bounded event queue and any number of watches. It
    is implemented purely as a subscriber of the VFS mutation stream —
    "use of the *notify systems comes free, requiring no additional
    lines of code to the yanc file system" (paper §5.2).

    Watches are path-based (the simulation has no persistent inode
    handles across rename); a watch placed on a directory reports events
    for its direct children, a watch placed on a file reports events on
    the file itself, and [~recursive:true] extends a directory watch to
    the whole subtree (fanotify-style). *)

type t

type mask = Event.kind list
(** Event kinds the watch is interested in. *)

val all : mask

val create : ?queue_limit:int -> Vfs.Fs.t -> t
(** [queue_limit] (default 16384) bounds the pending-event queue; on
    overflow an {!Event.Overflow} event replaces the excess, as inotify
    does. *)

val close : t -> unit
(** Detach from the file system; pending events remain readable. *)

val add_watch : ?recursive:bool -> t -> Vfs.Path.t -> mask -> int
(** Returns a watch descriptor. The path need not exist yet: a watch on
    a not-yet-created directory becomes live when the directory
    appears (this differs from inotify and is convenient for watching
    e.g. a switch directory that a driver will create). *)

val rm_watch : t -> int -> unit

val read_events : t -> Event.t list
(** Drain all pending events, oldest first. Counts as one kernel
    crossing against the file system's cost model. *)

val pending : t -> int

val has_watches : t -> bool
