(** An inotify-like notifier over a {!Vfs.Fs.t}.

    A notifier owns a bounded event queue and any number of watches. It
    is implemented purely as a subscriber of the VFS mutation stream —
    "use of the *notify systems comes free, requiring no additional
    lines of code to the yanc file system" (paper §5.2).

    Watches are path-based (the simulation has no persistent inode
    handles across rename); a watch placed on a directory reports events
    for its direct children, a watch placed on a file reports events on
    the file itself, and [~recursive:true] extends a directory watch to
    the whole subtree (fanotify-style).

    Dispatch is served by an {!Routing} index — hash probes for exact
    and parent watches, a component trie for recursive ones — so a
    mutation costs O(path depth + matching watches) rather than a scan
    of every watch. Within one mutation, events are delivered in
    ascending watch-descriptor order.

    Back-to-back identical [Modified] events on the same (watch, path)
    coalesce into one, as inotify merges repeated IN_MODIFY: an event
    merges only with the event currently at the {e tail} of the queue,
    so an intervening event on any other path or watch — or a drain
    that empties the queue — is a coalescing boundary. *)

type t

type mask = int
(** A bitset of {!Event.bit} values: the event kinds the watch is
    interested in. *)

val mask : Event.kind list -> mask

val all : mask
(** Every kind except [Overflow] (overflow sentinels are delivered
    unconditionally). *)

val mask_mem : Event.kind -> mask -> bool

type backend =
  | Indexed  (** the routing index; the default *)
  | Linear   (** the reference full scan, kept for equivalence tests and
                 benches *)

val create : ?backend:backend -> ?queue_limit:int -> Vfs.Fs.t -> t
(** [queue_limit] (default 16384) bounds the pending-event queue,
    sentinel included: once the queue holds [queue_limit - 1] events the
    next event is dropped and replaced by a final {!Event.Overflow}
    sentinel, so the queue never exceeds [queue_limit]. Further events
    are counted as dropped (see {!overflows}) until the sentinel is
    read. *)

val close : t -> unit
(** Detach from the file system; pending events remain readable. *)

val add_watch : ?recursive:bool -> t -> Vfs.Path.t -> mask -> int
(** Returns a watch descriptor. The path need not exist yet: a watch on
    a not-yet-created directory becomes live when the directory
    appears (this differs from inotify and is convenient for watching
    e.g. a switch directory that a driver will create). *)

val rm_watch : t -> int -> unit

val read_events : ?max:int -> t -> Event.t list
(** Drain pending events, oldest first; at most [max] of them when
    given, leaving the rest queued for the next call — the batched
    drain watch-driven daemons use to bound their per-tick work. Counts
    as one kernel crossing against the file system's cost model. *)

val pending : t -> int

val set_wakeup : t -> (unit -> unit) -> unit
(** Install a callback fired whenever an event is queued (not on
    coalesces or overflow drops — the queue already held something
    then). Lets a scheduler park a consumer until its notifier has
    something to read instead of polling [pending]. *)

val has_watches : t -> bool

val coalesced : t -> int
(** Events merged into their predecessor over this notifier's lifetime. *)

val overflows : t -> int
(** Events dropped on queue overflow over this notifier's lifetime. *)

val register_metrics : t -> prefix:string -> Telemetry.Registry.t -> unit
(** Publish this notifier's live queue depth and lifetime
    coalesced/overflow counts as gauges named
    [fsnotify.<prefix>.{pending,coalesced,overflows}] — the per-consumer
    view beside the global dispatch counters {!Vfs.Cost} keeps. *)
