type kind =
  | Created
  | Deleted
  | Modified
  | Attrib
  | Moved_from
  | Moved_to
  | Delete_self
  | Move_self
  | Overflow

type t = {
  wd : int;
  kind : kind;
  path : Vfs.Path.t;
  name : string option;
}

let bit = function
  | Created -> 0x001
  | Deleted -> 0x002
  | Modified -> 0x004
  | Attrib -> 0x008
  | Moved_from -> 0x010
  | Moved_to -> 0x020
  | Delete_self -> 0x040
  | Move_self -> 0x080
  | Overflow -> 0x100

let kind_to_string = function
  | Created -> "created"
  | Deleted -> "deleted"
  | Modified -> "modified"
  | Attrib -> "attrib"
  | Moved_from -> "moved_from"
  | Moved_to -> "moved_to"
  | Delete_self -> "delete_self"
  | Move_self -> "move_self"
  | Overflow -> "overflow"

let pp ppf e =
  Format.fprintf ppf "[wd=%d %s %a%s]" e.wd (kind_to_string e.kind)
    Vfs.Path.pp e.path
    (match e.name with None -> "" | Some n -> " name=" ^ n)
