type kind =
  | Created
  | Deleted
  | Modified
  | Attrib
  | Moved_from
  | Moved_to
  | Delete_self
  | Move_self
  | Overflow

type t = {
  wd : int;
  kind : kind;
  path : Vfs.Path.t;
  name : string option;
}

let kind_to_string = function
  | Created -> "created"
  | Deleted -> "deleted"
  | Modified -> "modified"
  | Attrib -> "attrib"
  | Moved_from -> "moved_from"
  | Moved_to -> "moved_to"
  | Delete_self -> "delete_self"
  | Move_self -> "move_self"
  | Overflow -> "overflow"

let pp ppf e =
  Format.fprintf ppf "[wd=%d %s %a%s]" e.wd (kind_to_string e.kind)
    Vfs.Path.pp e.path
    (match e.name with None -> "" | Some n -> " name=" ^ n)
