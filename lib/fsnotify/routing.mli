(** The event-routing index behind {!Notifier}.

    [Notifier.deliver] used to scan every watch for every mutation —
    O(mutations × watches), the event-dispatch bottleneck the SDN
    surveys attribute to centralized control planes. The index answers
    "which watches care about a change to [path]?" with one walk of a
    component trie holding every watch at the node of its anchor —
    O(path depth + matching watches), allocation-free on the hot
    path.

    The original linear scan is retained as {!route_linear} so tests can
    prove the two implementations route identically and benches can
    measure the gap. *)

type watch = {
  wd : int;
  path : Vfs.Path.t;
  mask : int;          (** bitset over {!Event.bit} *)
  recursive : bool;
}

type t

val create : unit -> t

val count : t -> int
(** Live watches in the index. *)

val add : t -> watch -> unit

val remove : t -> int -> bool
(** Remove by watch descriptor; false if unknown. *)

val route : t -> Vfs.Path.t -> watch list * watch list * int
(** [route t path] is [(selfs, childs, visited)]: watches anchored
    exactly at [path] (candidates for self events), watches anchored at
    the parent or — if recursive — any strict ancestor (candidates for
    child events, each watch appearing once), and the number of
    candidate watches examined. Mask filtering and event construction
    are the caller's job; candidate order is unspecified (the notifier
    sorts by [wd]). *)

val route_linear : watch list -> Vfs.Path.t -> watch list * watch list * int
(** The reference full scan over a plain watch list; same contract as
    {!route}, with [visited] equal to the total number of watches. *)
