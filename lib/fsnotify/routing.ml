(* The event-routing index: given a mutated path, find the watches that
   care in O(path depth + matches) instead of O(all watches).

   A single component trie holds every watch, anchored at the node of
   its watched path (mirroring the kernel's per-inode inotify watch
   lists, with recursive watches playing the role of fanotify subtree
   marks). Routing a mutation is one walk down the trie along the
   path's components — no path-string building, no allocation on the
   hot path:

   - at every strict ancestor above the parent, collect the anchored
     watches marked [recursive] (subtree marks see child events
     anywhere below);
   - at the parent's node, collect every anchored watch (directory
     watches report child events, recursive or not);
   - at the terminal node, collect every anchored watch (self events).

   [route_linear] is the retained reference implementation: the
   original full scan, kept so equivalence tests and the E14 bench can
   prove the index changes cost, not behaviour. *)

module Path = Vfs.Path

type watch = { wd : int; path : Path.t; mask : int; recursive : bool }

type node = {
  mutable here : watch list; (* watches anchored at this node *)
  children : (string, node) Hashtbl.t;
}

type t = {
  by_wd : (int, watch) Hashtbl.t;
  root : node;
  mutable count : int;
}

let make_node () = { here = []; children = Hashtbl.create 4 }

let create () =
  { by_wd = Hashtbl.create 64; root = make_node (); count = 0 }

let count t = t.count

let node_of t path =
  List.fold_left
    (fun node c ->
      match Hashtbl.find_opt node.children c with
      | Some n -> n
      | None ->
        let n = make_node () in
        Hashtbl.add node.children c n;
        n)
    t.root (Path.components path)

let add t w =
  Hashtbl.replace t.by_wd w.wd w;
  let node = node_of t w.path in
  node.here <- w :: node.here;
  t.count <- t.count + 1

let remove t wd =
  match Hashtbl.find_opt t.by_wd wd with
  | None -> false
  | Some w ->
    Hashtbl.remove t.by_wd wd;
    let rec descend node = function
      | [] -> Some node
      | c :: rest -> (
        match Hashtbl.find_opt node.children c with
        | None -> None
        | Some n -> descend n rest)
    in
    (match descend t.root (Path.components w.path) with
    | None -> ()
    | Some node ->
      node.here <- List.filter (fun (x : watch) -> x.wd <> wd) node.here);
    t.count <- t.count - 1;
    true

let route t path =
  (* One trie walk, collecting childs (recursive at strict ancestors,
     everything at the parent) and selfs (everything at the terminal). *)
  let rec go node childs = function
    | [] -> (node.here, childs) (* the root itself has no parent *)
    | [ last ] -> (
      let childs = List.rev_append node.here childs in
      match Hashtbl.find_opt node.children last with
      | Some n -> (n.here, childs)
      | None -> ([], childs))
    | c :: rest -> (
      let childs =
        List.fold_left
          (fun acc w -> if w.recursive then w :: acc else acc)
          childs node.here
      in
      match Hashtbl.find_opt node.children c with
      | Some n -> go n childs rest
      | None -> ([], childs))
  in
  let selfs, childs = go t.root [] (Path.components path) in
  (selfs, childs, List.length selfs + List.length childs)

let route_linear watches path =
  let parent = Path.parent path in
  let visited = List.length watches in
  let selfs = List.filter (fun w -> Path.equal w.path path) watches in
  let childs =
    List.filter
      (fun w ->
        (not (Path.equal w.path path))
        && ((match parent with Some p -> Path.equal w.path p | None -> false)
           || (w.recursive && Path.is_prefix w.path path)))
      watches
  in
  (selfs, childs, visited)
