type mask = Event.kind list

let all =
  Event.
    [ Created; Deleted; Modified; Attrib; Moved_from; Moved_to; Delete_self;
      Move_self ]

type watch = { wd : int; path : Vfs.Path.t; mask : mask; recursive : bool }

type t = {
  fs : Vfs.Fs.t;
  queue_limit : int;
  queue : Event.t Queue.t;
  mutable overflowed : bool;
  mutable watches : watch list;
  mutable next_wd : int;
  mutable hook : Vfs.Fs.hook option;
}

let enqueue t (ev : Event.t) =
  if Queue.length t.queue >= t.queue_limit then begin
    if not t.overflowed then begin
      t.overflowed <- true;
      Queue.push
        { Event.wd = -1; kind = Event.Overflow; path = Vfs.Path.root; name = None }
        t.queue
    end
  end
  else Queue.push ev t.queue

let deliver t ~kind ~path =
  (* A change to [path] is reported to watches on its parent directory
     (child event, with [name]), to watches on the object itself, and to
     recursive watches on any ancestor. *)
  let parent = Vfs.Path.parent path in
  let name = Vfs.Path.basename path in
  let self_kind =
    match (kind : Event.kind) with
    | Deleted -> Event.Delete_self
    | Moved_from -> Event.Move_self
    | k -> k
  in
  List.iter
    (fun w ->
      let interested k = List.mem k w.mask in
      if Vfs.Path.equal w.path path then begin
        (* Self events: Modify/Attrib stay as-is, deletion/rename become
           *_self. Created on the watched path itself is not a self event. *)
        match kind with
        | Event.Created -> ()
        | _ ->
          if interested self_kind then
            enqueue t { Event.wd = w.wd; kind = self_kind; path; name = None }
      end
      else
        let is_parent =
          match parent with Some p -> Vfs.Path.equal w.path p | None -> false
        in
        let is_ancestor = w.recursive && Vfs.Path.is_prefix w.path path in
        if (is_parent || is_ancestor) && interested kind then
          enqueue t { Event.wd = w.wd; kind; path; name })
    t.watches

let on_op t (op : Vfs.Op.t) =
  if t.watches <> [] then
    match op with
    | Mkdir { path; _ } | Create { path; _ } | Symlink { path; _ } ->
      deliver t ~kind:Event.Created ~path
    | Write { path; _ } | Truncate { path; _ } ->
      deliver t ~kind:Event.Modified ~path
    | Unlink { path } | Rmdir { path; _ } -> deliver t ~kind:Event.Deleted ~path
    | Rename { src; dst } ->
      deliver t ~kind:Event.Moved_from ~path:src;
      deliver t ~kind:Event.Moved_to ~path:dst
    | Chmod { path; _ } | Chown { path; _ } | Set_xattr { path; _ }
    | Remove_xattr { path; _ } | Set_acl { path; _ } ->
      deliver t ~kind:Event.Attrib ~path

let create ?(queue_limit = 16384) fs =
  let t =
    { fs; queue_limit; queue = Queue.create (); overflowed = false;
      watches = []; next_wd = 1; hook = None }
  in
  t.hook <- Some (Vfs.Fs.subscribe fs (on_op t));
  t

let close t =
  match t.hook with
  | None -> ()
  | Some h ->
    Vfs.Fs.unsubscribe t.fs h;
    t.hook <- None

let add_watch ?(recursive = false) t path mask =
  let wd = t.next_wd in
  t.next_wd <- wd + 1;
  t.watches <- { wd; path; mask; recursive } :: t.watches;
  wd

let rm_watch t wd = t.watches <- List.filter (fun w -> w.wd <> wd) t.watches

let read_events t =
  Vfs.Cost.syscall (Vfs.Fs.cost t.fs);
  t.overflowed <- false;
  let evs = Queue.fold (fun acc e -> e :: acc) [] t.queue in
  Queue.clear t.queue;
  List.rev evs

let pending t = Queue.length t.queue

let has_watches t = t.watches <> []
