module Path = Vfs.Path

type mask = int

let mask kinds = List.fold_left (fun m k -> m lor Event.bit k) 0 kinds

let all =
  mask
    Event.
      [ Created; Deleted; Modified; Attrib; Moved_from; Moved_to; Delete_self;
        Move_self ]

let mask_mem k m = m land Event.bit k <> 0

type backend = Indexed | Linear

type t = {
  fs : Vfs.Fs.t;
  backend : backend;
  queue_limit : int;
  queue : Event.t Queue.t;
  index : Routing.t;                    (* Indexed backend *)
  mutable watches : Routing.watch list; (* Linear backend *)
  mutable n_watches : int;
  mutable next_wd : int;
  mutable last : Event.t option; (* tail of [queue], for coalescing *)
  mutable overflowed : bool;     (* an Overflow sentinel is queued *)
  mutable coalesced : int;
  mutable overflows : int;
  mutable hook : Vfs.Fs.hook option;
  mutable on_wake : (unit -> unit) option;
}

let cost t = Vfs.Fs.cost t.fs

let overflow_event =
  { Event.wd = -1; kind = Event.Overflow; path = Path.root; name = None }

let enqueue t (ev : Event.t) =
  let c = cost t in
  let coalesces =
    ev.kind = Event.Modified
    &&
    match t.last with
    | Some l ->
      l.kind = Event.Modified && l.wd = ev.wd && Path.equal l.path ev.path
      && l.name = ev.name
    | None -> false
  in
  if coalesces then begin
    (* Identical to the event at the tail of the queue: merge, as
       inotify merges back-to-back IN_MODIFY. Never merges across an
       intervening event on another path or watch. *)
    t.coalesced <- t.coalesced + 1;
    Vfs.Cost.event_coalesced c
  end
  else if t.overflowed then begin
    t.overflows <- t.overflows + 1;
    Vfs.Cost.overflow_dropped c
  end
  else if Queue.length t.queue >= t.queue_limit - 1 then begin
    (* The final slot is reserved for the sentinel, so the queue never
       exceeds [queue_limit]; the triggering event is dropped, as
       inotify drops the event that would not fit. *)
    t.overflowed <- true;
    t.overflows <- t.overflows + 1;
    Vfs.Cost.overflow_dropped c;
    Queue.push overflow_event t.queue;
    t.last <- Some overflow_event
  end
  else begin
    Queue.push ev t.queue;
    t.last <- Some ev;
    Vfs.Cost.event_dispatched c;
    match t.on_wake with Some f -> f () | None -> ()
  end

let deliver t ~kind ~path =
  (* A change to [path] is reported to watches on its parent directory
     (child event, with [name]), to watches on the object itself, and to
     recursive watches on any ancestor. *)
  let selfs, childs, visited =
    match t.backend with
    | Indexed -> Routing.route t.index path
    | Linear -> Routing.route_linear t.watches path
  in
  Vfs.Cost.visit_watches (cost t) visited;
  if selfs <> [] || childs <> [] then begin
    let name = Path.basename path in
    let self_kind =
      match (kind : Event.kind) with
      | Deleted -> Event.Delete_self
      | Moved_from -> Event.Move_self
      | k -> k
    in
    let acc = ref [] in
    List.iter
      (fun (w : Routing.watch) ->
        (* Self events: Modify/Attrib stay as-is, deletion/rename become
           *_self. Created on the watched path itself is not a self event. *)
        match kind with
        | Event.Created -> ()
        | _ ->
          if mask_mem self_kind w.mask then
            acc := { Event.wd = w.wd; kind = self_kind; path; name = None } :: !acc)
      selfs;
    List.iter
      (fun (w : Routing.watch) ->
        if mask_mem kind w.mask then
          acc := { Event.wd = w.wd; kind; path; name } :: !acc)
      childs;
    (* Canonical per-mutation order: ascending watch descriptor. Both
       backends agree, so routed sequences are comparable byte for
       byte. *)
    let evs = List.sort (fun (a : Event.t) b -> compare a.wd b.wd) !acc in
    List.iter (enqueue t) evs
  end

let on_op t (op : Vfs.Op.t) =
  if t.n_watches > 0 then
    match op with
    | Mkdir { path; _ } | Create { path; _ } | Symlink { path; _ } ->
      deliver t ~kind:Event.Created ~path
    | Write { path; _ } | Truncate { path; _ } ->
      deliver t ~kind:Event.Modified ~path
    | Unlink { path } | Rmdir { path; _ } -> deliver t ~kind:Event.Deleted ~path
    | Rename { src; dst } ->
      deliver t ~kind:Event.Moved_from ~path:src;
      deliver t ~kind:Event.Moved_to ~path:dst
    | Chmod { path; _ } | Chown { path; _ } | Set_xattr { path; _ }
    | Remove_xattr { path; _ } | Set_acl { path; _ } ->
      deliver t ~kind:Event.Attrib ~path

let create ?(backend = Indexed) ?(queue_limit = 16384) fs =
  let t =
    { fs; backend; queue_limit; queue = Queue.create (); index = Routing.create ();
      watches = []; n_watches = 0; next_wd = 1; last = None; overflowed = false;
      coalesced = 0; overflows = 0; hook = None; on_wake = None }
  in
  t.hook <- Some (Vfs.Fs.subscribe fs (on_op t));
  t

let close t =
  match t.hook with
  | None -> ()
  | Some h ->
    Vfs.Fs.unsubscribe t.fs h;
    t.hook <- None

let add_watch ?(recursive = false) t path mask =
  let wd = t.next_wd in
  t.next_wd <- wd + 1;
  let w = { Routing.wd; path; mask; recursive } in
  (match t.backend with
  | Indexed -> Routing.add t.index w
  | Linear -> t.watches <- w :: t.watches);
  t.n_watches <- t.n_watches + 1;
  wd

let rm_watch t wd =
  match t.backend with
  | Indexed -> if Routing.remove t.index wd then t.n_watches <- t.n_watches - 1
  | Linear ->
    let before = List.length t.watches in
    t.watches <- List.filter (fun (w : Routing.watch) -> w.wd <> wd) t.watches;
    t.n_watches <- t.n_watches - (before - List.length t.watches)

let read_events ?max t =
  Vfs.Cost.syscall (Vfs.Fs.cost t.fs);
  let n =
    match max with
    | None -> Queue.length t.queue
    | Some m -> min (Stdlib.max m 0) (Queue.length t.queue)
  in
  let out = ref [] in
  for _ = 1 to n do
    let e = Queue.pop t.queue in
    if e.Event.kind = Event.Overflow then t.overflowed <- false;
    out := e :: !out
  done;
  if Queue.is_empty t.queue then t.last <- None;
  List.rev !out

let pending t = Queue.length t.queue

let set_wakeup t f = t.on_wake <- Some f

let has_watches t = t.n_watches > 0

let coalesced t = t.coalesced

let overflows t = t.overflows

let register_metrics t ~prefix registry =
  let gauge name f =
    Telemetry.Registry.gauge registry
      (Printf.sprintf "fsnotify.%s.%s" prefix name)
      (fun () -> float_of_int (f t))
  in
  gauge "pending" pending;
  gauge "coalesced" coalesced;
  gauge "overflows" overflows
