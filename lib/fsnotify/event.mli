(** File-system change events, modelled on inotify(7).

    yanc applications monitor the network exclusively through these
    (paper §5.2): a watch on [/net/switches] reports new switches, a
    watch on a flow's [version] file reports committed flow changes. *)

type kind =
  | Created        (** a directory entry appeared (mkdir/create/symlink) *)
  | Deleted        (** a directory entry disappeared *)
  | Modified       (** file content changed (write/truncate) *)
  | Attrib         (** metadata changed (chmod/chown/xattr/acl) *)
  | Moved_from     (** entry left this directory via rename *)
  | Moved_to       (** entry arrived in this directory via rename *)
  | Delete_self    (** the watched object itself was removed *)
  | Move_self      (** the watched object itself was renamed *)
  | Overflow       (** the event queue overflowed; events were dropped *)

type t = {
  wd : int;              (** the watch this event was delivered to *)
  kind : kind;
  path : Vfs.Path.t;     (** full canonical path of the affected object *)
  name : string option;  (** entry name relative to a watched directory *)
}

val bit : kind -> int
(** Each kind's bit in a {!Notifier.mask} bitset. Mask tests are a
    single [land] instead of a [List.mem] walk on the dispatch hot
    path. [Overflow] has a bit for mask-construction convenience, but
    overflow sentinels are delivered unconditionally. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
