(** libyanc (paper §8.1): "a set of network-centric library calls atop a
    shared memory system … a fastpath for e.g. creating flow entries
    atomically and without any context switchings."

    Going through the file system, creating one flow costs one syscall
    per file — a dozen kernel crossings — and "writing flow entries to
    thousands of nodes will result in tens of thousands of context
    switches". The fastpath maps the file system once per batch: the
    whole batch of logical operations is performed inside a single
    modelled crossing ({!Vfs.Cost.suspended} around the batch, one
    {!Vfs.Cost.syscall} charged). The resulting file-system state is
    bit-identical to the slow path, so drivers and fsnotify behave the
    same. *)

type t

val create : ?cred:Vfs.Cred.t -> Yancfs.Yanc_fs.t -> t

val create_flow :
  t -> switch:string -> name:string -> Yancfs.Flowdir.t ->
  (unit, Vfs.Errno.t) result
(** One flow, atomically, one crossing (versus ~12 on the file path). *)

val push_flows :
  t -> (string * string * Yancfs.Flowdir.t) list -> (int, Vfs.Errno.t) result
(** [(switch, name, flow)] triples — the "thousands of nodes" case: the
    entire batch costs one crossing. Returns the number written. *)

val delete_flows : t -> (string * string) list -> (unit, Vfs.Errno.t) result

val read_flow_counters :
  t -> switch:string -> ((string * int64 * int64) list, Vfs.Errno.t) result
(** [(flow, packets, bytes)] for every flow of a switch, one crossing.
    Errors from reaching the switch's flow directory ([ENOENT] for an
    unknown switch, [EACCES]…) are propagated like every sibling call;
    flows whose counter files have not been written yet are skipped. *)

val batch : t -> (Yancfs.Yanc_fs.t -> 'a) -> 'a
(** Run arbitrary file-system work as one crossing — the general form
    the specific calls are built on. *)

val crossings_saved : t -> int
(** Crossings the slow path would have charged minus what this handle
    actually charged (bench instrumentation). *)
