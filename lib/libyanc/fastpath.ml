module Y = Yancfs

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  mutable saved : int;
}

let create ?(cred = Vfs.Cred.root) yfs = { yfs; cred; saved = 0 }

let cost t = Vfs.Fs.cost (Y.Yanc_fs.fs t.yfs)

(* One crossing for the whole thunk. [suspended] freezes the shared
   counter, so the specific helpers below account their own savings
   explicitly. *)
let batch t f =
  let c = cost t in
  Vfs.Cost.syscall c;
  Vfs.Cost.suspended c (fun () -> f t.yfs)

let create_flow t ~switch ~name flow =
  let c = cost t in
  Vfs.Cost.syscall c;
  Vfs.Cost.suspended c (fun () ->
      (* Slow path: mkdir + one write per field file + version. *)
      let field_count =
        2 (* mkdir + version *)
        + List.length (Openflow.Of_match.to_fields flow.Y.Flowdir.of_match)
        + List.length flow.actions + 4 (* priority/timeouts/cookie *)
      in
      t.saved <- t.saved + field_count - 1;
      Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch ~name flow)

let push_flows t triples =
  let c = cost t in
  Vfs.Cost.syscall c;
  Vfs.Cost.suspended c (fun () ->
      List.fold_left
        (fun acc (switch, name, flow) ->
          match acc with
          | Error _ as e -> e
          | Ok n -> (
            let per_flow =
              2
              + List.length (Openflow.Of_match.to_fields flow.Y.Flowdir.of_match)
              + List.length flow.Y.Flowdir.actions
              + 4
            in
            t.saved <- t.saved + per_flow;
            match
              Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch ~name flow
            with
            | Ok () -> Ok (n + 1)
            | Error Vfs.Errno.EEXIST -> Ok n
            | Error _ as e -> e))
        (Ok 0) triples)

let delete_flows t pairs =
  let c = cost t in
  Vfs.Cost.syscall c;
  Vfs.Cost.suspended c (fun () ->
      List.fold_left
        (fun acc (switch, name) ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            t.saved <- t.saved + 1;
            match Y.Yanc_fs.delete_flow t.yfs ~cred:t.cred ~switch name with
            | Ok () | Error Vfs.Errno.ENOENT -> Ok ()
            | Error _ as e -> e))
        (Ok ()) pairs)

let read_flow_counters t ~switch =
  let c = cost t in
  Vfs.Cost.syscall c;
  Vfs.Cost.suspended c (fun () ->
      let fs = Y.Yanc_fs.fs t.yfs in
      let root = Y.Yanc_fs.root t.yfs in
      let ( let* ) = Result.bind in
      (* A missing or unreadable switch is an error, not an empty list —
         matching every sibling call here. Flows whose counter files are
         absent (the driver has not reported yet) are merely skipped. *)
      let* flows =
        Vfs.Fs.readdir fs ~cred:t.cred (Y.Layout.flows_dir ~root switch)
      in
      Ok
        (List.filter_map
           (fun flow ->
             t.saved <- t.saved + 2;
             let counters = Y.Layout.flow_counters ~root ~switch flow in
             let read file =
               match
                 Vfs.Fs.read_file fs ~cred:t.cred (Vfs.Path.child counters file)
               with
               | Ok v -> Int64.of_string_opt (String.trim v)
               | Error _ -> None
             in
             match read "packets", read "bytes" with
             | Some p, Some b -> Some (flow, p, b)
             | _ -> None)
           flows))

let crossings_saved t = t.saved
