(** Zero-copy bulk-data ring (paper §8.1: libyanc "allows for the
    efficient, zero-copy passing of bulk data — packet-in buffers, for
    example — among applications").

    A bounded single-producer single-consumer ring of immutable buffer
    references. Passing a packet through the ring moves a pointer; the
    event-directory path copies the frame bytes into a file and back
    out, so the bench comparing the two shows exactly the copy cost the
    paper is eliminating. *)

type 'a t

val create : capacity:int -> 'a t

val push : 'a t -> 'a -> bool
(** False (and the producer's drop counter bumps) when full. *)

val pop : 'a t -> 'a option

val pop_all : 'a t -> 'a list

val length : 'a t -> int
val capacity : 'a t -> int
val dropped : 'a t -> int
val pushed : 'a t -> int
