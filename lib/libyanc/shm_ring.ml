type 'a t = {
  slots : 'a option array;
  capacity : int;
  mutable head : int; (* next pop *)
  mutable tail : int; (* next push *)
  mutable length : int;
  mutable dropped : int;
  mutable pushed : int;
}

let create ~capacity =
  let capacity = max 1 capacity in
  { slots = Array.make capacity None; capacity; head = 0; tail = 0; length = 0;
    dropped = 0; pushed = 0 }

let push t v =
  if t.length = t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    t.slots.(t.tail) <- Some v;
    t.tail <- (t.tail + 1) mod t.capacity;
    t.length <- t.length + 1;
    t.pushed <- t.pushed + 1;
    true
  end

let pop t =
  if t.length = 0 then None
  else begin
    let v = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod t.capacity;
    t.length <- t.length - 1;
    v
  end

let pop_all t =
  let rec go acc = match pop t with None -> List.rev acc | Some v -> go (v :: acc) in
  go []

let length t = t.length

let capacity t = t.capacity

let dropped t = t.dropped

let pushed t = t.pushed
