module P = Packet

type endpoint = Sw of int64 * int | Hst of string

type link_state = { peer : endpoint; latency : float; mutable up : bool }

type event = { at : float; seq : int; dst : endpoint; frame : P.Eth.t }

(* A small binary min-heap on (at, seq) so same-time events stay FIFO. *)
module Heap = struct
  type t = { mutable data : event array; mutable len : int }

  let dummy =
    { at = 0.; seq = 0; dst = Hst ""; frame =
        P.Eth.make ~src:P.Mac.zero ~dst:P.Mac.zero (P.Eth.Raw (0, "")) }

  let create () = { data = Array.make 64 dummy; len = 0 }

  let lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      lt h.data.(!i) h.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let peek h = if h.len = 0 then None else Some h.data.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1
        and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && lt h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end

  let length h = h.len
end

type t = {
  default_latency : float;
  mutable now : float;
  mutable seq : int;
  heap : Heap.t;
  switches : (int64, Sim_switch.t) Hashtbl.t;
  hosts : (string, Sim_host.t) Hashtbl.t;
  links : (endpoint, link_state) Hashtbl.t;
  sinks : (int64, Sim_switch.effect_ -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(default_latency = 1e-4) () =
  { default_latency; now = 0.; seq = 0; heap = Heap.create ();
    switches = Hashtbl.create 16; hosts = Hashtbl.create 16;
    links = Hashtbl.create 32; sinks = Hashtbl.create 16; delivered = 0;
    dropped = 0 }

let now t = t.now

let add_switch t sw = Hashtbl.replace t.switches (Sim_switch.dpid sw) sw

let add_host t h = Hashtbl.replace t.hosts (Sim_host.name h) h

let switch t dpid = Hashtbl.find_opt t.switches dpid

let host t name = Hashtbl.find_opt t.hosts name

let switches t =
  Hashtbl.fold (fun _ sw acc -> sw :: acc) t.switches []
  |> List.sort (fun a b -> Int64.compare (Sim_switch.dpid a) (Sim_switch.dpid b))

let hosts t =
  Hashtbl.fold (fun _ h acc -> h :: acc) t.hosts []
  |> List.sort (fun a b -> String.compare (Sim_host.name a) (Sim_host.name b))

let datapath_cost t =
  let total = Flow_table.Cost.create () in
  Hashtbl.iter
    (fun _ sw ->
      Flow_table.Cost.absorb ~into:total (Sim_switch.datapath_cost sw))
    t.switches;
  total

let ensure_port t = function
  | Hst _ -> ()
  | Sw (dpid, port) -> (
    match Hashtbl.find_opt t.switches dpid with
    | None -> ()
    | Some sw ->
      if Sim_switch.port sw port = None then Sim_switch.add_port sw port)

let set_carrier t ep down =
  match ep with
  | Hst _ -> ()
  | Sw (dpid, port) -> (
    match Hashtbl.find_opt t.switches dpid with
    | None -> ()
    | Some sw -> Sim_switch.set_link_down sw port down)

let link ?latency t a b =
  let latency = Option.value latency ~default:t.default_latency in
  ensure_port t a;
  ensure_port t b;
  Hashtbl.replace t.links a { peer = b; latency; up = true };
  Hashtbl.replace t.links b { peer = a; latency; up = true };
  set_carrier t a false;
  set_carrier t b false

let unlink t ep =
  match Hashtbl.find_opt t.links ep with
  | None -> ()
  | Some ls ->
    Hashtbl.remove t.links ep;
    Hashtbl.remove t.links ls.peer;
    set_carrier t ep true;
    set_carrier t ls.peer true

let set_link_up t ep up =
  match Hashtbl.find_opt t.links ep with
  | None -> ()
  | Some ls ->
    ls.up <- up;
    (match Hashtbl.find_opt t.links ls.peer with
    | Some back -> back.up <- up
    | None -> ());
    set_carrier t ep (not up);
    set_carrier t ls.peer (not up)

let peer_of t ep =
  match Hashtbl.find_opt t.links ep with
  | Some ls when ls.up -> Some ls.peer
  | Some _ | None -> None

let canonical_le a b =
  match a, b with
  | Sw (d1, p1), Sw (d2, p2) -> d1 < d2 || (d1 = d2 && p1 <= p2)
  | Hst h1, Hst h2 -> String.compare h1 h2 <= 0
  | Sw _, Hst _ -> true
  | Hst _, Sw _ -> false

let link_endpoints t =
  Hashtbl.fold
    (fun ep ls acc -> if canonical_le ep ls.peer then (ep, ls.peer) :: acc else acc)
    t.links []

let set_controller_sink t dpid f = Hashtbl.replace t.sinks dpid f

let schedule t ~delay ~dst frame =
  t.seq <- t.seq + 1;
  Heap.push t.heap { at = t.now +. delay; seq = t.seq; dst; frame }

let send_on_link t ep frame =
  match Hashtbl.find_opt t.links ep with
  | Some ls when ls.up -> schedule t ~delay:ls.latency ~dst:ls.peer frame
  | Some _ | None -> t.dropped <- t.dropped + 1

let transmit t ~dpid ~out_port frame = send_on_link t (Sw (dpid, out_port)) frame

let send_from_host t name frames =
  List.iter (fun f -> send_on_link t (Hst name) f) frames

let handle_effects t dpid effects =
  List.iter
    (fun eff ->
      match (eff : Sim_switch.effect_) with
      | Sim_switch.Transmit { out_port; frame } ->
        send_on_link t (Sw (dpid, out_port)) frame
      | Sim_switch.Deliver_to_controller _ -> (
        match Hashtbl.find_opt t.sinks dpid with
        | Some sink -> sink eff
        | None -> ()))
    effects

(* Only expire flows on switches without an attached agent — an agent
   runs expiry itself so it can emit flow-removed messages. *)
let expire_all t =
  Hashtbl.iter
    (fun dpid sw ->
      if not (Hashtbl.mem t.sinks dpid) then
        ignore (Sim_switch.expire_flows sw ~now:t.now))
    t.switches

let deliver t ev =
  t.delivered <- t.delivered + 1;
  match ev.dst with
  | Sw (dpid, port) -> (
    match Hashtbl.find_opt t.switches dpid with
    | None -> ()
    | Some sw ->
      handle_effects t dpid
        (Sim_switch.receive_frame sw ~now:t.now ~in_port:port ev.frame))
  | Hst name -> (
    match Hashtbl.find_opt t.hosts name with
    | None -> ()
    | Some h ->
      let replies = Sim_host.receive h ~now:t.now ev.frame in
      List.iter (fun f -> send_on_link t (Hst name) f) replies)

(* Note: flow expiry driven by the agent (which needs to emit
   flow-removed) happens in Of_agent.step; the network-level expiry here
   covers unattached switches used directly in tests. *)
let step t =
  match Heap.peek t.heap with
  | None -> false
  | Some first ->
    let at = first.at in
    t.now <- at;
    let rec drain () =
      match Heap.peek t.heap with
      | Some ev when ev.at = at -> (
        match Heap.pop t.heap with
        | Some ev ->
          deliver t ev;
          drain ()
        | None -> ())
      | Some _ | None -> ()
    in
    drain ();
    true

let run ?(max_events = 1_000_000) t =
  let budget = ref max_events in
  while !budget > 0 && step t do
    decr budget
  done

let run_until ?(max_events = 1_000_000) t pred =
  let budget = ref max_events in
  let ok = ref (pred ()) in
  while (not !ok) && !budget > 0 && step t do
    decr budget;
    ok := pred ()
  done;
  !ok

let advance_idle t dt =
  t.now <- t.now +. dt;
  expire_all t

let pending_events t = Heap.length t.heap

let stats t = t.delivered, t.dropped
