(** An in-memory bidirectional byte pipe standing in for the TCP
    connection between a switch and its controller-side driver. Bytes
    written on one endpoint are read, in order, from the other.

    The pipe is lossless and instantaneous by default. A {!Faults}
    policy can be installed per endpoint to make it misbehave the way a
    real control channel does — dropped, delayed, duplicated, reordered
    and truncated sends, plus hard disconnects — all driven by an
    explicit seeded {!Prng} and the simulation clock, so every fault
    schedule is reproducible from its seed. *)

type t

type endpoint

(** Per-endpoint fault injection. A policy applies to the endpoint's
    {e outgoing} traffic; each endpoint owns an independent PRNG stream
    so the two directions never share randomness. *)
module Faults : sig
  type policy = {
    drop : float;          (** P(send silently lost) *)
    duplicate : float;     (** P(send delivered twice) *)
    reorder : float;       (** P(send delivered before its predecessor) *)
    delay : float;         (** P(send held back) *)
    delay_s : float;       (** max hold-back, uniform in [0, delay_s] *)
    truncate : float;      (** P(send loses its tail bytes) *)
    reconnect_after : float;
        (** after a hard disconnect, {!reconnect} only succeeds once
            this many sim-seconds have passed *)
  }

  val default : policy
  (** All probabilities 0 — a policy that never fires. *)

  (** One-shot scripted faults, fired by sim time (see {!poll}). *)
  type action =
    | Drop_next of int      (** swallow the next n sends *)
    | Truncate_next of int  (** cut the next send to n bytes *)
    | Disconnect            (** hard-disconnect the channel *)

  type script_entry = { at : float; action : action }

  type t

  val create : ?policy:policy -> ?script:script_entry list -> seed:int -> unit -> t
end

type fault_stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  truncated : int;
  delayed : int;
}

val create : unit -> endpoint * endpoint
(** A connected pair: (switch side, controller side) by convention,
    though the pipe is symmetric. *)

val set_clock : endpoint -> (unit -> float) -> unit
(** Attach the simulation clock (shared by both endpoints). Delays,
    scripted faults and reconnect gating all read it; without it the
    channel behaves as if time stood still at 0. *)

val set_faults : endpoint -> Faults.t option -> unit
(** Install (or clear) the fault policy for this endpoint's sends. *)

val poll : endpoint -> unit
(** Fire any scripted faults that have come due. Sends poll implicitly;
    call this from the control loop so a scripted disconnect fires on
    schedule even over a quiet channel. *)

val send : endpoint -> string -> unit
(** Queue bytes for the peer — subject to this endpoint's fault policy,
    and silently swallowed while the channel is disconnected. *)

val recv : endpoint -> string option
(** The next pending chunk whose delivery time has arrived, if any
    (chunks preserve send boundaries; OpenFlow {!Openflow.Framing}
    reassembles messages regardless). *)

val recv_all : endpoint -> string list

val pending : endpoint -> int
(** Number of chunks queued at this endpoint (delivered or not). *)

val set_wakeup : endpoint -> (unit -> unit) -> unit
(** Install a callback fired whenever this endpoint gains something to
    react to: bytes enqueued for it, the channel disconnecting or
    reconnecting, or a fault policy installed on either side. This is
    what lets a scheduler park idle channels and still never miss
    traffic — a spurious wake costs one no-op step, so the hook errs on
    the side of firing. *)

val next_activity : endpoint -> float
(** The earliest sim time at which stepping this endpoint could observe
    something new without further external input: the head of its own
    fault script, or the delivery time gating its oldest queued chunk.
    [infinity] when the endpoint is fully quiescent; may be in the past
    when work is already due. *)

val bytes_sent : endpoint -> int
(** Total bytes this endpoint has attempted to send — used by benches
    to measure control-channel volume. *)

(** {1 Connection state}

    A hard disconnect models the TCP session dying: both inboxes are
    flushed (bytes in flight are gone) and subsequent sends are
    swallowed until a successful {!reconnect}. *)

val connected : endpoint -> bool

val disconnect : endpoint -> unit
(** Sever the channel now (idempotent). *)

val reconnect : endpoint -> bool
(** Re-establish a severed channel. Fails (returns false) until the
    faulting side's [reconnect_after] has elapsed since the disconnect.
    Success bumps {!generation} — both sides must treat the stream as
    fresh (reset framing, re-handshake). *)

val generation : endpoint -> int
(** Incremented on every successful {!reconnect}; lets each side detect
    that the stream it was parsing no longer exists. *)

val disconnects : endpoint -> int
(** Hard disconnects this channel has suffered (scripted + explicit). *)

val fault_stats : endpoint -> fault_stats
(** Faults this endpoint's policy has injected (zeros when none). *)
