(** An in-memory bidirectional byte pipe standing in for the TCP
    connection between a switch and its controller-side driver. Bytes
    written on one endpoint are read, in order, from the other. *)

type t

type endpoint

val create : unit -> endpoint * endpoint
(** A connected pair: (switch side, controller side) by convention,
    though the pipe is symmetric. *)

val send : endpoint -> string -> unit

val recv : endpoint -> string option
(** The next pending chunk, if any (chunks preserve send boundaries;
    OpenFlow {!Openflow.Framing} reassembles messages regardless). *)

val recv_all : endpoint -> string list

val pending : endpoint -> int
(** Number of chunks waiting to be read at this endpoint. *)

val bytes_sent : endpoint -> int
(** Total bytes this endpoint has sent — used by benches to measure
    control-channel volume. *)
