module OF = Openflow

type version = V10 | V13

type t = {
  version : version;
  switch : Sim_switch.t;
  endpoint : Control_channel.endpoint;
  network : Network.t;
  framing : OF.Framing.t;
  mutable next_xid : int32;
  mutable handled : int;
  telemetry : Telemetry.t;
  (* Keepalive + liveness: the firmware half of connection survival.
     [keepalive_interval = 0.] disables both (the default for bare
     agents built in tests; the driver manager turns them on). *)
  keepalive_interval : float;
  liveness_timeout : float;
  mutable last_rx : float;
  mutable next_keepalive : float;
  mutable seen_generation : int;
  mutable peer_alive : bool;
  mutable keepalives : int;
}

let fresh_xid t =
  let xid = t.next_xid in
  t.next_xid <- Int32.add xid 1l;
  xid

let send10 t msg = Control_channel.send t.endpoint (OF.Of10.encode ~xid:(fresh_xid t) msg)

let send13 t msg = Control_channel.send t.endpoint (OF.Of13.encode ~xid:(fresh_xid t) msg)

let send10x t ~xid msg = Control_channel.send t.endpoint (OF.Of10.encode ~xid msg)

let send13x t ~xid msg = Control_channel.send t.endpoint (OF.Of13.encode ~xid msg)

(* Forward data-path effects produced by packet-out injection. *)
let run_effects t effects =
  List.iter
    (fun eff ->
      match (eff : Sim_switch.effect_) with
      | Sim_switch.Transmit { out_port; frame } ->
        Network.transmit t.network ~dpid:(Sim_switch.dpid t.switch) ~out_port frame
      | Sim_switch.Deliver_to_controller { in_port; reason; buffer_id; data; total_len } ->
        (match t.version with
        | V10 ->
          send10 t (OF.Of10.Packet_in { buffer_id; total_len; in_port; reason; data })
        | V13 ->
          send13 t
            (OF.Of13.Packet_in
               { buffer_id; total_len; reason; table_id = 0; cookie = 0L;
                 in_port; data })))
    effects

let packet_in_of_effect t eff = run_effects t [ eff ]

let port_status t reason info =
  match t.version with
  | V10 -> send10 t (OF.Of10.Port_status (reason, info))
  | V13 -> send13 t (OF.Of13.Port_status (reason, info))

let trace_key_xid xid = Printf.sprintf "xid:%ld" xid

let create ?telemetry ?(keepalive_interval = 0.) ?liveness_timeout ~version
    ~switch ~endpoint ~network () =
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~tracing:false ()
  in
  let liveness_timeout =
    match liveness_timeout with
    | Some s -> s
    | None -> 3. *. keepalive_interval
  in
  let t =
    { version; switch; endpoint; network; framing = OF.Framing.create ();
      next_xid = 0x10000l; handled = 0; telemetry; keepalive_interval;
      liveness_timeout; last_rx = neg_infinity; next_keepalive = neg_infinity;
      seen_generation = Control_channel.generation endpoint;
      peer_alive = true; keepalives = 0 }
  in
  Network.set_controller_sink network (Sim_switch.dpid switch)
    (packet_in_of_effect t);
  Sim_switch.on_port_change switch (port_status t);
  t

let version t = t.version

(* --- OF 1.0 ----------------------------------------------------------------- *)

let stats_entry (table_id, (e : Flow_table.entry)) ~now =
  ( table_id,
    { OF.Of_types.Flow_stats.of_match = e.of_match;
      priority = e.priority;
      cookie = e.cookie;
      packets = e.packets;
      bytes = e.bytes;
      duration_s = int_of_float (now -. e.install_time);
      idle_timeout = e.idle_timeout;
      hard_timeout = e.hard_timeout;
      actions = e.actions } )

let handle10 t ~now ~xid (msg : OF.Of10.msg) =
  match msg with
  | OF.Of10.Hello -> send10x t ~xid OF.Of10.Hello
  | OF.Of10.Echo_request data -> send10x t ~xid (OF.Of10.Echo_reply data)
  | OF.Of10.Features_request ->
    send10x t ~xid
      (OF.Of10.Features_reply
         { datapath_id = Sim_switch.dpid t.switch;
           n_buffers = Sim_switch.n_buffers t.switch;
           n_tables = Sim_switch.n_tables t.switch;
           capabilities = Sim_switch.capabilities t.switch;
           ports = Sim_switch.ports t.switch })
  | OF.Of10.Flow_mod fm -> begin
    match fm.command with
    | OF.Of10.Add -> begin
      let tracer = Telemetry.tracer t.telemetry in
      ignore (Telemetry.Tracer.resume tracer (trace_key_xid xid));
      (match
         Telemetry.Tracer.span tracer ~stage:"switch.install" (fun () ->
             Sim_switch.flow_add t.switch ~now ~of_match:fm.of_match
               ~priority:fm.priority ~actions:fm.actions ~cookie:fm.cookie
               ~idle_timeout:fm.idle_timeout ~hard_timeout:fm.hard_timeout
               ~notify_removal:fm.notify_removal ())
       with
      | Ok () -> ()
      | Error e ->
        send10x t ~xid (OF.Of10.Error_msg { ty = 3; code = 0; data = e }));
      Telemetry.Tracer.clear tracer;
      (* A buffered packet attached to the flow-mod is released through
         the new actions. *)
      match fm.buffer_id with
      | Some id ->
        run_effects t
          (Sim_switch.inject t.switch ~now ~buffer_id:(Some id) ~data:""
             ~in_port:None ~actions:fm.actions)
      | None -> ()
    end
    | OF.Of10.Modify ->
      ignore
        (Sim_switch.flow_modify t.switch ~now ~of_match:fm.of_match
           ~actions:fm.actions ())
    | OF.Of10.Delete | OF.Of10.Delete_strict ->
      let strict = fm.command = OF.Of10.Delete_strict in
      let removed =
        Sim_switch.flow_delete t.switch ~strict ~priority:fm.priority
          ~of_match:fm.of_match ()
      in
      List.iter
        (fun (e : Flow_table.entry) ->
          if e.notify_removal then
            send10 t
              (OF.Of10.Flow_removed
                 { of_match = e.of_match; cookie = e.cookie;
                   priority = e.priority; reason = OF.Of_types.Flow_deleted;
                   duration_s = int_of_float (now -. e.install_time);
                   packets = e.packets; bytes = e.bytes }))
        removed
  end
  | OF.Of10.Packet_out { buffer_id; in_port; actions; data } ->
    run_effects t (Sim_switch.inject t.switch ~now ~buffer_id ~data ~in_port ~actions)
  | OF.Of10.Port_mod { port_no; admin_down } ->
    Sim_switch.set_admin_down t.switch port_no admin_down
  | OF.Of10.Stats_request (OF.Of10.Flow_stats_req m) ->
    let entries = Sim_switch.flow_stats t.switch ~now ~of_match:m () in
    send10x t ~xid
      (OF.Of10.Stats_reply
         (OF.Of10.Flow_stats_rep (List.map (fun e -> snd (stats_entry e ~now)) entries)))
  | OF.Of10.Stats_request (OF.Of10.Port_stats_req port) ->
    send10x t ~xid
      (OF.Of10.Stats_reply (OF.Of10.Port_stats_rep (Sim_switch.port_stats t.switch port)))
  | OF.Of10.Barrier_request -> send10x t ~xid OF.Of10.Barrier_reply
  | OF.Of10.Echo_reply _ | OF.Of10.Error_msg _ | OF.Of10.Features_reply _
  | OF.Of10.Packet_in _ | OF.Of10.Flow_removed _ | OF.Of10.Port_status _
  | OF.Of10.Stats_reply _ | OF.Of10.Barrier_reply -> ()

(* --- OF 1.3 ----------------------------------------------------------------- *)

let handle13 t ~now ~xid (msg : OF.Of13.msg) =
  match msg with
  | OF.Of13.Hello -> send13x t ~xid OF.Of13.Hello
  | OF.Of13.Echo_request data -> send13x t ~xid (OF.Of13.Echo_reply data)
  | OF.Of13.Features_request ->
    send13x t ~xid
      (OF.Of13.Features_reply
         { datapath_id = Sim_switch.dpid t.switch;
           n_buffers = Sim_switch.n_buffers t.switch;
           n_tables = Sim_switch.n_tables t.switch;
           capabilities = Sim_switch.capabilities t.switch })
  | OF.Of13.Flow_mod fm -> begin
    let actions = OF.Of13.actions_of_instructions fm.instructions in
    match fm.command with
    | OF.Of13.Add -> begin
      let tracer = Telemetry.tracer t.telemetry in
      ignore (Telemetry.Tracer.resume tracer (trace_key_xid xid));
      (match
         Telemetry.Tracer.span tracer ~stage:"switch.install" (fun () ->
             Sim_switch.flow_add t.switch ~table_id:fm.table_id ~now
               ~of_match:fm.of_match ~priority:fm.priority ~actions
               ~cookie:fm.cookie ~idle_timeout:fm.idle_timeout
               ~hard_timeout:fm.hard_timeout ~notify_removal:fm.notify_removal ())
       with
      | Ok () -> ()
      | Error e ->
        send13x t ~xid (OF.Of13.Error_msg { ty = 4; code = 0; data = e }));
      Telemetry.Tracer.clear tracer;
      match fm.buffer_id with
      | Some id ->
        run_effects t
          (Sim_switch.inject t.switch ~now ~buffer_id:(Some id) ~data:""
             ~in_port:None ~actions)
      | None -> ()
    end
    | OF.Of13.Modify ->
      ignore
        (Sim_switch.flow_modify t.switch ~table_id:fm.table_id ~now
           ~of_match:fm.of_match ~actions ())
    | OF.Of13.Delete | OF.Of13.Delete_strict ->
      let strict = fm.command = OF.Of13.Delete_strict in
      let removed =
        Sim_switch.flow_delete t.switch ~table_id:fm.table_id ~strict
          ~priority:fm.priority ~of_match:fm.of_match ()
      in
      List.iter
        (fun (e : Flow_table.entry) ->
          if e.notify_removal then
            send13 t
              (OF.Of13.Flow_removed
                 { table_id = fm.table_id; of_match = e.of_match;
                   cookie = e.cookie; priority = e.priority;
                   reason = OF.Of_types.Flow_deleted;
                   duration_s = int_of_float (now -. e.install_time);
                   packets = e.packets; bytes = e.bytes }))
        removed
  end
  | OF.Of13.Packet_out { buffer_id; in_port; actions; data } ->
    run_effects t (Sim_switch.inject t.switch ~now ~buffer_id ~data ~in_port ~actions)
  | OF.Of13.Port_mod { port_no; admin_down } ->
    Sim_switch.set_admin_down t.switch port_no admin_down
  | OF.Of13.Multipart_request OF.Of13.Port_desc_req ->
    send13x t ~xid
      (OF.Of13.Multipart_reply (OF.Of13.Port_desc_rep (Sim_switch.ports t.switch)))
  | OF.Of13.Multipart_request (OF.Of13.Flow_stats_req { table_id; of_match }) ->
    let entries = Sim_switch.flow_stats t.switch ?table_id ~now ~of_match () in
    send13x t ~xid
      (OF.Of13.Multipart_reply
         (OF.Of13.Flow_stats_rep
            (List.map
               (fun e ->
                 let table_id, stats = stats_entry e ~now in
                 { OF.Of13.table_id; stats;
                   instructions = [ OF.Of13.Apply_actions stats.actions ] })
               entries)))
  | OF.Of13.Multipart_request (OF.Of13.Port_stats_req port) ->
    send13x t ~xid
      (OF.Of13.Multipart_reply
         (OF.Of13.Port_stats_rep (Sim_switch.port_stats t.switch port)))
  | OF.Of13.Barrier_request -> send13x t ~xid OF.Of13.Barrier_reply
  | OF.Of13.Echo_reply _ | OF.Of13.Error_msg _ | OF.Of13.Features_reply _
  | OF.Of13.Packet_in _ | OF.Of13.Flow_removed _ | OF.Of13.Port_status _
  | OF.Of13.Multipart_reply _ | OF.Of13.Barrier_reply -> ()

(* --- expiry ------------------------------------------------------------------ *)

let expire t ~now =
  let expired = Sim_switch.expire_flows t.switch ~now in
  List.iter
    (fun ((table_id, e) : int * Flow_table.entry) ->
      if e.notify_removal then begin
        let reason =
          if e.hard_timeout > 0 && now -. e.install_time >= float_of_int e.hard_timeout
          then OF.Of_types.Hard_timeout_hit
          else OF.Of_types.Idle_timeout_hit
        in
        match t.version with
        | V10 ->
          send10 t
            (OF.Of10.Flow_removed
               { of_match = e.of_match; cookie = e.cookie; priority = e.priority;
                 reason; duration_s = int_of_float (now -. e.install_time);
                 packets = e.packets; bytes = e.bytes })
        | V13 ->
          send13 t
            (OF.Of13.Flow_removed
               { table_id; of_match = e.of_match; cookie = e.cookie;
                 priority = e.priority; reason;
                 duration_s = int_of_float (now -. e.install_time);
                 packets = e.packets; bytes = e.bytes })
      end)
    expired

(* --- keepalive / liveness ----------------------------------------------------- *)

let send_echo_request t =
  t.keepalives <- t.keepalives + 1;
  match t.version with
  | V10 -> send10 t (OF.Of10.Echo_request "ka")
  | V13 -> send13 t (OF.Of13.Echo_request "ka")

let keepalive t ~now ~received =
  (* A reconnected channel is a fresh byte stream: whatever the framer
     held belonged to the old connection. *)
  let gen = Control_channel.generation t.endpoint in
  if gen <> t.seen_generation then begin
    t.seen_generation <- gen;
    OF.Framing.reset t.framing;
    t.last_rx <- now;
    t.peer_alive <- true
  end;
  if received then begin
    t.last_rx <- now;
    t.peer_alive <- true
  end;
  if t.keepalive_interval > 0. && Control_channel.connected t.endpoint then begin
    if t.last_rx = neg_infinity then t.last_rx <- now;
    if t.next_keepalive = neg_infinity then
      t.next_keepalive <- now +. t.keepalive_interval
    else if now >= t.next_keepalive then begin
      send_echo_request t;
      t.next_keepalive <- now +. t.keepalive_interval
    end;
    if now -. t.last_rx > t.liveness_timeout then t.peer_alive <- false
  end

let step t ~now =
  Control_channel.poll t.endpoint;
  let chunks = Control_channel.recv_all t.endpoint in
  keepalive t ~now ~received:(chunks <> []);
  List.iter (OF.Framing.push t.framing) chunks;
  List.iter
    (fun raw ->
      t.handled <- t.handled + 1;
      match t.version with
      | V10 -> (
        match OF.Of10.decode raw with
        | Ok (xid, msg) -> handle10 t ~now ~xid msg
        | Error e ->
          send10 t (OF.Of10.Error_msg { ty = 0; code = 0; data = e }))
      | V13 -> (
        match OF.Of13.decode raw with
        | Ok (xid, msg) -> handle13 t ~now ~xid msg
        | Error e ->
          send13 t (OF.Of13.Error_msg { ty = 0; code = 0; data = e })))
    (OF.Framing.pop_all t.framing);
  expire t ~now

(* When stepping this agent could next do something on its own: the
   keepalive timer, or — while any installed flow carries a timeout —
   right now, preserving the per-tick expiry sweep those flows need.
   Channel activity (inbound bytes, scripted faults) is the
   {!Control_channel.next_activity} of its endpoint, tracked by the
   scheduler separately. *)
let next_due t ~now =
  let keepalive_at =
    if t.keepalive_interval > 0. && Control_channel.connected t.endpoint then
      if t.next_keepalive = neg_infinity then now else t.next_keepalive
    else infinity
  in
  if Sim_switch.has_timed_flows t.switch then min now keepalive_at
  else keepalive_at

let messages_handled t = t.handled

let peer_alive t = t.peer_alive

let keepalives_sent t = t.keepalives
