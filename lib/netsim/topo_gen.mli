(** Topology generators. Each builds a fresh {!Network.t} populated with
    switches and hosts, returning the network together with the switch
    dpids in creation order.

    Conventions: switch dpids count from 1; every switch's port 1 hosts
    its attached host where applicable, inter-switch links use ports 2+;
    host [hN] gets MAC [02:...:N] and IP [10.0.x.y] assigned statically
    unless [dhcp] asks for unconfigured hosts. *)

type built = {
  net : Network.t;
  dpids : int64 list;
  host_names : string list;
}

val host_ip : int -> Packet.Ipv4_addr.t
(** The conventional address of host [n]: 10.0.(n lsr 8).(n land 0xff). *)

val host_mac : int -> Packet.Mac.t

val linear :
  ?hosts_per_switch:int -> ?dhcp:bool -> ?strategy:Flow_table.strategy ->
  ?miss_send_len:int -> int -> built
(** [linear n] — a chain of [n] switches, each with its hosts. *)

val ring : ?hosts_per_switch:int -> ?strategy:Flow_table.strategy -> int -> built

val star : ?leaves:int -> ?strategy:Flow_table.strategy -> unit -> built
(** One core switch, [leaves] edge switches with one host each. *)

val tree :
  ?fanout:int -> ?depth:int -> ?strategy:Flow_table.strategy -> unit -> built
(** A [fanout]-ary tree of switches of the given [depth]; hosts hang off
    the leaf switches. *)

val fat_tree :
  ?k:int -> ?hosts_per_edge:int -> ?strategy:Flow_table.strategy ->
  ?miss_send_len:int -> unit -> built
(** The classic k-ary fat tree sized as in the literature (Al-Fares et
    al.): (k/2)² core switches plus [k] pods of k/2 aggregation and k/2
    edge switches each — 5k²/4 switches total — with [hosts_per_edge]
    hosts on every edge switch (default k/2, the literature's port
    budget), i.e. [hosts_per_edge]·k²/2 hosts. As functions of k with
    the default host density: k=4 → 20 switches / 16 hosts, k=8 → 80 /
    128, k=16 → 320 / 1024, k=32 → 1280 / 8192 (k³/4 hosts).
    Construction is O(switches + links + hosts). [k] must be a positive
    even integer; anything else raises [Invalid_argument] naming the
    offending value. *)

val clos :
  ?spines:int -> ?leaves:int -> ?hosts_per_leaf:int ->
  ?strategy:Flow_table.strategy -> ?miss_send_len:int -> unit -> built
(** A two-tier leaf-spine Clos fabric: [spines] spine switches fully
    meshed to [leaves] leaf switches ([spines]·[leaves] links), with
    [hosts_per_leaf] hosts per leaf. Every leaf-to-leaf path is two
    hops with [spines] equal-cost choices — the minimal ECMP testbed. *)

val random :
  ?seed:int -> ?extra_links:int -> ?hosts_per_switch:int ->
  ?strategy:Flow_table.strategy -> int -> built
(** A random connected graph: a spanning tree over [n] switches plus
    [extra_links] random chords. Deterministic for a given [seed]. *)
