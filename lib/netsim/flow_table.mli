(** One OpenFlow flow table: priority-ordered wildcard matching with
    per-entry counters and idle/hard timeouts.

    Two lookup strategies are provided so the cost of wildcard scanning
    can be measured (an ablation bench): [Linear] scans the
    priority-sorted entry list; [Exact_hash] additionally keeps
    fully-specified entries in a hash table keyed by the packet
    12-tuple, falling back to the scan only for wildcard entries — the
    classic OVS-style exact-match fast path. Both strategies implement
    identical OpenFlow semantics. *)

type strategy = Linear | Exact_hash

type entry = {
  of_match : Openflow.Of_match.t;
  priority : int;
  actions : Openflow.Action.t list;
  cookie : int64;
  idle_timeout : int;   (** seconds; 0 = never *)
  hard_timeout : int;
  notify_removal : bool;
  install_time : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
}

type t

val create : ?strategy:strategy -> unit -> t

val strategy : t -> strategy

val add :
  t -> now:float ->
  of_match:Openflow.Of_match.t -> priority:int ->
  actions:Openflow.Action.t list ->
  ?cookie:int64 -> ?idle_timeout:int -> ?hard_timeout:int ->
  ?notify_removal:bool -> unit -> unit
(** OpenFlow ADD: an entry with identical match and priority is
    replaced (its counters reset). *)

val modify : t -> of_match:Openflow.Of_match.t -> actions:Openflow.Action.t list -> int
(** OpenFlow MODIFY: update the actions of every entry whose match
    equals the given one; returns how many were updated (0 means the
    caller should treat it as an add). *)

val delete : t -> of_match:Openflow.Of_match.t -> entry list
(** OpenFlow DELETE: remove every entry whose match is subsumed by the
    given match (so the [any] match empties the table); returns the
    removed entries. *)

val lookup : t -> now:float -> Packet.Headers.t -> entry option
(** Highest-priority matching entry; updates its counters is the
    caller's job (see {!hit}). *)

val hit : entry -> now:float -> bytes:int -> unit
(** Record one matched packet. *)

val expire : t -> now:float -> entry list
(** Remove and return entries past their idle or hard timeout. *)

val entries : t -> entry list
(** All live entries, highest priority first. *)

val length : t -> int
