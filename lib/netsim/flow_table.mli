(** One OpenFlow flow table: priority-ordered wildcard matching with
    per-entry counters and idle/hard timeouts.

    Three lookup strategies are provided so the cost of wildcard
    classification can be measured (an ablation bench): [Linear] scans
    the priority-sorted entry list; [Exact_hash] additionally keeps
    fully-specified entries in a hash table keyed by the packed packet
    12-tuple, falling back to the scan for wildcard entries;
    [Classifier] is OVS-style tuple-space search — entries are
    partitioned into subtables by their wildcard mask, each subtable a
    hash table from the masked packed tuple to its entries, walked in
    descending max-priority order with pruning, and fronted by an
    exact-match microflow cache so steady-state forwarding is one hash
    probe. All strategies implement identical OpenFlow semantics;
    [Linear] is the executable specification the others are tested
    against. *)

(** Datapath lookup counters — the flow-table analogue of {!Vfs.Cost}.
    One {!t} per switch (shared by all its tables, see
    {!Sim_switch.datapath_cost}); {!Network.datapath_cost} aggregates
    them per network. Benches gate on these rather than wall time where
    possible. *)
module Cost : sig
  type t

  val create : unit -> t

  val lookups : t -> int
  (** Packets run through {!val-lookup}. *)

  val entries_examined : t -> int
  (** Entries whose match was evaluated — the classifier's headline
      saving over the linear scan. *)

  val subtables_visited : t -> int
  (** Classifier subtables probed (one hash probe each). *)

  val micro_hits : t -> int

  val micro_misses : t -> int
  (** Microflow-cache outcomes; a hit answers a lookup with a single
      hash probe, touching no subtable. *)

  val invalidations : t -> int
  (** Generation bumps: mutations (add/modify/delete/expire) that could
      change some cached answer, each orphaning the whole microflow
      cache. *)

  val absorb : into:t -> t -> unit
  (** Add a switch's counters into an aggregate. *)

  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

type strategy = Linear | Exact_hash | Classifier

type entry = {
  of_match : Openflow.Of_match.t;
  priority : int;
  seq : int;  (** install order — the deterministic tie-break: among
                  equal priorities the earliest install wins, and
                  {!entries} lists it first. *)
  actions : Openflow.Action.t list;
  cookie : int64;
  idle_timeout : int;   (** seconds; 0 = never *)
  hard_timeout : int;
  notify_removal : bool;
  install_time : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
}

type t

val create : ?strategy:strategy -> ?cost:Cost.t -> unit -> t
(** [cost] lets several tables (a switch's pipeline) share one counter
    set; a fresh one is created otherwise. *)

val strategy : t -> strategy

val cost : t -> Cost.t

val add :
  t -> now:float ->
  of_match:Openflow.Of_match.t -> priority:int ->
  actions:Openflow.Action.t list ->
  ?cookie:int64 -> ?idle_timeout:int -> ?hard_timeout:int ->
  ?notify_removal:bool -> unit -> unit
(** OpenFlow ADD: an entry with identical match and priority is
    replaced (its counters reset; it re-enters install order as the
    newest entry, as a fresh add would). *)

val modify : t -> of_match:Openflow.Of_match.t -> actions:Openflow.Action.t list -> int
(** OpenFlow MODIFY: update the actions of every entry whose match
    equals the given one; returns how many were updated (0 means the
    caller should treat it as an add). *)

val delete :
  ?strict:bool -> ?priority:int -> t ->
  of_match:Openflow.Of_match.t -> entry list
(** OpenFlow DELETE: by default remove every entry whose match is
    subsumed by the given match (so the [any] match empties the table),
    ignoring priority; returns the removed entries. With [~strict:true]
    (DELETE_STRICT) remove only entries whose match equals [of_match]
    exactly and — when [priority] is given — whose priority equals it. *)

val lookup : t -> now:float -> Packet.Headers.t -> entry option
(** Highest-priority live matching entry (ties broken by install
    order). Entries past their idle or hard timeout at [now] no longer
    match, even before an {!expire} sweep reaps them. Updating the
    winner's counters is the caller's job (see {!hit}). *)

val hit : entry -> now:float -> bytes:int -> unit
(** Record one matched packet. *)

val expire : t -> now:float -> entry list
(** Remove and return entries past their idle or hard timeout. *)

val timed : t -> int
(** How many stored entries carry an idle or hard timeout — the count
    that lets {!expire} (and whole-switch schedulers above it) skip
    tables where nothing can ever expire. *)

val entries : t -> entry list
(** All stored entries, highest priority first; priority ties in
    install order (oldest first), independent of strategy and hash
    iteration order. Includes entries past their timeout that no
    {!expire} sweep has reaped yet — use {!live_entries} when expiry
    must be respected. *)

val live_entries : t -> now:float -> entry list
(** {!entries} minus expired-but-not-yet-reaped ones — what the switch
    would actually match at [now]. Stats replies are built from this
    view so a resync diff never counts a dead entry as present. *)

val is_expired : entry -> now:float -> bool
(** Whether the entry is past its idle or hard timeout at [now]. *)

val length : t -> int
