(** A free-list object pool for the storm hot paths.

    The packet-in pipeline at datacenter scale turns over millions of
    short-lived records per run; a pool caps that to a working set:
    [acquire] reuses a released object when one is available and calls
    the allocator only on a dry free list, so a steady-state path that
    releases what it acquires settles to {e zero} allocations — which
    the [netsim.pool.*] telemetry series make checkable (the bench
    gates assert [allocated] stays flat while [reused] grows).

    Objects are mutable records owned by the pool's client; the pool
    never clears them — the acquirer overwrites every field. Single
    threaded, like the rest of the simulator. *)

type 'a t

val create : ?capacity:int -> make:(unit -> 'a) -> unit -> 'a t
(** [capacity] (default 4096) bounds the free list: objects released
    beyond it are dropped to the GC, so one burst cannot pin memory
    forever. *)

val acquire : 'a t -> 'a
(** A recycled object when the free list is non-empty, else a fresh
    [make ()]. *)

val release : 'a t -> 'a -> unit
(** Return an object to the free list (or drop it at capacity). The
    caller must not touch it afterwards. *)

val allocated : 'a t -> int
(** Lifetime [make] calls — flat between two points means every
    [acquire] in the interval was served by reuse. *)

val reused : 'a t -> int
(** Lifetime acquires served from the free list. *)

val in_use : 'a t -> int
(** Objects acquired and not yet released. *)

val free : 'a t -> int
(** Objects currently on the free list. *)

val register_metrics : 'a t -> name:string -> Telemetry.Registry.t -> unit
(** Publish gauges [netsim.pool.<name>.{allocated,reused,in_use,free}]. *)
