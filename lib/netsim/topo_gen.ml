module P = Packet

type built = {
  net : Network.t;
  dpids : int64 list;
  host_names : string list;
}

let host_ip n =
  match
    P.Ipv4_addr.of_string
      (Printf.sprintf "10.0.%d.%d" ((n lsr 8) land 0xff) (n land 0xff))
  with
  | Some ip -> ip
  | None -> assert false

let host_mac n = P.Mac.of_int ((0x02 lsl 40) lor n)

(* A builder tracking per-switch port allocation. Switches and hosts
   accumulate in reverse (an O(1) cons per node, reversed once in
   [finish]); the datacenter generators create thousands of each, and
   the old [xs <- xs @ [x]] append made construction O(n²). *)
type builder = {
  net : Network.t;
  next_port : (int64, int ref) Hashtbl.t;
  mutable n_switches : int;
  mutable rev_dpids : int64 list;
  mutable rev_host_names : string list;
  mutable next_host : int;
  strategy : Flow_table.strategy;
  miss_send_len : int;
}

let builder ?(strategy = Flow_table.Linear) ?(miss_send_len = 0xffff) () =
  { net = Network.create (); next_port = Hashtbl.create 16; n_switches = 0;
    rev_dpids = []; rev_host_names = []; next_host = 1; strategy;
    miss_send_len }

let new_switch b =
  b.n_switches <- b.n_switches + 1;
  let dpid = Int64.of_int b.n_switches in
  let sw =
    Sim_switch.create ~miss_send_len:b.miss_send_len ~strategy:b.strategy
      ~n_ports:0 ~dpid ()
  in
  Network.add_switch b.net sw;
  Hashtbl.replace b.next_port dpid (ref 1);
  b.rev_dpids <- dpid :: b.rev_dpids;
  dpid

let alloc_port b dpid =
  let r = Hashtbl.find b.next_port dpid in
  let port = !r in
  incr r;
  port

let connect b a bb =
  let pa = alloc_port b a
  and pb = alloc_port b bb in
  Network.link b.net (Network.Sw (a, pa)) (Network.Sw (bb, pb))

let attach_host ?(dhcp = false) b dpid =
  let n = b.next_host in
  b.next_host <- n + 1;
  let name = Printf.sprintf "h%d" n in
  let ip = if dhcp then None else Some (host_ip n) in
  let host = Sim_host.create ?ip ~name ~mac:(host_mac n) () in
  Network.add_host b.net host;
  let port = alloc_port b dpid in
  Network.link b.net (Network.Sw (dpid, port)) (Network.Hst name);
  b.rev_host_names <- name :: b.rev_host_names;
  name

let finish b =
  { net = b.net; dpids = List.rev b.rev_dpids;
    host_names = List.rev b.rev_host_names }

let with_hosts ?dhcp b per_switch dpids =
  List.iter
    (fun dpid ->
      for _ = 1 to per_switch do
        ignore (attach_host ?dhcp b dpid)
      done)
    dpids

let linear ?(hosts_per_switch = 1) ?(dhcp = false) ?strategy ?miss_send_len n =
  let b = builder ?strategy ?miss_send_len () in
  let dpids = List.init n (fun _ -> new_switch b) in
  let rec chain = function
    | a :: (bb :: _ as rest) ->
      connect b a bb;
      chain rest
    | [ _ ] | [] -> ()
  in
  chain dpids;
  with_hosts ~dhcp b hosts_per_switch dpids;
  finish b

let ring ?(hosts_per_switch = 1) ?strategy n =
  let b = builder ?strategy () in
  let dpids = List.init n (fun _ -> new_switch b) in
  let arr = Array.of_list dpids in
  for i = 0 to n - 1 do
    connect b arr.(i) arr.((i + 1) mod n)
  done;
  with_hosts b hosts_per_switch dpids;
  finish b

let star ?(leaves = 4) ?strategy () =
  let b = builder ?strategy () in
  let core = new_switch b in
  let edge = List.init leaves (fun _ -> new_switch b) in
  List.iter (fun e -> connect b core e) edge;
  with_hosts b 1 edge;
  finish b

let tree ?(fanout = 2) ?(depth = 3) ?strategy () =
  let b = builder ?strategy () in
  let rec grow level parent =
    if level >= depth then ()
    else
      for _ = 1 to fanout do
        let child = new_switch b in
        connect b parent child;
        if level = depth - 1 then ignore (attach_host b child)
        else grow (level + 1) child
      done
  in
  let root = new_switch b in
  grow 1 root;
  if depth = 1 then ignore (attach_host b root);
  finish b

let fat_tree ?(k = 4) ?hosts_per_edge ?strategy ?miss_send_len () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg
      (Printf.sprintf
         "Topo_gen.fat_tree: k must be a positive even integer (got %d)" k);
  let half = k / 2 in
  let hosts_per_edge =
    match hosts_per_edge with
    | Some h ->
      if h < 0 then
        invalid_arg
          (Printf.sprintf "Topo_gen.fat_tree: hosts_per_edge must be >= 0 (got %d)" h);
      h
    | None -> half
  in
  let b = builder ?strategy ?miss_send_len () in
  (* Core switches first, then per pod: aggregation then edge. *)
  let cores = Array.init (half * half) (fun _ -> new_switch b) in
  for _pod = 0 to k - 1 do
    let aggs = Array.init half (fun _ -> new_switch b) in
    let edges = Array.init half (fun _ -> new_switch b) in
    Array.iter (fun e -> Array.iter (fun a -> connect b a e) aggs) edges;
    (* Aggregation switch i connects to cores [i*half .. i*half+half-1]. *)
    Array.iteri
      (fun i a ->
        for j = 0 to half - 1 do
          connect b cores.((i * half) + j) a
        done)
      aggs;
    Array.iter
      (fun e ->
        for _ = 1 to hosts_per_edge do
          ignore (attach_host b e)
        done)
      edges
  done;
  finish b

let clos ?(spines = 2) ?(leaves = 4) ?(hosts_per_leaf = 1) ?strategy
    ?miss_send_len () =
  if spines < 1 then
    invalid_arg
      (Printf.sprintf "Topo_gen.clos: spines must be >= 1 (got %d)" spines);
  if leaves < 1 then
    invalid_arg
      (Printf.sprintf "Topo_gen.clos: leaves must be >= 1 (got %d)" leaves);
  let b = builder ?strategy ?miss_send_len () in
  let spine = Array.init spines (fun _ -> new_switch b) in
  let leaf = Array.init leaves (fun _ -> new_switch b) in
  (* Full bipartite spine-leaf mesh: every leaf reaches every leaf in
     two hops through [spines] equal-cost paths. *)
  Array.iter (fun l -> Array.iter (fun s -> connect b s l) spine) leaf;
  Array.iter
    (fun l ->
      for _ = 1 to hosts_per_leaf do
        ignore (attach_host b l)
      done)
    leaf;
  finish b

let random ?(seed = 42) ?(extra_links = 0) ?(hosts_per_switch = 1) ?strategy n =
  let b = builder ?strategy () in
  let rng = Random.State.make [| seed |] in
  let dpids = Array.init n (fun _ -> new_switch b) in
  for i = 1 to n - 1 do
    let j = Random.State.int rng i in
    connect b dpids.(j) dpids.(i)
  done;
  let linked = Hashtbl.create 16 in
  Array.iteri (fun i _ -> Hashtbl.replace linked (min i (i - 1), i) ()) dpids;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_links && !attempts < extra_links * 20 do
    incr attempts;
    let i = Random.State.int rng n
    and j = Random.State.int rng n in
    if i <> j && not (Hashtbl.mem linked (min i j, max i j)) then begin
      Hashtbl.replace linked (min i j, max i j) ();
      connect b dpids.(i) dpids.(j);
      incr added
    end
  done;
  with_hosts b hosts_per_switch (Array.to_list dpids);
  finish b
