type 'a t = {
  make : unit -> 'a;
  capacity : int;
  mutable free_list : 'a list;
  mutable n_free : int;
  mutable allocated : int;
  mutable reused : int;
  mutable in_use : int;
}

let create ?(capacity = 4096) ~make () =
  { make; capacity; free_list = []; n_free = 0; allocated = 0; reused = 0;
    in_use = 0 }

let acquire t =
  t.in_use <- t.in_use + 1;
  match t.free_list with
  | x :: rest ->
    t.free_list <- rest;
    t.n_free <- t.n_free - 1;
    t.reused <- t.reused + 1;
    x
  | [] ->
    t.allocated <- t.allocated + 1;
    t.make ()

let release t x =
  t.in_use <- t.in_use - 1;
  if t.n_free < t.capacity then begin
    t.free_list <- x :: t.free_list;
    t.n_free <- t.n_free + 1
  end

let allocated t = t.allocated

let reused t = t.reused

let in_use t = t.in_use

let free t = t.n_free

let register_metrics t ~name reg =
  let g suffix f =
    Telemetry.Registry.gauge reg
      (Printf.sprintf "netsim.pool.%s.%s" name suffix)
      (fun () -> float_of_int (f t))
  in
  g "allocated" allocated;
  g "reused" reused;
  g "in_use" in_use;
  g "free" free
