(** A simulated OpenFlow switch: ports, one or more flow tables, packet
    buffers, and OF-semantics forwarding. This is the hardware yanc's
    drivers program.

    The switch itself is protocol-neutral — it exposes logical
    operations (flow-mod, port-mod, stats) and produces logical effects;
    {!Of_agent} wraps it with an OpenFlow 1.0 or 1.3 wire endpoint. *)

type t

(** What handling one frame caused. Transmissions carry the egress port;
    the embedding {!Network} turns them into link deliveries. *)
type effect_ =
  | Transmit of { out_port : int; frame : Packet.Eth.t }
  | Deliver_to_controller of {
      in_port : int;
      reason : Openflow.Of_types.packet_in_reason;
      buffer_id : int32 option;
      data : string;       (** frame bytes, truncated to miss_send_len *)
      total_len : int;
    }

val create :
  ?n_tables:int -> ?n_buffers:int -> ?miss_send_len:int ->
  ?strategy:Flow_table.strategy -> ?n_ports:int -> dpid:int64 -> unit -> t
(** A switch with ports numbered 1..n_ports (default 4), each with a MAC
    derived from the dpid. [n_tables] defaults to 1 (an OF 1.0-style
    single-table switch); give 4 for an OF 1.3-style pipeline.
    [miss_send_len] defaults to 0xffff — the "send whole frames" value
    controllers configure — so table misses are not buffered unless a
    smaller limit is given. *)

val dpid : t -> int64

val datapath_cost : t -> Flow_table.Cost.t
(** The lookup counters shared by every table of this switch's
    pipeline. *)

val n_tables : t -> int
val n_buffers : t -> int
val capabilities : t -> Openflow.Of_types.Capabilities.t

(** {1 Ports} *)

val ports : t -> Openflow.Of_types.Port_info.t list
val port : t -> int -> Openflow.Of_types.Port_info.t option
val add_port : t -> ?speed_mbps:int -> int -> unit
val remove_port : t -> int -> unit

val set_admin_down : t -> int -> bool -> unit
(** Administratively disable/enable a port (OF port-mod). A down port
    neither transmits nor receives. *)

val set_link_down : t -> int -> bool -> unit
(** Carrier loss, driven by the {!Network} when links fail. *)

val port_stats : t -> int option -> Openflow.Of_types.Port_stats.t list

(** {1 QoS queues}

    Per-port token-bucket queues targeted by the
    {!Openflow.Action.Enqueue} action (a feature the paper's prototype
    lists as not yet implemented). Queue configuration is out-of-band,
    as it was for OpenFlow 1.0 hardware. *)

val add_queue : t -> port:int -> queue_id:int -> rate_mbps:int -> unit
(** Create (or reconfigure) a queue with a rate limit; the bucket allows
    a burst of one second's worth. *)

type queue_stats = {
  queue_id : int;
  rate_mbps : int;
  tx_packets : int64;
  tx_bytes : int64;
  dropped : int64;
}

val queue_stats : t -> port:int -> queue_stats list

val on_port_change :
  t -> (Openflow.Of_types.port_status_reason -> Openflow.Of_types.Port_info.t -> unit) -> unit
(** Register the agent callback invoked on any port add/delete/modify. *)

(** {1 Flow tables} *)

val flow_add :
  t -> ?table_id:int -> now:float ->
  of_match:Openflow.Of_match.t -> priority:int ->
  actions:Openflow.Action.t list ->
  ?cookie:int64 -> ?idle_timeout:int -> ?hard_timeout:int ->
  ?notify_removal:bool -> unit -> (unit, string) result

val flow_modify :
  t -> ?table_id:int ->  now:float -> of_match:Openflow.Of_match.t ->
  actions:Openflow.Action.t list -> unit -> (unit, string) result
(** Modify-or-add, per OpenFlow MODIFY semantics. *)

val flow_delete :
  t -> ?table_id:int -> ?strict:bool -> ?priority:int ->
  of_match:Openflow.Of_match.t -> unit -> Flow_table.entry list
(** Removed entries (for flow-removed notifications). [table_id] absent
    means all tables; [strict]/[priority] select DELETE_STRICT
    semantics, see {!Flow_table.delete}. *)

val flow_stats :
  t -> ?table_id:int -> ?now:float -> of_match:Openflow.Of_match.t -> unit ->
  (int * Flow_table.entry) list
(** Matching entries with their table id. With [now], entries past
    their timeout are excluded even before an expiry sweep reaps them
    (lookup-side expiry): the reply reflects what the datapath would
    actually match, which resync diffs rely on. *)

val table : t -> int -> Flow_table.t option

val expire_flows : t -> now:float -> (int * Flow_table.entry) list
(** Advance timeout processing; returns expired entries (with table id)
    whose [notify_removal] handling is the agent's job. *)

val has_timed_flows : t -> bool
(** Some installed entry carries an idle or hard timeout, i.e. an
    {!expire_flows} sweep could actually reap something — schedulers
    use this to keep only such switches on a periodic expiry tick. *)

(** {1 The data path} *)

val receive_frame : t -> now:float -> in_port:int -> Packet.Eth.t -> effect_ list
(** Run one frame through the table pipeline: match in table 0, apply
    actions, follow goto-table instructions; on a table miss, buffer the
    frame and emit [Deliver_to_controller] (packet-in). Frames arriving
    on down ports are dropped. *)

val inject :
  t -> now:float -> buffer_id:int32 option -> data:string ->
  in_port:int option -> actions:Openflow.Action.t list -> effect_ list
(** Packet-out from the controller: take the buffered frame (or the raw
    [data] when unbuffered) and apply [actions]. *)

val pop_buffer : t -> int32 -> (int * Packet.Eth.t) option
(** Remove and return a buffered (in_port, frame) pair. *)
