module P = Packet

type flow_class = Mouse | Elephant

type arrival = {
  at : float;
  src : int;
  dst : int;
  src_port : int;
  dst_port : int;
  packets : int;
  cls : flow_class;
}

type profile = {
  rate : float;
  elephant_fraction : float;
  mouse_mean_packets : int;
  elephant_min_packets : int;
  elephant_alpha : float;
  max_packets : int;
}

let default_profile =
  { rate = 1000.; elephant_fraction = 0.1; mouse_mean_packets = 8;
    elephant_min_packets = 10_000; elephant_alpha = 1.2;
    max_packets = 10_000_000 }

type t = {
  profile : profile;
  prng : Prng.t;
  hosts : int;
  mutable clock : float;
  mutable generated : int;
  (* The one arrival drawn past [inject_until]'s horizon. *)
  mutable lookahead : arrival option;
}

let create ?(profile = default_profile) ?(start = 0.) ~seed ~hosts () =
  if hosts < 2 then
    invalid_arg
      (Printf.sprintf "Workload.create: need at least 2 hosts (got %d)" hosts);
  if profile.rate <= 0. then
    invalid_arg "Workload.create: profile.rate must be positive";
  { profile; prng = Prng.create ~seed; hosts; clock = start; generated = 0;
    lookahead = None }

let profile t = t.profile

let service_ports = [| 80; 443; 8080; 53; 22; 5432 |]

(* One arrival = a fixed sequence of draws from one stream. The order
   is part of the format: interarrival, src, dst, class, size, ports.
   Reordering the draws would silently re-key every seeded schedule. *)
let next t =
  let p = t.profile in
  (* Exponential interarrival; [float] is in [0,1), so 1-u is in (0,1]
     and the log is finite. *)
  let u = Prng.float t.prng in
  t.clock <- t.clock +. (-.log (1. -. u) /. p.rate);
  let src = 1 + Prng.below t.prng t.hosts in
  (* Uniform over the other hosts, skipping [src]. *)
  let d = 1 + Prng.below t.prng (t.hosts - 1) in
  let dst = if d >= src then d + 1 else d in
  let cls = if Prng.bool t.prng p.elephant_fraction then Elephant else Mouse in
  let packets =
    match cls with
    | Mouse -> 1 + Prng.below t.prng (max 1 ((2 * p.mouse_mean_packets) - 1))
    | Elephant ->
      (* Bounded Pareto: x_m · (1-u)^(-1/α). *)
      let u = Prng.float t.prng in
      let x =
        float_of_int p.elephant_min_packets
        *. ((1. -. u) ** (-1. /. p.elephant_alpha))
      in
      min p.max_packets (int_of_float x)
  in
  let src_port = 49152 + Prng.below t.prng 16384 in
  let dst_port =
    service_ports.(Prng.below t.prng (Array.length service_ports))
  in
  t.generated <- t.generated + 1;
  { at = t.clock; src; dst; src_port; dst_port; packets; cls }

let schedule t ~n = List.init n (fun _ -> next t)

let generated t = t.generated

let first_frame a =
  P.Builder.tcp_syn ~src_mac:(Topo_gen.host_mac a.src)
    ~dst_mac:(Topo_gen.host_mac a.dst) ~src_ip:(Topo_gen.host_ip a.src)
    ~dst_ip:(Topo_gen.host_ip a.dst) ~src_port:a.src_port
    ~dst_port:a.dst_port

let inject_until t ~net ~upto =
  let injected = ref 0 in
  let inject a =
    Network.send_from_host net (Printf.sprintf "h%d" a.src) [ first_frame a ];
    incr injected
  in
  let continue =
    match t.lookahead with
    | Some a when a.at > upto -> false
    | Some a ->
      t.lookahead <- None;
      inject a;
      true
    | None -> true
  in
  if continue then begin
    let stop = ref false in
    while not !stop do
      let a = next t in
      if a.at <= upto then inject a
      else begin
        t.lookahead <- Some a;
        stop := true
      end
    done
  end;
  !injected
