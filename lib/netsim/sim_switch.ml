module P = Packet
module OF = Openflow
module Port_info = OF.Of_types.Port_info
module Port_stats = OF.Of_types.Port_stats

type effect_ =
  | Transmit of { out_port : int; frame : P.Eth.t }
  | Deliver_to_controller of {
      in_port : int;
      reason : OF.Of_types.packet_in_reason;
      buffer_id : int32 option;
      data : string;
      total_len : int;
    }

(* A QoS queue: token bucket with a burst of one second's worth. *)
type queue_state = {
  rate_bytes_per_s : float;
  mutable tokens : float;
  mutable last_refill : float;
  mutable q_tx_packets : int64;
  mutable q_tx_bytes : int64;
  mutable q_dropped : int64;
}

type port_state = {
  mutable info : Port_info.t;
  mutable stats : Port_stats.t;
  queues : (int, queue_state) Hashtbl.t;
}

type t = {
  dpid : int64;
  n_buffers : int;
  miss_send_len : int;
  cost : Flow_table.Cost.t; (* shared by every table of the pipeline *)
  tables : Flow_table.t array;
  ports : (int, port_state) Hashtbl.t;
  buffers : (int32, int * P.Eth.t) Hashtbl.t;
  mutable buffer_order : int32 list; (* FIFO for eviction *)
  mutable next_buffer : int32;
  mutable port_change :
    (OF.Of_types.port_status_reason -> Port_info.t -> unit) list;
}

let port_mac dpid port_no =
  (* A locally-administered MAC derived from dpid and port. *)
  P.Mac.of_int
    ((0x02 lsl 40)
    lor (Int64.to_int (Int64.logand dpid 0xffffffffL) lsl 8)
    lor (port_no land 0xff))

let dpid t = t.dpid

let datapath_cost t = t.cost

let n_tables t = Array.length t.tables

let n_buffers t = t.n_buffers

let capabilities _ = OF.Of_types.Capabilities.default

let make_port t ?(speed_mbps = 1000) port_no =
  { info =
      Port_info.make ~speed_mbps ~port_no ~hw_addr:(port_mac t.dpid port_no) ();
    stats = Port_stats.zero port_no;
    queues = Hashtbl.create 4 }

(* Controllers normally raise miss_send_len to "send everything" via
   SET_CONFIG; we default to that so applications see whole frames.
   Pass a small value to exercise the buffering path. *)
let create ?(n_tables = 1) ?(n_buffers = 256) ?(miss_send_len = 0xffff)
    ?(strategy = Flow_table.Linear) ?(n_ports = 4) ~dpid () =
  let cost = Flow_table.Cost.create () in
  let t =
    { dpid; n_buffers; miss_send_len; cost;
      tables =
        Array.init (max 1 n_tables) (fun _ ->
            Flow_table.create ~strategy ~cost ());
      ports = Hashtbl.create 16;
      buffers = Hashtbl.create 64;
      buffer_order = [];
      next_buffer = 1l;
      port_change = [] }
  in
  for port_no = 1 to n_ports do
    Hashtbl.replace t.ports port_no (make_port t port_no)
  done;
  t

let ports t =
  Hashtbl.fold (fun _ p acc -> p.info :: acc) t.ports []
  |> List.sort (fun (a : Port_info.t) b -> compare a.port_no b.port_no)

let port t n = Option.map (fun p -> p.info) (Hashtbl.find_opt t.ports n)

let on_port_change t f = t.port_change <- f :: t.port_change

let notify_port t reason info =
  List.iter (fun f -> f reason info) t.port_change

let add_port t ?speed_mbps port_no =
  if not (Hashtbl.mem t.ports port_no) then begin
    let p = make_port t ?speed_mbps port_no in
    Hashtbl.replace t.ports port_no p;
    notify_port t OF.Of_types.Port_add p.info
  end

let remove_port t port_no =
  match Hashtbl.find_opt t.ports port_no with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.ports port_no;
    notify_port t OF.Of_types.Port_delete p.info

let set_admin_down t port_no down =
  match Hashtbl.find_opt t.ports port_no with
  | None -> ()
  | Some p ->
    if p.info.Port_info.admin_down <> down then begin
      p.info <- { p.info with Port_info.admin_down = down };
      notify_port t OF.Of_types.Port_modify p.info
    end

let set_link_down t port_no down =
  match Hashtbl.find_opt t.ports port_no with
  | None -> ()
  | Some p ->
    if p.info.Port_info.link_down <> down then begin
      p.info <- { p.info with Port_info.link_down = down };
      notify_port t OF.Of_types.Port_modify p.info
    end

let port_stats t filter =
  let all =
    Hashtbl.fold (fun _ p acc -> p.stats :: acc) t.ports []
    |> List.sort (fun (a : Port_stats.t) b -> compare a.port_no b.port_no)
  in
  match filter with
  | None -> all
  | Some n -> List.filter (fun (s : Port_stats.t) -> s.port_no = n) all

let port_usable p =
  (not p.info.Port_info.admin_down) && not p.info.Port_info.link_down

(* --- QoS queues ------------------------------------------------------------- *)

let add_queue t ~port ~queue_id ~rate_mbps =
  match Hashtbl.find_opt t.ports port with
  | None -> ()
  | Some p ->
    let rate_bytes_per_s = float_of_int rate_mbps *. 1_000_000. /. 8. in
    Hashtbl.replace p.queues queue_id
      { rate_bytes_per_s; tokens = rate_bytes_per_s; last_refill = 0.;
        q_tx_packets = 0L; q_tx_bytes = 0L; q_dropped = 0L }

type queue_stats = {
  queue_id : int;
  rate_mbps : int;
  tx_packets : int64;
  tx_bytes : int64;
  dropped : int64;
}

let queue_stats t ~port =
  match Hashtbl.find_opt t.ports port with
  | None -> []
  | Some p ->
    Hashtbl.fold
      (fun queue_id q acc ->
        { queue_id;
          rate_mbps = int_of_float (q.rate_bytes_per_s *. 8. /. 1_000_000.);
          tx_packets = q.q_tx_packets;
          tx_bytes = q.q_tx_bytes;
          dropped = q.q_dropped }
        :: acc)
      p.queues []
    |> List.sort (fun a b -> compare a.queue_id b.queue_id)

(* True when the bucket admits [bytes] at [now] (consuming them). *)
let queue_admits q ~now ~bytes =
  let elapsed = max 0. (now -. q.last_refill) in
  q.tokens <-
    Float.min q.rate_bytes_per_s (q.tokens +. (elapsed *. q.rate_bytes_per_s));
  q.last_refill <- now;
  let b = float_of_int bytes in
  if q.tokens >= b then begin
    q.tokens <- q.tokens -. b;
    true
  end
  else false

(* --- flow table management -------------------------------------------------- *)

let check_table t table_id =
  if table_id < 0 || table_id >= Array.length t.tables then
    Error (Printf.sprintf "no such table %d" table_id)
  else Ok t.tables.(table_id)

let flow_add t ?(table_id = 0) ~now ~of_match ~priority ~actions ?cookie
    ?idle_timeout ?hard_timeout ?notify_removal () =
  Result.map
    (fun table ->
      Flow_table.add table ~now ~of_match ~priority ~actions ?cookie
        ?idle_timeout ?hard_timeout ?notify_removal ())
    (check_table t table_id)

let flow_modify t ?(table_id = 0) ~now ~of_match ~actions () =
  Result.map
    (fun table ->
      if Flow_table.modify table ~of_match ~actions = 0 then
        Flow_table.add table ~now ~of_match ~priority:0x8000 ~actions ())
    (check_table t table_id)

let flow_delete t ?table_id ?strict ?priority ~of_match () =
  let tables =
    match table_id with
    | Some id -> (match check_table t id with Ok tbl -> [ tbl ] | Error _ -> [])
    | None -> Array.to_list t.tables
  in
  List.concat_map
    (fun tbl -> Flow_table.delete ?strict ?priority tbl ~of_match)
    tables

let flow_stats t ?table_id ?now ~of_match () =
  let with_id =
    match table_id with
    | Some id -> [ id ]
    | None -> List.init (Array.length t.tables) Fun.id
  in
  List.concat_map
    (fun id ->
      (* With [now], expired-but-not-yet-reaped entries are invisible:
         a stats reply must not report a rule the datapath would no
         longer match (resync diffs depend on this). *)
      (match now with
      | Some now -> Flow_table.live_entries t.tables.(id) ~now
      | None -> Flow_table.entries t.tables.(id))
      |> List.filter (fun (e : Flow_table.entry) ->
             OF.Of_match.subsumes of_match e.of_match)
      |> List.map (fun e -> id, e))
    with_id

let table t id = if id >= 0 && id < Array.length t.tables then Some t.tables.(id) else None

let expire_flows t ~now =
  Array.to_list t.tables
  |> List.mapi (fun id tbl -> List.map (fun e -> id, e) (Flow_table.expire tbl ~now))
  |> List.concat

let has_timed_flows t =
  Array.exists (fun tbl -> Flow_table.timed tbl > 0) t.tables

(* --- buffers ------------------------------------------------------------------ *)

let store_buffer t ~in_port frame =
  let id = t.next_buffer in
  t.next_buffer <- Int32.add t.next_buffer 1l;
  if Hashtbl.length t.buffers >= t.n_buffers then begin
    match List.rev t.buffer_order with
    | oldest :: _ ->
      Hashtbl.remove t.buffers oldest;
      t.buffer_order <-
        List.filter (fun b -> not (Int32.equal b oldest)) t.buffer_order
    | [] -> ()
  end;
  Hashtbl.replace t.buffers id (in_port, frame);
  t.buffer_order <- id :: t.buffer_order;
  id

let pop_buffer t id =
  match Hashtbl.find_opt t.buffers id with
  | None -> None
  | Some v ->
    Hashtbl.remove t.buffers id;
    t.buffer_order <- List.filter (fun b -> not (Int32.equal b id)) t.buffer_order;
    Some v

(* --- the data path -------------------------------------------------------------- *)

let record_tx t out_port bytes =
  match Hashtbl.find_opt t.ports out_port with
  | None -> ()
  | Some p ->
    p.stats <-
      { p.stats with
        Port_stats.tx_packets = Int64.add p.stats.Port_stats.tx_packets 1L;
        tx_bytes = Int64.add p.stats.Port_stats.tx_bytes (Int64.of_int bytes) }

let record_rx t in_port bytes =
  match Hashtbl.find_opt t.ports in_port with
  | None -> ()
  | Some p ->
    p.stats <-
      { p.stats with
        Port_stats.rx_packets = Int64.add p.stats.Port_stats.rx_packets 1L;
        rx_bytes = Int64.add p.stats.Port_stats.rx_bytes (Int64.of_int bytes) }

let record_rx_drop t in_port =
  match Hashtbl.find_opt t.ports in_port with
  | None -> ()
  | Some p ->
    p.stats <-
      { p.stats with
        Port_stats.rx_dropped = Int64.add p.stats.Port_stats.rx_dropped 1L }

(* Resolve one output action on a (possibly rewritten) frame. *)
let emit_output t ~in_port frame = function
  | OF.Action.Physical out_port ->
    if
      match Hashtbl.find_opt t.ports out_port with
      | Some p -> port_usable p
      | None -> false
    then begin
      record_tx t out_port (P.Eth.size frame);
      [ Transmit { out_port; frame } ]
    end
    else []
  | OF.Action.In_port ->
    (match in_port with
    | Some out_port ->
      record_tx t out_port (P.Eth.size frame);
      [ Transmit { out_port; frame } ]
    | None -> [])
  | OF.Action.Flood | OF.Action.All as a ->
    Hashtbl.fold
      (fun no p acc ->
        let is_ingress = match in_port with Some i -> i = no | None -> false in
        if port_usable p && ((not is_ingress) || a = OF.Action.All) then begin
          record_tx t no (P.Eth.size frame);
          Transmit { out_port = no; frame } :: acc
        end
        else acc)
      t.ports []
    |> List.sort (fun a b ->
           match a, b with
           | Transmit x, Transmit y -> compare x.out_port y.out_port
           | _ -> 0)
  | OF.Action.Controller max_len ->
    let data = P.Eth.to_wire frame in
    let total_len = String.length data in
    let keep = if max_len = 0 then total_len else min max_len total_len in
    [ Deliver_to_controller
        { in_port = Option.value in_port ~default:0;
          reason = OF.Of_types.Action_explicit;
          buffer_id = None;
          data = String.sub data 0 keep;
          total_len } ]
  | OF.Action.Drop -> []

(* Apply an action list: header rewrites take effect in order, and each
   output sends the frame as rewritten so far (OF 1.0 semantics). An
   enqueue is an output through the port's token bucket; a frame the
   bucket rejects is dropped and counted against the queue. A reference
   to an unconfigured queue degrades to a plain output, mirroring
   permissive hardware. *)
let apply_actions t ~now ~in_port frame actions =
  let effects = ref [] in
  let current = ref frame in
  List.iter
    (fun action ->
      match action with
      | OF.Action.Output port ->
        effects := !effects @ emit_output t ~in_port !current port
      | OF.Action.Enqueue { port; queue_id } -> (
        match Hashtbl.find_opt t.ports port with
        | None -> ()
        | Some p -> (
          match Hashtbl.find_opt p.queues queue_id with
          | None ->
            effects :=
              !effects @ emit_output t ~in_port !current (OF.Action.Physical port)
          | Some q ->
            let bytes = P.Eth.size !current in
            if queue_admits q ~now ~bytes then begin
              q.q_tx_packets <- Int64.add q.q_tx_packets 1L;
              q.q_tx_bytes <- Int64.add q.q_tx_bytes (Int64.of_int bytes);
              effects :=
                !effects
                @ emit_output t ~in_port !current (OF.Action.Physical port)
            end
            else q.q_dropped <- Int64.add q.q_dropped 1L))
      | _ -> current := OF.Action.apply_one action !current)
    actions;
  !effects

let table_miss t ~now:_ ~in_port frame =
  let data = P.Eth.to_wire frame in
  let total_len = String.length data in
  if total_len <= t.miss_send_len then
    [ Deliver_to_controller
        { in_port; reason = OF.Of_types.No_match; buffer_id = None; data;
          total_len } ]
  else begin
    let buffer_id = store_buffer t ~in_port frame in
    [ Deliver_to_controller
        { in_port; reason = OF.Of_types.No_match; buffer_id = Some buffer_id;
          data = String.sub data 0 t.miss_send_len; total_len } ]
  end

(* Run the multi-table pipeline from [table_id]. Goto-table is encoded
   in our logical actions as... it is not: goto lives only in OF 1.3
   instructions, which the agent flattens into per-table entries here.
   The simulator stores per-entry actions plus an optional goto in the
   cookie's high bits — instead of that hack we give entries whose
   actions end in a special marker? No: we model the pipeline directly:
   OF 1.3 agents install entries into table N with plain actions, and
   encode Goto_table by installing the continuation in the next table.
   Lookup therefore walks tables in order until a match is found. *)
let rec pipeline t ~now ~in_port frame table_id =
  if table_id >= Array.length t.tables then table_miss t ~now ~in_port frame
  else begin
    let headers = P.Headers.of_eth ~in_port frame in
    match Flow_table.lookup t.tables.(table_id) ~now headers with
    | Some entry ->
      Flow_table.hit entry ~now ~bytes:(P.Eth.size frame);
      if entry.actions = [] then [] (* explicit drop *)
      else apply_actions t ~now ~in_port:(Some in_port) frame entry.actions
    | None ->
      if table_id + 1 < Array.length t.tables then
        pipeline t ~now ~in_port frame (table_id + 1)
      else table_miss t ~now ~in_port frame
  end

let receive_frame t ~now ~in_port frame =
  match Hashtbl.find_opt t.ports in_port with
  | None -> []
  | Some p ->
    if not (port_usable p) then begin
      record_rx_drop t in_port;
      []
    end
    else begin
      record_rx t in_port (P.Eth.size frame);
      pipeline t ~now ~in_port frame 0
    end

let inject t ~now ~buffer_id ~data ~in_port ~actions =
  let frame_and_port =
    match buffer_id with
    | Some id -> pop_buffer t id |> Option.map (fun (p, f) -> Some p, f)
    | None -> (
      match P.Eth.of_wire data with
      | Some f -> Some (in_port, f)
      | None -> None)
  in
  match frame_and_port with
  | None -> []
  | Some (port, frame) ->
    let in_port = match in_port with Some _ -> in_port | None -> port in
    apply_actions t ~now ~in_port frame actions
