module Of_match = Openflow.Of_match
module Packed = Of_match.Packed

(* --- datapath lookup counters ------------------------------------------------ *)

module Cost = struct
  type t = {
    mutable lookups : int;
    mutable entries_examined : int;
    mutable subtables_visited : int;
    mutable micro_hits : int;
    mutable micro_misses : int;
    mutable invalidations : int;
  }

  let create () =
    { lookups = 0; entries_examined = 0; subtables_visited = 0;
      micro_hits = 0; micro_misses = 0; invalidations = 0 }

  let lookups t = t.lookups

  let entries_examined t = t.entries_examined

  let subtables_visited t = t.subtables_visited

  let micro_hits t = t.micro_hits

  let micro_misses t = t.micro_misses

  let invalidations t = t.invalidations

  let absorb ~into c =
    into.lookups <- into.lookups + c.lookups;
    into.entries_examined <- into.entries_examined + c.entries_examined;
    into.subtables_visited <- into.subtables_visited + c.subtables_visited;
    into.micro_hits <- into.micro_hits + c.micro_hits;
    into.micro_misses <- into.micro_misses + c.micro_misses;
    into.invalidations <- into.invalidations + c.invalidations

  let reset t =
    t.lookups <- 0;
    t.entries_examined <- 0;
    t.subtables_visited <- 0;
    t.micro_hits <- 0;
    t.micro_misses <- 0;
    t.invalidations <- 0

  let pp ppf t =
    Format.fprintf ppf
      "%d lookups / %d entries examined, %d subtables visited, microflow \
       %d/%d hit/miss, %d invalidations"
      t.lookups t.entries_examined t.subtables_visited t.micro_hits
      t.micro_misses t.invalidations
end

type strategy = Linear | Exact_hash | Classifier

type entry = {
  of_match : Of_match.t;
  priority : int;
  seq : int;
  actions : Openflow.Action.t list;
  cookie : int64;
  idle_timeout : int;
  hard_timeout : int;
  notify_removal : bool;
  install_time : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
}

(* One tuple-space subtable: every entry in it shares the same wildcard
   mask, so membership is a single hash probe on the masked packet.
   A bucket holds the entries with identical packed (mask, value) — the
   same match region at different priorities — best-first (priority
   descending, then install order). *)
type subtable = {
  s_mask : Packed.t;
  buckets : entry list Packed.Tbl.t; (* keyed by the rule's packed value *)
  mutable s_max_priority : int;
  mutable s_count : int;
}

type classifier = {
  mutable subtables : subtable list; (* sorted by s_max_priority, descending *)
  by_mask : subtable Packed.Tbl.t;
  (* The microflow cache: packed packet headers -> (generation, winner).
     Any mutation that could change an answer bumps [generation], which
     orphans every cached binding at once; stale bindings are discarded
     lazily when probed. *)
  micro : (int * entry) Packed.Tbl.t;
  mutable generation : int;
}

(* Bound the microflow cache; reached, it is simply emptied (a coarse
   but obviously-correct eviction — steady state refills it in one
   probe per flow). *)
let micro_cap = 8192

type store =
  | Linear_s of { mutable entries : entry list }
  | Exact_s of { mutable wildcard : entry list; exact : entry Packed.Tbl.t }
  | Classifier_s of classifier

type t = {
  strategy : strategy;
  cost : Cost.t;
  mutable next_seq : int;
  store : store;
  (* Upper bound on entries carrying an idle/hard timeout. When zero the
     per-step expiry sweep has nothing to reap and is skipped — without
     this, every agent step pays a full-table scan even on tables where
     no rule can ever expire. *)
  mutable timed : int;
}

let create ?(strategy = Linear) ?cost () =
  let cost = match cost with Some c -> c | None -> Cost.create () in
  let store =
    match strategy with
    | Linear -> Linear_s { entries = [] }
    | Exact_hash -> Exact_s { wildcard = []; exact = Packed.Tbl.create 64 }
    | Classifier ->
      Classifier_s
        { subtables = []; by_mask = Packed.Tbl.create 16;
          micro = Packed.Tbl.create 256; generation = 0 }
  in
  { strategy; cost; next_seq = 0; store; timed = 0 }

let strategy t = t.strategy

let timed t = t.timed

let cost t = t.cost

let is_hashable t (m : Of_match.t) =
  t.strategy = Exact_hash && Of_match.is_exact m
  && m.dl_vlan_pcp <> None = (m.dl_vlan <> None)

(* Descending priority; equal priorities keep FIFO install order (the
   new entry carries the largest [seq], and goes after its peers). *)
let insert_sorted entry l =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest when e.priority < entry.priority -> entry :: e :: rest
    | e :: rest -> e :: go rest
  in
  go l

let same_rule a (m, p) = Of_match.equal a.of_match m && a.priority = p

(* Priority first, install order second — the total order every
   strategy resolves ties with. *)
let better a b =
  a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let by_rank a b =
  match compare b.priority a.priority with 0 -> compare a.seq b.seq | c -> c

let expired e ~now =
  (e.hard_timeout > 0 && now -. e.install_time >= float_of_int e.hard_timeout)
  || (e.idle_timeout > 0 && now -. e.last_hit >= float_of_int e.idle_timeout)

(* --- classifier internals ---------------------------------------------------- *)

let invalidate cls (cost : Cost.t) =
  cls.generation <- cls.generation + 1;
  cost.invalidations <- cost.invalidations + 1

let resort cls =
  cls.subtables <-
    List.sort (fun a b -> compare b.s_max_priority a.s_max_priority)
      cls.subtables

let subtable_max st =
  Packed.Tbl.fold
    (fun _ es acc -> match es with e :: _ -> max acc e.priority | [] -> acc)
    st.buckets min_int

let cls_add cls cost entry =
  let r = Of_match.pack_rule entry.of_match in
  let st =
    match Packed.Tbl.find_opt cls.by_mask r.Packed.mask with
    | Some st -> st
    | None ->
      let st =
        { s_mask = r.Packed.mask; buckets = Packed.Tbl.create 16;
          s_max_priority = min_int; s_count = 0 }
      in
      Packed.Tbl.replace cls.by_mask r.Packed.mask st;
      cls.subtables <- st :: cls.subtables;
      st
  in
  let old =
    Option.value ~default:[] (Packed.Tbl.find_opt st.buckets r.Packed.value)
  in
  (* OpenFlow ADD: an entry with identical match and priority is
     replaced (it had the same priority, so the max is unaffected). *)
  let kept =
    List.filter
      (fun e -> not (same_rule e (entry.of_match, entry.priority)))
      old
  in
  st.s_count <- st.s_count + 1 + List.length kept - List.length old;
  Packed.Tbl.replace st.buckets r.Packed.value (insert_sorted entry kept);
  st.s_max_priority <- max st.s_max_priority entry.priority;
  resort cls;
  invalidate cls cost

(* Remove every entry satisfying [pred]; empty subtables are dropped and
   max priorities refreshed so pruning stays tight. *)
let cls_remove_if cls pred =
  let removed = ref [] in
  List.iter
    (fun st ->
      let doomed =
        Packed.Tbl.fold
          (fun k es acc -> if List.exists pred es then (k, es) :: acc else acc)
          st.buckets []
      in
      List.iter
        (fun (k, es) ->
          let drop, keep = List.partition pred es in
          removed := drop @ !removed;
          st.s_count <- st.s_count - List.length drop;
          if keep = [] then Packed.Tbl.remove st.buckets k
          else Packed.Tbl.replace st.buckets k keep)
        doomed)
    cls.subtables;
  if !removed <> [] then begin
    cls.subtables <-
      List.filter
        (fun st ->
          if st.s_count = 0 then begin
            Packed.Tbl.remove cls.by_mask st.s_mask;
            false
          end
          else begin
            st.s_max_priority <- subtable_max st;
            true
          end)
        cls.subtables;
    resort cls
  end;
  !removed

(* Strict delete: the rule's identity (match, priority) pins the one
   subtable (by mask) and bucket (by value) that can hold it, so removal
   is O(bucket), not a scan of the whole table. The subtable's max
   priority is deliberately left as an upper bound — search pruning only
   needs a bound to stay sound, and the wildcard-delete and expiry
   sweeps retighten it. *)
let cls_remove_strict cls ~of_match ~priority =
  let r = Of_match.pack_rule of_match in
  match Packed.Tbl.find_opt cls.by_mask r.Packed.mask with
  | None -> []
  | Some st -> (
    match Packed.Tbl.find_opt st.buckets r.Packed.value with
    | None -> []
    | Some es ->
      let doomed e =
        Of_match.equal e.of_match of_match
        && (match priority with Some p -> e.priority = p | None -> true)
      in
      let drop, keep = List.partition doomed es in
      if drop = [] then []
      else begin
        st.s_count <- st.s_count - List.length drop;
        if keep = [] then Packed.Tbl.remove st.buckets r.Packed.value
        else Packed.Tbl.replace st.buckets r.Packed.value keep;
        if st.s_count = 0 then begin
          Packed.Tbl.remove cls.by_mask st.s_mask;
          cls.subtables <- List.filter (fun s -> s != st) cls.subtables
        end;
        drop
      end)

exception Pruned

let cls_search cls (cost : Cost.t) ~now key =
  let best = ref None in
  (try
     List.iter
       (fun st ->
         (* Subtables are sorted by max priority: once below the current
            winner, no later subtable can beat it (equal max priority
            can still win the install-order tie-break, so keep going). *)
         (match !best with
         | Some b when st.s_max_priority < b.priority -> raise Pruned
         | _ -> ());
         cost.subtables_visited <- cost.subtables_visited + 1;
         match Packed.Tbl.find_opt st.buckets (Packed.logand key st.s_mask) with
         | None -> ()
         | Some es ->
           (* Everything in the bucket matches the packet; the first
              live entry is the bucket's best. *)
           let rec first = function
             | [] -> None
             | e :: rest ->
               cost.entries_examined <- cost.entries_examined + 1;
               if expired e ~now then first rest else Some e
           in
           (match first es with
           | None -> ()
           | Some e -> (
             match !best with
             | Some b when not (better e b) -> ()
             | _ -> best := Some e)))
       cls.subtables
   with Pruned -> ());
  !best

let cls_lookup cls (cost : Cost.t) ~now key =
  match Packed.Tbl.find_opt cls.micro key with
  | Some (g, e) when g = cls.generation && not (expired e ~now) ->
    cost.micro_hits <- cost.micro_hits + 1;
    Some e
  | probe ->
    if probe <> None then Packed.Tbl.remove cls.micro key;
    cost.micro_misses <- cost.micro_misses + 1;
    let won = cls_search cls cost ~now key in
    (match won with
    | Some e ->
      if Packed.Tbl.length cls.micro >= micro_cap then
        Packed.Tbl.reset cls.micro;
      Packed.Tbl.replace cls.micro key (cls.generation, e)
    | None -> ());
    won

(* --- table operations -------------------------------------------------------- *)

let add t ~now ~of_match ~priority ~actions ?(cookie = 0L) ?(idle_timeout = 0)
    ?(hard_timeout = 0) ?(notify_removal = false) () =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry =
    { of_match; priority; seq; actions; cookie; idle_timeout; hard_timeout;
      notify_removal; install_time = now; last_hit = now; packets = 0L;
      bytes = 0L }
  in
  if idle_timeout > 0 || hard_timeout > 0 then t.timed <- t.timed + 1;
  match t.store with
  | Linear_s s ->
    s.entries <-
      insert_sorted entry
        (List.filter (fun e -> not (same_rule e (of_match, priority))) s.entries)
  | Exact_s s ->
    if is_hashable t of_match then
      Packed.Tbl.replace s.exact (Of_match.pack_rule of_match).Packed.value
        entry
    else
      s.wildcard <-
        insert_sorted entry
          (List.filter
             (fun e -> not (same_rule e (of_match, priority)))
             s.wildcard)
  | Classifier_s cls -> cls_add cls t.cost entry

let modify t ~of_match ~actions =
  let count = ref 0 in
  let update e =
    if Of_match.equal e.of_match of_match then begin
      incr count;
      { e with actions }
    end
    else e
  in
  (match t.store with
  | Linear_s s -> s.entries <- List.map update s.entries
  | Exact_s s ->
    s.wildcard <- List.map update s.wildcard;
    let key = (Of_match.pack_rule of_match).Packed.value in
    (match Packed.Tbl.find_opt s.exact key with
    | Some e when Of_match.equal e.of_match of_match ->
      incr count;
      Packed.Tbl.replace s.exact key { e with actions }
    | Some _ | None -> ())
  | Classifier_s cls ->
    let r = Of_match.pack_rule of_match in
    (match Packed.Tbl.find_opt cls.by_mask r.Packed.mask with
    | None -> ()
    | Some st -> (
      match Packed.Tbl.find_opt st.buckets r.Packed.value with
      | None -> ()
      | Some es ->
        let es = List.map update es in
        if !count > 0 then Packed.Tbl.replace st.buckets r.Packed.value es));
    if !count > 0 then invalidate cls t.cost);
  !count

let has_timeout e = e.idle_timeout > 0 || e.hard_timeout > 0

let drop_timed t removed =
  if removed <> [] then
    t.timed <-
      max 0 (t.timed - List.length (List.filter has_timeout removed));
  removed

let delete ?(strict = false) ?priority t ~of_match =
  let doomed e =
    if strict then
      Of_match.equal e.of_match of_match
      && (match priority with Some p -> e.priority = p | None -> true)
    else Of_match.subsumes of_match e.of_match
  in
  drop_timed t
    (match t.store with
    | Linear_s s ->
      let removed, kept = List.partition doomed s.entries in
      s.entries <- kept;
      removed
    | Exact_s s ->
      let removed, kept = List.partition doomed s.wildcard in
      s.wildcard <- kept;
      let dead =
        Packed.Tbl.fold
          (fun k e acc -> if doomed e then (k, e) :: acc else acc)
          s.exact []
      in
      List.iter (fun (k, _) -> Packed.Tbl.remove s.exact k) dead;
      removed @ List.map snd dead
    | Classifier_s cls ->
      let removed =
        if strict then cls_remove_strict cls ~of_match ~priority
        else cls_remove_if cls doomed
      in
      if removed <> [] then invalidate cls t.cost;
      removed)

(* Scan in (priority, install order); count every entry whose match we
   evaluate. Expired entries no longer match — they are skipped here and
   reaped by the next {!expire} sweep. *)
let linear_find (cost : Cost.t) ~now entries headers =
  let rec go = function
    | [] -> None
    | e :: rest ->
      cost.entries_examined <- cost.entries_examined + 1;
      if (not (expired e ~now)) && Of_match.matches e.of_match headers then
        Some e
      else go rest
  in
  go entries

let lookup t ~now headers =
  let cost = t.cost in
  cost.lookups <- cost.lookups + 1;
  match t.store with
  | Linear_s s -> linear_find cost ~now s.entries headers
  | Exact_s s -> begin
    let exact_hit =
      match Packed.Tbl.find_opt s.exact (Packed.of_headers headers) with
      | Some e ->
        cost.entries_examined <- cost.entries_examined + 1;
        if expired e ~now then None else Some e
      | None -> None
    in
    let wildcard_hit () = linear_find cost ~now s.wildcard headers in
    match exact_hit with
    | Some e -> begin
      (* A wildcard entry of strictly higher priority still wins. *)
      match wildcard_hit () with
      | Some w when w.priority > e.priority -> Some w
      | Some _ | None -> Some e
    end
    | None -> wildcard_hit ()
  end
  | Classifier_s cls -> cls_lookup cls cost ~now (Packed.of_headers headers)

let hit entry ~now ~bytes =
  entry.last_hit <- now;
  entry.packets <- Int64.add entry.packets 1L;
  entry.bytes <- Int64.add entry.bytes (Int64.of_int bytes)

let expire t ~now =
  if t.timed = 0 then []
  else
    let dead e = expired e ~now in
    drop_timed t
      (match t.store with
      | Linear_s s ->
        let removed, kept = List.partition dead s.entries in
        s.entries <- kept;
        removed
      | Exact_s s ->
        let removed, kept = List.partition dead s.wildcard in
        s.wildcard <- kept;
        let doomed =
          Packed.Tbl.fold
            (fun k e acc -> if dead e then (k, e) :: acc else acc)
            s.exact []
        in
        List.iter (fun (k, _) -> Packed.Tbl.remove s.exact k) doomed;
        removed @ List.map snd doomed
      | Classifier_s cls ->
        let removed = cls_remove_if cls dead in
        if removed <> [] then invalidate cls t.cost;
        removed)

let entries t =
  let all =
    match t.store with
    | Linear_s s -> s.entries
    | Exact_s s -> Packed.Tbl.fold (fun _ e acc -> e :: acc) s.exact s.wildcard
    | Classifier_s cls ->
      List.concat_map
        (fun st -> Packed.Tbl.fold (fun _ es acc -> es @ acc) st.buckets [])
        cls.subtables
  in
  List.sort by_rank all

(* Lookup-side expiry means an entry can be dead before any [expire]
   sweep reaps it; consumers deciding what is "present on the switch"
   (stats replies feeding a resync diff) must see only live entries. *)
let live_entries t ~now = List.filter (fun e -> not (expired e ~now)) (entries t)

let is_expired = expired

let length t =
  match t.store with
  | Linear_s s -> List.length s.entries
  | Exact_s s -> List.length s.wildcard + Packed.Tbl.length s.exact
  | Classifier_s cls ->
    List.fold_left (fun acc st -> acc + st.s_count) 0 cls.subtables
