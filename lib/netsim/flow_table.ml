module Of_match = Openflow.Of_match

type strategy = Linear | Exact_hash

type entry = {
  of_match : Of_match.t;
  priority : int;
  actions : Openflow.Action.t list;
  cookie : int64;
  idle_timeout : int;
  hard_timeout : int;
  notify_removal : bool;
  install_time : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
}

(* The exact-match fast path keys entries by the packet's full header
   tuple; only entries produced by [Of_match.exact_of_headers]-style
   matches can live there. *)
type t = {
  strategy : strategy;
  mutable wildcard : entry list; (* sorted by priority, descending *)
  exact : (string, entry) Hashtbl.t;
}

let create ?(strategy = Linear) () =
  { strategy; wildcard = []; exact = Hashtbl.create 64 }

let strategy t = t.strategy

(* A compact binary key over the full tuple; only sound for
   fully-specified matches. *)
let exact_key (m : Of_match.t) =
  let b = Buffer.create 48 in
  let i v = Buffer.add_string b (string_of_int v); Buffer.add_char b ';' in
  let o = function Some v -> i v | None -> Buffer.add_char b '*' in
  o m.Of_match.in_port;
  o (Option.map Packet.Mac.to_int m.dl_src);
  o (Option.map Packet.Mac.to_int m.dl_dst);
  o m.dl_vlan;
  o m.dl_vlan_pcp;
  o m.dl_type;
  o (Option.map
       (fun (p : Packet.Ipv4_addr.Prefix.t) ->
         Int32.to_int (Packet.Ipv4_addr.to_int32 p.base))
       m.nw_src);
  o (Option.map
       (fun (p : Packet.Ipv4_addr.Prefix.t) ->
         Int32.to_int (Packet.Ipv4_addr.to_int32 p.base))
       m.nw_dst);
  o m.nw_proto;
  o m.nw_tos;
  o m.tp_src;
  o m.tp_dst;
  Buffer.contents b

let headers_key (h : Packet.Headers.t) =
  let b = Buffer.create 48 in
  let i v = Buffer.add_string b (string_of_int v); Buffer.add_char b ';' in
  let o = function Some v -> i v | None -> Buffer.add_char b '*' in
  i h.Packet.Headers.in_port;
  i (Packet.Mac.to_int h.dl_src);
  i (Packet.Mac.to_int h.dl_dst);
  o h.dl_vlan;
  o h.dl_vlan_pcp;
  i h.dl_type;
  o (Option.map (fun a -> Int32.to_int (Packet.Ipv4_addr.to_int32 a)) h.nw_src);
  o (Option.map (fun a -> Int32.to_int (Packet.Ipv4_addr.to_int32 a)) h.nw_dst);
  o h.nw_proto;
  o h.nw_tos;
  o h.tp_src;
  o h.tp_dst;
  Buffer.contents b

let is_hashable t (m : Of_match.t) =
  t.strategy = Exact_hash && Of_match.is_exact m
  && m.dl_vlan_pcp <> None = (m.dl_vlan <> None)

let insert_sorted entry l =
  let rec go = function
    | [] -> [ entry ]
    | e :: rest when e.priority < entry.priority -> entry :: e :: rest
    | e :: rest -> e :: go rest
  in
  go l

let same_rule a (m, p) = Of_match.equal a.of_match m && a.priority = p

let add t ~now ~of_match ~priority ~actions ?(cookie = 0L) ?(idle_timeout = 0)
    ?(hard_timeout = 0) ?(notify_removal = false) () =
  let entry =
    { of_match; priority; actions; cookie; idle_timeout; hard_timeout;
      notify_removal; install_time = now; last_hit = now; packets = 0L;
      bytes = 0L }
  in
  if is_hashable t of_match then
    Hashtbl.replace t.exact (exact_key of_match) entry
  else begin
    t.wildcard <-
      insert_sorted entry
        (List.filter (fun e -> not (same_rule e (of_match, priority))) t.wildcard)
  end

let modify t ~of_match ~actions =
  let count = ref 0 in
  t.wildcard <-
    List.map
      (fun e ->
        if Of_match.equal e.of_match of_match then begin
          incr count;
          { e with actions }
        end
        else e)
      t.wildcard;
  (match Hashtbl.find_opt t.exact (exact_key of_match) with
  | Some e when Of_match.equal e.of_match of_match ->
    incr count;
    Hashtbl.replace t.exact (exact_key of_match) { e with actions }
  | Some _ | None -> ());
  !count

let delete t ~of_match =
  let removed = ref [] in
  t.wildcard <-
    List.filter
      (fun e ->
        if Of_match.subsumes of_match e.of_match then begin
          removed := e :: !removed;
          false
        end
        else true)
      t.wildcard;
  let doomed =
    Hashtbl.fold
      (fun k e acc -> if Of_match.subsumes of_match e.of_match then (k, e) :: acc else acc)
      t.exact []
  in
  List.iter
    (fun (k, e) ->
      removed := e :: !removed;
      Hashtbl.remove t.exact k)
    doomed;
  !removed

let lookup t ~now:_ headers =
  let exact_hit =
    if t.strategy = Exact_hash then Hashtbl.find_opt t.exact (headers_key headers)
    else None
  in
  let wildcard_hit () =
    List.find_opt (fun e -> Of_match.matches e.of_match headers) t.wildcard
  in
  match exact_hit with
  | Some e -> begin
    (* A wildcard entry of strictly higher priority still wins. *)
    match wildcard_hit () with
    | Some w when w.priority > e.priority -> Some w
    | Some _ | None -> Some e
  end
  | None -> wildcard_hit ()

let hit entry ~now ~bytes =
  entry.last_hit <- now;
  entry.packets <- Int64.add entry.packets 1L;
  entry.bytes <- Int64.add entry.bytes (Int64.of_int bytes)

let expired e ~now =
  (e.hard_timeout > 0 && now -. e.install_time >= float_of_int e.hard_timeout)
  || (e.idle_timeout > 0 && now -. e.last_hit >= float_of_int e.idle_timeout)

let expire t ~now =
  let removed = ref [] in
  t.wildcard <-
    List.filter
      (fun e ->
        if expired e ~now then begin
          removed := e :: !removed;
          false
        end
        else true)
      t.wildcard;
  let doomed =
    Hashtbl.fold (fun k e acc -> if expired e ~now then (k, e) :: acc else acc)
      t.exact []
  in
  List.iter
    (fun (k, e) ->
      removed := e :: !removed;
      Hashtbl.remove t.exact k)
    doomed;
  !removed

let entries t =
  let hashed = Hashtbl.fold (fun _ e acc -> e :: acc) t.exact [] in
  List.sort (fun a b -> compare b.priority a.priority) (hashed @ t.wildcard)

let length t = List.length t.wildcard + Hashtbl.length t.exact
