(** The device-side OpenFlow endpoint: wraps one {!Sim_switch} with a
    wire-protocol agent speaking OF 1.0 or OF 1.3 over a
    {!Control_channel}. This is the firmware half of the paper's driver
    split — the controller-side halves live in the [driver] library and
    exchange only protocol bytes with this agent, so either side can be
    swapped per protocol version (paper §4.1).

    The agent answers hello/features/echo/barrier, applies flow-mods and
    port-mods, serves stats, forwards packet-outs to the data path, and
    pushes packet-ins, port-status and flow-removed notifications to the
    controller. *)

type version = V10 | V13

type t

val create :
  ?telemetry:Telemetry.t -> ?keepalive_interval:float ->
  ?liveness_timeout:float -> version:version -> switch:Sim_switch.t ->
  endpoint:Control_channel.endpoint -> network:Network.t -> unit -> t
(** Registers the agent as the switch's controller sink in [network] and
    subscribes to port-change notifications. With [telemetry], each
    flow-mod Add resumes the trace stamped under {!trace_key_xid} of its
    xid and records a [switch.install] span — the last stage of the
    packet-in→install pipeline.

    [keepalive_interval] (default 0 = disabled) makes the agent send
    echo-requests on the sim clock and track controller liveness with
    [liveness_timeout] (default 3x the interval) — see {!peer_alive}.
    Installed flows survive a dead controller either way (fail-secure):
    the agent only reports, it never clears state. *)

val trace_key_xid : int32 -> string
(** ["xid:<n>"] — the correlation key the controller-side driver stamps
    when it encodes a flow-mod, shared here because netsim cannot see
    the driver library. *)

val version : t -> version

val step : t -> now:float -> unit
(** Process all buffered controller messages and run flow-timeout
    expiry, emitting flow-removed messages for entries installed with
    [notify_removal]. Also fires due scripted channel faults, resets
    framing when the channel generation changed (a reconnect), and runs
    the keepalive/liveness machinery when enabled. *)

val next_due : t -> now:float -> float
(** Earliest sim time at which {!step} would do something without new
    channel input: the keepalive timer when enabled, or [now] while any
    installed flow carries a timeout (expiry sweeps run per tick).
    [infinity] for a fully quiescent agent — combine with
    {!Control_channel.next_activity} of its endpoint to park it. *)

val messages_handled : t -> int

val peer_alive : t -> bool
(** False once nothing has been received for [liveness_timeout] (only
    meaningful with keepalives enabled); true again on any receipt. *)

val keepalives_sent : t -> int
