(** A small, explicit, splittable PRNG (splitmix64) for everything in
    the simulator that must be random {e and} reproducible: fault
    schedules, retry jitter, chaos tests. Unlike [Stdlib.Random] there
    is no global state — every stream is seeded explicitly, so the same
    seed always yields the same schedule, on any OCaml version. *)

type t

val create : seed:int -> t

val copy : t -> t
(** An independent clone at the current position. *)

val split : t -> t
(** Derive a statistically independent child stream (advances the
    parent once). Used to give each switch its own fault stream from
    one run seed. *)

val bits64 : t -> int64
(** The next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val below : t -> int -> int
(** Uniform in [\[0, n)]; [n] must be positive. *)

val bool : t -> float -> bool
(** [bool t p]: true with probability [p] (one [float] draw; [p <= 0.]
    never draws true, [p >= 1.] always does). *)
