(** A seeded, heavy-tailed flow-arrival generator — the datacenter
    traffic model driving the scale benches.

    Measurement studies of datacenter traffic agree on the shape: flow
    arrivals are well modelled as Poisson at the edge, and flow sizes
    are heavy-tailed — most flows are {e mice} of a few packets, a
    small fraction are {e elephants} carrying most of the bytes. The
    generator reproduces that shape from one {!Prng} seed: exponential
    interarrivals at [rate] flows per simulated second, a Bernoulli
    elephant/mouse class draw, uniform small sizes for mice and a
    bounded Pareto for elephants.

    Determinism is part of the contract: every field of every arrival
    is drawn from the same splitmix64 stream in a fixed order, so a
    seed names the entire schedule — the property the QCheck suite
    pins. New packet flows entering the fabric are what produce
    packet-ins, so [rate] × duration is the packet-in budget of a storm
    (configurable into the millions). *)

type flow_class = Mouse | Elephant

type arrival = {
  at : float;       (** absolute simulated arrival time *)
  src : int;        (** source host index (1-based, {!Topo_gen} naming) *)
  dst : int;        (** destination host index; never equal to [src] *)
  src_port : int;   (** ephemeral TCP source port *)
  dst_port : int;   (** well-known service port *)
  packets : int;    (** flow size in packets *)
  cls : flow_class;
}

type profile = {
  rate : float;              (** flow arrivals per simulated second *)
  elephant_fraction : float; (** probability a flow is an elephant *)
  mouse_mean_packets : int;  (** mean mouse size (uniform 1..2·mean-1) *)
  elephant_min_packets : int;(** Pareto scale x_m for elephant sizes *)
  elephant_alpha : float;    (** Pareto tail index (1 < α ≤ 2 typical) *)
  max_packets : int;         (** truncation bound on the Pareto tail *)
}

val default_profile : profile
(** 1000 flows/s, 10% elephants, mice averaging 8 packets, elephants
    Pareto(x_m = 10_000, α = 1.2) truncated at 10M packets. *)

type t

val create : ?profile:profile -> ?start:float -> seed:int -> hosts:int ->
  unit -> t
(** A generator over hosts [1..hosts] ([hosts >= 2], or
    [Invalid_argument]); arrivals begin after [start] (default 0). *)

val profile : t -> profile

val next : t -> arrival
(** The next arrival; times are strictly increasing. *)

val schedule : t -> n:int -> arrival list
(** The next [n] arrivals (advances the generator). *)

val generated : t -> int
(** Arrivals drawn so far. *)

val first_frame : arrival -> Packet.Eth.t
(** The flow's first packet — a TCP SYN between the conventional
    {!Topo_gen.host_mac}/{!Topo_gen.host_ip} endpoints — whose table
    miss raises the packet-in. *)

val inject_until : t -> net:Network.t -> upto:float -> int
(** Feed every arrival with [at <= upto] into the network as its first
    frame sent from host ["h<src>"], returning how many were injected.
    The generator's clock is the schedule itself: call this with a
    rising [upto] from the bench loop to drive a storm off the sim
    clock. The one arrival drawn past [upto] is buffered, not lost. *)
