(* splitmix64 (Steele, Lea & Flood 2014): tiny state, passes BigCrush,
   and — the property we need — trivially splittable and identical on
   every platform. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }

(* Take the top 53 bits: a uniform dyadic rational in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. (1. /. 9007199254740992.)

let below t n =
  if n <= 0 then invalid_arg "Prng.below";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t p = if p <= 0. then false else if p >= 1. then true else float t < p
