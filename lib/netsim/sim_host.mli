(** A simulated end host with a single NIC: keeps an ARP cache, answers
    ARP and ping, runs a minimal DHCP client, accepts TCP SYNs on
    listening ports, and records what it receives — enough behaviour to
    exercise every system application the paper describes (ARP daemon,
    DHCP daemon, router, accounting).

    Hosts are passive values: [receive] and the send helpers return the
    frames to put on the wire; the {!Network} moves them. *)

type t

type ping_result = { dst : Packet.Ipv4_addr.t; seq : int; rtt : float }

val create : ?ip:Packet.Ipv4_addr.t -> name:string -> mac:Packet.Mac.t -> unit -> t

val name : t -> string
val mac : t -> Packet.Mac.t
val ip : t -> Packet.Ipv4_addr.t option
val set_ip : t -> Packet.Ipv4_addr.t -> unit

val arp_cache : t -> (Packet.Ipv4_addr.t * Packet.Mac.t) list

val listen : t -> int -> unit
(** Accept TCP connections on a port (SYN gets SYN-ACK). *)

(** {1 Sending} *)

val ping : t -> now:float -> dst:Packet.Ipv4_addr.t -> seq:int -> Packet.Eth.t list
(** Emit an echo request; if the destination MAC is unknown this is an
    ARP request and the ping is queued until the reply arrives. *)

val arp_probe : t -> target:Packet.Ipv4_addr.t -> Packet.Eth.t

val dhcp_discover : t -> now:float -> Packet.Eth.t

val send_udp :
  t -> dst_ip:Packet.Ipv4_addr.t -> dst_mac:Packet.Mac.t ->
  src_port:int -> dst_port:int -> string -> Packet.Eth.t

val tcp_connect :
  t -> dst_ip:Packet.Ipv4_addr.t -> dst_mac:Packet.Mac.t ->
  src_port:int -> dst_port:int -> Packet.Eth.t

(** {1 Receiving} *)

val receive : t -> now:float -> Packet.Eth.t -> Packet.Eth.t list
(** Process one frame, returning any responses (ARP replies, echo
    replies, DHCP continuations, SYN-ACKs, queued pings unblocked by an
    ARP reply). Frames not addressed to this host (unicast to another
    MAC) are dropped. *)

(** {1 Observations} *)

val ping_results : t -> ping_result list
(** Completed pings, oldest first. *)

val received_udp : t -> (int * string) list
(** (dst_port, payload) of every UDP datagram accepted. *)

val tcp_established : t -> (int * int) list
(** (local_port, remote_port) pairs for completed handshakes, as
    initiator or responder. *)

val frames_seen : t -> int
