type endpoint = {
  inbox : string Queue.t;
  mutable peer : endpoint option;
  mutable sent : int;
}

type t = endpoint * endpoint

let create () =
  let a = { inbox = Queue.create (); peer = None; sent = 0 } in
  let b = { inbox = Queue.create (); peer = None; sent = 0 } in
  a.peer <- Some b;
  b.peer <- Some a;
  a, b

let send ep data =
  ep.sent <- ep.sent + String.length data;
  match ep.peer with
  | Some peer -> Queue.push data peer.inbox
  | None -> ()

let recv ep = if Queue.is_empty ep.inbox then None else Some (Queue.pop ep.inbox)

let recv_all ep =
  let rec go acc =
    match recv ep with None -> List.rev acc | Some c -> go (c :: acc)
  in
  go []

let pending ep = Queue.length ep.inbox

let bytes_sent ep = ep.sent
