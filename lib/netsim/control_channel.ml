module Faults = struct
  type policy = {
    drop : float;
    duplicate : float;
    reorder : float;
    delay : float;
    delay_s : float;
    truncate : float;
    reconnect_after : float;
  }

  let default =
    { drop = 0.; duplicate = 0.; reorder = 0.; delay = 0.; delay_s = 0.;
      truncate = 0.; reconnect_after = 0. }

  type action = Drop_next of int | Truncate_next of int | Disconnect

  type script_entry = { at : float; action : action }

  type t = {
    policy : policy;
    prng : Prng.t;
    mutable script : script_entry list;  (* sorted by [at] *)
    mutable drop_next : int;
    mutable truncate_next : int option;
    mutable dropped : int;
    mutable duplicated : int;
    mutable reordered : int;
    mutable truncated : int;
    mutable delayed : int;
  }

  let create ?(policy = default) ?(script = []) ~seed () =
    { policy; prng = Prng.create ~seed;
      script = List.sort (fun a b -> compare a.at b.at) script;
      drop_next = 0; truncate_next = None; dropped = 0; duplicated = 0;
      reordered = 0; truncated = 0; delayed = 0 }
end

type fault_stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  truncated : int;
  delayed : int;
}

type msg = { deliver_at : float; data : string }

(* An unrolled FIFO that supports the reorder fault: [front] pops
   oldest-first, [back] holds newer messages newest-first. *)
type inbox = { mutable front : msg list; mutable back : msg list }

(* Connection state lives on the channel, not the endpoint: a TCP
   session dies as a whole. *)
type shared = {
  mutable connected : bool;
  mutable generation : int;
  mutable clock : unit -> float;
  mutable disconnected_at : float;
  mutable reconnect_gate : float;
  mutable disconnects : int;
}

type endpoint = {
  inbox : inbox;
  mutable peer : endpoint option;
  mutable sent : int;
  mutable faults : Faults.t option;
  mutable on_wake : (unit -> unit) option;
  shared : shared;
}

type t = endpoint * endpoint

let create () =
  let shared =
    { connected = true; generation = 0; clock = (fun () -> 0.);
      disconnected_at = 0.; reconnect_gate = 0.; disconnects = 0 }
  in
  let ep () =
    { inbox = { front = []; back = [] }; peer = None; sent = 0; faults = None;
      on_wake = None; shared }
  in
  let a = ep () and b = ep () in
  a.peer <- Some b;
  b.peer <- Some a;
  a, b

let set_clock ep clock = ep.shared.clock <- clock

let wake ep = match ep.on_wake with Some f -> f () | None -> ()

let wake_peer ep = match ep.peer with Some p -> wake p | None -> ()

let set_wakeup ep f = ep.on_wake <- Some f

let set_faults ep f =
  ep.faults <- f;
  (* A fresh script may hold due (or soon-due) entries the owner's next
     idle estimate knows nothing about. *)
  wake ep;
  wake_peer ep

let connected ep = ep.shared.connected

let generation ep = ep.shared.generation

let disconnects ep = ep.shared.disconnects

let flush inbox =
  inbox.front <- [];
  inbox.back <- []

let disconnect ep =
  let s = ep.shared in
  if s.connected then begin
    s.connected <- false;
    s.disconnected_at <- s.clock ();
    s.disconnects <- s.disconnects + 1;
    s.reconnect_gate <-
      (match ep.faults with
      | Some f -> f.Faults.policy.Faults.reconnect_after
      | None -> 0.);
    flush ep.inbox;
    (match ep.peer with Some p -> flush p.inbox | None -> ());
    wake ep;
    wake_peer ep
  end

let reconnect ep =
  let s = ep.shared in
  if s.connected then true
  else if s.clock () >= s.disconnected_at +. s.reconnect_gate then begin
    s.connected <- true;
    s.generation <- s.generation + 1;
    flush ep.inbox;
    (match ep.peer with Some p -> flush p.inbox | None -> ());
    wake ep;
    wake_peer ep;
    true
  end
  else false

(* Fire scripted faults that have come due. *)
let poll ep =
  match ep.faults with
  | None -> ()
  | Some f ->
    let now = ep.shared.clock () in
    let rec go () =
      match f.Faults.script with
      | { Faults.at; action } :: rest when at <= now ->
        f.Faults.script <- rest;
        (match action with
        | Faults.Drop_next n -> f.Faults.drop_next <- f.Faults.drop_next + n
        | Faults.Truncate_next n -> f.Faults.truncate_next <- Some n
        | Faults.Disconnect -> disconnect ep);
        go ()
      | _ -> ()
    in
    go ()

let enqueue inbox msg = inbox.back <- msg :: inbox.back

(* Deliver before the previous message: the adjacent swap that models a
   reordered TCP segment boundary. Skipped (deterministically) when no
   newer-side predecessor exists. *)
let enqueue_reordered inbox msg =
  match inbox.back with
  | prev :: rest -> inbox.back <- prev :: msg :: rest
  | [] -> enqueue inbox msg

let faulted_send ep (f : Faults.t) peer data =
  let p = f.Faults.policy in
  let now = ep.shared.clock () in
  let prng = f.Faults.prng in
  (* scripted drops / truncations consume their counters first *)
  if f.Faults.drop_next > 0 then begin
    f.Faults.drop_next <- f.Faults.drop_next - 1;
    f.Faults.dropped <- f.Faults.dropped + 1
  end
  else if Prng.bool prng p.Faults.drop then
    f.Faults.dropped <- f.Faults.dropped + 1
  else begin
    let data =
      match f.Faults.truncate_next with
      | Some n ->
        f.Faults.truncate_next <- None;
        f.Faults.truncated <- f.Faults.truncated + 1;
        String.sub data 0 (min n (String.length data))
      | None ->
        if String.length data > 0 && Prng.bool prng p.Faults.truncate then begin
          f.Faults.truncated <- f.Faults.truncated + 1;
          (* keep a strict prefix: 0 .. len-1 bytes *)
          String.sub data 0 (Prng.below prng (String.length data))
        end
        else data
    in
    let deliver_at =
      if p.Faults.delay_s > 0. && Prng.bool prng p.Faults.delay then begin
        f.Faults.delayed <- f.Faults.delayed + 1;
        now +. (Prng.float prng *. p.Faults.delay_s)
      end
      else now
    in
    let msg = { deliver_at; data } in
    if Prng.bool prng p.Faults.reorder then begin
      f.Faults.reordered <- f.Faults.reordered + 1;
      enqueue_reordered peer.inbox msg
    end
    else enqueue peer.inbox msg;
    if Prng.bool prng p.Faults.duplicate then begin
      f.Faults.duplicated <- f.Faults.duplicated + 1;
      enqueue peer.inbox msg
    end
  end

let send ep data =
  ep.sent <- ep.sent + String.length data;
  match ep.peer with
  | None -> ()
  | Some peer -> (
    match ep.faults with
    | None ->
      if ep.shared.connected then begin
        enqueue peer.inbox { deliver_at = 0.; data };
        wake peer
      end
    | Some f ->
      poll ep;
      if ep.shared.connected then begin
        faulted_send ep f peer data;
        (* Even a dropped send wakes the peer: a spurious wake costs one
           no-op step, a missed one stalls the receiver forever. *)
        wake peer
      end)

let recv ep =
  let inbox = ep.inbox in
  (if inbox.front = [] then begin
     inbox.front <- List.rev inbox.back;
     inbox.back <- []
   end);
  match inbox.front with
  | m :: rest when m.deliver_at <= ep.shared.clock () ->
    inbox.front <- rest;
    Some m.data
  | _ -> None

let recv_all ep =
  let rec go acc =
    match recv ep with None -> List.rev acc | Some c -> go (c :: acc)
  in
  go []

let pending ep = List.length ep.inbox.front + List.length ep.inbox.back

let rec last = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> last rest

let next_activity ep =
  let script_at =
    match ep.faults with
    | Some f -> (
      match f.Faults.script with
      | { Faults.at; _ } :: _ -> at
      | [] -> infinity)
    | None -> infinity
  in
  let inbox_at =
    (* Delivery is gated on the oldest queued message ([recv] pops
       front-head, refilling front by reversing back), so the gate is
       front's head — or, with front empty, back's last element. *)
    match ep.inbox.front with
    | m :: _ -> m.deliver_at
    | [] -> (
      match last ep.inbox.back with
      | Some m -> m.deliver_at
      | None -> infinity)
  in
  min script_at inbox_at

let bytes_sent ep = ep.sent

let fault_stats ep =
  match ep.faults with
  | None ->
    { dropped = 0; duplicated = 0; reordered = 0; truncated = 0; delayed = 0 }
  | Some f ->
    { dropped = f.Faults.dropped; duplicated = f.Faults.duplicated;
      reordered = f.Faults.reordered; truncated = f.Faults.truncated;
      delayed = f.Faults.delayed }
