module P = Packet

type ping_result = { dst : P.Ipv4_addr.t; seq : int; rtt : float }

type pending_ping = { pdst : P.Ipv4_addr.t; pseq : int; sent : float }

type t = {
  name : string;
  mac : P.Mac.t;
  mutable ip : P.Ipv4_addr.t option;
  arp : (P.Ipv4_addr.t, P.Mac.t) Hashtbl.t;
  mutable listening : int list;
  mutable awaiting_arp : pending_ping list; (* pings blocked on resolution *)
  mutable in_flight : pending_ping list; (* echo requests sent *)
  mutable results : ping_result list;
  mutable udp_seen : (int * string) list;
  mutable tcp_ok : (int * int) list;
  mutable dhcp_xid : int32 option;
  mutable frames_seen : int;
  mutable next_xid : int32;
}

let create ?ip ~name ~mac () =
  { name; mac; ip; arp = Hashtbl.create 16; listening = [];
    awaiting_arp = []; in_flight = []; results = []; udp_seen = [];
    tcp_ok = []; dhcp_xid = None; frames_seen = 0; next_xid = 1l }

let name t = t.name

let mac t = t.mac

let ip t = t.ip

let set_ip t addr = t.ip <- Some addr

let arp_cache t =
  Hashtbl.fold (fun ip mac acc -> (ip, mac) :: acc) t.arp []
  |> List.sort (fun (a, _) (b, _) -> P.Ipv4_addr.compare a b)

let listen t port = if not (List.mem port t.listening) then t.listening <- port :: t.listening

let my_ip t = Option.value t.ip ~default:P.Ipv4_addr.any

let arp_probe t ~target =
  P.Builder.arp_request ~src_mac:t.mac ~src_ip:(my_ip t) ~target

let echo_request t ~dst ~dst_mac ~seq =
  P.Builder.ping ~src_mac:t.mac ~dst_mac ~src_ip:(my_ip t) ~dst_ip:dst ~id:1
    ~seq

let ping t ~now ~dst ~seq =
  match Hashtbl.find_opt t.arp dst with
  | Some dst_mac ->
    t.in_flight <- { pdst = dst; pseq = seq; sent = now } :: t.in_flight;
    [ echo_request t ~dst ~dst_mac ~seq ]
  | None ->
    t.awaiting_arp <- { pdst = dst; pseq = seq; sent = now } :: t.awaiting_arp;
    [ arp_probe t ~target:dst ]

let dhcp_discover t ~now:_ =
  let xid = t.next_xid in
  t.next_xid <- Int32.add xid 1l;
  t.dhcp_xid <- Some xid;
  let dhcp = P.Dhcp.make ~msg_type:P.Dhcp.Discover ~xid ~chaddr:t.mac () in
  P.Eth.make ~src:t.mac ~dst:P.Mac.broadcast
    (P.Eth.Ipv4
       (P.Ipv4.make ~src:P.Ipv4_addr.any ~dst:P.Ipv4_addr.broadcast
          (P.Ipv4.Udp
             { P.Udp.src_port = P.Dhcp.client_port;
               dst_port = P.Dhcp.server_port;
               payload = P.Udp.Dhcp dhcp })))

let send_udp t ~dst_ip ~dst_mac ~src_port ~dst_port data =
  P.Builder.udp ~src_mac:t.mac ~dst_mac ~src_ip:(my_ip t) ~dst_ip ~src_port
    ~dst_port data

let tcp_connect t ~dst_ip ~dst_mac ~src_port ~dst_port =
  P.Builder.tcp_syn ~src_mac:t.mac ~dst_mac ~src_ip:(my_ip t) ~dst_ip ~src_port
    ~dst_port

let ping_results t = List.rev t.results

let received_udp t = List.rev t.udp_seen

let tcp_established t = List.rev t.tcp_ok

let frames_seen t = t.frames_seen

let learn t ip mac = Hashtbl.replace t.arp ip mac

(* Frames addressed to us: our MAC, broadcast, or multicast. *)
let addressed_to_us t (frame : P.Eth.t) =
  P.Mac.equal frame.dst t.mac || P.Mac.is_multicast frame.dst

let handle_arp t (frame : P.Eth.t) (arp : P.Arp.t) =
  learn t arp.spa arp.sha;
  match arp.op with
  | P.Arp.Request ->
    if
      match t.ip with
      | Some my -> P.Ipv4_addr.equal arp.tpa my
      | None -> false
    then
      match P.Builder.arp_reply_to frame ~mac:t.mac with
      | Some reply -> [ reply ]
      | None -> []
    else []
  | P.Arp.Reply ->
    (* Unblock pings that were waiting for this resolution. *)
    let ready, still =
      List.partition (fun p -> P.Ipv4_addr.equal p.pdst arp.spa) t.awaiting_arp
    in
    t.awaiting_arp <- still;
    List.map
      (fun p ->
        t.in_flight <- p :: t.in_flight;
        echo_request t ~dst:p.pdst ~dst_mac:arp.sha ~seq:p.pseq)
      ready

let handle_icmp t ~now (frame : P.Eth.t) (ip : P.Ipv4.t) (icmp : P.Icmp.t) =
  match icmp.kind with
  | P.Icmp.Echo_request -> (
    match P.Builder.pong_of frame with Some r -> [ r ] | None -> [])
  | P.Icmp.Echo_reply ->
    let matching, rest =
      List.partition
        (fun p -> p.pseq = icmp.seq && P.Ipv4_addr.equal p.pdst ip.src)
        t.in_flight
    in
    t.in_flight <- rest;
    List.iter
      (fun p ->
        t.results <- { dst = p.pdst; seq = p.pseq; rtt = now -. p.sent } :: t.results)
      matching;
    []

let handle_dhcp t (dhcp : P.Dhcp.t) =
  match t.dhcp_xid with
  | Some xid when Int32.equal xid dhcp.xid && P.Mac.equal dhcp.chaddr t.mac -> begin
    match dhcp.msg_type with
    | P.Dhcp.Offer ->
      let request =
        P.Dhcp.make ~msg_type:P.Dhcp.Request ~xid ~chaddr:t.mac
          ~requested_ip:dhcp.yiaddr ?server_id:dhcp.server_id ()
      in
      [ P.Eth.make ~src:t.mac ~dst:P.Mac.broadcast
          (P.Eth.Ipv4
             (P.Ipv4.make ~src:P.Ipv4_addr.any ~dst:P.Ipv4_addr.broadcast
                (P.Ipv4.Udp
                   { P.Udp.src_port = P.Dhcp.client_port;
                     dst_port = P.Dhcp.server_port;
                     payload = P.Udp.Dhcp request }))) ]
    | P.Dhcp.Ack ->
      t.ip <- Some dhcp.yiaddr;
      t.dhcp_xid <- None;
      []
    | P.Dhcp.Nak ->
      t.dhcp_xid <- None;
      []
    | P.Dhcp.Discover | P.Dhcp.Request -> []
  end
  | _ -> []

let handle_tcp t (ip : P.Ipv4.t) (tcp : P.Tcp.t) =
  let f = tcp.flags in
  if f.P.Tcp.syn && not f.P.Tcp.ack then begin
    if List.mem tcp.dst_port t.listening then begin
      t.tcp_ok <- (tcp.dst_port, tcp.src_port) :: t.tcp_ok;
      let dst_mac =
        Option.value (Hashtbl.find_opt t.arp ip.src) ~default:P.Mac.broadcast
      in
      [ P.Eth.make ~src:t.mac ~dst:dst_mac
          (P.Eth.Ipv4
             (P.Ipv4.make ~src:(my_ip t) ~dst:ip.src
                (P.Ipv4.Tcp
                   (P.Tcp.make ~flags:P.Tcp.syn_ack ~src_port:tcp.dst_port
                      ~dst_port:tcp.src_port ())))) ]
    end
    else []
  end
  else if f.P.Tcp.syn && f.P.Tcp.ack then begin
    (* Our SYN was answered: handshake complete from our side. *)
    t.tcp_ok <- (tcp.dst_port, tcp.src_port) :: t.tcp_ok;
    []
  end
  else []

let receive t ~now (frame : P.Eth.t) =
  if not (addressed_to_us t frame) then []
  else begin
    t.frames_seen <- t.frames_seen + 1;
    match frame.payload with
    | P.Eth.Arp arp -> handle_arp t frame arp
    | P.Eth.Ipv4 ip -> begin
      learn t ip.src frame.src;
      let for_us =
        match t.ip with
        | Some my ->
          P.Ipv4_addr.equal ip.dst my || P.Ipv4_addr.equal ip.dst P.Ipv4_addr.broadcast
        | None -> true (* unconfigured host accepts broadcasts (DHCP) *)
      in
      if not for_us then []
      else
        match ip.payload with
        | P.Ipv4.Icmp icmp -> handle_icmp t ~now frame ip icmp
        | P.Ipv4.Udp { P.Udp.payload = P.Udp.Dhcp dhcp; _ } -> handle_dhcp t dhcp
        | P.Ipv4.Udp { P.Udp.dst_port; payload = P.Udp.Data data; _ } ->
          t.udp_seen <- (dst_port, data) :: t.udp_seen;
          []
        | P.Ipv4.Tcp tcp -> handle_tcp t ip tcp
        | P.Ipv4.Raw _ -> []
    end
    | P.Eth.Lldp _ | P.Eth.Raw _ -> []
  end
