(** The discrete-event network simulator: switches, hosts, links, and a
    time-ordered event queue moving frames between them.

    Time is simulated seconds. Every frame transmission is scheduled at
    the sending time plus the link latency; [step]/[run] drain the
    queue deterministically (FIFO among same-time events). *)

type t

type endpoint =
  | Sw of int64 * int     (** (dpid, port) *)
  | Hst of string         (** a host's single NIC *)

val create : ?default_latency:float -> unit -> t
(** [default_latency] (default 1e-4, i.e. 100 µs) applies to links
    created without an explicit latency. *)

val now : t -> float

(** {1 Population} *)

val add_switch : t -> Sim_switch.t -> unit
val add_host : t -> Sim_host.t -> unit

val switch : t -> int64 -> Sim_switch.t option
val host : t -> string -> Sim_host.t option
val switches : t -> Sim_switch.t list
val hosts : t -> Sim_host.t list

val datapath_cost : t -> Flow_table.Cost.t
(** A fresh aggregate of every switch's datapath lookup counters (a
    snapshot — later lookups are not reflected in the returned value). *)

val link : ?latency:float -> t -> endpoint -> endpoint -> unit
(** Connect two endpoints with a bidirectional link. Linking a switch
    port that does not exist yet creates it. *)

val unlink : t -> endpoint -> unit
(** Remove the link at this endpoint (both directions); the switch ports
    involved go carrier-down. *)

val set_link_up : t -> endpoint -> bool -> unit
(** Fail/restore a link without removing it. *)

val peer_of : t -> endpoint -> endpoint option
(** Ground-truth topology — what LLDP discovery should converge to. *)

val link_endpoints : t -> (endpoint * endpoint) list
(** Every link once (canonical direction). *)

(** {1 Controller attachment} *)

val set_controller_sink : t -> int64 -> (Sim_switch.effect_ -> unit) -> unit
(** Where a switch's packet-in effects go (normally its {!Of_agent}). *)

val transmit : t -> dpid:int64 -> out_port:int -> Packet.Eth.t -> unit
(** Schedule a frame leaving a switch port (used by agents for
    packet-out, and internally for forwarding). *)

val send_from_host : t -> string -> Packet.Eth.t list -> unit
(** Put host-originated frames on the host's link. *)

(** {1 The clock} *)

val step : t -> bool
(** Process all events at the next scheduled time; false when the queue
    is empty. Flow timeouts are processed as time advances. *)

val run : ?max_events:int -> t -> unit
(** Drain the event queue (bounded by [max_events], default 1_000_000). *)

val run_until : ?max_events:int -> t -> (unit -> bool) -> bool
(** Step until the predicate holds or the queue empties; returns whether
    the predicate held. *)

val advance_idle : t -> float -> unit
(** Advance the clock by [dt] even with no events pending (drives
    timeout expiry in quiet networks). *)

val pending_events : t -> int

val stats : t -> int * int
(** (frames delivered, frames dropped on dead links). *)
