type record = {
  trace : int;
  span_id : int;
  parent : int;
  stage : string;
  t0 : float;
  t1 : float;
  origin : float;
}

let no_record =
  { trace = 0; span_id = 0; parent = 0; stage = ""; t0 = 0.; t1 = 0.;
    origin = 0. }

(* Correlation stamps are bounded FIFO: a stamp nobody resumed within
   [stamp_cap] later stamps is forgotten, not leaked. *)
let stamp_cap = 8192

let max_depth = 64

type t = {
  registry : Registry.t;
  capacity : int;
  mutable ring : record array; (* [||] until the first push *)
  mutable wpos : int; (* total records ever pushed *)
  mutable rpos : int; (* total records ever consumed (read or dropped) *)
  mutable dropped : int;
  mutable enabled : bool;
  mutable now : float;
  (* The control-round counter: the sim clock is frozen inside one
     controller round, so [t1 - origin] quantizes to 0 for any pipeline
     that completes within a round. Rounds are the honest sub-tick unit:
     the loop bumps this once per round, and each traced stage also
     feeds a [rounds.<stage>] histogram with [round - origin_round]. *)
  mutable round : int;
  mutable next_trace : int;
  mutable next_span : int;
  mutable cur_trace : int;
  mutable cur_origin : float;
  mutable cur_origin_round : int;
  stack : int array; (* open span ids, innermost last *)
  mutable depth : int;
  stamps : (string, int * float * int) Hashtbl.t;
  stamp_order : string Queue.t;
  (* Completed records also flow here (the flight recorder's feed). *)
  mutable sink : (record -> unit) option;
}

let create ?(capacity = 4096) registry =
  { registry; capacity = max 1 capacity; ring = [||]; wpos = 0; rpos = 0;
    dropped = 0; enabled = false; now = 0.; round = 0; next_trace = 0;
    next_span = 0; cur_trace = 0; cur_origin = 0.; cur_origin_round = 0;
    stack = Array.make max_depth 0; depth = 0;
    stamps = Hashtbl.create 64; stamp_order = Queue.create (); sink = None }

let set_enabled t b = t.enabled <- b

let enabled t = t.enabled

let set_now t f = t.now <- f

let now t = t.now

let bump_round t = t.round <- t.round + 1

let round t = t.round

let set_sink t f = t.sink <- f

(* Cluster-unique ids: each node offsets its trace/span counters into
   its own slice of the id space, so a trace minted on node 2 keeps its
   identity when its spans land in node 5's ring. Monotone (max), so a
   late call can never re-issue ids already handed out. *)
let set_id_base t base =
  t.next_trace <- max t.next_trace base;
  t.next_span <- max t.next_span base

(* --- traces ------------------------------------------------------------------ *)

let fresh t =
  if not t.enabled then 0
  else begin
    t.next_trace <- t.next_trace + 1;
    t.cur_trace <- t.next_trace;
    t.cur_origin <- t.now;
    t.cur_origin_round <- t.round;
    t.cur_trace
  end

let current t = t.cur_trace

let clear t =
  t.cur_trace <- 0;
  t.cur_origin <- 0.;
  t.cur_origin_round <- 0

let stamp t key =
  if t.enabled && t.cur_trace <> 0 then begin
    match Hashtbl.find_opt t.stamps key with
    | Some (tr, _, _) when tr = t.cur_trace ->
      (* Same binding already present (a burst re-stamps its key once
         per op) — skip the replace and the FIFO entry, so a burst
         costs one stamp, not one per write. *)
      ()
    | _ ->
      if Queue.length t.stamp_order >= stamp_cap then
        Hashtbl.remove t.stamps (Queue.pop t.stamp_order);
      Hashtbl.replace t.stamps key
        (t.cur_trace, t.cur_origin, t.cur_origin_round);
      Queue.push key t.stamp_order
  end

let resume t key =
  if not t.enabled then false
  else
    match Hashtbl.find_opt t.stamps key with
    | None -> false
    | Some (trace, origin, origin_round) ->
      t.cur_trace <- trace;
      t.cur_origin <- origin;
      t.cur_origin_round <- origin_round;
      true

let context t =
  if t.cur_trace = 0 then None
  else Some (t.cur_trace, t.cur_origin, t.cur_origin_round)

(* Adopt a foreign trace context — the cross-node sibling of {!resume}:
   the origin's (id, birth time, birth round) rode the replicated op
   here instead of the local stamp table. *)
let adopt t ~trace ~origin ~origin_round =
  if t.enabled && trace <> 0 then begin
    t.cur_trace <- trace;
    t.cur_origin <- origin;
    t.cur_origin_round <- origin_round
  end

(* --- the ring ---------------------------------------------------------------- *)

let push t r =
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity no_record;
  if t.wpos - t.rpos >= t.capacity then begin
    (* Overrun: the oldest unread record is gone. *)
    t.rpos <- t.rpos + 1;
    t.dropped <- t.dropped + 1
  end;
  t.ring.(t.wpos mod t.capacity) <- r;
  t.wpos <- t.wpos + 1;
  match t.sink with None -> () | Some f -> f r

let spans_recorded t = t.wpos

let drops t = t.dropped

let drain t =
  let n = t.wpos - t.rpos in
  let out = ref [] in
  for i = t.wpos - 1 downto t.wpos - n do
    out := t.ring.(i mod t.capacity) :: !out
  done;
  t.rpos <- t.wpos;
  !out

(* --- spans ------------------------------------------------------------------- *)

let span t ~stage f =
  if not t.enabled then f ()
  else begin
    t.next_span <- t.next_span + 1;
    let span_id = t.next_span in
    let parent = if t.depth > 0 then t.stack.(t.depth - 1) else 0 in
    if t.depth < max_depth then begin
      t.stack.(t.depth) <- span_id;
      t.depth <- t.depth + 1
    end;
    let t0 = t.now in
    Fun.protect f ~finally:(fun () ->
        if t.depth > 0 && t.stack.(t.depth - 1) = span_id then
          t.depth <- t.depth - 1;
        let t1 = t.now in
        (* Attribution at end, so a resume inside the span counts. *)
        let trace = t.cur_trace and origin = t.cur_origin in
        push t { trace; span_id; parent; stage; t0; t1; origin };
        if trace <> 0 then begin
          Registry.observe
            (Registry.histogram t.registry ("trace." ^ stage))
            (t1 -. origin);
          Registry.observe
            (Registry.histogram t.registry ("rounds." ^ stage))
            (float_of_int (t.round - t.cur_origin_round))
        end)
  end

let render_pipe t =
  let rs = drain t in
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "trace=%d span=%d parent=%d stage=%s t0=%.9f t1=%.9f lat=%.9f\n"
           r.trace r.span_id r.parent r.stage r.t0 r.t1
           (if r.trace = 0 then 0. else r.t1 -. r.origin)))
    rs;
  Buffer.contents b
