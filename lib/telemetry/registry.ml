type counter = { mutable v : int }

(* 63 buckets cover [1 ns, ~146 years); bucket i holds observations with
   floor(log2 ns) = i, bucket 0 additionally takes ns <= 1. *)
let n_buckets = 63

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, unit -> float) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 16 }

(* --- counters ---------------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { v = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr c = c.v <- c.v + 1

let add c n = c.v <- c.v + n

let value c = c.v

(* --- gauges ------------------------------------------------------------------ *)

let gauge t name f = Hashtbl.replace t.gauges name f

(* --- histograms -------------------------------------------------------------- *)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      { buckets = Array.make n_buckets 0; count = 0; sum = 0.; max_v = 0. }
    in
    Hashtbl.replace t.histograms name h;
    h

let rec msb n i = if n <= 1 then i else msb (n lsr 1) (i + 1)

let bucket_of_seconds v =
  let ns = int_of_float (v *. 1e9) in
  if ns <= 1 then 0 else min (n_buckets - 1) (msb ns 0)

(* Upper bound of bucket [i], back in seconds. *)
let bucket_upper i = float_of_int (1 lsl (min 62 (i + 1))) *. 1e-9

let observe h v =
  let v = if v < 0. then 0. else v in
  let i = bucket_of_seconds v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v > h.max_v then h.max_v <- v

let hist_count h = h.count

let hist_max h = h.max_v

let percentile h q =
  if h.count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let i = ref 0 in
    let cum = ref h.buckets.(0) in
    while !cum < rank && !i < n_buckets - 1 do
      i := !i + 1;
      cum := !cum + h.buckets.(!i)
    done;
    min (bucket_upper !i) h.max_v
  end

let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.histograms [] |> by_name

(* --- snapshots --------------------------------------------------------------- *)

type snapshot = (string * float) list

(* --- cluster rollup ----------------------------------------------------------- *)

(* Log₂ histograms compose exactly: the merge of two series is the
   elementwise sum of their bucket arrays, and every derived statistic
   (count, sum, max, any percentile) of the merged series is computed
   from the merged buckets — no approximation beyond the bucketing
   already paid per node. *)
let merge_histograms hs =
  let m = { buckets = Array.make n_buckets 0; count = 0; sum = 0.; max_v = 0. } in
  List.iter
    (fun h ->
      for i = 0 to n_buckets - 1 do
        m.buckets.(i) <- m.buckets.(i) + h.buckets.(i)
      done;
      m.count <- m.count + h.count;
      m.sum <- m.sum +. h.sum;
      if h.max_v > m.max_v then m.max_v <- h.max_v)
    hs;
  m

let hist_bucket h i = if i < 0 || i >= n_buckets then 0 else h.buckets.(i)

(* The fleet-wide view behind /yanc/cluster/.proc/metrics: counters and
   gauges summed by name, histograms merged bucket-wise and re-flattened
   so the merged p99 is the percentile of the union, not an average of
   per-node percentiles. *)
let merged_snapshot ts =
  let sums : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let add name v =
    Hashtbl.replace sums name
      (v +. Option.value ~default:0. (Hashtbl.find_opt sums name))
  in
  let hists : (string, histogram list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Hashtbl.iter (fun name c -> add name (float_of_int c.v)) t.counters;
      Hashtbl.iter (fun name f -> add name (f ())) t.gauges;
      Hashtbl.iter
        (fun name h ->
          Hashtbl.replace hists name
            (h :: Option.value ~default:[] (Hashtbl.find_opt hists name)))
        t.histograms)
    ts;
  let entries = Hashtbl.fold (fun name v acc -> (name, v) :: acc) sums [] in
  let entries =
    Hashtbl.fold
      (fun name hs acc ->
        let h = merge_histograms hs in
        (name ^ ".count", float_of_int h.count)
        :: (name ^ ".p50", percentile h 0.5)
        :: (name ^ ".p99", percentile h 0.99)
        :: (name ^ ".max", h.max_v)
        :: acc)
      hists entries
  in
  by_name entries

let snapshot t =
  let entries =
    Hashtbl.fold
      (fun name c acc -> (name, float_of_int c.v) :: acc)
      t.counters []
  in
  let entries =
    Hashtbl.fold (fun name f acc -> (name, f ()) :: acc) t.gauges entries
  in
  let entries =
    Hashtbl.fold
      (fun name h acc ->
        (name ^ ".count", float_of_int h.count)
        :: (name ^ ".p50", percentile h 0.5)
        :: (name ^ ".p99", percentile h 0.99)
        :: (name ^ ".max", h.max_v)
        :: acc)
      t.histograms entries
  in
  by_name entries

let entries s = s

let of_entries l = by_name l

let find s name = List.assoc_opt name s

(* Integers (the common case) render without a fractional part so the
   file reads like /proc/net/snmp, not a float dump. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render s =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      Buffer.add_string b (render_value v);
      Buffer.add_char b '\n')
    s;
  Buffer.contents b

let pp fmt s = Format.pp_print_string fmt (render s)
