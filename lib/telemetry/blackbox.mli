(** The flight recorder — an always-on bounded ring of the last N
    noteworthy moments on one node: completed spans (mirrored from the
    {!Tracer}'s sink), control-channel status transitions, fault events
    and free-form marks.

    Unlike [trace_pipe] it is {e not} consumed on read: its point is to
    still hold the recent past once something has already gone wrong.
    A takeover or a violated chaos invariant {!dump}s it verbatim —
    the black box pulled from the wreckage, also served live at
    [/yanc/.proc/blackbox]. *)

type event =
  | Span of { at : float; stage : string; trace : int; lat : float }
  | Status of { at : float; who : string; from_ : string; to_ : string }
  | Fault of { at : float; who : string; what : string }
  | Mark of { at : float; what : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 events; the ring allocates on first use. *)

val span : t -> at:float -> stage:string -> trace:int -> lat:float -> unit
val status : t -> at:float -> who:string -> from_:string -> to_:string -> unit
val fault : t -> at:float -> who:string -> what:string -> unit
val mark : t -> at:float -> what:string -> unit

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val overwritten : t -> int
(** Events lost to the ring bound. *)

val dumps : t -> int
(** How many times this box has been dumped. *)

val events : t -> event list
(** The surviving window, oldest first. Non-consuming. *)

val render : t -> string
(** [recorded N overwritten M] header, then one line per surviving
    event — the [/yanc/.proc/blackbox] payload. *)

val dump : t -> reason:string -> now:float -> string
(** {!render} under a [# blackbox dump reason=... at=...] header;
    increments {!dumps}. The caller writes it somewhere durable. *)
