(** The controller's observability layer (the procfs/ftrace analog):
    one {!Registry} of named counters/gauges/histograms and one
    {!Tracer} of request spans, created together and threaded through
    the controller so every component reports into the same namespace.

    Consumption is file I/O — the registry renders to
    [/yanc/.proc/metrics] and the tracer to [/yanc/.proc/trace_pipe]
    (see [Yancfs.Procdir]); nothing here depends on the VFS. *)

module Registry = Registry
module Tracer = Tracer
module Health = Health
module Blackbox = Blackbox

type t = { registry : Registry.t; tracer : Tracer.t; blackbox : Blackbox.t }

let create ?(tracing = true) ?capacity ?blackbox_capacity () =
  let registry = Registry.create () in
  let tracer = Tracer.create ?capacity registry in
  Tracer.set_enabled tracer tracing;
  (* The tracer's own health is part of the registry. *)
  Registry.gauge registry "trace.spans_recorded" (fun () ->
      float_of_int (Tracer.spans_recorded tracer));
  Registry.gauge registry "trace.dropped" (fun () ->
      float_of_int (Tracer.drops tracer));
  (* The flight recorder sees every completed span (even ones the trace
     ring later overruns); status/fault events are fed by the drivers. *)
  let blackbox = Blackbox.create ?capacity:blackbox_capacity () in
  Tracer.set_sink tracer
    (Some
       (fun (r : Tracer.record) ->
         Blackbox.span blackbox ~at:r.t1 ~stage:r.stage ~trace:r.trace
           ~lat:(if r.trace = 0 then 0. else r.t1 -. r.origin)));
  Registry.gauge registry "blackbox.recorded" (fun () ->
      float_of_int (Blackbox.recorded blackbox));
  { registry; tracer; blackbox }

let registry t = t.registry

let tracer t = t.tracer

let blackbox t = t.blackbox

let set_tracing t b = Tracer.set_enabled t.tracer b

let tracing t = Tracer.enabled t.tracer
