(** Declarative health/SLO probes — the policy behind
    [/yanc/.proc/health] and [/yanc/cluster/.proc/health].

    A probe names a registry series, a limit, and the severity of
    exceeding it; {!evaluate} is a pure function of one
    {!Registry.snapshot}, so the same table judges a single node and
    the merged fleet rollup. A series the snapshot doesn't carry makes
    the probe not-applicable (reported [Ok] with value [na]) rather
    than an error — the single-node report simply has no shard
    probes. *)

type level = Ok | Warn | Crit

type probe = {
  name : string;
  series : string;
  breach : level;  (** severity when [value > limit] *)
  limit : float;
  why : string;
}

type verdict = { probe : probe; level : level; value : float option }

val defaults : probe list
(** The standing SLO table: dead switches, driver fs errors, unowned
    shards and takeover-latency p99 over 5 s are [Crit];
    install-latency p99 over 256 rounds and trace-ring overruns are
    [Warn]. *)

val evaluate : ?probes:probe list -> Registry.snapshot -> verdict list

val worst : verdict list -> level

val level_to_string : level -> string

val exit_code : level -> int
(** [Crit] is 1; [Ok] and [Warn] are 0 — warnings inform, only a
    broken contract fails a gate (a post-storm fleet with an overrun
    trace ring is healthy). *)

val render : verdict list -> string
(** First line [status ok|warn|crit], then one
    [<probe> <level> value=<v|na> limit=<v> series=<name>] line per
    probe — the [/yanc/.proc/health] payload. *)

val status_of_render : string -> level option
(** Parse the [status] line back out of a rendered report (what
    [yancctl health] does with the health {e file}). *)
