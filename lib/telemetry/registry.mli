(** The unified metrics registry — one namespace for every counter the
    controller exports, consumed through {!snapshot}/{!render} (the
    bytes behind [/yanc/.proc/metrics]).

    Three kinds of series:

    - {e counters}: monotonically increasing integers owned by the
      registry. [counter] returns a handle; {!incr}/{!add} on a handle
      are plain field mutations — the record path allocates nothing.
    - {e gauges}: sampled on demand from a callback. This is how the
      pre-existing cost structs ({!Vfs.Cost}, [Flow_table.Cost],
      [Dfs.Cluster.metrics]) join the registry without rewriting their
      hot paths: they keep their mutable fields, the registry samples
      them at snapshot time.
    - {e histograms}: log₂-bucketed latency distributions (bucket [i]
      holds observations in [[2^i, 2^{i+1})] nanoseconds). {!observe}
      mutates a preallocated bucket array — no allocation per record.
      Snapshots flatten each histogram to [.count]/[.p50]/[.p99]/[.max].

    Names are dot-separated lowercase ([vfs.crossings],
    [sched.routerd.iterations]); [counter]/[histogram] are get-or-create
    so independent components may share a series by name. *)

type t

type counter
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Get or create. The handle stays valid for the registry's lifetime. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a sampled series; the callback runs at each
    {!snapshot} and must not recurse into the registry's consumers. *)

(** {1 Histograms} *)

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Record one latency in seconds (bucketed at nanosecond granularity). *)

val hist_count : histogram -> int
val hist_max : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h 0.99]: the {e upper} bound of the bucket holding the
    rank-q observation, clamped to the true maximum — 0 on an empty
    series.

    Quantization error: buckets are powers of two ([2^i, 2^{i+1}) ns),
    so the reported value is never below the true percentile and
    overstates it by strictly less than 2× (the worst case is an
    observation just above a bucket's lower bound reported at the
    bucket's upper bound). Reporting the upper bound is deliberate:
    a latency SLO judged against it can only fail conservatively,
    whereas the lower bound would understate tails by the same factor. *)

val hist_bucket : histogram -> int -> int
(** Raw occupancy of log₂ bucket [i] (0 out of range) — for consumers
    that merge or re-derive statistics themselves (tests, rollups). *)

val histograms : t -> (string * histogram) list
(** Sorted by name. *)

(** {1 Snapshots} *)

type snapshot
(** An immutable, point-in-time copy: later mutations of the registry
    are not reflected in an already-taken snapshot. *)

val snapshot : t -> snapshot

val merged_snapshot : t list -> snapshot
(** The cluster rollup: one snapshot over several registries — counters
    and gauges {e summed} by name, histograms merged {e bucket-wise}
    before flattening. Log₂ buckets compose exactly, so the merged
    [.p50]/[.p99] are true percentiles of the union of all nodes'
    observations (to the same ≤2× bucket quantization as
    {!percentile}), never an average of per-node percentiles; [.max] is
    the max of maxes. Summing gauges is right for per-node facts
    (busy seconds, spans recorded) — cluster-global facts should be
    appended by the caller once, not sampled per node. *)

val entries : snapshot -> (string * float) list
(** Sorted by name; histograms appear flattened as [name.count],
    [name.p50], [name.p99], [name.max]. *)

val of_entries : (string * float) list -> snapshot
(** Re-pack entries (sorting by name) — how a rollup appends
    cluster-global series ([cluster.live_nodes], [cluster.unowned_shards])
    that must be computed once, not summed per node. *)

val find : snapshot -> string -> float option

val render : snapshot -> string
(** One ["name value"] line per entry — the [/yanc/.proc/metrics]
    format; every line splits on one space and the value parses as a
    float. *)

val render_value : float -> string
(** The value formatting {!render} uses (integral values print without a
    fractional part) — for consumers building their own listings over
    {!entries}. *)

val pp : Format.formatter -> snapshot -> unit
