(** The ftrace-style span tracer: a bounded ring buffer of completed
    begin/end span records on the {e simulated} clock, drained through
    [/yanc/.proc/trace_pipe] with consume-on-read semantics.

    A {e trace} follows one logical request (a packet-in) across
    components. The tracer keeps one ambient current trace — the
    controller is single-threaded, so "the request being processed right
    now" is well defined. Components that originate a request {!fresh} a
    trace id; components that hand work to a later stage through the
    file system {!stamp} a correlation key (an event sequence number, a
    flow path, a protocol xid); the stage that picks the work up calls
    {!resume} with the same key and inherits the trace id and origin
    time. {!span} wraps a stage's work: on completion a record (trace
    id, parent span, stage, begin/end time, trace origin) enters the
    ring, and when the record belongs to a trace its end-to-end latency
    [t1 - origin] feeds the [trace.<stage>] histogram of the attached
    {!Registry}.

    When the ring is full the oldest unread record is dropped and
    counted — exactly inotify's (and ftrace's) overrun contract. With
    tracing disabled every entry point is a no-op and {!span} runs its
    thunk directly. *)

type t

type record = {
  trace : int;  (** 0 when the span ran outside any trace *)
  span_id : int;
  parent : int;  (** enclosing span's id, 0 at top level *)
  stage : string;
  t0 : float;  (** simulated begin time *)
  t1 : float;  (** simulated end time *)
  origin : float;  (** birth time of the owning trace *)
}

val create : ?capacity:int -> Registry.t -> t
(** Ring capacity defaults to 4096 records; the ring itself is
    allocated on first use, so an idle tracer costs a few words. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_now : t -> float -> unit
(** Sync to the simulated clock ({!Vfs.Fs.set_time}'s sibling). *)

val now : t -> float

val bump_round : t -> unit
(** Advance the control-round counter (once per controller round). The
    sim clock does not move inside a round, so [t1 - origin] quantizes
    to zero for any pipeline finishing within one; rounds are the
    honest sub-tick latency unit. Traced spans additionally feed a
    [rounds.<stage>] histogram with [round_end - round_origin]. *)

val round : t -> int

(** {1 Traces} *)

val fresh : t -> int
(** Mint a trace id, make it current with origin [now]. 0 if disabled. *)

val current : t -> int
(** The ambient trace id, 0 if none. *)

val clear : t -> unit
(** Drop the ambient trace (end of the originating batch). *)

val stamp : t -> string -> unit
(** Associate the current trace with a correlation key a later stage
    will see (no-op without a current trace). Keys are bounded FIFO —
    old stamps fall out rather than grow the table. *)

val resume : t -> string -> bool
(** Adopt the trace stamped under [key], if any. Non-consuming: a key
    fanned out to several consumers resumes in each. *)

val context : t -> (int * float * int) option
(** The ambient trace as a portable context [(id, origin time, origin
    round)] — what a cross-node carrier copies onto a replicated op.
    [None] when no trace is current. *)

val adopt : t -> trace:int -> origin:float -> origin_round:int -> unit
(** The cross-node sibling of {!resume}: make a {e foreign} context
    (minted by another node's tracer, carried on a replicated op)
    current, so spans recorded here join the originating trace. No-op
    when disabled or [trace = 0]. *)

val set_id_base : t -> int -> unit
(** Offset this tracer's trace/span id counters into their own slice of
    the id space (e.g. [node_index * 2^40]), making ids cluster-unique
    so adopted traces never collide with locally minted ones. Monotone:
    ids already issued are never re-issued. *)

val set_sink : t -> (record -> unit) option -> unit
(** Mirror every completed span record to a callback as it enters the
    ring (the flight recorder's feed). The sink sees records even if
    the ring later overruns them. *)

(** {1 Spans} *)

val span : t -> stage:string -> (unit -> 'a) -> 'a
(** Run the thunk as one span of [stage]. Nesting gives parent links;
    the trace attribution is read at span {e end}, so a stage that
    resumes a trace mid-span is still attributed to it. *)

(** {1 The ring} *)

val spans_recorded : t -> int
(** Total completed spans ever pushed (including later-dropped ones). *)

val drops : t -> int
(** Records overwritten before being read. *)

val drain : t -> record list
(** Every completed span since the last drain, oldest first; empties
    the buffer — the second consecutive drain returns []. *)

val render_pipe : t -> string
(** {!drain} rendered one record per line:
    [trace=<id> span=<id> parent=<id> stage=<name> t0=<s> t1=<s> lat=<s>]
    — the [/yanc/.proc/trace_pipe] payload, consumed on read. *)
