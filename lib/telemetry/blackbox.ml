(* The flight recorder: an always-on bounded ring of the last N
   noteworthy moments on one node — completed spans (mirrored from the
   tracer's sink), control-channel status transitions, fault events and
   free-form marks. Unlike the trace ring it is *not* consumed on read:
   its whole point is to still hold the recent past when something has
   already gone wrong, so a takeover or a violated invariant dumps it
   as-is, like a black box pulled from the wreckage. *)

type event =
  | Span of { at : float; stage : string; trace : int; lat : float }
  | Status of { at : float; who : string; from_ : string; to_ : string }
  | Fault of { at : float; who : string; what : string }
  | Mark of { at : float; what : string }

let no_event = Mark { at = 0.; what = "" }

type t = {
  capacity : int;
  mutable ring : event array; (* [||] until the first record *)
  mutable wpos : int;         (* total events ever recorded *)
  mutable dumps : int;
}

let create ?(capacity = 512) () =
  { capacity = max 1 capacity; ring = [||]; wpos = 0; dumps = 0 }

let record t ev =
  if Array.length t.ring = 0 then t.ring <- Array.make t.capacity no_event;
  t.ring.(t.wpos mod t.capacity) <- ev;
  t.wpos <- t.wpos + 1

let span t ~at ~stage ~trace ~lat = record t (Span { at; stage; trace; lat })

let status t ~at ~who ~from_ ~to_ = record t (Status { at; who; from_; to_ })

let fault t ~at ~who ~what = record t (Fault { at; who; what })

let mark t ~at ~what = record t (Mark { at; what })

let recorded t = t.wpos

let overwritten t = max 0 (t.wpos - t.capacity)

let dumps t = t.dumps

(* Oldest surviving event first; non-consuming. *)
let events t =
  let n = min t.wpos t.capacity in
  let out = ref [] in
  for i = t.wpos - 1 downto t.wpos - n do
    out := t.ring.(i mod t.capacity) :: !out
  done;
  !out

let render_event = function
  | Span { at; stage; trace; lat } ->
    Printf.sprintf "%.6f span %s trace=%d lat=%.9f" at stage trace lat
  | Status { at; who; from_; to_ } ->
    Printf.sprintf "%.6f status %s %s->%s" at who from_ to_
  | Fault { at; who; what } -> Printf.sprintf "%.6f fault %s %s" at who what
  | Mark { at; what } -> Printf.sprintf "%.6f mark %s" at what

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "recorded %d overwritten %d\n" t.wpos (overwritten t));
  List.iter
    (fun ev ->
      Buffer.add_string b (render_event ev);
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let dump t ~reason ~now =
  t.dumps <- t.dumps + 1;
  Printf.sprintf "# blackbox dump reason=%s at=%.6f\n%s" reason now (render t)
