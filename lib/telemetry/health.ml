(* Declarative health/SLO probes over a registry snapshot — the policy
   half of /yanc/.proc/health. A probe names a series, a limit and the
   severity of exceeding it; evaluation is a pure function of one
   snapshot, so the same table judges a single node (its own snapshot)
   and the fleet (the merged rollup) — a series a snapshot doesn't
   carry is simply not applicable there. *)

type level = Ok | Warn | Crit

type probe = {
  name : string;     (* short probe name, e.g. "unowned_shards" *)
  series : string;   (* the snapshot series judged *)
  breach : level;    (* severity when value > limit *)
  limit : float;
  why : string;      (* one line: what a breach means *)
}

type verdict = { probe : probe; level : level; value : float option }

(* Crit = the control plane is failing its contract (switches dead,
   shards orphaned, writes lost, takeover over budget). Warn = degraded
   observability or latency headroom — real information, but a storm
   legitimately overruns a trace ring, so it must not fail a post-storm
   health gate. *)
let defaults =
  [ { name = "dead_switches"; series = "driver.dead_switches";
      breach = Crit; limit = 0.;
      why = "a driver exhausted its retries and declared the switch Dead" };
    { name = "fs_errors"; series = "driver.fs_errors"; breach = Crit;
      limit = 0.;
      why = "driver-side file-system writes failed (state may be stale)" };
    { name = "unowned_shards"; series = "cluster.unowned_shards";
      breach = Crit; limit = 0.;
      why = "switches no live node attaches (orphaned by a death)" };
    { name = "takeover_latency"; series = "cluster.takeover.latency.p99";
      breach = Crit; limit = 5.;
      why = "lease-expiry takeover exceeded the 5 s reclaim budget" };
    { name = "install_rounds"; series = "rounds.switch.install.p99";
      breach = Warn; limit = 256.;
      why = "packet-in to hardware-install p99 exceeds 256 control rounds" };
    { name = "ring_overruns"; series = "trace.dropped"; breach = Warn;
      limit = 0.;
      why = "trace ring overran before being drained (spans lost)" } ]

let evaluate ?(probes = defaults) snapshot =
  List.map
    (fun p ->
      match Registry.find snapshot p.series with
      | None -> { probe = p; level = Ok; value = None }
      | Some v ->
        { probe = p;
          level = (if v > p.limit then p.breach else Ok);
          value = Some v })
    probes

let worst verdicts =
  List.fold_left
    (fun acc v ->
      match (acc, v.level) with
      | Crit, _ | _, Crit -> Crit
      | Warn, _ | _, Warn -> Warn
      | Ok, Ok -> Ok)
    Ok verdicts

let level_to_string = function Ok -> "ok" | Warn -> "warn" | Crit -> "crit"

(* Only Crit is a breach of contract; Warn degrades the report but not
   the exit code (the CI gate "healthy post-storm fleet exits 0" relies
   on this — storms overrun trace rings by design). *)
let exit_code = function Crit -> 1 | Ok | Warn -> 0

let render verdicts =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "status %s\n" (level_to_string (worst verdicts)));
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "%s %s value=%s limit=%s series=%s\n"
           v.probe.name (level_to_string v.level)
           (match v.value with
           | None -> "na"
           | Some f -> Registry.render_value f)
           (Registry.render_value v.probe.limit)
           v.probe.series))
    verdicts;
  Buffer.contents b

(* The first line of a rendered report, parsed back — what yancctl and
   the bench gates use to turn a health *file* into an exit code. *)
let status_of_render s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
    match String.split_on_char ' ' (String.sub s 0 i) with
    | [ "status"; "ok" ] -> Some Ok
    | [ "status"; "warn" ] -> Some Warn
    | [ "status"; "crit" ] -> Some Crit
    | _ -> None)
