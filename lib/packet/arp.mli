(** ARP over Ethernet/IPv4 (who-has / is-at). *)

type op = Request | Reply

type t = {
  op : op;
  sha : Mac.t;        (** sender hardware address *)
  spa : Ipv4_addr.t;  (** sender protocol address *)
  tha : Mac.t;        (** target hardware address (zero in requests) *)
  tpa : Ipv4_addr.t;  (** target protocol address *)
}

val ethertype : int
(** 0x0806 *)

val request : sha:Mac.t -> spa:Ipv4_addr.t -> tpa:Ipv4_addr.t -> t
val reply : sha:Mac.t -> spa:Ipv4_addr.t -> tha:Mac.t -> tpa:Ipv4_addr.t -> t

val to_wire : t -> string
val of_wire : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
