type payload = Dhcp of Dhcp.t | Data of string

type t = { src_port : int; dst_port : int; payload : payload }

let protocol = 17

let payload_wire t =
  match t.payload with Dhcp d -> Dhcp.to_wire d | Data s -> s

let payload_length t = String.length (payload_wire t)

let to_wire t =
  let body = payload_wire t in
  let w = Wire.W.create ~size:(8 + String.length body) () in
  Wire.W.u16 w t.src_port;
  Wire.W.u16 w t.dst_port;
  Wire.W.u16 w (8 + String.length body);
  Wire.W.u16 w 0; (* checksum: unchecked *)
  Wire.W.string w body;
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let src_port = Wire.R.u16 r in
    let dst_port = Wire.R.u16 r in
    let len = Wire.R.u16 r in
    let _csum = Wire.R.u16 r in
    if len < 8 then None
    else
      let body = Wire.R.bytes r (min (len - 8) (Wire.R.remaining r)) in
      let payload =
        if src_port = Dhcp.server_port || dst_port = Dhcp.server_port
           || src_port = Dhcp.client_port || dst_port = Dhcp.client_port
        then
          match Dhcp.of_wire body with
          | Some d -> Dhcp d
          | None -> Data body
        else Data body
      in
      Some { src_port; dst_port; payload }
  with Wire.R.Truncated -> None

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  &&
  match a.payload, b.payload with
  | Dhcp x, Dhcp y -> Dhcp.equal x y
  | Data x, Data y -> String.equal x y
  | Dhcp _, Data _ | Data _, Dhcp _ -> false

let pp ppf t =
  match t.payload with
  | Dhcp d -> Format.fprintf ppf "udp %d>%d %a" t.src_port t.dst_port Dhcp.pp d
  | Data s ->
    Format.fprintf ppf "udp %d>%d %dB" t.src_port t.dst_port (String.length s)
