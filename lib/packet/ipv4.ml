type payload =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Raw of int * string

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  ttl : int;
  tos : int;
  payload : payload;
}

let ethertype = 0x0800

let make ?(ttl = 64) ?(tos = 0) ~src ~dst payload = { src; dst; ttl; tos; payload }

let protocol t =
  match t.payload with
  | Tcp _ -> Tcp.protocol
  | Udp _ -> Udp.protocol
  | Icmp _ -> Icmp.protocol
  | Raw (proto, _) -> proto

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let payload_wire t =
  match t.payload with
  | Tcp x -> Tcp.to_wire x
  | Udp x -> Udp.to_wire x
  | Icmp x -> Icmp.to_wire x
  | Raw (_, body) -> body

(* RFC 1071 internet checksum over the 20-byte header. *)
let checksum header =
  let sum = ref 0 in
  for i = 0 to (String.length header / 2) - 1 do
    sum := !sum + ((Char.code header.[2 * i] lsl 8) lor Char.code header.[(2 * i) + 1])
  done;
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let header_bytes t ~total_len ~csum =
  let w = Wire.W.create ~size:20 () in
  Wire.W.u8 w 0x45; (* version 4, ihl 5 *)
  Wire.W.u8 w t.tos;
  Wire.W.u16 w total_len;
  Wire.W.u16 w 0; (* identification *)
  Wire.W.u16 w 0; (* flags/fragment *)
  Wire.W.u8 w t.ttl;
  Wire.W.u8 w (protocol t);
  Wire.W.u16 w csum;
  Wire.W.string w (Ipv4_addr.to_octets t.src);
  Wire.W.string w (Ipv4_addr.to_octets t.dst);
  Wire.W.contents w

let to_wire t =
  let body = payload_wire t in
  let total_len = 20 + String.length body in
  let pseudo = header_bytes t ~total_len ~csum:0 in
  let csum = checksum pseudo in
  header_bytes t ~total_len ~csum ^ body

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let vihl = Wire.R.u8 r in
    if vihl lsr 4 <> 4 then None
    else begin
      let ihl = vihl land 0xf in
      let tos = Wire.R.u8 r in
      let total_len = Wire.R.u16 r in
      let _ident = Wire.R.u16 r in
      let _frag = Wire.R.u16 r in
      let ttl = Wire.R.u8 r in
      let proto = Wire.R.u8 r in
      let _csum = Wire.R.u16 r in
      let src = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      let dst = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      if String.length s < 20 || checksum (String.sub s 0 20) <> 0 then None
      else begin
        if ihl > 5 then Wire.R.skip r ((ihl - 5) * 4);
        let body_len = min (total_len - (ihl * 4)) (Wire.R.remaining r) in
        let body = Wire.R.bytes r (max 0 body_len) in
        let payload =
          if proto = Tcp.protocol then
            match Tcp.of_wire body with
            | Some x -> Tcp x
            | None -> Raw (proto, body)
          else if proto = Udp.protocol then
            match Udp.of_wire body with
            | Some x -> Udp x
            | None -> Raw (proto, body)
          else if proto = Icmp.protocol then
            match Icmp.of_wire body with
            | Some x -> Icmp x
            | None -> Raw (proto, body)
          else Raw (proto, body)
        in
        Some { src; dst; ttl; tos; payload }
      end
    end
  with Wire.R.Truncated -> None

let equal a b =
  Ipv4_addr.equal a.src b.src
  && Ipv4_addr.equal a.dst b.dst
  && a.ttl = b.ttl && a.tos = b.tos
  &&
  match a.payload, b.payload with
  | Tcp x, Tcp y -> Tcp.equal x y
  | Udp x, Udp y -> Udp.equal x y
  | Icmp x, Icmp y -> Icmp.equal x y
  | Raw (p, x), Raw (q, y) -> p = q && String.equal x y
  | (Tcp _ | Udp _ | Icmp _ | Raw _), _ -> false

let pp ppf t =
  Format.fprintf ppf "ip %a > %a ttl=%d " Ipv4_addr.pp t.src Ipv4_addr.pp t.dst
    t.ttl;
  match t.payload with
  | Tcp x -> Tcp.pp ppf x
  | Udp x -> Udp.pp ppf x
  | Icmp x -> Icmp.pp ppf x
  | Raw (proto, body) ->
    Format.fprintf ppf "proto=%d %dB" proto (String.length body)
