(** ICMP echo (ping) — the only ICMP types the simulated hosts use. *)

type kind = Echo_request | Echo_reply

type t = { kind : kind; id : int; seq : int; payload : string }

val protocol : int
(** 1 *)

val to_wire : t -> string
val of_wire : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
