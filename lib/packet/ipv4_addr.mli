(** IPv4 addresses and CIDR prefixes.

    yanc represents flow match fields on IP source/destination in CIDR
    notation inside files (paper §3.4), so parsing and printing the
    ["10.0.0.0/8"] form is part of the file-system schema. *)

type t = private int32

val of_int32 : int32 -> t
val to_int32 : t -> int32

val of_string : string -> t option
(** Dotted quad. *)

val to_string : t -> string

val of_octets : string -> t
(** From 4 raw bytes (network order). *)

val to_octets : t -> string

val any : t
val broadcast : t
val localhost : t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** CIDR prefixes, e.g. [10.0.0.0/8]. *)
module Prefix : sig
  type addr := t

  type t = { base : addr; bits : int }

  val of_string : string -> t option
  (** ["a.b.c.d/len"] or a bare address (treated as /32). *)

  val to_string : t -> string

  val make : addr -> int -> t
  (** Normalizes: host bits of [base] are cleared. *)

  val host : addr -> t
  (** The /32 prefix of one address. *)

  val all : t
  (** [0.0.0.0/0]. *)

  val matches : t -> addr -> bool

  val subsumes : t -> t -> bool
  (** [subsumes a b] when every address matched by [b] is matched by
      [a]. *)

  val overlaps : t -> t -> bool

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
