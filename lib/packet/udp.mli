(** UDP datagrams. DHCP payloads (ports 67/68) are kept structured;
    anything else is opaque data. *)

type payload = Dhcp of Dhcp.t | Data of string

type t = { src_port : int; dst_port : int; payload : payload }

val protocol : int
(** 17 *)

val to_wire : t -> string
val of_wire : string -> t option

val payload_length : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
