(** Ethernet frames — the unit carried on simulated links and inside
    OpenFlow packet-in/packet-out messages. Supports one optional
    802.1Q tag (used by the slicing layer to separate tenants). *)

type vlan = { vid : int; pcp : int }

type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Lldp of Lldp.t
  | Raw of int * string  (** ethertype, opaque body *)

type t = {
  src : Mac.t;
  dst : Mac.t;
  vlan : vlan option;
  payload : payload;
}

val make : ?vlan:vlan -> src:Mac.t -> dst:Mac.t -> payload -> t

val ethertype : t -> int
(** The ethertype of the payload (inner type when a VLAN tag is
    present). *)

val with_vlan : t -> vlan option -> t

val to_wire : t -> string
val of_wire : string -> t option

val size : t -> int
(** Wire length in bytes. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
