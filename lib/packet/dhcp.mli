(** DHCP (RFC 2131) — the subset the simulated DHCP daemon and host
    clients exchange: DISCOVER/OFFER/REQUEST/ACK/NAK over BOOTP framing
    with the standard option cookie. *)

type msg_type = Discover | Offer | Request | Ack | Nak

type t = {
  msg_type : msg_type;
  xid : int32;                     (** transaction id *)
  chaddr : Mac.t;                  (** client hardware address *)
  ciaddr : Ipv4_addr.t;            (** client's current address *)
  yiaddr : Ipv4_addr.t;            (** "your" address offered/assigned *)
  siaddr : Ipv4_addr.t;            (** server address *)
  requested_ip : Ipv4_addr.t option;   (** option 50 *)
  server_id : Ipv4_addr.t option;      (** option 54 *)
  lease : int32 option;                (** option 51, seconds *)
  netmask : Ipv4_addr.t option;        (** option 1 *)
}

val server_port : int
(** 67 *)

val client_port : int
(** 68 *)

val make :
  ?ciaddr:Ipv4_addr.t -> ?yiaddr:Ipv4_addr.t -> ?siaddr:Ipv4_addr.t ->
  ?requested_ip:Ipv4_addr.t -> ?server_id:Ipv4_addr.t -> ?lease:int32 ->
  ?netmask:Ipv4_addr.t -> msg_type:msg_type -> xid:int32 -> chaddr:Mac.t ->
  unit -> t

val to_wire : t -> string
val of_wire : string -> t option

val msg_type_to_string : msg_type -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
