(** IPv4 packets with structured TCP/UDP/ICMP payloads. The header
    checksum is computed on serialization and verified on parse. *)

type payload =
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Raw of int * string  (** protocol number, opaque body *)

type t = {
  src : Ipv4_addr.t;
  dst : Ipv4_addr.t;
  ttl : int;
  tos : int;
  payload : payload;
}

val ethertype : int
(** 0x0800 *)

val make :
  ?ttl:int -> ?tos:int -> src:Ipv4_addr.t -> dst:Ipv4_addr.t -> payload -> t

val protocol : t -> int
(** The protocol number of the payload. *)

val decrement_ttl : t -> t option
(** [None] once the TTL would hit zero. *)

val to_wire : t -> string
val of_wire : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
