type op = Request | Reply

type t = {
  op : op;
  sha : Mac.t;
  spa : Ipv4_addr.t;
  tha : Mac.t;
  tpa : Ipv4_addr.t;
}

let ethertype = 0x0806

let request ~sha ~spa ~tpa = { op = Request; sha; spa; tha = Mac.zero; tpa }

let reply ~sha ~spa ~tha ~tpa = { op = Reply; sha; spa; tha; tpa }

let to_wire t =
  let w = Wire.W.create ~size:28 () in
  Wire.W.u16 w 1; (* htype: ethernet *)
  Wire.W.u16 w 0x0800; (* ptype: ipv4 *)
  Wire.W.u8 w 6;
  Wire.W.u8 w 4;
  Wire.W.u16 w (match t.op with Request -> 1 | Reply -> 2);
  Wire.W.string w (Mac.to_octets t.sha);
  Wire.W.string w (Ipv4_addr.to_octets t.spa);
  Wire.W.string w (Mac.to_octets t.tha);
  Wire.W.string w (Ipv4_addr.to_octets t.tpa);
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let htype = Wire.R.u16 r
    and ptype = Wire.R.u16 r
    and hlen = Wire.R.u8 r
    and plen = Wire.R.u8 r
    and opcode = Wire.R.u16 r in
    if htype <> 1 || ptype <> 0x0800 || hlen <> 6 || plen <> 4 then None
    else
      let sha = Mac.of_octets (Wire.R.bytes r 6) in
      let spa = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      let tha = Mac.of_octets (Wire.R.bytes r 6) in
      let tpa = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      match opcode with
      | 1 -> Some { op = Request; sha; spa; tha; tpa }
      | 2 -> Some { op = Reply; sha; spa; tha; tpa }
      | _ -> None
  with Wire.R.Truncated -> None

let equal a b =
  a.op = b.op && Mac.equal a.sha b.sha
  && Ipv4_addr.equal a.spa b.spa
  && Mac.equal a.tha b.tha
  && Ipv4_addr.equal a.tpa b.tpa

let pp ppf t =
  match t.op with
  | Request ->
    Format.fprintf ppf "arp who-has %a tell %a" Ipv4_addr.pp t.tpa Ipv4_addr.pp
      t.spa
  | Reply ->
    Format.fprintf ppf "arp %a is-at %a" Ipv4_addr.pp t.spa Mac.pp t.sha
