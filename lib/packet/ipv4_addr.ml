type t = int32

let of_int32 v = v

let to_int32 v = v

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
    try
      let parse x =
        let v = int_of_string x in
        if v < 0 || v > 255 then failwith "range" else v
      in
      let a, b, c, d = parse a, parse b, parse c, parse d in
      Some
        (Int32.logor
           (Int32.shift_left (Int32.of_int a) 24)
           (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
    with _ -> None
  end
  | _ -> None

let octet t i = Int32.to_int (Int32.shift_right_logical t ((3 - i) * 8)) land 0xff

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 0) (octet t 1) (octet t 2) (octet t 3)

let of_octets s =
  if String.length s <> 4 then invalid_arg "Ipv4_addr.of_octets"
  else
    let v = ref 0l in
    String.iter
      (fun c -> v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code c)))
      s;
    !v

let to_octets t = String.init 4 (fun i -> Char.chr (octet t i))

let any = 0l

let broadcast = 0xffffffffl

let localhost = 0x7f000001l

let equal (a : t) (b : t) = Int32.equal a b

let compare (a : t) (b : t) = Int32.unsigned_compare a b

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Prefix = struct
  type addr = t

  type nonrec t = { base : addr; bits : int }

  let mask bits =
    if bits <= 0 then 0l
    else if bits >= 32 then 0xffffffffl
    else Int32.shift_left 0xffffffffl (32 - bits)

  let make base bits =
    let bits = max 0 (min 32 bits) in
    { base = Int32.logand base (mask bits); bits }

  let host addr = make addr 32

  let all = { base = 0l; bits = 0 }

  let of_string s =
    match String.index_opt s '/' with
    | None -> Option.map host (of_string s)
    | Some i ->
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      (match of_string addr, int_of_string_opt len with
      | Some a, Some bits when bits >= 0 && bits <= 32 -> Some (make a bits)
      | _ -> None)

  let to_string t =
    if t.bits = 32 then to_string t.base
    else Printf.sprintf "%s/%d" (to_string t.base) t.bits

  let matches t addr = Int32.equal (Int32.logand addr (mask t.bits)) t.base

  let subsumes a b = a.bits <= b.bits && matches a b.base

  let overlaps a b = subsumes a b || subsumes b a

  let equal a b = Int32.equal a.base b.base && a.bits = b.bits

  let pp ppf t = Format.pp_print_string ppf (to_string t)
end
