(** 48-bit Ethernet MAC addresses, stored in the low bits of an [int]. *)

type t = private int

val of_int : int -> t
(** Masks to 48 bits. *)

val to_int : t -> int

val broadcast : t
val zero : t

val of_string : string -> t option
(** Parse ["aa:bb:cc:dd:ee:ff"]. *)

val to_string : t -> string

val of_octets : string -> t
(** From 6 raw bytes (network order). Raises [Invalid_argument] on other
    lengths. *)

val to_octets : t -> string

val is_broadcast : t -> bool

val is_multicast : t -> bool
(** Low bit of the first octet set (includes broadcast). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
