type t = {
  in_port : int;
  dl_src : Mac.t;
  dl_dst : Mac.t;
  dl_vlan : int option;
  dl_vlan_pcp : int option;
  dl_type : int;
  nw_src : Ipv4_addr.t option;
  nw_dst : Ipv4_addr.t option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

let of_eth ~in_port (eth : Eth.t) =
  let dl_vlan, dl_vlan_pcp =
    match eth.vlan with
    | Some { vid; pcp } -> Some vid, Some pcp
    | None -> None, None
  in
  let base =
    { in_port; dl_src = eth.src; dl_dst = eth.dst; dl_vlan; dl_vlan_pcp;
      dl_type = Eth.ethertype eth; nw_src = None; nw_dst = None;
      nw_proto = None; nw_tos = None; tp_src = None; tp_dst = None }
  in
  match eth.payload with
  | Eth.Arp arp ->
    { base with
      nw_src = Some arp.spa;
      nw_dst = Some arp.tpa;
      nw_proto = Some (match arp.op with Arp.Request -> 1 | Arp.Reply -> 2) }
  | Eth.Ipv4 ip ->
    let tp_src, tp_dst =
      match ip.payload with
      | Ipv4.Tcp tcp -> Some tcp.src_port, Some tcp.dst_port
      | Ipv4.Udp udp -> Some udp.src_port, Some udp.dst_port
      | Ipv4.Icmp icmp ->
        ( Some (match icmp.kind with Icmp.Echo_request -> 8 | Icmp.Echo_reply -> 0),
          Some 0 )
      | Ipv4.Raw _ -> None, None
    in
    { base with
      nw_src = Some ip.src;
      nw_dst = Some ip.dst;
      nw_proto = Some (Ipv4.protocol ip);
      nw_tos = Some ip.tos;
      tp_src; tp_dst }
  | Eth.Lldp _ | Eth.Raw _ -> base

let pp ppf t =
  let opt pp_v ppf = function
    | None -> Format.pp_print_string ppf "*"
    | Some v -> pp_v ppf v
  in
  let int_opt = opt Format.pp_print_int in
  Format.fprintf ppf
    "{port=%d %a>%a type=0x%04x vlan=%a nw=%a>%a proto=%a tp=%a>%a}" t.in_port
    Mac.pp t.dl_src Mac.pp t.dl_dst t.dl_type int_opt t.dl_vlan
    (opt Ipv4_addr.pp) t.nw_src (opt Ipv4_addr.pp) t.nw_dst int_opt t.nw_proto
    int_opt t.tp_src int_opt t.tp_dst
