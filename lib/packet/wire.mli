(** Big-endian byte-buffer codec shared by every wire format in the
    repository (packet headers and OpenFlow messages). *)

(** Cursor-based writer over a growable buffer. *)
module W : sig
  type t

  val create : ?size:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val string : t -> string -> unit
  val zeros : t -> int -> unit
  val length : t -> int
  val contents : t -> string

  val patch_u16 : t -> pos:int -> int -> unit
  (** Overwrite two bytes at [pos] — used for length fields written after
      the body. *)
end

(** Cursor-based reader. All functions raise {!Truncated} when the input
    is too short. *)
module R : sig
  type t

  exception Truncated

  val of_string : ?pos:int -> string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u64 : t -> int64
  val bytes : t -> int -> string
  val skip : t -> int -> unit
  val pos : t -> int
  val remaining : t -> int
  val rest : t -> string
end
