let ping ~src_mac ~dst_mac ~src_ip ~dst_ip ~id ~seq =
  Eth.make ~src:src_mac ~dst:dst_mac
    (Eth.Ipv4
       (Ipv4.make ~src:src_ip ~dst:dst_ip
          (Ipv4.Icmp { Icmp.kind = Icmp.Echo_request; id; seq; payload = "ping" })))

let pong_of (frame : Eth.t) =
  match frame.payload with
  | Eth.Ipv4 ({ payload = Ipv4.Icmp ({ kind = Icmp.Echo_request; _ } as icmp); _ } as ip) ->
    Some
      (Eth.make ~src:frame.dst ~dst:frame.src
         (Eth.Ipv4
            (Ipv4.make ~src:ip.dst ~dst:ip.src
               (Ipv4.Icmp { icmp with Icmp.kind = Icmp.Echo_reply }))))
  | _ -> None

let arp_request ~src_mac ~src_ip ~target =
  Eth.make ~src:src_mac ~dst:Mac.broadcast
    (Eth.Arp (Arp.request ~sha:src_mac ~spa:src_ip ~tpa:target))

let arp_reply_to (frame : Eth.t) ~mac =
  match frame.payload with
  | Eth.Arp ({ op = Arp.Request; _ } as arp) ->
    Some
      (Eth.make ~src:mac ~dst:arp.sha
         (Eth.Arp (Arp.reply ~sha:mac ~spa:arp.tpa ~tha:arp.sha ~tpa:arp.spa)))
  | _ -> None

let lldp ~src_mac ~dpid ~port =
  Eth.make ~src:src_mac ~dst:Lldp.multicast_mac
    (Eth.Lldp { Lldp.chassis_id = dpid; port_id = port; ttl = 120 })

let tcp_syn ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port =
  Eth.make ~src:src_mac ~dst:dst_mac
    (Eth.Ipv4
       (Ipv4.make ~src:src_ip ~dst:dst_ip
          (Ipv4.Tcp (Tcp.make ~flags:Tcp.syn ~src_port ~dst_port ()))))

let udp ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port data =
  Eth.make ~src:src_mac ~dst:dst_mac
    (Eth.Ipv4
       (Ipv4.make ~src:src_ip ~dst:dst_ip
          (Ipv4.Udp { Udp.src_port; dst_port; payload = Udp.Data data })))
