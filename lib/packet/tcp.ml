type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  payload : string;
}

let protocol = 6

let no_flags = { syn = false; ack = false; fin = false; rst = false; psh = false }

let syn = { no_flags with syn = true }

let syn_ack = { no_flags with syn = true; ack = true }

let ack = { no_flags with ack = true }

let make ?(seq = 0l) ?(ack_no = 0l) ?(flags = no_flags) ?(payload = "")
    ~src_port ~dst_port () =
  { src_port; dst_port; seq; ack_no; flags; payload }

let flags_to_int f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_int v =
  { fin = v land 1 <> 0;
    syn = v land 2 <> 0;
    rst = v land 4 <> 0;
    psh = v land 8 <> 0;
    ack = v land 16 <> 0 }

let to_wire t =
  let w = Wire.W.create ~size:(20 + String.length t.payload) () in
  Wire.W.u16 w t.src_port;
  Wire.W.u16 w t.dst_port;
  Wire.W.u32 w t.seq;
  Wire.W.u32 w t.ack_no;
  Wire.W.u8 w (5 lsl 4); (* data offset: 5 words *)
  Wire.W.u8 w (flags_to_int t.flags);
  Wire.W.u16 w 65535; (* window *)
  Wire.W.u16 w 0; (* checksum *)
  Wire.W.u16 w 0; (* urgent *)
  Wire.W.string w t.payload;
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let src_port = Wire.R.u16 r in
    let dst_port = Wire.R.u16 r in
    let seq = Wire.R.u32 r in
    let ack_no = Wire.R.u32 r in
    let off = Wire.R.u8 r lsr 4 in
    let flags = flags_of_int (Wire.R.u8 r) in
    let _window = Wire.R.u16 r in
    let _csum = Wire.R.u16 r in
    let _urg = Wire.R.u16 r in
    if off > 5 then Wire.R.skip r ((off - 5) * 4);
    let payload = Wire.R.rest r in
    Some { src_port; dst_port; seq; ack_no; flags; payload }
  with Wire.R.Truncated -> None

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port
  && Int32.equal a.seq b.seq
  && Int32.equal a.ack_no b.ack_no
  && a.flags = b.flags
  && String.equal a.payload b.payload

let pp ppf t =
  let fl = t.flags in
  let tags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ fl.syn, "S"; fl.ack, "A"; fl.fin, "F"; fl.rst, "R"; fl.psh, "P" ]
  in
  Format.fprintf ppf "tcp %d>%d [%s] %dB" t.src_port t.dst_port
    (String.concat "" tags) (String.length t.payload)
