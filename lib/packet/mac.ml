type t = int

let mask48 = (1 lsl 48) - 1

let of_int v = v land mask48

let to_int v = v

let broadcast = mask48

let zero = 0

let octet t i = (t lsr ((5 - i) * 8)) land 0xff

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (octet t 0) (octet t 1)
    (octet t 2) (octet t 3) (octet t 4) (octet t 5)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] -> begin
    try
      let parse x =
        if String.length x <> 2 then failwith "len" else int_of_string ("0x" ^ x)
      in
      let v =
        List.fold_left (fun acc x -> (acc lsl 8) lor parse x) 0 [ a; b; c; d; e; f ]
      in
      Some (of_int v)
    with _ -> None
  end
  | _ -> None

let of_octets s =
  if String.length s <> 6 then invalid_arg "Mac.of_octets"
  else
    let v = ref 0 in
    String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
    !v

let to_octets t = String.init 6 (fun i -> Char.chr (octet t i))

let is_broadcast t = t = broadcast

let is_multicast t = octet t 0 land 1 <> 0

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Int.compare a b

let pp ppf t = Format.pp_print_string ppf (to_string t)
