(** Convenience constructors for the frames hosts and daemons commonly
    send. *)

val ping :
  src_mac:Mac.t -> dst_mac:Mac.t -> src_ip:Ipv4_addr.t -> dst_ip:Ipv4_addr.t ->
  id:int -> seq:int -> Eth.t

val pong_of : Eth.t -> Eth.t option
(** Build the echo reply answering a received echo request; [None] if
    the frame is not an echo request. *)

val arp_request : src_mac:Mac.t -> src_ip:Ipv4_addr.t -> target:Ipv4_addr.t -> Eth.t

val arp_reply_to : Eth.t -> mac:Mac.t -> Eth.t option
(** Answer an ARP request with [mac] as the resolved address. *)

val lldp : src_mac:Mac.t -> dpid:int64 -> port:int -> Eth.t

val tcp_syn :
  src_mac:Mac.t -> dst_mac:Mac.t -> src_ip:Ipv4_addr.t -> dst_ip:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> Eth.t

val udp :
  src_mac:Mac.t -> dst_mac:Mac.t -> src_ip:Ipv4_addr.t -> dst_ip:Ipv4_addr.t ->
  src_port:int -> dst_port:int -> string -> Eth.t
