type msg_type = Discover | Offer | Request | Ack | Nak

type t = {
  msg_type : msg_type;
  xid : int32;
  chaddr : Mac.t;
  ciaddr : Ipv4_addr.t;
  yiaddr : Ipv4_addr.t;
  siaddr : Ipv4_addr.t;
  requested_ip : Ipv4_addr.t option;
  server_id : Ipv4_addr.t option;
  lease : int32 option;
  netmask : Ipv4_addr.t option;
}

let server_port = 67

let client_port = 68

let magic_cookie = 0x63825363l

let make ?(ciaddr = Ipv4_addr.any) ?(yiaddr = Ipv4_addr.any)
    ?(siaddr = Ipv4_addr.any) ?requested_ip ?server_id ?lease ?netmask
    ~msg_type ~xid ~chaddr () =
  { msg_type; xid; chaddr; ciaddr; yiaddr; siaddr; requested_ip; server_id;
    lease; netmask }

let msg_type_to_int = function
  | Discover -> 1
  | Offer -> 2
  | Request -> 3
  | Ack -> 5
  | Nak -> 6

let msg_type_of_int = function
  | 1 -> Some Discover
  | 2 -> Some Offer
  | 3 -> Some Request
  | 5 -> Some Ack
  | 6 -> Some Nak
  | _ -> None

let msg_type_to_string = function
  | Discover -> "discover"
  | Offer -> "offer"
  | Request -> "request"
  | Ack -> "ack"
  | Nak -> "nak"

let is_reply = function
  | Offer | Ack | Nak -> true
  | Discover | Request -> false

let to_wire t =
  let w = Wire.W.create ~size:256 () in
  Wire.W.u8 w (if is_reply t.msg_type then 2 else 1); (* op *)
  Wire.W.u8 w 1; (* htype: ethernet *)
  Wire.W.u8 w 6; (* hlen *)
  Wire.W.u8 w 0; (* hops *)
  Wire.W.u32 w t.xid;
  Wire.W.u16 w 0; (* secs *)
  Wire.W.u16 w 0; (* flags *)
  Wire.W.string w (Ipv4_addr.to_octets t.ciaddr);
  Wire.W.string w (Ipv4_addr.to_octets t.yiaddr);
  Wire.W.string w (Ipv4_addr.to_octets t.siaddr);
  Wire.W.zeros w 4; (* giaddr *)
  Wire.W.string w (Mac.to_octets t.chaddr);
  Wire.W.zeros w 10; (* chaddr padding *)
  Wire.W.zeros w 64; (* sname *)
  Wire.W.zeros w 128; (* file *)
  Wire.W.u32 w magic_cookie;
  (* Options. *)
  Wire.W.u8 w 53;
  Wire.W.u8 w 1;
  Wire.W.u8 w (msg_type_to_int t.msg_type);
  let addr_opt code = function
    | None -> ()
    | Some a ->
      Wire.W.u8 w code;
      Wire.W.u8 w 4;
      Wire.W.string w (Ipv4_addr.to_octets a)
  in
  addr_opt 50 t.requested_ip;
  addr_opt 54 t.server_id;
  (match t.lease with
  | None -> ()
  | Some secs ->
    Wire.W.u8 w 51;
    Wire.W.u8 w 4;
    Wire.W.u32 w secs);
  addr_opt 1 t.netmask;
  Wire.W.u8 w 255;
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let _op = Wire.R.u8 r in
    let htype = Wire.R.u8 r in
    let hlen = Wire.R.u8 r in
    let _hops = Wire.R.u8 r in
    if htype <> 1 || hlen <> 6 then None
    else begin
      let xid = Wire.R.u32 r in
      let _secs = Wire.R.u16 r in
      let _flags = Wire.R.u16 r in
      let ciaddr = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      let yiaddr = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      let siaddr = Ipv4_addr.of_octets (Wire.R.bytes r 4) in
      Wire.R.skip r 4; (* giaddr *)
      let chaddr = Mac.of_octets (Wire.R.bytes r 6) in
      Wire.R.skip r 10;
      Wire.R.skip r 64;
      Wire.R.skip r 128;
      if not (Int32.equal (Wire.R.u32 r) magic_cookie) then None
      else begin
        let msg_type = ref None
        and requested_ip = ref None
        and server_id = ref None
        and lease = ref None
        and netmask = ref None in
        let rec opts () =
          if Wire.R.remaining r = 0 then ()
          else
            let code = Wire.R.u8 r in
            if code = 255 then ()
            else if code = 0 then opts ()
            else begin
              let len = Wire.R.u8 r in
              let body = Wire.R.bytes r len in
              (match code, len with
              | 53, 1 -> msg_type := msg_type_of_int (Char.code body.[0])
              | 50, 4 -> requested_ip := Some (Ipv4_addr.of_octets body)
              | 54, 4 -> server_id := Some (Ipv4_addr.of_octets body)
              | 51, 4 ->
                lease := Some (Ipv4_addr.to_int32 (Ipv4_addr.of_octets body))
              | 1, 4 -> netmask := Some (Ipv4_addr.of_octets body)
              | _ -> ());
              opts ()
            end
        in
        opts ();
        match !msg_type with
        | None -> None
        | Some msg_type ->
          Some
            { msg_type; xid; chaddr; ciaddr; yiaddr; siaddr;
              requested_ip = !requested_ip; server_id = !server_id;
              lease = !lease; netmask = !netmask }
      end
    end
  with Wire.R.Truncated -> None

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "dhcp %s xid=%ld chaddr=%a yiaddr=%a"
    (msg_type_to_string t.msg_type) t.xid Mac.pp t.chaddr Ipv4_addr.pp t.yiaddr
