type vlan = { vid : int; pcp : int }

type payload =
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Lldp of Lldp.t
  | Raw of int * string

type t = {
  src : Mac.t;
  dst : Mac.t;
  vlan : vlan option;
  payload : payload;
}

let vlan_tpid = 0x8100

let make ?vlan ~src ~dst payload = { src; dst; vlan; payload }

let ethertype t =
  match t.payload with
  | Arp _ -> Arp.ethertype
  | Ipv4 _ -> Ipv4.ethertype
  | Lldp _ -> Lldp.ethertype
  | Raw (ty, _) -> ty

let with_vlan t vlan = { t with vlan }

let payload_wire t =
  match t.payload with
  | Arp x -> Arp.to_wire x
  | Ipv4 x -> Ipv4.to_wire x
  | Lldp x -> Lldp.to_wire x
  | Raw (_, body) -> body

let to_wire t =
  let w = Wire.W.create ~size:64 () in
  Wire.W.string w (Mac.to_octets t.dst);
  Wire.W.string w (Mac.to_octets t.src);
  (match t.vlan with
  | Some { vid; pcp } ->
    Wire.W.u16 w vlan_tpid;
    Wire.W.u16 w (((pcp land 7) lsl 13) lor (vid land 0xfff))
  | None -> ());
  Wire.W.u16 w (ethertype t);
  Wire.W.string w (payload_wire t);
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let dst = Mac.of_octets (Wire.R.bytes r 6) in
    let src = Mac.of_octets (Wire.R.bytes r 6) in
    let ty = Wire.R.u16 r in
    let vlan, ty =
      if ty = vlan_tpid then begin
        let tci = Wire.R.u16 r in
        Some { vid = tci land 0xfff; pcp = tci lsr 13 }, Wire.R.u16 r
      end
      else None, ty
    in
    let body = Wire.R.rest r in
    let payload =
      if ty = Arp.ethertype then
        match Arp.of_wire body with Some x -> Arp x | None -> Raw (ty, body)
      else if ty = Ipv4.ethertype then
        match Ipv4.of_wire body with Some x -> Ipv4 x | None -> Raw (ty, body)
      else if ty = Lldp.ethertype then
        match Lldp.of_wire body with Some x -> Lldp x | None -> Raw (ty, body)
      else Raw (ty, body)
    in
    Some { src; dst; vlan; payload }
  with Wire.R.Truncated -> None

let size t = String.length (to_wire t)

let equal a b =
  Mac.equal a.src b.src && Mac.equal a.dst b.dst && a.vlan = b.vlan
  &&
  match a.payload, b.payload with
  | Arp x, Arp y -> Arp.equal x y
  | Ipv4 x, Ipv4 y -> Ipv4.equal x y
  | Lldp x, Lldp y -> Lldp.equal x y
  | Raw (p, x), Raw (q, y) -> p = q && String.equal x y
  | (Arp _ | Ipv4 _ | Lldp _ | Raw _), _ -> false

let pp ppf t =
  Format.fprintf ppf "%a > %a%s " Mac.pp t.src Mac.pp t.dst
    (match t.vlan with
    | Some { vid; _ } -> Printf.sprintf " vlan=%d" vid
    | None -> "");
  match t.payload with
  | Arp x -> Arp.pp ppf x
  | Ipv4 x -> Ipv4.pp ppf x
  | Lldp x -> Lldp.pp ppf x
  | Raw (ty, body) ->
    Format.fprintf ppf "ethertype=0x%04x %dB" ty (String.length body)
