(** The flattened header view of a frame — the OpenFlow 1.0 12-tuple
    that flow matching and the yanc flow files operate on. *)

type t = {
  in_port : int;
  dl_src : Mac.t;
  dl_dst : Mac.t;
  dl_vlan : int option;      (** 802.1Q VID if tagged *)
  dl_vlan_pcp : int option;
  dl_type : int;
  nw_src : Ipv4_addr.t option;   (** also the ARP sender address *)
  nw_dst : Ipv4_addr.t option;   (** also the ARP target address *)
  nw_proto : int option;         (** IP protocol, or ARP opcode *)
  nw_tos : int option;
  tp_src : int option;           (** TCP/UDP source port, or ICMP type *)
  tp_dst : int option;           (** TCP/UDP destination port, or ICMP code *)
}

val of_eth : in_port:int -> Eth.t -> t

val pp : Format.formatter -> t -> unit
