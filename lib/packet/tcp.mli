(** TCP segments (20-byte header, no options; checksums are not used by
    the simulator). Enough structure for flow matching on ports/flags
    and for the hosts' tiny handshake client. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool; psh : bool }

type t = {
  src_port : int;
  dst_port : int;
  seq : int32;
  ack_no : int32;
  flags : flags;
  payload : string;
}

val protocol : int
(** 6 *)

val no_flags : flags
val syn : flags
val syn_ack : flags
val ack : flags

val make :
  ?seq:int32 -> ?ack_no:int32 -> ?flags:flags -> ?payload:string ->
  src_port:int -> dst_port:int -> unit -> t

val to_wire : t -> string
val of_wire : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
