module W = struct
  type t = Buffer.t

  let create ?(size = 64) () = Buffer.create size

  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (Int32.to_int (Int32.shift_right_logical v 16) land 0xffff);
    u16 t (Int32.to_int v land 0xffff)

  let u64 t v =
    u32 t (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 t (Int64.to_int32 v)

  let string t s = Buffer.add_string t s

  let zeros t n = Buffer.add_string t (String.make n '\000')

  let length = Buffer.length

  let contents = Buffer.contents

  let patch_u16 t ~pos v =
    (* Buffer has no in-place write; rebuild via to_bytes. Cheap at the
       message sizes involved. *)
    let b = Buffer.to_bytes t in
    Bytes.set b pos (Char.chr (v lsr 8 land 0xff));
    Bytes.set b (pos + 1) (Char.chr (v land 0xff));
    Buffer.clear t;
    Buffer.add_bytes t b
end

module R = struct
  type t = { data : string; mutable pos : int }

  exception Truncated

  let of_string ?(pos = 0) data = { data; pos }

  let need t n = if t.pos + n > String.length t.data then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32 t =
    let hi = u16 t in
    let lo = u16 t in
    Int32.logor (Int32.shift_left (Int32.of_int hi) 16) (Int32.of_int lo)

  let u64 t =
    let hi = u32 t in
    let lo = u32 t in
    Int64.logor
      (Int64.shift_left (Int64.of_int32 hi) 32)
      (Int64.logand (Int64.of_int32 lo) 0xffffffffL)

  let bytes t n =
    need t n;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let skip t n =
    need t n;
    t.pos <- t.pos + n

  let pos t = t.pos

  let remaining t = String.length t.data - t.pos

  let rest t = bytes t (remaining t)
end
