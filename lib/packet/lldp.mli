(** LLDP (802.1AB) frames, the discovery protocol yanc's topology daemon
    uses to populate [peer] symlinks (paper §4.3).

    Only the three mandatory TLVs are carried: chassis id (we store the
    switch datapath id), port id (the egress port number) and TTL. *)

type t = { chassis_id : int64; port_id : int; ttl : int }

val ethertype : int
(** 0x88cc *)

val multicast_mac : Mac.t
(** 01:80:c2:00:00:0e — the nearest-bridge LLDP group address. *)

val to_wire : t -> string
val of_wire : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
