type kind = Echo_request | Echo_reply

type t = { kind : kind; id : int; seq : int; payload : string }

let protocol = 1

let to_wire t =
  let w = Wire.W.create ~size:(8 + String.length t.payload) () in
  Wire.W.u8 w (match t.kind with Echo_request -> 8 | Echo_reply -> 0);
  Wire.W.u8 w 0; (* code *)
  Wire.W.u16 w 0; (* checksum: unchecked in the simulator *)
  Wire.W.u16 w t.id;
  Wire.W.u16 w t.seq;
  Wire.W.string w t.payload;
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let ty = Wire.R.u8 r in
    let _code = Wire.R.u8 r in
    let _csum = Wire.R.u16 r in
    let id = Wire.R.u16 r in
    let seq = Wire.R.u16 r in
    let payload = Wire.R.rest r in
    match ty with
    | 8 -> Some { kind = Echo_request; id; seq; payload }
    | 0 -> Some { kind = Echo_reply; id; seq; payload }
    | _ -> None
  with Wire.R.Truncated -> None

let equal a b =
  a.kind = b.kind && a.id = b.id && a.seq = b.seq
  && String.equal a.payload b.payload

let pp ppf t =
  Format.fprintf ppf "icmp %s id=%d seq=%d"
    (match t.kind with Echo_request -> "echo-request" | Echo_reply -> "echo-reply")
    t.id t.seq
