type t = { chassis_id : int64; port_id : int; ttl : int }

let ethertype = 0x88cc

let multicast_mac = Mac.of_int 0x0180c200000e

let tlv w ~ty body =
  let len = String.length body in
  Wire.W.u16 w ((ty lsl 9) lor (len land 0x1ff));
  Wire.W.string w body

let to_wire t =
  let w = Wire.W.create () in
  (* Chassis ID TLV: subtype 7 (locally assigned), 8-byte dpid. *)
  let chassis = Wire.W.create ~size:9 () in
  Wire.W.u8 chassis 7;
  Wire.W.u64 chassis t.chassis_id;
  tlv w ~ty:1 (Wire.W.contents chassis);
  (* Port ID TLV: subtype 7 (locally assigned), 4-byte port number. *)
  let port = Wire.W.create ~size:5 () in
  Wire.W.u8 port 7;
  Wire.W.u32 port (Int32.of_int t.port_id);
  tlv w ~ty:2 (Wire.W.contents port);
  (* TTL TLV. *)
  let ttl = Wire.W.create ~size:2 () in
  Wire.W.u16 ttl t.ttl;
  tlv w ~ty:3 (Wire.W.contents ttl);
  (* End of LLDPDU. *)
  Wire.W.u16 w 0;
  Wire.W.contents w

let of_wire s =
  try
    let r = Wire.R.of_string s in
    let chassis_id = ref None
    and port_id = ref None
    and ttl = ref None in
    let rec loop () =
      let hdr = Wire.R.u16 r in
      let ty = hdr lsr 9
      and len = hdr land 0x1ff in
      if ty = 0 then ()
      else begin
        let body = Wire.R.bytes r len in
        let br = Wire.R.of_string body in
        (match ty with
        | 1 ->
          if Wire.R.u8 br = 7 && len = 9 then chassis_id := Some (Wire.R.u64 br)
        | 2 ->
          if Wire.R.u8 br = 7 && len = 5 then
            port_id := Some (Int32.to_int (Wire.R.u32 br))
        | 3 -> if len = 2 then ttl := Some (Wire.R.u16 br)
        | _ -> ());
        loop ()
      end
    in
    loop ();
    match !chassis_id, !port_id, !ttl with
    | Some chassis_id, Some port_id, Some ttl -> Some { chassis_id; port_id; ttl }
    | _ -> None
  with Wire.R.Truncated -> None

let equal a b =
  Int64.equal a.chassis_id b.chassis_id && a.port_id = b.port_id && a.ttl = b.ttl

let pp ppf t =
  Format.fprintf ppf "lldp[dpid=%Ld port=%d ttl=%d]" t.chassis_id t.port_id t.ttl
