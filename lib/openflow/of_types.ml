module Port_info = struct
  type t = {
    port_no : int;
    hw_addr : Packet.Mac.t;
    name : string;
    admin_down : bool;
    link_down : bool;
    speed_mbps : int;
  }

  let make ?(admin_down = false) ?(link_down = false) ?(speed_mbps = 1000)
      ?name ~port_no ~hw_addr () =
    let name =
      match name with Some n -> n | None -> Printf.sprintf "port_%d" port_no
    in
    { port_no; hw_addr; name; admin_down; link_down; speed_mbps }

  let equal (a : t) (b : t) = a = b

  let pp ppf p =
    Format.fprintf ppf "port %d (%s) %a%s%s" p.port_no p.name Packet.Mac.pp
      p.hw_addr
      (if p.admin_down then " admin-down" else "")
      (if p.link_down then " link-down" else "")
end

module Capabilities = struct
  type t = { flow_stats : bool; port_stats : bool; queue_stats : bool }

  let default = { flow_stats = true; port_stats = true; queue_stats = false }

  let to_list t =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ t.flow_stats, "flow_stats"; t.port_stats, "port_stats";
        t.queue_stats, "queue_stats" ]

  let equal (a : t) (b : t) = a = b
end

module Flow_stats = struct
  type t = {
    of_match : Of_match.t;
    priority : int;
    cookie : int64;
    packets : int64;
    bytes : int64;
    duration_s : int;
    idle_timeout : int;
    hard_timeout : int;
    actions : Action.t list;
  }

  let pp ppf s =
    Format.fprintf ppf "flow[%a pri=%d pkts=%Ld bytes=%Ld -> %a]" Of_match.pp
      s.of_match s.priority s.packets s.bytes Action.pp_list s.actions
end

module Port_stats = struct
  type t = {
    port_no : int;
    rx_packets : int64;
    tx_packets : int64;
    rx_bytes : int64;
    tx_bytes : int64;
    rx_dropped : int64;
    tx_dropped : int64;
  }

  let zero port_no =
    { port_no; rx_packets = 0L; tx_packets = 0L; rx_bytes = 0L; tx_bytes = 0L;
      rx_dropped = 0L; tx_dropped = 0L }

  let pp ppf s =
    Format.fprintf ppf "port %d rx=%Ld/%LdB tx=%Ld/%LdB" s.port_no s.rx_packets
      s.rx_bytes s.tx_packets s.tx_bytes
end

type packet_in_reason = No_match | Action_explicit

type port_status_reason = Port_add | Port_delete | Port_modify

type flow_removed_reason = Idle_timeout_hit | Hard_timeout_hit | Flow_deleted
