(** Protocol-independent flow actions. The yanc file system stores each
    as one [action.*] file (paper §3.4); each protocol driver encodes
    them in its own wire format. *)

type pseudo_port =
  | Physical of int
  | In_port        (** send back where it came from *)
  | Flood          (** all ports except ingress *)
  | All            (** all ports including ingress *)
  | Controller of int  (** packet-in, with max bytes to include *)
  | Drop           (** explicit drop (empty action list also drops) *)

type t =
  | Output of pseudo_port
  | Enqueue of { port : int; queue_id : int }
      (** output through a port's QoS queue (OF 1.0 OFPAT_ENQUEUE;
          encoded as SET_QUEUE + OUTPUT on OF 1.3) *)
  | Set_dl_src of Packet.Mac.t
  | Set_dl_dst of Packet.Mac.t
  | Set_vlan of int
  | Set_vlan_pcp of int
  | Strip_vlan
  | Set_nw_src of Packet.Ipv4_addr.t
  | Set_nw_dst of Packet.Ipv4_addr.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int

val apply_one : t -> Packet.Eth.t -> Packet.Eth.t
(** Apply one header-modification action ([Output] is a no-op here). *)

val apply_rewrites : t list -> Packet.Eth.t -> Packet.Eth.t
(** Apply the header-modification actions in order (outputs are handled
    by the switch, which interleaves them correctly: each output sends
    the frame as rewritten so far). *)

val outputs : t list -> pseudo_port list
(** The output actions, in order. *)

(** {1 Action-file codec (paper §3.4)}

    File names are [action.<n>.<kind>] — the paper writes [action.out];
    we extend it with an explicit sequence number so multi-action flows
    have a defined order. Example: [action.0.set_vlan = 10],
    [action.1.out = 3]. [out] values are a port number or one of
    [in_port], [flood], [all], [controller], [controller:<maxlen>],
    [drop]. [enqueue] values are [<port>:<queue>]. *)

val to_fields : t list -> (string * string) list

val of_fields : (string * string) list -> (t list, string) result
(** Accepts the fields in any order; they are sorted by sequence
    number. *)

val parse_one : kind:string -> string -> (t, string) result
(** Parse one action from its file-name kind (e.g. ["out"],
    ["set_dl_src"]) and file contents. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
