type t = { mutable buf : string }

let create () = { buf = "" }

let push t s = t.buf <- t.buf ^ s

let pop t =
  let len = String.length t.buf in
  if len < 4 then None
  else begin
    let msg_len = (Char.code t.buf.[2] lsl 8) lor Char.code t.buf.[3] in
    if msg_len < 8 || len < msg_len then None
    else begin
      let msg = String.sub t.buf 0 msg_len in
      t.buf <- String.sub t.buf msg_len (len - msg_len);
      Some msg
    end
  end

let pop_all t =
  let rec go acc =
    match pop t with None -> List.rev acc | Some m -> go (m :: acc)
  in
  go []

let buffered t = String.length t.buf

let reset t = t.buf <- ""

let peek_version s = if String.length s < 1 then None else Some (Char.code s.[0])
