(** Protocol-independent flow match — the OpenFlow 1.0 12-tuple, where
    [None] means wildcard. OF 1.0 encodes this as the fixed [ofp_match]
    struct, OF 1.3 as OXM TLVs; the yanc file system stores each present
    field as one [match.*] file ("absence of a match file implies a
    wildcard", paper §3.4). *)

type t = {
  in_port : int option;
  dl_src : Packet.Mac.t option;
  dl_dst : Packet.Mac.t option;
  dl_vlan : int option;
  dl_vlan_pcp : int option;
  dl_type : int option;
  nw_src : Packet.Ipv4_addr.Prefix.t option;
  nw_dst : Packet.Ipv4_addr.Prefix.t option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

val any : t
(** Matches everything (all fields wildcarded). *)

val exact_of_headers : Packet.Headers.t -> t
(** The fully-specified match for one packet — what a reactive
    controller installs for "exact match" forwarding. *)

val matches : t -> Packet.Headers.t -> bool

val subsumes : t -> t -> bool
(** [subsumes a b] when every packet matched by [b] is matched by [a] —
    the containment check slices use to confine tenants to their
    flowspace. *)

val intersect : t -> t -> t option
(** The match hitting exactly the packets both hit; [None] when
    disjoint. *)

val is_exact : t -> bool

val specificity : t -> int
(** Number of specified fields (used for tie-breaking displays only;
    OpenFlow semantics order overlapping flows by priority). *)

(** {1 Field-file codec (paper §3.4)}

    Fields are named exactly as in the paper: [in_port], [dl_src],
    [dl_dst], [dl_vlan], [dl_vlan_pcp], [dl_type], [nw_src], [nw_dst],
    [nw_proto], [nw_tos], [tp_src], [tp_dst]. IP fields take CIDR
    notation; MAC fields the colon form; [dl_type] hex ([0x0800]). *)

val field_names : string list

val to_fields : t -> (string * string) list
(** Only the present fields, in canonical order. *)

val of_fields : (string * string) list -> (t, string) result
(** Unknown names and malformed values are errors (the message names the
    offending field). *)

val set_field : t -> string -> string -> (t, string) result
(** Parse and set one field by its file name. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Packed representation}

    The 12-tuple packed into five OCaml ints, with presence bits
    distinguishing an optional field that is absent from one present
    with value 0. Packing a packet costs one five-word record and no
    other allocation; comparing two packed tuples is five int
    equalities. {!Flow_table}'s exact-match and classifier backends key
    their hash tables with these instead of formatted strings. *)

module Packed : sig
  type t
  (** The packed image of either a packet's headers ({!of_headers}) or
      one side of a match rule ({!pack_rule}). *)

  val zero : t
  val equal : t -> t -> bool
  val hash : t -> int

  val logand : t -> t -> t
  (** Word-wise AND — restricts a packed packet to a subtable's mask. *)

  val of_headers : Packet.Headers.t -> t

  type rule = { mask : t; value : t }

  val matches : rule -> t -> bool
  (** [matches r key] iff [logand r.mask key] equals [r.value] —
      equivalent to {!Of_match.matches} on the unpacked forms. *)

  module Tbl : Hashtbl.S with type key = t
end

val pack_rule : t -> Packed.rule
(** The packed image of a match: [mask] has a bit set for every header
    bit the match constrains (field bits — the CIDR netmask for the nw
    prefixes — plus, for optional fields, the presence bit), and a
    packet matches iff masking its packed headers yields [value]
    exactly. Matches over the same field set share one [mask], which is
    what partitions the classifier's subtables. *)
