module P = Packet

type pseudo_port =
  | Physical of int
  | In_port
  | Flood
  | All
  | Controller of int
  | Drop

type t =
  | Output of pseudo_port
  | Enqueue of { port : int; queue_id : int }
  | Set_dl_src of P.Mac.t
  | Set_dl_dst of P.Mac.t
  | Set_vlan of int
  | Set_vlan_pcp of int
  | Strip_vlan
  | Set_nw_src of P.Ipv4_addr.t
  | Set_nw_dst of P.Ipv4_addr.t
  | Set_nw_tos of int
  | Set_tp_src of int
  | Set_tp_dst of int

let rewrite_ip (frame : P.Eth.t) f =
  match frame.payload with
  | P.Eth.Ipv4 ip -> { frame with payload = P.Eth.Ipv4 (f ip) }
  | _ -> frame

let rewrite_ports (frame : P.Eth.t) ~src ~dst =
  rewrite_ip frame (fun ip ->
      match ip.P.Ipv4.payload with
      | P.Ipv4.Tcp tcp ->
        { ip with
          P.Ipv4.payload =
            P.Ipv4.Tcp
              { tcp with
                P.Tcp.src_port = Option.value src ~default:tcp.P.Tcp.src_port;
                dst_port = Option.value dst ~default:tcp.P.Tcp.dst_port } }
      | P.Ipv4.Udp udp ->
        { ip with
          P.Ipv4.payload =
            P.Ipv4.Udp
              { udp with
                P.Udp.src_port = Option.value src ~default:udp.P.Udp.src_port;
                dst_port = Option.value dst ~default:udp.P.Udp.dst_port } }
      | P.Ipv4.Icmp _ | P.Ipv4.Raw _ -> ip)

let apply_one action (frame : P.Eth.t) =
  match action with
  | Output _ | Enqueue _ -> frame
  | Set_dl_src mac -> { frame with P.Eth.src = mac }
  | Set_dl_dst mac -> { frame with P.Eth.dst = mac }
  | Set_vlan vid ->
    let pcp = match frame.vlan with Some v -> v.P.Eth.pcp | None -> 0 in
    { frame with vlan = Some { P.Eth.vid; pcp } }
  | Set_vlan_pcp pcp ->
    let vid = match frame.vlan with Some v -> v.P.Eth.vid | None -> 0 in
    { frame with vlan = Some { P.Eth.vid; pcp } }
  | Strip_vlan -> { frame with vlan = None }
  | Set_nw_src addr -> rewrite_ip frame (fun ip -> { ip with P.Ipv4.src = addr })
  | Set_nw_dst addr -> rewrite_ip frame (fun ip -> { ip with P.Ipv4.dst = addr })
  | Set_nw_tos tos -> rewrite_ip frame (fun ip -> { ip with P.Ipv4.tos = tos })
  | Set_tp_src port -> rewrite_ports frame ~src:(Some port) ~dst:None
  | Set_tp_dst port -> rewrite_ports frame ~src:None ~dst:(Some port)

let apply_rewrites actions frame = List.fold_left (Fun.flip apply_one) frame actions

let outputs actions =
  List.filter_map (function Output p -> Some p | _ -> None) actions

let port_to_string = function
  | Physical n -> string_of_int n
  | In_port -> "in_port"
  | Flood -> "flood"
  | All -> "all"
  | Controller 0 -> "controller"
  | Controller maxlen -> Printf.sprintf "controller:%d" maxlen
  | Drop -> "drop"

let port_of_string s =
  let s = String.trim s in
  match s with
  | "in_port" -> Some In_port
  | "flood" -> Some Flood
  | "all" -> Some All
  | "controller" -> Some (Controller 0)
  | "drop" -> Some Drop
  | _ ->
    if String.length s > 11 && String.sub s 0 11 = "controller:" then
      Option.map
        (fun n -> Controller n)
        (int_of_string_opt (String.sub s 11 (String.length s - 11)))
    else Option.map (fun n -> Physical n) (int_of_string_opt s)

let kind_and_value = function
  | Output p -> "out", port_to_string p
  | Enqueue { port; queue_id } -> "enqueue", Printf.sprintf "%d:%d" port queue_id
  | Set_dl_src mac -> "set_dl_src", P.Mac.to_string mac
  | Set_dl_dst mac -> "set_dl_dst", P.Mac.to_string mac
  | Set_vlan v -> "set_vlan", string_of_int v
  | Set_vlan_pcp v -> "set_vlan_pcp", string_of_int v
  | Strip_vlan -> "strip_vlan", ""
  | Set_nw_src a -> "set_nw_src", P.Ipv4_addr.to_string a
  | Set_nw_dst a -> "set_nw_dst", P.Ipv4_addr.to_string a
  | Set_nw_tos v -> "set_nw_tos", string_of_int v
  | Set_tp_src v -> "set_tp_src", string_of_int v
  | Set_tp_dst v -> "set_tp_dst", string_of_int v

let to_fields actions =
  List.mapi
    (fun i a ->
      let kind, value = kind_and_value a in
      Printf.sprintf "action.%d.%s" i kind, value)
    actions

let parse_one ~kind value =
  let v = String.trim value in
  let int_in name lo hi k =
    match int_of_string_opt v with
    | Some x when x >= lo && x <= hi -> Ok (k x)
    | Some _ | None -> Error (Printf.sprintf "%s: invalid value %S" name v)
  in
  match kind with
  | "enqueue" -> (
    match String.split_on_char ':' v with
    | [ port; queue ] -> (
      match int_of_string_opt port, int_of_string_opt queue with
      | Some port, Some queue_id when port > 0 && queue_id >= 0 ->
        Ok (Enqueue { port; queue_id })
      | _ -> Error (Printf.sprintf "enqueue: invalid value %S" v))
    | _ -> Error (Printf.sprintf "enqueue: invalid value %S (want port:queue)" v))
  | "out" -> (
    match port_of_string v with
    | Some p -> Ok (Output p)
    | None -> Error (Printf.sprintf "out: invalid port %S" v))
  | "set_dl_src" -> (
    match P.Mac.of_string v with
    | Some mac -> Ok (Set_dl_src mac)
    | None -> Error (Printf.sprintf "set_dl_src: invalid value %S" v))
  | "set_dl_dst" -> (
    match P.Mac.of_string v with
    | Some mac -> Ok (Set_dl_dst mac)
    | None -> Error (Printf.sprintf "set_dl_dst: invalid value %S" v))
  | "set_vlan" -> int_in "set_vlan" 0 4095 (fun x -> Set_vlan x)
  | "set_vlan_pcp" -> int_in "set_vlan_pcp" 0 7 (fun x -> Set_vlan_pcp x)
  | "strip_vlan" -> Ok Strip_vlan
  | "set_nw_src" -> (
    match P.Ipv4_addr.of_string v with
    | Some a -> Ok (Set_nw_src a)
    | None -> Error (Printf.sprintf "set_nw_src: invalid value %S" v))
  | "set_nw_dst" -> (
    match P.Ipv4_addr.of_string v with
    | Some a -> Ok (Set_nw_dst a)
    | None -> Error (Printf.sprintf "set_nw_dst: invalid value %S" v))
  | "set_nw_tos" -> int_in "set_nw_tos" 0 255 (fun x -> Set_nw_tos x)
  | "set_tp_src" -> int_in "set_tp_src" 0 0xffff (fun x -> Set_tp_src x)
  | "set_tp_dst" -> int_in "set_tp_dst" 0 0xffff (fun x -> Set_tp_dst x)
  | _ -> Error (Printf.sprintf "unknown action kind %S" kind)

(* File names look like "action.<seq>.<kind>"; the bare paper form
   "action.out" is accepted as sequence 0. *)
let parse_field_name name =
  match String.split_on_char '.' name with
  | [ "action"; kind ] -> Ok (0, kind)
  | [ "action"; seq; kind ] -> (
    match int_of_string_opt seq with
    | Some n when n >= 0 -> Ok (n, kind)
    | Some _ | None -> Error (Printf.sprintf "bad action sequence in %S" name))
  | _ -> Error (Printf.sprintf "bad action file name %S" name)

let of_fields fields =
  let rec go acc = function
    | [] ->
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev acc) in
      Ok (List.map snd sorted)
    | (name, value) :: rest -> (
      match parse_field_name name with
      | Error _ as e -> e
      | Ok (seq, kind) -> (
        match parse_one ~kind value with
        | Error _ as e -> e
        | Ok action -> go ((seq, action) :: acc) rest))
  in
  go [] fields

let equal (a : t) (b : t) = a = b

let pp ppf a =
  let kind, value = kind_and_value a in
  if value = "" then Format.pp_print_string ppf kind
  else Format.fprintf ppf "%s=%s" kind value

let pp_list ppf actions =
  match actions with
  | [] -> Format.pp_print_string ppf "drop"
  | _ ->
    Format.pp_print_string ppf
      (String.concat ";"
         (List.map (fun a -> Format.asprintf "%a" pp a) actions))
