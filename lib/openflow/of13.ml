module P = Packet
module W = P.Wire.W
module R = P.Wire.R

let version = 0x04

type instruction =
  | Apply_actions of Action.t list
  | Clear_actions
  | Goto_table of int

type features = {
  datapath_id : int64;
  n_buffers : int;
  n_tables : int;
  capabilities : Of_types.Capabilities.t;
}

type flow_mod_command = Add | Modify | Delete | Delete_strict

type flow_mod = {
  table_id : int;
  of_match : Of_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  buffer_id : int32 option;
  notify_removal : bool;
  instructions : instruction list;
}

type multipart_request =
  | Port_desc_req
  | Flow_stats_req of { table_id : int option; of_match : Of_match.t }
  | Port_stats_req of int option

type flow_stats_entry = {
  table_id : int;
  stats : Of_types.Flow_stats.t;
  instructions : instruction list;
}

type multipart_reply =
  | Port_desc_rep of Of_types.Port_info.t list
  | Flow_stats_rep of flow_stats_entry list
  | Port_stats_rep of Of_types.Port_stats.t list

type msg =
  | Hello
  | Error_msg of { ty : int; code : int; data : string }
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features
  | Packet_in of {
      buffer_id : int32 option;
      total_len : int;
      reason : Of_types.packet_in_reason;
      table_id : int;
      cookie : int64;
      in_port : int;
      data : string;
    }
  | Packet_out of {
      buffer_id : int32 option;
      in_port : int option;
      actions : Action.t list;
      data : string;
    }
  | Flow_mod of flow_mod
  | Flow_removed of {
      table_id : int;
      of_match : Of_match.t;
      cookie : int64;
      priority : int;
      reason : Of_types.flow_removed_reason;
      duration_s : int;
      packets : int64;
      bytes : int64;
    }
  | Port_status of Of_types.port_status_reason * Of_types.Port_info.t
  | Port_mod of { port_no : int; admin_down : bool }
  | Multipart_request of multipart_request
  | Multipart_reply of multipart_reply
  | Barrier_request
  | Barrier_reply

let t_hello = 0
and t_error = 1
and t_echo_req = 2
and t_echo_rep = 3
and t_features_req = 5
and t_features_rep = 6
and t_packet_in = 10
and t_flow_removed = 11
and t_port_status = 12
and t_packet_out = 13
and t_flow_mod = 14
and t_port_mod = 16
and t_multipart_req = 18
and t_multipart_rep = 19
and t_barrier_req = 20
and t_barrier_rep = 21

let no_buffer = 0xffffffffl

let p13_in_port = 0xfffffff8
and p13_flood = 0xfffffffb
and p13_all = 0xfffffffc
and p13_controller = 0xfffffffd
and p13_any = 0xffffffff

let pseudo_port_to_wire = function
  | Action.Physical n -> n
  | Action.In_port -> p13_in_port
  | Action.Flood -> p13_flood
  | Action.All -> p13_all
  | Action.Controller _ -> p13_controller
  | Action.Drop -> p13_any

let pseudo_port_of_wire ~max_len n =
  if n = p13_in_port then Action.In_port
  else if n = p13_flood then Action.Flood
  else if n = p13_all then Action.All
  else if n = p13_controller then Action.Controller max_len
  else if n = p13_any then Action.Drop
  else Action.Physical n

(* --- OXM TLVs --------------------------------------------------------------- *)

let oxm_class = 0x8000

let f_in_port = 0
and f_eth_dst = 3
and f_eth_src = 4
and f_eth_type = 5
and f_vlan_vid = 6
and f_vlan_pcp = 7
and f_ip_dscp = 8
and f_ip_proto = 10
and f_ipv4_src = 11
and f_ipv4_dst = 12
and f_tcp_src = 13
and f_tcp_dst = 14
and f_udp_src = 15
and f_udp_dst = 16

let oxm_header w ~field ~hasmask ~len =
  W.u16 w oxm_class;
  W.u8 w ((field lsl 1) lor if hasmask then 1 else 0);
  W.u8 w len

(* Encode the logical match as an OXM list (length-prefixed struct
   ofp_match, padded to 8 bytes). tp ports use the TCP or UDP OXM field
   depending on nw_proto; TCP when the protocol is unspecified. *)
let encode_match w (m : Of_match.t) =
  let body = W.create () in
  let u16_field field v =
    oxm_header body ~field ~hasmask:false ~len:2;
    W.u16 body v
  in
  Option.iter
    (fun v ->
      oxm_header body ~field:f_in_port ~hasmask:false ~len:4;
      W.u32 body (Int32.of_int v))
    m.in_port;
  Option.iter
    (fun mac ->
      oxm_header body ~field:f_eth_dst ~hasmask:false ~len:6;
      W.string body (P.Mac.to_octets mac))
    m.dl_dst;
  Option.iter
    (fun mac ->
      oxm_header body ~field:f_eth_src ~hasmask:false ~len:6;
      W.string body (P.Mac.to_octets mac))
    m.dl_src;
  Option.iter (fun v -> u16_field f_eth_type v) m.dl_type;
  (* VLAN_VID: the spec sets OFPVID_PRESENT (0x1000) on real VIDs. *)
  Option.iter (fun v -> u16_field f_vlan_vid (v lor 0x1000)) m.dl_vlan;
  Option.iter
    (fun v ->
      oxm_header body ~field:f_vlan_pcp ~hasmask:false ~len:1;
      W.u8 body v)
    m.dl_vlan_pcp;
  Option.iter
    (fun v ->
      oxm_header body ~field:f_ip_dscp ~hasmask:false ~len:1;
      W.u8 body (v lsr 2))
    m.nw_tos;
  Option.iter
    (fun v ->
      oxm_header body ~field:f_ip_proto ~hasmask:false ~len:1;
      W.u8 body v)
    m.nw_proto;
  let prefix_field field (p : P.Ipv4_addr.Prefix.t) =
    if p.bits = 32 then begin
      oxm_header body ~field ~hasmask:false ~len:4;
      W.string body (P.Ipv4_addr.to_octets p.base)
    end
    else begin
      oxm_header body ~field ~hasmask:true ~len:8;
      W.string body (P.Ipv4_addr.to_octets p.base);
      let mask =
        if p.bits = 0 then 0l else Int32.shift_left 0xffffffffl (32 - p.bits)
      in
      W.u32 body mask
    end
  in
  Option.iter (prefix_field f_ipv4_src) m.nw_src;
  Option.iter (prefix_field f_ipv4_dst) m.nw_dst;
  let tp_field src =
    match m.nw_proto with
    | Some 17 -> if src then f_udp_src else f_udp_dst
    | _ -> if src then f_tcp_src else f_tcp_dst
  in
  Option.iter (fun v -> u16_field (tp_field true) v) m.tp_src;
  Option.iter (fun v -> u16_field (tp_field false) v) m.tp_dst;
  let oxms = W.contents body in
  let match_len = 4 + String.length oxms in
  W.u16 w 1; (* OFPMT_OXM *)
  W.u16 w match_len;
  W.string w oxms;
  let pad = (8 - (match_len mod 8)) mod 8 in
  W.zeros w pad

let decode_match r : (Of_match.t, string) result =
  let mty = R.u16 r in
  let match_len = R.u16 r in
  if mty <> 1 then Error (Printf.sprintf "unsupported match type %d" mty)
  else begin
    let oxm_len = match_len - 4 in
    let stop = R.pos r + oxm_len in
    let m = ref Of_match.any in
    let err = ref None in
    while R.pos r < stop && !err = None do
      let cls = R.u16 r in
      let fh = R.u8 r in
      let len = R.u8 r in
      let field = fh lsr 1
      and hasmask = fh land 1 = 1 in
      if cls <> oxm_class then begin
        R.skip r len;
        ()
      end
      else begin
        let cur = !m in
        if field = f_in_port then
          m := { cur with in_port = Some (Int32.to_int (R.u32 r)) }
        else if field = f_eth_dst then
          m := { cur with dl_dst = Some (P.Mac.of_octets (R.bytes r 6)) }
        else if field = f_eth_src then
          m := { cur with dl_src = Some (P.Mac.of_octets (R.bytes r 6)) }
        else if field = f_eth_type then m := { cur with dl_type = Some (R.u16 r) }
        else if field = f_vlan_vid then
          m := { cur with dl_vlan = Some (R.u16 r land 0xfff) }
        else if field = f_vlan_pcp then m := { cur with dl_vlan_pcp = Some (R.u8 r) }
        else if field = f_ip_dscp then m := { cur with nw_tos = Some (R.u8 r lsl 2) }
        else if field = f_ip_proto then m := { cur with nw_proto = Some (R.u8 r) }
        else if field = f_ipv4_src || field = f_ipv4_dst then begin
          let base = P.Ipv4_addr.of_octets (R.bytes r 4) in
          let bits =
            if not hasmask then 32
            else begin
              let mask = R.u32 r in
              (* Count the leading ones of the mask. *)
              let rec count i =
                if i >= 32 then 32
                else if
                  Int32.logand mask (Int32.shift_left 1l (31 - i)) = 0l
                then i
                else count (i + 1)
              in
              count 0
            end
          in
          let p = P.Ipv4_addr.Prefix.make base bits in
          if field = f_ipv4_src then m := { cur with nw_src = Some p }
          else m := { cur with nw_dst = Some p }
        end
        else if field = f_tcp_src || field = f_udp_src then
          m := { cur with tp_src = Some (R.u16 r) }
        else if field = f_tcp_dst || field = f_udp_dst then
          m := { cur with tp_dst = Some (R.u16 r) }
        else R.skip r len
      end
    done;
    let pad = (8 - (match_len mod 8)) mod 8 in
    R.skip r pad;
    match !err with None -> Ok !m | Some e -> Error e
  end

(* --- actions ----------------------------------------------------------------- *)

let set_field_action w ~field ~len body =
  (* OFPAT_SET_FIELD: action header + one OXM, padded to 8. *)
  let oxm_len = 4 + len in
  let total = 4 + oxm_len in
  let padded = (total + 7) / 8 * 8 in
  W.u16 w 25;
  W.u16 w padded;
  oxm_header w ~field ~hasmask:false ~len;
  body w;
  W.zeros w (padded - total)

let encode_action w (a : Action.t) =
  match a with
  | Action.Enqueue { port; queue_id } ->
    (* OF 1.3 splits the 1.0 ENQUEUE into SET_QUEUE + OUTPUT. *)
    W.u16 w 21;
    W.u16 w 8;
    W.u32 w (Int32.of_int queue_id);
    W.u16 w 0;
    W.u16 w 16;
    W.u32 w (Int32.of_int port);
    W.u16 w 0;
    W.zeros w 6
  | Action.Output port ->
    W.u16 w 0;
    W.u16 w 16;
    W.u32 w (Int32.of_int (pseudo_port_to_wire port));
    W.u16 w (match port with Action.Controller max_len -> max_len | _ -> 0);
    W.zeros w 6
  | Action.Strip_vlan ->
    W.u16 w 18; (* POP_VLAN *)
    W.u16 w 8;
    W.zeros w 4
  | Action.Set_vlan vid ->
    set_field_action w ~field:f_vlan_vid ~len:2 (fun w -> W.u16 w (vid lor 0x1000))
  | Action.Set_vlan_pcp pcp ->
    set_field_action w ~field:f_vlan_pcp ~len:1 (fun w -> W.u8 w pcp)
  | Action.Set_dl_src mac ->
    set_field_action w ~field:f_eth_src ~len:6 (fun w ->
        W.string w (P.Mac.to_octets mac))
  | Action.Set_dl_dst mac ->
    set_field_action w ~field:f_eth_dst ~len:6 (fun w ->
        W.string w (P.Mac.to_octets mac))
  | Action.Set_nw_src addr ->
    set_field_action w ~field:f_ipv4_src ~len:4 (fun w ->
        W.string w (P.Ipv4_addr.to_octets addr))
  | Action.Set_nw_dst addr ->
    set_field_action w ~field:f_ipv4_dst ~len:4 (fun w ->
        W.string w (P.Ipv4_addr.to_octets addr))
  | Action.Set_nw_tos tos ->
    set_field_action w ~field:f_ip_dscp ~len:1 (fun w -> W.u8 w (tos lsr 2))
  | Action.Set_tp_src port ->
    set_field_action w ~field:f_tcp_src ~len:2 (fun w -> W.u16 w port)
  | Action.Set_tp_dst port ->
    set_field_action w ~field:f_tcp_dst ~len:2 (fun w -> W.u16 w port)

let encode_actions_to_string actions =
  let w = W.create () in
  List.iter (encode_action w) actions;
  W.contents w

(* SET_QUEUE is represented as a pending marker consumed by the next
   OUTPUT, reconstructing the logical [Enqueue]. *)
type decoded_action = Plain of Action.t | Pending_queue of int

let decode_action r =
  let ty = R.u16 r in
  let len = R.u16 r in
  match ty with
  | 21 ->
    let queue_id = Int32.to_int (R.u32 r) in
    Ok (Pending_queue queue_id)
  | 0 ->
    let port = Int32.to_int (R.u32 r) land 0xffffffff in
    let max_len = R.u16 r in
    R.skip r 6;
    Ok (Plain (Action.Output (pseudo_port_of_wire ~max_len port)))
  | 18 ->
    R.skip r 4;
    Ok (Plain Action.Strip_vlan)
  | 25 ->
    let start = R.pos r - 4 in
    let _cls = R.u16 r in
    let fh = R.u8 r in
    let flen = R.u8 r in
    let field = fh lsr 1 in
    let result =
      if field = f_vlan_vid then Ok (Action.Set_vlan (R.u16 r land 0xfff))
      else if field = f_vlan_pcp then Ok (Action.Set_vlan_pcp (R.u8 r))
      else if field = f_eth_src then
        Ok (Action.Set_dl_src (P.Mac.of_octets (R.bytes r 6)))
      else if field = f_eth_dst then
        Ok (Action.Set_dl_dst (P.Mac.of_octets (R.bytes r 6)))
      else if field = f_ipv4_src then
        Ok (Action.Set_nw_src (P.Ipv4_addr.of_octets (R.bytes r 4)))
      else if field = f_ipv4_dst then
        Ok (Action.Set_nw_dst (P.Ipv4_addr.of_octets (R.bytes r 4)))
      else if field = f_ip_dscp then Ok (Action.Set_nw_tos (R.u8 r lsl 2))
      else if field = f_tcp_src || field = f_udp_src then
        Ok (Action.Set_tp_src (R.u16 r))
      else if field = f_tcp_dst || field = f_udp_dst then
        Ok (Action.Set_tp_dst (R.u16 r))
      else Error (Printf.sprintf "unsupported set_field oxm %d" field)
    in
    ignore flen;
    (* Skip padding up to the declared action length. *)
    let consumed = R.pos r - start in
    if len > consumed then R.skip r (len - consumed);
    Result.map (fun a -> Plain a) result
  | _ -> Error (Printf.sprintf "unknown OF1.3 action type %d" ty)

let decode_actions r ~len =
  let stop = R.pos r + len in
  let rec go pending acc =
    if R.pos r >= stop then
      (* a trailing SET_QUEUE with no OUTPUT is dropped, as a switch would *)
      Ok (List.rev acc)
    else
      match decode_action r with
      | Ok (Pending_queue queue_id) -> go (Some queue_id) acc
      | Ok (Plain (Action.Output (Action.Physical port))) when pending <> None ->
        go None (Action.Enqueue { port; queue_id = Option.get pending } :: acc)
      | Ok (Plain a) -> go pending (a :: acc)
      | Error _ as e -> e
  in
  go None []

(* --- instructions -------------------------------------------------------------- *)

let encode_instruction w = function
  | Goto_table table_id ->
    W.u16 w 1;
    W.u16 w 8;
    W.u8 w table_id;
    W.zeros w 3
  | Clear_actions ->
    W.u16 w 5;
    W.u16 w 8;
    W.zeros w 4
  | Apply_actions actions ->
    let body = encode_actions_to_string actions in
    W.u16 w 4;
    W.u16 w (8 + String.length body);
    W.zeros w 4;
    W.string w body

let decode_instruction r =
  let ty = R.u16 r in
  let len = R.u16 r in
  match ty with
  | 1 ->
    let table_id = R.u8 r in
    R.skip r 3;
    Ok (Goto_table table_id)
  | 5 ->
    R.skip r 4;
    Ok Clear_actions
  | 4 ->
    R.skip r 4;
    Result.map (fun a -> Apply_actions a) (decode_actions r ~len:(len - 8))
  | _ -> Error (Printf.sprintf "unknown instruction type %d" ty)

let decode_instructions r =
  let rec go acc =
    if R.remaining r < 4 then Ok (List.rev acc)
    else
      match decode_instruction r with
      | Ok i -> go (i :: acc)
      | Error _ as e -> e
  in
  go []

let actions_of_instructions instrs =
  List.concat_map (function Apply_actions a -> a | _ -> []) instrs

(* --- ports (64 bytes) ------------------------------------------------------------ *)

let encode_port w (p : Of_types.Port_info.t) =
  W.u32 w (Int32.of_int p.port_no);
  W.zeros w 4;
  W.string w (P.Mac.to_octets p.hw_addr);
  W.zeros w 2;
  let name =
    if String.length p.name >= 16 then String.sub p.name 0 15 else p.name
  in
  W.string w name;
  W.zeros w (16 - String.length name);
  W.u32 w (if p.admin_down then 1l else 0l);
  W.u32 w (if p.link_down then 1l else 0l);
  W.u32 w 0l;
  W.u32 w 0l;
  W.u32 w 0l;
  W.u32 w 0l;
  W.u32 w (Int32.of_int (p.speed_mbps * 1000)); (* curr_speed: kbps *)
  W.u32 w (Int32.of_int (p.speed_mbps * 1000))

let decode_port r : Of_types.Port_info.t =
  let port_no = Int32.to_int (R.u32 r) in
  R.skip r 4;
  let hw_addr = P.Mac.of_octets (R.bytes r 6) in
  R.skip r 2;
  let raw_name = R.bytes r 16 in
  let name =
    match String.index_opt raw_name '\000' with
    | Some i -> String.sub raw_name 0 i
    | None -> raw_name
  in
  let config = R.u32 r in
  let state = R.u32 r in
  R.skip r 16;
  let curr_speed = Int32.to_int (R.u32 r) in
  R.skip r 4;
  { port_no; hw_addr; name;
    admin_down = Int32.logand config 1l <> 0l;
    link_down = Int32.logand state 1l <> 0l;
    speed_mbps = curr_speed / 1000 }

let caps_to_wire (c : Of_types.Capabilities.t) =
  Int32.of_int
    ((if c.flow_stats then 1 else 0)
    lor (if c.port_stats then 4 else 0)
    lor if c.queue_stats then 64 else 0)

let caps_of_wire v =
  let v = Int32.to_int v in
  { Of_types.Capabilities.flow_stats = v land 1 <> 0;
    port_stats = v land 4 <> 0;
    queue_stats = v land 64 <> 0 }

(* --- encode ------------------------------------------------------------------------ *)

let buffer_id_to_wire = function None -> no_buffer | Some id -> id

let buffer_id_of_wire v = if Int32.equal v no_buffer then None else Some v

let body_and_type = function
  | Hello -> t_hello, ""
  | Error_msg { ty; code; data } ->
    let w = W.create () in
    W.u16 w ty;
    W.u16 w code;
    W.string w data;
    t_error, W.contents w
  | Echo_request data -> t_echo_req, data
  | Echo_reply data -> t_echo_rep, data
  | Features_request -> t_features_req, ""
  | Features_reply f ->
    let w = W.create () in
    W.u64 w f.datapath_id;
    W.u32 w (Int32.of_int f.n_buffers);
    W.u8 w f.n_tables;
    W.u8 w 0; (* auxiliary_id *)
    W.zeros w 2;
    W.u32 w (caps_to_wire f.capabilities);
    W.u32 w 0l; (* reserved *)
    t_features_rep, W.contents w
  | Packet_in { buffer_id; total_len; reason; table_id; cookie; in_port; data } ->
    let w = W.create () in
    W.u32 w (buffer_id_to_wire buffer_id);
    W.u16 w total_len;
    W.u8 w (match reason with Of_types.No_match -> 0 | Of_types.Action_explicit -> 1);
    W.u8 w table_id;
    W.u64 w cookie;
    encode_match w { Of_match.any with in_port = Some in_port };
    W.zeros w 2;
    W.string w data;
    t_packet_in, W.contents w
  | Packet_out { buffer_id; in_port; actions; data } ->
    let w = W.create () in
    W.u32 w (buffer_id_to_wire buffer_id);
    W.u32 w (Int32.of_int (Option.value in_port ~default:p13_any));
    let body = encode_actions_to_string actions in
    W.u16 w (String.length body);
    W.zeros w 6;
    W.string w body;
    W.string w data;
    t_packet_out, W.contents w
  | Flow_mod fm ->
    let w = W.create () in
    W.u64 w fm.cookie;
    W.u64 w 0L; (* cookie mask *)
    W.u8 w fm.table_id;
    W.u8 w
      (match fm.command with
      | Add -> 0
      | Modify -> 1
      | Delete -> 3
      | Delete_strict -> 4);
    W.u16 w fm.idle_timeout;
    W.u16 w fm.hard_timeout;
    W.u16 w fm.priority;
    W.u32 w (buffer_id_to_wire fm.buffer_id);
    W.u32 w (Int32.of_int p13_any); (* out_port *)
    W.u32 w (Int32.of_int p13_any); (* out_group *)
    W.u16 w (if fm.notify_removal then 1 else 0);
    W.zeros w 2;
    encode_match w fm.of_match;
    List.iter (encode_instruction w) fm.instructions;
    t_flow_mod, W.contents w
  | Flow_removed { table_id; of_match; cookie; priority; reason; duration_s; packets; bytes } ->
    let w = W.create () in
    W.u64 w cookie;
    W.u16 w priority;
    W.u8 w
      (match reason with
      | Of_types.Idle_timeout_hit -> 0
      | Of_types.Hard_timeout_hit -> 1
      | Of_types.Flow_deleted -> 2);
    W.u8 w table_id;
    W.u32 w (Int32.of_int duration_s);
    W.u32 w 0l;
    W.u16 w 0;
    W.u16 w 0;
    W.u64 w packets;
    W.u64 w bytes;
    encode_match w of_match;
    t_flow_removed, W.contents w
  | Port_status (reason, port) ->
    let w = W.create () in
    W.u8 w
      (match reason with
      | Of_types.Port_add -> 0
      | Of_types.Port_delete -> 1
      | Of_types.Port_modify -> 2);
    W.zeros w 7;
    encode_port w port;
    t_port_status, W.contents w
  | Port_mod { port_no; admin_down } ->
    let w = W.create () in
    W.u32 w (Int32.of_int port_no);
    W.zeros w 4;
    W.string w (P.Mac.to_octets P.Mac.zero);
    W.zeros w 2;
    W.u32 w (if admin_down then 1l else 0l);
    W.u32 w 1l;
    W.u32 w 0l;
    W.zeros w 4;
    t_port_mod, W.contents w
  | Multipart_request req ->
    let w = W.create () in
    (match req with
    | Port_desc_req ->
      W.u16 w 13;
      W.u16 w 0;
      W.zeros w 4
    | Flow_stats_req { table_id; of_match } ->
      W.u16 w 1;
      W.u16 w 0;
      W.zeros w 4;
      W.u8 w (Option.value table_id ~default:0xff);
      W.zeros w 3;
      W.u32 w (Int32.of_int p13_any);
      W.u32 w (Int32.of_int p13_any);
      W.zeros w 4;
      W.u64 w 0L;
      W.u64 w 0L;
      encode_match w of_match
    | Port_stats_req port ->
      W.u16 w 4;
      W.u16 w 0;
      W.zeros w 4;
      W.u32 w (Int32.of_int (Option.value port ~default:p13_any));
      W.zeros w 4);
    t_multipart_req, W.contents w
  | Multipart_reply rep ->
    let w = W.create () in
    (match rep with
    | Port_desc_rep ports ->
      W.u16 w 13;
      W.u16 w 0;
      W.zeros w 4;
      List.iter (encode_port w) ports
    | Flow_stats_rep entries ->
      W.u16 w 1;
      W.u16 w 0;
      W.zeros w 4;
      List.iter
        (fun e ->
          let sub = W.create () in
          W.u8 sub e.table_id;
          W.u8 sub 0;
          W.u32 sub (Int32.of_int e.stats.Of_types.Flow_stats.duration_s);
          W.u32 sub 0l;
          W.u16 sub e.stats.priority;
          W.u16 sub e.stats.idle_timeout;
          W.u16 sub e.stats.hard_timeout;
          W.u16 sub 0;
          W.zeros sub 4;
          W.u64 sub e.stats.cookie;
          W.u64 sub e.stats.packets;
          W.u64 sub e.stats.bytes;
          encode_match sub e.stats.of_match;
          List.iter (encode_instruction sub) e.instructions;
          let body = W.contents sub in
          W.u16 w (2 + String.length body);
          W.string w body)
        entries
    | Port_stats_rep ports ->
      W.u16 w 4;
      W.u16 w 0;
      W.zeros w 4;
      List.iter
        (fun (s : Of_types.Port_stats.t) ->
          W.u32 w (Int32.of_int s.port_no);
          W.zeros w 4;
          W.u64 w s.rx_packets;
          W.u64 w s.tx_packets;
          W.u64 w s.rx_bytes;
          W.u64 w s.tx_bytes;
          W.u64 w s.rx_dropped;
          W.u64 w s.tx_dropped;
          W.zeros w 56 (* error counters + duration: unused *))
        ports);
    t_multipart_rep, W.contents w
  | Barrier_request -> t_barrier_req, ""
  | Barrier_reply -> t_barrier_rep, ""

let encode ~xid msg =
  let ty, body = body_and_type msg in
  let w = W.create ~size:(8 + String.length body) () in
  W.u8 w version;
  W.u8 w ty;
  W.u16 w (8 + String.length body);
  W.u32 w xid;
  W.string w body;
  W.contents w

(* --- decode ------------------------------------------------------------------------- *)

let ( let* ) = Result.bind

let decode_body ty r =
  match ty with
  | ty when ty = t_hello -> Ok Hello
  | ty when ty = t_error ->
    let ety = R.u16 r in
    let code = R.u16 r in
    Ok (Error_msg { ty = ety; code; data = R.rest r })
  | ty when ty = t_echo_req -> Ok (Echo_request (R.rest r))
  | ty when ty = t_echo_rep -> Ok (Echo_reply (R.rest r))
  | ty when ty = t_features_req -> Ok Features_request
  | ty when ty = t_features_rep ->
    let datapath_id = R.u64 r in
    let n_buffers = Int32.to_int (R.u32 r) in
    let n_tables = R.u8 r in
    R.skip r 3;
    let capabilities = caps_of_wire (R.u32 r) in
    Ok (Features_reply { datapath_id; n_buffers; n_tables; capabilities })
  | ty when ty = t_packet_in ->
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let total_len = R.u16 r in
    let reason =
      if R.u8 r = 0 then Of_types.No_match else Of_types.Action_explicit
    in
    let table_id = R.u8 r in
    let cookie = R.u64 r in
    let* m = decode_match r in
    R.skip r 2;
    let in_port = Option.value m.Of_match.in_port ~default:0 in
    Ok
      (Packet_in
         { buffer_id; total_len; reason; table_id; cookie; in_port;
           data = R.rest r })
  | ty when ty = t_packet_out ->
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let in_port_raw = Int32.to_int (R.u32 r) land 0xffffffff in
    let actions_len = R.u16 r in
    R.skip r 6;
    let* actions = decode_actions r ~len:actions_len in
    Ok
      (Packet_out
         { buffer_id;
           in_port = (if in_port_raw = p13_any then None else Some in_port_raw);
           actions;
           data = R.rest r })
  | ty when ty = t_flow_mod ->
    let cookie = R.u64 r in
    let _cookie_mask = R.u64 r in
    let table_id = R.u8 r in
    let cmd = R.u8 r in
    let idle_timeout = R.u16 r in
    let hard_timeout = R.u16 r in
    let priority = R.u16 r in
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let _out_port = R.u32 r in
    let _out_group = R.u32 r in
    let flags = R.u16 r in
    R.skip r 2;
    let* of_match = decode_match r in
    let* instructions = decode_instructions r in
    let* command =
      match cmd with
      | 0 -> Ok Add
      | 1 | 2 -> Ok Modify
      | 3 -> Ok Delete
      | 4 -> Ok Delete_strict
      | n -> Error (Printf.sprintf "unknown flow_mod command %d" n)
    in
    Ok
      (Flow_mod
         { table_id; of_match; cookie; command; idle_timeout; hard_timeout;
           priority; buffer_id; notify_removal = flags land 1 <> 0;
           instructions })
  | ty when ty = t_flow_removed ->
    let cookie = R.u64 r in
    let priority = R.u16 r in
    let reason_raw = R.u8 r in
    let table_id = R.u8 r in
    let duration_s = Int32.to_int (R.u32 r) in
    R.skip r 4;
    let _idle = R.u16 r in
    let _hard = R.u16 r in
    let packets = R.u64 r in
    let bytes = R.u64 r in
    let* of_match = decode_match r in
    let reason =
      match reason_raw with
      | 0 -> Of_types.Idle_timeout_hit
      | 1 -> Of_types.Hard_timeout_hit
      | _ -> Of_types.Flow_deleted
    in
    Ok
      (Flow_removed
         { table_id; of_match; cookie; priority; reason; duration_s; packets; bytes })
  | ty when ty = t_port_status ->
    let reason_raw = R.u8 r in
    R.skip r 7;
    let port = decode_port r in
    let reason =
      match reason_raw with
      | 0 -> Of_types.Port_add
      | 1 -> Of_types.Port_delete
      | _ -> Of_types.Port_modify
    in
    Ok (Port_status (reason, port))
  | ty when ty = t_port_mod ->
    let port_no = Int32.to_int (R.u32 r) in
    R.skip r 4;
    R.skip r 6;
    R.skip r 2;
    let config = R.u32 r in
    let _mask = R.u32 r in
    Ok (Port_mod { port_no; admin_down = Int32.logand config 1l <> 0l })
  | ty when ty = t_multipart_req ->
    let sty = R.u16 r in
    let _flags = R.u16 r in
    R.skip r 4;
    (match sty with
    | 13 -> Ok (Multipart_request Port_desc_req)
    | 1 ->
      let table_raw = R.u8 r in
      R.skip r 3;
      R.skip r 4;
      R.skip r 4;
      R.skip r 4;
      let _cookie = R.u64 r in
      let _cookie_mask = R.u64 r in
      let* of_match = decode_match r in
      Ok
        (Multipart_request
           (Flow_stats_req
              { table_id = (if table_raw = 0xff then None else Some table_raw);
                of_match }))
    | 4 ->
      let port = Int32.to_int (R.u32 r) land 0xffffffff in
      Ok
        (Multipart_request
           (Port_stats_req (if port = p13_any then None else Some port)))
    | n -> Error (Printf.sprintf "unknown multipart request type %d" n))
  | ty when ty = t_multipart_rep ->
    let sty = R.u16 r in
    let _flags = R.u16 r in
    R.skip r 4;
    (match sty with
    | 13 ->
      let rec ports acc =
        if R.remaining r < 64 then List.rev acc
        else ports (decode_port r :: acc)
      in
      Ok (Multipart_reply (Port_desc_rep (ports [])))
    | 1 ->
      let rec entries acc =
        if R.remaining r < 2 then Ok (List.rev acc)
        else begin
          let entry_len = R.u16 r in
          let stop = R.pos r - 2 + entry_len in
          let table_id = R.u8 r in
          R.skip r 1;
          let duration_s = Int32.to_int (R.u32 r) in
          R.skip r 4;
          let priority = R.u16 r in
          let idle_timeout = R.u16 r in
          let hard_timeout = R.u16 r in
          R.skip r 6;
          let cookie = R.u64 r in
          let packets = R.u64 r in
          let bytes = R.u64 r in
          match decode_match r with
          | Error _ as e -> e
          | Ok of_match ->
            let rec instrs acc =
              if R.pos r >= stop then Ok (List.rev acc)
              else
                match decode_instruction r with
                | Ok i -> instrs (i :: acc)
                | Error _ as e -> e
            in
            (match instrs [] with
            | Error _ as e -> e
            | Ok instructions ->
              let stats =
                { Of_types.Flow_stats.of_match; priority; cookie; packets;
                  bytes; duration_s; idle_timeout; hard_timeout;
                  actions = actions_of_instructions instructions }
              in
              entries ({ table_id; stats; instructions } :: acc))
        end
      in
      Result.map (fun l -> Multipart_reply (Flow_stats_rep l)) (entries [])
    | 4 ->
      let rec entries acc =
        if R.remaining r < 112 then List.rev acc
        else begin
          let port_no = Int32.to_int (R.u32 r) in
          R.skip r 4;
          let rx_packets = R.u64 r in
          let tx_packets = R.u64 r in
          let rx_bytes = R.u64 r in
          let tx_bytes = R.u64 r in
          let rx_dropped = R.u64 r in
          let tx_dropped = R.u64 r in
          R.skip r 56;
          entries
            ({ Of_types.Port_stats.port_no; rx_packets; tx_packets; rx_bytes;
               tx_bytes; rx_dropped; tx_dropped }
            :: acc)
        end
      in
      Ok (Multipart_reply (Port_stats_rep (entries [])))
    | n -> Error (Printf.sprintf "unknown multipart reply type %d" n))
  | ty when ty = t_barrier_req -> Ok Barrier_request
  | ty when ty = t_barrier_rep -> Ok Barrier_reply
  | ty -> Error (Printf.sprintf "unknown OF1.3 message type %d" ty)

let decode s =
  try
    let r = R.of_string s in
    let v = R.u8 r in
    if v <> version then Error (Printf.sprintf "bad version %d (want 4)" v)
    else begin
      let ty = R.u8 r in
      let len = R.u16 r in
      let xid = R.u32 r in
      if len <> String.length s then
        Error
          (Printf.sprintf "length mismatch: header %d, actual %d" len
             (String.length s))
      else Result.map (fun m -> xid, m) (decode_body ty r)
    end
  with R.Truncated -> Error "truncated message"

let msg_name = function
  | Hello -> "hello"
  | Error_msg _ -> "error"
  | Echo_request _ -> "echo_request"
  | Echo_reply _ -> "echo_reply"
  | Features_request -> "features_request"
  | Features_reply _ -> "features_reply"
  | Packet_in _ -> "packet_in"
  | Packet_out _ -> "packet_out"
  | Flow_mod _ -> "flow_mod"
  | Flow_removed _ -> "flow_removed"
  | Port_status _ -> "port_status"
  | Port_mod _ -> "port_mod"
  | Multipart_request _ -> "multipart_request"
  | Multipart_reply _ -> "multipart_reply"
  | Barrier_request -> "barrier_request"
  | Barrier_reply -> "barrier_reply"

let pp ppf m =
  match m with
  | Flow_mod fm ->
    Format.fprintf ppf "flow_mod13[%s t=%d %a pri=%d -> %a]"
      (match fm.command with
      | Add -> "add"
      | Modify -> "mod"
      | Delete -> "del"
      | Delete_strict -> "del-strict")
      fm.table_id Of_match.pp fm.of_match fm.priority Action.pp_list
      (actions_of_instructions fm.instructions)
  | Packet_in { in_port; data; table_id; _ } ->
    Format.fprintf ppf "packet_in13[port=%d table=%d %dB]" in_port table_id
      (String.length data)
  | m -> Format.pp_print_string ppf (msg_name m)
