module P = Packet

type t = {
  in_port : int option;
  dl_src : P.Mac.t option;
  dl_dst : P.Mac.t option;
  dl_vlan : int option;
  dl_vlan_pcp : int option;
  dl_type : int option;
  nw_src : P.Ipv4_addr.Prefix.t option;
  nw_dst : P.Ipv4_addr.Prefix.t option;
  nw_proto : int option;
  nw_tos : int option;
  tp_src : int option;
  tp_dst : int option;
}

let any =
  { in_port = None; dl_src = None; dl_dst = None; dl_vlan = None;
    dl_vlan_pcp = None; dl_type = None; nw_src = None; nw_dst = None;
    nw_proto = None; nw_tos = None; tp_src = None; tp_dst = None }

let exact_of_headers (h : P.Headers.t) =
  { in_port = Some h.in_port;
    dl_src = Some h.dl_src;
    dl_dst = Some h.dl_dst;
    dl_vlan = h.dl_vlan;
    dl_vlan_pcp = h.dl_vlan_pcp;
    dl_type = Some h.dl_type;
    nw_src = Option.map P.Ipv4_addr.Prefix.host h.nw_src;
    nw_dst = Option.map P.Ipv4_addr.Prefix.host h.nw_dst;
    nw_proto = h.nw_proto;
    nw_tos = h.nw_tos;
    tp_src = h.tp_src;
    tp_dst = h.tp_dst }

let field opt value ~eq = match opt with None -> true | Some v -> eq v value

let opt_field opt value ~eq =
  match opt, value with
  | None, _ -> true
  | Some _, None -> false
  | Some v, Some actual -> eq v actual

let matches m (h : P.Headers.t) =
  field m.in_port h.in_port ~eq:Int.equal
  && field m.dl_src h.dl_src ~eq:P.Mac.equal
  && field m.dl_dst h.dl_dst ~eq:P.Mac.equal
  && opt_field m.dl_vlan h.dl_vlan ~eq:Int.equal
  && opt_field m.dl_vlan_pcp h.dl_vlan_pcp ~eq:Int.equal
  && field m.dl_type h.dl_type ~eq:Int.equal
  && opt_field m.nw_src h.nw_src ~eq:(fun p a -> P.Ipv4_addr.Prefix.matches p a)
  && opt_field m.nw_dst h.nw_dst ~eq:(fun p a -> P.Ipv4_addr.Prefix.matches p a)
  && opt_field m.nw_proto h.nw_proto ~eq:Int.equal
  && opt_field m.nw_tos h.nw_tos ~eq:Int.equal
  && opt_field m.tp_src h.tp_src ~eq:Int.equal
  && opt_field m.tp_dst h.tp_dst ~eq:Int.equal

let sub_opt a b ~eq =
  match a, b with
  | None, _ -> true
  | Some _, None -> false
  | Some x, Some y -> eq x y

let subsumes a b =
  sub_opt a.in_port b.in_port ~eq:Int.equal
  && sub_opt a.dl_src b.dl_src ~eq:P.Mac.equal
  && sub_opt a.dl_dst b.dl_dst ~eq:P.Mac.equal
  && sub_opt a.dl_vlan b.dl_vlan ~eq:Int.equal
  && sub_opt a.dl_vlan_pcp b.dl_vlan_pcp ~eq:Int.equal
  && sub_opt a.dl_type b.dl_type ~eq:Int.equal
  && sub_opt a.nw_src b.nw_src ~eq:P.Ipv4_addr.Prefix.subsumes
  && sub_opt a.nw_dst b.nw_dst ~eq:P.Ipv4_addr.Prefix.subsumes
  && sub_opt a.nw_proto b.nw_proto ~eq:Int.equal
  && sub_opt a.nw_tos b.nw_tos ~eq:Int.equal
  && sub_opt a.tp_src b.tp_src ~eq:Int.equal
  && sub_opt a.tp_dst b.tp_dst ~eq:Int.equal

let meet_scalar a b ~eq =
  match a, b with
  | None, x | x, None -> Ok x
  | Some x, Some y -> if eq x y then Ok (Some x) else Error ()

let meet_prefix a b =
  match a, b with
  | None, x | x, None -> Ok x
  | Some x, Some y ->
    if P.Ipv4_addr.Prefix.subsumes x y then Ok (Some y)
    else if P.Ipv4_addr.Prefix.subsumes y x then Ok (Some x)
    else Error ()

let intersect a b =
  let ( let* ) r f = match r with Ok v -> f v | Error () -> None in
  let* in_port = meet_scalar a.in_port b.in_port ~eq:Int.equal in
  let* dl_src = meet_scalar a.dl_src b.dl_src ~eq:P.Mac.equal in
  let* dl_dst = meet_scalar a.dl_dst b.dl_dst ~eq:P.Mac.equal in
  let* dl_vlan = meet_scalar a.dl_vlan b.dl_vlan ~eq:Int.equal in
  let* dl_vlan_pcp = meet_scalar a.dl_vlan_pcp b.dl_vlan_pcp ~eq:Int.equal in
  let* dl_type = meet_scalar a.dl_type b.dl_type ~eq:Int.equal in
  let* nw_src = meet_prefix a.nw_src b.nw_src in
  let* nw_dst = meet_prefix a.nw_dst b.nw_dst in
  let* nw_proto = meet_scalar a.nw_proto b.nw_proto ~eq:Int.equal in
  let* nw_tos = meet_scalar a.nw_tos b.nw_tos ~eq:Int.equal in
  let* tp_src = meet_scalar a.tp_src b.tp_src ~eq:Int.equal in
  let* tp_dst = meet_scalar a.tp_dst b.tp_dst ~eq:Int.equal in
  Some
    { in_port; dl_src; dl_dst; dl_vlan; dl_vlan_pcp; dl_type; nw_src; nw_dst;
      nw_proto; nw_tos; tp_src; tp_dst }

let count_some l = List.length (List.filter Fun.id l)

let specificity m =
  count_some
    [ m.in_port <> None; m.dl_src <> None; m.dl_dst <> None; m.dl_vlan <> None;
      m.dl_vlan_pcp <> None; m.dl_type <> None; m.nw_src <> None;
      m.nw_dst <> None; m.nw_proto <> None; m.nw_tos <> None;
      m.tp_src <> None; m.tp_dst <> None ]

let is_exact m =
  m.in_port <> None && m.dl_src <> None && m.dl_dst <> None
  && m.dl_type <> None
  && (match m.nw_src with Some p -> p.P.Ipv4_addr.Prefix.bits = 32 | None -> false)
  && (match m.nw_dst with Some p -> p.P.Ipv4_addr.Prefix.bits = 32 | None -> false)
  && m.nw_proto <> None && m.tp_src <> None && m.tp_dst <> None

let field_names =
  [ "in_port"; "dl_src"; "dl_dst"; "dl_vlan"; "dl_vlan_pcp"; "dl_type";
    "nw_src"; "nw_dst"; "nw_proto"; "nw_tos"; "tp_src"; "tp_dst" ]

let to_fields m =
  List.filter_map Fun.id
    [ Option.map (fun v -> "in_port", string_of_int v) m.in_port;
      Option.map (fun v -> "dl_src", P.Mac.to_string v) m.dl_src;
      Option.map (fun v -> "dl_dst", P.Mac.to_string v) m.dl_dst;
      Option.map (fun v -> "dl_vlan", string_of_int v) m.dl_vlan;
      Option.map (fun v -> "dl_vlan_pcp", string_of_int v) m.dl_vlan_pcp;
      Option.map (fun v -> "dl_type", Printf.sprintf "0x%04x" v) m.dl_type;
      Option.map (fun v -> "nw_src", P.Ipv4_addr.Prefix.to_string v) m.nw_src;
      Option.map (fun v -> "nw_dst", P.Ipv4_addr.Prefix.to_string v) m.nw_dst;
      Option.map (fun v -> "nw_proto", string_of_int v) m.nw_proto;
      Option.map (fun v -> "nw_tos", string_of_int v) m.nw_tos;
      Option.map (fun v -> "tp_src", string_of_int v) m.tp_src;
      Option.map (fun v -> "tp_dst", string_of_int v) m.tp_dst ]

let parse_int_range name lo hi s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= lo && v <= hi -> Ok v
  | Some _ | None -> Error (Printf.sprintf "%s: invalid value %S" name s)

let set_field m name value =
  let v = String.trim value in
  match name with
  | "in_port" ->
    Result.map (fun x -> { m with in_port = Some x })
      (parse_int_range name 0 0xffffffff v)
  | "dl_src" -> (
    match P.Mac.of_string v with
    | Some mac -> Ok { m with dl_src = Some mac }
    | None -> Error (Printf.sprintf "dl_src: invalid value %S" v))
  | "dl_dst" -> (
    match P.Mac.of_string v with
    | Some mac -> Ok { m with dl_dst = Some mac }
    | None -> Error (Printf.sprintf "dl_dst: invalid value %S" v))
  | "dl_vlan" ->
    Result.map (fun x -> { m with dl_vlan = Some x }) (parse_int_range name 0 4095 v)
  | "dl_vlan_pcp" ->
    Result.map (fun x -> { m with dl_vlan_pcp = Some x }) (parse_int_range name 0 7 v)
  | "dl_type" ->
    Result.map (fun x -> { m with dl_type = Some x }) (parse_int_range name 0 0xffff v)
  | "nw_src" -> (
    match P.Ipv4_addr.Prefix.of_string v with
    | Some p -> Ok { m with nw_src = Some p }
    | None -> Error (Printf.sprintf "nw_src: invalid value %S" v))
  | "nw_dst" -> (
    match P.Ipv4_addr.Prefix.of_string v with
    | Some p -> Ok { m with nw_dst = Some p }
    | None -> Error (Printf.sprintf "nw_dst: invalid value %S" v))
  | "nw_proto" ->
    Result.map (fun x -> { m with nw_proto = Some x }) (parse_int_range name 0 255 v)
  | "nw_tos" ->
    Result.map (fun x -> { m with nw_tos = Some x }) (parse_int_range name 0 255 v)
  | "tp_src" ->
    Result.map (fun x -> { m with tp_src = Some x }) (parse_int_range name 0 0xffff v)
  | "tp_dst" ->
    Result.map (fun x -> { m with tp_dst = Some x }) (parse_int_range name 0 0xffff v)
  | _ -> Error (Printf.sprintf "unknown match field %S" name)

let of_fields fields =
  List.fold_left
    (fun acc (name, value) ->
      match acc with
      | Error _ as e -> e
      | Ok m -> set_field m name value)
    (Ok any) fields

let equal a b = a = b

(* --- packed representation -------------------------------------------------- *)

module Packed = struct
  (* Field layout, bit offsets within each word (every word stays inside
     OCaml's 63 tagged bits):
       w0: dl_src[0..47]    dl_vlan[48..59]   dl_vlan_pcp[60..62]
       w1: dl_dst[0..47]    nw_proto[48..55]
       w2: nw_src[0..31]    dl_type[32..47]   nw_tos[48..55]
       w3: nw_dst[0..31]    tp_src[32..47]    presence[48..55]
       w4: in_port[0..31]   tp_dst[32..47]
     Presence bits (w3, bit 48+i) distinguish "field absent from this
     packet" from "field present with value 0": dl_vlan=0, dl_vlan_pcp=1,
     nw_src=2, nw_dst=3, nw_proto=4, nw_tos=5, tp_src=6, tp_dst=7.
     in_port, dl_src, dl_dst and dl_type exist in every packet and need
     no presence bit. *)
  type t = { w0 : int; w1 : int; w2 : int; w3 : int; w4 : int }

  let zero = { w0 = 0; w1 = 0; w2 = 0; w3 = 0; w4 = 0 }

  let p_dl_vlan = 1 lsl 48
  let p_dl_vlan_pcp = 1 lsl 49
  let p_nw_src = 1 lsl 50
  let p_nw_dst = 1 lsl 51
  let p_nw_proto = 1 lsl 52
  let p_nw_tos = 1 lsl 53
  let p_tp_src = 1 lsl 54
  let p_tp_dst = 1 lsl 55

  let equal a b =
    a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3 && a.w4 = b.w4

  let hash p =
    let mix h w = (h * 486187739) + w in
    mix (mix (mix (mix (mix 17 p.w0) p.w1) p.w2) p.w3) p.w4 land max_int

  let logand a b =
    { w0 = a.w0 land b.w0; w1 = a.w1 land b.w1; w2 = a.w2 land b.w2;
      w3 = a.w3 land b.w3; w4 = a.w4 land b.w4 }

  let ip_bits a = Int32.to_int (P.Ipv4_addr.to_int32 a) land 0xffffffff

  let of_headers (h : P.Headers.t) =
    let pr = ref 0 in
    let opt bit f = function
      | Some v ->
        pr := !pr lor bit;
        f v
      | None -> 0
    in
    let w0 =
      P.Mac.to_int h.dl_src
      lor opt p_dl_vlan (fun v -> v lsl 48) h.dl_vlan
      lor opt p_dl_vlan_pcp (fun v -> v lsl 60) h.dl_vlan_pcp
    in
    let w1 =
      P.Mac.to_int h.dl_dst lor opt p_nw_proto (fun v -> v lsl 48) h.nw_proto
    in
    let w2 =
      opt p_nw_src ip_bits h.nw_src
      lor (h.dl_type lsl 32)
      lor opt p_nw_tos (fun v -> v lsl 48) h.nw_tos
    in
    let w3 =
      opt p_nw_dst ip_bits h.nw_dst
      lor opt p_tp_src (fun v -> v lsl 32) h.tp_src
    in
    let w4 =
      (h.in_port land 0xffffffff) lor opt p_tp_dst (fun v -> v lsl 32) h.tp_dst
    in
    { w0; w1; w2; w3 = w3 lor !pr; w4 }

  type rule = { mask : t; value : t }

  let matches r key = equal (logand r.mask key) r.value

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

(* The CIDR netmask as an int over the unsigned 32-bit address image —
   the same bits [Ipv4_addr.Prefix.mask] selects. *)
let pfx_mask bits =
  if bits <= 0 then 0
  else if bits >= 32 then 0xffffffff
  else 0xffffffff lsl (32 - bits) land 0xffffffff

let pack_rule (m : t) : Packed.rule =
  let m0 = ref 0 and m1 = ref 0 and m2 = ref 0 and m3 = ref 0 and m4 = ref 0 in
  let v0 = ref 0 and v1 = ref 0 and v2 = ref 0 and v3 = ref 0 and v4 = ref 0 in
  let scalar mw vw pbit width shift = function
    | None -> ()
    | Some v ->
      let field = (1 lsl width) - 1 in
      mw := !mw lor (field lsl shift);
      vw := !vw lor ((v land field) lsl shift);
      m3 := !m3 lor pbit;
      v3 := !v3 lor pbit
  in
  (* The prefix base goes into the value verbatim: an unnormalized base
     (bits outside the netmask) then never compares equal, exactly as
     [Prefix.matches] never holds for it. *)
  let prefix mw vw pbit = function
    | None -> ()
    | Some (p : P.Ipv4_addr.Prefix.t) ->
      mw := !mw lor pfx_mask p.bits;
      vw := !vw lor Packed.ip_bits p.base;
      m3 := !m3 lor pbit;
      v3 := !v3 lor pbit
  in
  scalar m4 v4 0 32 0 m.in_port;
  scalar m0 v0 0 48 0 (Option.map P.Mac.to_int m.dl_src);
  scalar m1 v1 0 48 0 (Option.map P.Mac.to_int m.dl_dst);
  scalar m0 v0 Packed.p_dl_vlan 12 48 m.dl_vlan;
  scalar m0 v0 Packed.p_dl_vlan_pcp 3 60 m.dl_vlan_pcp;
  scalar m2 v2 0 16 32 m.dl_type;
  prefix m2 v2 Packed.p_nw_src m.nw_src;
  prefix m3 v3 Packed.p_nw_dst m.nw_dst;
  scalar m1 v1 Packed.p_nw_proto 8 48 m.nw_proto;
  scalar m2 v2 Packed.p_nw_tos 8 48 m.nw_tos;
  scalar m3 v3 Packed.p_tp_src 16 32 m.tp_src;
  scalar m4 v4 Packed.p_tp_dst 16 32 m.tp_dst;
  { Packed.mask = { w0 = !m0; w1 = !m1; w2 = !m2; w3 = !m3; w4 = !m4 };
    value = { w0 = !v0; w1 = !v1; w2 = !v2; w3 = !v3; w4 = !v4 } }

let pp ppf m =
  match to_fields m with
  | [] -> Format.pp_print_string ppf "*"
  | fields ->
    Format.pp_print_string ppf
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) fields))
