(** Length-based message framing over a byte stream.

    Both protocol versions share the 8-byte OpenFlow header whose third
    and fourth bytes carry the total message length, so one framer
    serves every driver: feed it arbitrary chunks, collect complete
    messages. *)

type t

val create : unit -> t

val push : t -> string -> unit
(** Append received bytes. *)

val pop : t -> string option
(** The next complete message (header included), if one is buffered. *)

val pop_all : t -> string list

val buffered : t -> int
(** Bytes currently held. *)

val reset : t -> unit
(** Drop buffered bytes — the stream they came from is gone (a
    truncated send desynchronized it, or the connection was re-made). *)

val peek_version : string -> int option
(** The version byte of a framed message — used by the driver manager to
    dispatch to the right codec. *)
