(** Types shared by both protocol codecs: port descriptions, switch
    feature sets, flow statistics. *)

(** Description of one switch port as carried in features/port-status
    messages and mirrored into the yanc [ports/] directory. *)
module Port_info : sig
  type t = {
    port_no : int;
    hw_addr : Packet.Mac.t;
    name : string;
    admin_down : bool;   (** config: administratively disabled *)
    link_down : bool;    (** state: no carrier *)
    speed_mbps : int;
  }

  val make :
    ?admin_down:bool -> ?link_down:bool -> ?speed_mbps:int -> ?name:string ->
    port_no:int -> hw_addr:Packet.Mac.t -> unit -> t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Switch capability flags (a simplified union of the OF 1.0/1.3
    capability bits). *)
module Capabilities : sig
  type t = { flow_stats : bool; port_stats : bool; queue_stats : bool }

  val default : t
  val to_list : t -> string list
  val equal : t -> t -> bool
end

(** Per-flow counters reported by flow-stats replies and mirrored into
    each flow's [counters/] directory. *)
module Flow_stats : sig
  type t = {
    of_match : Of_match.t;
    priority : int;
    cookie : int64;
    packets : int64;
    bytes : int64;
    duration_s : int;
    idle_timeout : int;
    hard_timeout : int;
    actions : Action.t list;
  }

  val pp : Format.formatter -> t -> unit
end

(** Per-port counters. *)
module Port_stats : sig
  type t = {
    port_no : int;
    rx_packets : int64;
    tx_packets : int64;
    rx_bytes : int64;
    tx_bytes : int64;
    rx_dropped : int64;
    tx_dropped : int64;
  }

  val zero : int -> t
  val pp : Format.formatter -> t -> unit
end

(** Reason codes. *)
type packet_in_reason = No_match | Action_explicit

type port_status_reason = Port_add | Port_delete | Port_modify

type flow_removed_reason = Idle_timeout_hit | Hard_timeout_hit | Flow_deleted
