(** OpenFlow 1.3 message codec — the "newer protocol" whose coexistence
    with 1.0 motivates yanc's driver model (paper §4.1: "the majority of
    switches will communicate with an OpenFlow 1.0 driver, a handful
    with a separate OpenFlow 1.3 driver").

    Structural differences from 1.0 that this codec implements
    faithfully: OXM TLV matches, instruction lists wrapping actions,
    multiple tables ([table_id] + [Goto_table]), 64-byte ports delivered
    through multipart port-desc instead of inside features-reply. *)

val version : int
(** 0x04 *)

type instruction =
  | Apply_actions of Action.t list
  | Clear_actions
  | Goto_table of int

type features = {
  datapath_id : int64;
  n_buffers : int;
  n_tables : int;
  capabilities : Of_types.Capabilities.t;
}

type flow_mod_command = Add | Modify | Delete | Delete_strict

type flow_mod = {
  table_id : int;
  of_match : Of_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  buffer_id : int32 option;
  notify_removal : bool;
  instructions : instruction list;
}

type multipart_request =
  | Port_desc_req
  | Flow_stats_req of { table_id : int option; of_match : Of_match.t }
  | Port_stats_req of int option

type flow_stats_entry = {
  table_id : int;
  stats : Of_types.Flow_stats.t;
  instructions : instruction list;
}

type multipart_reply =
  | Port_desc_rep of Of_types.Port_info.t list
  | Flow_stats_rep of flow_stats_entry list
  | Port_stats_rep of Of_types.Port_stats.t list

type msg =
  | Hello
  | Error_msg of { ty : int; code : int; data : string }
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features
  | Packet_in of {
      buffer_id : int32 option;
      total_len : int;
      reason : Of_types.packet_in_reason;
      table_id : int;
      cookie : int64;
      in_port : int;   (** carried as an OXM match field, per the spec *)
      data : string;
    }
  | Packet_out of {
      buffer_id : int32 option;
      in_port : int option;
      actions : Action.t list;
      data : string;
    }
  | Flow_mod of flow_mod
  | Flow_removed of {
      table_id : int;
      of_match : Of_match.t;
      cookie : int64;
      priority : int;
      reason : Of_types.flow_removed_reason;
      duration_s : int;
      packets : int64;
      bytes : int64;
    }
  | Port_status of Of_types.port_status_reason * Of_types.Port_info.t
  | Port_mod of { port_no : int; admin_down : bool }
  | Multipart_request of multipart_request
  | Multipart_reply of multipart_reply
  | Barrier_request
  | Barrier_reply

val encode : xid:int32 -> msg -> string
val decode : string -> (int32 * msg, string) result

val actions_of_instructions : instruction list -> Action.t list
(** The apply-actions content, for consumers that flatten the
    single-table case. *)

val msg_name : msg -> string
val pp : Format.formatter -> msg -> unit
