module P = Packet
module W = P.Wire.W
module R = P.Wire.R

let version = 0x01

type features = {
  datapath_id : int64;
  n_buffers : int;
  n_tables : int;
  capabilities : Of_types.Capabilities.t;
  ports : Of_types.Port_info.t list;
}

type flow_mod_command = Add | Modify | Delete | Delete_strict

type flow_mod = {
  of_match : Of_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;
  hard_timeout : int;
  priority : int;
  buffer_id : int32 option;
  notify_removal : bool;
  actions : Action.t list;
}

type stats_request = Flow_stats_req of Of_match.t | Port_stats_req of int option

type stats_reply =
  | Flow_stats_rep of Of_types.Flow_stats.t list
  | Port_stats_rep of Of_types.Port_stats.t list

type msg =
  | Hello
  | Error_msg of { ty : int; code : int; data : string }
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features
  | Packet_in of {
      buffer_id : int32 option;
      total_len : int;
      in_port : int;
      reason : Of_types.packet_in_reason;
      data : string;
    }
  | Packet_out of {
      buffer_id : int32 option;
      in_port : int option;
      actions : Action.t list;
      data : string;
    }
  | Flow_mod of flow_mod
  | Flow_removed of {
      of_match : Of_match.t;
      cookie : int64;
      priority : int;
      reason : Of_types.flow_removed_reason;
      duration_s : int;
      packets : int64;
      bytes : int64;
    }
  | Port_status of Of_types.port_status_reason * Of_types.Port_info.t
  | Port_mod of { port_no : int; admin_down : bool }
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply

(* --- message type numbers (OF 1.0 spec) ---------------------------------- *)

let t_hello = 0
and t_error = 1
and t_echo_req = 2
and t_echo_rep = 3
and t_features_req = 5
and t_features_rep = 6
and t_packet_in = 10
and t_flow_removed = 11
and t_port_status = 12
and t_packet_out = 13
and t_flow_mod = 14
and t_port_mod = 15
and t_stats_req = 16
and t_stats_rep = 17
and t_barrier_req = 18
and t_barrier_rep = 19

let no_buffer = 0xffffffffl

(* --- pseudo port numbers -------------------------------------------------- *)

let p_in_port = 0xfff8
and p_flood = 0xfffb
and p_all = 0xfffc
and p_controller = 0xfffd
and p_none = 0xffff

let pseudo_port_to_wire = function
  | Action.Physical n -> n
  | Action.In_port -> p_in_port
  | Action.Flood -> p_flood
  | Action.All -> p_all
  | Action.Controller _ -> p_controller
  | Action.Drop -> p_none

let pseudo_port_of_wire ~max_len n =
  if n = p_in_port then Action.In_port
  else if n = p_flood then Action.Flood
  else if n = p_all then Action.All
  else if n = p_controller then Action.Controller max_len
  else if n = p_none then Action.Drop
  else Action.Physical n

(* --- ofp_match (40 bytes) -------------------------------------------------- *)

let w_in_port = 1 lsl 0
and w_dl_vlan = 1 lsl 1
and w_dl_src = 1 lsl 2
and w_dl_dst = 1 lsl 3
and w_dl_type = 1 lsl 4
and w_nw_proto = 1 lsl 5
and w_tp_src = 1 lsl 6
and w_tp_dst = 1 lsl 7
and w_nw_src_shift = 8
and w_nw_dst_shift = 14
and w_dl_vlan_pcp = 1 lsl 20
and w_nw_tos = 1 lsl 21

let encode_match w (m : Of_match.t) =
  let wc = ref 0 in
  let bit b = function None -> wc := !wc lor b | Some _ -> () in
  bit w_in_port m.in_port;
  bit w_dl_vlan m.dl_vlan;
  bit w_dl_src m.dl_src;
  bit w_dl_dst m.dl_dst;
  bit w_dl_type m.dl_type;
  bit w_nw_proto m.nw_proto;
  bit w_tp_src m.tp_src;
  bit w_tp_dst m.tp_dst;
  bit w_dl_vlan_pcp m.dl_vlan_pcp;
  bit w_nw_tos m.nw_tos;
  let prefix_wild shift = function
    | None -> wc := !wc lor (32 lsl shift)
    | Some p -> wc := !wc lor ((32 - p.P.Ipv4_addr.Prefix.bits) lsl shift)
  in
  prefix_wild w_nw_src_shift m.nw_src;
  prefix_wild w_nw_dst_shift m.nw_dst;
  W.u32 w (Int32.of_int !wc);
  W.u16 w (Option.value m.in_port ~default:0);
  W.string w (P.Mac.to_octets (Option.value m.dl_src ~default:P.Mac.zero));
  W.string w (P.Mac.to_octets (Option.value m.dl_dst ~default:P.Mac.zero));
  W.u16 w (Option.value m.dl_vlan ~default:0);
  W.u8 w (Option.value m.dl_vlan_pcp ~default:0);
  W.u8 w 0;
  W.u16 w (Option.value m.dl_type ~default:0);
  W.u8 w (Option.value m.nw_tos ~default:0);
  W.u8 w (Option.value m.nw_proto ~default:0);
  W.zeros w 2;
  let prefix_base = function
    | None -> P.Ipv4_addr.any
    | Some p -> p.P.Ipv4_addr.Prefix.base
  in
  W.string w (P.Ipv4_addr.to_octets (prefix_base m.nw_src));
  W.string w (P.Ipv4_addr.to_octets (prefix_base m.nw_dst));
  W.u16 w (Option.value m.tp_src ~default:0);
  W.u16 w (Option.value m.tp_dst ~default:0)

let decode_match r : Of_match.t =
  let wc = Int32.to_int (R.u32 r) in
  let in_port = R.u16 r in
  let dl_src = P.Mac.of_octets (R.bytes r 6) in
  let dl_dst = P.Mac.of_octets (R.bytes r 6) in
  let dl_vlan = R.u16 r in
  let dl_vlan_pcp = R.u8 r in
  R.skip r 1;
  let dl_type = R.u16 r in
  let nw_tos = R.u8 r in
  let nw_proto = R.u8 r in
  R.skip r 2;
  let nw_src = P.Ipv4_addr.of_octets (R.bytes r 4) in
  let nw_dst = P.Ipv4_addr.of_octets (R.bytes r 4) in
  let tp_src = R.u16 r in
  let tp_dst = R.u16 r in
  let scalar bit v = if wc land bit <> 0 then None else Some v in
  let prefix shift base =
    let wild_bits = (wc lsr shift) land 0x3f in
    if wild_bits >= 32 then None
    else Some (P.Ipv4_addr.Prefix.make base (32 - wild_bits))
  in
  { in_port = scalar w_in_port in_port;
    dl_src = scalar w_dl_src dl_src;
    dl_dst = scalar w_dl_dst dl_dst;
    dl_vlan = scalar w_dl_vlan dl_vlan;
    dl_vlan_pcp = scalar w_dl_vlan_pcp dl_vlan_pcp;
    dl_type = scalar w_dl_type dl_type;
    nw_src = prefix w_nw_src_shift nw_src;
    nw_dst = prefix w_nw_dst_shift nw_dst;
    nw_proto = scalar w_nw_proto nw_proto;
    nw_tos = scalar w_nw_tos nw_tos;
    tp_src = scalar w_tp_src tp_src;
    tp_dst = scalar w_tp_dst tp_dst }

(* --- ofp_phy_port (48 bytes) ----------------------------------------------- *)

let encode_port w (p : Of_types.Port_info.t) =
  W.u16 w p.port_no;
  W.string w (P.Mac.to_octets p.hw_addr);
  let name =
    if String.length p.name >= 16 then String.sub p.name 0 15 else p.name
  in
  W.string w name;
  W.zeros w (16 - String.length name);
  W.u32 w (if p.admin_down then 1l else 0l); (* config: OFPPC_PORT_DOWN *)
  W.u32 w (if p.link_down then 1l else 0l); (* state: OFPPS_LINK_DOWN *)
  (* We carry the port speed directly in the [curr] feature word; the
     simulator has no notion of the OF feature bitmap's fixed rates. *)
  W.u32 w (Int32.of_int p.speed_mbps);
  W.u32 w 0l;
  W.u32 w 0l;
  W.u32 w 0l

let decode_port r : Of_types.Port_info.t =
  let port_no = R.u16 r in
  let hw_addr = P.Mac.of_octets (R.bytes r 6) in
  let raw_name = R.bytes r 16 in
  let name =
    match String.index_opt raw_name '\000' with
    | Some i -> String.sub raw_name 0 i
    | None -> raw_name
  in
  let config = R.u32 r in
  let state = R.u32 r in
  let curr = R.u32 r in
  R.skip r 12;
  { port_no; hw_addr; name;
    admin_down = Int32.logand config 1l <> 0l;
    link_down = Int32.logand state 1l <> 0l;
    speed_mbps = Int32.to_int curr }

(* --- actions ---------------------------------------------------------------- *)

let encode_action w (a : Action.t) =
  match a with
  | Action.Output port ->
    W.u16 w 0;
    W.u16 w 8;
    W.u16 w (pseudo_port_to_wire port);
    W.u16 w (match port with Action.Controller max_len -> max_len | _ -> 0)
  | Action.Set_vlan vid ->
    W.u16 w 1; W.u16 w 8; W.u16 w vid; W.zeros w 2
  | Action.Set_vlan_pcp pcp ->
    W.u16 w 2; W.u16 w 8; W.u8 w pcp; W.zeros w 3
  | Action.Strip_vlan -> W.u16 w 3; W.u16 w 8; W.zeros w 4
  | Action.Set_dl_src mac ->
    W.u16 w 4; W.u16 w 16; W.string w (P.Mac.to_octets mac); W.zeros w 6
  | Action.Set_dl_dst mac ->
    W.u16 w 5; W.u16 w 16; W.string w (P.Mac.to_octets mac); W.zeros w 6
  | Action.Set_nw_src addr ->
    W.u16 w 6; W.u16 w 8; W.string w (P.Ipv4_addr.to_octets addr)
  | Action.Set_nw_dst addr ->
    W.u16 w 7; W.u16 w 8; W.string w (P.Ipv4_addr.to_octets addr)
  | Action.Set_nw_tos tos -> W.u16 w 8; W.u16 w 8; W.u8 w tos; W.zeros w 3
  | Action.Set_tp_src port -> W.u16 w 9; W.u16 w 8; W.u16 w port; W.zeros w 2
  | Action.Set_tp_dst port -> W.u16 w 10; W.u16 w 8; W.u16 w port; W.zeros w 2
  | Action.Enqueue { port; queue_id } ->
    W.u16 w 11;
    W.u16 w 16;
    W.u16 w port;
    W.zeros w 6;
    W.u32 w (Int32.of_int queue_id)

let encode_actions w actions = List.iter (encode_action w) actions

let actions_wire_len actions =
  List.fold_left
    (fun acc a ->
      acc
      +
      match a with
      | Action.Set_dl_src _ | Action.Set_dl_dst _ | Action.Enqueue _ -> 16
      | _ -> 8)
    0 actions

let decode_action r =
  let ty = R.u16 r in
  let len = R.u16 r in
  match ty with
  | 0 ->
    let port = R.u16 r in
    let max_len = R.u16 r in
    Ok (Action.Output (pseudo_port_of_wire ~max_len port))
  | 1 ->
    let vid = R.u16 r in
    R.skip r 2;
    Ok (Action.Set_vlan vid)
  | 2 ->
    let pcp = R.u8 r in
    R.skip r 3;
    Ok (Action.Set_vlan_pcp pcp)
  | 3 ->
    R.skip r 4;
    Ok Action.Strip_vlan
  | 4 ->
    let mac = P.Mac.of_octets (R.bytes r 6) in
    R.skip r 6;
    Ok (Action.Set_dl_src mac)
  | 5 ->
    let mac = P.Mac.of_octets (R.bytes r 6) in
    R.skip r 6;
    Ok (Action.Set_dl_dst mac)
  | 6 -> Ok (Action.Set_nw_src (P.Ipv4_addr.of_octets (R.bytes r 4)))
  | 7 -> Ok (Action.Set_nw_dst (P.Ipv4_addr.of_octets (R.bytes r 4)))
  | 8 ->
    let tos = R.u8 r in
    R.skip r 3;
    Ok (Action.Set_nw_tos tos)
  | 9 ->
    let port = R.u16 r in
    R.skip r 2;
    Ok (Action.Set_tp_src port)
  | 10 ->
    let port = R.u16 r in
    R.skip r 2;
    Ok (Action.Set_tp_dst port)
  | 11 ->
    let port = R.u16 r in
    R.skip r 6;
    let queue_id = Int32.to_int (R.u32 r) in
    Ok (Action.Enqueue { port; queue_id })
  | _ -> Error (Printf.sprintf "unknown action type %d (len %d)" ty len)

let decode_actions r ~len =
  let stop = R.pos r + len in
  let rec go acc =
    if R.pos r >= stop then Ok (List.rev acc)
    else
      match decode_action r with
      | Ok a -> go (a :: acc)
      | Error _ as e -> e
  in
  go []

(* --- capabilities ----------------------------------------------------------- *)

let caps_to_wire (c : Of_types.Capabilities.t) =
  Int32.of_int
    ((if c.flow_stats then 1 else 0)
    lor (if c.port_stats then 4 else 0)
    lor if c.queue_stats then 64 else 0)

let caps_of_wire v =
  let v = Int32.to_int v in
  { Of_types.Capabilities.flow_stats = v land 1 <> 0;
    port_stats = v land 4 <> 0;
    queue_stats = v land 64 <> 0 }

(* --- encode ------------------------------------------------------------------ *)

let buffer_id_to_wire = function None -> no_buffer | Some id -> id

let buffer_id_of_wire v = if Int32.equal v no_buffer then None else Some v

let body_and_type = function
  | Hello -> t_hello, ""
  | Error_msg { ty; code; data } ->
    let w = W.create () in
    W.u16 w ty;
    W.u16 w code;
    W.string w data;
    t_error, W.contents w
  | Echo_request data -> t_echo_req, data
  | Echo_reply data -> t_echo_rep, data
  | Features_request -> t_features_req, ""
  | Features_reply f ->
    let w = W.create () in
    W.u64 w f.datapath_id;
    W.u32 w (Int32.of_int f.n_buffers);
    W.u8 w f.n_tables;
    W.zeros w 3;
    W.u32 w (caps_to_wire f.capabilities);
    W.u32 w 0xfffl; (* supported actions: all of ours *)
    List.iter (encode_port w) f.ports;
    t_features_rep, W.contents w
  | Packet_in { buffer_id; total_len; in_port; reason; data } ->
    let w = W.create () in
    W.u32 w (buffer_id_to_wire buffer_id);
    W.u16 w total_len;
    W.u16 w in_port;
    W.u8 w (match reason with Of_types.No_match -> 0 | Of_types.Action_explicit -> 1);
    W.u8 w 0;
    W.string w data;
    t_packet_in, W.contents w
  | Packet_out { buffer_id; in_port; actions; data } ->
    let w = W.create () in
    W.u32 w (buffer_id_to_wire buffer_id);
    W.u16 w (Option.value in_port ~default:p_none);
    W.u16 w (actions_wire_len actions);
    encode_actions w actions;
    W.string w data;
    t_packet_out, W.contents w
  | Flow_mod fm ->
    let w = W.create () in
    encode_match w fm.of_match;
    W.u64 w fm.cookie;
    W.u16 w
      (match fm.command with
      | Add -> 0
      | Modify -> 1
      | Delete -> 3
      | Delete_strict -> 4);
    W.u16 w fm.idle_timeout;
    W.u16 w fm.hard_timeout;
    W.u16 w fm.priority;
    W.u32 w (buffer_id_to_wire fm.buffer_id);
    W.u16 w p_none; (* out_port filter: unused *)
    W.u16 w (if fm.notify_removal then 1 else 0);
    encode_actions w fm.actions;
    t_flow_mod, W.contents w
  | Flow_removed { of_match; cookie; priority; reason; duration_s; packets; bytes } ->
    let w = W.create () in
    encode_match w of_match;
    W.u64 w cookie;
    W.u16 w priority;
    W.u8 w
      (match reason with
      | Of_types.Idle_timeout_hit -> 0
      | Of_types.Hard_timeout_hit -> 1
      | Of_types.Flow_deleted -> 2);
    W.u8 w 0;
    W.u32 w (Int32.of_int duration_s);
    W.u32 w 0l;
    W.u16 w 0;
    W.zeros w 2;
    W.u64 w packets;
    W.u64 w bytes;
    t_flow_removed, W.contents w
  | Port_status (reason, port) ->
    let w = W.create () in
    W.u8 w
      (match reason with
      | Of_types.Port_add -> 0
      | Of_types.Port_delete -> 1
      | Of_types.Port_modify -> 2);
    W.zeros w 7;
    encode_port w port;
    t_port_status, W.contents w
  | Port_mod { port_no; admin_down } ->
    let w = W.create () in
    W.u16 w port_no;
    W.string w (P.Mac.to_octets P.Mac.zero);
    W.u32 w (if admin_down then 1l else 0l); (* config *)
    W.u32 w 1l; (* mask: PORT_DOWN bit *)
    W.u32 w 0l; (* advertise *)
    W.zeros w 4;
    t_port_mod, W.contents w
  | Stats_request req ->
    let w = W.create () in
    (match req with
    | Flow_stats_req m ->
      W.u16 w 1;
      W.u16 w 0;
      encode_match w m;
      W.u8 w 0xff; (* all tables *)
      W.u8 w 0;
      W.u16 w p_none
    | Port_stats_req port ->
      W.u16 w 4;
      W.u16 w 0;
      W.u16 w (Option.value port ~default:p_none);
      W.zeros w 6);
    t_stats_req, W.contents w
  | Stats_reply rep ->
    let w = W.create () in
    (match rep with
    | Flow_stats_rep flows ->
      W.u16 w 1;
      W.u16 w 0;
      List.iter
        (fun (s : Of_types.Flow_stats.t) ->
          let alen = actions_wire_len s.actions in
          W.u16 w (88 + alen);
          W.u8 w 0;
          W.u8 w 0;
          encode_match w s.of_match;
          W.u32 w (Int32.of_int s.duration_s);
          W.u32 w 0l;
          W.u16 w s.priority;
          W.u16 w s.idle_timeout;
          W.u16 w s.hard_timeout;
          W.zeros w 6;
          W.u64 w s.cookie;
          W.u64 w s.packets;
          W.u64 w s.bytes;
          encode_actions w s.actions)
        flows
    | Port_stats_rep ports ->
      W.u16 w 4;
      W.u16 w 0;
      List.iter
        (fun (s : Of_types.Port_stats.t) ->
          W.u16 w s.port_no;
          W.zeros w 6;
          W.u64 w s.rx_packets;
          W.u64 w s.tx_packets;
          W.u64 w s.rx_bytes;
          W.u64 w s.tx_bytes;
          W.u64 w s.rx_dropped;
          W.u64 w s.tx_dropped;
          W.zeros w 48 (* error counters: unused *))
        ports);
    t_stats_rep, W.contents w
  | Barrier_request -> t_barrier_req, ""
  | Barrier_reply -> t_barrier_rep, ""

let encode ~xid msg =
  let ty, body = body_and_type msg in
  let w = W.create ~size:(8 + String.length body) () in
  W.u8 w version;
  W.u8 w ty;
  W.u16 w (8 + String.length body);
  W.u32 w xid;
  W.string w body;
  W.contents w

(* --- decode ------------------------------------------------------------------ *)

let decode_body ty r =
  match ty with
  | ty when ty = t_hello -> Ok Hello
  | ty when ty = t_error ->
    let ety = R.u16 r in
    let code = R.u16 r in
    Ok (Error_msg { ty = ety; code; data = R.rest r })
  | ty when ty = t_echo_req -> Ok (Echo_request (R.rest r))
  | ty when ty = t_echo_rep -> Ok (Echo_reply (R.rest r))
  | ty when ty = t_features_req -> Ok Features_request
  | ty when ty = t_features_rep ->
    let datapath_id = R.u64 r in
    let n_buffers = Int32.to_int (R.u32 r) in
    let n_tables = R.u8 r in
    R.skip r 3;
    let capabilities = caps_of_wire (R.u32 r) in
    let _actions = R.u32 r in
    let rec ports acc =
      if R.remaining r < 48 then List.rev acc
      else ports (decode_port r :: acc)
    in
    Ok
      (Features_reply
         { datapath_id; n_buffers; n_tables; capabilities; ports = ports [] })
  | ty when ty = t_packet_in ->
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let total_len = R.u16 r in
    let in_port = R.u16 r in
    let reason =
      if R.u8 r = 0 then Of_types.No_match else Of_types.Action_explicit
    in
    R.skip r 1;
    Ok (Packet_in { buffer_id; total_len; in_port; reason; data = R.rest r })
  | ty when ty = t_packet_out ->
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let in_port_raw = R.u16 r in
    let actions_len = R.u16 r in
    Result.bind (decode_actions r ~len:actions_len) (fun actions ->
        Ok
          (Packet_out
             { buffer_id;
               in_port = (if in_port_raw = p_none then None else Some in_port_raw);
               actions;
               data = R.rest r }))
  | ty when ty = t_flow_mod ->
    let of_match = decode_match r in
    let cookie = R.u64 r in
    let cmd = R.u16 r in
    let idle_timeout = R.u16 r in
    let hard_timeout = R.u16 r in
    let priority = R.u16 r in
    let buffer_id = buffer_id_of_wire (R.u32 r) in
    let _out_port = R.u16 r in
    let flags = R.u16 r in
    let command =
      match cmd with
      | 0 -> Ok Add
      | 1 | 2 -> Ok Modify
      | 3 -> Ok Delete
      | 4 -> Ok Delete_strict
      | n -> Error (Printf.sprintf "unknown flow_mod command %d" n)
    in
    Result.bind command (fun command ->
        Result.bind (decode_actions r ~len:(R.remaining r)) (fun actions ->
            Ok
              (Flow_mod
                 { of_match; cookie; command; idle_timeout; hard_timeout;
                   priority; buffer_id; notify_removal = flags land 1 <> 0;
                   actions })))
  | ty when ty = t_flow_removed ->
    let of_match = decode_match r in
    let cookie = R.u64 r in
    let priority = R.u16 r in
    let reason_raw = R.u8 r in
    R.skip r 1;
    let duration_s = Int32.to_int (R.u32 r) in
    R.skip r 4;
    let _idle = R.u16 r in
    R.skip r 2;
    let packets = R.u64 r in
    let bytes = R.u64 r in
    let reason =
      match reason_raw with
      | 0 -> Of_types.Idle_timeout_hit
      | 1 -> Of_types.Hard_timeout_hit
      | _ -> Of_types.Flow_deleted
    in
    Ok (Flow_removed { of_match; cookie; priority; reason; duration_s; packets; bytes })
  | ty when ty = t_port_status ->
    let reason_raw = R.u8 r in
    R.skip r 7;
    let port = decode_port r in
    let reason =
      match reason_raw with
      | 0 -> Of_types.Port_add
      | 1 -> Of_types.Port_delete
      | _ -> Of_types.Port_modify
    in
    Ok (Port_status (reason, port))
  | ty when ty = t_port_mod ->
    let port_no = R.u16 r in
    R.skip r 6;
    let config = R.u32 r in
    let _mask = R.u32 r in
    Ok (Port_mod { port_no; admin_down = Int32.logand config 1l <> 0l })
  | ty when ty = t_stats_req ->
    let sty = R.u16 r in
    let _flags = R.u16 r in
    (match sty with
    | 1 ->
      let m = decode_match r in
      Ok (Stats_request (Flow_stats_req m))
    | 4 ->
      let port = R.u16 r in
      Ok (Stats_request (Port_stats_req (if port = p_none then None else Some port)))
    | n -> Error (Printf.sprintf "unknown stats request type %d" n))
  | ty when ty = t_stats_rep ->
    let sty = R.u16 r in
    let _flags = R.u16 r in
    (match sty with
    | 1 ->
      let rec entries acc =
        if R.remaining r < 88 then Ok (List.rev acc)
        else begin
          let entry_len = R.u16 r in
          let _table = R.u8 r in
          R.skip r 1;
          let of_match = decode_match r in
          let duration_s = Int32.to_int (R.u32 r) in
          R.skip r 4;
          let priority = R.u16 r in
          let idle_timeout = R.u16 r in
          let hard_timeout = R.u16 r in
          R.skip r 6;
          let cookie = R.u64 r in
          let packets = R.u64 r in
          let bytes = R.u64 r in
          match decode_actions r ~len:(entry_len - 88) with
          | Error _ as e -> e
          | Ok actions ->
            entries
              ({ Of_types.Flow_stats.of_match; priority; cookie; packets;
                 bytes; duration_s; idle_timeout; hard_timeout; actions }
              :: acc)
        end
      in
      Result.map (fun l -> Stats_reply (Flow_stats_rep l)) (entries [])
    | 4 ->
      let rec entries acc =
        if R.remaining r < 104 then List.rev acc
        else begin
          let port_no = R.u16 r in
          R.skip r 6;
          let rx_packets = R.u64 r in
          let tx_packets = R.u64 r in
          let rx_bytes = R.u64 r in
          let tx_bytes = R.u64 r in
          let rx_dropped = R.u64 r in
          let tx_dropped = R.u64 r in
          R.skip r 48;
          entries
            ({ Of_types.Port_stats.port_no; rx_packets; tx_packets; rx_bytes;
               tx_bytes; rx_dropped; tx_dropped }
            :: acc)
        end
      in
      Ok (Stats_reply (Port_stats_rep (entries [])))
    | n -> Error (Printf.sprintf "unknown stats reply type %d" n))
  | ty when ty = t_barrier_req -> Ok Barrier_request
  | ty when ty = t_barrier_rep -> Ok Barrier_reply
  | ty -> Error (Printf.sprintf "unknown OF1.0 message type %d" ty)

let decode s =
  try
    let r = R.of_string s in
    let v = R.u8 r in
    if v <> version then Error (Printf.sprintf "bad version %d (want 1)" v)
    else begin
      let ty = R.u8 r in
      let len = R.u16 r in
      let xid = R.u32 r in
      if len <> String.length s then
        Error
          (Printf.sprintf "length mismatch: header %d, actual %d" len
             (String.length s))
      else Result.map (fun m -> xid, m) (decode_body ty r)
    end
  with R.Truncated -> Error "truncated message"

let msg_name = function
  | Hello -> "hello"
  | Error_msg _ -> "error"
  | Echo_request _ -> "echo_request"
  | Echo_reply _ -> "echo_reply"
  | Features_request -> "features_request"
  | Features_reply _ -> "features_reply"
  | Packet_in _ -> "packet_in"
  | Packet_out _ -> "packet_out"
  | Flow_mod _ -> "flow_mod"
  | Flow_removed _ -> "flow_removed"
  | Port_status _ -> "port_status"
  | Port_mod _ -> "port_mod"
  | Stats_request _ -> "stats_request"
  | Stats_reply _ -> "stats_reply"
  | Barrier_request -> "barrier_request"
  | Barrier_reply -> "barrier_reply"

let pp ppf m =
  match m with
  | Flow_mod fm ->
    Format.fprintf ppf "flow_mod[%s %a pri=%d -> %a]"
      (match fm.command with
      | Add -> "add"
      | Modify -> "mod"
      | Delete -> "del"
      | Delete_strict -> "del-strict")
      Of_match.pp fm.of_match fm.priority Action.pp_list fm.actions
  | Packet_in { in_port; data; _ } ->
    Format.fprintf ppf "packet_in[port=%d %dB]" in_port (String.length data)
  | Packet_out { actions; data; _ } ->
    Format.fprintf ppf "packet_out[%a %dB]" Action.pp_list actions
      (String.length data)
  | Port_status (_, p) -> Format.fprintf ppf "port_status[%a]" Of_types.Port_info.pp p
  | m -> Format.pp_print_string ppf (msg_name m)
