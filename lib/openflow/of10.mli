(** OpenFlow 1.0 message codec (wire format per the OF 1.0.0 spec:
    8-byte header, 40-byte [ofp_match], 48-byte [ofp_phy_port]).

    This is the protocol the majority of the paper's switches speak; the
    [Of10_driver] translates between these messages and the yanc file
    system. Only the message types a controller/switch pair actually
    exchanges are implemented; unknown types decode to [Error _]
    results, never exceptions. *)

val version : int
(** 0x01 *)

type features = {
  datapath_id : int64;
  n_buffers : int;
  n_tables : int;
  capabilities : Of_types.Capabilities.t;
  ports : Of_types.Port_info.t list;
}

type flow_mod_command = Add | Modify | Delete | Delete_strict

type flow_mod = {
  of_match : Of_match.t;
  cookie : int64;
  command : flow_mod_command;
  idle_timeout : int;   (** seconds; 0 = permanent *)
  hard_timeout : int;
  priority : int;
  buffer_id : int32 option;
  notify_removal : bool;  (** OFPFF_SEND_FLOW_REM *)
  actions : Action.t list;
}

type stats_request = Flow_stats_req of Of_match.t | Port_stats_req of int option

type stats_reply =
  | Flow_stats_rep of Of_types.Flow_stats.t list
  | Port_stats_rep of Of_types.Port_stats.t list

type msg =
  | Hello
  | Error_msg of { ty : int; code : int; data : string }
  | Echo_request of string
  | Echo_reply of string
  | Features_request
  | Features_reply of features
  | Packet_in of {
      buffer_id : int32 option;
      total_len : int;
      in_port : int;
      reason : Of_types.packet_in_reason;
      data : string;  (** the frame bytes (possibly truncated to max_len) *)
    }
  | Packet_out of {
      buffer_id : int32 option;
      in_port : int option;
      actions : Action.t list;
      data : string;
    }
  | Flow_mod of flow_mod
  | Flow_removed of {
      of_match : Of_match.t;
      cookie : int64;
      priority : int;
      reason : Of_types.flow_removed_reason;
      duration_s : int;
      packets : int64;
      bytes : int64;
    }
  | Port_status of Of_types.port_status_reason * Of_types.Port_info.t
  | Port_mod of { port_no : int; admin_down : bool }
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Barrier_request
  | Barrier_reply

val encode : xid:int32 -> msg -> string
(** The complete message, header included. *)

val decode : string -> (int32 * msg, string) result
(** Decode one complete message (as delivered by {!Framing}). *)

val msg_name : msg -> string
val pp : Format.formatter -> msg -> unit
