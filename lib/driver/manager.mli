(** Driver management: one driver per switch, chosen by protocol
    version, replaceable at runtime.

    "Nodes in such a system can therefore be gradually upgraded, live,
    to newer protocols" (paper §4.1): {!upgrade} tears down a switch's
    OF 1.0 driver+agent pair and attaches an OF 1.3 pair; because the
    file system holds the authoritative network state, the new driver
    re-reads it and reprograms the switch — applications never notice. *)

type version = V10 | V13

type t

val create : yfs:Yancfs.Yanc_fs.t -> net:Netsim.Network.t -> unit -> t

val attach : t -> dpid:int64 -> version:version -> unit
(** Connect a switch in the network to a fresh (driver, channel, agent)
    triple speaking the given version, replacing any existing
    attachment. *)

val detach : t -> dpid:int64 -> unit

val upgrade : t -> dpid:int64 -> version:version -> unit
(** Alias of {!attach} with intent: live protocol upgrade. *)

val step : t -> now:float -> unit
(** One control-plane round: step every driver, then every agent, then
    the drivers again (so request/reply pairs complete within a
    round). *)

val run_control : ?rounds:int -> t -> now:float -> unit
(** Step several rounds (default 4) — enough to finish a handshake. *)

val driver_protocol : t -> dpid:int64 -> string option

val switch_name : t -> dpid:int64 -> string option

val attached : t -> int64 list
