(** Driver management: one driver per switch, chosen by protocol
    version, replaceable at runtime.

    "Nodes in such a system can therefore be gradually upgraded, live,
    to newer protocols" (paper §4.1): {!upgrade} tears down a switch's
    OF 1.0 driver+agent pair and attaches an OF 1.3 pair; because the
    file system holds the authoritative network state, the new driver
    re-reads it and reprograms the switch — applications never notice. *)

type version = V10 | V13

type t

val create :
  ?tuning:Driver_intf.tuning -> ?seed:int -> yfs:Yancfs.Yanc_fs.t ->
  net:Netsim.Network.t -> unit -> t
(** [tuning] is the keepalive/backoff policy handed to every driver and
    agent attached through this manager; [seed] (with the dpid) derives
    each driver's backoff-jitter PRNG, so a run is reproducible from
    one number. *)

val attach : t -> dpid:int64 -> version:version -> unit
(** Connect a switch in the network to a fresh (driver, channel, agent)
    triple speaking the given version, replacing any existing
    attachment. *)

val detach : t -> dpid:int64 -> unit

val upgrade : t -> dpid:int64 -> version:version -> unit
(** Alias of {!attach} with intent: live protocol upgrade. *)

val step : t -> now:float -> unit
(** One control-plane round over the {e runnable} switches only: step
    each runnable driver, then its agent, then the driver again (so
    request/reply pairs complete within a round). A switch is runnable
    when woken — channel bytes, fsnotify events, connection changes,
    fault-script installs — or when a driver/agent timer (keepalive,
    backoff, stats, flow expiry, delayed delivery, scripted fault) has
    come due; quiescent switches park on a timer heap, so a quiet tick
    over an 8k-switch fleet costs O(runnable + log timers), not
    O(attached). Observable as [driver.mgr.steps] vs
    [driver.mgr.stepped] and the [driver.mgr.{attached,runnable,timers}]
    gauges. *)

val run_control : ?rounds:int -> t -> now:float -> unit
(** Step several rounds (default 4) — enough to finish a handshake. *)

val driver_protocol : t -> dpid:int64 -> string option

val switch_name : t -> dpid:int64 -> string option

val attached : t -> int64 list

val channel :
  t -> dpid:int64 ->
  (Netsim.Control_channel.endpoint * Netsim.Control_channel.endpoint) option
(** The switch's control channel as [(agent side, driver side)] — the
    hook fault-injecting tests use ({!Netsim.Control_channel.set_faults}
    on either end). *)

val switch_status : t -> dpid:int64 -> Driver_intf.status option

val link_counters : t -> dpid:int64 -> Driver_intf.link_counters option

val statuses : t -> (int64 * Driver_intf.status) list
(** Ordered by dpid. *)

val any_dead : t -> bool
(** True when some driver has exhausted its reconnect budget —
    [yancctl counters] exits nonzero on this. *)
