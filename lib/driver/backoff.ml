type t = {
  base : float;
  cap : float;
  jitter : float;
  prng : Netsim.Prng.t;
  mutable attempts : int;
}

let create ?(base = 0.25) ?(cap = 4.0) ?(jitter = 0.1) ~prng () =
  { base; cap; jitter; prng; attempts = 0 }

let next t =
  (* 2^attempts without overflow: past the cap the exponent is moot. *)
  let exp = min t.attempts 30 in
  let raw = t.base *. Float.of_int (1 lsl exp) in
  let clamped = min raw t.cap in
  t.attempts <- t.attempts + 1;
  let j = if t.jitter > 0. then Netsim.Prng.float t.prng *. t.jitter else 0. in
  clamped *. (1. +. j)

let reset t = t.attempts <- 0

let attempts t = t.attempts
