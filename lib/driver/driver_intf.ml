(** The protocol abstraction a yanc driver is written against.

    "A device driver is the implementation of a control plane protocol,
    or even a specific version of a protocol. Drivers translate network
    activity for a subset of nodes to the common API supported by the
    network operating system" (paper §4.1). Here the common API is the
    file system; the per-version modules ({!Of10_adapter},
    {!Of13_adapter}) reduce their wire dialect to this signature and
    {!Core.Make} supplies the translation to files. Supporting a new
    protocol means writing one new adapter — the core and every
    application are untouched. *)

module OT = Openflow.Of_types

(** The driver's connection state machine (surfaced through the
    switch's [status] file, [/yanc/.proc] and [yancctl]):

    {v
    Handshaking --features--> Connected <--> Degraded
         ^                        |  (echo unanswered past one interval)
         |                        | (nothing received for liveness_timeout)
         |                        v
         +--<--backoff--- Reconnecting --max retries exhausted--> Dead
    v}

    [Dead] is terminal until traffic arrives again: operators see it,
    [yancctl counters] exits nonzero on it. *)
type status = Handshaking | Connected | Degraded | Reconnecting | Dead

let status_to_string = function
  | Handshaking -> "handshaking"
  | Connected -> "connected"
  | Degraded -> "degraded"
  | Reconnecting -> "reconnecting"
  | Dead -> "dead"

(** Keepalive / retry policy, shared by the driver and (via the
    manager) its agent. *)
type tuning = {
  keepalive_interval : float;  (** echo-request period; 0 disables *)
  liveness_timeout : float;    (** silence before declaring the peer gone *)
  backoff_base : float;
  backoff_cap : float;
  backoff_jitter : float;
  max_retries : int;           (** reconnect attempts before [Dead] *)
  stats_interval : float;
      (** periodic flow/port stats poll; 0 disables (the scale bench
          turns it off so a storm measures the packet-in path alone) *)
}

let default_tuning =
  { keepalive_interval = 1.0; liveness_timeout = 3.0; backoff_base = 0.25;
    backoff_cap = 4.0; backoff_jitter = 0.1; max_retries = 20;
    stats_interval = 5.0 }

(** Connection-survival counters, per driver. *)
type link_counters = {
  disconnects : int;       (** liveness timeouts declared *)
  retries : int;           (** handshake (re)transmissions after the first *)
  resyncs : int;           (** completed flow-table resynchronizations *)
  resync_installs : int;   (** missing-on-switch entries re-installed *)
  resync_deletes : int;    (** stray switch entries deleted *)
  keepalives_sent : int;
}

(** Protocol-independent rendering of switch-to-controller traffic. *)
type event =
  | Ev_hello
  | Ev_features of {
      dpid : int64;
      n_buffers : int;
      n_tables : int;
      capabilities : OT.Capabilities.t;
      ports : OT.Port_info.t list option;
          (** [None]: the dialect reports ports separately (OF 1.3
              port-desc) *)
    }
  | Ev_ports of OT.Port_info.t list
  | Ev_packet_in of {
      buffer_id : int32 option;
      total_len : int;
      in_port : int;
      reason : OT.packet_in_reason;
      data : string;
    }
  | Ev_port_status of OT.port_status_reason * OT.Port_info.t
  | Ev_flow_removed of {
      of_match : Openflow.Of_match.t;
      priority : int;
      reason : OT.flow_removed_reason;
      duration_s : int;
      packets : int64;
      bytes : int64;
    }
  | Ev_flow_stats of OT.Flow_stats.t list
  | Ev_port_stats of OT.Port_stats.t list
  | Ev_echo_request of { xid : int32; data : string }
  | Ev_echo_reply of { xid : int32 }
  | Ev_error of string
  | Ev_other

module type PROTOCOL = sig
  val name : string
  (** e.g. ["openflow10"] — recorded in the switch's [protocol] file. *)

  val hello : xid:int32 -> string

  val features_request : xid:int32 -> string

  val port_desc_request : (xid:int32 -> string) option
  (** Present for dialects whose features-reply omits ports. *)

  val echo_reply : xid:int32 -> data:string -> string

  val echo_request : xid:int32 -> data:string -> string
  (** The driver-side keepalive probe. *)

  val flow_add : xid:int32 -> Yancfs.Flowdir.t -> string

  val flow_delete : xid:int32 -> Openflow.Of_match.t -> string

  val flow_delete_strict : xid:int32 -> priority:int -> Openflow.Of_match.t -> string
  (** DELETE_STRICT — used by resync to remove exactly one stray rule
      without touching a same-match entry at another priority. *)

  val packet_out :
    xid:int32 -> buffer_id:int32 option -> in_port:int option ->
    actions:Openflow.Action.t list -> data:string -> string

  val port_mod : xid:int32 -> port_no:int -> admin_down:bool -> string

  val flow_stats_request : xid:int32 -> string

  val port_stats_request : xid:int32 -> string

  val decode_event : string -> event
end

(** The uniform handle the {!Manager} holds, whatever the protocol. *)
type instance = {
  step : now:float -> unit;
  switch_name : unit -> string option;  (** set once the handshake completes *)
  protocol : string;
  status : unit -> status;
  link : unit -> link_counters;
  next_due : now:float -> float;
      (** earliest sim time a step would act on its own (timers);
          [infinity] = fully event-driven, wake me via channel/fs *)
  pending : unit -> bool;
      (** queued work a step would process right now (fsnotify events,
          dirty flows/ports/spool) *)
  detach : unit -> unit;  (** drop watches and hooks *)
}
