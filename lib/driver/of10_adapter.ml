(** OpenFlow 1.0 dialect reduced to {!Driver_intf.PROTOCOL}. *)

module OF = Openflow

let name = "openflow10"

let hello ~xid = OF.Of10.encode ~xid OF.Of10.Hello

let features_request ~xid = OF.Of10.encode ~xid OF.Of10.Features_request

let port_desc_request = None

let echo_reply ~xid ~data = OF.Of10.encode ~xid (OF.Of10.Echo_reply data)

let echo_request ~xid ~data = OF.Of10.encode ~xid (OF.Of10.Echo_request data)

let flow_add ~xid (flow : Yancfs.Flowdir.t) =
  OF.Of10.encode ~xid
    (OF.Of10.Flow_mod
       { of_match = flow.of_match;
         cookie = flow.cookie;
         command = OF.Of10.Add;
         idle_timeout = flow.idle_timeout;
         hard_timeout = flow.hard_timeout;
         priority = flow.priority;
         buffer_id = flow.buffer_id;
         notify_removal = flow.idle_timeout > 0 || flow.hard_timeout > 0;
         actions = flow.actions })

let flow_delete ~xid of_match =
  OF.Of10.encode ~xid
    (OF.Of10.Flow_mod
       { of_match; cookie = 0L; command = OF.Of10.Delete; idle_timeout = 0;
         hard_timeout = 0; priority = 0; buffer_id = None;
         notify_removal = false; actions = [] })

let flow_delete_strict ~xid ~priority of_match =
  OF.Of10.encode ~xid
    (OF.Of10.Flow_mod
       { of_match; cookie = 0L; command = OF.Of10.Delete_strict;
         idle_timeout = 0; hard_timeout = 0; priority; buffer_id = None;
         notify_removal = false; actions = [] })

let packet_out ~xid ~buffer_id ~in_port ~actions ~data =
  OF.Of10.encode ~xid (OF.Of10.Packet_out { buffer_id; in_port; actions; data })

let port_mod ~xid ~port_no ~admin_down =
  OF.Of10.encode ~xid (OF.Of10.Port_mod { port_no; admin_down })

let flow_stats_request ~xid =
  OF.Of10.encode ~xid (OF.Of10.Stats_request (OF.Of10.Flow_stats_req OF.Of_match.any))

let port_stats_request ~xid =
  OF.Of10.encode ~xid (OF.Of10.Stats_request (OF.Of10.Port_stats_req None))

let decode_event raw : Driver_intf.event =
  match OF.Of10.decode raw with
  | Error e -> Driver_intf.Ev_error e
  | Ok (xid, msg) -> (
    match msg with
    | OF.Of10.Hello -> Driver_intf.Ev_hello
    | OF.Of10.Features_reply f ->
      Driver_intf.Ev_features
        { dpid = f.datapath_id; n_buffers = f.n_buffers; n_tables = f.n_tables;
          capabilities = f.capabilities; ports = Some f.ports }
    | OF.Of10.Packet_in { buffer_id; total_len; in_port; reason; data } ->
      Driver_intf.Ev_packet_in { buffer_id; total_len; in_port; reason; data }
    | OF.Of10.Port_status (reason, port) -> Driver_intf.Ev_port_status (reason, port)
    | OF.Of10.Flow_removed { of_match; priority; reason; duration_s; packets; bytes; _ } ->
      Driver_intf.Ev_flow_removed
        { of_match; priority; reason; duration_s; packets; bytes }
    | OF.Of10.Stats_reply (OF.Of10.Flow_stats_rep stats) ->
      Driver_intf.Ev_flow_stats stats
    | OF.Of10.Stats_reply (OF.Of10.Port_stats_rep stats) ->
      Driver_intf.Ev_port_stats stats
    | OF.Of10.Echo_request data -> Driver_intf.Ev_echo_request { xid; data }
    | OF.Of10.Echo_reply _ -> Driver_intf.Ev_echo_reply { xid }
    | OF.Of10.Error_msg { ty; code; data } ->
      Driver_intf.Ev_error (Printf.sprintf "switch error type=%d code=%d %s" ty code data)
    | OF.Of10.Features_request | OF.Of10.Flow_mod _
    | OF.Of10.Packet_out _ | OF.Of10.Port_mod _ | OF.Of10.Stats_request _
    | OF.Of10.Barrier_request | OF.Of10.Barrier_reply -> Driver_intf.Ev_other)
