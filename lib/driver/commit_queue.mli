(** Per-switch dirty-flow commit queue (the producer side of the
    commit pipeline).

    Writers mutate flow directories; fsnotify events name the flow that
    changed; the driver {!mark}s that flow key here and later {!take}s a
    batch and programs only those entries — O(dirty) per tick instead of
    the old event-triggered full rescan, which re-listed and re-stat'ed
    the entire table (O(flows), with O(flows²) deletion detection) on
    every change.

    Semantics follow the producer-state-table discipline:
    - a key marked while already pending coalesces (last-write-wins:
      the flush reads the directory's {e current} state, so N writes to
      one flow in a tick cost one flow_mod);
    - keys flush in first-marked order, bounded per batch;
    - a {e sweep} request (queue overflow, cold handshake) subsumes the
      per-key state: the consumer runs one full reconcile instead and
      {!clear}s the queue.

    Single-threaded like the rest of the simulator; no locking. *)

type t

type stats = {
  marked : int;      (** keys marked, including coalesced re-marks *)
  coalesced : int;   (** marks absorbed by an already-pending key *)
  batches : int;     (** non-empty [take]s *)
  flushed : int;     (** keys handed out across all batches *)
  sweeps : int;      (** full-reconcile requests *)
}

val create : unit -> t

val mark : t -> string -> bool
(** Record a dirty flow key. Returns [false] when the key was already
    pending (the mark coalesced), [true] when it was newly enqueued. *)

val mark_sweep : t -> unit
(** Request a full reconcile: events were lost (overflow) or the
    consumer has no baseline (cold handshake). *)

val take_sweep : t -> bool
(** Consume the sweep request, if any. *)

val sweep_pending : t -> bool
(** A sweep request is queued (without consuming it) — the complement
    [is_empty] deliberately ignores. *)

val take : ?max:int -> t -> string list
(** Up to [max] pending keys (default: all), oldest mark first; the
    keys stop being pending. *)

val pending : t -> int

val is_empty : t -> bool
(** No pending keys — says nothing about a pending sweep. *)

val clear : t -> unit
(** Drop all pending keys (after a sweep reconciled everything). *)

val stats : t -> stats
