(** OpenFlow 1.3 dialect reduced to {!Driver_intf.PROTOCOL}. Flows are
    programmed into table 0 with a single apply-actions instruction —
    the file-system schema is table-free, exactly the situation the
    paper describes when moving "from OpenFlow 1.0 to 1.3" behind an
    unchanged application API. *)

module OF = Openflow

let name = "openflow13"

let hello ~xid = OF.Of13.encode ~xid OF.Of13.Hello

let features_request ~xid = OF.Of13.encode ~xid OF.Of13.Features_request

let port_desc_request =
  Some
    (fun ~xid ->
      OF.Of13.encode ~xid (OF.Of13.Multipart_request OF.Of13.Port_desc_req))

let echo_reply ~xid ~data = OF.Of13.encode ~xid (OF.Of13.Echo_reply data)

let echo_request ~xid ~data = OF.Of13.encode ~xid (OF.Of13.Echo_request data)

let flow_add ~xid (flow : Yancfs.Flowdir.t) =
  OF.Of13.encode ~xid
    (OF.Of13.Flow_mod
       { table_id = 0;
         of_match = flow.of_match;
         cookie = flow.cookie;
         command = OF.Of13.Add;
         idle_timeout = flow.idle_timeout;
         hard_timeout = flow.hard_timeout;
         priority = flow.priority;
         buffer_id = flow.buffer_id;
         notify_removal = flow.idle_timeout > 0 || flow.hard_timeout > 0;
         instructions = [ OF.Of13.Apply_actions flow.actions ] })

let flow_delete ~xid of_match =
  OF.Of13.encode ~xid
    (OF.Of13.Flow_mod
       { table_id = 0; of_match; cookie = 0L; command = OF.Of13.Delete;
         idle_timeout = 0; hard_timeout = 0; priority = 0; buffer_id = None;
         notify_removal = false; instructions = [] })

let flow_delete_strict ~xid ~priority of_match =
  OF.Of13.encode ~xid
    (OF.Of13.Flow_mod
       { table_id = 0; of_match; cookie = 0L; command = OF.Of13.Delete_strict;
         idle_timeout = 0; hard_timeout = 0; priority; buffer_id = None;
         notify_removal = false; instructions = [] })

let packet_out ~xid ~buffer_id ~in_port ~actions ~data =
  OF.Of13.encode ~xid (OF.Of13.Packet_out { buffer_id; in_port; actions; data })

let port_mod ~xid ~port_no ~admin_down =
  OF.Of13.encode ~xid (OF.Of13.Port_mod { port_no; admin_down })

let flow_stats_request ~xid =
  OF.Of13.encode ~xid
    (OF.Of13.Multipart_request
       (OF.Of13.Flow_stats_req { table_id = None; of_match = OF.Of_match.any }))

let port_stats_request ~xid =
  OF.Of13.encode ~xid (OF.Of13.Multipart_request (OF.Of13.Port_stats_req None))

let decode_event raw : Driver_intf.event =
  match OF.Of13.decode raw with
  | Error e -> Driver_intf.Ev_error e
  | Ok (xid, msg) -> (
    match msg with
    | OF.Of13.Hello -> Driver_intf.Ev_hello
    | OF.Of13.Features_reply f ->
      Driver_intf.Ev_features
        { dpid = f.datapath_id; n_buffers = f.n_buffers; n_tables = f.n_tables;
          capabilities = f.capabilities; ports = None }
    | OF.Of13.Multipart_reply (OF.Of13.Port_desc_rep ports) ->
      Driver_intf.Ev_ports ports
    | OF.Of13.Packet_in { buffer_id; total_len; in_port; reason; data; _ } ->
      Driver_intf.Ev_packet_in { buffer_id; total_len; in_port; reason; data }
    | OF.Of13.Port_status (reason, port) -> Driver_intf.Ev_port_status (reason, port)
    | OF.Of13.Flow_removed { of_match; priority; reason; duration_s; packets; bytes; _ } ->
      Driver_intf.Ev_flow_removed
        { of_match; priority; reason; duration_s; packets; bytes }
    | OF.Of13.Multipart_reply (OF.Of13.Flow_stats_rep entries) ->
      Driver_intf.Ev_flow_stats
        (List.map (fun (e : OF.Of13.flow_stats_entry) -> e.stats) entries)
    | OF.Of13.Multipart_reply (OF.Of13.Port_stats_rep stats) ->
      Driver_intf.Ev_port_stats stats
    | OF.Of13.Echo_request data -> Driver_intf.Ev_echo_request { xid; data }
    | OF.Of13.Echo_reply _ -> Driver_intf.Ev_echo_reply { xid }
    | OF.Of13.Error_msg { ty; code; data } ->
      Driver_intf.Ev_error (Printf.sprintf "switch error type=%d code=%d %s" ty code data)
    | OF.Of13.Features_request | OF.Of13.Flow_mod _
    | OF.Of13.Packet_out _ | OF.Of13.Port_mod _ | OF.Of13.Multipart_request _
    | OF.Of13.Barrier_request | OF.Of13.Barrier_reply -> Driver_intf.Ev_other)
