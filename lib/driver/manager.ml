type version = V10 | V13

module Of10_driver = Core.Make (Of10_adapter)
module Of13_driver = Core.Make (Of13_adapter)

type attachment = {
  instance : Driver_intf.instance;
  agent : Netsim.Of_agent.t;
}

type t = {
  yfs : Yancfs.Yanc_fs.t;
  net : Netsim.Network.t;
  attachments : (int64, attachment) Hashtbl.t;
}

let create ~yfs ~net () = { yfs; net; attachments = Hashtbl.create 16 }

let detach t ~dpid =
  match Hashtbl.find_opt t.attachments dpid with
  | None -> ()
  | Some a ->
    a.instance.Driver_intf.detach ();
    Hashtbl.remove t.attachments dpid

let attach t ~dpid ~version =
  detach t ~dpid;
  match Netsim.Network.switch t.net dpid with
  | None -> invalid_arg (Printf.sprintf "Manager.attach: no switch %Ld" dpid)
  | Some sw ->
    let sw_end, ctl_end = Netsim.Control_channel.create () in
    let agent_version =
      match version with V10 -> Netsim.Of_agent.V10 | V13 -> Netsim.Of_agent.V13
    in
    let agent =
      Netsim.Of_agent.create ~telemetry:(Yancfs.Yanc_fs.telemetry t.yfs)
        ~version:agent_version ~switch:sw ~endpoint:sw_end ~network:t.net ()
    in
    let instance =
      match version with
      | V10 ->
        Of10_driver.instance
          (Of10_driver.create ~yfs:t.yfs ~endpoint:ctl_end ())
      | V13 ->
        Of13_driver.instance
          (Of13_driver.create ~yfs:t.yfs ~endpoint:ctl_end ())
    in
    Hashtbl.replace t.attachments dpid { instance; agent }

let upgrade = attach

let ordered t =
  Hashtbl.fold (fun dpid a acc -> (dpid, a) :: acc) t.attachments []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let step t ~now =
  let atts = ordered t in
  List.iter (fun (_, a) -> a.instance.Driver_intf.step ~now) atts;
  List.iter (fun (_, a) -> Netsim.Of_agent.step a.agent ~now) atts;
  List.iter (fun (_, a) -> a.instance.Driver_intf.step ~now) atts

let run_control ?(rounds = 4) t ~now =
  for _ = 1 to rounds do
    step t ~now
  done

let driver_protocol t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.protocol)
    (Hashtbl.find_opt t.attachments dpid)

let switch_name t ~dpid =
  Option.bind (Hashtbl.find_opt t.attachments dpid) (fun a ->
      a.instance.Driver_intf.switch_name ())

let attached t = List.map fst (ordered t)
