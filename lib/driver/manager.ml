type version = V10 | V13

module Of10_driver = Core.Make (Of10_adapter)
module Of13_driver = Core.Make (Of13_adapter)

type attachment = {
  instance : Driver_intf.instance;
  agent : Netsim.Of_agent.t;
  sw_end : Netsim.Control_channel.endpoint;
  ctl_end : Netsim.Control_channel.endpoint;
}

type t = {
  yfs : Yancfs.Yanc_fs.t;
  net : Netsim.Network.t;
  tuning : Driver_intf.tuning;
  seed : int;
  attachments : (int64, attachment) Hashtbl.t;
}

let create ?(tuning = Driver_intf.default_tuning) ?(seed = 0x5EED) ~yfs ~net ()
    =
  { yfs; net; tuning; seed; attachments = Hashtbl.create 16 }

let detach t ~dpid =
  match Hashtbl.find_opt t.attachments dpid with
  | None -> ()
  | Some a ->
    a.instance.Driver_intf.detach ();
    Hashtbl.remove t.attachments dpid

(* Per-switch seed: stable across runs, distinct across switches. *)
let driver_seed t dpid = t.seed lxor (Int64.to_int dpid * 1000003)

let attach t ~dpid ~version =
  detach t ~dpid;
  match Netsim.Network.switch t.net dpid with
  | None -> invalid_arg (Printf.sprintf "Manager.attach: no switch %Ld" dpid)
  | Some sw ->
    let sw_end, ctl_end = Netsim.Control_channel.create () in
    (* Both fault delays and scripted faults fire on simulated time. *)
    Netsim.Control_channel.set_clock sw_end (fun () ->
        Netsim.Network.now t.net);
    let agent_version =
      match version with V10 -> Netsim.Of_agent.V10 | V13 -> Netsim.Of_agent.V13
    in
    let agent =
      Netsim.Of_agent.create ~telemetry:(Yancfs.Yanc_fs.telemetry t.yfs)
        ~keepalive_interval:t.tuning.Driver_intf.keepalive_interval
        ~liveness_timeout:t.tuning.Driver_intf.liveness_timeout
        ~version:agent_version ~switch:sw ~endpoint:sw_end ~network:t.net ()
    in
    let seed = driver_seed t dpid in
    let instance =
      match version with
      | V10 ->
        Of10_driver.instance
          (Of10_driver.create ~tuning:t.tuning ~seed ~yfs:t.yfs
             ~endpoint:ctl_end ())
      | V13 ->
        Of13_driver.instance
          (Of13_driver.create ~tuning:t.tuning ~seed ~yfs:t.yfs
             ~endpoint:ctl_end ())
    in
    Hashtbl.replace t.attachments dpid { instance; agent; sw_end; ctl_end }

let upgrade = attach

let ordered t =
  Hashtbl.fold (fun dpid a acc -> (dpid, a) :: acc) t.attachments []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let step t ~now =
  let atts = ordered t in
  (* Fire scripted faults (hard disconnects in particular) even on
     channels neither side would otherwise touch this round. *)
  List.iter
    (fun (_, a) ->
      Netsim.Control_channel.poll a.sw_end;
      Netsim.Control_channel.poll a.ctl_end)
    atts;
  List.iter (fun (_, a) -> a.instance.Driver_intf.step ~now) atts;
  List.iter (fun (_, a) -> Netsim.Of_agent.step a.agent ~now) atts;
  List.iter (fun (_, a) -> a.instance.Driver_intf.step ~now) atts

let run_control ?(rounds = 4) t ~now =
  for _ = 1 to rounds do
    step t ~now
  done

let driver_protocol t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.protocol)
    (Hashtbl.find_opt t.attachments dpid)

let switch_name t ~dpid =
  Option.bind (Hashtbl.find_opt t.attachments dpid) (fun a ->
      a.instance.Driver_intf.switch_name ())

let attached t = List.map fst (ordered t)

let channel t ~dpid =
  Option.map
    (fun a -> a.sw_end, a.ctl_end)
    (Hashtbl.find_opt t.attachments dpid)

let switch_status t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.status ())
    (Hashtbl.find_opt t.attachments dpid)

let link_counters t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.link ())
    (Hashtbl.find_opt t.attachments dpid)

let statuses t =
  List.map (fun (dpid, a) -> dpid, a.instance.Driver_intf.status ()) (ordered t)

let any_dead t =
  List.exists (fun (_, s) -> s = Driver_intf.Dead) (statuses t)
