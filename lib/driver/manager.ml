type version = V10 | V13

module Of10_driver = Core.Make (Of10_adapter)
module Of13_driver = Core.Make (Of13_adapter)

type attachment = {
  instance : Driver_intf.instance;
  agent : Netsim.Of_agent.t;
  sw_end : Netsim.Control_channel.endpoint;
  ctl_end : Netsim.Control_channel.endpoint;
}

(* A lazy binary min-heap of (due, dpid) wake-up timers. Entries are
   never removed — a popped entry whose switch is already runnable, or
   detached, is a spurious wake costing one hash lookup. Laziness keeps
   push/pop O(log n) with no handle bookkeeping. *)
module Timers = struct
  type t = { mutable a : (float * int64) array; mutable n : int }

  let create () = { a = Array.make 64 (infinity, 0L); n = 0 }

  let size h = h.n

  let swap h i j =
    let x = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- x

  let push h due dpid =
    if h.n = Array.length h.a then begin
      let b = Array.make (2 * h.n) (infinity, 0L) in
      Array.blit h.a 0 b 0 h.n;
      h.a <- b
    end;
    h.a.(h.n) <- (due, dpid);
    let i = ref h.n in
    h.n <- h.n + 1;
    while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
      let p = (!i - 1) / 2 in
      swap h p !i;
      i := p
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 and sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.n && fst h.a.(l) < fst h.a.(!s) then s := l;
        if r < h.n && fst h.a.(r) < fst h.a.(!s) then s := r;
        if !s = !i then sifting := false
        else begin
          swap h !i !s;
          i := !s
        end
      done;
      Some top
    end
end

type t = {
  yfs : Yancfs.Yanc_fs.t;
  net : Netsim.Network.t;
  tuning : Driver_intf.tuning;
  seed : int;
  attachments : (int64, attachment) Hashtbl.t;
  (* Switches with something to do right now: woken by channel traffic,
     fsnotify events, connection-state changes, or due timers. [step]
     touches only these — the fleet can be 8k switches wide and a quiet
     tick costs O(runnable), not O(attached). *)
  runnable : (int64, unit) Hashtbl.t;
  timers : Timers.t;
  c_steps : Telemetry.Registry.counter;
  c_stepped : Telemetry.Registry.counter;
}

let create ?(tuning = Driver_intf.default_tuning) ?(seed = 0x5EED) ~yfs ~net ()
    =
  let reg = Telemetry.registry (Yancfs.Yanc_fs.telemetry yfs) in
  let t =
    { yfs; net; tuning; seed; attachments = Hashtbl.create 16;
      runnable = Hashtbl.create 16; timers = Timers.create ();
      c_steps = Telemetry.Registry.counter reg "driver.mgr.steps";
      c_stepped = Telemetry.Registry.counter reg "driver.mgr.stepped" }
  in
  Telemetry.Registry.gauge reg "driver.mgr.attached" (fun () ->
      float_of_int (Hashtbl.length t.attachments));
  Telemetry.Registry.gauge reg "driver.mgr.runnable" (fun () ->
      float_of_int (Hashtbl.length t.runnable));
  Telemetry.Registry.gauge reg "driver.mgr.timers" (fun () ->
      float_of_int (Timers.size t.timers));
  t

let detach t ~dpid =
  match Hashtbl.find_opt t.attachments dpid with
  | None -> ()
  | Some a ->
    a.instance.Driver_intf.detach ();
    Hashtbl.remove t.attachments dpid;
    Hashtbl.remove t.runnable dpid

(* Per-switch seed: stable across runs, distinct across switches. *)
let driver_seed t dpid = t.seed lxor (Int64.to_int dpid * 1000003)

let attach t ~dpid ~version =
  detach t ~dpid;
  match Netsim.Network.switch t.net dpid with
  | None -> invalid_arg (Printf.sprintf "Manager.attach: no switch %Ld" dpid)
  | Some sw ->
    let sw_end, ctl_end = Netsim.Control_channel.create () in
    (* Both fault delays and scripted faults fire on simulated time. *)
    Netsim.Control_channel.set_clock sw_end (fun () ->
        Netsim.Network.now t.net);
    (* Anything that gives either side of this switch's control channel
       work — bytes in flight, a disconnect, a fresh fault script, an
       fsnotify event at the driver — puts the switch on the runnable
       set. Wire the hooks before creating the driver: its handshake
       send is already traffic. *)
    let wake () = Hashtbl.replace t.runnable dpid () in
    Netsim.Control_channel.set_wakeup sw_end wake;
    Netsim.Control_channel.set_wakeup ctl_end wake;
    let agent_version =
      match version with V10 -> Netsim.Of_agent.V10 | V13 -> Netsim.Of_agent.V13
    in
    let agent =
      Netsim.Of_agent.create ~telemetry:(Yancfs.Yanc_fs.telemetry t.yfs)
        ~keepalive_interval:t.tuning.Driver_intf.keepalive_interval
        ~liveness_timeout:t.tuning.Driver_intf.liveness_timeout
        ~version:agent_version ~switch:sw ~endpoint:sw_end ~network:t.net ()
    in
    let seed = driver_seed t dpid in
    let instance =
      match version with
      | V10 ->
        Of10_driver.instance
          (Of10_driver.create ~wake ~tuning:t.tuning ~seed ~yfs:t.yfs
             ~endpoint:ctl_end ())
      | V13 ->
        Of13_driver.instance
          (Of13_driver.create ~wake ~tuning:t.tuning ~seed ~yfs:t.yfs
             ~endpoint:ctl_end ())
    in
    Hashtbl.replace t.attachments dpid { instance; agent; sw_end; ctl_end };
    wake ()

let upgrade = attach

let ordered t =
  Hashtbl.fold (fun dpid a acc -> (dpid, a) :: acc) t.attachments []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

(* The earliest sim time stepping this switch could matter without a
   wake: driver timers, agent timers, and delivery/fault-script gates on
   both channel endpoints. *)
let due_of a ~now =
  let d = a.instance.Driver_intf.next_due ~now in
  let d = min d (Netsim.Of_agent.next_due a.agent ~now) in
  let d = min d (Netsim.Control_channel.next_activity a.sw_end) in
  min d (Netsim.Control_channel.next_activity a.ctl_end)

let step t ~now =
  Telemetry.Registry.incr t.c_steps;
  (* Promote every due timer onto the runnable set. *)
  let rec promote () =
    match Timers.peek t.timers with
    | Some (due, _) when due <= now -> (
      match Timers.pop t.timers with
      | Some (_, dpid) ->
        if Hashtbl.mem t.attachments dpid then
          Hashtbl.replace t.runnable dpid ();
        promote ()
      | None -> ())
    | _ -> ()
  in
  promote ();
  (* Snapshot and reset: wakes fired while stepping (driver→agent sends,
     packet-ins, fs writes) land in the fresh set and are served next
     step, exactly like the old full sweep served them next round. The
     snapshot is sorted so a round remains deterministic. *)
  let dpids =
    Hashtbl.fold (fun d () acc -> d :: acc) t.runnable []
    |> List.sort Int64.compare
  in
  Hashtbl.reset t.runnable;
  let work =
    List.filter_map
      (fun d ->
        Option.map (fun a -> d, a) (Hashtbl.find_opt t.attachments d))
      dpids
  in
  (* Fire scripted faults (hard disconnects in particular) first, as the
     old full sweep did; parked channels get here via their timer. *)
  List.iter
    (fun (_, a) ->
      Netsim.Control_channel.poll a.sw_end;
      Netsim.Control_channel.poll a.ctl_end)
    work;
  List.iter
    (fun (_, a) ->
      Telemetry.Registry.incr t.c_stepped;
      a.instance.Driver_intf.step ~now)
    work;
  List.iter (fun (_, a) -> Netsim.Of_agent.step a.agent ~now) work;
  List.iter (fun (_, a) -> a.instance.Driver_intf.step ~now) work;
  (* Park each stepped switch: keep it runnable if it was re-woken or
     still holds queued work, otherwise arm a timer for its next due
     instant (none: fully event-driven, a wake will find it). *)
  List.iter
    (fun (dpid, a) ->
      if Hashtbl.mem t.attachments dpid && not (Hashtbl.mem t.runnable dpid)
      then
        if a.instance.Driver_intf.pending () then
          Hashtbl.replace t.runnable dpid ()
        else begin
          let due = due_of a ~now in
          if due <= now then Hashtbl.replace t.runnable dpid ()
          else if due < infinity then Timers.push t.timers due dpid
        end)
    work

let run_control ?(rounds = 4) t ~now =
  for _ = 1 to rounds do
    step t ~now
  done

let driver_protocol t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.protocol)
    (Hashtbl.find_opt t.attachments dpid)

let switch_name t ~dpid =
  Option.bind (Hashtbl.find_opt t.attachments dpid) (fun a ->
      a.instance.Driver_intf.switch_name ())

let attached t = List.map fst (ordered t)

let channel t ~dpid =
  Option.map
    (fun a -> a.sw_end, a.ctl_end)
    (Hashtbl.find_opt t.attachments dpid)

let switch_status t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.status ())
    (Hashtbl.find_opt t.attachments dpid)

let link_counters t ~dpid =
  Option.map
    (fun a -> a.instance.Driver_intf.link ())
    (Hashtbl.find_opt t.attachments dpid)

let statuses t =
  List.map (fun (dpid, a) -> dpid, a.instance.Driver_intf.status ()) (ordered t)

let any_dead t =
  List.exists (fun (_, s) -> s = Driver_intf.Dead) (statuses t)
