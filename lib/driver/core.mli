(** The generic controller-side driver: wire protocol on one side, the
    yanc file system on the other (paper §4.1).

    Translation, in both directions:
    - handshake → the switch's directory, attribute files and ports
    - committed flow directories (version bumps) → flow-mod add;
      removed flow directories → flow-mod delete; parse failures →
      the flow's [error] file. Changes are tracked per flow key in a
      {!Commit_queue} (fsnotify events name the flow that changed) and
      flushed one batch per step, deletions before adds — O(dirty)
      per tick. The full O(flows) reconcile survives only for the
      cold handshake, notify overflow, and the post-reconnect resync
      diff.
    - [config.port_down] writes → port-mod
    - [packet_out/] spool entries → packet-out
    - packet-ins → {!Yancfs.Eventdir.publish} into every subscribed
      application buffer
    - port-status → port files; flow-removed (timeouts) → flow
      directory removal; periodic stats → [counters/] files

    The driver learns of file-system activity through fsnotify watches,
    like any other yanc application.

    The driver also owns the connection's survival
    ({!Driver_intf.status}): echo keepalives with a liveness timeout
    while connected, handshake retries under exponential backoff while
    reconnecting, and a flow-table resynchronization (stats-reply diff
    against the committed flow directories) after every re-handshake. *)

module Make (P : Driver_intf.PROTOCOL) : sig
  type t

  val create :
    ?wake:(unit -> unit) -> ?stats_interval:float ->
    ?tuning:Driver_intf.tuning -> ?seed:int ->
    yfs:Yancfs.Yanc_fs.t ->
    endpoint:Netsim.Control_channel.endpoint -> unit -> t
  (** Sends hello + features-request immediately. [wake] is fired
      whenever the driver's fsnotify queue gains an event — a parked
      driver must be re-stepped to see it ({!Manager} wires this into
      its runnable set). [stats_interval] (default
      [tuning.stats_interval], 0 to disable) paces counter refresh.
      [tuning] sets the
      keepalive/backoff policy; [seed] drives the backoff jitter PRNG —
      the same seed reproduces the same retry schedule. *)

  val step : t -> now:float -> unit
  (** Drain the control channel and the fsnotify queue, run the
      keepalive/reconnect state machine, then reconcile. *)

  val switch_name : t -> string option
  val connected : t -> bool

  val status : t -> Driver_intf.status
  (** Mirrored into the switch's [status] file on every transition. *)

  val link_counters : t -> Driver_intf.link_counters

  val flows_installed : t -> int
  (** Flow-mod adds sent so far (bench instrumentation). *)

  val detach : t -> unit
  (** Stop watching the file system (the switch directory stays). *)

  val instance : t -> Driver_intf.instance
end
