module Y = Yancfs
module OF = Openflow

(* Hardware rule identity, (match, priority), as a hashtable key. The
   polymorphic [Hashtbl.hash] samples only the first few scalar nodes of
   a value — on an [Of_match.t], whose record leads with a run of [None]
   wildcards, every distinct match hashes alike and the table degrades
   to one linear bucket. Hash through the packed image instead, which
   folds in exactly the constrained header bits. *)
module Rule_id = struct
  type t = OF.Of_match.t * int

  let equal (m1, p1) (m2, p2) = p1 = p2 && OF.Of_match.equal m1 m2

  let hash (m, p) =
    let r = OF.Of_match.pack_rule m in
    (OF.Of_match.Packed.hash r.OF.Of_match.Packed.mask * 31)
    + (OF.Of_match.Packed.hash r.OF.Of_match.Packed.value * 17)
    + p
end

module Id_tbl = Hashtbl.Make (Rule_id)

module Make (P : Driver_intf.PROTOCOL) = struct
  (* [ino] is the flow directory's inode at install time: a directory
     deleted and re-created under the same name is a different object
     with a fresh version chain, and the inode is what tells the two
     apart when the new chain's counter sits at or below the cached
     one. *)
  type flow_cache_entry = { flow : Y.Flowdir.t; ino : int }

  type t = {
    yfs : Y.Yanc_fs.t;
    telemetry : Telemetry.t;
    endpoint : Netsim.Control_channel.endpoint;
    framing : OF.Framing.t;
    notifier : Fsnotify.Notifier.t;
    stats_interval : float;
    tuning : Driver_intf.tuning;
    backoff : Backoff.t;
    mutable next_xid : int32;
    mutable switch_name : string option;
    mutable connected : bool;
    (* Dirty flow keys, coalesced and flushed one batch per step. *)
    commits : Commit_queue.t;
    mutable ports_dirty : bool;
    mutable spool_dirty : bool;
    mutable last_stats : float;
    mutable installed : int;
    (* Event-directory subscribers exist (checked at most once per step
       while false): when none do, packet-ins skip the per-event file
       writes entirely and ride the {!Y.Pktin} ring alone. *)
    mutable eventdir_subs : bool;
    mutable steps : int;
    mutable subs_checked_step : int;
    (* --- connection survival ------------------------------------------- *)
    mutable status : Driver_intf.status;
    mutable last_rx : float;          (* last byte received (-inf = never) *)
    mutable next_keepalive : float;
    mutable echo_outstanding : (int32 * float) option;
    mutable seen_generation : int;    (* channel generation last synced to *)
    mutable next_attempt : float;     (* next handshake (re)send *)
    mutable episode_retries : int;    (* attempts in the current outage *)
    mutable handshakes : int;         (* hello+features sends, ever *)
    mutable resyncing : bool;
    mutable resync_sent : float;
    mutable was_connected : bool;     (* completed a handshake before *)
    mutable c_disconnects : int;
    mutable c_retries : int;
    mutable c_resyncs : int;
    mutable c_resync_installs : int;
    mutable c_resync_deletes : int;
    mutable c_keepalives : int;
    (* registry series shared by every driver (one namespace) *)
    m_disconnects : Telemetry.Registry.counter;
    m_retries : Telemetry.Registry.counter;
    m_resyncs : Telemetry.Registry.counter;
    m_resync_installs : Telemetry.Registry.counter;
    m_resync_deletes : Telemetry.Registry.counter;
    m_keepalives : Telemetry.Registry.counter;
    m_fs_errors : Telemetry.Registry.counter;
    m_commit_batches : Telemetry.Registry.counter;
    m_commit_keys : Telemetry.Registry.counter;
    m_commit_coalesced : Telemetry.Registry.counter;
    m_commit_adds : Telemetry.Registry.counter;
    m_commit_deletes : Telemetry.Registry.counter;
    m_commit_sweeps : Telemetry.Registry.counter;
    m_commit_latency : Telemetry.Registry.histogram;
    (* Last committed configuration per flow directory name. *)
    cache : (string, flow_cache_entry) Hashtbl.t;
    (* Reverse index over [cache]: hardware rule identity back to the
       directory names claiming it, so stats replies and flow-removed
       events resolve in O(1) instead of folding the whole cache. A
       list because nothing stops two flow files from committing the
       same (match, priority) — hardware holds one entry, the head is
       the name whose actions it carries (most recently installed). *)
    by_match : string list Id_tbl.t;
    (* config.port_down value last pushed to hardware, per port. *)
    pushed_admin : (int, bool) Hashtbl.t;
  }

  let xid t =
    let x = t.next_xid in
    t.next_xid <- Int32.add x 1l;
    x

  let send t bytes = Netsim.Control_channel.send t.endpoint bytes

  (* Every driver-side file-system write goes through here: failures
     used to vanish in [ignore]; now they land in the shared
     [driver.fs_errors] counter (and the log) so a filled-up or
     misbehaving tree is visible instead of silent. *)
  let bb_now t = Telemetry.Tracer.now (Telemetry.tracer t.telemetry)

  let bb_who t = match t.switch_name with Some n -> n | None -> P.name

  let fs_checked t ~what = function
    | Ok _ -> ()
    | Error e ->
      Telemetry.Registry.incr t.m_fs_errors;
      Telemetry.Blackbox.fault
        (Telemetry.blackbox t.telemetry)
        ~at:(bb_now t) ~who:(bb_who t)
        ~what:(Printf.sprintf "fs write failed (%s): %s" what
                 (Vfs.Errno.message e));
      Logs.warn (fun m ->
          m "driver[%s]: fs write failed (%s): %s" P.name what
            (Vfs.Errno.message e))

  (* Every control-channel transition lands in the flight recorder —
     the status history is exactly what a takeover post-mortem reads. *)
  let set_status t status =
    if t.status <> status then begin
      let prev = t.status in
      t.status <- status;
      Telemetry.Blackbox.status
        (Telemetry.blackbox t.telemetry)
        ~at:(bb_now t) ~who:(bb_who t)
        ~from_:(Driver_intf.status_to_string prev)
        ~to_:(Driver_intf.status_to_string status);
      match t.switch_name with
      | Some name ->
        fs_checked t ~what:"switch status"
          (Y.Yanc_fs.set_switch_status t.yfs ~switch:name
             (Driver_intf.status_to_string status))
      | None -> ()
    end

  let idx_add t id flow_name =
    let others =
      match Id_tbl.find_opt t.by_match id with
      | Some names -> List.filter (fun n -> not (String.equal n flow_name)) names
      | None -> []
    in
    Id_tbl.replace t.by_match id (flow_name :: others)

  let idx_remove t id flow_name =
    match Id_tbl.find_opt t.by_match id with
    | None -> ()
    | Some names -> (
      match List.filter (fun n -> not (String.equal n flow_name)) names with
      | [] -> Id_tbl.remove t.by_match id
      | rest -> Id_tbl.replace t.by_match id rest)

  (* The name whose hardware entry [id] currently is (or should be). *)
  let claimant t id =
    match Id_tbl.find_opt t.by_match id with
    | Some (name :: _) -> Some name
    | Some [] | None -> None

  let cache_set t flow_name ~ino (flow : Y.Flowdir.t) =
    (match Hashtbl.find_opt t.cache flow_name with
    | Some { flow = old; _ } ->
      idx_remove t (old.of_match, old.priority) flow_name
    | None -> ());
    Hashtbl.replace t.cache flow_name { flow; ino };
    idx_add t (flow.of_match, flow.priority) flow_name

  let cache_remove t flow_name =
    match Hashtbl.find_opt t.cache flow_name with
    | None -> ()
    | Some { flow; _ } ->
      Hashtbl.remove t.cache flow_name;
      idx_remove t (flow.of_match, flow.priority) flow_name

  let send_handshake t =
    OF.Framing.reset t.framing;
    t.seen_generation <- Netsim.Control_channel.generation t.endpoint;
    send t (P.hello ~xid:(xid t));
    send t (P.features_request ~xid:(xid t));
    if t.handshakes > 0 then begin
      t.c_retries <- t.c_retries + 1;
      Telemetry.Registry.incr t.m_retries
    end;
    t.handshakes <- t.handshakes + 1

  let create ?wake ?stats_interval ?(tuning = Driver_intf.default_tuning)
      ?(seed = 0x5EED) ~yfs ~endpoint () =
    let stats_interval =
      match stats_interval with
      | Some s -> s
      | None -> tuning.Driver_intf.stats_interval
    in
    let telemetry = Y.Yanc_fs.telemetry yfs in
    let reg = Telemetry.registry telemetry in
    let prng = Netsim.Prng.create ~seed in
    let t =
      { yfs; telemetry; endpoint;
        framing = OF.Framing.create ();
        notifier = Fsnotify.Notifier.create (Y.Yanc_fs.fs yfs);
        stats_interval; tuning;
        backoff =
          Backoff.create ~base:tuning.Driver_intf.backoff_base
            ~cap:tuning.Driver_intf.backoff_cap
            ~jitter:tuning.Driver_intf.backoff_jitter ~prng ();
        next_xid = 1l; switch_name = None; connected = false;
        commits = Commit_queue.create ();
        ports_dirty = false; spool_dirty = false;
        last_stats = 0.; installed = 0;
        eventdir_subs = false; steps = 0; subs_checked_step = -1;
        status = Driver_intf.Handshaking; last_rx = neg_infinity;
        next_keepalive = neg_infinity; echo_outstanding = None;
        seen_generation = Netsim.Control_channel.generation endpoint;
        next_attempt = neg_infinity; episode_retries = 0; handshakes = 0;
        resyncing = false; resync_sent = neg_infinity; was_connected = false;
        c_disconnects = 0; c_retries = 0; c_resyncs = 0;
        c_resync_installs = 0; c_resync_deletes = 0; c_keepalives = 0;
        m_disconnects = Telemetry.Registry.counter reg "driver.disconnects";
        m_retries = Telemetry.Registry.counter reg "driver.retries";
        m_resyncs = Telemetry.Registry.counter reg "driver.resyncs";
        m_resync_installs =
          Telemetry.Registry.counter reg "driver.resync_installs";
        m_resync_deletes =
          Telemetry.Registry.counter reg "driver.resync_deletes";
        m_keepalives = Telemetry.Registry.counter reg "driver.keepalives_sent";
        m_fs_errors = Telemetry.Registry.counter reg "driver.fs_errors";
        m_commit_batches = Telemetry.Registry.counter reg "driver.commit.batches";
        m_commit_keys = Telemetry.Registry.counter reg "driver.commit.keys";
        m_commit_coalesced =
          Telemetry.Registry.counter reg "driver.commit.coalesced";
        m_commit_adds = Telemetry.Registry.counter reg "driver.commit.adds";
        m_commit_deletes = Telemetry.Registry.counter reg "driver.commit.deletes";
        m_commit_sweeps = Telemetry.Registry.counter reg "driver.commit.sweeps";
        m_commit_latency =
          Telemetry.Registry.histogram reg "driver.commit.latency";
        cache = Hashtbl.create 64;
        by_match = Id_tbl.create 64;
        pushed_admin = Hashtbl.create 8 }
    in
    (* File-system activity (app flow writes, spool entries, admin port
       flips) must un-park a sleeping driver just like channel bytes
       do. *)
    (match wake with
    | Some f -> Fsnotify.Notifier.set_wakeup t.notifier f
    | None -> ());
    send_handshake t;
    t

  let switch_name t = t.switch_name

  let connected t = t.connected

  let status t = t.status

  let link_counters t =
    { Driver_intf.disconnects = t.c_disconnects; retries = t.c_retries;
      resyncs = t.c_resyncs; resync_installs = t.c_resync_installs;
      resync_deletes = t.c_resync_deletes; keepalives_sent = t.c_keepalives }

  let flows_installed t = t.installed

  let root t = Y.Yanc_fs.root t.yfs

  let fs t = Y.Yanc_fs.fs t.yfs

  let cred = Vfs.Cred.root

  (* --- switch-to-controller events ---------------------------------------- *)

  let on_features t ~now (dpid, n_buffers, n_tables, capabilities, ports) =
    let name = Y.Yanc_fs.switch_name_of_dpid dpid in
    t.switch_name <- Some name;
    fs_checked t ~what:"switch dir"
      (Y.Yanc_fs.add_switch t.yfs ~name ~dpid ~protocol:P.name ~n_buffers
         ~n_tables
         ~capabilities:(OF.Of_types.Capabilities.to_list capabilities)
         ~actions:
           [ "output"; "set_dl_src"; "set_dl_dst"; "set_vlan"; "set_vlan_pcp";
             "strip_vlan"; "set_nw_src"; "set_nw_dst"; "set_nw_tos";
             "set_tp_src"; "set_tp_dst" ]);
    (match ports with
    | Some ports ->
      List.iter
        (fun p ->
          fs_checked t ~what:"port dir" (Y.Yanc_fs.set_port t.yfs ~switch:name p))
        ports
    | None -> (
      match P.port_desc_request with
      | Some req -> send t (req ~xid:(xid t))
      | None -> ()));
    if not t.was_connected then begin
      (* Watch the parts of the switch directory the driver reacts to.
         Watches survive reconnects; adding them again on every
         re-handshake would double-deliver each event. *)
      let watch path =
        ignore
          (Fsnotify.Notifier.add_watch ~recursive:true t.notifier path
             Fsnotify.Notifier.all)
      in
      watch (Y.Layout.flows_dir ~root:(root t) name);
      watch (Y.Layout.ports_dir ~root:(root t) name);
      watch (Y.Layout.packet_out_dir ~root:(root t) name);
      Fsnotify.Notifier.register_metrics t.notifier
        ~prefix:(Printf.sprintf "driver.%s" name)
        (Telemetry.registry t.telemetry);
      Telemetry.Registry.gauge
        (Telemetry.registry t.telemetry)
        (Printf.sprintf "driver.%s.status" name)
        (fun () ->
          match t.status with
          | Driver_intf.Handshaking -> 0.
          | Driver_intf.Connected -> 1.
          | Driver_intf.Degraded -> 2.
          | Driver_intf.Reconnecting -> 3.
          | Driver_intf.Dead -> 4.);
      Telemetry.Registry.gauge
        (Telemetry.registry t.telemetry)
        (Printf.sprintf "driver.%s.commit.pending" name)
        (fun () -> float_of_int (Commit_queue.pending t.commits))
    end;
    t.connected <- true;
    set_status t Driver_intf.Connected;
    Backoff.reset t.backoff;
    t.episode_retries <- 0;
    t.next_attempt <- neg_infinity;
    t.next_keepalive <- neg_infinity;
    t.echo_outstanding <- None;
    t.last_rx <- now;
    if t.was_connected then begin
      (* Re-handshake after an outage: the switch kept its table while
         we were gone (fail secure) and the file system kept changing.
         Ask the switch what it actually holds, then diff in resync. *)
      t.resyncing <- true;
      t.resync_sent <- now;
      send t (P.flow_stats_request ~xid:(xid t))
    end;
    t.was_connected <- true;
    (* Pick up anything written before the handshake finished. The cold
       pickup has no per-key trail to replay, so it is a sweep — the
       last full-scan path besides resync. *)
    Commit_queue.mark_sweep t.commits;
    t.ports_dirty <- true;
    t.spool_dirty <- true

  let find_flow_by_match t of_match priority =
    claimant t (of_match, priority)

  (* After a re-handshake the switch's table and the file system may
     have drifted apart: flows committed during the outage were never
     installed, and rules the switch still carries may have been
     deleted from the tree. The switch's own report (the first
     flow_stats reply after reconnect) is diffed against the committed
     flow directories — strays are removed with strict deletes so a
     same-match rule at another priority survives, gaps re-installed.
     Buffer references are dropped on re-install: they name packets in
     a buffer pool that did not survive the outage. *)
  let resync t ~name (stats : OF.Of_types.Flow_stats.t list) =
    t.resyncing <- false;
    t.c_resyncs <- t.c_resyncs + 1;
    Telemetry.Registry.incr t.m_resyncs;
    let fs_flows =
      List.filter_map
        (fun flow_name ->
          match Y.Yanc_fs.read_flow t.yfs ~cred ~switch:name flow_name with
          | Ok (flow : Y.Flowdir.t) ->
            Some (flow_name, { flow with buffer_id = None })
          | Error _ -> None)
        (Y.Yanc_fs.flow_names t.yfs ~cred name)
    in
    let committed (s : OF.Of_types.Flow_stats.t) =
      List.exists
        (fun (_, (f : Y.Flowdir.t)) ->
          OF.Of_match.equal f.of_match s.of_match && f.priority = s.priority)
        fs_flows
    in
    List.iter
      (fun (s : OF.Of_types.Flow_stats.t) ->
        if not (committed s) then begin
          send t
            (P.flow_delete_strict ~xid:(xid t) ~priority:s.priority s.of_match);
          t.c_resync_deletes <- t.c_resync_deletes + 1;
          Telemetry.Registry.incr t.m_resync_deletes
        end)
      stats;
    let on_switch (f : Y.Flowdir.t) =
      List.exists
        (fun (s : OF.Of_types.Flow_stats.t) ->
          OF.Of_match.equal s.of_match f.of_match && s.priority = f.priority)
        stats
    in
    List.iter
      (fun (flow_name, (flow : Y.Flowdir.t)) ->
        if not (on_switch flow) then begin
          send t (P.flow_add ~xid:(xid t) flow);
          t.installed <- t.installed + 1;
          t.c_resync_installs <- t.c_resync_installs + 1;
          Telemetry.Registry.incr t.m_resync_installs
        end;
        let dir = Y.Layout.flow ~root:(root t) ~switch:name flow_name in
        let ino =
          match Vfs.Fs.stat (fs t) ~cred dir with
          | Ok st -> st.Vfs.Fs.ino
          | Error _ -> -1
        in
        cache_set t flow_name ~ino flow)
      fs_flows

  let on_event t ~now ev =
    match (ev : Driver_intf.event) with
    | Driver_intf.Ev_hello | Driver_intf.Ev_other -> ()
    | Driver_intf.Ev_error e -> Logs.warn (fun m -> m "driver[%s]: %s" P.name e)
    | Driver_intf.Ev_echo_request { xid; data } -> send t (P.echo_reply ~xid ~data)
    | Driver_intf.Ev_echo_reply _ ->
      (* Any reply proves the peer is processing our requests. *)
      t.echo_outstanding <- None
    | Driver_intf.Ev_features { dpid; n_buffers; n_tables; capabilities; ports } ->
      on_features t ~now (dpid, n_buffers, n_tables, capabilities, ports)
    | Driver_intf.Ev_ports ports -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        List.iter
          (fun p ->
            fs_checked t ~what:"port dir"
              (Y.Yanc_fs.set_port t.yfs ~switch:name p))
          ports)
    | Driver_intf.Ev_packet_in { buffer_id; total_len; in_port; reason; data } -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        (* The packet-in is where a request enters the controller: mint
           its trace here, publish under a span, and let consumers pick
           the trace up by sequence number. The pooled ring is always
           fed (it is free when nobody subscribed); the per-event file
           directories are only written when some application actually
           reads them — rechecked at most once a step while negative,
           so a storm with ring-only consumers never pays the eventdir
           fan-out, and a late [Eventdir.subscribe] is noticed on the
           next step. *)
        if (not t.eventdir_subs) && t.subs_checked_step <> t.steps then begin
          t.subs_checked_step <- t.steps;
          t.eventdir_subs <-
            Y.Eventdir.subscribers (fs t) ~root:(root t) ~switch:name <> []
        end;
        let tracer = Telemetry.tracer t.telemetry in
        ignore (Telemetry.Tracer.fresh tracer);
        Telemetry.Tracer.span tracer ~stage:"driver.packet_in" (fun () ->
            ignore
              (Y.Pktin.publish (Y.Yanc_fs.pktin t.yfs) ~switch:name ~in_port
                 ~reason ~buffer_id ~total_len ~data ~at:now);
            if t.eventdir_subs then
              let written =
                Y.Eventdir.publish ~telemetry:t.telemetry (fs t) ~root:(root t)
                  ~switch:name ~in_port ~reason ~buffer_id ~total_len ~data
              in
              (* All subscribers gone: stop paying for the readdir until
                 someone shows up again. *)
              if written = 0 then t.eventdir_subs <- false);
        Telemetry.Tracer.clear tracer)
    | Driver_intf.Ev_port_status (reason, port) -> (
      match t.switch_name with
      | None -> ()
      | Some name -> (
        match reason with
        | OF.Of_types.Port_delete ->
          fs_checked t ~what:"port removal"
            (Y.Yanc_fs.remove_port t.yfs ~switch:name port.port_no)
        | OF.Of_types.Port_add | OF.Of_types.Port_modify ->
          fs_checked t ~what:"port dir"
            (Y.Yanc_fs.set_port t.yfs ~switch:name port)))
    | Driver_intf.Ev_flow_removed { of_match; priority; _ } -> (
      match t.switch_name with
      | None -> ()
      | Some name -> (
        match find_flow_by_match t of_match priority with
        | None -> ()
        | Some flow_name ->
          cache_remove t flow_name;
          fs_checked t ~what:"flow dir removal"
            (Y.Yanc_fs.delete_flow t.yfs ~cred ~switch:name flow_name)))
    | Driver_intf.Ev_flow_stats stats -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        if t.resyncing then resync t ~name stats;
        List.iter
          (fun (s : OF.Of_types.Flow_stats.t) ->
            match find_flow_by_match t s.of_match s.priority with
            | None -> ()
            | Some flow_name ->
              fs_checked t ~what:"flow counters"
                (Y.Flowdir.write_counters (fs t) ~cred
                   (Y.Layout.flow ~root:(root t) ~switch:name flow_name)
                   ~packets:s.packets ~bytes:s.bytes ~duration_s:s.duration_s))
          stats)
    | Driver_intf.Ev_port_stats stats -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        List.iter
          (fun (s : OF.Of_types.Port_stats.t) ->
            fs_checked t ~what:"port counters"
              (Y.Yanc_fs.write_port_counters t.yfs ~switch:name
                 ~port:s.port_no s))
          stats)

  (* --- file system to switch ------------------------------------------------ *)

  (* Resolve one dirty flow key against the commit cache, appending the
     required hardware work to [deletes]/[adds]. Pure bookkeeping plus
     directory reads; the wire traffic happens in [send_plan], which
     orders every delete before any add — a renamed flow directory is a
     deletion plus an addition of the same rule, and deleting by match
     after the re-add would wipe the new entry. *)
  (* Retire [flow_name]'s claim on hardware identity [id] and schedule
     the strict delete. Whether another file still claims the identity
     is decided in [send_plan], after the whole batch has resolved. *)
  let delete_entry t ~deletes flow_name id =
    idx_remove t id flow_name;
    deletes := id :: !deletes

  let resolve_key t ~switch ~deletes ~adds flow_name =
    let dir = Y.Layout.flow ~root:(root t) ~switch flow_name in
    match Vfs.Fs.stat (fs t) ~cred dir with
    | Error _ -> (
      (* Directory gone: delete the hardware entry we committed for it
         (an uncommitted or unknown name needs nothing). *)
      match Hashtbl.find_opt t.cache flow_name with
      | Some { flow; _ } ->
        cache_remove t flow_name;
        delete_entry t ~deletes flow_name (flow.of_match, flow.priority)
      | None -> ())
    | Ok st -> (
      match Y.Flowdir.read_version (fs t) ~cred dir with
      | None -> () (* not committed yet *)
      | Some version ->
        let cached = Hashtbl.find_opt t.cache flow_name in
        (* The version file alone can lie: delete + re-create inside one
           tick restarts the chain below the cached counter. The inode
           disambiguates — a re-created directory is a new object, and
           whatever it commits is news regardless of the number. *)
        let stale =
          match cached with
          | Some { flow; ino } -> flow.version < version || ino <> st.Vfs.Fs.ino
          | None -> true
        in
        if stale then (
          match Y.Yanc_fs.read_flow t.yfs ~cred ~switch flow_name with
          | Error msg ->
            fs_checked t ~what:"flow error file"
              (Y.Flowdir.set_error (fs t) ~cred dir (Some msg))
          | Ok flow ->
            fs_checked t ~what:"flow error file"
              (Y.Flowdir.set_error (fs t) ~cred dir None);
            (* Rule identity changed: the old hardware entry must go. *)
            (match cached with
            | Some { flow = old; _ }
              when not
                     (OF.Of_match.equal old.of_match flow.of_match
                     && old.priority = flow.priority) ->
              delete_entry t ~deletes flow_name (old.of_match, old.priority)
            | Some _ | None -> ());
            adds := (flow_name, dir, flow) :: !adds))

  let install t ~switch flow_name dir (flow : Y.Flowdir.t) =
    let tracer = Telemetry.tracer t.telemetry in
    ignore
      (Telemetry.Tracer.resume tracer
         (Y.Layout.trace_key_flow ~switch flow_name));
    let add_xid = xid t in
    Telemetry.Tracer.span tracer ~stage:"driver.flow_mod"
      (fun () -> send t (P.flow_add ~xid:add_xid flow));
    (* The agent resumes by xid when it installs the entry. *)
    Telemetry.Tracer.stamp tracer (Netsim.Of_agent.trace_key_xid add_xid);
    Telemetry.Tracer.clear tracer;
    t.installed <- t.installed + 1;
    (* The buffer reference is one-shot. *)
    (if flow.buffer_id <> None then
       let bpath = Vfs.Path.child dir "buffer_id" in
       fs_checked t ~what:"buffer_id unlink" (Vfs.Fs.unlink (fs t) ~cred bpath));
    let ino =
      match Vfs.Fs.stat (fs t) ~cred dir with
      | Ok st -> st.Vfs.Fs.ino
      | Error _ -> -1
    in
    cache_set t flow_name ~ino { flow with buffer_id = None }

  let send_plan t ~switch ~deletes ~adds =
    (* Strict deletes: a rule's identity is (match, priority), and a
       wildcard delete would take out siblings sharing the match. *)
    let deleted = Id_tbl.create 8 in
    List.iter
      (fun (of_match, priority) ->
        if not (Id_tbl.mem deleted (of_match, priority)) then begin
          Id_tbl.replace deleted (of_match, priority) ();
          send t (P.flow_delete_strict ~xid:(xid t) ~priority of_match);
          Telemetry.Registry.incr t.m_commit_deletes
        end)
      (List.rev !deletes);
    (* An identity we just deleted may still be claimed by a surviving
       flow file (nothing stops two directories committing the same
       match and priority). Reinstall the survivor's config before the
       regular adds, so a newer config installed for the same identity
       in this very batch still wins. *)
    Id_tbl.iter
      (fun id () ->
        match claimant t id with
        | None -> ()
        | Some survivor -> (
          match Hashtbl.find_opt t.cache survivor with
          | Some { flow; _ } ->
            install t ~switch survivor
              (Y.Layout.flow ~root:(root t) ~switch survivor)
              flow;
            Telemetry.Registry.incr t.m_commit_adds
          | None -> ()))
      deleted;
    List.iter
      (fun (flow_name, dir, flow) ->
        install t ~switch flow_name dir flow;
        Telemetry.Registry.incr t.m_commit_adds)
      (List.rev !adds)

  (* The retained O(flows) path: cold handshake, notify overflow. Every
     other commit goes through [flush_commits] below. *)
  let reconcile_flows t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      Telemetry.Registry.incr t.m_commit_sweeps;
      let live = Y.Yanc_fs.flow_name_set t.yfs ~cred name in
      let deletes = ref [] and adds = ref [] in
      Hashtbl.fold
        (fun flow_name _ acc ->
          if Y.Yanc_fs.Name_set.mem flow_name live then acc
          else flow_name :: acc)
        t.cache []
      |> List.iter (fun flow_name ->
             match Hashtbl.find_opt t.cache flow_name with
             | Some { flow; _ } ->
               cache_remove t flow_name;
               delete_entry t ~deletes flow_name (flow.of_match, flow.priority)
             | None -> ());
      Y.Yanc_fs.Name_set.iter
        (fun flow_name ->
          resolve_key t ~switch:name ~deletes ~adds flow_name)
        live;
      send_plan t ~switch:name ~deletes ~adds

  (* Bounded flush: one batch of dirty keys per step, so a flow-mod
     storm spreads over successive steps instead of monopolizing one. *)
  let commit_batch = 1024

  let flush_commits t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      if not (Commit_queue.is_empty t.commits) then begin
        let t0 = Unix.gettimeofday () in
        let batch = Commit_queue.take ~max:commit_batch t.commits in
        let deletes = ref [] and adds = ref [] in
        List.iter (resolve_key t ~switch:name ~deletes ~adds) batch;
        send_plan t ~switch:name ~deletes ~adds;
        Telemetry.Registry.incr t.m_commit_batches;
        Telemetry.Registry.add t.m_commit_keys (List.length batch);
        Telemetry.Registry.observe t.m_commit_latency
          (Unix.gettimeofday () -. t0)
      end

  let reconcile_ports t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      List.iter
        (fun port_no ->
          match Y.Yanc_fs.read_port t.yfs ~cred ~switch:name port_no with
          | Error _ -> ()
          | Ok info ->
            let pushed = Hashtbl.find_opt t.pushed_admin port_no in
            if pushed <> Some info.admin_down then begin
              Hashtbl.replace t.pushed_admin port_no info.admin_down;
              send t (P.port_mod ~xid:(xid t) ~port_no ~admin_down:info.admin_down)
            end)
        (Y.Yanc_fs.port_numbers t.yfs ~cred name)

  let drain_spool t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      List.iter
        (fun (req : Y.Outdir.request) ->
          send t
            (P.packet_out ~xid:(xid t) ~buffer_id:req.buffer_id
               ~in_port:req.in_port ~actions:req.actions ~data:req.data))
        (Y.Outdir.consume (fs t) ~root:(root t) ~switch:name)

  (* Bounded drain: a flow-mod storm is spread over successive steps
     instead of monopolizing one; dirty state persists, and events
     left queued re-trigger classification next step. *)
  let event_batch = 4096

  let classify_fs_events t =
    match t.switch_name with
    | None -> ignore (Fsnotify.Notifier.read_events ~max:event_batch t.notifier)
    | Some name ->
      let flows = Y.Layout.flows_dir ~root:(root t) name in
      let ports = Y.Layout.ports_dir ~root:(root t) name in
      let spool = Y.Layout.packet_out_dir ~root:(root t) name in
      List.iter
        (fun (ev : Fsnotify.Event.t) ->
          (* A queue overflow means events were lost: rescan everything,
             as inotify consumers must on IN_Q_OVERFLOW. *)
          if ev.kind = Fsnotify.Event.Overflow then begin
            Commit_queue.mark_sweep t.commits;
            t.ports_dirty <- true;
            t.spool_dirty <- true
          end
          else
            match Vfs.Path.strip_prefix ~prefix:flows ev.path with
            | Some rest -> (
              (* Events carry the changed object's full path, so the
                 first component under flows/ names the dirty flow. *)
              match Vfs.Path.components rest with
              | flow :: inner -> (
                match inner with
                | "counters" :: _ -> () (* driver's own writeback *)
                | [ base ] when base = Y.Layout.error_file -> ()
                | _ ->
                  if not (Commit_queue.mark t.commits flow) then
                    Telemetry.Registry.incr t.m_commit_coalesced)
              | [] ->
                (* The flows directory itself changed (created, moved):
                   no per-key trail to follow — sweep. *)
                Commit_queue.mark_sweep t.commits)
            | None ->
              if Vfs.Path.is_prefix spool ev.path then t.spool_dirty <- true
              else if Vfs.Path.is_prefix ports ev.path then begin
                match Vfs.Path.basename ev.path with
                | Some base when base = Y.Layout.config_port_down ->
                  t.ports_dirty <- true
                | _ -> ()
              end)
        (Fsnotify.Notifier.read_events ~max:event_batch t.notifier)

  (* The survival half of the state machine: handshake retries with
     backoff while Handshaking/Reconnecting, echo keepalives and the
     liveness verdict while Connected/Degraded. Runs once per step,
     after received traffic has been processed. *)
  let liveness t ~now =
    match t.status with
    | Driver_intf.Dead -> ()
    | Driver_intf.Handshaking | Driver_intf.Reconnecting ->
      if t.next_attempt = neg_infinity then
        t.next_attempt <- now +. Backoff.next t.backoff
      else if now >= t.next_attempt then
        if t.episode_retries >= t.tuning.Driver_intf.max_retries then
          set_status t Driver_intf.Dead
        else begin
          t.episode_retries <- t.episode_retries + 1;
          (* Bounce the transport even when it still looks connected: a
             soft failure may have desynchronized the peer's framer, and
             only a generation bump makes both sides reset. *)
          if Netsim.Control_channel.connected t.endpoint then
            Netsim.Control_channel.disconnect t.endpoint;
          let up = Netsim.Control_channel.reconnect t.endpoint in
          if up then send_handshake t
          else begin
            (* The transport refused us; the attempt still consumed a
               slot in the schedule. *)
            t.c_retries <- t.c_retries + 1;
            Telemetry.Registry.incr t.m_retries
          end;
          t.next_attempt <- now +. Backoff.next t.backoff
        end
    | Driver_intf.Connected | Driver_intf.Degraded ->
      if t.last_rx = neg_infinity then t.last_rx <- now;
      (* The peer-is-gone verdict. A hard transport loss shows up
         immediately; a silent one only through the xid-tracked echo:
         the outstanding probe's age can grow past the timeout only if
         replies have genuinely stopped, so coarse simulation ticks
         (where [now] jumps by more than the timeout between steps)
         never produce a false positive the way a last-byte-seen clock
         would. *)
      let declare_gone () =
        t.connected <- false;
        t.c_disconnects <- t.c_disconnects + 1;
        Telemetry.Registry.incr t.m_disconnects;
        Telemetry.Blackbox.fault
          (Telemetry.blackbox t.telemetry)
          ~at:(bb_now t) ~who:(bb_who t) ~what:"peer declared gone";
        t.echo_outstanding <- None;
        t.resyncing <- false;
        t.next_keepalive <- neg_infinity;
        Backoff.reset t.backoff;
        t.episode_retries <- 0;
        t.next_attempt <- now;
        set_status t Driver_intf.Reconnecting
      in
      if not (Netsim.Control_channel.connected t.endpoint) then declare_gone ()
      else begin
        (if t.resyncing
            && now -. t.resync_sent > t.tuning.Driver_intf.liveness_timeout
         then begin
           (* The resync stats request (or its reply) was lost. *)
           t.resync_sent <- now;
           t.c_retries <- t.c_retries + 1;
           Telemetry.Registry.incr t.m_retries;
           send t (P.flow_stats_request ~xid:(xid t))
         end);
        let iv = t.tuning.Driver_intf.keepalive_interval in
        if iv > 0. then begin
          if t.next_keepalive = neg_infinity then t.next_keepalive <- now +. iv
          else if now >= t.next_keepalive then begin
            let x = xid t in
            send t (P.echo_request ~xid:x ~data:"yanc-ka");
            if t.echo_outstanding = None then
              t.echo_outstanding <- Some (x, now);
            t.c_keepalives <- t.c_keepalives + 1;
            Telemetry.Registry.incr t.m_keepalives;
            t.next_keepalive <- now +. iv
          end;
          match t.echo_outstanding with
          | Some (_, sent_at)
            when now -. sent_at > t.tuning.Driver_intf.liveness_timeout ->
            declare_gone ()
          | Some (_, sent_at) when now -. sent_at > iv ->
            set_status t Driver_intf.Degraded
          | Some _ | None -> ()
        end
      end

  let step t ~now =
    t.steps <- t.steps + 1;
    Netsim.Control_channel.poll t.endpoint;
    let gen = Netsim.Control_channel.generation t.endpoint in
    if gen <> t.seen_generation then begin
      (* The transport was torn down and reconnected underneath us:
         whatever partial frame we held belongs to the old byte
         stream. *)
      t.seen_generation <- gen;
      OF.Framing.reset t.framing
    end;
    let chunks = Netsim.Control_channel.recv_all t.endpoint in
    if chunks <> [] then begin
      t.last_rx <- now;
      if t.status = Driver_intf.Degraded then set_status t Driver_intf.Connected;
      if t.status = Driver_intf.Dead then begin
        (* A link written off as dead that speaks again has earned a
           fresh reconnect episode. *)
        Backoff.reset t.backoff;
        t.episode_retries <- 0;
        t.next_attempt <- now;
        set_status t Driver_intf.Reconnecting
      end
    end;
    List.iter (OF.Framing.push t.framing) chunks;
    List.iter
      (fun raw -> on_event t ~now (P.decode_event raw))
      (OF.Framing.pop_all t.framing);
    liveness t ~now;
    if t.connected then begin
      classify_fs_events t;
      if Commit_queue.take_sweep t.commits then begin
        (* The sweep visits every flow, so pending keys are subsumed. *)
        reconcile_flows t;
        Commit_queue.clear t.commits
      end
      else flush_commits t;
      if t.ports_dirty then begin
        t.ports_dirty <- false;
        reconcile_ports t
      end;
      if t.spool_dirty then begin
        t.spool_dirty <- false;
        drain_spool t
      end;
      if t.stats_interval > 0. && now -. t.last_stats >= t.stats_interval then begin
        t.last_stats <- now;
        send t (P.flow_stats_request ~xid:(xid t));
        send t (P.port_stats_request ~xid:(xid t))
      end
    end

  let detach t = Fsnotify.Notifier.close t.notifier

  (* Work already queued that the next step would act on — the "step me
     now regardless of timers" predicate. *)
  let pending t =
    Fsnotify.Notifier.pending t.notifier > 0
    || t.connected
       && ((not (Commit_queue.is_empty t.commits))
          || Commit_queue.sweep_pending t.commits
          || t.ports_dirty || t.spool_dirty)

  (* The earliest sim time at which [step] would do something on its
     own: mirrors the timer arms of [liveness] plus the stats pacer.
     Sentinel [neg_infinity] timers are armed on the next step, so they
     read as due now. Spurious earliness is harmless (one no-op step);
     lateness would stall the state machine, so every timed arm above
     must be represented here. *)
  let next_due t ~now =
    match t.status with
    | Driver_intf.Dead ->
      (* Terminal until bytes arrive — and bytes wake us via the
         channel, not a timer. *)
      infinity
    | Driver_intf.Handshaking | Driver_intf.Reconnecting ->
      if t.next_attempt = neg_infinity then now else t.next_attempt
    | Driver_intf.Connected | Driver_intf.Degraded ->
      let due = ref infinity in
      let arm at = if at < !due then due := at in
      let iv = t.tuning.Driver_intf.keepalive_interval in
      if iv > 0. then begin
        arm (if t.next_keepalive = neg_infinity then now else t.next_keepalive);
        match t.echo_outstanding with
        | Some (_, sent_at) ->
          (* Degraded verdict, then the peer-is-gone verdict. *)
          arm (sent_at +. iv);
          arm (sent_at +. t.tuning.Driver_intf.liveness_timeout)
        | None -> ()
      end;
      if t.resyncing then
        arm (t.resync_sent +. t.tuning.Driver_intf.liveness_timeout);
      if t.stats_interval > 0. then arm (t.last_stats +. t.stats_interval);
      !due

  let instance t =
    { Driver_intf.step = (fun ~now -> step t ~now);
      switch_name = (fun () -> switch_name t);
      protocol = P.name;
      status = (fun () -> status t);
      link = (fun () -> link_counters t);
      next_due = (fun ~now -> next_due t ~now);
      pending = (fun () -> pending t);
      detach = (fun () -> detach t) }
end
