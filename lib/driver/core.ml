module Y = Yancfs
module OF = Openflow

module Make (P : Driver_intf.PROTOCOL) = struct
  type flow_cache_entry = { flow : Y.Flowdir.t }

  type t = {
    yfs : Y.Yanc_fs.t;
    telemetry : Telemetry.t;
    endpoint : Netsim.Control_channel.endpoint;
    framing : OF.Framing.t;
    notifier : Fsnotify.Notifier.t;
    stats_interval : float;
    mutable next_xid : int32;
    mutable switch_name : string option;
    mutable connected : bool;
    mutable flows_dirty : bool;
    mutable ports_dirty : bool;
    mutable spool_dirty : bool;
    mutable last_stats : float;
    mutable installed : int;
    (* Last committed configuration per flow directory name. *)
    cache : (string, flow_cache_entry) Hashtbl.t;
    (* config.port_down value last pushed to hardware, per port. *)
    pushed_admin : (int, bool) Hashtbl.t;
  }

  let xid t =
    let x = t.next_xid in
    t.next_xid <- Int32.add x 1l;
    x

  let send t bytes = Netsim.Control_channel.send t.endpoint bytes

  let create ?(stats_interval = 5.0) ~yfs ~endpoint () =
    let t =
      { yfs; telemetry = Y.Yanc_fs.telemetry yfs; endpoint;
        framing = OF.Framing.create ();
        notifier = Fsnotify.Notifier.create (Y.Yanc_fs.fs yfs);
        stats_interval; next_xid = 1l; switch_name = None; connected = false;
        flows_dirty = false; ports_dirty = false; spool_dirty = false;
        last_stats = 0.; installed = 0; cache = Hashtbl.create 64;
        pushed_admin = Hashtbl.create 8 }
    in
    send t (P.hello ~xid:(xid t));
    send t (P.features_request ~xid:(xid t));
    t

  let switch_name t = t.switch_name

  let connected t = t.connected

  let flows_installed t = t.installed

  let root t = Y.Yanc_fs.root t.yfs

  let fs t = Y.Yanc_fs.fs t.yfs

  let cred = Vfs.Cred.root

  (* --- switch-to-controller events ---------------------------------------- *)

  let on_features t ~now:_ (dpid, n_buffers, n_tables, capabilities, ports) =
    let name = Y.Yanc_fs.switch_name_of_dpid dpid in
    t.switch_name <- Some name;
    ignore
      (Y.Yanc_fs.add_switch t.yfs ~name ~dpid ~protocol:P.name ~n_buffers
         ~n_tables
         ~capabilities:(OF.Of_types.Capabilities.to_list capabilities)
         ~actions:
           [ "output"; "set_dl_src"; "set_dl_dst"; "set_vlan"; "set_vlan_pcp";
             "strip_vlan"; "set_nw_src"; "set_nw_dst"; "set_nw_tos";
             "set_tp_src"; "set_tp_dst" ]);
    (match ports with
    | Some ports ->
      List.iter (fun p -> ignore (Y.Yanc_fs.set_port t.yfs ~switch:name p)) ports
    | None -> (
      match P.port_desc_request with
      | Some req -> send t (req ~xid:(xid t))
      | None -> ()));
    (* Watch the parts of the switch directory the driver reacts to. *)
    let watch path =
      ignore
        (Fsnotify.Notifier.add_watch ~recursive:true t.notifier path
           Fsnotify.Notifier.all)
    in
    watch (Y.Layout.flows_dir ~root:(root t) name);
    watch (Y.Layout.ports_dir ~root:(root t) name);
    watch (Y.Layout.packet_out_dir ~root:(root t) name);
    Fsnotify.Notifier.register_metrics t.notifier
      ~prefix:(Printf.sprintf "driver.%s" name)
      (Telemetry.registry t.telemetry);
    t.connected <- true;
    (* Pick up anything written before the handshake finished. *)
    t.flows_dirty <- true;
    t.ports_dirty <- true;
    t.spool_dirty <- true

  let find_flow_by_match t of_match priority =
    Hashtbl.fold
      (fun name { flow } acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if OF.Of_match.equal flow.of_match of_match && flow.priority = priority
          then Some name
          else None)
      t.cache None

  let on_event t ~now ev =
    match (ev : Driver_intf.event) with
    | Driver_intf.Ev_hello | Driver_intf.Ev_other -> ()
    | Driver_intf.Ev_error e -> Logs.warn (fun m -> m "driver[%s]: %s" P.name e)
    | Driver_intf.Ev_echo_request { xid; data } -> send t (P.echo_reply ~xid ~data)
    | Driver_intf.Ev_features { dpid; n_buffers; n_tables; capabilities; ports } ->
      on_features t ~now (dpid, n_buffers, n_tables, capabilities, ports)
    | Driver_intf.Ev_ports ports -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        List.iter (fun p -> ignore (Y.Yanc_fs.set_port t.yfs ~switch:name p)) ports)
    | Driver_intf.Ev_packet_in { buffer_id; total_len; in_port; reason; data } -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        (* The packet-in is where a request enters the controller: mint
           its trace here, publish under a span, and let consumers pick
           the trace up by event sequence number. *)
        let tracer = Telemetry.tracer t.telemetry in
        ignore (Telemetry.Tracer.fresh tracer);
        Telemetry.Tracer.span tracer ~stage:"driver.packet_in" (fun () ->
            ignore
              (Y.Eventdir.publish ~telemetry:t.telemetry (fs t) ~root:(root t)
                 ~switch:name ~in_port ~reason ~buffer_id ~total_len ~data));
        Telemetry.Tracer.clear tracer)
    | Driver_intf.Ev_port_status (reason, port) -> (
      match t.switch_name with
      | None -> ()
      | Some name -> (
        match reason with
        | OF.Of_types.Port_delete ->
          ignore (Y.Yanc_fs.remove_port t.yfs ~switch:name port.port_no)
        | OF.Of_types.Port_add | OF.Of_types.Port_modify ->
          ignore (Y.Yanc_fs.set_port t.yfs ~switch:name port)))
    | Driver_intf.Ev_flow_removed { of_match; priority; _ } -> (
      match t.switch_name with
      | None -> ()
      | Some name -> (
        match find_flow_by_match t of_match priority with
        | None -> ()
        | Some flow_name ->
          Hashtbl.remove t.cache flow_name;
          ignore (Y.Yanc_fs.delete_flow t.yfs ~cred ~switch:name flow_name)))
    | Driver_intf.Ev_flow_stats stats -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        List.iter
          (fun (s : OF.Of_types.Flow_stats.t) ->
            match find_flow_by_match t s.of_match s.priority with
            | None -> ()
            | Some flow_name ->
              ignore
                (Y.Flowdir.write_counters (fs t) ~cred
                   (Y.Layout.flow ~root:(root t) ~switch:name flow_name)
                   ~packets:s.packets ~bytes:s.bytes ~duration_s:s.duration_s))
          stats)
    | Driver_intf.Ev_port_stats stats -> (
      match t.switch_name with
      | None -> ()
      | Some name ->
        List.iter
          (fun (s : OF.Of_types.Port_stats.t) ->
            ignore
              (Y.Yanc_fs.write_port_counters t.yfs ~switch:name
                 ~port:s.port_no s))
          stats)

  (* --- file system to switch ------------------------------------------------ *)

  let reconcile_flows t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      let live = Y.Yanc_fs.flow_names t.yfs ~cred name in
      (* Deletions first: a renamed flow directory is a deletion plus an
         addition of the same rule, and deleting by match after the
         re-add would wipe the new entry. *)
      let gone =
        Hashtbl.fold
          (fun flow_name { flow } acc ->
            if List.mem flow_name live then acc else (flow_name, flow) :: acc)
          t.cache []
      in
      List.iter
        (fun (flow_name, (flow : Y.Flowdir.t)) ->
          Hashtbl.remove t.cache flow_name;
          send t (P.flow_delete ~xid:(xid t) flow.of_match))
        gone;
      (* Additions and updates. *)
      List.iter
        (fun flow_name ->
          let dir = Y.Layout.flow ~root:(root t) ~switch:name flow_name in
          match Y.Flowdir.read_version (fs t) ~cred dir with
          | None -> () (* not committed yet *)
          | Some version -> (
            let cached = Hashtbl.find_opt t.cache flow_name in
            let stale =
              match cached with
              | Some { flow } -> flow.version < version
              | None -> true
            in
            if stale then
              match Y.Yanc_fs.read_flow t.yfs ~cred ~switch:name flow_name with
              | Error msg -> ignore (Y.Flowdir.set_error (fs t) ~cred dir (Some msg))
              | Ok flow ->
                ignore (Y.Flowdir.set_error (fs t) ~cred dir None);
                (* Rule identity changed: the old hardware entry must go. *)
                (match cached with
                | Some { flow = old }
                  when not
                         (OF.Of_match.equal old.of_match flow.of_match
                         && old.priority = flow.priority) ->
                  send t (P.flow_delete ~xid:(xid t) old.of_match)
                | Some _ | None -> ());
                let tracer = Telemetry.tracer t.telemetry in
                ignore
                  (Telemetry.Tracer.resume tracer
                     (Y.Layout.trace_key_flow ~switch:name flow_name));
                let add_xid = xid t in
                Telemetry.Tracer.span tracer ~stage:"driver.flow_mod"
                  (fun () -> send t (P.flow_add ~xid:add_xid flow));
                (* The agent resumes by xid when it installs the entry. *)
                Telemetry.Tracer.stamp tracer
                  (Netsim.Of_agent.trace_key_xid add_xid);
                Telemetry.Tracer.clear tracer;
                t.installed <- t.installed + 1;
                (* The buffer reference is one-shot. *)
                (if flow.buffer_id <> None then
                   let bpath = Vfs.Path.child dir "buffer_id" in
                   ignore (Vfs.Fs.unlink (fs t) ~cred bpath));
                Hashtbl.replace t.cache flow_name
                  { flow = { flow with buffer_id = None } }))
        live

  let reconcile_ports t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      List.iter
        (fun port_no ->
          match Y.Yanc_fs.read_port t.yfs ~cred ~switch:name port_no with
          | Error _ -> ()
          | Ok info ->
            let pushed = Hashtbl.find_opt t.pushed_admin port_no in
            if pushed <> Some info.admin_down then begin
              Hashtbl.replace t.pushed_admin port_no info.admin_down;
              send t (P.port_mod ~xid:(xid t) ~port_no ~admin_down:info.admin_down)
            end)
        (Y.Yanc_fs.port_numbers t.yfs ~cred name)

  let drain_spool t =
    match t.switch_name with
    | None -> ()
    | Some name ->
      List.iter
        (fun (req : Y.Outdir.request) ->
          send t
            (P.packet_out ~xid:(xid t) ~buffer_id:req.buffer_id
               ~in_port:req.in_port ~actions:req.actions ~data:req.data))
        (Y.Outdir.consume (fs t) ~root:(root t) ~switch:name)

  (* Bounded drain: a flow-mod storm is spread over successive steps
     instead of monopolizing one; the dirty flags persist, and events
     left queued re-trigger classification next step. *)
  let event_batch = 4096

  let classify_fs_events t =
    match t.switch_name with
    | None -> ignore (Fsnotify.Notifier.read_events ~max:event_batch t.notifier)
    | Some name ->
      let flows = Y.Layout.flows_dir ~root:(root t) name in
      let ports = Y.Layout.ports_dir ~root:(root t) name in
      let spool = Y.Layout.packet_out_dir ~root:(root t) name in
      List.iter
        (fun (ev : Fsnotify.Event.t) ->
          (* A queue overflow means events were lost: rescan everything,
             as inotify consumers must on IN_Q_OVERFLOW. *)
          if ev.kind = Fsnotify.Event.Overflow then begin
            t.flows_dirty <- true;
            t.ports_dirty <- true;
            t.spool_dirty <- true
          end
          else if Vfs.Path.is_prefix flows ev.path then t.flows_dirty <- true
          else if Vfs.Path.is_prefix spool ev.path then t.spool_dirty <- true
          else if Vfs.Path.is_prefix ports ev.path then begin
            match Vfs.Path.basename ev.path with
            | Some base when base = Y.Layout.config_port_down ->
              t.ports_dirty <- true
            | _ -> ()
          end)
        (Fsnotify.Notifier.read_events ~max:event_batch t.notifier)

  let step t ~now =
    List.iter (OF.Framing.push t.framing)
      (Netsim.Control_channel.recv_all t.endpoint);
    List.iter
      (fun raw -> on_event t ~now (P.decode_event raw))
      (OF.Framing.pop_all t.framing);
    if t.connected then begin
      classify_fs_events t;
      if t.flows_dirty then begin
        t.flows_dirty <- false;
        reconcile_flows t
      end;
      if t.ports_dirty then begin
        t.ports_dirty <- false;
        reconcile_ports t
      end;
      if t.spool_dirty then begin
        t.spool_dirty <- false;
        drain_spool t
      end;
      if t.stats_interval > 0. && now -. t.last_stats >= t.stats_interval then begin
        t.last_stats <- now;
        send t (P.flow_stats_request ~xid:(xid t));
        send t (P.port_stats_request ~xid:(xid t))
      end
    end

  let detach t = Fsnotify.Notifier.close t.notifier

  let instance t =
    { Driver_intf.step = (fun ~now -> step t ~now);
      switch_name = (fun () -> switch_name t);
      protocol = P.name;
      detach = (fun () -> detach t) }
end
