(** Exponential backoff with cap and jitter for control-channel
    retries.

    The schedule is [base * 2^attempt], clamped to [cap], plus a
    jittered fraction of the clamped delay drawn from the {e injected}
    PRNG — there is no hidden randomness, so the same seed always
    produces the same retry schedule (chaos tests replay failures from
    a printed seed). *)

type t

val create :
  ?base:float -> ?cap:float -> ?jitter:float -> prng:Netsim.Prng.t -> unit -> t
(** [base] (default 0.25s) is the first delay, [cap] (default 4s) the
    ceiling of the deterministic part, [jitter] (default 0.1) the
    maximum extra fraction of the clamped delay added per draw. The
    [prng] is borrowed, not copied: callers sharing one stream across
    several backoffs get one interleaved — still reproducible —
    schedule. *)

val next : t -> float
(** The next delay: [min (base * 2^attempts) cap * (1 + U[0,jitter))],
    advancing the attempt counter. *)

val reset : t -> unit
(** Back to attempt 0 (call on success). *)

val attempts : t -> int
(** Draws since the last {!reset}. *)
