type t = {
  order : string Queue.t;            (* first-marked order *)
  pending : (string, unit) Hashtbl.t;
  mutable sweep : bool;
  mutable n_marked : int;
  mutable n_coalesced : int;
  mutable n_batches : int;
  mutable n_flushed : int;
  mutable n_sweeps : int;
}

type stats = {
  marked : int;
  coalesced : int;
  batches : int;
  flushed : int;
  sweeps : int;
}

let create () =
  { order = Queue.create ();
    pending = Hashtbl.create 64;
    sweep = false;
    n_marked = 0; n_coalesced = 0; n_batches = 0; n_flushed = 0;
    n_sweeps = 0 }

let mark t key =
  t.n_marked <- t.n_marked + 1;
  if Hashtbl.mem t.pending key then begin
    t.n_coalesced <- t.n_coalesced + 1;
    false
  end
  else begin
    Hashtbl.replace t.pending key ();
    Queue.push key t.order;
    true
  end

let mark_sweep t =
  if not t.sweep then begin
    t.sweep <- true;
    t.n_sweeps <- t.n_sweeps + 1
  end

let take_sweep t =
  let s = t.sweep in
  t.sweep <- false;
  s

let sweep_pending t = t.sweep

let pending t = Hashtbl.length t.pending

let is_empty t = Hashtbl.length t.pending = 0

let take ?max t =
  let limit = match max with Some m -> m | None -> Queue.length t.order in
  let rec go n acc =
    if n = 0 || Queue.is_empty t.order then List.rev acc
    else
      let key = Queue.pop t.order in
      (* Stale order entries can't arise today (keys only leave via
         [take]/[clear], which empty both structures together), but
         skipping non-pending keys keeps the two views independent. *)
      if Hashtbl.mem t.pending key then begin
        Hashtbl.remove t.pending key;
        go (n - 1) (key :: acc)
      end
      else go n acc
  in
  let batch = go limit [] in
  (match batch with
  | [] -> ()
  | keys ->
    t.n_batches <- t.n_batches + 1;
    t.n_flushed <- t.n_flushed + List.length keys);
  batch

let clear t =
  Queue.clear t.order;
  Hashtbl.reset t.pending

let stats t =
  { marked = t.n_marked; coalesced = t.n_coalesced; batches = t.n_batches;
    flushed = t.n_flushed; sweeps = t.n_sweeps }
