(** The coreutils (paper §5.4: "from simple one-liners to more elaborate
    shell scripts, these common utilities are tools that system
    administrators use and know") — re-implemented against the VFS so
    the paper's administration examples run verbatim against /net.

    Implemented: [ls], [cat], [echo], [mkdir], [rmdir], [rm], [ln],
    [cp], [mv], [touch], [stat], [readlink], [find] (-name/-type/
    -maxdepth/-exec), [grep] (-r/-l/-v/-c/-i, substring patterns), [wc],
    [head], [tail], [sort], [uniq], [cut], [tee], [tree], [pwd], [cd],
    [chmod], [getfacl]/[setfacl], [getfattr]/[setfattr], [true],
    [false]. *)

type output = { code : int; out : string; err : string }

val exec : Env.t -> argv:string list -> stdin:string -> output
(** Run one command (no glob expansion, no redirection — see
    {!Pipeline}). Unknown commands exit 127. *)

val known : string list
(** Available command names (sorted). *)
