type t = {
  fs : Vfs.Fs.t;
  mutable cred : Vfs.Cred.t;
  mutable cwd : Vfs.Path.t;
}

let create ?(cred = Vfs.Cred.root) ?(cwd = Vfs.Path.root) fs = { fs; cred; cwd }

let resolve t arg =
  if arg = "" then t.cwd
  else if arg.[0] = '/' then
    match Vfs.Path.of_string arg with Ok p -> p | Error _ -> t.cwd
  else
    match Vfs.Path.of_string arg with
    | Ok rel -> Vfs.Path.append t.cwd rel
    | Error _ -> t.cwd
