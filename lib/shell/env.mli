(** A shell session: file system, credential, working directory. *)

type t = {
  fs : Vfs.Fs.t;
  mutable cred : Vfs.Cred.t;
  mutable cwd : Vfs.Path.t;
}

val create : ?cred:Vfs.Cred.t -> ?cwd:Vfs.Path.t -> Vfs.Fs.t -> t

val resolve : t -> string -> Vfs.Path.t
(** Interpret a path argument relative to the cwd. *)
