type result = { code : int; out : string; err : string }

(* --- tokenizer -------------------------------------------------------------- *)

let split_words input =
  let buf = Buffer.create 16 in
  let words = ref [] in
  let in_word = ref false in
  let push () =
    if !in_word then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf;
      in_word := false
    end
  in
  let n = String.length input in
  let rec go i =
    if i >= n then
      if !in_word then Ok () else Ok ()
    else
      match input.[i] with
      | '#' when not !in_word -> Ok () (* comment to end of line *)
      | ' ' | '\t' ->
        push ();
        go (i + 1)
      | '\'' ->
        let rec scan j =
          if j >= n then Error "unterminated single quote"
          else if input.[j] = '\'' then begin
            in_word := true;
            Ok (j + 1)
          end
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        Result.bind (scan (i + 1)) go
      | '"' ->
        let rec scan j =
          if j >= n then Error "unterminated double quote"
          else if input.[j] = '"' then begin
            in_word := true;
            Ok (j + 1)
          end
          else begin
            Buffer.add_char buf input.[j];
            scan (j + 1)
          end
        in
        Result.bind (scan (i + 1)) go
      | c ->
        Buffer.add_char buf c;
        in_word := true;
        go (i + 1)
  in
  match go 0 with
  | Error e -> Error e
  | Ok () ->
    push ();
    Ok (List.rev !words)

(* --- structure -------------------------------------------------------------- *)

type redirect = { stdin_from : string option; stdout_to : (string * bool) option }
(* (path, append) *)

type stage = { argv : string list; redirect : redirect }

let split_on_word sep words =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | w :: rest when w = sep -> go [] (List.rev current :: acc) rest
    | w :: rest -> go (w :: current) acc rest
  in
  go [] [] words

let parse_stage words =
  let rec go argv redirect = function
    | [] -> Ok { argv = List.rev argv; redirect }
    | ">" :: path :: rest ->
      go argv { redirect with stdout_to = Some (path, false) } rest
    | ">>" :: path :: rest ->
      go argv { redirect with stdout_to = Some (path, true) } rest
    | "<" :: path :: rest -> go argv { redirect with stdin_from = Some path } rest
    | (">" | ">>" | "<") :: [] -> Error "missing redirection target"
    | w :: rest -> go (w :: argv) redirect rest
  in
  go [] { stdin_from = None; stdout_to = None } words

let expand_operands env argv =
  match argv with
  | [] -> []
  | cmd :: rest -> cmd :: List.concat_map (Glob.expand env) rest

let run_pipeline env stages =
  let rec go stdin = function
    | [] -> { code = 0; out = stdin; err = "" }
    | stage :: rest ->
      let stdin =
        match stage.redirect.stdin_from with
        | Some path -> (
          match
            Vfs.Fs.read_file env.Env.fs ~cred:env.Env.cred (Env.resolve env path)
          with
          | Ok data -> data
          | Error _ -> "")
        | None -> stdin
      in
      let argv = expand_operands env stage.argv in
      let r = Cmd.exec env ~argv ~stdin in
      let out =
        match stage.redirect.stdout_to with
        | Some (path, append) ->
          let p = Env.resolve env path in
          let write =
            if append then Vfs.Fs.append_file else Vfs.Fs.write_file
          in
          ignore (write env.Env.fs ~cred:env.Env.cred p r.Cmd.out);
          ""
        | None -> r.Cmd.out
      in
      if rest = [] then { code = r.Cmd.code; out; err = r.Cmd.err }
      else begin
        let tail = go out rest in
        { tail with err = r.Cmd.err ^ tail.err }
      end
  in
  go "" stages

let run_command env words =
  match split_on_word "|" words with
  | [] -> { code = 0; out = ""; err = "" }
  | stage_words ->
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | w :: rest -> (
        match parse_stage w with
        | Ok s -> parse (s :: acc) rest
        | Error _ as e -> e)
    in
    (match parse [] stage_words with
    | Error e -> { code = 2; out = ""; err = "yash: " ^ e ^ "\n" }
    | Ok stages -> run_pipeline env (List.filter (fun s -> s.argv <> []) stages))

let run env line =
  match split_words line with
  | Error e -> { code = 2; out = ""; err = "yash: " ^ e ^ "\n" }
  | Ok [] -> { code = 0; out = ""; err = "" }
  | Ok words ->
    (* "&&" and ";" sequencing. *)
    let chunks =
      split_on_word ";" words |> List.concat_map (fun c -> split_on_word "&&" c)
    in
    List.fold_left
      (fun acc chunk ->
        if acc.code <> 0 && List.mem "&&" words then acc
        else begin
          let r = run_command env chunk in
          { code = r.code; out = acc.out ^ r.out; err = acc.err ^ r.err }
        end)
      { code = 0; out = ""; err = "" }
      (List.filter (fun c -> c <> []) chunks)

let run_script env script =
  String.split_on_char '\n' script
  |> List.fold_left
       (fun acc line ->
         if acc.code <> 0 then acc
         else begin
           let r = run env line in
           { code = r.code; out = acc.out ^ r.out; err = acc.err ^ r.err }
         end)
       { code = 0; out = ""; err = "" }
