(** Shell-style glob matching and path expansion: [*] and [?] within one
    path component ([*] never crosses [/]). *)

val matches : pattern:string -> string -> bool
(** Match one name against one pattern component. *)

val expand : Env.t -> string -> string list
(** Expand a possibly-globbed path argument against the file system;
    returns the argument unchanged when it contains no glob characters
    or matches nothing (like bash's default nullglob-off behaviour). *)
