(** A small POSIX-ish pipeline interpreter over the VFS coreutils:
    quoting (single and double), [|] pipes, [>] / [>>] output
    redirection, [<] input redirection, [&&] / [;] sequencing, [#]
    comments, and glob expansion of operands — enough for every shell
    example the paper gives, e.g.

    {v echo 1 > /net/switches/sw1/ports/port_2/config.port_down
       ls -l /net/switches
       find /net -name tp_dst -exec grep 22 v} *)

type result = { code : int; out : string; err : string }

val run : Env.t -> string -> result
(** Execute one command line. *)

val run_script : Env.t -> string -> result
(** Execute lines in order, stopping at the first failure; outputs are
    concatenated. *)

val split_words : string -> (string list, string) Stdlib.result
(** Tokenize with quote handling (exposed for tests). *)
