module Fs = Vfs.Fs
module Path = Vfs.Path

type output = { code : int; out : string; err : string }

let ok out = { code = 0; out; err = "" }

let fail ?(code = 1) err = { code; out = ""; err }

let errno cmd path e =
  fail (Printf.sprintf "%s: %s: %s\n" cmd (Path.to_string path) (Vfs.Errno.message e))

let flags_and_args argv =
  (* Split leading dash-flags from operands; "--" ends flag parsing. *)
  let rec go flags = function
    | "--" :: rest -> List.rev flags, rest
    | arg :: rest when String.length arg > 1 && arg.[0] = '-' ->
      go (arg :: flags) rest
    | rest -> List.rev flags, rest
  in
  go [] argv

let has flag flags = List.mem flag flags

let lines s =
  if s = "" then []
  else begin
    let l = String.split_on_char '\n' s in
    match List.rev l with "" :: rest -> List.rev rest | _ -> l
  end

let unlines l = match l with [] -> "" | _ -> String.concat "\n" l ^ "\n"

(* --- individual commands ------------------------------------------------------ *)

let kind_char = function
  | Fs.Dir -> 'd'
  | Fs.File -> '-'
  | Fs.Symlink -> 'l'

let ls env ~flags ~args =
  let long = has "-l" flags || has "-la" flags || has "-al" flags in
  let paths = if args = [] then [ "." ] else args in
  let buf = Buffer.create 256 in
  let err = Buffer.create 0 in
  let code = ref 0 in
  let entry_line path name (st : Fs.stat) =
    if long then begin
      let suffix =
        if st.kind = Fs.Symlink then
          match Fs.readlink env.Env.fs ~cred:env.Env.cred path with
          | Ok target -> " -> " ^ target
          | Error _ -> ""
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %2d %4d %4d %6d %s%s\n"
           (Vfs.Perm.to_string ~kind:(kind_char st.kind) st.mode)
           st.nlink st.uid st.gid st.size name suffix)
    end
    else Buffer.add_string buf (name ^ "\n")
  in
  List.iter
    (fun arg ->
      let path = Env.resolve env arg in
      match Fs.lstat env.Env.fs ~cred:env.Env.cred path with
      | Error e ->
        code := 1;
        Buffer.add_string err
          (Printf.sprintf "ls: %s: %s\n" arg (Vfs.Errno.message e))
      | Ok st when st.kind <> Fs.Dir -> entry_line path arg st
      | Ok _ -> (
        match Fs.readdir env.Env.fs ~cred:env.Env.cred path with
        | Error e ->
          code := 1;
          Buffer.add_string err
            (Printf.sprintf "ls: %s: %s\n" arg (Vfs.Errno.message e))
        | Ok names ->
          List.iter
            (fun name ->
              let child = Path.child path name in
              match Fs.lstat env.Env.fs ~cred:env.Env.cred child with
              | Ok st -> entry_line child name st
              | Error _ -> ())
            names))
    paths;
  { code = !code; out = Buffer.contents buf; err = Buffer.contents err }

let cat env ~args ~stdin =
  if args = [] then ok stdin
  else begin
    let buf = Buffer.create 256 in
    let err = Buffer.create 0 in
    let code = ref 0 in
    List.iter
      (fun arg ->
        match Fs.read_file env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) with
        | Ok data -> Buffer.add_string buf data
        | Error e ->
          code := 1;
          Buffer.add_string err
            (Printf.sprintf "cat: %s: %s\n" arg (Vfs.Errno.message e)))
      args;
    { code = !code; out = Buffer.contents buf; err = Buffer.contents err }
  end

let echo ~flags ~args =
  let newline = not (has "-n" flags) in
  ok (String.concat " " args ^ if newline then "\n" else "")

let mkdir env ~flags ~args =
  let make fs ~cred p =
    if has "-p" flags then Fs.mkdir_p fs ~cred p else Fs.mkdir fs ~cred p
  in
  List.fold_left
    (fun acc arg ->
      if acc.code <> 0 then acc
      else
        match make env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) with
        | Ok () -> acc
        | Error e -> errno "mkdir" (Env.resolve env arg) e)
    (ok "") args

let rmdir env ~args =
  List.fold_left
    (fun acc arg ->
      if acc.code <> 0 then acc
      else
        match Fs.rmdir env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) with
        | Ok () -> acc
        | Error e -> errno "rmdir" (Env.resolve env arg) e)
    (ok "") args

let rm env ~flags ~args =
  let recursive = has "-r" flags || has "-rf" flags || has "-fr" flags in
  let force = has "-f" flags || has "-rf" flags || has "-fr" flags in
  List.fold_left
    (fun acc arg ->
      if acc.code <> 0 then acc
      else begin
        let path = Env.resolve env arg in
        let result =
          match Fs.lstat env.Env.fs ~cred:env.Env.cred path with
          | Error e -> Error e
          | Ok { kind = Fs.Dir; _ } ->
            if recursive then Fs.rmdir ~recursive:true env.Env.fs ~cred:env.Env.cred path
            else Error Vfs.Errno.EISDIR
          | Ok _ -> Fs.unlink env.Env.fs ~cred:env.Env.cred path
        in
        match result with
        | Ok () -> acc
        | Error Vfs.Errno.ENOENT when force -> acc
        | Error e -> errno "rm" path e
      end)
    (ok "") args

let ln env ~flags ~args =
  if not (has "-s" flags) then fail "ln: only symbolic links (-s) are supported\n"
  else
    match args with
    | [ target; linkname ] -> (
      match
        Fs.symlink env.Env.fs ~cred:env.Env.cred ~target (Env.resolve env linkname)
      with
      | Ok () -> ok ""
      | Error e -> errno "ln" (Env.resolve env linkname) e)
    | _ -> fail "usage: ln -s TARGET LINK\n"

let touch env ~args =
  List.fold_left
    (fun acc arg ->
      if acc.code <> 0 then acc
      else begin
        let path = Env.resolve env arg in
        if Fs.exists env.Env.fs ~cred:env.Env.cred path then acc
        else
          match Fs.create_file env.Env.fs ~cred:env.Env.cred path with
          | Ok () -> acc
          | Error e -> errno "touch" path e
      end)
    (ok "") args

(* Recursive copy preserving symlinks; file contents are copied whole. *)
let rec copy_object env src dst =
  let fs = env.Env.fs
  and cred = env.Env.cred in
  match Fs.lstat fs ~cred src with
  | Error e -> Error e
  | Ok { kind = Fs.Symlink; _ } -> (
    match Fs.readlink fs ~cred src with
    | Error e -> Error e
    | Ok target -> Fs.symlink fs ~cred ~target dst)
  | Ok { kind = Fs.File; _ } -> (
    match Fs.read_file fs ~cred src with
    | Error e -> Error e
    | Ok data -> Fs.write_file fs ~cred dst data)
  | Ok { kind = Fs.Dir; _ } -> (
    let made =
      match Fs.mkdir fs ~cred dst with
      | Ok () | Error Vfs.Errno.EEXIST -> Ok ()
      | Error e -> Error e
    in
    match made with
    | Error e -> Error e
    | Ok () -> (
      match Fs.readdir fs ~cred src with
      | Error e -> Error e
      | Ok names ->
        List.fold_left
          (fun acc name ->
            match acc with
            | Error _ as e -> e
            | Ok () -> copy_object env (Path.child src name) (Path.child dst name))
          (Ok ()) names))

let dest_for env src dst_arg =
  (* cp/mv semantics: an existing directory destination receives the
     source's basename inside it. *)
  let dst = Env.resolve env dst_arg in
  if Fs.is_dir env.Env.fs ~cred:env.Env.cred dst then
    match Path.basename src with
    | Some base -> Path.child dst base
    | None -> dst
  else dst

let cp env ~flags ~args =
  match args with
  | [ src_arg; dst_arg ] -> (
    let src = Env.resolve env src_arg in
    let dst = dest_for env src dst_arg in
    let is_dir = Fs.is_dir env.Env.fs ~cred:env.Env.cred src in
    if is_dir && not (has "-r" flags) then
      fail (Printf.sprintf "cp: %s is a directory (use -r)\n" src_arg)
    else
      match copy_object env src dst with
      | Ok () -> ok ""
      | Error e -> errno "cp" src e)
  | _ -> fail "usage: cp [-r] SRC DST\n"

let mv env ~args =
  match args with
  | [ src_arg; dst_arg ] -> (
    let src = Env.resolve env src_arg in
    let dst = dest_for env src dst_arg in
    match Fs.rename env.Env.fs ~cred:env.Env.cred ~src ~dst with
    | Ok () -> ok ""
    | Error e -> errno "mv" src e)
  | _ -> fail "usage: mv SRC DST\n"

let stat_cmd env ~args =
  let buf = Buffer.create 128 in
  let code = ref 0 in
  let err = Buffer.create 0 in
  List.iter
    (fun arg ->
      let path = Env.resolve env arg in
      match Fs.lstat env.Env.fs ~cred:env.Env.cred path with
      | Error e ->
        code := 1;
        Buffer.add_string err (Printf.sprintf "stat: %s: %s\n" arg (Vfs.Errno.message e))
      | Ok st ->
        Buffer.add_string buf
          (Printf.sprintf "  File: %s\n  Size: %d  Inode: %d  Links: %d\nAccess: (%04o/%s)  Uid: %d  Gid: %d\nModify: %.3f\n"
             (Path.to_string path) st.size st.ino st.nlink st.mode
             (Vfs.Perm.to_string ~kind:(kind_char st.kind) st.mode)
             st.uid st.gid st.mtime))
    args;
  { code = !code; out = Buffer.contents buf; err = Buffer.contents err }

let readlink_cmd env ~args =
  match args with
  | [ arg ] -> (
    match Fs.readlink env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) with
    | Ok target -> ok (target ^ "\n")
    | Error e -> errno "readlink" (Env.resolve env arg) e)
  | _ -> fail "usage: readlink PATH\n"

let chmod env ~args =
  match args with
  | [ mode_s; arg ] -> (
    match int_of_string_opt ("0o" ^ mode_s) with
    | None -> fail (Printf.sprintf "chmod: invalid mode %S\n" mode_s)
    | Some mode -> (
      match Fs.chmod env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) mode with
      | Ok () -> ok ""
      | Error e -> errno "chmod" (Env.resolve env arg) e))
  | _ -> fail "usage: chmod MODE PATH\n"

let tree env ~args =
  let arg = match args with a :: _ -> a | [] -> "." in
  match Fs.tree env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) with
  | Ok text -> ok text
  | Error e -> errno "tree" (Env.resolve env arg) e

(* --- find ----------------------------------------------------------------------- *)

type find_opts = {
  name_pat : string option;
  typ : Fs.kind option;
  maxdepth : int option;
  exec : string list option; (* template containing "{}" *)
}

let parse_find_args args =
  let rec go opts paths = function
    | [] -> Ok (opts, List.rev paths)
    | "-name" :: pat :: rest -> go { opts with name_pat = Some pat } paths rest
    | "-type" :: t :: rest -> (
      match t with
      | "f" -> go { opts with typ = Some Fs.File } paths rest
      | "d" -> go { opts with typ = Some Fs.Dir } paths rest
      | "l" -> go { opts with typ = Some Fs.Symlink } paths rest
      | _ -> Error (Printf.sprintf "find: unknown type %S" t))
    | "-maxdepth" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d -> go { opts with maxdepth = Some d } paths rest
      | None -> Error (Printf.sprintf "find: bad maxdepth %S" n))
    | "-exec" :: rest ->
      let rec take acc = function
        | ";" :: tail -> Ok (List.rev acc, tail)
        | [] -> Ok (List.rev acc, []) (* tolerate a missing ';' *)
        | a :: tail -> take (a :: acc) tail
      in
      (match take [] rest with
      | Ok (cmd, tail) -> go { opts with exec = Some cmd } paths tail
      | Error _ as e -> e)
    | arg :: rest when arg <> "" && arg.[0] <> '-' -> go opts (arg :: paths) rest
    | arg :: _ -> Error (Printf.sprintf "find: unknown predicate %S" arg)
  in
  go { name_pat = None; typ = None; maxdepth = None; exec = None } [] args

let find env ~args ~run_exec =
  match parse_find_args args with
  | Error e -> fail (e ^ "\n")
  | Ok (opts, paths) ->
    let roots = if paths = [] then [ "." ] else paths in
    let buf = Buffer.create 256 in
    let code = ref 0 in
    let err = Buffer.create 0 in
    List.iter
      (fun arg ->
        let rootp = Env.resolve env arg in
        let rootdepth = List.length (Path.components rootp) in
        match
          Fs.fold env.Env.fs ~cred:env.Env.cred rootp ~init:()
            (fun () path st ->
              let depth = List.length (Path.components path) - rootdepth in
              let depth_ok =
                match opts.maxdepth with Some d -> depth <= d | None -> true
              in
              let name_ok =
                match opts.name_pat, Path.basename path with
                | Some pat, Some base -> Glob.matches ~pattern:pat base
                | Some _, None -> false
                | None, _ -> true
              in
              let type_ok =
                match opts.typ with Some k -> st.Fs.kind = k | None -> true
              in
              if depth_ok && name_ok && type_ok then begin
                match opts.exec with
                | None -> Buffer.add_string buf (Path.to_string path ^ "\n")
                | Some template ->
                  let argv =
                    List.map
                      (fun a -> if a = "{}" then Path.to_string path else a)
                      template
                  in
                  (* The paper's own example omits {}; append the path. *)
                  let argv =
                    if List.mem "{}" template then argv
                    else argv @ [ Path.to_string path ]
                  in
                  let r = run_exec argv in
                  Buffer.add_string buf r
              end;
              (* Prune instead of filtering: below maxdepth nothing can
                 match, so don't even visit it. *)
              let action =
                match opts.maxdepth with
                | Some d when depth >= d -> `Skip_subtree
                | Some _ | None -> `Continue
              in
              ((), action))
        with
        | Ok () -> ()
        | Error e ->
          code := 1;
          Buffer.add_string err
            (Printf.sprintf "find: %s: %s\n" arg (Vfs.Errno.message e)))
      roots;
    { code = !code; out = Buffer.contents buf; err = Buffer.contents err }

(* --- grep ------------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle
  and hl = String.length hay in
  if nl = 0 then true
  else begin
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  end

let grep env ~flags ~args ~stdin =
  let recursive = has "-r" flags in
  let invert = has "-v" flags in
  let list_only = has "-l" flags in
  let count_only = has "-c" flags in
  let fold_case = has "-i" flags in
  match args with
  | [] -> fail "usage: grep [-rvlci] PATTERN [FILE...]\n"
  | pattern :: files ->
    let pattern = if fold_case then String.lowercase_ascii pattern else pattern in
    let match_line line =
      let line = if fold_case then String.lowercase_ascii line else line in
      contains ~needle:pattern line <> invert
    in
    let buf = Buffer.create 256 in
    let matched_any = ref false in
    let grep_content ~label content =
      let hits = List.filter match_line (lines content) in
      if hits <> [] then matched_any := true;
      if count_only then
        Buffer.add_string buf
          (match label with
          | Some l -> Printf.sprintf "%s:%d\n" l (List.length hits)
          | None -> Printf.sprintf "%d\n" (List.length hits))
      else if list_only then begin
        match label with
        | Some l when hits <> [] -> Buffer.add_string buf (l ^ "\n")
        | _ -> ()
      end
      else
        List.iter
          (fun line ->
            Buffer.add_string buf
              (match label with
              | Some l -> Printf.sprintf "%s:%s\n" l line
              | None -> line ^ "\n"))
          hits
    in
    if files = [] then begin
      grep_content ~label:None stdin;
      { code = (if !matched_any then 0 else 1); out = Buffer.contents buf; err = "" }
    end
    else begin
      let err = Buffer.create 0 in
      let rec one arg path =
        match Fs.lstat env.Env.fs ~cred:env.Env.cred path with
        | Error e ->
          Buffer.add_string err
            (Printf.sprintf "grep: %s: %s\n" arg (Vfs.Errno.message e))
        | Ok { kind = Fs.Dir; _ } when recursive -> (
          match Fs.readdir env.Env.fs ~cred:env.Env.cred path with
          | Ok names ->
            List.iter
              (fun n ->
                one (arg ^ "/" ^ n) (Path.child path n))
              names
          | Error _ -> ())
        | Ok { kind = Fs.Dir; _ } ->
          Buffer.add_string err (Printf.sprintf "grep: %s: is a directory\n" arg)
        | Ok _ -> (
          match Fs.read_file env.Env.fs ~cred:env.Env.cred path with
          | Ok content ->
            let label = if List.length files > 1 || recursive then Some arg else None in
            grep_content ~label content
          | Error _ -> ())
      in
      List.iter (fun arg -> one arg (Env.resolve env arg)) files;
      { code = (if !matched_any then 0 else 1);
        out = Buffer.contents buf;
        err = Buffer.contents err }
    end

(* --- text utilities ---------------------------------------------------------------- *)

let wc ~flags ~stdin =
  let ls = lines stdin in
  if has "-l" flags then ok (Printf.sprintf "%d\n" (List.length ls))
  else if has "-c" flags then ok (Printf.sprintf "%d\n" (String.length stdin))
  else
    let words =
      List.fold_left
        (fun acc line ->
          acc
          + (String.split_on_char ' ' line |> List.filter (fun w -> w <> "") |> List.length))
        0 ls
    in
    ok (Printf.sprintf "%d %d %d\n" (List.length ls) words (String.length stdin))

let head_tail ~first ~flags ~stdin =
  let n =
    let rec find = function
      | "-n" :: v :: _ -> int_of_string_opt v
      | _ :: rest -> find rest
      | [] -> None
    in
    Option.value (find flags) ~default:10
  in
  let ls = lines stdin in
  let keep =
    if first then List.filteri (fun i _ -> i < n) ls
    else begin
      let total = List.length ls in
      List.filteri (fun i _ -> i >= total - n) ls
    end
  in
  ok (unlines keep)

let sort_cmd ~flags ~stdin =
  let ls = List.sort String.compare (lines stdin) in
  let ls = if has "-r" flags then List.rev ls else ls in
  let ls = if has "-u" flags then List.sort_uniq String.compare ls else ls in
  ok (unlines ls)

let uniq ~flags ~stdin =
  let rec dedup = function
    | a :: b :: rest when a = b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  let ls = dedup (lines stdin) in
  ignore flags;
  ok (unlines ls)

let cut ~flags ~args ~stdin =
  let delim =
    let rec find = function
      | "-d" :: v :: _ when String.length v = 1 -> Some v.[0]
      | _ :: rest -> find rest
      | [] -> None
    in
    Option.value (find (flags @ args)) ~default:'\t'
  in
  let field =
    let rec find = function
      | "-f" :: v :: _ -> int_of_string_opt v
      | _ :: rest -> find rest
      | [] -> None
    in
    find (flags @ args)
  in
  match field with
  | None -> fail "usage: cut -d C -f N\n"
  | Some f ->
    let pick line =
      match List.nth_opt (String.split_on_char delim line) (f - 1) with
      | Some v -> v
      | None -> line
    in
    ok (unlines (List.map pick (lines stdin)))

(* --- ACLs and xattrs (paper 5.1) ---------------------------------------------- *)

let getfacl env ~args =
  let buf = Buffer.create 128 in
  let err = Buffer.create 0 in
  let code = ref 0 in
  List.iter
    (fun arg ->
      let path = Env.resolve env arg in
      match
        ( Fs.stat env.Env.fs ~cred:env.Env.cred path,
          Fs.get_acl env.Env.fs ~cred:env.Env.cred path )
      with
      | Ok st, Ok acl ->
        Buffer.add_string buf (Printf.sprintf "# file: %s\n# owner: %d\n# group: %d\n" (Path.to_string path) st.uid st.gid);
        Buffer.add_string buf (Vfs.Acl.to_text ~mode:st.mode acl);
        Buffer.add_char buf '\n'
      | Error e, _ | _, Error e ->
        code := 1;
        Buffer.add_string err
          (Printf.sprintf "getfacl: %s: %s\n" arg (Vfs.Errno.message e)))
    args;
  { code = !code; out = Buffer.contents buf; err = Buffer.contents err }

(* setfacl -m ENTRY PATH | -x TAG PATH | -b PATH; the mask is recomputed
   as the union of group-class entries, as setfacl(1) does. *)
let setfacl env ~args =
  let with_acl path f =
    match Fs.get_acl env.Env.fs ~cred:env.Env.cred path with
    | Error e -> errno "setfacl" path e
    | Ok acl -> (
      match f acl with
      | Error msg -> fail (Printf.sprintf "setfacl: %s\n" msg)
      | Ok acl -> (
        let acl =
          (* recompute the mask over named users/groups + owning group *)
          let group_class =
            List.filter_map
              (fun (e : Vfs.Acl.entry) ->
                match e.tag with
                | Vfs.Acl.User _ | Vfs.Acl.Group _ | Vfs.Acl.Group_obj ->
                  Some e.perms
                | _ -> None)
              acl
          in
          let has_named =
            List.exists
              (fun (e : Vfs.Acl.entry) ->
                match e.tag with Vfs.Acl.User _ | Vfs.Acl.Group _ -> true | _ -> false)
              acl
          in
          if has_named then
            Vfs.Acl.add acl
              { Vfs.Acl.tag = Vfs.Acl.Mask;
                perms = List.fold_left ( lor ) 0 group_class }
          else Vfs.Acl.remove acl Vfs.Acl.Mask
        in
        match Fs.set_acl env.Env.fs ~cred:env.Env.cred path acl with
        | Ok () -> ok ""
        | Error e -> errno "setfacl" path e))
  in
  match args with
  | [ "-m"; entry; target ] ->
    with_acl (Env.resolve env target) (fun acl ->
        Result.map
          (fun entries -> List.fold_left Vfs.Acl.add acl entries)
          (Vfs.Acl.of_text entry))
  | [ "-x"; spec; target ] -> (
    let tag =
      match String.split_on_char ':' spec with
      | [ "user"; id ] | [ "u"; id ] ->
        Option.map (fun i -> Vfs.Acl.User i) (int_of_string_opt id)
      | [ "group"; id ] | [ "g"; id ] ->
        Option.map (fun i -> Vfs.Acl.Group i) (int_of_string_opt id)
      | _ -> None
    in
    match tag with
    | None -> fail (Printf.sprintf "setfacl: bad tag %S\n" spec)
    | Some tag ->
      with_acl (Env.resolve env target) (fun acl -> Ok (Vfs.Acl.remove acl tag)))
  | [ "-b"; target ] -> (
    let path = Env.resolve env target in
    match Fs.set_acl env.Env.fs ~cred:env.Env.cred path Vfs.Acl.empty with
    | Ok () -> ok ""
    | Error e -> errno "setfacl" path e)
  | _ -> fail "usage: setfacl -m user:UID:rwx PATH | -x user:UID PATH | -b PATH\n"

let getfattr env ~flags ~args =
  let name =
    let rec find = function
      | "-n" :: v :: _ -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find (flags @ args)
  in
  let targets = List.filter (fun a -> a <> "-n" && Some a <> name) args in
  let buf = Buffer.create 64 in
  let err = Buffer.create 0 in
  let code = ref 0 in
  List.iter
    (fun arg ->
      let path = Env.resolve env arg in
      match name with
      | Some n -> (
        match Fs.getxattr env.Env.fs ~cred:env.Env.cred path ~name:n with
        | Ok v -> Buffer.add_string buf (Printf.sprintf "%s=\"%s\"\n" n v)
        | Error e ->
          code := 1;
          Buffer.add_string err (Printf.sprintf "getfattr: %s: %s\n" arg (Vfs.Errno.message e)))
      | None -> (
        match Fs.listxattr env.Env.fs ~cred:env.Env.cred path with
        | Ok names -> List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) names
        | Error e ->
          code := 1;
          Buffer.add_string err (Printf.sprintf "getfattr: %s: %s\n" arg (Vfs.Errno.message e))))
    targets;
  { code = !code; out = Buffer.contents buf; err = Buffer.contents err }

let setfattr env ~args =
  match args with
  | [ "-n"; name; "-v"; value; target ] -> (
    let path = Env.resolve env target in
    match Fs.setxattr env.Env.fs ~cred:env.Env.cred path ~name ~value with
    | Ok () -> ok ""
    | Error e -> errno "setfattr" path e)
  | [ "-x"; name; target ] -> (
    let path = Env.resolve env target in
    match Fs.removexattr env.Env.fs ~cred:env.Env.cred path ~name with
    | Ok () -> ok ""
    | Error e -> errno "setfattr" path e)
  | _ -> fail "usage: setfattr -n NAME -v VALUE PATH | -x NAME PATH\n"

let tee env ~args ~stdin =
  List.iter
    (fun arg ->
      ignore (Fs.write_file env.Env.fs ~cred:env.Env.cred (Env.resolve env arg) stdin))
    args;
  ok stdin

(* --- dispatch ----------------------------------------------------------------------- *)

let known =
  [ "cat"; "cd"; "chmod"; "cp"; "echo"; "false"; "find"; "getfacl";
    "getfattr"; "grep"; "head"; "ln"; "ls"; "mkdir"; "mv"; "pwd"; "readlink";
    "rm"; "rmdir"; "setfacl"; "setfattr"; "sort"; "stat"; "tail"; "tee";
    "touch"; "tree"; "true"; "uniq"; "wc"; "cut" ]
  |> List.sort String.compare

let rec exec env ~argv ~stdin =
  match argv with
  | [] -> ok stdin
  | cmd :: rest -> (
    let flags, args = flags_and_args rest in
    match cmd with
    | "ls" -> ls env ~flags ~args
    | "cat" -> cat env ~args ~stdin
    | "echo" -> echo ~flags ~args
    | "mkdir" -> mkdir env ~flags ~args
    | "rmdir" -> rmdir env ~args
    | "rm" -> rm env ~flags ~args
    | "ln" -> ln env ~flags ~args
    | "cp" -> cp env ~flags ~args
    | "mv" -> mv env ~args
    | "touch" -> touch env ~args
    | "stat" -> stat_cmd env ~args
    | "readlink" -> readlink_cmd env ~args
    | "chmod" -> chmod env ~args
    | "tree" -> tree env ~args
    | "pwd" -> ok (Path.to_string env.Env.cwd ^ "\n")
    | "cd" -> (
      match args with
      | [] ->
        env.Env.cwd <- Path.root;
        ok ""
      | arg :: _ ->
        let path = Env.resolve env arg in
        if Fs.is_dir env.Env.fs ~cred:env.Env.cred path then begin
          env.Env.cwd <- path;
          ok ""
        end
        else fail (Printf.sprintf "cd: %s: no such directory\n" arg))
    | "find" ->
      find env ~args:rest ~run_exec:(fun argv ->
          (exec env ~argv ~stdin:"").out)
    | "grep" -> grep env ~flags ~args ~stdin
    | "wc" -> wc ~flags ~stdin
    | "head" -> head_tail ~first:true ~flags:rest ~stdin
    | "tail" -> head_tail ~first:false ~flags:rest ~stdin
    | "sort" -> sort_cmd ~flags ~stdin
    | "uniq" -> uniq ~flags ~stdin
    | "cut" -> cut ~flags ~args ~stdin
    | "tee" -> tee env ~args ~stdin
    | "getfacl" -> getfacl env ~args
    | "setfacl" -> setfacl env ~args:rest
    | "getfattr" -> getfattr env ~flags ~args
    | "setfattr" -> setfattr env ~args:rest
    | "true" -> ok ""
    | "false" -> fail ~code:1 ""
    | _ -> fail ~code:127 (Printf.sprintf "%s: command not found\n" cmd))
