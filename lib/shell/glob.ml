let matches ~pattern name =
  let np = String.length pattern
  and nn = String.length name in
  (* Classic backtracking wildcard match. *)
  let rec go pi ni star_pi star_ni =
    if ni = nn then
      if pi = np then true
      else if pattern.[pi] = '*' then go (pi + 1) ni star_pi star_ni
      else star_pi >= 0 && false
    else if pi < np && pattern.[pi] = '*' then go (pi + 1) ni pi ni
    else if pi < np && (pattern.[pi] = '?' || pattern.[pi] = name.[ni]) then
      go (pi + 1) (ni + 1) star_pi star_ni
    else if star_pi >= 0 then go (star_pi + 1) (star_ni + 1) star_pi (star_ni + 1)
    else false
  in
  go 0 0 (-1) (-1)

let has_glob s = String.exists (fun c -> c = '*' || c = '?') s

let expand env arg =
  if not (has_glob arg) then [ arg ]
  else begin
    let absolute = arg <> "" && arg.[0] = '/' in
    let base = if absolute then Vfs.Path.root else env.Env.cwd in
    let comps =
      String.split_on_char '/' arg |> List.filter (fun c -> c <> "")
    in
    let rec walk acc comps =
      match comps with
      | [] -> [ acc ]
      | comp :: rest ->
        if has_glob comp then
          match Vfs.Fs.readdir env.Env.fs ~cred:env.Env.cred acc with
          | Error _ -> []
          | Ok names ->
            names
            |> List.filter (fun n -> matches ~pattern:comp n)
            |> List.concat_map (fun n -> walk (Vfs.Path.child acc n) rest)
        else walk (Vfs.Path.child acc comp) rest
    in
    let hits =
      walk base comps
      |> List.filter (fun p -> Vfs.Fs.exists env.Env.fs ~cred:env.Env.cred p)
      |> List.map Vfs.Path.to_string
      |> List.sort String.compare
    in
    if hits = [] then [ arg ] else hits
  end
