(* Dentry + permission-decision cache for the VFS hot path.

   The cache is generic in the node type so it can live below [Fs]
   (which owns the concrete node representation) without a dependency
   cycle. Soundness rests on three rules enforced by the caller:

   - only resolutions that traversed NO symlink are inserted, so every
     cached key is its own canonical path and prefix invalidation by
     canonical op paths reaches every alias;
   - only [Ok _] and [Error ENOENT] results are inserted — EACCES and
     ENOTDIR depend on intermediate state in ways not worth modelling;
   - every mutation invalidates (prefix for namespace ops, ino for
     attribute ops) BEFORE hooks run, so subscribers never observe a
     stale lookup. *)

type dkey = {
  uid : int;
  gid : int;
  groups : int list;
  follow : bool;
  name : string; (* Path.to_string of the queried path *)
}

type 'a dentry = { dpath : Path.t; value : ('a, Errno.t) result }

type akey = {
  a_ino : int;
  a_uid : int;
  a_gid : int;
  a_groups : int list;
  access : Perm.access;
}

type 'a t = {
  cost : Cost.t;
  max_entries : int;
  mutable enabled : bool;
  dentries : (dkey, 'a dentry) Hashtbl.t;
  attrs : (akey, bool) Hashtbl.t;
}

let create ?(max_entries = 8192) cost =
  { cost; max_entries; enabled = true;
    dentries = Hashtbl.create 256; attrs = Hashtbl.create 256 }

let flush t =
  Hashtbl.reset t.dentries;
  Hashtbl.reset t.attrs

let enabled t = t.enabled

let set_enabled t b =
  if not b then flush t;
  t.enabled <- b

let dkey ~cred ~follow path =
  { uid = cred.Cred.uid; gid = cred.Cred.gid; groups = cred.Cred.groups;
    follow; name = Path.to_string path }

let akey ~ino ~cred ~access =
  { a_ino = ino; a_uid = cred.Cred.uid; a_gid = cred.Cred.gid;
    a_groups = cred.Cred.groups; access }

let find t ~cred ~follow path =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.dentries (dkey ~cred ~follow path) with
    | Some { value = Ok _ as v; _ } ->
      Cost.dentry_hit t.cost;
      Some v
    | Some { value = Error _ as v; _ } ->
      Cost.negative_hit t.cost;
      Some v
    | None ->
      Cost.dentry_miss t.cost;
      None

let add t ~cred ~follow path value =
  if t.enabled then
    match value with
    | Ok _ | Error Errno.ENOENT ->
      if Hashtbl.length t.dentries >= t.max_entries then
        Hashtbl.reset t.dentries;
      Hashtbl.replace t.dentries (dkey ~cred ~follow path)
        { dpath = path; value }
    | Error _ -> ()

let find_perm t ~ino ~cred ~access =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.attrs (akey ~ino ~cred ~access) with
    | Some _ as hit ->
      Cost.attr_hit t.cost;
      hit
    | None ->
      Cost.attr_miss t.cost;
      None

let add_perm t ~ino ~cred ~access allowed =
  if t.enabled then begin
    if Hashtbl.length t.attrs >= t.max_entries then Hashtbl.reset t.attrs;
    Hashtbl.replace t.attrs (akey ~ino ~cred ~access) allowed
  end

let invalidate_prefix t prefix =
  let doomed =
    Hashtbl.fold
      (fun k e acc -> if Path.is_prefix prefix e.dpath then k :: acc else acc)
      t.dentries []
  in
  List.iter (Hashtbl.remove t.dentries) doomed;
  Cost.invalidated t.cost (List.length doomed)

let invalidate_attrs t ~ino =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if k.a_ino = ino then k :: acc else acc)
      t.attrs []
  in
  List.iter (Hashtbl.remove t.attrs) doomed;
  Cost.invalidated t.cost (List.length doomed)

let length t = Hashtbl.length t.dentries, Hashtbl.length t.attrs
