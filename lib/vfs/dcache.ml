(* Dentry + permission-decision cache for the VFS hot path.

   The cache is generic in the node type so it can live below [Fs]
   (which owns the concrete node representation) without a dependency
   cycle. Soundness rests on three rules enforced by the caller:

   - only resolutions that traversed NO symlink are inserted, so every
     cached key is its own canonical path and prefix invalidation by
     canonical op paths reaches every alias;
   - only [Ok _] and [Error ENOENT] results are inserted — EACCES and
     ENOTDIR depend on intermediate state in ways not worth modelling;
   - every mutation invalidates (prefix for namespace ops, ino for
     attribute ops) BEFORE hooks run, so subscribers never observe a
     stale lookup.

   Invalidation is O(affected), not O(cache): every dentry is indexed
   under each ancestor prefix of its path, and every permission entry
   under its inode, so a mutation pays for the entries it actually
   kills. A full-table scan here would put an O(cache) toll on every
   create/unlink and make unrelated mutations slower as the cache
   warms — the same hidden-full-scan failure mode the driver's commit
   queue exists to avoid. *)

type dkey = {
  uid : int;
  gid : int;
  groups : int list;
  follow : bool;
  name : string; (* Path.to_string of the queried path *)
}

type 'a dentry = { dpath : Path.t; value : ('a, Errno.t) result }

type akey = {
  a_ino : int;
  a_uid : int;
  a_gid : int;
  a_groups : int list;
  access : Perm.access;
}

type 'a t = {
  cost : Cost.t;
  max_entries : int;
  mutable enabled : bool;
  dentries : (dkey, 'a dentry) Hashtbl.t;
  (* Every ancestor prefix (root..self, as strings) -> keys cached at
     or below it. Buckets are small hash sets so registration and
     removal are O(path depth). *)
  by_prefix : (string, (dkey, unit) Hashtbl.t) Hashtbl.t;
  attrs : (akey, bool) Hashtbl.t;
  by_ino : (int, (akey, unit) Hashtbl.t) Hashtbl.t;
}

let create ?(max_entries = 8192) cost =
  { cost; max_entries; enabled = true;
    dentries = Hashtbl.create 256; by_prefix = Hashtbl.create 256;
    attrs = Hashtbl.create 256; by_ino = Hashtbl.create 256 }

let flush t =
  Hashtbl.reset t.dentries;
  Hashtbl.reset t.by_prefix;
  Hashtbl.reset t.attrs;
  Hashtbl.reset t.by_ino

let enabled t = t.enabled

let set_enabled t b =
  if not b then flush t;
  t.enabled <- b

let dkey ~cred ~follow path =
  { uid = cred.Cred.uid; gid = cred.Cred.gid; groups = cred.Cred.groups;
    follow; name = Path.to_string path }

let akey ~ino ~cred ~access =
  { a_ino = ino; a_uid = cred.Cred.uid; a_gid = cred.Cred.gid;
    a_groups = cred.Cred.groups; access }

(* Ancestor prefixes of [path] as strings, root first, self last. *)
let prefixes path =
  let rec go acc p =
    let acc = Path.to_string p :: acc in
    match Path.parent p with None -> acc | Some parent -> go acc parent
  in
  go [] path

let register_prefixes t key dpath =
  List.iter
    (fun pfx ->
      let bucket =
        match Hashtbl.find_opt t.by_prefix pfx with
        | Some b -> b
        | None ->
          let b = Hashtbl.create 4 in
          Hashtbl.replace t.by_prefix pfx b;
          b
      in
      Hashtbl.replace bucket key ())
    (prefixes dpath)

let unregister_prefixes t key dpath =
  List.iter
    (fun pfx ->
      match Hashtbl.find_opt t.by_prefix pfx with
      | None -> ()
      | Some b ->
        Hashtbl.remove b key;
        if Hashtbl.length b = 0 then Hashtbl.remove t.by_prefix pfx)
    (prefixes dpath)

let find t ~cred ~follow path =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.dentries (dkey ~cred ~follow path) with
    | Some { value = Ok _ as v; _ } ->
      Cost.dentry_hit t.cost;
      Some v
    | Some { value = Error _ as v; _ } ->
      Cost.negative_hit t.cost;
      Some v
    | None ->
      Cost.dentry_miss t.cost;
      None

let add t ~cred ~follow path value =
  if t.enabled then
    match value with
    | Ok _ | Error Errno.ENOENT ->
      if Hashtbl.length t.dentries >= t.max_entries then begin
        Hashtbl.reset t.dentries;
        Hashtbl.reset t.by_prefix
      end;
      let key = dkey ~cred ~follow path in
      (match Hashtbl.find_opt t.dentries key with
      | Some old -> unregister_prefixes t key old.dpath
      | None -> ());
      Hashtbl.replace t.dentries key { dpath = path; value };
      register_prefixes t key path
    | Error _ -> ()

let find_perm t ~ino ~cred ~access =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.attrs (akey ~ino ~cred ~access) with
    | Some _ as hit ->
      Cost.attr_hit t.cost;
      hit
    | None ->
      Cost.attr_miss t.cost;
      None

let add_perm t ~ino ~cred ~access allowed =
  if t.enabled then begin
    if Hashtbl.length t.attrs >= t.max_entries then begin
      Hashtbl.reset t.attrs;
      Hashtbl.reset t.by_ino
    end;
    let key = akey ~ino ~cred ~access in
    Hashtbl.replace t.attrs key allowed;
    let bucket =
      match Hashtbl.find_opt t.by_ino ino with
      | Some b -> b
      | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace t.by_ino ino b;
        b
    in
    Hashtbl.replace bucket key ()
  end

let invalidate_prefix t prefix =
  match Hashtbl.find_opt t.by_prefix (Path.to_string prefix) with
  | None -> ()
  | Some bucket ->
    (* Snapshot: removal edits the buckets we are iterating over. *)
    let doomed = Hashtbl.fold (fun k () acc -> k :: acc) bucket [] in
    List.iter
      (fun k ->
        match Hashtbl.find_opt t.dentries k with
        | Some e ->
          Hashtbl.remove t.dentries k;
          unregister_prefixes t k e.dpath
        | None -> ())
      doomed;
    Cost.invalidated t.cost (List.length doomed)

let invalidate_attrs t ~ino =
  match Hashtbl.find_opt t.by_ino ino with
  | None -> ()
  | Some bucket ->
    let doomed = Hashtbl.fold (fun k () acc -> k :: acc) bucket [] in
    List.iter (Hashtbl.remove t.attrs) doomed;
    Hashtbl.remove t.by_ino ino;
    Cost.invalidated t.cost (List.length doomed)

let length t = Hashtbl.length t.dentries, Hashtbl.length t.attrs
