(** Absolute, normalized file-system paths.

    A path is stored as the list of its components; ["/"] is the empty
    list. Normalization resolves ["."] and [".."] lexically (symlink
    resolution happens in {!Fs}, which must see each component). *)

type t

val root : t

val of_string : string -> (t, Errno.t) result
(** Parse an absolute or relative path string. A relative string is
    interpreted relative to {!root}. Empty strings and components longer
    than 255 bytes are rejected with [EINVAL] / [ENAMETOOLONG]. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Invalid_argument] on error. For literals. *)

val to_string : t -> string

val components : t -> string list
(** Components from the root, e.g. ["/net/switches/sw1"] gives
    [["net"; "switches"; "sw1"]]. *)

val of_components : string list -> t

val child : t -> string -> t
(** [child p name] appends one component. [name] must not contain ['/']. *)

val parent : t -> t option
(** [None] for the root. *)

val basename : t -> string option
(** Last component; [None] for the root. *)

val append : t -> t -> t
(** [append a b] concatenates [b]'s components after [a]'s. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] is true when [a] is [b] or an ancestor of [b]. *)

val strip_prefix : prefix:t -> t -> t option
(** [strip_prefix ~prefix p] removes [prefix] from the front of [p];
    [None] if [prefix] is not actually a prefix. *)

val valid_name : string -> bool
(** A legal single component: non-empty, at most 255 bytes, and
    containing neither ['/'] nor ['\000'], and not ["."] or [".."]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
