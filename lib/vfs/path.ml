type t = string list (* components from the root; [] is "/" *)

let root = []

let valid_name name =
  name <> "" && name <> "." && name <> ".."
  && String.length name <= 255
  && not (String.contains name '/')
  && not (String.contains name '\000')

let normalize comps =
  (* Lexical resolution of "." and ".."; ".." at the root stays at the
     root, as in POSIX. *)
  let rec go acc = function
    | [] -> List.rev acc
    | "" :: rest | "." :: rest -> go acc rest
    | ".." :: rest -> (match acc with [] -> go [] rest | _ :: tl -> go tl rest)
    | c :: rest -> go (c :: acc) rest
  in
  go [] comps

let of_string s =
  if s = "" then Error Errno.EINVAL
  else
    let comps = String.split_on_char '/' s in
    let comps = normalize comps in
    if List.exists (fun c -> String.length c > 255) comps then
      Error Errno.ENAMETOOLONG
    else if List.exists (fun c -> String.contains c '\000') comps then
      Error Errno.EINVAL
    else Ok comps

let of_string_exn s =
  match of_string s with
  | Ok p -> p
  | Error e -> invalid_arg (Printf.sprintf "Path.of_string_exn %S: %s" s (Errno.to_string e))

let to_string = function
  | [] -> "/"
  | comps -> "/" ^ String.concat "/" comps

let components p = p

let of_components comps = normalize comps

let child p name = p @ [ name ]

let parent = function
  | [] -> None
  | comps ->
    let rec drop_last = function
      | [] | [ _ ] -> []
      | c :: rest -> c :: drop_last rest
    in
    Some (drop_last comps)

let basename p =
  match List.rev p with [] -> None | last :: _ -> Some last

let append a b = a @ b

let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys

let rec strip_prefix ~prefix p =
  match prefix, p with
  | [], p -> Some p
  | _, [] -> None
  | x :: xs, y :: ys -> if String.equal x y then strip_prefix ~prefix:xs ys else None

let equal a b = List.equal String.equal a b

let compare a b = List.compare String.compare a b

let pp ppf p = Format.pp_print_string ppf (to_string p)
