type t = {
  switch_cost_ns : float;
  mutable crossings : int;
  mutable charged_ns : float;
  mutable suspended : int; (* depth of [suspended] nesting *)
}

let create ?(switch_cost_ns = 1000.) () =
  { switch_cost_ns; crossings = 0; charged_ns = 0.; suspended = 0 }

let crossings t = t.crossings

let charged_ns t = t.charged_ns

let syscall t =
  if t.suspended = 0 then begin
    t.crossings <- t.crossings + 1;
    t.charged_ns <- t.charged_ns +. t.switch_cost_ns
  end

let suspended t f =
  t.suspended <- t.suspended + 1;
  Fun.protect ~finally:(fun () -> t.suspended <- t.suspended - 1) f

let reset t =
  t.crossings <- 0;
  t.charged_ns <- 0.

let pp ppf t =
  Format.fprintf ppf "%d crossings (%.1f us modelled)" t.crossings
    (t.charged_ns /. 1000.)
