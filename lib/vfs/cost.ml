type t = {
  switch_cost_ns : float;
  mutable crossings : int;
  mutable charged_ns : float;
  mutable suspended : int; (* depth of [suspended] nesting *)
  (* name-lookup accounting (dcache instrumentation) *)
  mutable components : int;
  mutable dentry_hits : int;
  mutable dentry_misses : int;
  mutable negative_hits : int;
  mutable attr_hits : int;
  mutable attr_misses : int;
  mutable invalidations : int;
  (* event-routing accounting (fsnotify instrumentation) *)
  mutable events_dispatched : int;
  mutable watches_visited : int;
  mutable events_coalesced : int;
  mutable overflows : int;
}

let create ?(switch_cost_ns = 1000.) () =
  { switch_cost_ns; crossings = 0; charged_ns = 0.; suspended = 0;
    components = 0; dentry_hits = 0; dentry_misses = 0; negative_hits = 0;
    attr_hits = 0; attr_misses = 0; invalidations = 0;
    events_dispatched = 0; watches_visited = 0; events_coalesced = 0;
    overflows = 0 }

let crossings t = t.crossings

let charged_ns t = t.charged_ns

let syscall t =
  if t.suspended = 0 then begin
    t.crossings <- t.crossings + 1;
    t.charged_ns <- t.charged_ns +. t.switch_cost_ns
  end

let suspended t f =
  t.suspended <- t.suspended + 1;
  Fun.protect ~finally:(fun () -> t.suspended <- t.suspended - 1) f

(* Lookup work is counted even inside [suspended]: it measures dentry
   walking, not kernel crossings, and a libyanc batch still walks. *)
let component_resolved t = t.components <- t.components + 1

let dentry_hit t = t.dentry_hits <- t.dentry_hits + 1

let dentry_miss t = t.dentry_misses <- t.dentry_misses + 1

let negative_hit t = t.negative_hits <- t.negative_hits + 1

let attr_hit t = t.attr_hits <- t.attr_hits + 1

let attr_miss t = t.attr_misses <- t.attr_misses + 1

let invalidated t n = t.invalidations <- t.invalidations + n

let components t = t.components

let dentry_hits t = t.dentry_hits

let dentry_misses t = t.dentry_misses

let negative_hits t = t.negative_hits

let attr_hits t = t.attr_hits

let attr_misses t = t.attr_misses

let invalidations t = t.invalidations

(* Event-routing work is counted like lookup work: it measures watches
   examined and events queued, not kernel crossings, so it is never gated
   by [suspended]. *)
let event_dispatched t = t.events_dispatched <- t.events_dispatched + 1

let visit_watches t n = t.watches_visited <- t.watches_visited + n

let event_coalesced t = t.events_coalesced <- t.events_coalesced + 1

let overflow_dropped t = t.overflows <- t.overflows + 1

let events_dispatched t = t.events_dispatched

let watches_visited t = t.watches_visited

let events_coalesced t = t.events_coalesced

let overflows t = t.overflows

let reset t =
  t.crossings <- 0;
  t.charged_ns <- 0.;
  t.components <- 0;
  t.dentry_hits <- 0;
  t.dentry_misses <- 0;
  t.negative_hits <- 0;
  t.attr_hits <- 0;
  t.attr_misses <- 0;
  t.invalidations <- 0;
  t.events_dispatched <- 0;
  t.watches_visited <- 0;
  t.events_coalesced <- 0;
  t.overflows <- 0

let pp ppf t =
  Format.fprintf ppf
    "%d crossings (%.1f us modelled), %d components walked, dcache %d/%d \
     hit/miss (%d negative), %d invalidated, notify %d dispatched / %d \
     watches visited / %d coalesced / %d overflow-dropped"
    t.crossings
    (t.charged_ns /. 1000.)
    t.components (t.dentry_hits + t.negative_hits) t.dentry_misses
    t.negative_hits t.invalidations t.events_dispatched t.watches_visited
    t.events_coalesced t.overflows
