(** POSIX-style error codes returned by every file-system operation.

    The yanc paper exposes all network configuration and state through
    file I/O, so applications see network errors as ordinary [errno]
    values — e.g. writing a malformed flow field yields [EINVAL], touching
    a switch owned by another tenant yields [EACCES]. *)

type t =
  | ENOENT      (** no such file or directory *)
  | ENOTDIR     (** a path component is not a directory *)
  | EISDIR      (** operation on a directory where a file was expected *)
  | EEXIST      (** target already exists *)
  | ENOTEMPTY   (** directory not empty *)
  | EACCES      (** permission denied by mode bits or ACL *)
  | EPERM       (** operation not permitted (ownership, immutability) *)
  | EINVAL      (** invalid argument (bad name, bad field value) *)
  | ENAMETOOLONG
  | ELOOP       (** too many levels of symbolic links *)
  | EXDEV       (** cross-device link (rename across mounts) *)
  | EBADF       (** bad file descriptor *)
  | ENOSPC      (** quota exhausted *)
  | EROFS       (** read-only file system (e.g. a read-only view) *)
  | ENOTSUP     (** operation not supported by this node type *)
  | ESTALE      (** stale handle (distributed FS: node lost the object) *)
  | EIO         (** I/O error (distributed FS: partition, lost op) *)

val to_string : t -> string
(** Canonical lower-case name, e.g. ["enoent"]. *)

val message : t -> string
(** Human-readable description, as [strerror(3)] would give. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
