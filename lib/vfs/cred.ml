type t = { uid : int; gid : int; groups : int list }

let root = { uid = 0; gid = 0; groups = [] }

let make ?(groups = []) ~uid ~gid () = { uid; gid; groups }

let is_root c = c.uid = 0

let in_group c g = c.gid = g || List.mem g c.groups

let pp ppf c = Format.fprintf ppf "uid=%d gid=%d" c.uid c.gid
