type kind = Dir | File | Symlink

type stat = {
  ino : int;
  kind : kind;
  mode : int;
  uid : int;
  gid : int;
  nlink : int;
  size : int;
  atime : float;
  mtime : float;
  ctime : float;
}

type file_data = { mutable bytes : Bytes.t; mutable len : int }

type node = {
  ino : int;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
  mutable xattrs : (string * string) list;
  mutable acl : Acl.t;
  mutable payload : payload;
}

and payload =
  | P_dir of (string, node) Hashtbl.t
  | P_file of file_data
  | P_symlink of string

type open_file = { node : node; canon : Path.t; readable : bool; writable : bool; append : bool }

type fd = int

type hook = int

type t = {
  root : node;
  cost : Cost.t;
  dcache : node Dcache.t;
  mutable now : float;
  mutable readonly : bool;
  mutable next_ino : int;
  mutable next_fd : int;
  mutable next_hook : int;
  fds : (int, open_file) Hashtbl.t;
  mutable hooks : (int * (Op.t -> unit)) list; (* subscription order *)
  mutable rmdir_policy : Path.t -> bool;
  mutable symlink_policy : Path.t -> target:string -> bool;
  mutable objects : int;
  mutable bytes_used : int;
  (* Procfs-style read-generated files, keyed by inode (inodes are
     never reused, so entries for unlinked nodes are simply dead). *)
  generators : (int, unit -> string) Hashtbl.t;
}

let ( let* ) = Result.bind

let max_symlinks = 40

let fresh_node t ~mode ~uid ~gid payload =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  t.objects <- t.objects + 1;
  { ino; mode; uid; gid; atime = t.now; mtime = t.now; ctime = t.now;
    xattrs = []; acl = Acl.empty; payload }

let create ?(cost = Cost.create ()) () =
  let root =
    { ino = 1; mode = 0o755; uid = 0; gid = 0; atime = 0.; mtime = 0.;
      ctime = 0.; xattrs = []; acl = Acl.empty;
      payload = P_dir (Hashtbl.create 16) }
  in
  { root; cost; dcache = Dcache.create cost; now = 0.; readonly = false;
    next_ino = 2; next_fd = 3;
    next_hook = 0; fds = Hashtbl.create 16; hooks = [];
    rmdir_policy = (fun _ -> false);
    symlink_policy = (fun _ ~target:_ -> true);
    objects = 1; bytes_used = 0; generators = Hashtbl.create 8 }

let cost t = t.cost

let set_dcache_enabled t b = Dcache.set_enabled t.dcache b

let dcache_enabled t = Dcache.enabled t.dcache

let time t = t.now

let set_time t f = t.now <- f

let set_readonly t b = t.readonly <- b

let subscribe t f =
  let id = t.next_hook in
  t.next_hook <- id + 1;
  t.hooks <- t.hooks @ [ id, f ];
  id

let unsubscribe t id = t.hooks <- List.filter (fun (i, _) -> i <> id) t.hooks

(* Hooks run in subscription order over a snapshot, so a hook may mutate
   the file system (the yanc schema layer relies on this to auto-create
   typed children), but must itself terminate. *)
let emit t op =
  let snapshot = t.hooks in
  List.iter (fun (_, f) -> f op) snapshot

(* Alias for call sites where a parameter named [emit] is in scope. *)
let emit_op_to_hooks = emit

let set_rmdir_policy t f = t.rmdir_policy <- f

let set_symlink_policy t f = t.symlink_policy <- f

(* --- permission checks --------------------------------------------------- *)

(* The attribute side of the dcache: permission decisions are a pure
   function of (inode attributes, credential, access), so they are
   served from a per-ino cache that chmod/chown/set_acl invalidate. *)
let node_allows t node cred access =
  match Dcache.find_perm t.dcache ~ino:node.ino ~cred ~access with
  | Some allowed -> allowed
  | None ->
    let allowed =
      Acl.check ~acl:node.acl ~mode:node.mode ~owner:node.uid
        ~group:node.gid cred access
    in
    Dcache.add_perm t.dcache ~ino:node.ino ~cred ~access allowed;
    allowed

let require t node cred access =
  if node_allows t node cred access then Ok () else Error Errno.EACCES

let require_owner node cred =
  if Cred.is_root cred || cred.Cred.uid = node.uid then Ok ()
  else Error Errno.EPERM

let require_rw t = if t.readonly then Error Errno.EROFS else Ok ()

(* --- path resolution ----------------------------------------------------- *)

(* Walk from the root, following symlinks, requiring +x on every
   traversed directory. Returns the node together with its canonical
   (symlink-free) path.

   The dentry cache is consulted first. Only symlink-free resolutions
   are inserted, which keeps the cache sound under prefix invalidation
   (mutation ops carry canonical paths, and a symlink-free key IS its
   canonical path) and means a hit can return the queried path as the
   canonical path unchanged. Both [Ok] and [ENOENT] (negative entries)
   are cached; see {!Dcache}. *)
let resolve t cred ~follow_last path =
  match Dcache.find t.dcache ~cred ~follow:follow_last path with
  | Some (Ok node) -> Ok (node, path)
  | Some (Error e) -> Error e
  | None ->
    let symlinked = ref false in
    let rec walk node canon_rev comps budget =
      match comps with
      | [] -> Ok (node, List.rev canon_rev)
      | name :: rest -> (
        match node.payload with
        | P_file _ | P_symlink _ -> Error Errno.ENOTDIR
        | P_dir children ->
          Cost.component_resolved t.cost;
          let* () = require t node cred Perm.x_ok in
          (match Hashtbl.find_opt children name with
          | None -> Error Errno.ENOENT
          | Some child -> (
            match child.payload with
            | P_symlink target when rest <> [] || follow_last ->
              if budget = 0 then Error Errno.ELOOP
              else begin
                symlinked := true;
                let* tpath = Path.of_string target in
                let tcomps = Path.components tpath in
                if String.length target > 0 && target.[0] = '/' then
                  walk t.root [] (tcomps @ rest) (budget - 1)
                else walk node canon_rev (tcomps @ rest) (budget - 1)
              end
            | _ -> walk child (name :: canon_rev) rest budget)))
    in
    let result = walk t.root [] (Path.components path) max_symlinks in
    if not !symlinked then
      Dcache.add t.dcache ~cred ~follow:follow_last path
        (Result.map fst result);
    (match result with
    | Ok (node, canon) -> Ok (node, Path.of_components canon)
    | Error _ as e -> e)

(* Resolve the parent directory of [path] (following symlinks throughout,
   including a final symlink-to-directory in the parent position) and
   return it with the final component name. *)
let resolve_parent t cred path =
  match Path.parent path, Path.basename path with
  | None, _ | _, None -> Error Errno.EINVAL (* the root itself *)
  | Some parent, Some name ->
    if not (Path.valid_name name) then Error Errno.EINVAL
    else
      let* pnode, pcanon = resolve t cred ~follow_last:true parent in
      (match pnode.payload with
      | P_dir _ -> Ok (pnode, pcanon, name)
      | P_file _ | P_symlink _ -> Error Errno.ENOTDIR)

let dir_children node =
  match node.payload with
  | P_dir children -> Ok children
  | P_file _ | P_symlink _ -> Error Errno.ENOTDIR

(* --- stat ----------------------------------------------------------------- *)

let stat_of_node node =
  let kind, size =
    match node.payload with
    | P_dir children -> Dir, Hashtbl.length children
    | P_file f -> File, f.len
    | P_symlink target -> Symlink, String.length target
  in
  let nlink =
    match node.payload with
    | P_dir children ->
      let subdirs =
        Hashtbl.fold
          (fun _ n acc ->
            match n.payload with P_dir _ -> acc + 1 | _ -> acc)
          children 0
      in
      2 + subdirs
    | P_file _ | P_symlink _ -> 1
  in
  { ino = node.ino; kind; mode = node.mode; uid = node.uid; gid = node.gid;
    nlink; size; atime = node.atime; mtime = node.mtime; ctime = node.ctime }

(* --- mutations ------------------------------------------------------------ *)

let sys t = Cost.syscall t.cost

let mkdir_raw ?(mode = 0o755) t ~cred path ~emit_op =
  let* () = require_rw t in
  let* pnode, pcanon, name = resolve_parent t cred path in
  let* () = require t pnode cred Perm.x_ok in
  let* children = dir_children pnode in
  (* Lookup precedes the write check, as on Linux: an existing entry is
     EEXIST even when the parent is not writable by the caller. *)
  if Hashtbl.mem children name then Error Errno.EEXIST
  else
    let* () = require t pnode cred Perm.w_ok in
    begin
    let node =
      fresh_node t ~mode ~uid:cred.Cred.uid ~gid:cred.Cred.gid
        (P_dir (Hashtbl.create 8))
    in
    Hashtbl.replace children name node;
    pnode.mtime <- t.now;
    let canon = Path.child pcanon name in
    (* Kills any negative entry for the new name. *)
    Dcache.invalidate_prefix t.dcache canon;
    if emit_op then emit t (Op.Mkdir { path = canon; mode });
    Ok ()
  end

let mkdir ?mode t ~cred path =
  sys t;
  mkdir_raw ?mode t ~cred path ~emit_op:true

let mkdir_p ?mode t ~cred path =
  let rec go prefix = function
    | [] -> Ok ()
    | c :: rest ->
      let p = Path.child prefix c in
      sys t;
      (match mkdir_raw ?mode t ~cred p ~emit_op:true with
      | Ok () | Error Errno.EEXIST -> go p rest
      | Error _ as e -> e)
  in
  go Path.root (Path.components path)

let create_file_raw ?(mode = 0o644) t ~cred path ~emit_op =
  let* () = require_rw t in
  let* pnode, pcanon, name = resolve_parent t cred path in
  let* () = require t pnode cred Perm.x_ok in
  let* children = dir_children pnode in
  if Hashtbl.mem children name then Error Errno.EEXIST
  else
    let* () = require t pnode cred Perm.w_ok in
    begin
    let node =
      fresh_node t ~mode ~uid:cred.Cred.uid ~gid:cred.Cred.gid
        (P_file { bytes = Bytes.create 0; len = 0 })
    in
    Hashtbl.replace children name node;
    pnode.mtime <- t.now;
    let canon = Path.child pcanon name in
    Dcache.invalidate_prefix t.dcache canon;
    if emit_op then emit t (Op.Create { path = canon; mode });
    Ok (node, canon)
  end

let create_file ?mode t ~cred path =
  sys t;
  let* _ = create_file_raw ?mode t ~cred path ~emit_op:true in
  Ok ()

let file_data node =
  match node.payload with
  | P_file f -> Ok f
  | P_dir _ -> Error Errno.EISDIR
  | P_symlink _ -> Error Errno.EINVAL

let read_file t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  let* () = require t node cred Perm.r_ok in
  match Hashtbl.find_opt t.generators node.ino with
  | Some gen ->
    (* Procfs semantics: content is produced by the kernel at read time;
       the node stays empty (stat size 0) and no mutation is emitted. *)
    node.atime <- t.now;
    Ok (gen ())
  | None ->
    let* f = file_data node in
    node.atime <- t.now;
    Ok (Bytes.sub_string f.bytes 0 f.len)

let set_generator t path gen =
  match resolve t Cred.root ~follow_last:true path with
  | Error _ as e -> Result.map (fun _ -> ()) e
  | Ok (node, _) ->
    (match file_data node with
    | Error _ as e -> Result.map (fun _ -> ()) e
    | Ok _ ->
      Hashtbl.replace t.generators node.ino gen;
      Ok ())

let grow f size =
  if Bytes.length f.bytes < size then begin
    let cap = max size (max 32 (2 * Bytes.length f.bytes)) in
    let nb = Bytes.make cap '\000' in
    Bytes.blit f.bytes 0 nb 0 f.len;
    f.bytes <- nb
  end

let write_at t node f ~off data =
  let n = String.length data in
  let new_len = max f.len (off + n) in
  grow f new_len;
  if off > f.len then Bytes.fill f.bytes f.len (off - f.len) '\000';
  Bytes.blit_string data 0 f.bytes off n;
  t.bytes_used <- t.bytes_used + (new_len - f.len);
  f.len <- new_len;
  node.mtime <- t.now

let write_file_raw t ~cred path data ~emit_op =
  let* () = require_rw t in
  let* existing =
    match resolve t cred ~follow_last:true path with
    | Ok (node, canon) ->
      let* () = require t node cred Perm.w_ok in
      let* f = file_data node in
      Ok (node, canon, f, true)
    | Error Errno.ENOENT ->
      let* node, canon = create_file_raw t ~cred path ~emit_op in
      let* f = file_data node in
      Ok (node, canon, f, false)
    | Error _ as e -> e
  in
  let node, canon, f, existed = existing in
  t.bytes_used <- t.bytes_used - f.len;
  f.len <- 0;
  write_at t node f ~off:0 data;
  if emit_op then begin
    (* A brand-new file needs no truncate in the journal. *)
    if existed then emit t (Op.Truncate { path = canon; size = 0 });
    emit t (Op.Write { path = canon; off = 0; data })
  end;
  Ok ()

let write_file t ~cred path data =
  sys t;
  write_file_raw t ~cred path data ~emit_op:true

let append_file t ~cred path data =
  sys t;
  let* () = require_rw t in
  let* node, canon, f =
    match resolve t cred ~follow_last:true path with
    | Ok (node, canon) ->
      let* () = require t node cred Perm.w_ok in
      let* f = file_data node in
      Ok (node, canon, f)
    | Error Errno.ENOENT ->
      let* node, canon = create_file_raw t ~cred path ~emit_op:true in
      let* f = file_data node in
      Ok (node, canon, f)
    | Error _ as e -> e
  in
  let off = f.len in
  write_at t node f ~off data;
  emit t (Op.Write { path = canon; off; data });
  Ok ()

let truncate t ~cred path size =
  sys t;
  let* () = require_rw t in
  if size < 0 then Error Errno.EINVAL
  else
    let* node, canon = resolve t cred ~follow_last:true path in
    let* () = require t node cred Perm.w_ok in
    let* f = file_data node in
    if size <= f.len then begin
      t.bytes_used <- t.bytes_used - (f.len - size);
      f.len <- size
    end
    else begin
      grow f size;
      Bytes.fill f.bytes f.len (size - f.len) '\000';
      t.bytes_used <- t.bytes_used + (size - f.len);
      f.len <- size
    end;
    node.mtime <- t.now;
    emit t (Op.Truncate { path = canon; size });
    Ok ()

let drop_node t node =
  t.objects <- t.objects - 1;
  match node.payload with
  | P_file f -> t.bytes_used <- t.bytes_used - f.len
  | P_dir _ | P_symlink _ -> ()

let unlink_raw t ~cred path ~emit_op =
  let* () = require_rw t in
  let* pnode, pcanon, name = resolve_parent t cred path in
  let* () = require t pnode cred Perm.w_ok in
  let* () = require t pnode cred Perm.x_ok in
  let* children = dir_children pnode in
  match Hashtbl.find_opt children name with
  | None -> Error Errno.ENOENT
  | Some node -> (
    match node.payload with
    | P_dir _ -> Error Errno.EISDIR
    | P_file _ | P_symlink _ ->
      Hashtbl.remove children name;
      drop_node t node;
      pnode.mtime <- t.now;
      let canon = Path.child pcanon name in
      Dcache.invalidate_prefix t.dcache canon;
      if emit_op then emit t (Op.Unlink { path = canon });
      Ok ())

let unlink t ~cred path =
  sys t;
  unlink_raw t ~cred path ~emit_op:true

(* Depth-first removal; emits one op per removed entry so that both
   fsnotify watchers and distributed replicas see every deletion. *)
let rec remove_tree t ~cred canon node ~emit_op =
  (* Per-entry invalidation, not just one prefix sweep at the top: the
     per-entry ops emitted below run hooks that may look paths up and
     re-populate the cache with entries this very removal is about to
     delete. *)
  match node.payload with
  | P_file _ | P_symlink _ ->
    drop_node t node;
    Dcache.invalidate_prefix t.dcache canon;
    if emit_op then emit t (Op.Unlink { path = canon });
    Ok ()
  | P_dir children ->
    let* () = require t node cred Perm.w_ok in
    let* () = require t node cred Perm.x_ok in
    let entries =
      Hashtbl.fold (fun name child acc -> (name, child) :: acc) children []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let rec go = function
      | [] -> Ok ()
      | (name, child) :: rest ->
        let* () = remove_tree t ~cred (Path.child canon name) child ~emit_op in
        Hashtbl.remove children name;
        (* Again after the parent-side removal: the emit above ran while
           the entry was still linked. *)
        Dcache.invalidate_prefix t.dcache (Path.child canon name);
        go rest
    in
    let* () = go entries in
    drop_node t node;
    Dcache.invalidate_prefix t.dcache canon;
    if emit_op then emit t (Op.Rmdir { path = canon; recursive = false });
    Ok ()

let rmdir_raw ?(recursive = false) t ~cred path ~emit_op =
  let* () = require_rw t in
  let* pnode, pcanon, name = resolve_parent t cred path in
  let* () = require t pnode cred Perm.w_ok in
  let* () = require t pnode cred Perm.x_ok in
  let* children = dir_children pnode in
  match Hashtbl.find_opt children name with
  | None -> Error Errno.ENOENT
  | Some node -> (
    match node.payload with
    | P_file _ | P_symlink _ -> Error Errno.ENOTDIR
    | P_dir sub ->
      let canon = Path.child pcanon name in
      if Hashtbl.length sub = 0 then begin
        Hashtbl.remove children name;
        drop_node t node;
        pnode.mtime <- t.now;
        Dcache.invalidate_prefix t.dcache canon;
        if emit_op then emit t (Op.Rmdir { path = canon; recursive = false });
        Ok ()
      end
      else if (not recursive) && not (t.rmdir_policy canon) then
        Error Errno.ENOTEMPTY
      else
        let* () = remove_tree t ~cred canon node ~emit_op in
        Hashtbl.remove children name;
        pnode.mtime <- t.now;
        Dcache.invalidate_prefix t.dcache canon;
        Ok ())

let rmdir ?recursive t ~cred path =
  sys t;
  rmdir_raw ?recursive t ~cred path ~emit_op:true

let readdir t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  let* () = require t node cred Perm.r_ok in
  let* children = dir_children node in
  node.atime <- t.now;
  Ok (Hashtbl.fold (fun name _ acc -> name :: acc) children []
      |> List.sort String.compare)

let symlink_raw t ~cred ~target path ~emit_op =
  let* () = require_rw t in
  if target = "" then Error Errno.EINVAL
  else
    let* pnode, pcanon, name = resolve_parent t cred path in
    let* () = require t pnode cred Perm.x_ok in
    let* children = dir_children pnode in
    if Hashtbl.mem children name then Error Errno.EEXIST
    else if not (t.symlink_policy (Path.child pcanon name) ~target) then
      Error Errno.EINVAL
    else
      let* () = require t pnode cred Perm.w_ok in
      begin
      let node =
        fresh_node t ~mode:0o777 ~uid:cred.Cred.uid ~gid:cred.Cred.gid
          (P_symlink target)
      in
      Hashtbl.replace children name node;
      pnode.mtime <- t.now;
      let canon = Path.child pcanon name in
      Dcache.invalidate_prefix t.dcache canon;
      if emit_op then emit t (Op.Symlink { path = canon; target });
      Ok ()
    end

let symlink t ~cred ~target path =
  sys t;
  symlink_raw t ~cred ~target path ~emit_op:true

let readlink t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:false path in
  match node.payload with
  | P_symlink target -> Ok target
  | P_dir _ | P_file _ -> Error Errno.EINVAL

let rename_raw t ~cred ~src ~dst ~emit_op =
  let* () = require_rw t in
  let* spnode, spcanon, sname = resolve_parent t cred src in
  let* () = require t spnode cred Perm.w_ok in
  let* () = require t spnode cred Perm.x_ok in
  let* schildren = dir_children spnode in
  match Hashtbl.find_opt schildren sname with
  | None -> Error Errno.ENOENT
  | Some node ->
    let scanon = Path.child spcanon sname in
    let* dpnode, dpcanon, dname = resolve_parent t cred dst in
    let* () = require t dpnode cred Perm.w_ok in
    let* () = require t dpnode cred Perm.x_ok in
    let* dchildren = dir_children dpnode in
    let dcanon = Path.child dpcanon dname in
    if Path.equal scanon dcanon then Ok ()
    else if Path.is_prefix scanon dcanon then Error Errno.EINVAL
    else begin
      (* POSIX rename: an existing destination is replaced atomically,
         provided the kinds are compatible. *)
      let* () =
        match Hashtbl.find_opt dchildren dname with
        | None -> Ok ()
        | Some existing -> (
          match existing.payload, node.payload with
          | P_dir ec, P_dir _ ->
            if Hashtbl.length ec = 0 then begin
              Hashtbl.remove dchildren dname;
              drop_node t existing;
              Ok ()
            end
            else Error Errno.ENOTEMPTY
          | P_dir _, _ -> Error Errno.EISDIR
          | _, P_dir _ -> Error Errno.ENOTDIR
          | _, _ ->
            Hashtbl.remove dchildren dname;
            drop_node t existing;
            Ok ())
      in
      Hashtbl.remove schildren sname;
      Hashtbl.replace dchildren dname node;
      spnode.mtime <- t.now;
      dpnode.mtime <- t.now;
      node.ctime <- t.now;
      (* The whole moved subtree changes names, and any negative entry
         under the destination is now wrong. *)
      Dcache.invalidate_prefix t.dcache scanon;
      Dcache.invalidate_prefix t.dcache dcanon;
      if emit_op then emit t (Op.Rename { src = scanon; dst = dcanon });
      Ok ()
    end

let rename t ~cred ~src ~dst =
  sys t;
  rename_raw t ~cred ~src ~dst ~emit_op:true

(* --- fds ------------------------------------------------------------------ *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append | O_excl

let openfile ?(mode = 0o644) t ~cred path flags =
  sys t;
  let has f = List.mem f flags in
  let readable = has O_rdonly || has O_rdwr || not (has O_wronly) in
  let writable = has O_wronly || has O_rdwr || has O_append in
  let* node, canon =
    match resolve t cred ~follow_last:true path with
    | Ok (node, canon) ->
      if has O_creat && has O_excl then Error Errno.EEXIST
      else Ok (node, canon)
    | Error Errno.ENOENT when has O_creat ->
      Cost.suspended t.cost (fun () -> create_file_raw ~mode t ~cred path ~emit_op:true)
    | Error _ as e -> e
  in
  let* () = if readable then require t node cred Perm.r_ok else Ok () in
  let* () = if writable then require t node cred Perm.w_ok else Ok () in
  let* () =
    if writable then match node.payload with
      | P_dir _ -> Error Errno.EISDIR
      | _ -> require_rw t
    else Ok ()
  in
  let* () =
    if has O_trunc && writable then begin
      match node.payload with
      | P_file f ->
        t.bytes_used <- t.bytes_used - f.len;
        f.len <- 0;
        node.mtime <- t.now;
        emit t (Op.Truncate { path = canon; size = 0 });
        Ok ()
      | P_dir _ -> Error Errno.EISDIR
      | P_symlink _ -> Error Errno.EINVAL
    end
    else Ok ()
  in
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd
    { node; canon; readable; writable; append = has O_append };
  Ok fd

let lookup_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Errno.EBADF
  | Some o -> Ok o

let close t fd =
  sys t;
  let* _ = lookup_fd t fd in
  Hashtbl.remove t.fds fd;
  Ok ()

let pread t fd ~off ~len =
  sys t;
  let* o = lookup_fd t fd in
  if not o.readable then Error Errno.EBADF
  else if off < 0 || len < 0 then Error Errno.EINVAL
  else
    let* f = file_data o.node in
    o.node.atime <- t.now;
    if off >= f.len then Ok ""
    else Ok (Bytes.sub_string f.bytes off (min len (f.len - off)))

let pwrite t fd ~off data =
  sys t;
  let* o = lookup_fd t fd in
  if not o.writable then Error Errno.EBADF
  else if off < 0 then Error Errno.EINVAL
  else
    let* () = require_rw t in
    let* f = file_data o.node in
    let off = if o.append then f.len else off in
    write_at t o.node f ~off data;
    emit t (Op.Write { path = o.canon; off; data });
    Ok (String.length data)

let fd_path t fd =
  let* o = lookup_fd t fd in
  Ok o.canon

(* --- metadata ------------------------------------------------------------- *)

let stat t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  Ok (stat_of_node node)

let lstat t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:false path in
  Ok (stat_of_node node)

let kind_of_raw t ~cred ~follow path =
  let* node, _ = resolve t cred ~follow_last:follow path in
  Ok
    (match node.payload with
    | P_dir _ -> Dir
    | P_file _ -> File
    | P_symlink _ -> Symlink)

let kind_of ?(follow = true) t ~cred path =
  sys t;
  kind_of_raw t ~cred ~follow path

(* The bool forms are sugar over [kind_of] and conflate every failure —
   EACCES looks like ENOENT. Callers that must tell the difference use
   [kind_of] directly. *)
let exists t ~cred path =
  Cost.suspended t.cost (fun () ->
      match kind_of_raw t ~cred ~follow:true path with
      | Ok _ -> true
      | Error _ -> false)

let is_dir t ~cred path =
  Cost.suspended t.cost (fun () ->
      match kind_of_raw t ~cred ~follow:true path with
      | Ok Dir -> true
      | Ok _ | Error _ -> false)

let chmod t ~cred path mode =
  sys t;
  let* () = require_rw t in
  let* node, canon = resolve t cred ~follow_last:true path in
  let* () = require_owner node cred in
  node.mode <- mode land 0o7777;
  node.ctime <- t.now;
  (* Prefix, not just the node: a changed x-bit on a directory decides
     traversal for everything cached below it. *)
  Dcache.invalidate_prefix t.dcache canon;
  Dcache.invalidate_attrs t.dcache ~ino:node.ino;
  emit t (Op.Chmod { path = canon; mode = node.mode });
  Ok ()

let chown t ~cred path ~uid ~gid =
  sys t;
  let* () = require_rw t in
  let* node, canon = resolve t cred ~follow_last:true path in
  if not (Cred.is_root cred) then Error Errno.EPERM
  else begin
    node.uid <- uid;
    node.gid <- gid;
    node.ctime <- t.now;
    Dcache.invalidate_prefix t.dcache canon;
    Dcache.invalidate_attrs t.dcache ~ino:node.ino;
    emit t (Op.Chown { path = canon; uid; gid });
    Ok ()
  end

let access t ~cred path a =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  require t node cred a

let canonicalize t ~cred path =
  sys t;
  let* _, canon = resolve t cred ~follow_last:true path in
  Ok canon

(* --- xattrs --------------------------------------------------------------- *)

let setxattr t ~cred path ~name ~value =
  sys t;
  let* () = require_rw t in
  if name = "" then Error Errno.EINVAL
  else
    let* node, canon = resolve t cred ~follow_last:true path in
    let* () = require t node cred Perm.w_ok in
    node.xattrs <- (name, value) :: List.remove_assoc name node.xattrs;
    node.ctime <- t.now;
    emit t (Op.Set_xattr { path = canon; name; value });
    Ok ()

let getxattr t ~cred path ~name =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  let* () = require t node cred Perm.r_ok in
  match List.assoc_opt name node.xattrs with
  | Some v -> Ok v
  | None -> Error Errno.ENOENT

let listxattr t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  let* () = require t node cred Perm.r_ok in
  Ok (List.map fst node.xattrs |> List.sort String.compare)

let removexattr t ~cred path ~name =
  sys t;
  let* () = require_rw t in
  let* node, canon = resolve t cred ~follow_last:true path in
  let* () = require t node cred Perm.w_ok in
  if List.mem_assoc name node.xattrs then begin
    node.xattrs <- List.remove_assoc name node.xattrs;
    node.ctime <- t.now;
    emit t (Op.Remove_xattr { path = canon; name });
    Ok ()
  end
  else Error Errno.ENOENT

(* --- acls ----------------------------------------------------------------- *)

let set_acl t ~cred path acl =
  sys t;
  let* () = require_rw t in
  if not (Acl.validate acl) then Error Errno.EINVAL
  else
    let* node, canon = resolve t cred ~follow_last:true path in
    let* () = require_owner node cred in
    node.acl <- acl;
    node.ctime <- t.now;
    Dcache.invalidate_prefix t.dcache canon;
    Dcache.invalidate_attrs t.dcache ~ino:node.ino;
    emit t (Op.Set_acl { path = canon; acl });
    Ok ()

let get_acl t ~cred path =
  sys t;
  let* node, _ = resolve t cred ~follow_last:true path in
  Ok node.acl

(* --- replay --------------------------------------------------------------- *)

let replay_raw t op =
  let cred = Cred.root in
  Cost.suspended t.cost (fun () ->
      match (op : Op.t) with
      | Mkdir { path; mode } -> (
        match mkdir_raw ~mode t ~cred path ~emit_op:false with
        | Ok () | Error Errno.EEXIST -> Ok ()
        | Error _ as e -> e)
      | Create { path; mode } -> (
        match create_file_raw ~mode t ~cred path ~emit_op:false with
        | Ok _ | Error Errno.EEXIST -> Ok ()
        | Error _ as e -> e)
      | Write { path; off; data } -> (
        let* node, _ =
          match resolve t cred ~follow_last:true path with
          | Ok v -> Ok v
          | Error Errno.ENOENT -> create_file_raw t ~cred path ~emit_op:false
          | Error _ as e -> e
        in
        match file_data node with
        | Ok f ->
          write_at t node f ~off data;
          Ok ()
        | Error _ as e -> e)
      | Truncate { path; size } -> (
        match resolve t cred ~follow_last:true path with
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e
        | Ok (node, _) -> (
          match file_data node with
          | Error _ as e -> Result.map (fun _ -> ()) e
          | Ok f ->
            if size <= f.len then begin
              t.bytes_used <- t.bytes_used - (f.len - size);
              f.len <- size
            end
            else begin
              grow f size;
              t.bytes_used <- t.bytes_used + (size - f.len);
              f.len <- size
            end;
            node.mtime <- t.now;
            Ok ()))
      | Unlink { path } -> (
        match unlink_raw t ~cred path ~emit_op:false with
        | Ok () | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> e)
      | Rmdir { path; _ } -> (
        match rmdir_raw ~recursive:true t ~cred path ~emit_op:false with
        | Ok () | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> e)
      | Rename { src; dst } -> (
        match rename_raw t ~cred ~src ~dst ~emit_op:false with
        | Ok () | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> e)
      | Symlink { path; target } -> (
        match symlink_raw t ~cred ~target path ~emit_op:false with
        | Ok () | Error Errno.EEXIST -> Ok ()
        | Error _ as e -> e)
      | Chmod { path; mode } -> (
        (* Attribute ops are applied inline here rather than through
           [chmod] (replay must not re-check ownership), so they carry
           their own cache invalidation — this is what keeps a replica's
           dcache honest under [replay ~emit:false]. *)
        match resolve t cred ~follow_last:true path with
        | Ok (node, canon) ->
          node.mode <- mode land 0o7777;
          Dcache.invalidate_prefix t.dcache canon;
          Dcache.invalidate_attrs t.dcache ~ino:node.ino;
          Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e)
      | Chown { path; uid; gid } -> (
        match resolve t cred ~follow_last:true path with
        | Ok (node, canon) ->
          node.uid <- uid;
          node.gid <- gid;
          Dcache.invalidate_prefix t.dcache canon;
          Dcache.invalidate_attrs t.dcache ~ino:node.ino;
          Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e)
      | Set_xattr { path; name; value } -> (
        match resolve t cred ~follow_last:true path with
        | Ok (node, _) ->
          node.xattrs <- (name, value) :: List.remove_assoc name node.xattrs;
          Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e)
      | Remove_xattr { path; name } -> (
        match resolve t cred ~follow_last:true path with
        | Ok (node, _) ->
          node.xattrs <- List.remove_assoc name node.xattrs;
          Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e)
      | Set_acl { path; acl } -> (
        match resolve t cred ~follow_last:true path with
        | Ok (node, canon) ->
          node.acl <- acl;
          Dcache.invalidate_prefix t.dcache canon;
          Dcache.invalidate_attrs t.dcache ~ino:node.ino;
          Ok ()
        | Error Errno.ENOENT -> Ok ()
        | Error _ as e -> Result.map (fun _ -> ()) e))

(* --- traversal ------------------------------------------------------------ *)

let replay ?(emit = false) t op =
  let result = replay_raw t op in
  if emit && Result.is_ok result then
    (match result with Ok () -> emit_op_to_hooks t op | Error _ -> ());
  result

type fold_action = [ `Continue | `Skip_subtree | `Stop ]

(* Internal pre-order traversal over nodes with early-stop; charges no
   crossing itself so that each public entry point stays at exactly
   one. Children are visited in sorted name order; child symlinks are
   never followed (only [follow] applies, to the starting path). *)
let fold_nodes t ~cred ~follow path ~init f =
  let* start, canon = resolve t cred ~follow_last:follow path in
  let stop = ref false in
  let rec go acc canon node =
    let acc, action = f acc canon node in
    match (action : fold_action) with
    | `Stop ->
      stop := true;
      acc
    | `Skip_subtree -> acc
    | `Continue -> (
      match node.payload with
      | P_file _ | P_symlink _ -> acc
      | P_dir children ->
        Hashtbl.fold (fun name child acc -> (name, child) :: acc) children []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.fold_left
             (fun acc (name, child) ->
               if !stop then acc else go acc (Path.child canon name) child)
             acc)
  in
  Ok (go init canon start)

let fold ?(follow = false) t ~cred path ~init f =
  sys t;
  fold_nodes t ~cred ~follow path ~init (fun acc canon node ->
      f acc canon (stat_of_node node))

let walk t ~cred path visit =
  sys t;
  let* () =
    Result.map ignore
      (fold_nodes t ~cred ~follow:false path ~init:() (fun () canon node ->
           visit canon (stat_of_node node);
           ((), `Continue)))
  in
  Ok ()

let tree t ~cred path =
  sys t;
  let* entries =
    fold_nodes t ~cred ~follow:true path ~init:[] (fun acc canon node ->
        let name =
          match Path.basename canon with Some b -> b | None -> "/"
        in
        let label =
          match node.payload with
          | P_symlink target -> name ^ " -> " ^ target
          | P_dir _ | P_file _ -> name
        in
        ((canon, label) :: acc, `Continue))
  in
  match List.rev entries with
  | [] -> Error Errno.ENOENT (* unreachable: the start node is visited *)
  | (root_canon, _) :: rest ->
    (* Pre-order visits siblings in sorted order, so grouping by parent
       preserves each directory's listing order. *)
    let children : (string, (Path.t * string) list ref) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun (canon, label) ->
        match Path.parent canon with
        | None -> ()
        | Some parent ->
          let key = Path.to_string parent in
          (match Hashtbl.find_opt children key with
          | Some l -> l := (canon, label) :: !l
          | None -> Hashtbl.replace children key (ref [ canon, label ])))
      rest;
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (match Path.basename path with Some b -> b | None -> "/");
    Buffer.add_char buf '\n';
    let rec render prefix canon =
      match Hashtbl.find_opt children (Path.to_string canon) with
      | None -> ()
      | Some kids ->
        let kids = List.rev !kids in
        let n = List.length kids in
        List.iteri
          (fun i (kcanon, label) ->
            let last = i = n - 1 in
            Buffer.add_string buf prefix;
            Buffer.add_string buf (if last then "└── " else "├── ");
            Buffer.add_string buf label;
            Buffer.add_char buf '\n';
            render (prefix ^ if last then "    " else "│   ") kcanon)
          kids
    in
    render "" root_canon;
    Ok (Buffer.contents buf)

let size_info t = (t.objects, t.bytes_used)
