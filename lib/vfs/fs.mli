(** The in-memory virtual file system.

    This is the substrate that stands in for the Linux VFS + FUSE stack
    the yanc prototype was built on: a single rooted tree of directories,
    regular files and symbolic links, with Unix permissions, POSIX ACLs,
    extended attributes, a file-descriptor table, and two cross-cutting
    facilities the paper leans on:

    - a {b mutation stream} ({!subscribe}): every successful
      state-changing call is journalled as an {!Op.t} and delivered to
      subscribers. {!Fsnotify} and the distributed-FS layer are both
      implemented purely as subscribers, mirroring how inotify and
      network file systems hook the Linux VFS;
    - a {b kernel-crossing cost model} ({!cost}): every public call
      counts as one syscall, so the §8.1 overhead argument can be
      measured (see {!Cost} and the [Libyanc] fastpath).

    All operations take an explicit credential and return
    [('a, Errno.t) result]; nothing raises on I/O failure. *)

type t

type kind = Dir | File | Symlink

type stat = {
  ino : int;
  kind : kind;
  mode : int;          (** permission bits, e.g. 0o755 *)
  uid : int;
  gid : int;
  nlink : int;
  size : int;          (** bytes for files, entry count for dirs *)
  atime : float;
  mtime : float;
  ctime : float;
}

type fd

val create : ?cost:Cost.t -> unit -> t
(** A fresh file system containing only the root directory (mode 0o755,
    owned by root). *)

val cost : t -> Cost.t

(** {1 Dentry + attribute cache}

    Path resolution is served through a {!Dcache} — a dentry map with
    negative entries plus per-inode cached permission decisions —
    invalidated through the same mutation path that feeds the op
    stream, including {!replay} on DFS replicas. The cache is
    semantically invisible: every operation returns the same result and
    emits the same ops with it on or off; only the counters on
    {!Cost.t} differ. Enabled by default. *)

val set_dcache_enabled : t -> bool -> unit
(** Disabling also flushes, so re-enabling starts cold. *)

val dcache_enabled : t -> bool

(** {1 Simulated time}

    Timestamps come from a per-filesystem clock that the embedding
    simulation advances; they never consult the host clock, keeping runs
    deterministic. *)

val time : t -> float
val set_time : t -> float -> unit

(** {1 Read-only mode} *)

val set_readonly : t -> bool -> unit
(** When set, every mutating call fails with [EROFS]. Used for read-only
    views/slices. *)

(** {1 Mutation stream} *)

type hook

val subscribe : t -> (Op.t -> unit) -> hook
(** Called after each successful mutation, in subscription order, with
    the canonical (symlink-free) path of the affected object. A
    subscriber may itself mutate the file system (the yanc schema layer
    auto-creates typed children this way) but must terminate; hooks must
    not subscribe or unsubscribe from within a callback. *)

val unsubscribe : t -> hook -> unit

(** {1 Per-filesystem policies}

    The interposition points a real VFS gives a filesystem
    implementation, reduced to the two yanc needs. *)

val set_rmdir_policy : t -> (Path.t -> bool) -> unit
(** When the policy answers [true] for a non-empty directory, a plain
    [rmdir] of it behaves recursively — the paper makes switch removal
    "automatically recursive" (§3.2). Default: never. *)

val set_symlink_policy : t -> (Path.t -> target:string -> bool) -> unit
(** Consulted before creating a symlink; [false] fails the call with
    [EINVAL] — the paper makes it "an error to point [a port's peer]
    symbolic link at anything other than a port" (§3.3). Default: allow
    all. *)

val replay : ?emit:bool -> t -> Op.t -> (unit, Errno.t) result
(** Apply a journalled op with root credentials, without charging a
    kernel crossing. This is the replication primitive of the
    distributed-FS layer. Replay is idempotent for structural ops
    ([Mkdir]/[Create] of an existing object, [Unlink]/[Rmdir] of a
    missing one succeed silently), which lets replicas reconcile after
    partitions. With [emit:true] (default false) the op is re-emitted to
    this file system's subscribers after applying — that is how fsnotify
    watchers on a replica observe remote changes; the caller must guard
    against replication echo. *)

(** {1 Directories} *)

val mkdir : ?mode:int -> t -> cred:Cred.t -> Path.t -> (unit, Errno.t) result
val mkdir_p : ?mode:int -> t -> cred:Cred.t -> Path.t -> (unit, Errno.t) result

val rmdir : ?recursive:bool -> t -> cred:Cred.t -> Path.t -> (unit, Errno.t) result
(** [recursive] (default false) removes the whole subtree depth-first,
    emitting one op per removed entry — the paper specifies that
    removing a switch directory is "automatically recursive". *)

val readdir : t -> cred:Cred.t -> Path.t -> (string list, Errno.t) result
(** Entry names, sorted, without ["."] and [".."]. *)

(** {1 Files} *)

val create_file :
  ?mode:int -> t -> cred:Cred.t -> Path.t -> (unit, Errno.t) result
(** Create an empty regular file; [EEXIST] if anything is already
    there. *)

val read_file : t -> cred:Cred.t -> Path.t -> (string, Errno.t) result

val set_generator :
  t -> Path.t -> (unit -> string) -> (unit, Errno.t) result
(** Turn an existing regular file into a procfs-style synthetic node:
    every {!read_file} of it returns [gen ()] computed at read time
    instead of stored bytes. The node keeps reporting size 0 (as /proc
    files do), generation emits no mutation ops, and permissions are
    still enforced on the node itself. Generators are per-inode, so
    unlinking the file retires them. [pread] through a descriptor is
    not interposed — synthetic nodes are whole-file reads. *)

val write_file : t -> cred:Cred.t -> Path.t -> string -> (unit, Errno.t) result
(** The [echo data > file] equivalent: create the file if missing,
    truncate, write. *)

val append_file : t -> cred:Cred.t -> Path.t -> string -> (unit, Errno.t) result

val truncate : t -> cred:Cred.t -> Path.t -> int -> (unit, Errno.t) result

val unlink : t -> cred:Cred.t -> Path.t -> (unit, Errno.t) result

(** {1 File descriptors} *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append | O_excl

val openfile :
  ?mode:int -> t -> cred:Cred.t -> Path.t -> open_flag list -> (fd, Errno.t) result

val close : t -> fd -> (unit, Errno.t) result

val pread : t -> fd -> off:int -> len:int -> (string, Errno.t) result
(** Short reads at end-of-file; [""] at or past EOF. *)

val pwrite : t -> fd -> off:int -> string -> (int, Errno.t) result

val fd_path : t -> fd -> (Path.t, Errno.t) result
(** The canonical path the descriptor was opened at. *)

(** {1 Links and renames} *)

val symlink : t -> cred:Cred.t -> target:string -> Path.t -> (unit, Errno.t) result
val readlink : t -> cred:Cred.t -> Path.t -> (string, Errno.t) result
val rename : t -> cred:Cred.t -> src:Path.t -> dst:Path.t -> (unit, Errno.t) result

(** {1 Metadata} *)

val stat : t -> cred:Cred.t -> Path.t -> (stat, Errno.t) result
(** Follows symlinks. *)

val lstat : t -> cred:Cred.t -> Path.t -> (stat, Errno.t) result

val kind_of :
  ?follow:bool -> t -> cred:Cred.t -> Path.t -> (kind, Errno.t) result
(** The kind of the object at this path, with the full errno: [ENOENT],
    [EACCES], [ENOTDIR], [ELOOP]… are all distinguishable, unlike the
    bool helpers below. [follow] (default true) follows a final
    symlink; with [~follow:false] the answer can be [Symlink]. *)

val exists : t -> cred:Cred.t -> Path.t -> bool
(** Sugar over {!kind_of} that conflates {e every} failure: a path the
    credential may not traverse ([EACCES]) is reported exactly like a
    missing one ([ENOENT]). Use {!kind_of} when the difference matters. *)

val is_dir : t -> cred:Cred.t -> Path.t -> bool
(** Same conflation caveat as {!exists}. *)

val chmod : t -> cred:Cred.t -> Path.t -> int -> (unit, Errno.t) result
val chown : t -> cred:Cred.t -> Path.t -> uid:int -> gid:int -> (unit, Errno.t) result

val access : t -> cred:Cred.t -> Path.t -> Perm.access -> (unit, Errno.t) result
(** [EACCES] if the credential lacks the access under mode bits + ACL. *)

val canonicalize : t -> cred:Cred.t -> Path.t -> (Path.t, Errno.t) result
(** Resolve all symlinks; the result names the same object with a
    symlink-free path. *)

(** {1 Extended attributes (paper §5.1)} *)

val setxattr : t -> cred:Cred.t -> Path.t -> name:string -> value:string -> (unit, Errno.t) result
val getxattr : t -> cred:Cred.t -> Path.t -> name:string -> (string, Errno.t) result
val listxattr : t -> cred:Cred.t -> Path.t -> (string list, Errno.t) result
val removexattr : t -> cred:Cred.t -> Path.t -> name:string -> (unit, Errno.t) result

(** {1 ACLs (paper §5.1)} *)

val set_acl : t -> cred:Cred.t -> Path.t -> Acl.t -> (unit, Errno.t) result
val get_acl : t -> cred:Cred.t -> Path.t -> (Acl.t, Errno.t) result

(** {1 Whole-tree helpers} *)

type fold_action = [ `Continue | `Skip_subtree | `Stop ]

val fold :
  ?follow:bool -> t -> cred:Cred.t -> Path.t -> init:'acc ->
  ('acc -> Path.t -> stat -> 'acc * fold_action) ->
  ('acc, Errno.t) result
(** Depth-first pre-order traversal with an accumulator and early
    stop. The visitor decides, per object, whether to [`Continue] into
    its children, [`Skip_subtree] (prune below a directory), or [`Stop]
    the whole traversal; the accumulator as of the stop is returned.
    [follow] (default false) applies only to the starting path; child
    symlinks are never followed, so the traversal is a finite tree even
    with symlink cycles. Children are visited in sorted name order.
    Costs exactly one kernel crossing regardless of subtree size.
    {!walk} and {!tree} are implemented on this. *)

val walk :
  t -> cred:Cred.t -> Path.t ->
  (Path.t -> stat -> unit) -> (unit, Errno.t) result
(** [fold] without accumulator or early stop: depth-first pre-order
    traversal (does not follow symlinks), calling the visitor on every
    object under and including the given path. *)

val tree : t -> cred:Cred.t -> Path.t -> (string, Errno.t) result
(** An ASCII rendering of the subtree, in the style of tree(1) — used to
    reproduce the paper's Figure 2/3 listings. *)

val size_info : t -> int * int
(** [(objects, bytes)] currently stored. *)
