(** Unix mode bits and access checks.

    Modes are stored as the familiar octal integers ([0o755] etc.).
    Access checks follow the Linux rules: owner class if uid matches,
    else group class, else other; root bypasses everything except the
    execute check on files (which we do not need here). *)

type access = Read | Write | Exec

val r_ok : access
val w_ok : access
val x_ok : access

val bits_for : access -> int
(** The "other"-class bit for an access kind: 4, 2 or 1. *)

val check : mode:int -> owner:int -> group:int -> Cred.t -> access -> bool
(** Pure mode-bit check (no ACL); see {!Acl.check} for the combined
    check used by {!Fs}. *)

val to_string : kind:char -> int -> string
(** ls-style string, e.g. [to_string ~kind:'d' 0o755 = "drwxr-xr-x"]. *)

val of_string : string -> int option
(** Parse the 9-character rwx form (without the kind character). *)
