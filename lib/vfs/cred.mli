(** Credentials under which file-system calls are made.

    In yanc each network application runs as its own (simulated) process
    with its own uid/gid, so Unix permissions and ACLs give fine-grained
    control of network resources (paper §5.1): a flow, or an entire
    switch, can be protected from specific applications. *)

type t = { uid : int; gid : int; groups : int list }

val root : t
(** uid 0 — bypasses permission checks, as on Linux. *)

val make : ?groups:int list -> uid:int -> gid:int -> unit -> t

val is_root : t -> bool

val in_group : t -> int -> bool
(** Member of a group, either as primary gid or supplementary. *)

val pp : Format.formatter -> t -> unit
