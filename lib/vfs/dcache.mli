(** Dentry + attribute cache — the stand-in for Linux's dcache.

    Linux amortises path resolution with a dentry hash (including
    negative dentries for failed lookups) instead of re-walking every
    component on every syscall; permission results are likewise served
    from the in-core inode. This module gives {!Fs.resolve} the same
    shape: a (credential, follow-flag, path) → resolution map with
    negative entries for [ENOENT], and a per-inode cache of
    permission-check decisions.

    The cache is generic in ['a] (the node type) because [Fs] owns the
    node representation and sits above this module.

    {b Soundness contract} (enforced by the caller, i.e. [Fs]):
    - insert only resolutions that traversed {e no} symlink, so cached
      keys are their own canonical paths and canonical-path prefix
      invalidation reaches everything;
    - insert only [Ok _] and [Error ENOENT];
    - invalidate before notifying mutation subscribers.

    All hit/miss/invalidation traffic is recorded on the {!Cost.t}
    handed to {!create}. *)

type 'a t

val create : ?max_entries:int -> Cost.t -> 'a t
(** [max_entries] (default 8192) bounds each table; on overflow the
    table is flushed wholesale, which is always safe (a cache miss just
    re-walks). *)

val enabled : 'a t -> bool

val set_enabled : 'a t -> bool -> unit
(** Disabling flushes both tables, so re-enabling starts cold. *)

val find :
  'a t -> cred:Cred.t -> follow:bool -> Path.t -> ('a, Errno.t) result option
(** Cached resolution for this exact (credential, follow, path) triple;
    counts a dentry/negative hit or a miss. *)

val add :
  'a t -> cred:Cred.t -> follow:bool -> Path.t -> ('a, Errno.t) result -> unit
(** Insert a resolution. Silently drops anything but [Ok _] /
    [Error ENOENT]. The caller must only pass symlink-free resolutions. *)

val find_perm :
  'a t -> ino:int -> cred:Cred.t -> access:Perm.access -> bool option

val add_perm :
  'a t -> ino:int -> cred:Cred.t -> access:Perm.access -> bool -> unit

val invalidate_prefix : 'a t -> Path.t -> unit
(** Drop every dentry whose path is [prefix] or below it. *)

val invalidate_attrs : 'a t -> ino:int -> unit
(** Drop every cached permission decision for this inode. *)

val flush : 'a t -> unit

val length : 'a t -> int * int
(** (live dentries, live attribute decisions) — for tests. *)
