(** Kernel-crossing cost model (paper §8.1) and name-lookup counters.

    Every public {!Fs} operation models one [syscall] — a user→kernel
    context switch. The paper's performance concern is that "writing flow
    entries to thousands of nodes will result in tens of thousands of
    context switches"; libyanc's shared-memory fastpath exists to remove
    them. This module counts crossings and charges a configurable cost so
    benches can report both the crossing count and the modelled overhead
    of the file-system path versus the fastpath.

    It also carries the {!Dcache} instrumentation: how many path
    components were resolved by walking the tree, how often the dentry
    and attribute caches hit, and how many cached entries were
    invalidated by mutations. Lookup counters are {e not} gated by
    {!suspended} — a libyanc batch still walks dentries even though it
    crosses the kernel boundary once. *)

type t

val create : ?switch_cost_ns:float -> unit -> t
(** [switch_cost_ns] defaults to 1000 (a µs-scale user/kernel round trip,
    the right order of magnitude for a FUSE-mediated call). *)

val crossings : t -> int
(** Number of simulated user/kernel boundary crossings so far. *)

val charged_ns : t -> float
(** Total modelled cost, in nanoseconds. *)

val syscall : t -> unit
(** Record one crossing. *)

val suspended : t -> (unit -> 'a) -> 'a
(** Run a function with crossing accounting disabled — used by
    {!Libyanc} batches, where many logical operations share one
    crossing, and by kernel-internal recursion (an op implemented in
    terms of other ops must not double-count). *)

(** {1 Name-lookup / dcache counters}

    Bumped by {!Fs} resolution and by {!Dcache}; read by benches. *)

val component_resolved : t -> unit
(** One path component resolved the slow way (hash lookup in a
    directory, plus the traversal permission check). *)

val dentry_hit : t -> unit
val dentry_miss : t -> unit
val negative_hit : t -> unit
(** A cached ENOENT answered without walking. *)

val attr_hit : t -> unit
val attr_miss : t -> unit
(** Permission-decision (attribute) cache hits/misses. *)

val invalidated : t -> int -> unit
(** [n] cached entries dropped by a mutation. *)

val components : t -> int
val dentry_hits : t -> int
val dentry_misses : t -> int
val negative_hits : t -> int
val attr_hits : t -> int
val attr_misses : t -> int
val invalidations : t -> int

(** {1 Event-routing / fsnotify counters}

    Bumped by {!Fsnotify.Notifier} dispatch; read by benches and
    [yancctl]. Like the lookup counters these are {e not} gated by
    {!suspended}: they measure routing work, not kernel crossings. *)

val event_dispatched : t -> unit
(** One event enqueued onto a notifier's queue. *)

val visit_watches : t -> int -> unit
(** [n] candidate watches examined while routing one mutation. The
    linear reference scans every watch; the routing index visits only
    the exact-path, parent and ancestor-trie candidates. *)

val event_coalesced : t -> unit
(** A [Modified] event merged into the identical event already at the
    tail of the queue (inotify-style coalescing). *)

val overflow_dropped : t -> unit
(** An event dropped because the queue was full (the reader finds an
    {!Fsnotify.Event.Overflow} sentinel instead). *)

val events_dispatched : t -> int
val watches_visited : t -> int
val events_coalesced : t -> int
val overflows : t -> int

val reset : t -> unit

val pp : Format.formatter -> t -> unit
