(** Kernel-crossing cost model (paper §8.1).

    Every public {!Fs} operation models one [syscall] — a user→kernel
    context switch. The paper's performance concern is that "writing flow
    entries to thousands of nodes will result in tens of thousands of
    context switches"; libyanc's shared-memory fastpath exists to remove
    them. This module counts crossings and charges a configurable cost so
    benches can report both the crossing count and the modelled overhead
    of the file-system path versus the fastpath. *)

type t

val create : ?switch_cost_ns:float -> unit -> t
(** [switch_cost_ns] defaults to 1000 (a µs-scale user/kernel round trip,
    the right order of magnitude for a FUSE-mediated call). *)

val crossings : t -> int
(** Number of simulated user/kernel boundary crossings so far. *)

val charged_ns : t -> float
(** Total modelled cost, in nanoseconds. *)

val syscall : t -> unit
(** Record one crossing. *)

val suspended : t -> (unit -> 'a) -> 'a
(** Run a function with crossing accounting disabled — used by
    {!Libyanc} batches, where many logical operations share one
    crossing, and by kernel-internal recursion (an op implemented in
    terms of other ops must not double-count). *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
