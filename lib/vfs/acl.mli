(** POSIX-style access control lists.

    yanc (paper §5.1) relies on ACLs for finer-grained sharing than
    owner/group/other allows — e.g. granting one monitoring application
    read access to a tenant's switch directory without making it a group
    member. An ACL is a list of entries; when present, it refines the
    check performed against the classic mode bits, following the POSIX
    1003.1e evaluation order (user, named users, owning/named groups
    masked, other). *)

type tag =
  | User_obj            (** the owner; permissions from the mode bits *)
  | User of int         (** a named user *)
  | Group_obj           (** the owning group *)
  | Group of int        (** a named group *)
  | Mask                (** upper bound for group-class entries *)
  | Other

type entry = { tag : tag; perms : int (** rwx bits, 0..7 *) }

type t = entry list

val empty : t
(** No extended entries; the mode bits alone decide. *)

val of_mode : int -> t
(** The minimal ACL equivalent to a mode: user_obj/group_obj/other. *)

val check :
  acl:t -> mode:int -> owner:int -> group:int -> Cred.t -> Perm.access -> bool
(** Combined ACL + mode check. With an [empty] acl this is exactly
    {!Perm.check}. Root always passes. *)

val add : t -> entry -> t
(** Insert or replace the entry with the same tag. *)

val remove : t -> tag -> t

val validate : t -> bool
(** At most one entry per [User_obj]/[Group_obj]/[Mask]/[Other] tag, at
    most one per named id, perms within 0..7, and a [Mask] entry present
    whenever named users or groups are. *)

val to_text : mode:int -> t -> string
(** getfacl-style textual form. *)

val of_text : string -> (t, string) result
(** Parse the getfacl-style form produced by {!to_text} (entries only;
    mode-derived lines update nothing and are accepted). *)
