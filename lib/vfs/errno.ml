type t =
  | ENOENT
  | ENOTDIR
  | EISDIR
  | EEXIST
  | ENOTEMPTY
  | EACCES
  | EPERM
  | EINVAL
  | ENAMETOOLONG
  | ELOOP
  | EXDEV
  | EBADF
  | ENOSPC
  | EROFS
  | ENOTSUP
  | ESTALE
  | EIO

let to_string = function
  | ENOENT -> "enoent"
  | ENOTDIR -> "enotdir"
  | EISDIR -> "eisdir"
  | EEXIST -> "eexist"
  | ENOTEMPTY -> "enotempty"
  | EACCES -> "eacces"
  | EPERM -> "eperm"
  | EINVAL -> "einval"
  | ENAMETOOLONG -> "enametoolong"
  | ELOOP -> "eloop"
  | EXDEV -> "exdev"
  | EBADF -> "ebadf"
  | ENOSPC -> "enospc"
  | EROFS -> "erofs"
  | ENOTSUP -> "enotsup"
  | ESTALE -> "estale"
  | EIO -> "eio"

let message = function
  | ENOENT -> "No such file or directory"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EEXIST -> "File exists"
  | ENOTEMPTY -> "Directory not empty"
  | EACCES -> "Permission denied"
  | EPERM -> "Operation not permitted"
  | EINVAL -> "Invalid argument"
  | ENAMETOOLONG -> "File name too long"
  | ELOOP -> "Too many levels of symbolic links"
  | EXDEV -> "Invalid cross-device link"
  | EBADF -> "Bad file descriptor"
  | ENOSPC -> "No space left on device"
  | EROFS -> "Read-only file system"
  | ENOTSUP -> "Operation not supported"
  | ESTALE -> "Stale file handle"
  | EIO -> "Input/output error"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let equal (a : t) (b : t) = a = b
