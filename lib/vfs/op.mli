(** The mutation stream: every state-changing VFS call is journalled as
    one of these records and delivered to subscribed hooks.

    Two subsystems consume the stream, exactly as on Linux:
    - {!Fsnotify} translates ops to inotify-style events for
      applications (paper §5.2), and
    - the distributed file-system layer ({!Dfs}) replicates ops to other
      controller nodes (paper §6), giving a distributed controller with
      no yanc-specific code.

    Ops carry enough information to be replayed verbatim on a replica. *)

type t =
  | Mkdir of { path : Path.t; mode : int }
  | Create of { path : Path.t; mode : int }
  | Write of { path : Path.t; off : int; data : string }
  | Truncate of { path : Path.t; size : int }
  | Unlink of { path : Path.t }
  | Rmdir of { path : Path.t; recursive : bool }
  | Rename of { src : Path.t; dst : Path.t }
  | Symlink of { path : Path.t; target : string }
  | Chmod of { path : Path.t; mode : int }
  | Chown of { path : Path.t; uid : int; gid : int }
  | Set_xattr of { path : Path.t; name : string; value : string }
  | Remove_xattr of { path : Path.t; name : string }
  | Set_acl of { path : Path.t; acl : Acl.t }

val path : t -> Path.t
(** The primary path the op touches (the source, for [Rename]). *)

val is_structural : t -> bool
(** True for ops that add or remove directory entries (mkdir, create,
    unlink, rmdir, rename, symlink) as opposed to content/metadata
    changes. *)

val pp : Format.formatter -> t -> unit
