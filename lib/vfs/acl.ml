type tag =
  | User_obj
  | User of int
  | Group_obj
  | Group of int
  | Mask
  | Other

type entry = { tag : tag; perms : int }

type t = entry list

let empty = []

let of_mode mode =
  [ { tag = User_obj; perms = mode lsr 6 land 7 };
    { tag = Group_obj; perms = mode lsr 3 land 7 };
    { tag = Other; perms = mode land 7 } ]

let tag_equal a b =
  match a, b with
  | User_obj, User_obj | Group_obj, Group_obj | Mask, Mask | Other, Other -> true
  | User x, User y | Group x, Group y -> x = y
  | _ -> false

let find acl tag = List.find_opt (fun e -> tag_equal e.tag tag) acl

let add acl entry =
  entry :: List.filter (fun e -> not (tag_equal e.tag entry.tag)) acl

let remove acl tag = List.filter (fun e -> not (tag_equal e.tag tag)) acl

let mask_of acl =
  match find acl Mask with Some { perms; _ } -> perms | None -> 7

let check ~acl ~mode ~owner ~group cred access =
  if Cred.is_root cred then true
  else if acl = [] then Perm.check ~mode ~owner ~group cred access
  else begin
    let want = Perm.bits_for access in
    let allows perms = perms land want <> 0 in
    let mask = mask_of acl in
    if cred.Cred.uid = owner then allows (mode lsr 6 land 7)
    else
      match find acl (User cred.Cred.uid) with
      | Some { perms; _ } -> allows (perms land mask)
      | None ->
        (* Group class: grant if any applicable group entry grants. *)
        let group_entries =
          List.filter
            (fun e ->
              match e.tag with
              | Group_obj -> Cred.in_group cred group
              | Group g -> Cred.in_group cred g
              | User_obj | User _ | Mask | Other -> false)
            acl
        in
        let group_obj_applies =
          Cred.in_group cred group
          && not (List.exists (fun e -> tag_equal e.tag Group_obj) acl)
        in
        let group_entries =
          if group_obj_applies then
            { tag = Group_obj; perms = mode lsr 3 land 7 } :: group_entries
          else group_entries
        in
        if group_entries <> [] then
          List.exists (fun e -> allows (e.perms land mask)) group_entries
        else
          let other =
            match find acl Other with
            | Some { perms; _ } -> perms
            | None -> mode land 7
          in
          allows other
  end

let validate acl =
  let seen = Hashtbl.create 8 in
  let key = function
    | User_obj -> "u" | Group_obj -> "g" | Mask -> "m" | Other -> "o"
    | User id -> "u:" ^ string_of_int id
    | Group id -> "g:" ^ string_of_int id
  in
  let distinct =
    List.for_all
      (fun e ->
        let k = key e.tag in
        if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true))
      acl
  in
  let in_range = List.for_all (fun e -> e.perms >= 0 && e.perms <= 7) acl in
  let has_named =
    List.exists (fun e -> match e.tag with User _ | Group _ -> true | _ -> false) acl
  in
  let has_mask = List.exists (fun e -> tag_equal e.tag Mask) acl in
  distinct && in_range && ((not has_named) || has_mask)

let perms_to_string perms =
  let bit b ch = if perms land b <> 0 then ch else '-' in
  Printf.sprintf "%c%c%c" (bit 4 'r') (bit 2 'w') (bit 1 'x')

let entry_to_string = function
  | { tag = User_obj; perms } -> Printf.sprintf "user::%s" (perms_to_string perms)
  | { tag = User id; perms } -> Printf.sprintf "user:%d:%s" id (perms_to_string perms)
  | { tag = Group_obj; perms } -> Printf.sprintf "group::%s" (perms_to_string perms)
  | { tag = Group id; perms } -> Printf.sprintf "group:%d:%s" id (perms_to_string perms)
  | { tag = Mask; perms } -> Printf.sprintf "mask::%s" (perms_to_string perms)
  | { tag = Other; perms } -> Printf.sprintf "other::%s" (perms_to_string perms)

let to_text ~mode acl =
  let base = of_mode mode in
  let extended =
    List.filter
      (fun e -> match e.tag with User _ | Group _ | Mask -> true | _ -> false)
      acl
  in
  (* Entries in canonical order: user, named users, group, named groups,
     mask, other. *)
  let order e =
    match e.tag with
    | User_obj -> 0 | User _ -> 1 | Group_obj -> 2 | Group _ -> 3
    | Mask -> 4 | Other -> 5
  in
  let all = List.sort (fun a b -> compare (order a) (order b)) (base @ extended) in
  String.concat "\n" (List.map entry_to_string all)

let perms_of_string s =
  if String.length s <> 3 then None
  else
    let bit i on v = match s.[i] with c when c = on -> Some v | '-' -> Some 0 | _ -> None in
    let ( let* ) = Option.bind in
    let* r = bit 0 'r' 4 in
    let* w = bit 1 'w' 2 in
    let* x = bit 2 'x' 1 in
    Some (r lor w lor x)

let entry_of_string line =
  match String.split_on_char ':' (String.trim line) with
  | [ kind; who; perms ] -> begin
    match perms_of_string perms with
    | None -> Error (Printf.sprintf "bad permissions %S" perms)
    | Some p ->
      let named make =
        match int_of_string_opt who with
        | Some id -> Ok { tag = make id; perms = p }
        | None -> Error (Printf.sprintf "bad id %S" who)
      in
      (match kind, who with
      | "user", "" -> Ok { tag = User_obj; perms = p }
      | "user", _ -> named (fun id -> User id)
      | "group", "" -> Ok { tag = Group_obj; perms = p }
      | "group", _ -> named (fun id -> Group id)
      | "mask", "" -> Ok { tag = Mask; perms = p }
      | "other", "" -> Ok { tag = Other; perms = p }
      | _ -> Error (Printf.sprintf "bad acl entry %S" line))
  end
  | _ -> Error (Printf.sprintf "bad acl entry %S" line)

let of_text text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match entry_of_string line with
      | Ok e -> go (e :: acc) rest
      | Error _ as err -> err)
  in
  go [] lines
