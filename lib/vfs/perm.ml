type access = Read | Write | Exec

let r_ok = Read
let w_ok = Write
let x_ok = Exec

let bits_for = function Read -> 4 | Write -> 2 | Exec -> 1

let check ~mode ~owner ~group cred access =
  if Cred.is_root cred then true
  else
    let shift =
      if cred.Cred.uid = owner then 6
      else if Cred.in_group cred group then 3
      else 0
    in
    mode lsr shift land bits_for access <> 0

let to_string ~kind mode =
  let bit b ch = if mode land b <> 0 then ch else '-' in
  let buf = Bytes.create 10 in
  Bytes.set buf 0 kind;
  Bytes.set buf 1 (bit 0o400 'r');
  Bytes.set buf 2 (bit 0o200 'w');
  Bytes.set buf 3 (bit 0o100 'x');
  Bytes.set buf 4 (bit 0o040 'r');
  Bytes.set buf 5 (bit 0o020 'w');
  Bytes.set buf 6 (bit 0o010 'x');
  Bytes.set buf 7 (bit 0o004 'r');
  Bytes.set buf 8 (bit 0o002 'w');
  Bytes.set buf 9 (bit 0o001 'x');
  Bytes.to_string buf

let of_string s =
  if String.length s <> 9 then None
  else
    let value i on bit =
      match s.[i] with
      | c when c = on -> Some bit
      | '-' -> Some 0
      | _ -> None
    in
    let ( let* ) = Option.bind in
    let* b0 = value 0 'r' 0o400 in
    let* b1 = value 1 'w' 0o200 in
    let* b2 = value 2 'x' 0o100 in
    let* b3 = value 3 'r' 0o040 in
    let* b4 = value 4 'w' 0o020 in
    let* b5 = value 5 'x' 0o010 in
    let* b6 = value 6 'r' 0o004 in
    let* b7 = value 7 'w' 0o002 in
    let* b8 = value 8 'x' 0o001 in
    Some (b0 lor b1 lor b2 lor b3 lor b4 lor b5 lor b6 lor b7 lor b8)
