type t =
  | Mkdir of { path : Path.t; mode : int }
  | Create of { path : Path.t; mode : int }
  | Write of { path : Path.t; off : int; data : string }
  | Truncate of { path : Path.t; size : int }
  | Unlink of { path : Path.t }
  | Rmdir of { path : Path.t; recursive : bool }
  | Rename of { src : Path.t; dst : Path.t }
  | Symlink of { path : Path.t; target : string }
  | Chmod of { path : Path.t; mode : int }
  | Chown of { path : Path.t; uid : int; gid : int }
  | Set_xattr of { path : Path.t; name : string; value : string }
  | Remove_xattr of { path : Path.t; name : string }
  | Set_acl of { path : Path.t; acl : Acl.t }

let path = function
  | Mkdir { path; _ }
  | Create { path; _ }
  | Write { path; _ }
  | Truncate { path; _ }
  | Unlink { path }
  | Rmdir { path; _ }
  | Symlink { path; _ }
  | Chmod { path; _ }
  | Chown { path; _ }
  | Set_xattr { path; _ }
  | Remove_xattr { path; _ }
  | Set_acl { path; _ } -> path
  | Rename { src; _ } -> src

let is_structural = function
  | Mkdir _ | Create _ | Unlink _ | Rmdir _ | Rename _ | Symlink _ -> true
  | Write _ | Truncate _ | Chmod _ | Chown _ | Set_xattr _ | Remove_xattr _
  | Set_acl _ -> false

let pp ppf op =
  match op with
  | Mkdir { path; mode } -> Format.fprintf ppf "mkdir %a %o" Path.pp path mode
  | Create { path; mode } -> Format.fprintf ppf "create %a %o" Path.pp path mode
  | Write { path; off; data } ->
    Format.fprintf ppf "write %a @%d (%d bytes)" Path.pp path off
      (String.length data)
  | Truncate { path; size } -> Format.fprintf ppf "truncate %a %d" Path.pp path size
  | Unlink { path } -> Format.fprintf ppf "unlink %a" Path.pp path
  | Rmdir { path; recursive } ->
    Format.fprintf ppf "rmdir%s %a" (if recursive then " -r" else "") Path.pp path
  | Rename { src; dst } -> Format.fprintf ppf "rename %a -> %a" Path.pp src Path.pp dst
  | Symlink { path; target } -> Format.fprintf ppf "symlink %a -> %s" Path.pp path target
  | Chmod { path; mode } -> Format.fprintf ppf "chmod %a %o" Path.pp path mode
  | Chown { path; uid; gid } -> Format.fprintf ppf "chown %a %d:%d" Path.pp path uid gid
  | Set_xattr { path; name; _ } -> Format.fprintf ppf "setxattr %a %s" Path.pp path name
  | Remove_xattr { path; name } -> Format.fprintf ppf "rmxattr %a %s" Path.pp path name
  | Set_acl { path; _ } -> Format.fprintf ppf "setacl %a" Path.pp path
