(** The batched packet-in fast path: a bounded ring of pooled event
    records between drivers and applications.

    The event-directory protocol (§3.5, {!Eventdir}) pays a dozen file
    crossings per event per subscriber — fine at whiteboard scale,
    ruinous in a datacenter packet-in storm. This ring is the
    shared-memory complement (the same bargain the paper strikes with
    libyanc in §8.1: keep the file system the API, move the bytes out
    of band): the driver {!publish}es O(1) into pooled mutable records,
    applications {!drain} up to a batch per scheduler wake, and
    records recycle through a {!Netsim.Pool} once every consumer has
    passed them — the steady-state storm path allocates nothing per
    event, which [netsim.pool.pktin.*] makes visible.

    Contract: a record handed to a drain callback is valid only for
    the duration of the callback — copy out anything kept. Slow
    consumers lose oldest events when the ring laps them (counted per
    consumer and in [driver.pktin.dropped]); like inotify overflow,
    losing events is explicit, never silent. Events remain visible in
    [/yanc/.proc] series ([driver.pktin.{published,drained,dropped}],
    batch-depth histogram [driver.pktin.batch]); {!Eventdir} remains
    the portable slow path (and the baseline the scale bench compares
    against). *)

type record = {
  mutable seq : int;
  mutable switch : string;
  mutable in_port : int;
  mutable reason : Openflow.Of_types.packet_in_reason;
  mutable buffer_id : int32 option;
  mutable total_len : int;
  mutable data : string;  (** raw frame bytes as decoded off the wire *)
  mutable at : float;     (** publish time (simulated) *)
}

type t

type consumer

val create : ?capacity:int -> telemetry:Telemetry.t -> unit -> t
(** [capacity] (default 16384) bounds retained-but-undrained events. *)

val subscribe : t -> name:string -> consumer
(** Start consuming at the current tail (no replay of old events). *)

val unsubscribe : t -> consumer -> unit

val publish :
  t -> switch:string -> in_port:int ->
  reason:Openflow.Of_types.packet_in_reason -> buffer_id:int32 option ->
  total_len:int -> data:string -> at:float -> int
(** Append one event, returning its sequence number. The current trace
    is stamped under {!trace_key} of that sequence so consumers resume
    it. With no subscribers the event is counted and dropped without
    touching the ring. *)

val drain : t -> consumer -> max:int -> (record -> unit) -> int
(** Apply the callback to up to [max] pending events, oldest first;
    returns how many ran. Bounding the batch is what keeps one storm
    from monopolizing a scheduler tick. *)

val pending : t -> consumer -> int

val overruns : consumer -> int
(** Events this consumer lost to ring overflow. *)

val name : consumer -> string

val trace_key : int -> string
(** Correlation key ["pktin:<seq>"] for {!Telemetry.Tracer} resume —
    distinct from {!Layout.trace_key_event} so the ring and the event
    directories never cross their stamps. *)

val published : t -> int
val dropped : t -> int

val pool : t -> record Netsim.Pool.t
(** The record pool (its [netsim.pool.pktin.*] gauges are registered at
    {!create}). *)
