(** The [/yanc/.proc] subtree — yanc's procfs analog.

    Linux's observability story is the everything-is-a-file thesis
    applied to introspection: /proc and ftrace's trace_pipe are kernel
    state rendered at read time. This module mounts the same idea on the
    controller's VFS, so observability needs {e zero new API} — any
    application (or the shell's [cat]) reads ordinary files:

    {v
    /yanc/.proc
    ├── metrics               # the whole registry, "name value" lines
    ├── trace_pipe            # completed spans; consumed on read
    ├── health                # Telemetry.Health probe report (status line first)
    ├── blackbox              # flight-recorder window; NOT consumed on read
    ├── apps/<name>/stat      # one line per scheduler entry
    └── switches/<dpid>/stat  # per-switch driver + datapath state
    v}

    Every file is a {!Vfs.Fs.set_generator} node: content is computed
    from live state at each read, nothing is written back, and
    [trace_pipe] inherits the tracer's consume-on-read semantics. *)

type t

val mount :
  ?proc:Vfs.Path.t -> fs:Vfs.Fs.t -> telemetry:Telemetry.t -> unit -> t
(** Create the subtree (default {!Layout.default_proc_root}) and wire
    [metrics] and [trace_pipe] to [telemetry]. Idempotent over an
    existing tree. *)

val root : t -> Vfs.Path.t

val telemetry : t -> Telemetry.t

val add_app : t -> name:string -> stat:(unit -> string) -> unit
(** Publish [apps/<name>/stat]; the closure renders at read time. *)

val add_switch : t -> name:string -> stat:(unit -> string) -> unit
(** Publish [switches/<name>/stat] (callers use the dpid as the name). *)

val add_file : t -> Vfs.Path.t -> (unit -> string) -> unit
(** Escape hatch: any extra generated file under (or outside) the proc
    root. *)
