module Path = Vfs.Path
module Fs = Vfs.Fs

type request = {
  seq : int;
  buffer_id : int32 option;
  in_port : int option;
  actions : Openflow.Action.t list;
  data : string;
}

let next_seq = ref 0

let submit fs ~cred ~root ~switch ?buffer_id ?in_port ~actions ~data () =
  incr next_seq;
  let seq = !next_seq in
  let dir = Layout.packet_out ~root ~switch seq in
  let ( let* ) = Result.bind in
  let* () = Fs.mkdir fs ~cred dir in
  let put name v = Fs.write_file fs ~cred (Path.child dir name) v in
  let* () =
    match buffer_id with
    | Some id -> put "buffer_id" (Int32.to_string id)
    | None -> Ok ()
  in
  let* () =
    match in_port with
    | Some p -> put "in_port" (string_of_int p)
    | None -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (name, value) ->
        let* () = acc in
        put name value)
      (Ok ())
      (Openflow.Action.to_fields actions)
  in
  let* () = if data <> "" then put "data" data else Ok () in
  Ok seq

let read_request fs ~cred dir seq =
  match Fs.readdir fs ~cred dir with
  | Error _ -> None
  | Ok names ->
    let get name =
      match Fs.read_file fs ~cred (Path.child dir name) with
      | Ok v -> Some v
      | Error _ -> None
    in
    let action_fields =
      List.filter_map
        (fun n ->
          if String.length n > 7 && String.sub n 0 7 = "action." then
            Option.map (fun v -> n, String.trim v) (get n)
          else None)
        names
    in
    (match Openflow.Action.of_fields action_fields with
    | Error _ -> None
    | Ok actions ->
      Some
        { seq;
          buffer_id = Option.bind (get "buffer_id") (fun s -> Int32.of_string_opt (String.trim s));
          in_port = Option.bind (get "in_port") (fun s -> int_of_string_opt (String.trim s));
          actions;
          data = Option.value (get "data") ~default:"" })

let consume fs ~root ~switch =
  let cred = Vfs.Cred.root in
  let spool = Layout.packet_out_dir ~root switch in
  match Fs.readdir fs ~cred spool with
  | Error _ -> []
  | Ok names ->
    let seqs = List.filter_map int_of_string_opt names |> List.sort compare in
    List.filter_map
      (fun seq ->
        let dir = Layout.packet_out ~root ~switch seq in
        let req = read_request fs ~cred dir seq in
        ignore (Fs.rmdir ~recursive:true fs ~cred dir);
        req)
      seqs

let pending fs ~root ~switch =
  match
    Fs.readdir fs ~cred:Vfs.Cred.root (Layout.packet_out_dir ~root switch)
  with
  | Ok names -> List.length (List.filter_map int_of_string_opt names)
  | Error _ -> 0
