module Path = Vfs.Path
module Fs = Vfs.Fs

type kind =
  | Root
  | Hosts_dir
  | Host
  | Host_attr
  | Switches_dir
  | Switch
  | Switch_attr
  | Switch_counters
  | Flows_dir
  | Flow
  | Flow_attr
  | Ports_dir
  | Port
  | Port_attr
  | Events_dir
  | Event_buffer
  | Event
  | Event_attr
  | Views_dir
  | Not_yanc

let kind_to_string = function
  | Root -> "root"
  | Hosts_dir -> "hosts_dir"
  | Host -> "host"
  | Host_attr -> "host_attr"
  | Switches_dir -> "switches_dir"
  | Switch -> "switch"
  | Switch_attr -> "switch_attr"
  | Switch_counters -> "switch_counters"
  | Flows_dir -> "flows_dir"
  | Flow -> "flow"
  | Flow_attr -> "flow_attr"
  | Ports_dir -> "ports_dir"
  | Port -> "port"
  | Port_attr -> "port_attr"
  | Events_dir -> "events_dir"
  | Event_buffer -> "event_buffer"
  | Event -> "event"
  | Event_attr -> "event_attr"
  | Views_dir -> "views_dir"
  | Not_yanc -> "not_yanc"

(* Classification walks the components below a yanc root; "views/<v>"
   recurses, so deeply stacked views cost only the path length. *)
let rec classify_rel = function
  | [] -> Root
  | [ "hosts" ] -> Hosts_dir
  | [ "hosts"; _ ] -> Host
  | "hosts" :: _ :: _ -> Host_attr
  | [ "switches" ] -> Switches_dir
  | [ "switches"; _ ] -> Switch
  | [ "switches"; _; "flows" ] -> Flows_dir
  | [ "switches"; _; "flows"; _ ] -> Flow
  | "switches" :: _ :: "flows" :: _ :: _ -> Flow_attr
  | [ "switches"; _; "ports" ] -> Ports_dir
  | [ "switches"; _; "ports"; _ ] -> Port
  | "switches" :: _ :: "ports" :: _ :: _ -> Port_attr
  | [ "switches"; _; "counters" ] -> Switch_counters
  | "switches" :: _ :: "counters" :: _ -> Switch_attr
  | [ "switches"; _; "events" ] -> Events_dir
  | [ "switches"; _; "events"; _ ] -> Event_buffer
  | [ "switches"; _; "events"; _; _ ] -> Event
  | "switches" :: _ :: "events" :: _ :: _ :: _ -> Event_attr
  | [ "switches"; _; "packet_out" ] -> Events_dir
  | [ "switches"; _; "packet_out"; _ ] -> Event
  | "switches" :: _ :: "packet_out" :: _ :: _ -> Event_attr
  | [ "switches"; _; _ ] -> Switch_attr
  | "switches" :: _ :: _ :: _ -> Switch_attr
  | [ "views" ] -> Views_dir
  | "views" :: _ :: rest -> classify_rel rest
  | _ -> Not_yanc

let classify ~root path =
  match Path.strip_prefix ~prefix:root path with
  | None -> Not_yanc
  | Some rel -> classify_rel (Path.components rel)

(* The innermost root: strip the master root, then every "views/<v>"
   prefix that is followed by yanc structure. *)
let enclosing_root ~root path =
  match Path.strip_prefix ~prefix:root path with
  | None -> None
  | Some rel ->
    let rec go acc = function
      | "views" :: v :: rest -> go (acc @ [ "views"; v ]) rest
      | _ -> acc
    in
    Some (Path.append root (Path.of_components (go [] (Path.components rel))))

let is_removable_object = function
  | Switch | Host | Flow | Port | Event_buffer | Event -> true
  | Root -> true (* a view directory *)
  | Hosts_dir | Host_attr | Switches_dir | Switch_attr | Switch_counters
  | Flows_dir | Flow_attr | Ports_dir | Port_attr | Events_dir | Event_attr
  | Views_dir | Not_yanc -> false

let auto_children = function
  | Root -> [ "hosts"; "switches"; "views" ]
  | Switch -> [ "counters"; "events"; "flows"; "packet_out"; "ports" ]
  | Flow | Port -> [ "counters" ]
  | Hosts_dir | Host | Host_attr | Switches_dir | Switch_attr | Switch_counters
  | Flows_dir | Flow_attr | Ports_dir | Port_attr | Events_dir | Event_buffer
  | Event | Event_attr | Views_dir | Not_yanc -> []

(* [peer] may only point at a port directory (of any switch, in any
   view). Targets are resolved like the VFS does: absolute, or relative
   to the link's parent. *)
let peer_target_ok ~root ~link_path ~target =
  match Path.of_string target with
  | Error _ -> false
  | Ok tpath ->
    let resolved =
      if String.length target > 0 && target.[0] = '/' then tpath
      else
        match Path.parent link_path with
        | Some parent -> Path.of_components (Path.components parent @ Path.components tpath)
        | None -> tpath
    in
    (match classify ~root resolved with Port -> true | _ -> false)

let attach fs ~root =
  (* Recursive rmdir for typed objects. *)
  Vfs.Fs.set_rmdir_policy fs (fun path ->
      is_removable_object (classify ~root path));
  (* peer symlinks must name ports; other symlinks are unrestricted. *)
  Vfs.Fs.set_symlink_policy fs (fun path ~target ->
      match Path.basename path, classify ~root path with
      | Some "peer", Port_attr -> peer_target_ok ~root ~link_path:path ~target
      | _ -> true);
  (* Auto-create children of typed directories. The hook runs inside
     emit; the nested mkdirs re-enter the hook but their classifications
     yield no further children, so recursion terminates. *)
  (* The hook's own FS calls are kernel-internal: they must not count as
     application syscalls in the §8.1 cost model. *)
  Fs.subscribe fs (fun op ->
      Vfs.Cost.suspended (Fs.cost fs) @@ fun () ->
      match op with
      | Vfs.Op.Mkdir { path; _ } ->
        let kind = classify ~root path in
        (match auto_children kind with
        | [] -> ()
        | children ->
          (* Children belong to whoever created the typed directory, so
             e.g. a tenant creating a switch in its view can populate
             the flows/ that appeared under it. *)
          let owner =
            match Fs.stat fs ~cred:Vfs.Cred.root path with
            | Ok st -> Some (st.Fs.uid, st.Fs.gid)
            | Error _ -> None
          in
          List.iter
            (fun child ->
              let cpath = Path.child path child in
              (match Fs.mkdir fs ~cred:Vfs.Cred.root cpath with
              | Ok () -> (
                match owner with
                | Some (uid, gid) ->
                  ignore (Fs.chown fs ~cred:Vfs.Cred.root cpath ~uid ~gid)
                | None -> ())
              | Error _ -> ()))
            children)
      | _ -> ())
