module OF = Openflow

type record = {
  mutable seq : int;
  mutable switch : string;
  mutable in_port : int;
  mutable reason : OF.Of_types.packet_in_reason;
  mutable buffer_id : int32 option;
  mutable total_len : int;
  mutable data : string;
  mutable at : float;
}

type consumer = {
  c_name : string;
  mutable cursor : int;    (* next seq this consumer will see *)
  mutable c_overruns : int;
}

type t = {
  cap : int;
  (* seq → slot by modulus; slots before [head] hold stale records
     already recycled (never read: every cursor is >= head). *)
  slots : record array;
  pool : record Netsim.Pool.t;
  telemetry : Telemetry.t;
  mutable head : int;   (* oldest retained seq *)
  mutable next : int;   (* next seq to assign *)
  mutable consumers : consumer list;
  m_published : Telemetry.Registry.counter;
  m_dropped : Telemetry.Registry.counter;
  m_drained : Telemetry.Registry.counter;
  m_batch : Telemetry.Registry.histogram;
}

let fresh_record () =
  { seq = 0; switch = ""; in_port = 0; reason = OF.Of_types.No_match;
    buffer_id = None; total_len = 0; data = ""; at = 0. }

let create ?(capacity = 16384) ~telemetry () =
  if capacity < 1 then invalid_arg "Pktin.create: capacity must be >= 1";
  let reg = Telemetry.registry telemetry in
  let pool = Netsim.Pool.create ~capacity ~make:fresh_record () in
  Netsim.Pool.register_metrics pool ~name:"pktin" reg;
  { cap = capacity;
    slots = Array.init capacity (fun _ -> fresh_record ());
    pool; telemetry; head = 0; next = 0; consumers = [];
    m_published = Telemetry.Registry.counter reg "driver.pktin.published";
    m_dropped = Telemetry.Registry.counter reg "driver.pktin.dropped";
    m_drained = Telemetry.Registry.counter reg "driver.pktin.drained";
    m_batch = Telemetry.Registry.histogram reg "driver.pktin.batch" }

let subscribe t ~name =
  let c = { c_name = name; cursor = t.next; c_overruns = 0 } in
  t.consumers <- c :: t.consumers;
  c

let unsubscribe t c =
  t.consumers <- List.filter (fun c' -> c' != c) t.consumers

let trace_key seq = Printf.sprintf "pktin:%d" seq

(* Recycle every record all consumers have passed. *)
let advance_head t =
  let min_cursor =
    List.fold_left (fun acc c -> min acc c.cursor) t.next t.consumers
  in
  while t.head < min_cursor do
    Netsim.Pool.release t.pool t.slots.(t.head mod t.cap);
    t.head <- t.head + 1
  done

let publish t ~switch ~in_port ~reason ~buffer_id ~total_len ~data ~at =
  let seq = t.next in
  t.next <- seq + 1;
  Telemetry.Registry.incr t.m_published;
  if t.consumers = [] then begin
    (* Nobody listening: the ring stays untouched and cursors stay
       pinned to [next], so head catches up for free. *)
    t.head <- t.next;
    Telemetry.Registry.incr t.m_dropped
  end
  else begin
    (* Full ring: the oldest event is overwritten; lagging consumers
       skip forward and count the loss. *)
    if t.next - t.head > t.cap then begin
      Netsim.Pool.release t.pool t.slots.(t.head mod t.cap);
      t.head <- t.head + 1;
      Telemetry.Registry.incr t.m_dropped;
      List.iter
        (fun c ->
          if c.cursor < t.head then begin
            c.c_overruns <- c.c_overruns + (t.head - c.cursor);
            c.cursor <- t.head
          end)
        t.consumers
    end;
    let r = Netsim.Pool.acquire t.pool in
    r.seq <- seq;
    r.switch <- switch;
    r.in_port <- in_port;
    r.reason <- reason;
    r.buffer_id <- buffer_id;
    r.total_len <- total_len;
    r.data <- data;
    r.at <- at;
    t.slots.(seq mod t.cap) <- r;
    Telemetry.Tracer.stamp (Telemetry.tracer t.telemetry) (trace_key seq)
  end;
  seq

let drain t c ~max f =
  let n = ref 0 in
  while !n < max && c.cursor < t.next do
    let r = t.slots.(c.cursor mod t.cap) in
    c.cursor <- c.cursor + 1;
    f r;
    incr n
  done;
  if !n > 0 then begin
    Telemetry.Registry.add t.m_drained !n;
    Telemetry.Registry.observe t.m_batch (float_of_int !n);
    advance_head t
  end;
  !n

let pending t c = t.next - c.cursor

let overruns c = c.c_overruns

let published t = Telemetry.Registry.value t.m_published

let dropped t = Telemetry.Registry.value t.m_dropped

let pool t = t.pool

let name c = c.c_name
