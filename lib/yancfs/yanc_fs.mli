(** The assembled yanc file system: a {!Vfs.Fs.t} with the /net
    hierarchy created and the {!Schema} semantics attached, plus typed
    helpers for the records drivers and system applications read and
    write. All helpers are thin wrappers over ordinary file I/O — any
    application could do the same with [cat] and [echo] (paper §5.4). *)

type t

val create : ?root:Vfs.Path.t -> ?telemetry:Telemetry.t -> Vfs.Fs.t -> t
(** Mount at [root] (default [/net]): create the top-level hierarchy and
    attach schema semantics. Idempotent over an existing tree.
    [telemetry] is the observability hub the flow-write path (and every
    component reached through this handle — drivers, agents) reports
    into; when omitted a private instance with tracing disabled is
    created, so standalone use costs nothing. *)

val fs : t -> Vfs.Fs.t
val root : t -> Vfs.Path.t

val telemetry : t -> Telemetry.t

val pktin : t -> Pktin.t
(** The packet-in fast-path ring shared by every handle over this
    mount (views included) — drivers publish into it, applications
    subscribe and drain ({!Pktin}). *)

val in_view : t -> cred:Vfs.Cred.t -> string -> (t, Vfs.Errno.t) result
(** A handle rooted at [<root>/views/<name>], creating the view if
    needed — the schema populates its hosts/switches/views. The result
    is a full yanc root: every other function works on it unchanged. *)

val tree : t -> string
(** Render the hierarchy (Figure 2 reproduction). *)

(** {1 Switches (driver-side, run as root)} *)

val switch_name_of_dpid : int64 -> string
(** ["sw<dpid>"] — the paper's naming. *)

val add_switch :
  t -> name:string -> dpid:int64 -> protocol:string -> n_buffers:int ->
  n_tables:int -> capabilities:string list -> actions:string list ->
  (unit, Vfs.Errno.t) result

val remove_switch : t -> string -> (unit, Vfs.Errno.t) result

val switch_names : t -> string list

val switch_dpid : t -> string -> int64 option

val switch_protocol : t -> string -> string option

val set_switch_status :
  t -> switch:string -> string -> (unit, Vfs.Errno.t) result
(** Write the driver-owned [status] attribute
    ([connected]/[degraded]/[reconnecting]/[dead]/...); applications
    watch this file to learn a switch's control channel died. *)

val switch_status : t -> string -> string option

val write_switch_counters :
  t -> switch:string -> (string * int64) list -> (unit, Vfs.Errno.t) result

(** {1 Ports} *)

val set_port :
  t -> switch:string -> Openflow.Of_types.Port_info.t -> (unit, Vfs.Errno.t) result
(** Create or refresh the port directory from a port description. The
    [config.port_down] file is only initialized on creation — afterwards
    it belongs to administrators (writing it is how ports are shut:
    [echo 1 > port_2/config.port_down], paper §3.1). *)

val remove_port : t -> switch:string -> int -> (unit, Vfs.Errno.t) result

val port_numbers : t -> cred:Vfs.Cred.t -> string -> int list

val read_port :
  t -> cred:Vfs.Cred.t -> switch:string -> int ->
  (Openflow.Of_types.Port_info.t, Vfs.Errno.t) result
(** The description as the {e administrator} sees/sets it: [admin_down]
    comes from [config.port_down] (which an admin may have changed since
    the driver last wrote the directory). *)

val write_port_counters :
  t -> switch:string -> port:int -> Openflow.Of_types.Port_stats.t ->
  (unit, Vfs.Errno.t) result

val set_peer :
  t -> cred:Vfs.Cred.t -> switch:string -> port:int ->
  peer:(string * int) option -> (unit, Vfs.Errno.t) result
(** Point the port's [peer] symlink at another (switch, port), or remove
    it. Topology daemons own these links (paper §3.3, §4.3). *)

val peer_of :
  t -> cred:Vfs.Cred.t -> switch:string -> port:int -> (string * int) option

(** {1 Flows} *)

val create_flow :
  t -> cred:Vfs.Cred.t -> switch:string -> name:string -> Flowdir.t ->
  (unit, Vfs.Errno.t) result
(** mkdir the flow directory and commit the fields ({!Flowdir.write}). *)

val flow_names : t -> cred:Vfs.Cred.t -> string -> string list

module Name_set : Set.S with type elt = string

val flow_name_set : t -> cred:Vfs.Cred.t -> string -> Name_set.t
(** The committed flow-directory names as a set — the membership type
    consumers doing deletion detection want ([flow_names] + [List.mem]
    is O(flows²) over a whole table scan). *)

val read_flow :
  t -> cred:Vfs.Cred.t -> switch:string -> string -> (Flowdir.t, string) result

val delete_flow :
  t -> cred:Vfs.Cred.t -> switch:string -> string -> (unit, Vfs.Errno.t) result

(** {1 Hosts} *)

val upsert_host :
  t -> cred:Vfs.Cred.t -> name:string -> mac:Packet.Mac.t ->
  ip:Packet.Ipv4_addr.t option -> ?attached_to:string * int -> unit ->
  (unit, Vfs.Errno.t) result

val host_names : t -> cred:Vfs.Cred.t -> string list

val read_host :
  t -> cred:Vfs.Cred.t -> string ->
  (Packet.Mac.t * Packet.Ipv4_addr.t option * (string * int) option, Vfs.Errno.t) result
