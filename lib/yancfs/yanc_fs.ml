module Path = Vfs.Path
module Fs = Vfs.Fs
module Port_info = Openflow.Of_types.Port_info
module Port_stats = Openflow.Of_types.Port_stats

type t = {
  fs : Fs.t;
  root : Path.t;
  telemetry : Telemetry.t;
  (* The packet-in fast path (one ring per mount, shared by views). *)
  pktin : Pktin.t;
}

let ( let* ) = Result.bind

let fs t = t.fs

let root t = t.root

let telemetry t = t.telemetry

let pktin t = t.pktin

let ensure_dir fs ~cred path =
  match Fs.mkdir fs ~cred path with
  | Ok () | Error Vfs.Errno.EEXIST -> Ok ()
  | Error _ as e -> e

let create ?(root = Layout.default_root) ?telemetry base =
  let telemetry =
    (* A bare Yanc_fs (tests, benches) gets its own quiet instance; the
       controller passes the shared one with tracing on. *)
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~tracing:false ()
  in
  ignore (Fs.mkdir_p base ~cred:Vfs.Cred.root root);
  ignore (Schema.attach base ~root);
  (* The schema hook fires on mkdir; an already-existing root needs the
     top-level dirs ensured by hand. *)
  List.iter
    (fun p -> ignore (ensure_dir base ~cred:Vfs.Cred.root p))
    [ Layout.hosts_dir ~root; Layout.switches_dir ~root; Layout.views_dir ~root ];
  { fs = base; root; telemetry; pktin = Pktin.create ~telemetry () }

let in_view t ~cred name =
  let vroot = Layout.view ~root:t.root name in
  let* () = ensure_dir t.fs ~cred vroot in
  (* Auto-children may not exist if the view pre-dated schema attach. *)
  let* () = ensure_dir t.fs ~cred (Layout.hosts_dir ~root:vroot) in
  let* () = ensure_dir t.fs ~cred (Layout.switches_dir ~root:vroot) in
  let* () = ensure_dir t.fs ~cred (Layout.views_dir ~root:vroot) in
  Ok { fs = t.fs; root = vroot; telemetry = t.telemetry; pktin = t.pktin }

let tree t =
  match Fs.tree t.fs ~cred:Vfs.Cred.root t.root with
  | Ok s -> s
  | Error e -> Printf.sprintf "<%s>" (Vfs.Errno.to_string e)

(* --- switches --------------------------------------------------------------- *)

let switch_name_of_dpid dpid = Printf.sprintf "sw%Ld" dpid

let add_switch t ~name ~dpid ~protocol ~n_buffers ~n_tables ~capabilities
    ~actions =
  let cred = Vfs.Cred.root in
  let dir = Layout.switch ~root:t.root name in
  let* () = ensure_dir t.fs ~cred dir in
  let attr file v = Fs.write_file t.fs ~cred (Layout.switch_attr ~root:t.root name file) v in
  let* () = attr "id" (Printf.sprintf "%Ld" dpid) in
  let* () = attr "protocol" protocol in
  let* () = attr "num_buffers" (string_of_int n_buffers) in
  let* () = attr "num_tables" (string_of_int n_tables) in
  let* () = attr "capabilities" (String.concat "\n" capabilities) in
  attr "actions" (String.concat "\n" actions)

let remove_switch t name =
  Fs.rmdir ~recursive:true t.fs ~cred:Vfs.Cred.root
    (Layout.switch ~root:t.root name)

let switch_names t =
  match
    Fs.readdir t.fs ~cred:Vfs.Cred.root (Layout.switches_dir ~root:t.root)
  with
  | Ok names -> names
  | Error _ -> []

let read_attr t ~cred name file =
  match Fs.read_file t.fs ~cred (Layout.switch_attr ~root:t.root name file) with
  | Ok v -> Some (String.trim v)
  | Error _ -> None

let switch_dpid t name =
  Option.bind (read_attr t ~cred:Vfs.Cred.root name "id") Int64.of_string_opt

let switch_protocol t name = read_attr t ~cred:Vfs.Cred.root name "protocol"

let set_switch_status t ~switch status =
  Fs.write_file t.fs ~cred:Vfs.Cred.root
    (Layout.switch_status ~root:t.root switch) status

let switch_status t name = read_attr t ~cred:Vfs.Cred.root name "status"

let write_switch_counters t ~switch counters =
  let cred = Vfs.Cred.root in
  let dir = Layout.switch_counters ~root:t.root switch in
  List.fold_left
    (fun acc (name, value) ->
      let* () = acc in
      Fs.write_file t.fs ~cred (Path.child dir name) (Int64.to_string value))
    (Ok ()) counters

(* --- ports ------------------------------------------------------------------- *)

let bool_file v = if v then "1" else "0"

let parse_bool_file s =
  match String.trim s with
  | "1" | "true" | "yes" -> true
  | _ -> false

let set_port t ~switch (info : Port_info.t) =
  let cred = Vfs.Cred.root in
  let dir = Layout.port ~root:t.root ~switch info.port_no in
  let existed = Fs.exists t.fs ~cred dir in
  let* () = ensure_dir t.fs ~cred dir in
  let put file v = Fs.write_file t.fs ~cred (Path.child dir file) v in
  let* () = put "hw_addr" (Packet.Mac.to_string info.hw_addr) in
  let* () = put "name" info.name in
  let* () = put "speed" (string_of_int info.speed_mbps) in
  let* () = put Layout.state_link_down (bool_file info.link_down) in
  if not existed then put Layout.config_port_down (bool_file info.admin_down)
  else Ok ()

let remove_port t ~switch n =
  Fs.rmdir ~recursive:true t.fs ~cred:Vfs.Cred.root
    (Layout.port ~root:t.root ~switch n)

let port_numbers t ~cred switch =
  match Fs.readdir t.fs ~cred (Layout.ports_dir ~root:t.root switch) with
  | Error _ -> []
  | Ok names -> List.filter_map Layout.port_no_of_name names |> List.sort compare

let read_port t ~cred ~switch n =
  let dir = Layout.port ~root:t.root ~switch n in
  let get file = Fs.read_file t.fs ~cred (Path.child dir file) in
  let* hw = get "hw_addr" in
  let* name = get "name" in
  let* speed = get "speed" in
  let* down = get Layout.config_port_down in
  let* link = get Layout.state_link_down in
  match Packet.Mac.of_string (String.trim hw), int_of_string_opt (String.trim speed) with
  | Some hw_addr, Some speed_mbps ->
    Ok
      (Port_info.make ~admin_down:(parse_bool_file down)
         ~link_down:(parse_bool_file link) ~speed_mbps ~name:(String.trim name)
         ~port_no:n ~hw_addr ())
  | _ -> Error Vfs.Errno.EINVAL

let write_port_counters t ~switch ~port (s : Port_stats.t) =
  let cred = Vfs.Cred.root in
  let dir = Layout.port_counters ~root:t.root ~switch port in
  let* () = ensure_dir t.fs ~cred dir in
  List.fold_left
    (fun acc (name, v) ->
      let* () = acc in
      Fs.write_file t.fs ~cred (Path.child dir name) (Int64.to_string v))
    (Ok ())
    [ "rx_packets", s.rx_packets; "tx_packets", s.tx_packets;
      "rx_bytes", s.rx_bytes; "tx_bytes", s.tx_bytes;
      "rx_dropped", s.rx_dropped; "tx_dropped", s.tx_dropped ]

let set_peer t ~cred ~switch ~port ~peer =
  let link = Layout.port_peer ~root:t.root ~switch port in
  let* () =
    match Fs.lstat t.fs ~cred link with
    | Ok _ -> Fs.unlink t.fs ~cred link
    | Error Vfs.Errno.ENOENT -> Ok ()
    | Error _ as e -> Result.map (fun _ -> ()) e
  in
  match peer with
  | None -> Ok ()
  | Some (psw, pport) ->
    let target = Path.to_string (Layout.port ~root:t.root ~switch:psw pport) in
    Fs.symlink t.fs ~cred ~target link

let peer_of t ~cred ~switch ~port =
  match Fs.readlink t.fs ~cred (Layout.port_peer ~root:t.root ~switch port) with
  | Error _ -> None
  | Ok target -> (
    match Path.of_string target with
    | Error _ -> None
    | Ok p -> (
      match Option.map Path.components (Path.strip_prefix ~prefix:t.root p) with
      | Some [ "switches"; sw; "ports"; pname ] ->
        Option.map (fun n -> sw, n) (Layout.port_no_of_name pname)
      | Some _ | None -> None))

(* --- flows -------------------------------------------------------------------- *)

let create_flow t ~cred ~switch ~name flow =
  let tracer = Telemetry.tracer t.telemetry in
  Telemetry.Tracer.span tracer ~stage:"yancfs.flow_write" (fun () ->
      let dir = Layout.flow ~root:t.root ~switch name in
      let* () = Fs.mkdir t.fs ~cred dir in
      let* () = Flowdir.write t.fs ~cred dir flow in
      (* Hand the trace to whichever driver reconciles this directory. *)
      Telemetry.Tracer.stamp tracer (Layout.trace_key_flow ~switch name);
      Ok ())

let flow_names t ~cred switch =
  match Fs.readdir t.fs ~cred (Layout.flows_dir ~root:t.root switch) with
  | Ok names -> names
  | Error _ -> []

module Name_set = Set.Make (String)

let flow_name_set t ~cred switch =
  match Fs.readdir t.fs ~cred (Layout.flows_dir ~root:t.root switch) with
  | Ok names -> Name_set.of_list names
  | Error _ -> Name_set.empty

let read_flow t ~cred ~switch name =
  Flowdir.read t.fs ~cred (Layout.flow ~root:t.root ~switch name)

let delete_flow t ~cred ~switch name =
  Fs.rmdir ~recursive:true t.fs ~cred (Layout.flow ~root:t.root ~switch name)

(* --- hosts -------------------------------------------------------------------- *)

let upsert_host t ~cred ~name ~mac ~ip ?attached_to () =
  let dir = Layout.host ~root:t.root name in
  let* () = ensure_dir t.fs ~cred dir in
  let put file v = Fs.write_file t.fs ~cred (Path.child dir file) v in
  let* () = put "mac" (Packet.Mac.to_string mac) in
  let* () =
    match ip with
    | Some addr -> put "ip" (Packet.Ipv4_addr.to_string addr)
    | None -> Ok ()
  in
  match attached_to with
  | Some (sw, port) ->
    let link = Path.child dir "attached_to" in
    let* () =
      match Fs.lstat t.fs ~cred link with
      | Ok _ -> Fs.unlink t.fs ~cred link
      | Error _ -> Ok ()
    in
    Fs.symlink t.fs ~cred
      ~target:(Path.to_string (Layout.port ~root:t.root ~switch:sw port))
      link
  | None -> Ok ()

let host_names t ~cred =
  match Fs.readdir t.fs ~cred (Layout.hosts_dir ~root:t.root) with
  | Ok names -> names
  | Error _ -> []

let read_host t ~cred name =
  let dir = Layout.host ~root:t.root name in
  let* mac_s = Fs.read_file t.fs ~cred (Path.child dir "mac") in
  match Packet.Mac.of_string (String.trim mac_s) with
  | None -> Error Vfs.Errno.EINVAL
  | Some mac ->
    let ip =
      match Fs.read_file t.fs ~cred (Path.child dir "ip") with
      | Ok s -> Packet.Ipv4_addr.of_string (String.trim s)
      | Error _ -> None
    in
    let attached =
      match Fs.readlink t.fs ~cred (Path.child dir "attached_to") with
      | Error _ -> None
      | Ok target -> (
        match Path.of_string target with
        | Error _ -> None
        | Ok p -> (
          match Option.map Path.components (Path.strip_prefix ~prefix:t.root p) with
          | Some [ "switches"; sw; "ports"; pname ] ->
            Option.map (fun n -> sw, n) (Layout.port_no_of_name pname)
          | Some _ | None -> None))
    in
    Ok (mac, ip, attached)
