(** Semantic typing of the yanc tree (paper §3.1).

    "Directories and files contain semantic information. Each directory
    which contains a list of objects automatically creates an object of
    the appropriate type on a mkdir()."

    {!classify} maps a path to the kind of object it names, looking
    through arbitrarily nested views. {!attach} installs the yanc
    semantics on a VFS: a mutation-stream hook that materializes the
    auto-created children (a new view gets hosts/switches/views, a new
    switch gets flows/ports/counters/events, a new flow or port gets
    counters), an rmdir policy making typed-object removal recursive,
    and a symlink policy restricting [peer] links to ports. *)

type kind =
  | Root          (** a yanc root: /net or any view directory *)
  | Hosts_dir
  | Host
  | Host_attr
  | Switches_dir
  | Switch
  | Switch_attr
  | Switch_counters
  | Flows_dir
  | Flow
  | Flow_attr
  | Ports_dir
  | Port
  | Port_attr
  | Events_dir
  | Event_buffer  (** one application's private packet-in buffer *)
  | Event         (** one packet-in message *)
  | Event_attr
  | Views_dir
  | Not_yanc      (** outside the yanc tree *)

val classify : root:Vfs.Path.t -> Vfs.Path.t -> kind
(** [classify ~root path]. A view directory classifies as [Root] —
    whatever lies below it is classified against that nested root. *)

val enclosing_root : root:Vfs.Path.t -> Vfs.Path.t -> Vfs.Path.t option
(** The innermost yanc root (master or view) containing the path. *)

val is_removable_object : kind -> bool
(** Kinds whose directories delete recursively on a plain rmdir:
    switches, hosts, flows, ports, views, event buffers and events. *)

val attach : Vfs.Fs.t -> root:Vfs.Path.t -> Vfs.Fs.hook
(** Install the semantics; the returned hook can be unsubscribed to
    detach the auto-creation behaviour (policies stay). *)

val kind_to_string : kind -> string
