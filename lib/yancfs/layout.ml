module Path = Vfs.Path

let default_root = Path.of_string_exn "/net"

let hosts_dir ~root = Path.child root "hosts"

let switches_dir ~root = Path.child root "switches"

let views_dir ~root = Path.child root "views"

let host ~root name = Path.child (hosts_dir ~root) name

let view ~root name = Path.child (views_dir ~root) name

let switch ~root name = Path.child (switches_dir ~root) name

let switch_attr ~root name attr = Path.child (switch ~root name) attr

let switch_counters ~root name = Path.child (switch ~root name) "counters"

let switch_status ~root name = switch_attr ~root name "status"

let flows_dir ~root name = Path.child (switch ~root name) "flows"

let flow ~root ~switch:sw name = Path.child (flows_dir ~root sw) name

let flow_attr ~root ~switch ~flow:f attr = Path.child (flow ~root ~switch f) attr

let flow_counters ~root ~switch f = Path.child (flow ~root ~switch f) "counters"

let ports_dir ~root name = Path.child (switch ~root name) "ports"

let port_name n = Printf.sprintf "port_%d" n

let port_no_of_name s =
  if String.length s > 5 && String.sub s 0 5 = "port_" then
    int_of_string_opt (String.sub s 5 (String.length s - 5))
  else None

let port ~root ~switch:sw n = Path.child (ports_dir ~root sw) (port_name n)

let port_attr ~root ~switch ~port:n attr = Path.child (port ~root ~switch n) attr

let port_peer ~root ~switch n = port_attr ~root ~switch ~port:n "peer"

let port_counters ~root ~switch n = port_attr ~root ~switch ~port:n "counters"

let events_dir ~root name = Path.child (switch ~root name) "events"

let packet_out_dir ~root name = Path.child (switch ~root name) "packet_out"

let packet_out ~root ~switch n =
  Path.child (packet_out_dir ~root switch) (string_of_int n)

let event_buffer ~root ~switch app = Path.child (events_dir ~root switch) app

let event ~root ~switch ~app n =
  Path.child (event_buffer ~root ~switch app) (string_of_int n)

(* --- tracer correlation keys (see Telemetry.Tracer) -------------------------- *)

let trace_key_event seq = Printf.sprintf "ev:%d" seq

let trace_key_flow ~switch name = Printf.sprintf "flow:%s/%s" switch name

(* --- /yanc/cluster (sharded multi-node control, see Yanc.Cluster) ------------ *)

let cluster_root = Path.of_string_exn "/yanc/cluster"

let cluster_nodes_dir = Path.child cluster_root "nodes"

let cluster_node name = Path.child cluster_nodes_dir name

let cluster_lease name = Path.child (cluster_node name) "lease"

let cluster_shards_dir = Path.child cluster_root "shards"

let cluster_shard dpid = Path.child cluster_shards_dir (Int64.to_string dpid)

let node_proc_root name =
  Path.of_string_exn (Printf.sprintf "/yanc/nodes/%s/.proc" name)

(* The fleet-wide rollup: merged metrics + health, mounted on every
   replica so any node's mount answers for the whole cluster. *)
let cluster_proc_root = Path.child cluster_root ".proc"

(* Flight-recorder dumps (takeover, violated invariant) land here as
   ordinary replicated files — the post-mortem survives its node. *)
let blackbox_dumps_dir = Path.of_string_exn "/yanc/blackbox"

let blackbox_dump ~node n =
  Path.child blackbox_dumps_dir (Printf.sprintf "%s-%d" node n)

(* --- /yanc/policy (policy programs as files, see Apps.Policy_engine) ------- *)

let policy_root = Path.of_string_exn "/yanc/policy"

let policy_file name = Path.child policy_root name

let policy_errors_dir = Path.child policy_root ".errors"

let policy_error name = Path.child policy_errors_dir name

(* --- /yanc/.proc (procfs analog, see Procdir) ------------------------------- *)

let default_proc_root = Path.of_string_exn "/yanc/.proc"

let proc_policy ~proc = Path.child proc "policy"

let proc_metrics ~proc = Path.child proc "metrics"

let proc_trace_pipe ~proc = Path.child proc "trace_pipe"

let proc_health ~proc = Path.child proc "health"

let proc_blackbox ~proc = Path.child proc "blackbox"

let proc_apps_dir ~proc = Path.child proc "apps"

let proc_app ~proc name = Path.child (proc_apps_dir ~proc) name

let proc_app_stat ~proc name = Path.child (proc_app ~proc name) "stat"

let proc_switches_dir ~proc = Path.child proc "switches"

let proc_switch ~proc name = Path.child (proc_switches_dir ~proc) name

let proc_switch_stat ~proc name = Path.child (proc_switch ~proc name) "stat"

let version_file = "version"

let priority_file = "priority"

let idle_timeout_file = "idle_timeout"

let hard_timeout_file = "hard_timeout"

let cookie_file = "cookie"

let error_file = "error"

let config_port_down = "config.port_down"

let state_link_down = "state.link_down"

let peer_link = "peer"
