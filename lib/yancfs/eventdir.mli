(** Packet-in event buffers (paper §3.5).

    Every application interested in packet-in events creates a directory
    under a switch's [events/] — its private buffer. The driver
    publishes each packet-in concurrently into {e all} buffers as a
    numbered subdirectory holding [in_port], [reason], [buffer_id]
    (when the switch buffered the frame), [total_len] and [data] (the
    raw frame bytes). Applications consume events by reading and then
    removing the directory. *)

type event = {
  seq : int;
  in_port : int;
  reason : Openflow.Of_types.packet_in_reason;
  buffer_id : int32 option;
  total_len : int;
  data : string;
}

val subscribe :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> root:Vfs.Path.t -> switch:string ->
  app:string -> (unit, Vfs.Errno.t) result
(** Create the app's private buffer (idempotent). *)

val subscribers :
  Vfs.Fs.t -> root:Vfs.Path.t -> switch:string -> string list

val publish :
  ?telemetry:Telemetry.t -> Vfs.Fs.t -> root:Vfs.Path.t -> switch:string ->
  in_port:int -> reason:Openflow.Of_types.packet_in_reason ->
  buffer_id:int32 option -> total_len:int -> data:string -> int
(** Deliver one packet-in to every subscribed buffer (driver-side, so it
    runs as root); returns the number of buffers written. With
    [telemetry], the current trace is stamped under
    {!Layout.trace_key_event} of the assigned sequence number so
    consumers can resume it. *)

val poll :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> root:Vfs.Path.t -> switch:string ->
  app:string -> event list
(** Read all pending events in the app's buffer, oldest first, without
    consuming them. *)

val consume :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> root:Vfs.Path.t -> switch:string ->
  app:string -> event list
(** Read and remove all pending events. *)

val frame_of : event -> Packet.Eth.t option
(** Decode the captured bytes (fails on truncated captures). *)
