(** The packet-out request spool, [<switch>/packet_out/] — the file-I/O
    path for applications to emit packets (e.g. an ARP daemon answering
    a request it received as a packet-in). An application creates a
    numbered directory with the outgoing frame and actions; the driver
    sends a protocol packet-out and removes the request. *)

type request = {
  seq : int;
  buffer_id : int32 option;  (** release a switch buffer instead of data *)
  in_port : int option;
  actions : Openflow.Action.t list;
  data : string;             (** raw frame bytes; ignored with buffer_id *)
}

val submit :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> root:Vfs.Path.t -> switch:string ->
  ?buffer_id:int32 -> ?in_port:int -> actions:Openflow.Action.t list ->
  data:string -> unit -> (int, Vfs.Errno.t) result
(** Queue a packet-out; returns its sequence number. *)

val consume :
  Vfs.Fs.t -> root:Vfs.Path.t -> switch:string -> request list
(** Driver-side: drain all pending requests (removing them), oldest
    first. Malformed requests are removed and skipped. *)

val pending : Vfs.Fs.t -> root:Vfs.Path.t -> switch:string -> int
