(** Flow entries as directories (paper §3.4, Figure 3).

    A flow directory holds one file per specified match field
    ([match.dl_type], …; absence means wildcard), one file per action
    ([action.0.out], …), [priority], [idle_timeout], [hard_timeout],
    [cookie], and the [version] file implementing the atomic-commit
    protocol: writers update any number of field files and then
    increment [version]; drivers react only to [version] changes, so a
    multi-file update is applied to hardware atomically. *)

type t = {
  of_match : Openflow.Of_match.t;
  actions : Openflow.Action.t list;
  priority : int;
  idle_timeout : int;
  hard_timeout : int;
  cookie : int64;
  version : int;
  buffer_id : int32 option;
      (** reactive-flow optimization: naming a switch packet buffer here
          makes the driver release that buffered packet through the new
          flow's actions when it programs the hardware *)
}

val default : t
(** Wildcard match, no actions (drop), priority 0x8000, no timeouts,
    version 0. *)

val write :
  ?bump_version:bool -> Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t -> t ->
  (unit, Vfs.Errno.t) result
(** Materialize the flow under an existing flow directory: write all
    field files and finally (unless [bump_version] is [false]) write the
    incremented version — the commit point. *)

val update :
  ?bump_version:bool -> Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t ->
  (t -> t) -> (t, string) result
(** Read-modify-write in one step: parse the directory, apply [f], and
    commit the result ({!write}, which bumps [version] unless
    [bump_version] is [false]). Returns the flow as committed — i.e.
    with the bumped version — so callers can cache it. This is the
    upsert building block: apps that want create-or-update write
    [match create_flow ... with Error EEXIST -> update ... | r -> r]
    instead of hand-rolling read_version/write sequences. *)

val read : Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t -> (t, string) result
(** Parse a flow directory. Unparseable or unknown files make the whole
    flow invalid (the error names the file), so drivers can surface the
    problem in the flow's [error] file rather than program garbage. *)

val read_version : Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t -> int option
(** Fast path for the driver's change scan: just the version file
    ([None] when absent/invalid — i.e. not yet committed). *)

val write_counters :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t ->
  packets:int64 -> bytes:int64 -> duration_s:int -> (unit, Vfs.Errno.t) result
(** Refresh [counters/{packets,bytes,duration}] (driver-side). *)

val set_error :
  Vfs.Fs.t -> cred:Vfs.Cred.t -> Vfs.Path.t -> string option ->
  (unit, Vfs.Errno.t) result
(** Write or clear the [error] file. *)

val equal_config : t -> t -> bool
(** Equality ignoring [version] — used by drivers to detect no-op
    commits. *)

val pp : Format.formatter -> t -> unit
