(** Path builders for the yanc hierarchy (paper Figures 2 and 3).

    Every function takes the yanc [root] it operates under, because a
    network view has exactly the same structure nested at
    [<root>/views/<name>] — applications handed a view root use the
    identical code paths as applications on the master tree (paper §4.2).

{v
/net
├── hosts
├── switches
│   └── sw1
│       ├── actions  capabilities  id  num_buffers  num_tables  protocol
│       ├── counters/
│       ├── events/<app>/<seq>/{in_port,reason,buffer_id,total_len,data}
│       ├── flows/<flow>/{match.*,action.*,priority,timeout,version,counters/}
│       └── ports/<port_N>/{hw_addr,name,speed,config.port_down,
│                           state.link_down,counters/,peer -> ../../..}
└── views
    └── <view>/{hosts,switches,views}
v} *)

val default_root : Vfs.Path.t
(** [/net] *)

val hosts_dir : root:Vfs.Path.t -> Vfs.Path.t
val switches_dir : root:Vfs.Path.t -> Vfs.Path.t
val views_dir : root:Vfs.Path.t -> Vfs.Path.t

val host : root:Vfs.Path.t -> string -> Vfs.Path.t
val view : root:Vfs.Path.t -> string -> Vfs.Path.t
(** A view's directory is itself a yanc root. *)

val switch : root:Vfs.Path.t -> string -> Vfs.Path.t
val switch_attr : root:Vfs.Path.t -> string -> string -> Vfs.Path.t
(** e.g. [switch_attr ~root "sw1" "id"]. *)

val switch_counters : root:Vfs.Path.t -> string -> Vfs.Path.t

val switch_status : root:Vfs.Path.t -> string -> Vfs.Path.t
(** The driver-owned connection state file:
    [handshaking|connected|degraded|reconnecting|dead]. *)

val flows_dir : root:Vfs.Path.t -> string -> Vfs.Path.t
val flow : root:Vfs.Path.t -> switch:string -> string -> Vfs.Path.t
val flow_attr : root:Vfs.Path.t -> switch:string -> flow:string -> string -> Vfs.Path.t
val flow_counters : root:Vfs.Path.t -> switch:string -> string -> Vfs.Path.t

val ports_dir : root:Vfs.Path.t -> string -> Vfs.Path.t
val port : root:Vfs.Path.t -> switch:string -> int -> Vfs.Path.t
val port_name : int -> string
(** ["port_2"] for 2 — the paper's naming. *)

val port_no_of_name : string -> int option
val port_attr : root:Vfs.Path.t -> switch:string -> port:int -> string -> Vfs.Path.t
val port_peer : root:Vfs.Path.t -> switch:string -> int -> Vfs.Path.t
val port_counters : root:Vfs.Path.t -> switch:string -> int -> Vfs.Path.t

val events_dir : root:Vfs.Path.t -> string -> Vfs.Path.t

val packet_out_dir : root:Vfs.Path.t -> string -> Vfs.Path.t
(** Extension over the paper's Figure 3: a request spool symmetric to
    [events/] — applications create numbered directories describing
    packets to emit; the driver sends and removes them. *)

val packet_out : root:Vfs.Path.t -> switch:string -> int -> Vfs.Path.t
val event_buffer : root:Vfs.Path.t -> switch:string -> string -> Vfs.Path.t
(** [event_buffer ~root ~switch app] — the app's private packet-in
    buffer. *)

val event : root:Vfs.Path.t -> switch:string -> app:string -> int -> Vfs.Path.t

(** {1 Tracer correlation keys}

    The packet-in trace crosses components through the file system, so
    trace ids travel as {!Telemetry.Tracer.stamp} keys derived from the
    objects both sides see: the event sequence number between driver and
    app, the flow path between app and driver. *)

val trace_key_event : int -> string
(** ["ev:<seq>"] *)

val trace_key_flow : switch:string -> string -> string
(** ["flow:<switch>/<flow>"] *)

(** {1 /yanc/cluster — sharded multi-node control (see [Yanc.Cluster])}

    The shard map and membership live {e in the file system}: a node's
    lease is a file holding its expiry on the shared clock, a shard
    record names the owner that claimed the switch. Both replicate
    through {!Dfs.Cluster}, so every node reads cluster state the same
    way it reads network state. *)

val cluster_root : Vfs.Path.t
(** [/yanc/cluster] *)

val cluster_nodes_dir : Vfs.Path.t
(** [/yanc/cluster/nodes] — one entry per member. *)

val cluster_node : string -> Vfs.Path.t

val cluster_lease : string -> Vfs.Path.t
(** [/yanc/cluster/nodes/<node>/lease] — expiry timestamp (sim clock);
    a member is alive while its lease is unexpired. *)

val cluster_shards_dir : Vfs.Path.t
(** [/yanc/cluster/shards] — claim records, one file per dpid. *)

val cluster_shard : int64 -> Vfs.Path.t
(** [/yanc/cluster/shards/<dpid>] — "owner replica,replica" as written
    by the claiming node. *)

val node_proc_root : string -> Vfs.Path.t
(** [/yanc/nodes/<node>/.proc] — where a cluster node mounts its
    per-node procfs. *)

val cluster_proc_root : Vfs.Path.t
(** [/yanc/cluster/.proc] — the fleet-wide rollup (merged [metrics],
    cluster [health]), mounted on every replica so one [cat] on any
    node answers for the whole cluster. *)

val blackbox_dumps_dir : Vfs.Path.t
(** [/yanc/blackbox] — flight-recorder dumps written on takeover or a
    violated invariant; ordinary replicated files, so a node's
    post-mortem survives the node. *)

val blackbox_dump : node:string -> int -> Vfs.Path.t
(** [/yanc/blackbox/<node>-<n>] — the [n]th dump of a node's box. *)

(** {1 /yanc/policy — the policy engine's file interface}

    Network policy is files too: each file under [/yanc/policy/] holds
    one policy program in the concrete syntax; the engine watches the
    directory, composes every readable file in parallel (name order),
    and installs the compiled rules as [pol_*] flows under every
    switch's [flows/]. Compile errors for a file land beside it in
    [.errors/<name>] — never tearing the engine down. *)

val policy_root : Vfs.Path.t
(** [/yanc/policy] *)

val policy_file : string -> Vfs.Path.t

val policy_errors_dir : Vfs.Path.t
(** [/yanc/policy/.errors] — one file per failing policy file (plus
    [_policy] for errors of the composed whole); removed when the
    source recompiles cleanly. *)

val policy_error : string -> Vfs.Path.t

val proc_policy : proc:Vfs.Path.t -> Vfs.Path.t
(** [<proc>/policy] — the engine's status report (files, rules,
    errors, last compile). *)

(** {1 /yanc/.proc — the procfs analog (see {!Procdir})} *)

val default_proc_root : Vfs.Path.t
(** [/yanc/.proc] — deliberately outside the /net tree: it describes
    the controller, not the network, so views never replicate it. *)

val proc_metrics : proc:Vfs.Path.t -> Vfs.Path.t
val proc_trace_pipe : proc:Vfs.Path.t -> Vfs.Path.t

val proc_health : proc:Vfs.Path.t -> Vfs.Path.t
(** [<proc>/health] — the {!Telemetry.Health} probe report, evaluated
    against this proc tree's registry (or the merged rollup under
    {!cluster_proc_root}) at read time. *)

val proc_blackbox : proc:Vfs.Path.t -> Vfs.Path.t
(** [<proc>/blackbox] — the live flight-recorder window; non-consuming
    (unlike [trace_pipe]). *)

val proc_apps_dir : proc:Vfs.Path.t -> Vfs.Path.t
val proc_app : proc:Vfs.Path.t -> string -> Vfs.Path.t
val proc_app_stat : proc:Vfs.Path.t -> string -> Vfs.Path.t
val proc_switches_dir : proc:Vfs.Path.t -> Vfs.Path.t
val proc_switch : proc:Vfs.Path.t -> string -> Vfs.Path.t
val proc_switch_stat : proc:Vfs.Path.t -> string -> Vfs.Path.t

(** {1 Well-known file names} *)

val version_file : string
val priority_file : string
val idle_timeout_file : string
val hard_timeout_file : string
val cookie_file : string
val error_file : string
val config_port_down : string
val state_link_down : string
val peer_link : string
