module Path = Vfs.Path
module Fs = Vfs.Fs

type t = { fs : Fs.t; proc : Path.t; telemetry : Telemetry.t }

let cred = Vfs.Cred.root

let add_file_raw fs path gen =
  (match Fs.create_file fs ~cred path with
  | Ok () | Error Vfs.Errno.EEXIST -> ()
  | Error e ->
    Logs.warn (fun m ->
        m "procdir: create %s: %s" (Path.to_string path) (Vfs.Errno.to_string e)));
  match Fs.set_generator fs path gen with
  | Ok () -> ()
  | Error e ->
    Logs.warn (fun m ->
        m "procdir: generator %s: %s" (Path.to_string path)
          (Vfs.Errno.to_string e))

let add_file t path gen = add_file_raw t.fs path gen

let mount ?(proc = Layout.default_proc_root) ~fs ~telemetry () =
  ignore (Fs.mkdir_p fs ~cred proc);
  ignore (Fs.mkdir_p fs ~cred (Layout.proc_apps_dir ~proc));
  ignore (Fs.mkdir_p fs ~cred (Layout.proc_switches_dir ~proc));
  let t = { fs; proc; telemetry } in
  add_file t (Layout.proc_metrics ~proc) (fun () ->
      Telemetry.Registry.render
        (Telemetry.Registry.snapshot (Telemetry.registry telemetry)));
  add_file t (Layout.proc_trace_pipe ~proc) (fun () ->
      Telemetry.Tracer.render_pipe (Telemetry.tracer telemetry));
  add_file t (Layout.proc_health ~proc) (fun () ->
      Telemetry.Health.render
        (Telemetry.Health.evaluate
           (Telemetry.Registry.snapshot (Telemetry.registry telemetry))));
  add_file t (Layout.proc_blackbox ~proc) (fun () ->
      Telemetry.Blackbox.render (Telemetry.blackbox telemetry));
  t

let root t = t.proc

let telemetry t = t.telemetry

let add_app t ~name ~stat =
  ignore (Fs.mkdir_p t.fs ~cred (Layout.proc_app ~proc:t.proc name));
  add_file t (Layout.proc_app_stat ~proc:t.proc name) stat

let add_switch t ~name ~stat =
  ignore (Fs.mkdir_p t.fs ~cred (Layout.proc_switch ~proc:t.proc name));
  add_file t (Layout.proc_switch_stat ~proc:t.proc name) stat
