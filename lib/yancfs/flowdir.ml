module Path = Vfs.Path
module Fs = Vfs.Fs
module Of_match = Openflow.Of_match
module Action = Openflow.Action

type t = {
  of_match : Of_match.t;
  actions : Action.t list;
  priority : int;
  idle_timeout : int;
  hard_timeout : int;
  cookie : int64;
  version : int;
  buffer_id : int32 option;
}

let default =
  { of_match = Of_match.any; actions = []; priority = 0x8000; idle_timeout = 0;
    hard_timeout = 0; cookie = 0L; version = 0; buffer_id = None }

let ( let* ) = Result.bind

let write ?(bump_version = true) fs ~cred path t =
  let put name value = Fs.write_file fs ~cred (Path.child path name) value in
  (* Remove stale match/action files so a narrower rewrite wins. *)
  let* existing = Fs.readdir fs ~cred path in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let stale =
          (String.length name > 6 && String.sub name 0 6 = "match.")
          || (String.length name > 7 && String.sub name 0 7 = "action.")
        in
        if stale then Fs.unlink fs ~cred (Path.child path name) else Ok ())
      (Ok ()) existing
  in
  let* () =
    List.fold_left
      (fun acc (field, value) ->
        let* () = acc in
        put ("match." ^ field) value)
      (Ok ())
      (Of_match.to_fields t.of_match)
  in
  let* () =
    List.fold_left
      (fun acc (name, value) ->
        let* () = acc in
        put name value)
      (Ok ())
      (Action.to_fields t.actions)
  in
  let* () = put Layout.priority_file (string_of_int t.priority) in
  let* () = put Layout.idle_timeout_file (string_of_int t.idle_timeout) in
  let* () = put Layout.hard_timeout_file (string_of_int t.hard_timeout) in
  let* () = put Layout.cookie_file (Printf.sprintf "0x%Lx" t.cookie) in
  let* () =
    match t.buffer_id with
    | Some id -> put "buffer_id" (Int32.to_string id)
    | None -> Ok ()
  in
  if bump_version then
    put Layout.version_file (string_of_int (t.version + 1))
  else Ok ()

let parse_int_file name content =
  match int_of_string_opt (String.trim content) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: invalid integer %S" name content)

let read fs ~cred path =
  match Fs.readdir fs ~cred path with
  | Error e -> Error (Vfs.Errno.message e)
  | Ok names ->
    let get name =
      match Fs.read_file fs ~cred (Path.child path name) with
      | Ok v -> Ok (String.trim v)
      | Error e -> Error (Printf.sprintf "%s: %s" name (Vfs.Errno.message e))
    in
    let rec go acc = function
      | [] -> Ok acc
      | name :: rest ->
        let continue acc = go acc rest in
        if name = "counters" || name = Layout.error_file then continue acc
        else if String.length name > 6 && String.sub name 0 6 = "match." then
          let field = String.sub name 6 (String.length name - 6) in
          let* value = get name in
          let* m = Of_match.set_field acc.of_match field value in
          continue { acc with of_match = m }
        else if String.length name > 7 && String.sub name 0 7 = "action." then
          continue acc (* parsed together below, to honour sequencing *)
        else if name = Layout.priority_file then
          let* value = get name in
          let* priority = parse_int_file name value in
          continue { acc with priority }
        else if name = Layout.idle_timeout_file then
          let* value = get name in
          let* idle_timeout = parse_int_file name value in
          continue { acc with idle_timeout }
        else if name = Layout.hard_timeout_file then
          let* value = get name in
          let* hard_timeout = parse_int_file name value in
          continue { acc with hard_timeout }
        else if name = Layout.cookie_file then
          let* value = get name in
          (match Int64.of_string_opt value with
          | Some cookie -> continue { acc with cookie }
          | None -> Error (Printf.sprintf "cookie: invalid value %S" value))
        else if name = Layout.version_file then
          let* value = get name in
          let* version = parse_int_file name value in
          continue { acc with version }
        else if name = "buffer_id" then
          let* value = get name in
          (match Int32.of_string_opt value with
          | Some id -> continue { acc with buffer_id = Some id }
          | None -> Error (Printf.sprintf "buffer_id: invalid value %S" value))
        else Error (Printf.sprintf "unknown flow file %S" name)
    in
    (* Action files must be parsed together to get ordering right. *)
    let* flat = go { default with actions = [] } names in
    let action_files =
      List.filter
        (fun n -> String.length n > 7 && String.sub n 0 7 = "action.")
        names
    in
    let* action_fields =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* value = get name in
          Ok ((name, value) :: acc))
        (Ok []) action_files
    in
    let* actions = Action.of_fields (List.rev action_fields) in
    Ok { flat with actions }

let update ?(bump_version = true) fs ~cred path f =
  let* current = read fs ~cred path in
  let next = f current in
  match write ~bump_version fs ~cred path next with
  | Error e -> Error (Vfs.Errno.message e)
  | Ok () ->
    Ok (if bump_version then { next with version = next.version + 1 } else next)

let read_version fs ~cred path =
  match Fs.read_file fs ~cred (Path.child path Layout.version_file) with
  | Ok v -> int_of_string_opt (String.trim v)
  | Error _ -> None

let write_counters fs ~cred path ~packets ~bytes ~duration_s =
  let counters = Path.child path "counters" in
  let* () =
    match Fs.mkdir fs ~cred counters with
    | Ok () | Error Vfs.Errno.EEXIST -> Ok ()
    | Error _ as e -> e
  in
  let* () =
    Fs.write_file fs ~cred (Path.child counters "packets") (Int64.to_string packets)
  in
  let* () =
    Fs.write_file fs ~cred (Path.child counters "bytes") (Int64.to_string bytes)
  in
  Fs.write_file fs ~cred (Path.child counters "duration") (string_of_int duration_s)

let set_error fs ~cred path = function
  | Some msg -> Fs.write_file fs ~cred (Path.child path Layout.error_file) msg
  | None -> (
    match Fs.unlink fs ~cred (Path.child path Layout.error_file) with
    | Ok () | Error Vfs.Errno.ENOENT -> Ok ()
    | Error _ as e -> e)

let equal_config a b =
  Of_match.equal a.of_match b.of_match
  && List.equal Action.equal a.actions b.actions
  && a.priority = b.priority
  && a.idle_timeout = b.idle_timeout
  && a.hard_timeout = b.hard_timeout
  && Int64.equal a.cookie b.cookie

let pp ppf t =
  Format.fprintf ppf "flow[%a pri=%d v%d -> %a]" Of_match.pp t.of_match
    t.priority t.version Action.pp_list t.actions
