module Path = Vfs.Path
module Fs = Vfs.Fs

type event = {
  seq : int;
  in_port : int;
  reason : Openflow.Of_types.packet_in_reason;
  buffer_id : int32 option;
  total_len : int;
  data : string;
}

(* Sequence numbers must be unique per buffer across publishes; a
   per-(fs-independent) global counter is simplest and keeps ordering
   obvious in listings. *)
let next_seq = ref 0

let subscribe fs ~cred ~root ~switch ~app =
  match Fs.mkdir fs ~cred (Layout.event_buffer ~root ~switch app) with
  | Ok () | Error Vfs.Errno.EEXIST -> Ok ()
  | Error _ as e -> e

let subscribers fs ~root ~switch =
  match Fs.readdir fs ~cred:Vfs.Cred.root (Layout.events_dir ~root switch) with
  | Ok names -> names
  | Error _ -> []

let reason_to_string = function
  | Openflow.Of_types.No_match -> "no_match"
  | Openflow.Of_types.Action_explicit -> "action"

let reason_of_string = function
  | "action" -> Openflow.Of_types.Action_explicit
  | _ -> Openflow.Of_types.No_match

let publish ?telemetry fs ~root ~switch ~in_port ~reason ~buffer_id ~total_len
    ~data =
  let cred = Vfs.Cred.root in
  let apps = subscribers fs ~root ~switch in
  incr next_seq;
  let seq = !next_seq in
  (* Consumers resume the publishing driver's trace by sequence number
     (non-consuming: the same event fans out to many buffers). *)
  Option.iter
    (fun tele ->
      Telemetry.Tracer.stamp (Telemetry.tracer tele) (Layout.trace_key_event seq))
    telemetry;
  List.fold_left
    (fun count app ->
      let dir = Layout.event ~root ~switch ~app seq in
      let ok =
        let ( let* ) = Result.bind in
        let* () = Fs.mkdir fs ~cred dir in
        let put name v = Fs.write_file fs ~cred (Path.child dir name) v in
        let* () = put "in_port" (string_of_int in_port) in
        let* () = put "reason" (reason_to_string reason) in
        let* () =
          match buffer_id with
          | Some id -> put "buffer_id" (Int32.to_string id)
          | None -> Ok ()
        in
        let* () = put "total_len" (string_of_int total_len) in
        put "data" data
      in
      match ok with Ok () -> count + 1 | Error _ -> count)
    0 apps

let read_event fs ~cred dir seq =
  let get name =
    Result.map String.trim (Fs.read_file fs ~cred (Path.child dir name))
  in
  match get "in_port", get "reason", get "total_len" with
  | Ok in_port_s, Ok reason_s, Ok total_len_s -> (
    match
      ( int_of_string_opt in_port_s,
        int_of_string_opt total_len_s,
        Fs.read_file fs ~cred (Path.child dir "data") )
    with
    | Some in_port, Some total_len, Ok data ->
      let buffer_id =
        match get "buffer_id" with
        | Ok s -> Int32.of_string_opt s
        | Error _ -> None
      in
      Some
        { seq; in_port; reason = reason_of_string reason_s; buffer_id;
          total_len; data }
    | _ -> None)
  | _ -> None

let poll fs ~cred ~root ~switch ~app =
  let buffer = Layout.event_buffer ~root ~switch app in
  match Fs.readdir fs ~cred buffer with
  | Error _ -> []
  | Ok names ->
    List.filter_map
      (fun name ->
        match int_of_string_opt name with
        | None -> None
        | Some seq -> read_event fs ~cred (Path.child buffer name) seq)
      names
    |> List.sort (fun a b -> compare a.seq b.seq)

let consume fs ~cred ~root ~switch ~app =
  let events = poll fs ~cred ~root ~switch ~app in
  List.iter
    (fun e ->
      ignore
        (Fs.rmdir ~recursive:true fs ~cred (Layout.event ~root ~switch ~app e.seq)))
    events;
  events

let frame_of e = Packet.Eth.of_wire e.data
