type t = {
  topology : string;
  of13 : bool;
  apps : string list;
  duration : float;
  flows : string list;
}

let default =
  { topology = "linear:2"; of13 = false; apps = []; duration = 3.0; flows = [] }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok { acc with apps = List.rev acc.apps; flows = List.rev acc.flows }
    | line :: rest -> (
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else
        let key, value =
          match String.index_opt trimmed ' ' with
          | Some i ->
            ( String.sub trimmed 0 i,
              String.trim (String.sub trimmed i (String.length trimmed - i)) )
          | None -> trimmed, ""
        in
        let fail fmt =
          Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
        in
        match key with
        | "topology" ->
          if value = "" then fail "topology needs a value"
          else go { acc with topology = value } (lineno + 1) rest
        | "protocol" -> (
          match value with
          | "openflow10" | "of10" -> go { acc with of13 = false } (lineno + 1) rest
          | "openflow13" | "of13" -> go { acc with of13 = true } (lineno + 1) rest
          | v -> fail "unknown protocol %S" v)
        | "app" ->
          if value = "" then fail "app needs a name"
          else go { acc with apps = value :: acc.apps } (lineno + 1) rest
        | "duration" -> (
          match float_of_string_opt value with
          | Some d when d >= 0. -> go { acc with duration = d } (lineno + 1) rest
          | _ -> fail "bad duration %S" value)
        | "flow" ->
          if value = "" then fail "flow needs a spec"
          else go { acc with flows = value :: acc.flows } (lineno + 1) rest
        | k -> fail "unknown key %S" k)
  in
  go default 1 lines

let to_string t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "topology %s\n" t.topology);
  Buffer.add_string buf
    (Printf.sprintf "protocol %s\n" (if t.of13 then "openflow13" else "openflow10"));
  List.iter (fun a -> Buffer.add_string buf (Printf.sprintf "app %s\n" a)) t.apps;
  Buffer.add_string buf (Printf.sprintf "duration %g\n" t.duration);
  List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "flow %s\n" f)) t.flows;
  Buffer.contents buf
