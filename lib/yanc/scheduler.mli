(** Runs applications on their schedules (paper §2: daemons, cron jobs,
    on-demand commands — "network application design should not be
    limited by the controller"). *)

type t

val create : unit -> t

val add : t -> Apps.App_intf.t -> unit

val tick : t -> now:float -> int
(** Run everything due at [now]; returns how many app iterations ran.
    Daemons run every tick, cron apps when their period has elapsed,
    oneshots exactly once. *)

val apps : t -> string list
