(** Runs applications on their schedules (paper §2: daemons, cron jobs,
    on-demand commands — "network application design should not be
    limited by the controller"). *)

type t

val create : ?telemetry:Telemetry.t -> unit -> t
(** [telemetry] receives the per-app counters and the [sched.wake]
    spans; omitted, a private quiet instance is used. *)

val telemetry : t -> Telemetry.t

val add : t -> Apps.App_intf.t -> unit
(** O(1); registration order is the tick order. Registers
    [sched.<app>.iterations] and [sched.<app>.runtime_ns] with the
    registry. *)

val tick : t -> now:float -> int
(** Run everything due at [now]; returns how many app iterations ran.
    Daemons run every tick — except event-driven daemons that report no
    pending work (see {!Apps.App_intf.t}), which are skipped — cron apps
    when their period has elapsed, oneshots exactly once. Each run is
    wrapped in a [sched.wake] tracer span and accounted to the app's
    iteration and cumulative-runtime counters (host CPU time — the
    simulated clock does not advance inside a run, and "which app burns
    the controller's cycles" is the question these counters answer). *)

val apps : t -> string list

type app_stats = {
  schedule : string;
  iterations : int;
  runtime_ns : int;  (** cumulative host CPU time across runs *)
  last_run : float;  (** simulated time of the last run, -inf if never *)
}

val stats : t -> (string * app_stats) list
(** One entry per registered app, in registration order — the data
    behind [/yanc/.proc/apps/<name>/stat]. *)
