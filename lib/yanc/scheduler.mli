(** Runs applications on their schedules (paper §2: daemons, cron jobs,
    on-demand commands — "network application design should not be
    limited by the controller"). *)

type t

val create : unit -> t

val add : t -> Apps.App_intf.t -> unit
(** O(1); registration order is the tick order. *)

val tick : t -> now:float -> int
(** Run everything due at [now]; returns how many app iterations ran.
    Daemons run every tick — except event-driven daemons that report no
    pending work (see {!Apps.App_intf.t}), which are skipped — cron apps
    when their period has elapsed, oneshots exactly once. *)

val apps : t -> string list
