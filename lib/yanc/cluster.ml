(* The sharded multi-node controller (paper §6): N single-node
   controllers, each mounted on one replica of a {!Dfs.Cluster}, with
   switch ownership partitioned by the rendezvous shard map and
   recorded in the file system itself.

   Everything coordinating the nodes is a file:

     /yanc/cluster/nodes/<node>/lease   expiry on the shared sim clock
     /yanc/cluster/shards/<dpid>        "owner replica,replica,.."

   Cluster metadata is pinned [Sequential] through the DFS prefix
   override (the small consistent store of an Onix-style design), while
   flow state rides the delayed, coalescing op-log — and rides it only
   to the shard's replica set, so replication work per node stays
   bounded as N grows.

   Each node runs its own {!Controller} (manager, scheduler, apps,
   telemetry, per-node procfs at /yanc/nodes/<name>/.proc) and, on a
   reconcile beat, renews its lease, derives the live membership from
   the lease files on its own replica, and attaches exactly the
   switches the shard map awards it. A node death is a frozen loop: its
   lease stops renewing, survivors observe the expiry, the shard map
   re-awards its switches to their runner-ups (which, being in the
   replica set, already hold the flow state), and the attach-time
   handshake's resync-by-diff reconciles hardware against the new
   owner's replica. *)

module Shard_map = Dfs.Shard_map

type node = {
  index : int;
  name : string;
  ctl : Controller.t;
  mutable alive : bool;
  mutable busy_s : float;           (* wall CPU inside this node's loop *)
  mutable next_renew : float;
  mutable last_members : string list;  (* membership at last full audit *)
  mutable takeovers : int;          (* shards claimed after boot *)
}

type t = {
  dfs : Dfs.Cluster.t;
  net : Netsim.Network.t;
  nodes : node array;
  dpids : int64 list;
  lease_ttl : float;
  renew_every : float;
  reconcile_every : float;
  factor : int;
  version : Controller.version;
  (* dpid -> replica indexes, rebuilt on membership change; consulted by
     the DFS route policy on every op, so it must be a lookup, not a
     hash computation. *)
  shard_routes : (int64, int list) Hashtbl.t;
  (* dpid -> owning member under the bounded-load shard map; rebuilt
     alongside [shard_routes]. Plain rendezvous lands switch counts
     binomially, so one node ends up the fleet's critical path —
     ownership uses the load-capped assignment instead. *)
  shard_owners : (int64, string) Hashtbl.t;
  mutable route_members : string list;
  mutable next_reconcile : float;
  mutable dfs_clock : float;
  mutable booted : bool;
  (* Lease expiry of each member observed dead, keyed by name — the
     honest start of the takeover clock: survivors can only measure
     from when the lease ran out, and the file still says when that
     was. Feeds the [cluster.takeover.latency] histogram per claim. *)
  dead_expiry : (string, float) Hashtbl.t;
}

let cred = Vfs.Cred.root

let node_name i = Printf.sprintf "n%d" i

let node_tracer node = Telemetry.tracer (Controller.telemetry node.ctl)

let node_registry node = Telemetry.registry (Controller.telemetry node.ctl)

(* Correlation key linking a takeover's phases: stamped by the detect
   span, resumed by every claim of the dead member's shards — so
   detect → re-own → resync share one trace id. *)
let takeover_key member = "takeover:" ^ member

let index_of_name name =
  try Some (int_of_string (String.sub name 1 (String.length name - 1)))
  with _ -> None

(* --- file-system records ------------------------------------------------------ *)

let write_file fs path data =
  ignore (Vfs.Fs.mkdir_p fs ~cred (Option.get (Vfs.Path.parent path)));
  ignore (Vfs.Fs.write_file fs ~cred path data)

let renew_lease t node ~now =
  let fs = Controller.fs node.ctl in
  write_file fs
    (Yancfs.Layout.cluster_lease node.name)
    (Printf.sprintf "%.6f\n" (now +. t.lease_ttl));
  node.next_renew <- now +. t.renew_every

(* The membership as node [i] sees it: every member whose lease, read
   from this node's replica, has not expired. *)
let members_view t i ~now =
  let fs = Dfs.Cluster.node t.dfs i in
  match Vfs.Fs.readdir fs ~cred Yancfs.Layout.cluster_nodes_dir with
  | Error _ -> []
  | Ok names ->
    List.filter
      (fun name ->
        match Vfs.Fs.read_file fs ~cred (Yancfs.Layout.cluster_lease name) with
        | Error _ -> false
        | Ok data -> (
          match float_of_string_opt (String.trim data) with
          | Some expiry -> expiry > now
          | None -> false))
      (List.sort compare names)

let shard_record_of t i dpid =
  let fs = Dfs.Cluster.node t.dfs i in
  match Vfs.Fs.read_file fs ~cred (Yancfs.Layout.cluster_shard dpid) with
  | Error _ -> None
  | Ok data -> (
    match String.split_on_char ' ' (String.trim data) with
    | [ owner; reps ] -> Some (owner, String.split_on_char ',' reps)
    | [ owner ] -> Some (owner, [ owner ])
    | _ -> None)

let write_shard_record _t node dpid ~reps =
  write_file (Controller.fs node.ctl)
    (Yancfs.Layout.cluster_shard dpid)
    (Printf.sprintf "%s %s\n" node.name (String.concat "," reps))

(* --- shard-aware op routing --------------------------------------------------- *)

(* An op belongs to a shard iff it lives under
   /net/switches/sw<dpid>/flows — the hot-path volume. Everything else
   (ports, peers, status, hosts, cluster metadata, proc trees)
   replicates everywhere. *)
let dpid_of_op op =
  match Vfs.Path.components (Vfs.Op.path op) with
  | "net" :: "switches" :: sw :: "flows" :: _ ->
    if String.length sw > 2 && String.sub sw 0 2 = "sw" then
      Int64.of_string_opt (String.sub sw 2 (String.length sw - 2))
    else None
  | _ -> None

(* Replica set under balanced ownership: the capped owner first, then
   the highest-weight remaining members — a spilled shard keeps its
   rendezvous favourites as secondaries. *)
let shard_reps t ~members dpid =
  match Hashtbl.find_opt t.shard_owners dpid with
  | None -> Shard_map.replicas ~members ~k:t.factor ~dpid
  | Some owner ->
    let rest =
      List.filter
        (fun m -> m <> owner)
        (Shard_map.replicas ~members ~k:(List.length members) ~dpid)
    in
    owner :: List.filteri (fun i _ -> i < t.factor - 1) rest

(* Notification-batching classes for the DFS drain: every field file of
   one flow directory dirty-marks the same flow in the owning driver's
   commit queue, so a replicated flow-write burst (~20 ops per flow)
   needs one fsnotify event, not one per field. Only content ops inside
   a flow directory are classed — structural ops (a mkdir triggers the
   schema's auto-children hook) and everything outside flows/ (port
   config and the packet-out spool are matched by basename) must keep
   notifying per op. *)
let flow_emit_class op =
  match op with
  | Vfs.Op.Write _ | Vfs.Op.Truncate _ | Vfs.Op.Create _ -> (
    match Vfs.Path.components (Vfs.Op.path op) with
    | "net" :: "switches" :: sw :: "flows" :: flow :: _ :: _ ->
      Some (sw ^ "/" ^ flow)
    | _ -> None)
  | _ -> None

let recompute_routes t members =
  Hashtbl.reset t.shard_routes;
  Hashtbl.reset t.shard_owners;
  List.iter
    (fun (dpid, owner) -> Hashtbl.replace t.shard_owners dpid owner)
    (Shard_map.assign_balanced ~members ~dpids:t.dpids ());
  List.iter
    (fun dpid ->
      let reps = shard_reps t ~members dpid in
      Hashtbl.replace t.shard_routes dpid
        (List.filter_map index_of_name reps))
    t.dpids;
  t.route_members <- members

let route t op ~origin:_ =
  match dpid_of_op op with
  | None -> None
  | Some dpid -> Hashtbl.find_opt t.shard_routes dpid

(* The correlation key a replicated flow op re-stamps on the applying
   node — the same key shape the writing app stamps locally, so the
   owning node's driver resumes the cross-node trace at install time
   without knowing the op ever crossed a machine boundary. *)
let trace_key_of_op op =
  match Vfs.Path.components (Vfs.Op.path op) with
  | "net" :: "switches" :: sw :: "flows" :: flow :: _ ->
    Some (Yancfs.Layout.trace_key_flow ~switch:sw flow)
  | _ -> None

(* --- ownership reconcile ------------------------------------------------------ *)

let attached_set node =
  let h = Hashtbl.create 64 in
  List.iter
    (fun d -> Hashtbl.replace h d ())
    (Driver.Manager.attached (Controller.manager node.ctl));
  h

(* Claim a shard: bring this replica (and any newly promoted
   secondaries) up to date, record the claim, attach the driver. The
   anti-entropy sync is what makes a promotion safe when the claimant
   or a new secondary was outside the previous replica set.

   Post-boot claims are takeover work: the claim runs as a
   [cluster.takeover.reown] span (resuming the trace the detect phase
   stamped for the dead previous owner, so detect → re-own → resync is
   one trace), anti-entropy runs as nested [cluster.takeover.resync]
   spans, and the time from the dead owner's lease expiry to this claim
   feeds the [cluster.takeover.latency] histogram. *)
let claim t node dpid ~members ~now =
  let tracer = node_tracer node in
  let sw_path =
    Yancfs.Layout.switch ~root:(Yancfs.Yanc_fs.root (Controller.yfs node.ctl))
      (Yancfs.Yanc_fs.switch_name_of_dpid dpid)
  in
  let reps = shard_reps t ~members dpid in
  let prev = shard_record_of t node.index dpid in
  let takeover = t.booted in
  let prev_owner = match prev with Some (owner, _) -> Some owner | None -> None in
  let resync f =
    if takeover then
      Telemetry.Tracer.span tracer ~stage:"cluster.takeover.resync" f
    else f ()
  in
  let body () =
    (match prev with
    | Some (_, prev_reps) when not (List.mem node.name prev_reps) ->
      (* I was not carrying this shard's state: pull it from a surviving
         previous replica before trusting my copy. *)
      (match
         List.find_opt
           (fun r -> List.mem r members && r <> node.name)
           prev_reps
       with
      | Some src -> (
        match index_of_name src with
        | Some si ->
          resync (fun () ->
              ignore
                (Dfs.Cluster.sync_subtree t.dfs ~from_:si ~to_:node.index
                   sw_path))
        | None -> ())
      | None -> ())
    | _ -> ());
    (* Push state to secondaries that just joined the replica set. *)
    let prev_reps = match prev with Some (_, r) -> r | None -> [] in
    List.iter
      (fun r ->
        if r <> node.name && not (List.mem r prev_reps) then
          match index_of_name r with
          | Some ri ->
            resync (fun () ->
                ignore
                  (Dfs.Cluster.sync_subtree t.dfs ~from_:node.index ~to_:ri
                     sw_path))
          | None -> ())
      reps;
    write_shard_record t node dpid ~reps;
    if takeover then begin
      node.takeovers <- node.takeovers + 1;
      match prev_owner with
      | Some owner when owner <> node.name -> (
        match Hashtbl.find_opt t.dead_expiry owner with
        | Some expiry ->
          Telemetry.Registry.observe
            (Telemetry.Registry.histogram (node_registry node)
               "cluster.takeover.latency")
            (max 0. (now -. expiry))
        | None -> ())
      | _ -> ()
    end;
    Controller.attach node.ctl ~dpid ~version:t.version
  in
  if takeover then begin
    (match prev_owner with
    | Some owner when owner <> node.name ->
      ignore (Telemetry.Tracer.resume tracer (takeover_key owner))
    | _ -> ());
    Fun.protect
      ~finally:(fun () -> Telemetry.Tracer.clear tracer)
      (fun () ->
        Telemetry.Tracer.span tracer ~stage:"cluster.takeover.reown" body)
  end
  else body ()

(* Write the node's flight recorder to a replicated file — the black
   box pulled out after a takeover or a violated invariant survives its
   node, because it is just another file in the DFS. *)
let dump_blackbox node ~reason ~now =
  let bb = Telemetry.blackbox (Controller.telemetry node.ctl) in
  let data = Telemetry.Blackbox.dump bb ~reason ~now in
  write_file (Controller.fs node.ctl)
    (Yancfs.Layout.blackbox_dump ~node:node.name (Telemetry.Blackbox.dumps bb))
    data

(* The detect phase of a takeover: a member present at the last beat
   has no live lease any more. Mint the trace the re-own/resync claims
   will resume, remember the dead lease's expiry (the honest takeover
   clock start), and dump this survivor's flight recorder — the
   recent past, preserved before recovery overwrites it. *)
let detect_departures t node ~now ~members =
  let vanished =
    List.filter (fun m -> not (List.mem m members)) node.last_members
  in
  let tracer = node_tracer node in
  List.iter
    (fun member ->
      ignore (Telemetry.Tracer.fresh tracer);
      Fun.protect
        ~finally:(fun () -> Telemetry.Tracer.clear tracer)
        (fun () ->
          Telemetry.Tracer.span tracer ~stage:"cluster.takeover.detect"
            (fun () ->
              Telemetry.Tracer.stamp tracer (takeover_key member);
              (match
                 Vfs.Fs.read_file (Controller.fs node.ctl) ~cred
                   (Yancfs.Layout.cluster_lease member)
               with
              | Ok data -> (
                match float_of_string_opt (String.trim data) with
                | Some expiry -> Hashtbl.replace t.dead_expiry member expiry
                | None -> ())
              | Error _ -> ());
              Telemetry.Blackbox.fault
                (Telemetry.blackbox (Controller.telemetry node.ctl))
                ~at:now ~who:node.name
                ~what:(Printf.sprintf "member %s lease expired" member)));
      dump_blackbox node ~reason:(takeover_key member) ~now)
    vanished

let reconcile t node ~now =
  let members = members_view t node.index ~now in
  if members <> t.route_members then recompute_routes t members;
  let full_audit = members <> node.last_members in
  if t.booted then detect_departures t node ~now ~members;
  node.last_members <- members;
  let attached = attached_set node in
  List.iter
    (fun dpid ->
      let mine = Hashtbl.find_opt t.shard_owners dpid = Some node.name in
      let have = Hashtbl.mem attached dpid in
      if mine && not have then claim t node dpid ~members ~now
      else if (not mine) && have then
        Driver.Manager.detach (Controller.manager node.ctl) ~dpid
      else if mine && have && full_audit then
        (* Ownership unchanged but membership moved: the replica set may
           have rotated — refresh the record and sync new secondaries. *)
        let reps = shard_reps t ~members dpid in
        match shard_record_of t node.index dpid with
        | Some (_, prev_reps) when prev_reps = reps -> ()
        | _ -> claim t node dpid ~members ~now)
    t.dpids

(* --- ownership + fleet rollup ------------------------------------------------- *)

let live_indexes t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if n.alive then Some n.index else None)

(* Which live node currently attaches each dpid; None = unowned. *)
let owner_index t dpid =
  let found = ref None in
  Array.iter
    (fun node ->
      if node.alive && !found = None then
        if
          List.exists (Int64.equal dpid)
            (Driver.Manager.attached (Controller.manager node.ctl))
        then found := Some node.index)
    t.nodes;
  !found

let unowned t =
  List.filter (fun dpid -> owner_index t dpid = None) t.dpids

(* The fleet-wide snapshot behind /yanc/cluster/.proc/metrics: every
   live node's registry merged (counters summed, log₂ histograms merged
   bucket-wise — they compose exactly, so the rolled-up p99 is the
   percentile of the union), plus cluster-global facts appended once
   rather than sampled per node. *)
let rollup_snapshot t =
  let merged =
    Telemetry.Registry.merged_snapshot
      (Array.to_list t.nodes
      |> List.filter_map (fun n ->
             if n.alive then Some (node_registry n) else None))
  in
  Telemetry.Registry.of_entries
    (("cluster.live_nodes", float_of_int (List.length (live_indexes t)))
    :: ("cluster.nodes", float_of_int (Array.length t.nodes))
    :: ("cluster.unowned_shards", float_of_int (List.length (unowned t)))
    :: Telemetry.Registry.entries merged)

(* Mounted on every replica, so `cat /yanc/cluster/.proc/metrics` on
   any node answers for the whole fleet. *)
let mount_rollup t =
  let proc = Yancfs.Layout.cluster_proc_root in
  Array.iter
    (fun node ->
      ignore (Vfs.Fs.mkdir_p (Controller.fs node.ctl) ~cred proc);
      Yancfs.Procdir.add_file (Controller.proc node.ctl)
        (Yancfs.Layout.proc_metrics ~proc)
        (fun () -> Telemetry.Registry.render (rollup_snapshot t));
      Yancfs.Procdir.add_file (Controller.proc node.ctl)
        (Yancfs.Layout.proc_health ~proc)
        (fun () ->
          Telemetry.Health.render
            (Telemetry.Health.evaluate (rollup_snapshot t))))
    t.nodes

(* --- construction ------------------------------------------------------------- *)

let create ?(consistency = Dfs.Consistency.Eventual { propagation_s = 0.05 })
    ?(lease_ttl = 1.0) ?(renew_every = 0.25) ?(reconcile_every = 0.1)
    ?(replication_factor = 2) ?(version = Controller.V10) ?tracing ?tuning
    ?(seed = 9) ~n ~net () =
  let n = max 1 n in
  let dfs = Dfs.Cluster.create ~consistency ~n () in
  (* Metadata is the consistent store; checked by prefix so the hot
     path never probes xattrs. *)
  Dfs.Cluster.set_prefix_consistency dfs
    [ ("/yanc", Dfs.Consistency.Sequential) ];
  Dfs.Cluster.set_xattr_probing dfs false;
  let dpids =
    List.map Netsim.Sim_switch.dpid (Netsim.Network.switches net)
  in
  let nodes =
    Array.init n (fun i ->
        let name = node_name i in
        let ctl =
          Controller.create
            ~fs:(Dfs.Cluster.node dfs i)
            ~proc_root:(Yancfs.Layout.node_proc_root name)
            ?tracing ?tuning ~seed:(seed + (i * 7919)) ~net ()
        in
        { index = i; name; ctl; alive = true; busy_s = 0.;
          next_renew = neg_infinity; last_members = []; takeovers = 0 })
  in
  let t =
    { dfs; net; nodes; dpids; lease_ttl; renew_every; reconcile_every;
      factor = min replication_factor n; version;
      shard_routes = Hashtbl.create 256;
      shard_owners = Hashtbl.create 256; route_members = [];
      next_reconcile = neg_infinity; dfs_clock = Netsim.Network.now net;
      booted = false; dead_expiry = Hashtbl.create 8 }
  in
  Dfs.Cluster.set_route dfs (Some (route t));
  Dfs.Cluster.set_emit_class dfs (Some flow_emit_class);
  (* Cross-node tracing: give every node its own trace/span id slice
     (so ids stay cluster-unique when spans cross machines) and teach
     the DFS which tracer serves each replica and which correlation key
     a replicated flow op should re-stamp on arrival. *)
  Array.iter
    (fun node ->
      Telemetry.Tracer.set_id_base (node_tracer node) (node.index lsl 40))
    nodes;
  Dfs.Cluster.set_tracing dfs
    (Some
       ( (fun i ->
           if i >= 0 && i < Array.length nodes && nodes.(i).alive then
             Some (node_tracer nodes.(i))
           else None),
         trace_key_of_op ));
  (* The replication stream's own counters live on node 0's registry
     (one seat, so the rollup never double-counts the shared DFS). *)
  Dfs.Cluster.register dfs (node_registry nodes.(0));
  Array.iter
    (fun node ->
      let reg = node_registry node in
      Telemetry.Registry.gauge reg "cluster.takeovers" (fun () ->
          float_of_int node.takeovers);
      Telemetry.Registry.gauge reg "cluster.members_seen" (fun () ->
          float_of_int (List.length node.last_members)))
    nodes;
  (* Seed every lease before the first reconcile so boot assigns shards
     against the full membership instead of a thundering claim-all. *)
  let now = Netsim.Network.now net in
  Array.iter (fun node -> renew_lease t node ~now) nodes;
  mount_rollup t;
  t

let dfs t = t.dfs

let net t = t.net

let size t = Array.length t.nodes

let controller t i = t.nodes.(i).ctl

let name_of t i = t.nodes.(i).name

let alive t i = t.nodes.(i).alive

let add_app t make =
  Array.iter (fun node -> Controller.add_app node.ctl (make node.ctl)) t.nodes

let busy_s t i = t.nodes.(i).busy_s +. Dfs.Cluster.replay_busy_s t.dfs i

let step_busy_s t i = t.nodes.(i).busy_s

let takeovers t i = t.nodes.(i).takeovers

let counter_value t i name =
  let reg = Telemetry.registry (Controller.telemetry t.nodes.(i).ctl) in
  Telemetry.Registry.value (Telemetry.Registry.counter reg name)

let node_installs t i = counter_value t i "driver.commit.adds"

let installs t =
  Array.fold_left (fun acc n -> acc + node_installs t n.index) 0 t.nodes

(* --- the cluster loop --------------------------------------------------------- *)

let sync_dfs_clock t =
  let now = Netsim.Network.now t.net in
  if now > t.dfs_clock then begin
    Dfs.Cluster.advance t.dfs (now -. t.dfs_clock);
    t.dfs_clock <- now
  end

let step ?(tick = 0.005) t =
  let now = Netsim.Network.now t.net in
  let reconcile_due = now >= t.next_reconcile in
  if reconcile_due then t.next_reconcile <- now +. t.reconcile_every;
  Array.iter
    (fun node ->
      if node.alive then begin
        let t0 = Sys.time () in
        let tracer = node_tracer node in
        if now >= node.next_renew then
          Telemetry.Tracer.span tracer ~stage:"cluster.lease_renew"
            (fun () -> renew_lease t node ~now);
        if reconcile_due then
          Telemetry.Tracer.span tracer ~stage:"cluster.reconcile"
            (fun () -> reconcile t node ~now);
        Controller.step node.ctl;
        node.busy_s <- node.busy_s +. (Sys.time () -. t0)
      end)
    t.nodes;
  Netsim.Network.run t.net;
  sync_dfs_clock t;
  if Netsim.Network.pending_events t.net = 0 then begin
    Netsim.Network.advance_idle t.net tick;
    sync_dfs_clock t
  end

let run_for ?tick t duration =
  let deadline = Netsim.Network.now t.net +. duration in
  while Netsim.Network.now t.net < deadline do
    step ?tick t
  done;
  t.booted <- true

let run_until ?tick ?(timeout = 30.) t pred =
  let deadline = Netsim.Network.now t.net +. timeout in
  let ok = ref (pred ()) in
  while (not !ok) && Netsim.Network.now t.net < deadline do
    step ?tick t;
    ok := pred ()
  done;
  !ok

(* --- failure injection -------------------------------------------------------- *)

let kill t i =
  let node = t.nodes.(i) in
  if node.alive then begin
    node.alive <- false;
    (* The op-log tail that died with the process. *)
    ignore (Dfs.Cluster.drop_origin_pending t.dfs i);
    (* Cut the ghost replica off so nothing keeps feeding it. *)
    Dfs.Cluster.set_partitioned t.dfs i true
  end

(* Preserve every survivor's recent past — called by harnesses when a
   chaos invariant is violated, before recovery (or the next storm)
   overwrites the evidence. *)
let dump_blackboxes t ~reason =
  let now = Netsim.Network.now t.net in
  Array.iter
    (fun node -> if node.alive then dump_blackbox node ~reason ~now)
    t.nodes

(* --- invariants --------------------------------------------------------------- *)

(* Replication quiet modulo permanently dead nodes' stashes. *)
let replication_quiet t =
  let dead_stash =
    Array.fold_left
      (fun acc n ->
        if n.alive then acc else acc + Dfs.Cluster.stashed t.dfs n.index)
      0 t.nodes
  in
  Dfs.Cluster.pending t.dfs - dead_stash = 0

(* Rule SETS, not lists: two flow files with the same (match, priority)
   — e.g. the same host pair routed by two nodes from different
   table-miss points — collapse to one hardware entry, because an
   OpenFlow add with an identical match and priority replaces. *)
let sorted_rules l = List.sort_uniq compare l

let fs_rules t i swname =
  let yfs = Controller.yfs t.nodes.(i).ctl in
  List.filter_map
    (fun fname ->
      match Yancfs.Yanc_fs.read_flow yfs ~cred ~switch:swname fname with
      | Ok (f : Yancfs.Flowdir.t) -> Some (f.of_match, f.priority)
      | Error _ -> None)
    (Yancfs.Yanc_fs.flow_names yfs ~cred swname)

let hw_rules sw ~now =
  List.map
    (fun ((_, e) : int * Netsim.Flow_table.entry) -> (e.of_match, e.priority))
    (Netsim.Sim_switch.flow_stats sw ~now ~of_match:Openflow.Of_match.any ())

(* Switches whose hardware table differs from their owner's replica:
   (dpid, fs rule count, hw rule count). Empty = hardware ≡ filesystem,
   judged per shard against the node that owns it. *)
let divergent t =
  let now = Netsim.Network.now t.net in
  List.filter_map
    (fun dpid ->
      match owner_index t dpid with
      | None -> Some (dpid, -1, -1)
      | Some i -> (
        match Netsim.Network.switch t.net dpid with
        | None -> None
        | Some sw ->
          let swname = Yancfs.Yanc_fs.switch_name_of_dpid dpid in
          let fsr = sorted_rules (fs_rules t i swname) in
          let hwr = sorted_rules (hw_rules sw ~now) in
          if fsr = hwr then None
          else Some (dpid, List.length fsr, List.length hwr)))
    t.dpids

let statuses_connected t =
  Array.for_all
    (fun node ->
      (not node.alive)
      || List.for_all
           (fun (_, s) -> s = Driver.Driver_intf.Connected)
           (Driver.Manager.statuses (Controller.manager node.ctl)))
    t.nodes

let converged t =
  unowned t = [] && replication_quiet t && statuses_connected t
  && divergent t = []
