(** The sharded multi-node controller (paper §6): N {!Controller}s,
    one per {!Dfs.Cluster} replica, with switch ownership partitioned
    by the rendezvous shard map ({!Dfs.Shard_map}) and every piece of
    coordination state — leases, shard records — held in the file
    system itself.

    Ownership: each node, on a reconcile beat, renews
    [/yanc/cluster/nodes/<name>/lease], derives the live membership
    from the lease files on its own replica, and attaches exactly the
    switches the shard map awards it, recording each claim in
    [/yanc/cluster/shards/<dpid>]. Cluster metadata is pinned
    [Sequential] (the consistent store); flow state rides the delayed,
    coalescing op-log, and only to the shard's replica set
    ([replication_factor]), so per-node replication work stays bounded
    as N grows.

    Failure: {!kill} freezes a node's loop, drops its un-flushed op-log
    tail and cuts its replica off. Its lease expires, survivors
    recompute the shard map, the runner-up claims each orphaned switch
    (state already on its replica), and the attach-time handshake's
    resync-by-diff reconciles hardware with the new owner's replica —
    takeover is lease expiry + reconcile beat + resync, all on the sim
    clock. *)

type t

val create :
  ?consistency:Dfs.Consistency.t ->
  ?lease_ttl:float ->
  ?renew_every:float ->
  ?reconcile_every:float ->
  ?replication_factor:int ->
  ?version:Controller.version ->
  ?tracing:bool ->
  ?tuning:Driver.Driver_intf.tuning ->
  ?seed:int ->
  n:int -> net:Netsim.Network.t -> unit -> t
(** Defaults: flow-state consistency [Eventual 0.05 s]; lease TTL 1 s
    renewed every 0.25 s; reconcile every 0.1 s; replication factor 2
    (clamped to [n]); tracing on ([tracing:false] builds every node's
    telemetry with the tracer off — the overhead-bench baseline).
    Every node's lease is seeded before the first beat so boot assigns
    shards against the full membership. Drive it with
    {!run_for}/{!run_until}; ownership (attach/handshake) settles
    within the first reconcile beats.

    Observability wiring done here: each node's tracer gets its own
    trace/span id slice ([index * 2^40], cluster-unique ids); the DFS
    gets the per-replica tracer map and flow correlation key, so a
    write traced on node A replays on node B as a [dfs.apply] span
    under A's trace id and B's driver resumes it at install; lease
    renewal and reconcile run as spans, takeover runs as
    detect → re-own → resync spans sharing one trace per dead member;
    each claim after a death feeds the [cluster.takeover.latency]
    histogram (measured from the dead lease's recorded expiry); and
    every replica mounts the fleet rollup at [/yanc/cluster/.proc]
    (merged [metrics], cluster [health]). *)

val dfs : t -> Dfs.Cluster.t
val net : t -> Netsim.Network.t
val size : t -> int
val controller : t -> int -> Controller.t
val name_of : t -> int -> string
val alive : t -> int -> bool
val live_indexes : t -> int list

val add_app : t -> (Controller.t -> Apps.App_intf.t) -> unit
(** Instantiate an app per node (each over that node's yfs/replica). *)

val step : ?tick:float -> t -> unit
(** One cluster round: every live node renews/reconciles (when due) and
    runs one controller round, then the data plane drains and the DFS
    clock catches up to sim time. [tick] (default 0.005 s) advances
    idle time when the network is quiet. *)

val run_for : ?tick:float -> t -> float -> unit
val run_until : ?tick:float -> ?timeout:float -> t -> (unit -> bool) -> bool

val kill : t -> int -> unit
(** Node death: freeze its loop (never stepped again), drop its queued
    op-log tail, partition its replica. Its switches stay frozen until
    lease expiry hands them to survivors. *)

val dump_blackboxes : t -> reason:string -> unit
(** Dump every live node's flight recorder to
    [/yanc/blackbox/<node>-<n>] — what a harness calls on a violated
    chaos invariant, before recovery overwrites the evidence. (Takeover
    detection dumps automatically.) *)

val rollup_snapshot : t -> Telemetry.Registry.snapshot
(** The fleet-wide merged snapshot served at
    [/yanc/cluster/.proc/metrics]: live nodes' registries merged
    (counters summed, histograms bucket-wise) plus the cluster-global
    series [cluster.live_nodes], [cluster.nodes],
    [cluster.unowned_shards]. *)

(** {1 Accounting} *)

val busy_s : t -> int -> float
(** CPU seconds node [i] has consumed: its own loop ({!step_busy_s})
    plus its replica's replay share ({!Dfs.Cluster.replay_busy_s}).
    Nodes run on separate machines in the deployment this simulates,
    so cluster throughput is judged against [max_i busy_s] — the
    critical path — while the whole simulation shares one process. *)

val step_busy_s : t -> int -> float
val takeovers : t -> int -> int
(** Shards this node claimed after boot (takeover work, not initial
    assignment). *)

val node_installs : t -> int -> int
(** [driver.commit.adds] from node [i]'s registry. *)

val installs : t -> int

(** {1 Invariants} *)

val owner_index : t -> int64 -> int option
(** The live node whose manager attaches this dpid, if any. *)

val unowned : t -> int64 list
(** Switches no live node attaches — empty once ownership has settled. *)

val replication_quiet : t -> bool
(** No replication pending, not counting dead nodes' stashes. *)

val divergent : t -> (int64 * int * int) list
(** Switches whose hardware table differs from their owner's replica
    [(dpid, fs rules, hw rules)], compared as distinct (match,
    priority) sets — duplicate flow files with one (match, priority)
    collapse to one hardware entry, since an OpenFlow add with an
    identical match and priority replaces. Unowned switches report
    [(-1, -1)]. Empty = hardware ≡ filesystem. *)

val converged : t -> bool
(** Every shard owned, every live driver Connected, replication quiet,
    and hardware ≡ filesystem — the takeover gate. *)
