type entry = {
  app : Apps.App_intf.t;
  mutable next_run : float;
  mutable done_ : bool;
  (* Registry handles created at registration, so the per-run path is
     two field bumps. *)
  iterations : Telemetry.Registry.counter;
  runtime_ns : Telemetry.Registry.counter;
  mutable last_run : float;
}

(* A Queue, not a list with [@ [x]] appends: registration order is
   preserved and registering N apps is O(N), not O(N^2). Entries are
   never removed (oneshots just mark themselves done). *)
type t = { entries : entry Queue.t; telemetry : Telemetry.t }

let create ?telemetry () =
  let telemetry =
    match telemetry with
    | Some t -> t
    | None -> Telemetry.create ~tracing:false ()
  in
  { entries = Queue.create (); telemetry }

let telemetry t = t.telemetry

let add t app =
  let reg = Telemetry.registry t.telemetry in
  let name = app.Apps.App_intf.name in
  Queue.push
    { app; next_run = neg_infinity; done_ = false;
      iterations =
        Telemetry.Registry.counter reg
          (Printf.sprintf "sched.%s.iterations" name);
      runtime_ns =
        Telemetry.Registry.counter reg
          (Printf.sprintf "sched.%s.runtime_ns" name);
      last_run = neg_infinity }
    t.entries

(* Runtime is host CPU time: the simulated clock stands still inside an
   app run, but "which app burns the controller's cycles" is exactly
   what the per-app counters exist to answer. *)
let run_entry t e ~now =
  let tracer = Telemetry.tracer t.telemetry in
  let c0 = Sys.time () in
  Telemetry.Tracer.span tracer ~stage:"sched.wake" (fun () ->
      e.app.Apps.App_intf.run ~now);
  (* The wake span adopted whatever trace the app resumed last; drop it
     so the next app starts clean. *)
  Telemetry.Tracer.clear tracer;
  let dt = Sys.time () -. c0 in
  Telemetry.Registry.incr e.iterations;
  Telemetry.Registry.add e.runtime_ns (int_of_float (dt *. 1e9));
  e.last_run <- now

let tick t ~now =
  Queue.fold
    (fun ran e ->
      if e.done_ then ran
      else
        match e.app.Apps.App_intf.schedule with
        | Apps.App_intf.Daemon -> (
          (* Event-driven daemons are skipped while their queues are
             empty — the batch-drain tick runs only when work exists. *)
          match e.app.Apps.App_intf.pending with
          | Some pending when not (pending ()) -> ran
          | _ ->
            run_entry t e ~now;
            ran + 1)
        | Apps.App_intf.Oneshot ->
          e.done_ <- true;
          run_entry t e ~now;
          ran + 1
        | Apps.App_intf.Cron period ->
          if now >= e.next_run then begin
            e.next_run <- now +. period;
            run_entry t e ~now;
            ran + 1
          end
          else ran)
    0 t.entries

let apps t =
  List.rev
    (Queue.fold (fun acc e -> e.app.Apps.App_intf.name :: acc) [] t.entries)

type app_stats = {
  schedule : string;
  iterations : int;
  runtime_ns : int;
  last_run : float;
}

let schedule_to_string = function
  | Apps.App_intf.Daemon -> "daemon"
  | Apps.App_intf.Oneshot -> "oneshot"
  | Apps.App_intf.Cron p -> Printf.sprintf "cron:%g" p

let stats t =
  List.rev
    (Queue.fold
       (fun acc e ->
         ( e.app.Apps.App_intf.name,
           { schedule = schedule_to_string e.app.Apps.App_intf.schedule;
             iterations = Telemetry.Registry.value e.iterations;
             runtime_ns = Telemetry.Registry.value e.runtime_ns;
             last_run = e.last_run } )
         :: acc)
       [] t.entries)
