type entry = {
  app : Apps.App_intf.t;
  mutable next_run : float;
  mutable done_ : bool;
}

(* A Queue, not a list with [@ [x]] appends: registration order is
   preserved and registering N apps is O(N), not O(N^2). Entries are
   never removed (oneshots just mark themselves done). *)
type t = { entries : entry Queue.t }

let create () = { entries = Queue.create () }

let add t app =
  Queue.push { app; next_run = neg_infinity; done_ = false } t.entries

let tick t ~now =
  Queue.fold
    (fun ran e ->
      if e.done_ then ran
      else
        match e.app.Apps.App_intf.schedule with
        | Apps.App_intf.Daemon -> (
          (* Event-driven daemons are skipped while their queues are
             empty — the batch-drain tick runs only when work exists. *)
          match e.app.Apps.App_intf.pending with
          | Some pending when not (pending ()) -> ran
          | _ ->
            e.app.run ~now;
            ran + 1)
        | Apps.App_intf.Oneshot ->
          e.done_ <- true;
          e.app.run ~now;
          ran + 1
        | Apps.App_intf.Cron period ->
          if now >= e.next_run then begin
            e.next_run <- now +. period;
            e.app.run ~now;
            ran + 1
          end
          else ran)
    0 t.entries

let apps t =
  List.rev
    (Queue.fold (fun acc e -> e.app.Apps.App_intf.name :: acc) [] t.entries)
