type entry = {
  app : Apps.App_intf.t;
  mutable next_run : float;
  mutable done_ : bool;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }

let add t app =
  t.entries <- t.entries @ [ { app; next_run = neg_infinity; done_ = false } ]

let tick t ~now =
  List.fold_left
    (fun ran e ->
      if e.done_ then ran
      else
        match e.app.Apps.App_intf.schedule with
        | Apps.App_intf.Daemon ->
          e.app.run ~now;
          ran + 1
        | Apps.App_intf.Oneshot ->
          e.done_ <- true;
          e.app.run ~now;
          ran + 1
        | Apps.App_intf.Cron period ->
          if now >= e.next_run then begin
            e.next_run <- now +. period;
            e.app.run ~now;
            ran + 1
          end
          else ran)
    0 t.entries

let apps t = List.map (fun e -> e.app.Apps.App_intf.name) t.entries
