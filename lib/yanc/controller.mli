(** The assembled yanc controller (Figure 1): one VFS hosting the /net
    tree, protocol drivers attached to every switch in a simulated
    network, and a scheduler of file-system-only applications.

    A {e round} is: sync the FS clock to simulation time, run the
    control plane (drivers ⇄ agents), run due applications, run the
    control plane again (so writes made by apps reach hardware within
    the round), then drain the data plane. [run_for] repeats rounds
    while advancing idle time, which drives cron jobs, LLDP probes and
    flow timeouts. *)

type version = V10 | V13

type t

val create :
  ?root:Vfs.Path.t -> ?proc_root:Vfs.Path.t -> ?fs:Vfs.Fs.t ->
  ?telemetry:Telemetry.t -> ?tracing:bool ->
  ?tuning:Driver.Driver_intf.tuning -> ?seed:int ->
  net:Netsim.Network.t -> unit -> t
(** Builds the telemetry hub (tracing on unless [tracing:false], both
    ignored when a custom [telemetry] is passed), threads it through
    the file system, drivers, agents and scheduler, registers gauges
    sampling every pre-existing counter surface ({!Vfs.Cost}, datapath,
    fsnotify, network) plus driver liveness
    ([driver.attached_switches]/[driver.dead_switches], the health
    probes' inputs), and mounts the [/yanc/.proc] subtree (override
    with [proc_root] — cluster nodes mount theirs at
    [/yanc/nodes/<name>/.proc]) on the controller's VFS. [tuning] and
    [seed] set the drivers' keepalive/backoff policy (see
    {!Driver.Manager.create}). *)

val fs : t -> Vfs.Fs.t

val telemetry : t -> Telemetry.t

val proc : t -> Yancfs.Procdir.t

val scheduler : t -> Scheduler.t

val cost : t -> Vfs.Cost.t
(** The controller file system's cost model — kernel crossings, dcache
    counters and the fsnotify routing counters (events dispatched,
    watches visited, coalesced, overflow-dropped) that [yancctl]
    surfaces. *)

val datapath_cost : t -> Netsim.Flow_table.Cost.t
(** Aggregated switch datapath lookup counters (classifier subtables
    visited, microflow hits/misses, invalidations) — a snapshot, see
    {!Netsim.Network.datapath_cost}. *)

val yfs : t -> Yancfs.Yanc_fs.t
val net : t -> Netsim.Network.t
val manager : t -> Driver.Manager.t

val attach_switches : ?version:version -> t -> unit
(** Attach a driver to every switch currently in the network. *)

val attach : t -> dpid:int64 -> version:version -> unit
(** Also publishes [/yanc/.proc/switches/<dpid>/stat]. *)

val add_app : t -> Apps.App_intf.t -> unit
(** Also publishes [/yanc/.proc/apps/<name>/stat]. *)

val add_policy_engine : ?dir:Vfs.Path.t -> t -> Apps.Policy_engine.t
(** Start the policy engine ({!Apps.Policy_engine}) over this
    controller's tree and publish its [/yanc/.proc/policy] report.
    [dir] defaults to [/yanc/policy]. *)

val now : t -> float

val step : t -> unit
(** One round (no idle-time advance). *)

val run_for : ?tick:float -> t -> float -> unit
(** Simulate for a duration of simulated seconds: rounds interleaved
    with data-plane draining; when the network goes quiet, idle time
    advances by [tick] (default 0.05 s). *)

val run_until :
  ?tick:float -> ?timeout:float -> t -> (unit -> bool) -> bool
(** Like {!run_for} but stops (true) as soon as the predicate holds;
    false on [timeout] (default 30 simulated seconds). *)
