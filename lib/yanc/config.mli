(** Controller configuration files.

    Each system application "likely [comes] with their own
    configuration files" (paper §2); this is the controller's own: a
    line-oriented format declaring the topology (for the simulator), the
    protocol version, the applications to run, and static flows to push
    at startup.

    {v
    # a commented example
    topology fat-tree:4
    protocol openflow13
    app topology
    app router
    app auditor
    duration 5.0
    flow * name=flood priority=1 action.0.out=flood
    v} *)

type t = {
  topology : string;       (** e.g. ["linear:3"] — parsed by the embedder *)
  of13 : bool;
  apps : string list;      (** in declaration order *)
  duration : float;        (** warm-up simulated seconds (default 3.0) *)
  flows : string list;     (** static flow-pusher lines *)
}

val default : t

val parse : string -> (t, string) result
(** Errors name the offending line. Unknown keys are errors. *)

val to_string : t -> string
(** Render back to the file format ([parse (to_string c) = Ok c]). *)
