type version = V10 | V13

type t = {
  fs : Vfs.Fs.t;
  yfs : Yancfs.Yanc_fs.t;
  net : Netsim.Network.t;
  manager : Driver.Manager.t;
  scheduler : Scheduler.t;
}

let create ?root ?fs:fs_opt ~net () =
  let fs = match fs_opt with Some fs -> fs | None -> Vfs.Fs.create () in
  let yfs = Yancfs.Yanc_fs.create ?root fs in
  { fs; yfs; net; manager = Driver.Manager.create ~yfs ~net ();
    scheduler = Scheduler.create () }

let fs t = t.fs

let cost t = Vfs.Fs.cost t.fs

let datapath_cost t = Netsim.Network.datapath_cost t.net

let yfs t = t.yfs

let net t = t.net

let manager t = t.manager

let to_mgr_version = function
  | V10 -> Driver.Manager.V10
  | V13 -> Driver.Manager.V13

let attach t ~dpid ~version =
  Driver.Manager.attach t.manager ~dpid ~version:(to_mgr_version version)

let attach_switches ?(version = V10) t =
  List.iter
    (fun sw -> attach t ~dpid:(Netsim.Sim_switch.dpid sw) ~version)
    (Netsim.Network.switches t.net)

let add_app t app = Scheduler.add t.scheduler app

let now t = Netsim.Network.now t.net

let step t =
  let now = Netsim.Network.now t.net in
  Vfs.Fs.set_time t.fs now;
  Driver.Manager.step t.manager ~now;
  ignore (Scheduler.tick t.scheduler ~now);
  Driver.Manager.step t.manager ~now

let run_for ?(tick = 0.05) t duration =
  let deadline = Netsim.Network.now t.net +. duration in
  while Netsim.Network.now t.net < deadline do
    step t;
    Netsim.Network.run t.net;
    if Netsim.Network.pending_events t.net = 0 then
      Netsim.Network.advance_idle t.net tick
  done

let run_until ?(tick = 0.05) ?(timeout = 30.) t pred =
  let deadline = Netsim.Network.now t.net +. timeout in
  let ok = ref (pred ()) in
  while (not !ok) && Netsim.Network.now t.net < deadline do
    step t;
    Netsim.Network.run t.net;
    if Netsim.Network.pending_events t.net = 0 then
      Netsim.Network.advance_idle t.net tick;
    ok := pred ()
  done;
  !ok
