type version = V10 | V13

type t = {
  fs : Vfs.Fs.t;
  yfs : Yancfs.Yanc_fs.t;
  net : Netsim.Network.t;
  manager : Driver.Manager.t;
  scheduler : Scheduler.t;
  telemetry : Telemetry.t;
  proc : Yancfs.Procdir.t;
}

(* The pre-existing cost structs keep their mutable fields and hot
   paths; the registry samples them as gauges, so /yanc/.proc/metrics
   is one namespace without a second counter surface. *)
let register_probes ~telemetry ~fs ~net =
  let reg = Telemetry.registry telemetry in
  let g name f = Telemetry.Registry.gauge reg name f in
  let gi name f = g name (fun () -> float_of_int (f ())) in
  let cost = Vfs.Fs.cost fs in
  let module C = Vfs.Cost in
  gi "vfs.crossings" (fun () -> C.crossings cost);
  g "vfs.charged_ns" (fun () -> C.charged_ns cost);
  gi "vfs.components" (fun () -> C.components cost);
  gi "vfs.dcache.hits" (fun () -> C.dentry_hits cost);
  gi "vfs.dcache.misses" (fun () -> C.dentry_misses cost);
  gi "vfs.dcache.negative_hits" (fun () -> C.negative_hits cost);
  gi "vfs.dcache.attr_hits" (fun () -> C.attr_hits cost);
  gi "vfs.dcache.attr_misses" (fun () -> C.attr_misses cost);
  gi "vfs.dcache.invalidations" (fun () -> C.invalidations cost);
  gi "fsnotify.events_dispatched" (fun () -> C.events_dispatched cost);
  gi "fsnotify.watches_visited" (fun () -> C.watches_visited cost);
  gi "fsnotify.events_coalesced" (fun () -> C.events_coalesced cost);
  gi "fsnotify.overflows" (fun () -> C.overflows cost);
  gi "fs.objects" (fun () -> fst (Vfs.Fs.size_info fs));
  gi "fs.bytes" (fun () -> snd (Vfs.Fs.size_info fs));
  let module FC = Netsim.Flow_table.Cost in
  let dp f () = f (Netsim.Network.datapath_cost net) in
  gi "datapath.lookups" (dp FC.lookups);
  gi "datapath.entries_examined" (dp FC.entries_examined);
  gi "datapath.subtables_visited" (dp FC.subtables_visited);
  gi "datapath.microflow_hits" (dp FC.micro_hits);
  gi "datapath.microflow_misses" (dp FC.micro_misses);
  gi "datapath.invalidations" (dp FC.invalidations);
  gi "net.frames_delivered" (fun () -> fst (Netsim.Network.stats net));
  gi "net.frames_dropped" (fun () -> snd (Netsim.Network.stats net))

let create ?root ?proc_root ?fs:fs_opt ?telemetry ?tracing ?tuning ?seed ~net
    () =
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.create ?tracing ()
  in
  let fs = match fs_opt with Some fs -> fs | None -> Vfs.Fs.create () in
  let yfs = Yancfs.Yanc_fs.create ?root ~telemetry fs in
  let proc = Yancfs.Procdir.mount ?proc:proc_root ~fs ~telemetry () in
  register_probes ~telemetry ~fs ~net;
  let manager = Driver.Manager.create ?tuning ?seed ~yfs ~net () in
  (* Liveness as registry series, so the health probes can judge the
     fleet from a snapshot alone. *)
  let reg = Telemetry.registry telemetry in
  Telemetry.Registry.gauge reg "driver.attached_switches" (fun () ->
      float_of_int (List.length (Driver.Manager.attached manager)));
  Telemetry.Registry.gauge reg "driver.dead_switches" (fun () ->
      float_of_int
        (List.length
           (List.filter
              (fun (_, s) -> s = Driver.Driver_intf.Dead)
              (Driver.Manager.statuses manager))));
  { fs; yfs; net; manager; scheduler = Scheduler.create ~telemetry ();
    telemetry; proc }

let fs t = t.fs

let cost t = Vfs.Fs.cost t.fs

let datapath_cost t = Netsim.Network.datapath_cost t.net

let yfs t = t.yfs

let net t = t.net

let manager t = t.manager

let telemetry t = t.telemetry

let proc t = t.proc

let scheduler t = t.scheduler

let to_mgr_version = function
  | V10 -> Driver.Manager.V10
  | V13 -> Driver.Manager.V13

let switch_stat t ~dpid () =
  let b = Buffer.create 128 in
  let put name v = Buffer.add_string b (Printf.sprintf "%s %s\n" name v) in
  put "dpid" (Int64.to_string dpid);
  (match Driver.Manager.switch_name t.manager ~dpid with
  | Some name -> put "name" name
  | None -> ());
  (match Driver.Manager.driver_protocol t.manager ~dpid with
  | Some p -> put "protocol" p
  | None -> ());
  (match Driver.Manager.switch_status t.manager ~dpid with
  | Some s -> put "status" (Driver.Driver_intf.status_to_string s)
  | None -> ());
  (match Driver.Manager.link_counters t.manager ~dpid with
  | None -> ()
  | Some (c : Driver.Driver_intf.link_counters) ->
    put "disconnects" (string_of_int c.disconnects);
    put "retries" (string_of_int c.retries);
    put "resyncs" (string_of_int c.resyncs);
    put "resync_installs" (string_of_int c.resync_installs);
    put "resync_deletes" (string_of_int c.resync_deletes);
    put "keepalives_sent" (string_of_int c.keepalives_sent));
  (match Netsim.Network.switch t.net dpid with
  | None -> ()
  | Some sw ->
    let c = Netsim.Sim_switch.datapath_cost sw in
    let module FC = Netsim.Flow_table.Cost in
    put "lookups" (string_of_int (FC.lookups c));
    put "entries_examined" (string_of_int (FC.entries_examined c));
    put "subtables_visited" (string_of_int (FC.subtables_visited c));
    put "microflow_hits" (string_of_int (FC.micro_hits c));
    put "microflow_misses" (string_of_int (FC.micro_misses c));
    put "invalidations" (string_of_int (FC.invalidations c)));
  Buffer.contents b

let attach t ~dpid ~version =
  Driver.Manager.attach t.manager ~dpid ~version:(to_mgr_version version);
  Yancfs.Procdir.add_switch t.proc ~name:(Int64.to_string dpid)
    ~stat:(switch_stat t ~dpid)

let attach_switches ?(version = V10) t =
  List.iter
    (fun sw -> attach t ~dpid:(Netsim.Sim_switch.dpid sw) ~version)
    (Netsim.Network.switches t.net)

let app_stat t name () =
  match List.assoc_opt name (Scheduler.stats t.scheduler) with
  | None -> ""
  | Some (s : Scheduler.app_stats) ->
    Printf.sprintf "schedule %s\niterations %d\nruntime_ns %d\nlast_run %s\n"
      s.schedule s.iterations s.runtime_ns
      (if s.last_run = neg_infinity then "never"
       else Printf.sprintf "%.6f" s.last_run)

let add_app t app =
  Scheduler.add t.scheduler app;
  let name = app.Apps.App_intf.name in
  Yancfs.Procdir.add_app t.proc ~name ~stat:(app_stat t name)

let add_policy_engine ?dir t =
  let engine = Apps.Policy_engine.create ?dir ~cred:Vfs.Cred.root t.yfs in
  add_app t (Apps.Policy_engine.app engine);
  Yancfs.Procdir.add_file t.proc
    (Yancfs.Layout.proc_policy ~proc:(Yancfs.Procdir.root t.proc))
    (fun () -> Apps.Policy_engine.status engine);
  engine

let now t = Netsim.Network.now t.net

let step t =
  let now = Netsim.Network.now t.net in
  Vfs.Fs.set_time t.fs now;
  let tracer = Telemetry.tracer t.telemetry in
  Telemetry.Tracer.set_now tracer now;
  Telemetry.Tracer.bump_round tracer;
  Driver.Manager.step t.manager ~now;
  ignore (Scheduler.tick t.scheduler ~now);
  Driver.Manager.step t.manager ~now

let run_for ?(tick = 0.05) t duration =
  let deadline = Netsim.Network.now t.net +. duration in
  while Netsim.Network.now t.net < deadline do
    step t;
    Netsim.Network.run t.net;
    if Netsim.Network.pending_events t.net = 0 then
      Netsim.Network.advance_idle t.net tick
  done

let run_until ?(tick = 0.05) ?(timeout = 30.) t pred =
  let deadline = Netsim.Network.now t.net +. timeout in
  let ok = ref (pred ()) in
  while (not !ok) && Netsim.Network.now t.net < deadline do
    step t;
    Netsim.Network.run t.net;
    if Netsim.Network.pending_events t.net = 0 then
      Netsim.Network.advance_idle t.net tick;
    ok := pred ()
  done;
  !ok
