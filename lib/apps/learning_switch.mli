(** A per-switch L2 learning switch daemon: learns source MACs from
    packet-ins, installs destination-MAC flows once locations are known,
    floods unknowns — the canonical first SDN application, written here
    against nothing but the file system. *)

type t

val create :
  ?cred:Vfs.Cred.t -> ?idle_timeout:int -> Yancfs.Yanc_fs.t -> t

val run : t -> now:float -> unit

val app : t -> App_intf.t

val macs_learned : t -> int

val app_name : string
