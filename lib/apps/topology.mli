(** The topology discovery daemon (paper §4.3): handles LLDP and keeps
    each port's [peer] symbolic link pointing at the port on the other
    end of the physical link, purely through the file system:

    - per switch, it installs an [lldp-to-controller] flow and creates
      its private packet-in buffer;
    - periodically it spools LLDP probes out of every port
      ([packet_out/]);
    - LLDP packet-ins identify (sender switch, sender port) → it points
      [<rx port>/peer] at the sender's port directory;
    - links that stop being confirmed within the TTL lose their
      symlink.

    Other applications (the router, map builders) consume the symlinks
    and never see LLDP. *)

type t

val create :
  ?probe_interval:float -> ?ttl:float -> ?cred:Vfs.Cred.t ->
  Yancfs.Yanc_fs.t -> t
(** [probe_interval] defaults to 1s, [ttl] to 3 probe intervals. *)

val run : t -> now:float -> unit
(** One daemon iteration. *)

val app : t -> App_intf.t

val links : t -> ((string * int) * (string * int)) list
(** Discovered links, from the symlinks, each direction once
    (canonically smaller endpoint first). *)

val app_name : string
(** The buffer directory name this daemon subscribes under. *)
