(** The auditor (paper §2: "an auditor might run periodically via a cron
    job"): walks the yanc tree, checks invariants, and writes a plain
    text report outside /net (showing that yanc state and ordinary files
    live in one file system).

    Checks: every switch has its typed children; every committed flow
    parses; flows carrying an [error] file; overlapping same-priority
    flows with conflicting actions (behaviour undefined by OpenFlow);
    [peer] symlinks are symmetric; ports that are admin-down. *)

type finding = { severity : [ `Info | `Warning | `Error ]; message : string }

val audit : Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> finding list

val report : finding list -> string

val run_to_file :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> out:Vfs.Path.t ->
  (int, Vfs.Errno.t) result
(** Audit and write the report; returns the number of warnings +
    errors. *)

val app : Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> out:Vfs.Path.t -> period:float -> App_intf.t
(** Unconditional cron: audits every [period]. *)

val watched_app :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> out:Vfs.Path.t -> period:float -> App_intf.t
(** Change-gated cron: one recursive watch on the switches tree; a
    period in which no events arrived skips the audit walk entirely.
    Audits at least once. *)
