(** ECMP routing daemon — the datacenter companion to {!Router}.

    Where [routerd] installs the single BFS shortest path, [ecmpd]
    spreads flows across {e all} equal-cost next hops, the way a Clos
    fabric is meant to be used: at every switch the equal-cost
    candidates toward the destination (one reverse BFS per destination
    edge switch, cached) are indexed by the hash of the packet's packed
    12-tuple ({!Openflow.Of_match.Packed.hash}) mixed with a per-switch
    salt, so flows shuffle across the fabric but every packet of a flow
    takes one stable path, and successive tiers don't polarize. Exact
    per-flow rules are installed along the chosen path last-hop-first
    through the flow directories — the app remains an ordinary file
    system client.

    Host locations bootstrap from [/net/hosts] (written by provisioning
    or the scale bench) and keep learning from packet-in source
    addresses; unknown destinations are dropped and counted
    ([app.ecmpd.unknown_dst]) — a datacenter fabric does not flood.

    Delivery is selectable: [Ring] drains the pooled {!Yancfs.Pktin}
    fast path in bounded batches (the storm configuration, parked via
    its [pending] hook when the ring is empty); [Eventdir] consumes
    per-event file directories like every other app — same routing
    logic, and the baseline the scale bench compares against. *)

type t

type delivery = Ring | Eventdir

val create :
  ?cred:Vfs.Cred.t -> ?delivery:delivery -> ?tag:string ->
  ?idle_timeout:int -> ?priority:int -> ?batch:int ->
  Yancfs.Yanc_fs.t -> t
(** [delivery] defaults to [Ring]; [tag] namespaces installed flow
    names ([ecmp<tag>-<seq>]) so router instances on different cluster
    nodes never collide in a shared path switch's flows directory;
    [batch] (default 512) bounds ring events handled per scheduler
    tick; [idle_timeout] (default 30) and [priority] (default 300)
    shape the installed rules. *)

val app : t -> App_intf.t
(** Daemon named ["ecmpd"]. In [Ring] mode it exposes a [pending] hook
    so the scheduler skips it while the ring is empty. *)

val run : t -> now:float -> unit

val refresh_topology : t -> unit
(** Drop the cached adjacency and next-hop tables (they rebuild lazily;
    a failed route also triggers one rebuild automatically). *)

val paths_installed : t -> int

val hosts_tracked : t -> int
