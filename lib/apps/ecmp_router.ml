module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "ecmpd"

type delivery = Ring | Eventdir

type location = { switch : string; port : int }

(* One next-hop option: out port here, peer switch, peer's in port. *)
type hop = { out_port : int; peer : string; peer_in : int }

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  delivery : delivery;
  tag : string;   (* flow-name namespace: routers on different cluster
                     nodes install into shared path switches, so names
                     must not collide across instances *)
  idle_timeout : int;
  priority : int;
  batch : int;
  hosts : (P.Mac.t, location) Hashtbl.t;
  subscribed : (string, unit) Hashtbl.t;       (* Eventdir mode *)
  mutable ring : Y.Pktin.consumer option;      (* Ring mode, lazy *)
  (* Topology caches, built lazily from the peer symlinks and rebuilt
     once when a route comes up empty (links changed underneath us). *)
  mutable adj : (string, hop) Hashtbl.t option;
  nexthops : (string, (string, hop array) Hashtbl.t) Hashtbl.t;
  salts : (string, int) Hashtbl.t;
  mutable hosts_loaded : bool;
  mutable paths : int;
  mutable flow_seq : int;
  c_events : Telemetry.Registry.counter;
  c_installs : Telemetry.Registry.counter;
  c_unknown : Telemetry.Registry.counter;
  c_no_route : Telemetry.Registry.counter;
  c_transit : Telemetry.Registry.counter;
}

let create ?(cred = Vfs.Cred.root) ?(delivery = Ring) ?(tag = "")
    ?(idle_timeout = 30) ?(priority = 300) ?(batch = 512) yfs =
  let reg = Telemetry.registry (Y.Yanc_fs.telemetry yfs) in
  { yfs; cred; delivery; tag; idle_timeout; priority; batch;
    hosts = Hashtbl.create 256; subscribed = Hashtbl.create 16; ring = None;
    adj = None; nexthops = Hashtbl.create 64; salts = Hashtbl.create 64;
    hosts_loaded = false; paths = 0; flow_seq = 0;
    c_events = Telemetry.Registry.counter reg "app.ecmpd.events";
    c_installs = Telemetry.Registry.counter reg "app.ecmpd.installs";
    c_unknown = Telemetry.Registry.counter reg "app.ecmpd.unknown_dst";
    c_no_route = Telemetry.Registry.counter reg "app.ecmpd.no_route";
    c_transit = Telemetry.Registry.counter reg "app.ecmpd.transit_miss" }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

(* --- topology ---------------------------------------------------------------- *)

let adjacency t =
  match t.adj with
  | Some adj -> adj
  | None ->
    let adj = Hashtbl.create 64 in
    List.iter
      (fun switch ->
        List.iter
          (fun port ->
            match Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port with
            | Some (peer, peer_in) ->
              Hashtbl.add adj switch { out_port = port; peer; peer_in }
            | None -> ())
          (Y.Yanc_fs.port_numbers t.yfs ~cred:t.cred switch))
      (Y.Yanc_fs.switch_names t.yfs);
    t.adj <- Some adj;
    adj

let refresh_topology t =
  t.adj <- None;
  Hashtbl.reset t.nexthops

(* All equal-cost next hops toward [dst_sw], for every switch: one
   reverse BFS from the destination, then each switch keeps the ports
   whose peer is strictly one step closer. Cached per destination
   switch — a fat-tree storm reuses it for every flow to that edge. *)
let nexthop_table t ~dst_sw =
  match Hashtbl.find_opt t.nexthops dst_sw with
  | Some table -> table
  | None ->
    let adj = adjacency t in
    let dist = Hashtbl.create 64 in
    Hashtbl.replace dist dst_sw 0;
    let q = Queue.create () in
    Queue.push dst_sw q;
    while not (Queue.is_empty q) do
      let sw = Queue.pop q in
      let d = Hashtbl.find dist sw in
      List.iter
        (fun h ->
          if not (Hashtbl.mem dist h.peer) then begin
            Hashtbl.replace dist h.peer (d + 1);
            Queue.push h.peer q
          end)
        (Hashtbl.find_all adj sw)
    done;
    let table = Hashtbl.create 64 in
    Hashtbl.iter
      (fun sw d ->
        if d > 0 then begin
          let hops =
            List.filter
              (fun h ->
                match Hashtbl.find_opt dist h.peer with
                | Some pd -> pd = d - 1
                | None -> false)
              (Hashtbl.find_all adj sw)
            (* [find_all] order is insertion-dependent; sort so the hash
               always indexes the same candidate list. *)
            |> List.sort (fun a b -> compare a.out_port b.out_port)
            |> Array.of_list
          in
          Hashtbl.replace table sw hops
        end)
      dist;
    Hashtbl.replace t.nexthops dst_sw table;
    table

let salt t sw =
  match Hashtbl.find_opt t.salts sw with
  | Some s -> s
  | None ->
    let s = Hashtbl.hash sw in
    Hashtbl.replace t.salts sw s;
    s

(* Packed.hash is a plain polynomial fold, so fields packed at high bit
   offsets (the transport ports sit at bit 32 of their words) only move
   the hash by multiples of 2^32 — invisible mod a small power-of-two
   hop count. Avalanche the bits before taking the modulus so every
   tuple field influences the low bits. *)
let avalanche h =
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int

(* The ECMP walk: at each switch, index the equal-cost candidates by the
   packed 12-tuple hash mixed with a per-switch salt (without the salt
   every stage of a multi-tier Clos would make the same choice and the
   fabric polarizes onto one path). The hash covers the full tuple, so
   the two directions of a TCP flow may take different paths, but each
   direction is stable. Distance to the destination strictly decreases,
   so the walk terminates. *)
let route t ~hash ~from_sw ~dst_sw =
  let table = nexthop_table t ~dst_sw in
  let rec walk sw acc =
    if sw = dst_sw then Some (List.rev acc)
    else
      match Hashtbl.find_opt table sw with
      | None | Some [||] -> None
      | Some hops ->
        let i = avalanche (hash lxor salt t sw) mod Array.length hops in
        let h = hops.(i) in
        walk h.peer (h :: acc)
  in
  walk from_sw []

(* --- hosts ------------------------------------------------------------------- *)

(* Bootstrap from /net/hosts — the inventory a provisioning system (or
   the scale bench) has already written — then keep learning from
   traffic like any L2 daemon. *)
let load_hosts t =
  t.hosts_loaded <- true;
  List.iter
    (fun name ->
      match Y.Yanc_fs.read_host t.yfs ~cred:t.cred name with
      | Ok (mac, _ip, Some (switch, port)) ->
        Hashtbl.replace t.hosts mac { switch; port }
      | Ok _ | Error _ -> ())
    (Y.Yanc_fs.host_names t.yfs ~cred:t.cred)

let learn t ~switch ~in_port frame =
  let mac = frame.P.Eth.src in
  if (not (P.Mac.is_multicast mac)) && not (Hashtbl.mem t.hosts mac) then
    (* Only edge ports host endpoints. *)
    if Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port:in_port = None then begin
      Hashtbl.replace t.hosts mac { switch; port = in_port };
      let name = Printf.sprintf "host-%012x" (P.Mac.to_int mac) in
      ignore
        (Y.Yanc_fs.upsert_host t.yfs ~cred:t.cred ~name ~mac ~ip:None
           ~attached_to:(switch, in_port) ())
    end

let lookup_host t mac =
  match Hashtbl.find_opt t.hosts mac with
  | Some loc -> Some loc
  | None ->
    if t.hosts_loaded then None
    else begin
      load_hosts t;
      Hashtbl.find_opt t.hosts mac
    end

(* --- installation ------------------------------------------------------------ *)

let install t ~headers ~ingress ~dst_loc ~buffer_id ~data ~hops =
  t.paths <- t.paths + 1;
  Telemetry.Registry.incr t.c_installs;
  let exact = OF.Of_match.exact_of_headers headers in
  (* (switch, in_port, out_port) per hop, final delivery last. *)
  let flows =
    let rec build sw in_port = function
      | [] -> [ sw, in_port, dst_loc.port ]
      | h :: rest -> (sw, in_port, h.out_port) :: build h.peer h.peer_in rest
    in
    build ingress.switch ingress.port hops
  in
  (* Last hop first, ingress last, so no packet races an absent rule. *)
  List.iter
    (fun (sw, in_port, out_port) ->
      t.flow_seq <- t.flow_seq + 1;
      let is_ingress_hop = sw = ingress.switch && in_port = ingress.port in
      let flow =
        { Y.Flowdir.default with
          Y.Flowdir.of_match = { exact with OF.Of_match.in_port = Some in_port };
          actions = [ OF.Action.Output (OF.Action.Physical out_port) ];
          priority = t.priority;
          idle_timeout = t.idle_timeout;
          buffer_id = (if is_ingress_hop then buffer_id else None) }
      in
      let name = Printf.sprintf "ecmp%s-%d" t.tag t.flow_seq in
      ignore (Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch:sw ~name flow);
      (* Unbuffered ingress: push the original packet along too. *)
      if is_ingress_hop && buffer_id = None then
        ignore
          (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch:sw
             ~in_port
             ~actions:[ OF.Action.Output (OF.Action.Physical out_port) ]
             ~data ()))
    (List.rev flows)

let process t ~switch ~in_port ~buffer_id ~data frame =
  match frame.P.Eth.payload with
  | P.Eth.Lldp _ -> ()
  | _ when List.exists
             (fun (h : hop) -> h.out_port = in_port)
             (Hashtbl.find_all (adjacency t) switch) ->
    (* A miss on an inter-switch port is a transit packet racing its
       own path: the ingress switch's owner already routed this flow,
       and the rule for this hop is in the commit (or, across cluster
       nodes, the replication) pipeline. Re-routing here would install
       the whole path a second time from mid-fabric — on a sharded
       cluster, once per node the path crosses. Drop it like any
       convergence-window loss and let the rule land. *)
    Telemetry.Registry.incr t.c_events;
    Telemetry.Registry.incr t.c_transit
  | _ -> (
    Telemetry.Registry.incr t.c_events;
    learn t ~switch ~in_port frame;
    let dst = frame.P.Eth.dst in
    match lookup_host t dst with
    | None ->
      (* A routing fabric drops what it has no location for — flooding
         a datacenter-scale storm would melt the control plane. *)
      Telemetry.Registry.incr t.c_unknown
    | Some dst_loc ->
      let headers = P.Headers.of_eth ~in_port frame in
      let ingress = { switch; port = in_port } in
      if dst_loc.switch = switch then
        install t ~headers ~ingress ~dst_loc ~buffer_id ~data ~hops:[]
      else begin
        let hash = OF.Of_match.Packed.(hash (of_headers headers)) in
        let attempt () = route t ~hash ~from_sw:switch ~dst_sw:dst_loc.switch in
        let hops =
          match attempt () with
          | Some hops -> Some hops
          | None ->
            (* Stale adjacency (links changed): rebuild once, retry. *)
            refresh_topology t;
            attempt ()
        in
        match hops with
        | Some hops -> install t ~headers ~ingress ~dst_loc ~buffer_id ~data ~hops
        | None -> Telemetry.Registry.incr t.c_no_route
      end)

(* --- delivery ---------------------------------------------------------------- *)

let ring_consumer t =
  match t.ring with
  | Some c -> c
  | None ->
    let c = Y.Pktin.subscribe (Y.Yanc_fs.pktin t.yfs) ~name:app_name in
    t.ring <- Some c;
    c

let run_ring t =
  let pk = Y.Yanc_fs.pktin t.yfs in
  let c = ring_consumer t in
  let tracer = Telemetry.tracer (Y.Yanc_fs.telemetry t.yfs) in
  ignore
    (Y.Pktin.drain pk c ~max:t.batch (fun r ->
         ignore (Telemetry.Tracer.resume tracer (Y.Pktin.trace_key r.Y.Pktin.seq));
         Telemetry.Tracer.span tracer ~stage:"app.ecmpd" (fun () ->
             match P.Eth.of_wire r.Y.Pktin.data with
             | None -> ()
             | Some frame ->
               process t ~switch:r.Y.Pktin.switch ~in_port:r.Y.Pktin.in_port
                 ~buffer_id:r.Y.Pktin.buffer_id ~data:r.Y.Pktin.data frame)))

let handle_eventdir t ~switch (ev : Y.Eventdir.event) =
  let tracer = Telemetry.tracer (Y.Yanc_fs.telemetry t.yfs) in
  ignore (Telemetry.Tracer.resume tracer (Y.Layout.trace_key_event ev.seq));
  Telemetry.Tracer.span tracer ~stage:"app.ecmpd" (fun () ->
      match Y.Eventdir.frame_of ev with
      | None -> ()
      | Some frame ->
        process t ~switch ~in_port:ev.in_port ~buffer_id:ev.buffer_id
          ~data:ev.data frame)

let run_eventdir t =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
            ~app:app_name
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter (handle_eventdir t ~switch)
        (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~app:app_name))
    (Y.Yanc_fs.switch_names t.yfs)

let run t ~now:_ =
  match t.delivery with Ring -> run_ring t | Eventdir -> run_eventdir t

let app t =
  match t.delivery with
  | Ring ->
    (* Parked until the ring holds events — except before the first run,
       which must subscribe. *)
    let pending () =
      match t.ring with
      | None -> true
      | Some c -> Y.Pktin.pending (Y.Yanc_fs.pktin t.yfs) c > 0
    in
    App_intf.daemon ~pending ~name:app_name (fun ~now -> run t ~now)
  | Eventdir -> App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let paths_installed t = t.paths

let hosts_tracked t = Hashtbl.length t.hosts
