module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "l2-learnd"

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  idle_timeout : int;
  tables : (string, (P.Mac.t, int) Hashtbl.t) Hashtbl.t;
  subscribed : (string, unit) Hashtbl.t;
  mutable flow_seq : int;
}

let create ?(cred = Vfs.Cred.root) ?(idle_timeout = 60) yfs =
  { yfs; cred; idle_timeout; tables = Hashtbl.create 16;
    subscribed = Hashtbl.create 16; flow_seq = 0 }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

let table_for t switch =
  match Hashtbl.find_opt t.tables switch with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 32 in
    Hashtbl.replace t.tables switch tbl;
    tbl

let install_flow t ~switch ~dst ~out_port ~buffer_id =
  t.flow_seq <- t.flow_seq + 1;
  let name = Printf.sprintf "learned-%d" t.flow_seq in
  let flow =
    { Y.Flowdir.default with
      Y.Flowdir.of_match = { OF.Of_match.any with OF.Of_match.dl_dst = Some dst };
      actions = [ OF.Action.Output (OF.Action.Physical out_port) ];
      priority = 100;
      idle_timeout = t.idle_timeout;
      buffer_id }
  in
  ignore (Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch ~name flow)

let handle_frame t ~switch (ev : Y.Eventdir.event) =
  match Y.Eventdir.frame_of ev with
  | None -> ()
  | Some frame ->
    (* LLDP belongs to the topology daemon. *)
    if frame.P.Eth.payload = P.Eth.Raw (0, "") then ()
    else begin
      match frame.P.Eth.payload with
      | P.Eth.Lldp _ -> ()
      | _ ->
        let tbl = table_for t switch in
        if not (P.Mac.is_multicast frame.P.Eth.src) then
          Hashtbl.replace tbl frame.P.Eth.src ev.in_port;
        let dst = frame.P.Eth.dst in
        (match Hashtbl.find_opt tbl dst with
        | Some out_port when not (P.Mac.is_multicast dst) ->
          install_flow t ~switch ~dst ~out_port ~buffer_id:ev.buffer_id;
          (* An unbuffered capture still needs the packet delivered. *)
          if ev.buffer_id = None then
            ignore
              (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
                 ~in_port:ev.in_port
                 ~actions:[ OF.Action.Output (OF.Action.Physical out_port) ]
                 ~data:ev.data ())
        | Some _ | None ->
          ignore
            (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
               ?buffer_id:ev.buffer_id ~in_port:ev.in_port
               ~actions:[ OF.Action.Output OF.Action.Flood ]
               ~data:(if ev.buffer_id = None then ev.data else "")
               ()))
    end

let handle_packet_in t ~switch (ev : Y.Eventdir.event) =
  let tracer = Telemetry.tracer (Y.Yanc_fs.telemetry t.yfs) in
  ignore (Telemetry.Tracer.resume tracer (Y.Layout.trace_key_event ev.seq));
  Telemetry.Tracer.span tracer ~stage:"app.l2-learnd" (fun () ->
      handle_frame t ~switch ev)

let run t ~now:_ =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
            ~app:app_name
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter
        (handle_packet_in t ~switch)
        (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~app:app_name))
    (Y.Yanc_fs.switch_names t.yfs)

let app t = App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let macs_learned t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.tables 0
