module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "topologyd"

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  probe_interval : float;
  ttl : float;
  mutable last_probe : float;
  prepared : (string, unit) Hashtbl.t; (* switches with flow+buffer set up *)
  last_seen : (string * int, float * (string * int)) Hashtbl.t;
      (* (rx switch, rx port) -> (time, (tx switch, tx port)) *)
}

let create ?(probe_interval = 1.0) ?ttl ?(cred = Vfs.Cred.root) yfs =
  let ttl = Option.value ttl ~default:(3. *. probe_interval) in
  { yfs; cred; probe_interval; ttl; last_probe = neg_infinity;
    prepared = Hashtbl.create 16; last_seen = Hashtbl.create 64 }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

let lldp_flow =
  { Y.Flowdir.default with
    Y.Flowdir.of_match =
      { OF.Of_match.any with OF.Of_match.dl_type = Some P.Lldp.ethertype };
    actions = [ OF.Action.Output (OF.Action.Controller 0) ];
    priority = 0xffff }

let prepare_switch t switch =
  if not (Hashtbl.mem t.prepared switch) then begin
    let ok_flow =
      match
        Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch ~name:"lldp" lldp_flow
      with
      | Ok () | Error Vfs.Errno.EEXIST -> true
      | Error _ -> false
    in
    let ok_buf =
      match
        Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
          ~app:app_name
      with
      | Ok () -> true
      | Error _ -> false
    in
    if ok_flow && ok_buf then Hashtbl.replace t.prepared switch ()
  end

let probe t switch =
  match Y.Yanc_fs.switch_dpid t.yfs switch with
  | None -> ()
  | Some dpid ->
    List.iter
      (fun port_no ->
        match Y.Yanc_fs.read_port t.yfs ~cred:t.cred ~switch port_no with
        | Error _ -> ()
        | Ok info ->
          if not (info.admin_down || info.link_down) then begin
            let frame =
              P.Builder.lldp ~src_mac:info.hw_addr ~dpid ~port:port_no
            in
            ignore
              (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
                 ~actions:[ OF.Action.Output (OF.Action.Physical port_no) ]
                 ~data:(P.Eth.to_wire frame) ())
          end)
      (Y.Yanc_fs.port_numbers t.yfs ~cred:t.cred switch)

let handle_events t ~now switch =
  List.iter
    (fun (ev : Y.Eventdir.event) ->
      match Y.Eventdir.frame_of ev with
      | Some { P.Eth.payload = P.Eth.Lldp lldp; _ } ->
        let tx_switch = Y.Yanc_fs.switch_name_of_dpid lldp.chassis_id in
        let key = switch, ev.in_port in
        let fresh = tx_switch, lldp.port_id in
        let previous = Hashtbl.find_opt t.last_seen key in
        Hashtbl.replace t.last_seen key (now, fresh);
        (match previous with
        | Some (_, old) when old = fresh -> () (* unchanged: refresh only *)
        | Some _ | None ->
          ignore
            (Y.Yanc_fs.set_peer t.yfs ~cred:t.cred ~switch ~port:ev.in_port
               ~peer:(Some fresh)))
      | Some _ | None -> ())
    (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch ~app:app_name)

let expire t ~now =
  let dead =
    Hashtbl.fold
      (fun key (seen, _) acc -> if now -. seen > t.ttl then key :: acc else acc)
      t.last_seen []
  in
  List.iter
    (fun ((switch, port) as key) ->
      Hashtbl.remove t.last_seen key;
      ignore (Y.Yanc_fs.set_peer t.yfs ~cred:t.cred ~switch ~port ~peer:None))
    dead

let run t ~now =
  let switches = Y.Yanc_fs.switch_names t.yfs in
  List.iter (prepare_switch t) switches;
  List.iter (handle_events t ~now) switches;
  if now -. t.last_probe >= t.probe_interval then begin
    t.last_probe <- now;
    List.iter (probe t) switches;
    expire t ~now
  end

let app t = App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let links t =
  let all =
    Y.Yanc_fs.switch_names t.yfs
    |> List.concat_map (fun switch ->
           Y.Yanc_fs.port_numbers t.yfs ~cred:t.cred switch
           |> List.filter_map (fun port ->
                  Option.map
                    (fun peer -> (switch, port), peer)
                    (Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port)))
  in
  List.filter (fun (a, b) -> a <= b) all
