module Y = Yancfs
module Fs = Vfs.Fs
module Path = Vfs.Path
module Reg = Telemetry.Registry

let flow_prefix = "pol_"

let is_pol name =
  String.length name > 4 && String.sub name 0 4 = flow_prefix

module SS = Set.Make (String)

type t = {
  yfs : Y.Yanc_fs.t;
  fs : Fs.t;
  cred : Vfs.Cred.t;
  dir : Path.t;
  errors_dir : Path.t;
  notifier : Fsnotify.Notifier.t;
  wd_dir : int;
  wd_switches : int;
  tracer : Telemetry.Tracer.t;
  (* per-file parse results; absent = file gone *)
  parsed : (string, (Policy.Ir.t, string) result) Hashtbl.t;
  (* per-switch installed pol_* flows: name -> priority *)
  sw_state : (string, (string, int) Hashtbl.t) Hashtbl.t;
  mutable dirty_all : bool;
  mutable fresh_switches : SS.t;
  mutable desired : Policy.Compile.flow_rule list;
  mutable desired_render : string;
  mutable last_error : string option;
  m_recompiles : Reg.counter;
  m_compile_errors : Reg.counter;
  m_written : Reg.counter;
  m_deleted : Reg.counter;
  m_latency : Reg.histogram;
}

let composed_error_name = "_policy"

(* --- error files ---------------------------------------------------------- *)

let set_error t name msg =
  let path = Path.child t.errors_dir name in
  match msg with
  | Some e -> ignore (Fs.write_file t.fs ~cred:t.cred path e)
  | None -> (
      match Fs.unlink t.fs ~cred:t.cred path with
      | Ok () | Error _ -> ())

(* --- switch adoption ------------------------------------------------------ *)

let adopt_switch t switch =
  match Hashtbl.find_opt t.sw_state switch with
  | Some state -> state
  | None ->
      let state = Hashtbl.create 16 in
      Y.Yanc_fs.Name_set.iter
        (fun name ->
          if is_pol name then
            match Y.Yanc_fs.read_flow t.yfs ~cred:t.cred ~switch name with
            | Ok f -> Hashtbl.replace state name f.Y.Flowdir.priority
            | Error _ -> ())
        (Y.Yanc_fs.flow_name_set t.yfs ~cred:t.cred switch);
      Hashtbl.replace t.sw_state switch state;
      state

let create ?(dir = Y.Layout.policy_root) ~cred yfs =
  let fs = Y.Yanc_fs.fs yfs in
  let errors_dir = Path.child dir ".errors" in
  ignore (Fs.mkdir_p fs ~cred dir);
  ignore (Fs.mkdir_p fs ~cred errors_dir);
  let notifier = Fsnotify.Notifier.create fs in
  let wd_dir =
    Fsnotify.Notifier.add_watch notifier dir
      (Fsnotify.Notifier.mask
         Fsnotify.Event.
           [ Created; Modified; Moved_to; Deleted; Moved_from; Overflow ])
  in
  let wd_switches =
    Fsnotify.Notifier.add_watch notifier
      (Y.Layout.switches_dir ~root:(Y.Yanc_fs.root yfs))
      (Fsnotify.Notifier.mask Fsnotify.Event.[ Created; Deleted ])
  in
  let telemetry = Y.Yanc_fs.telemetry yfs in
  let reg = Telemetry.registry telemetry in
  let t =
    {
      yfs;
      fs;
      cred;
      dir;
      errors_dir;
      notifier;
      wd_dir;
      wd_switches;
      tracer = Telemetry.tracer telemetry;
      parsed = Hashtbl.create 8;
      sw_state = Hashtbl.create 8;
      dirty_all = true;
      fresh_switches = SS.empty;
      desired = [];
      desired_render = "";
      last_error = None;
      m_recompiles = Reg.counter reg "policy.recompiles";
      m_compile_errors = Reg.counter reg "policy.compile_errors";
      m_written = Reg.counter reg "policy.flows_written";
      m_deleted = Reg.counter reg "policy.flows_deleted";
      m_latency = Reg.histogram reg "policy.compile.latency";
    }
  in
  Reg.gauge reg "policy.files" (fun () ->
      float_of_int (Hashtbl.length t.parsed));
  Reg.gauge reg "policy.rules" (fun () -> float_of_int (List.length t.desired));
  List.iter (fun sw -> ignore (adopt_switch t sw)) (Y.Yanc_fs.switch_names yfs);
  t

(* --- parsing -------------------------------------------------------------- *)

let policy_file_names t =
  match Fs.readdir t.fs ~cred:t.cred t.dir with
  | Error _ -> []
  | Ok names ->
      List.filter (fun n -> String.length n > 0 && n.[0] <> '.') names

let reparse_one t name =
  let result =
    Telemetry.Tracer.span t.tracer ~stage:"policy.parse" (fun () ->
        match Fs.read_file t.fs ~cred:t.cred (Path.child t.dir name) with
        | Error _ -> None (* deleted (or a directory): forget it *)
        | Ok text -> Some (Policy.Syntax.parse text))
  in
  match result with
  | None ->
      Hashtbl.remove t.parsed name;
      set_error t name None
  | Some (Ok _ as ok) ->
      Hashtbl.replace t.parsed name ok;
      set_error t name None
  | Some (Error e as err) ->
      Hashtbl.replace t.parsed name err;
      Reg.incr t.m_compile_errors;
      set_error t name (Some e);
      Logs.warn (fun m -> m "policyd: %s: %s" name e)

let compose t =
  let irs =
    Hashtbl.fold
      (fun name result acc ->
        match result with Ok ir -> (name, ir) :: acc | Error _ -> acc)
      t.parsed []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map snd
  in
  match irs with
  | [] -> None
  | p :: rest -> Some (List.fold_left (fun acc q -> Policy.Ir.Par (acc, q)) p rest)

let recompile t =
  let t0 = Unix.gettimeofday () in
  let result =
    Telemetry.Tracer.span t.tracer ~stage:"policy.compile" (fun () ->
        match compose t with
        | None -> Ok []
        | Some p -> Policy.Compile.to_flows p)
  in
  Reg.observe t.m_latency (Unix.gettimeofday () -. t0);
  Reg.incr t.m_recompiles;
  match result with
  | Ok rules ->
      t.desired <- rules;
      t.desired_render <- Policy.Compile.render rules;
      t.last_error <- None;
      set_error t composed_error_name None;
      true
  | Error e ->
      (* the composed policy is bad: keep the last good rule set *)
      Reg.incr t.m_compile_errors;
      t.last_error <- Some e;
      set_error t composed_error_name (Some e);
      Logs.warn (fun m -> m "policyd: compile failed: %s" e);
      false

(* --- incremental install -------------------------------------------------- *)

(* Longest common subsequence of two name arrays — the anchors of the
   stable diff. Classic O(n·m) DP; callers guard the product. *)
let lcs (a : string array) (b : string array) : SS.t =
  let n = Array.length a and m = Array.length b in
  let tbl = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      tbl.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + tbl.(i + 1).(j + 1)
         else max tbl.(i + 1).(j) tbl.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then acc
    else if String.equal a.(i) b.(j) then walk (i + 1) (j + 1) (SS.add a.(i) acc)
    else if tbl.(i + 1).(j) >= tbl.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 SS.empty

let write_rule t ~switch ~state (r : Policy.Compile.flow_rule) ~priority =
  let flow =
    {
      Y.Flowdir.default with
      of_match = r.of_match;
      actions = r.actions;
      priority;
    }
  in
  let result =
    match
      Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch ~name:r.name flow
    with
    | Ok () -> Ok ()
    | Error Vfs.Errno.EEXIST ->
        let dir =
          Y.Layout.flow ~root:(Y.Yanc_fs.root t.yfs) ~switch r.name
        in
        Result.map ignore
          (Y.Flowdir.update t.fs ~cred:t.cred dir (fun old ->
               { flow with Y.Flowdir.version = old.Y.Flowdir.version }))
    | Error e -> Error (Vfs.Errno.message e)
  in
  match result with
  | Ok () ->
      Hashtbl.replace state r.name priority;
      Reg.incr t.m_written
  | Error e -> Logs.err (fun m -> m "policyd: %s/%s: %s" switch r.name e)

let reprioritize t ~switch ~state (r : Policy.Compile.flow_rule) ~priority =
  let dir = Y.Layout.flow ~root:(Y.Yanc_fs.root t.yfs) ~switch r.name in
  match
    Y.Flowdir.update t.fs ~cred:t.cred dir (fun old ->
        { old with Y.Flowdir.priority = priority })
  with
  | Ok _ ->
      Hashtbl.replace state r.name priority;
      Reg.incr t.m_written
  | Error e -> Logs.err (fun m -> m "policyd: %s/%s: %s" switch r.name e)

let delete_rule t ~switch ~state name =
  (match Y.Yanc_fs.delete_flow t.yfs ~cred:t.cred ~switch name with
  | Ok () -> Reg.incr t.m_deleted
  | Error _ -> ());
  Hashtbl.remove state name

(* Renumber-all fallback: every desired rule at its canonical priority.
   Still skips rules already in place, so it only goes quadratic-ish on
   genuinely large reshuffles. *)
let install_canonical t ~switch ~state =
  List.iter
    (fun (r : Policy.Compile.flow_rule) ->
      match Hashtbl.find_opt state r.name with
      | Some p when p = r.priority -> ()
      | Some _ -> reprioritize t ~switch ~state r ~priority:r.priority
      | None -> write_rule t ~switch ~state r ~priority:r.priority)
    t.desired

let max_lcs_product = 1_000_000

let diff_install t switch =
  let state = adopt_switch t switch in
  let new_names =
    List.fold_left
      (fun acc (r : Policy.Compile.flow_rule) -> SS.add r.name acc)
      SS.empty t.desired
  in
  (* deletions first: frees names and priorities *)
  Hashtbl.fold
    (fun name _ acc -> if SS.mem name new_names then acc else name :: acc)
    state []
  |> List.iter (fun name -> delete_rule t ~switch ~state name);
  (* the surviving installed rules, highest priority first *)
  let old_list =
    Hashtbl.fold (fun name prio acc -> (name, prio) :: acc) state []
    |> List.sort (fun (n1, p1) (n2, p2) ->
           match compare p2 p1 with 0 -> String.compare n1 n2 | c -> c)
  in
  let old_arr = Array.of_list (List.map fst old_list) in
  let new_arr =
    Array.of_list (List.map (fun (r : Policy.Compile.flow_rule) -> r.name) t.desired)
  in
  let strictly_descending =
    let rec go = function
      | (_, p1) :: ((_, p2) :: _ as rest) -> p1 > p2 && go rest
      | _ -> true
    in
    go old_list
  in
  let anchors =
    if
      (not strictly_descending)
      || Array.length old_arr * Array.length new_arr > max_lcs_product
    then SS.empty
    else lcs old_arr new_arr
  in
  (* Walk the desired list segment by segment: anchors keep their
     installed priority; the rules between two anchors spread into the
     gap. An overfull gap falls back to canonical renumbering. *)
  let exception Fallback in
  let place () =
    let pending = ref [] in
    let flush ~hi ~lo =
      let k = List.length !pending in
      if k > 0 then begin
        if hi - lo - 1 < k then raise Fallback;
        let step = max 1 ((hi - lo) / (k + 1)) in
        List.iteri
          (fun i (r : Policy.Compile.flow_rule) ->
            let priority = hi - ((i + 1) * step) in
            match Hashtbl.find_opt state r.name with
            | Some p when p = priority -> ()
            | Some _ -> reprioritize t ~switch ~state r ~priority
            | None -> write_rule t ~switch ~state r ~priority)
          (List.rev !pending);
        pending := []
      end
    in
    let hi = ref Policy.Compile.priority_base in
    List.iter
      (fun (r : Policy.Compile.flow_rule) ->
        if SS.mem r.name anchors then begin
          let anchor_prio = Hashtbl.find state r.name in
          flush ~hi:!hi ~lo:anchor_prio;
          hi := anchor_prio
        end
        else pending := r :: !pending)
      t.desired;
    flush ~hi:!hi ~lo:Policy.Compile.priority_floor
  in
  match place () with
  | () -> ()
  | exception Fallback -> install_canonical t ~switch ~state

let install t ~switches =
  List.iter
    (fun switch ->
      Telemetry.Tracer.span t.tracer ~stage:"policy.diff" (fun () ->
          diff_install t switch))
    switches

(* --- the daemon ----------------------------------------------------------- *)

let tick t ~now:_ =
  let events = Fsnotify.Notifier.read_events t.notifier in
  let dirty = ref SS.empty in
  List.iter
    (fun (ev : Fsnotify.Event.t) ->
      if ev.wd = t.wd_switches then
        match (ev.kind, ev.name) with
        | Fsnotify.Event.Created, Some sw ->
            t.fresh_switches <- SS.add sw t.fresh_switches
        | Fsnotify.Event.Deleted, Some sw ->
            Hashtbl.remove t.sw_state sw;
            t.fresh_switches <- SS.remove sw t.fresh_switches
        | _ -> ()
      else if ev.wd = t.wd_dir then
        match (ev.kind, ev.name) with
        | Fsnotify.Event.Overflow, _ -> t.dirty_all <- true
        | _, Some name when String.length name > 0 && name.[0] <> '.' ->
            dirty := SS.add name !dirty
        | _ -> ())
    events;
  if t.dirty_all then begin
    t.dirty_all <- false;
    List.iter (fun n -> dirty := SS.add n !dirty) (policy_file_names t);
    Hashtbl.iter (fun n _ -> dirty := SS.add n !dirty) t.parsed
  end;
  let changed =
    if SS.is_empty !dirty then false
    else begin
      SS.iter (fun n -> reparse_one t n) !dirty;
      let before = t.desired_render in
      recompile t && t.desired_render <> before
    end
  in
  let fresh = t.fresh_switches in
  t.fresh_switches <- SS.empty;
  let switches =
    if changed then Y.Yanc_fs.switch_names t.yfs
    else List.filter (fun sw -> SS.mem sw fresh) (Y.Yanc_fs.switch_names t.yfs)
  in
  install t ~switches

let app t =
  App_intf.daemon ~name:"policyd"
    ~pending:(fun () ->
      t.dirty_all
      || (not (SS.is_empty t.fresh_switches))
      || Fsnotify.Notifier.pending t.notifier > 0)
    (fun ~now -> tick t ~now)

(* --- status --------------------------------------------------------------- *)

let desired t = t.desired

let status t =
  let buf = Buffer.create 256 in
  let files =
    Hashtbl.fold (fun n r acc -> (n, r) :: acc) t.parsed []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let errors =
    List.length (List.filter (fun (_, r) -> Result.is_error r) files)
  in
  Buffer.add_string buf
    (Fmt.str "files %d\nrules %d\nerrors %d\nstate %s\n" (List.length files)
       (List.length t.desired) errors
       (match t.last_error with None -> "ok" | Some _ -> "error"));
  (match t.last_error with
  | Some e -> Buffer.add_string buf (Fmt.str "last_error %s\n" e)
  | None -> ());
  List.iter
    (fun (name, result) ->
      Buffer.add_string buf
        (match result with
        | Ok ir -> Fmt.str "file %s ok size=%d\n" name (Policy.Ir.size ir)
        | Error e -> Fmt.str "file %s error %s\n" name e))
    files;
  Buffer.contents buf
