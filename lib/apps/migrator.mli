(** LIME-style state migration (paper §2 cites LIME's "occasional
    reshuffling of flow entries [that] is best called on-demand", §7.2
    envisions moving middlebox state with [cp]/[mv]).

    Because flows are directories of plain files, migration {e is} a
    recursive copy: read every flow under the source switch, rewrite its
    port-specific actions through a port map, create it under the
    destination, and (for a move) delete the source flow. *)

val copy_flows :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string ->
  ?port_map:(int -> int) -> ?rename:(string -> string) -> unit ->
  (int, string) result
(** Returns the number of flows copied. Flows that fail to parse are
    reported, not silently skipped. *)

val move_flows :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string ->
  ?port_map:(int -> int) -> unit -> (int, string) result

val oneshot :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string -> App_intf.t
