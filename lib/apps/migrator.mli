(** LIME-style state migration (paper §2 cites LIME's "occasional
    reshuffling of flow entries [that] is best called on-demand", §7.2
    envisions moving middlebox state with [cp]/[mv]).

    Because flows are directories of plain files, migration {e is} a
    recursive copy: read every flow under the source switch, rewrite its
    port-specific actions through a port map, create it under the
    destination, and (for a move) delete the source flow. *)

val copy_flows :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string ->
  ?port_map:(int -> int) -> ?rename:(string -> string) -> unit ->
  (int, string) result
(** Returns the number of flows copied. Flows that fail to parse are
    reported, not silently skipped. *)

val move_flows :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string ->
  ?port_map:(int -> int) -> unit -> (int, string) result

val oneshot :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string -> App_intf.t

val mirror :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> src:string -> dst:string ->
  ?port_map:(int -> int) -> ?batch:int -> unit -> App_intf.t
(** Live migration: a daemon holding one recursive watch on [src]'s flow
    tree that incrementally copies changed flows to [dst] (and deletes
    removed ones), draining at most [batch] (default 256) events per
    tick. An overflow triggers a full listing-based resync. The daemon
    is skipped by the scheduler while no source events are pending. *)
