(** The static flow pusher (paper §8: "a simple static flow pusher shell
    script can be used to write flows to switches"). This is the library
    form; the same operation is a genuine shell one-liner over the
    {!Shell} utilities in the examples.

    Specs are parsed from a tiny text format, one flow per line:

    {v sw1 name=ssh-drop priority=40000 match.tp_dst=22 match.dl_type=0x0800 match.nw_proto=6 action.0.out=drop v}

    A switch of [*] targets every switch present. *)

type spec = {
  switch : string;   (** a name, or ["*"] *)
  name : string;
  flow : Yancfs.Flowdir.t;
}

val parse_line : string -> (spec, string) result

val parse : string -> (spec list, string) result
(** Parse a whole config (blank lines and [#] comments skipped). The
    error names the offending line. *)

val push :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> spec list -> (int, string) result
(** Write each flow (create or update+commit); returns how many flow
    directories were written. *)

val push_config :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> string -> (int, string) result

val oneshot : Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> config:string -> App_intf.t

val watching :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> path:Vfs.Path.t -> App_intf.t
(** A daemon that watches a config file {e inside} the VFS and re-pushes
    it whenever it is created, modified or renamed into place. Bursty
    rewrites coalesce to a single push. The daemon is skipped by the
    scheduler while no config events are pending. *)
