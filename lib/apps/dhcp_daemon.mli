(** The DHCP daemon: leases addresses from a pool to hosts whose
    DISCOVER/REQUEST messages arrive as packet-ins, answering with
    OFFER/ACK packet-outs, and publishes each lease under [hosts/]. *)

type t

val create :
  ?cred:Vfs.Cred.t -> ?server_ip:Packet.Ipv4_addr.t ->
  ?server_mac:Packet.Mac.t -> pool:Packet.Ipv4_addr.t list ->
  Yancfs.Yanc_fs.t -> t

val run : t -> now:float -> unit

val app : t -> App_intf.t

val leases : t -> (Packet.Mac.t * Packet.Ipv4_addr.t) list

val app_name : string
