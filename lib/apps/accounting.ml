module Y = Yancfs
module Fs = Vfs.Fs

type usage = { switch : string; packets : int64; bytes : int64; flows : int }

let read_counter fs ~cred path =
  match Fs.read_file fs ~cred path with
  | Ok v -> Option.value (Int64.of_string_opt (String.trim v)) ~default:0L
  | Error _ -> 0L

let collect yfs ~cred =
  let fs = Y.Yanc_fs.fs yfs in
  let root = Y.Yanc_fs.root yfs in
  List.map
    (fun switch ->
      let flows = Y.Yanc_fs.flow_names yfs ~cred switch in
      let packets, bytes =
        List.fold_left
          (fun (p, b) flow ->
            let counters = Y.Layout.flow_counters ~root ~switch flow in
            ( Int64.add p (read_counter fs ~cred (Vfs.Path.child counters "packets")),
              Int64.add b (read_counter fs ~cred (Vfs.Path.child counters "bytes")) ))
          (0L, 0L) flows
      in
      { switch; packets; bytes; flows = List.length flows })
    (Y.Yanc_fs.switch_names yfs)

let run_to_dir yfs ~cred ~dir ~now =
  let fs = Y.Yanc_fs.fs yfs in
  let ( let* ) = Result.bind in
  let* () = Fs.mkdir_p fs ~cred dir in
  List.fold_left
    (fun acc u ->
      let* () = acc in
      let line =
        Printf.sprintf "%.3f,%Ld,%Ld,%d\n" now u.packets u.bytes u.flows
      in
      Fs.append_file fs ~cred (Vfs.Path.child dir (u.switch ^ ".csv")) line)
    (Ok ()) (collect yfs ~cred)

let app yfs ~cred ~dir ~period =
  App_intf.cron ~name:"accounting" ~period (fun ~now ->
      ignore (run_to_dir yfs ~cred ~dir ~now))
