module Y = Yancfs
module Fs = Vfs.Fs

type usage = { switch : string; packets : int64; bytes : int64; flows : int }

(* Counter collection runs every period over every flow of every switch
   — exactly the workload the libyanc fastpath exists for, so read the
   sums through it: one crossing per switch instead of two reads per
   flow. *)
let collect yfs ~cred =
  let fp = Libyanc.Fastpath.create ~cred yfs in
  List.map
    (fun switch ->
      let flows = Y.Yanc_fs.flow_names yfs ~cred switch in
      let packets, bytes =
        match Libyanc.Fastpath.read_flow_counters fp ~switch with
        | Error _ -> 0L, 0L
        | Ok rows ->
          List.fold_left
            (fun (p, b) (_, dp, db) -> Int64.add p dp, Int64.add b db)
            (0L, 0L) rows
      in
      { switch; packets; bytes; flows = List.length flows })
    (Y.Yanc_fs.switch_names yfs)

let run_to_dir yfs ~cred ~dir ~now =
  let fs = Y.Yanc_fs.fs yfs in
  let ( let* ) = Result.bind in
  let* () = Fs.mkdir_p fs ~cred dir in
  List.fold_left
    (fun acc u ->
      let* () = acc in
      let line =
        Printf.sprintf "%.3f,%Ld,%Ld,%d\n" now u.packets u.bytes u.flows
      in
      Fs.append_file fs ~cred (Vfs.Path.child dir (u.switch ^ ".csv")) line)
    (Ok ()) (collect yfs ~cred)

let app yfs ~cred ~dir ~period =
  App_intf.cron ~name:"accounting" ~period (fun ~now ->
      ignore (run_to_dir yfs ~cred ~dir ~now))
