(** The reactive router daemon (paper §8): "handles all table misses and
    sets up paths based on exact match through the network".

    For every packet-in it: tracks the sending host (edge ports are the
    ports without a [peer] symlink — the topology daemon's links are its
    only view of the fabric); answers broadcasts by delivering to every
    edge port in the network (loop-free on any topology); and for
    unicast traffic to a known host computes a shortest path over the
    [peer] links and installs one exact-match flow per hop, releasing
    the buffered packet at the ingress. Discovered hosts are published
    under [hosts/] for other applications. *)

type t

val create :
  ?cred:Vfs.Cred.t -> ?idle_timeout:int -> ?priority:int ->
  Yancfs.Yanc_fs.t -> t

val run : t -> now:float -> unit

val app : t -> App_intf.t

val paths_installed : t -> int

val hosts_tracked : t -> int

val app_name : string
