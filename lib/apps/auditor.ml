module Y = Yancfs
module Fs = Vfs.Fs

type finding = { severity : [ `Info | `Warning | `Error ]; message : string }

let finding severity fmt = Printf.ksprintf (fun message -> { severity; message }) fmt

let audit yfs ~cred =
  let fs = Y.Yanc_fs.fs yfs in
  let root = Y.Yanc_fs.root yfs in
  let out = ref [] in
  let add f = out := f :: !out in
  let switches = Y.Yanc_fs.switch_names yfs in
  add (finding `Info "switches: %d" (List.length switches));
  List.iter
    (fun switch ->
      (* Typed children present? *)
      List.iter
        (fun child ->
          let p = Y.Layout.switch_attr ~root switch child in
          (* kind_of, not is_dir: an unreadable child is a different
             problem than a missing one, and the bool form hides it. *)
          match Fs.kind_of fs ~cred p with
          | Ok Fs.Dir -> ()
          | Ok _ ->
            add (finding `Error "switch %s: %s is not a directory" switch child)
          | Error Vfs.Errno.EACCES ->
            add
              (finding `Warning "switch %s: %s/ not auditable (permission denied)"
                 switch child)
          | Error _ ->
            add (finding `Error "switch %s: missing %s/" switch child))
        [ "flows"; "ports"; "counters"; "events" ];
      (if Y.Yanc_fs.switch_dpid yfs switch = None then
         add (finding `Error "switch %s: missing or invalid id file" switch));
      (* Flows parse? Collect the parseable ones for conflict analysis. *)
      let parsed = ref [] in
      List.iter
        (fun flow ->
          let dir = Y.Layout.flow ~root ~switch flow in
          (match Y.Flowdir.read_version fs ~cred dir with
          | None -> add (finding `Warning "flow %s/%s: never committed (no version)" switch flow)
          | Some _ -> (
            match Y.Yanc_fs.read_flow yfs ~cred ~switch flow with
            | Ok f -> parsed := (flow, f) :: !parsed
            | Error e -> add (finding `Error "flow %s/%s: %s" switch flow e)));
          match Fs.kind_of fs ~cred (Vfs.Path.child dir Y.Layout.error_file) with
          | Ok _ ->
            add (finding `Error "flow %s/%s: driver reported an error" switch flow)
          | Error Vfs.Errno.EACCES ->
            add
              (finding `Warning "flow %s/%s: error file not readable (permission denied)"
                 switch flow)
          | Error _ -> ())
        (Y.Yanc_fs.flow_names yfs ~cred switch);
      (* Conflicts: two committed flows at the same priority whose
         matches overlap but whose actions differ — which one a packet
         hits is undefined (OpenFlow leaves overlapping-priority
         behaviour to the switch). *)
      let rec conflicts = function
        | [] -> ()
        | (name_a, (a : Y.Flowdir.t)) :: rest ->
          List.iter
            (fun (name_b, (b : Y.Flowdir.t)) ->
              if
                a.priority = b.priority
                && a.actions <> b.actions
                && Openflow.Of_match.intersect a.of_match b.of_match <> None
              then
                add
                  (finding `Warning
                     "flow %s/%s overlaps %s/%s at priority %d with different \
                      actions"
                     switch name_a switch name_b a.priority))
            rest;
          conflicts rest
      in
      conflicts (List.rev !parsed);
      (* Ports. *)
      List.iter
        (fun port ->
          (match Y.Yanc_fs.read_port yfs ~cred ~switch port with
          | Ok info ->
            if info.admin_down then
              add (finding `Info "port %s/port_%d: administratively down" switch port)
          | Error _ ->
            add (finding `Error "port %s/port_%d: unreadable" switch port));
          (* Peer symmetry. *)
          match Y.Yanc_fs.peer_of yfs ~cred ~switch ~port with
          | None -> ()
          | Some (peer_sw, peer_port) -> (
            match Y.Yanc_fs.peer_of yfs ~cred ~switch:peer_sw ~port:peer_port with
            | Some (back_sw, back_port) when back_sw = switch && back_port = port -> ()
            | Some _ | None ->
              add
                (finding `Warning "link %s/port_%d -> %s/port_%d not symmetric"
                   switch port peer_sw peer_port)))
        (Y.Yanc_fs.port_numbers yfs ~cred switch))
    switches;
  List.rev !out

let severity_label = function
  | `Info -> "info"
  | `Warning -> "WARNING"
  | `Error -> "ERROR"

let report findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f -> Buffer.add_string buf (Printf.sprintf "[%s] %s\n" (severity_label f.severity) f.message))
    findings;
  let bad =
    List.length (List.filter (fun f -> f.severity <> `Info) findings)
  in
  Buffer.add_string buf (Printf.sprintf "-- %d findings, %d problems\n" (List.length findings) bad);
  Buffer.contents buf

let run_to_file yfs ~cred ~out =
  let findings = audit yfs ~cred in
  let fs = Y.Yanc_fs.fs yfs in
  let ( let* ) = Result.bind in
  let* () =
    match Vfs.Path.parent out with
    | Some parent -> Fs.mkdir_p fs ~cred parent
    | None -> Ok ()
  in
  let* () = Fs.write_file fs ~cred out (report findings) in
  Ok (List.length (List.filter (fun f -> f.severity <> `Info) findings))

let app yfs ~cred ~out ~period =
  App_intf.cron ~name:"auditor" ~period (fun ~now:_ ->
      ignore (run_to_file yfs ~cred ~out))

let watched_app yfs ~cred ~out ~period =
  (* A full audit walks the whole tree; gate the cron behind one
     recursive watch so quiet periods cost a (coalesced, batched) event
     drain instead of a tree walk. *)
  let notifier = Fsnotify.Notifier.create (Y.Yanc_fs.fs yfs) in
  ignore
    (Fsnotify.Notifier.add_watch ~recursive:true notifier
       (Y.Layout.switches_dir ~root:(Y.Yanc_fs.root yfs))
       Fsnotify.Notifier.all);
  let audited_once = ref false in
  App_intf.cron ~name:"auditor" ~period (fun ~now:_ ->
      let changed = Fsnotify.Notifier.read_events notifier <> [] in
      if changed || not !audited_once then begin
        audited_once := true;
        ignore (run_to_file yfs ~cred ~out)
      end)
