(** The application model (paper §2): network applications are ordinary
    processes — daemons that run continuously, cron jobs that run
    periodically, and oneshot commands. An app is just a named closure
    over a yanc root and a credential; the scheduler in the core library
    drives it. Nothing here knows about protocols or switches — apps see
    only the file system. *)

type schedule =
  | Daemon            (** every scheduler round *)
  | Cron of float     (** every [period] simulated seconds *)
  | Oneshot           (** exactly once *)

type t = {
  name : string;
  schedule : schedule;
  run : now:float -> unit;
  pending : (unit -> bool) option;
      (** Event-driven daemons expose whether work is queued (typically
          [Fsnotify.Notifier.pending > 0]); the scheduler skips their
          tick when nothing is. [None] means "always run". *)
}

let daemon ?pending ~name run = { name; schedule = Daemon; run; pending }

let cron ~name ~period run = { name; schedule = Cron period; run; pending = None }

let oneshot ~name run = { name; schedule = Oneshot; run; pending = None }
