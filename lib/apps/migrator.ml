module Y = Yancfs
module OF = Openflow

let map_action port_map = function
  | OF.Action.Output (OF.Action.Physical p) ->
    OF.Action.Output (OF.Action.Physical (port_map p))
  | a -> a

let map_match port_map (m : OF.Of_match.t) =
  { m with OF.Of_match.in_port = Option.map port_map m.OF.Of_match.in_port }

let copy_one yfs ~cred ~src ~dst ~port_map ~target name =
  match Y.Yanc_fs.read_flow yfs ~cred ~switch:src name with
  | Error e -> Error (Printf.sprintf "%s/%s: %s" src name e)
  | Ok flow ->
    let flow =
      { flow with
        Y.Flowdir.of_match = map_match port_map flow.of_match;
        actions = List.map (map_action port_map) flow.actions;
        version = 0;
        buffer_id = None }
    in
    let result =
      match Y.Yanc_fs.create_flow yfs ~cred ~switch:dst ~name:target flow with
      | Ok () -> Ok ()
      | Error Vfs.Errno.EEXIST ->
        (* Update in place, preserving the version chain. *)
        let dir = Y.Layout.flow ~root:(Y.Yanc_fs.root yfs) ~switch:dst target in
        Result.map ignore
          (Y.Flowdir.update (Y.Yanc_fs.fs yfs) ~cred dir
             (fun old -> { flow with Y.Flowdir.version = old.Y.Flowdir.version }))
      | Error e -> Error (Vfs.Errno.message e)
    in
    (match result with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "%s/%s: %s" dst target e))

let copy_flows yfs ~cred ~src ~dst ?(port_map = Fun.id) ?(rename = Fun.id) () =
  let flows = Y.Yanc_fs.flow_names yfs ~cred src in
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok count -> (
        match copy_one yfs ~cred ~src ~dst ~port_map ~target:(rename name) name with
        | Ok () -> Ok (count + 1)
        | Error _ as e -> e))
    (Ok 0) flows

let move_flows yfs ~cred ~src ~dst ?port_map () =
  match copy_flows yfs ~cred ~src ~dst ?port_map () with
  | Error _ as e -> e
  | Ok count ->
    List.iter
      (fun name -> ignore (Y.Yanc_fs.delete_flow yfs ~cred ~switch:src name))
      (Y.Yanc_fs.flow_names yfs ~cred src);
    Ok count

let oneshot yfs ~cred ~src ~dst =
  App_intf.oneshot ~name:"migrator" (fun ~now:_ ->
      match move_flows yfs ~cred ~src ~dst () with
      | Ok n -> Logs.info (fun m -> m "migrator: moved %d flows %s -> %s" n src dst)
      | Error e -> Logs.err (fun m -> m "migrator: %s" e))

let mirror yfs ~cred ~src ~dst ?(port_map = Fun.id) ?(batch = 256) () =
  (* LIME live migration: keep [dst] converging on [src] while traffic
     still runs — one recursive watch on the source flow tree, per-flow
     incremental copies/deletes driven by the routed events. Writes go
     only to [dst], so the mirror never feeds itself. *)
  let fs = Y.Yanc_fs.fs yfs in
  let flows_dir = Y.Layout.flows_dir ~root:(Y.Yanc_fs.root yfs) src in
  let notifier = Fsnotify.Notifier.create fs in
  ignore
    (Fsnotify.Notifier.add_watch ~recursive:true notifier flows_dir
       (Fsnotify.Notifier.mask
          Fsnotify.Event.
            [ Created; Modified; Deleted; Moved_from; Moved_to; Overflow ]));
  let sync_flow name =
    (* Existence check on the one dirty flow, not a listing of all of
       them — the mirror stays O(dirty) per drain like the driver. *)
    if
      Vfs.Fs.exists fs ~cred
        (Y.Layout.flow ~root:(Y.Yanc_fs.root yfs) ~switch:src name)
    then (
      match copy_one yfs ~cred ~src ~dst ~port_map ~target:name name with
      | Ok () -> ()
      | Error e -> Logs.err (fun m -> m "migrator-mirror: %s" e))
    else ignore (Y.Yanc_fs.delete_flow yfs ~cred ~switch:dst name)
  in
  let resync () =
    (* Events were lost: converge from a full listing. *)
    let src_flows = Y.Yanc_fs.flow_name_set yfs ~cred src in
    Y.Yanc_fs.Name_set.iter sync_flow src_flows;
    List.iter
      (fun name ->
        if not (Y.Yanc_fs.Name_set.mem name src_flows) then
          ignore (Y.Yanc_fs.delete_flow yfs ~cred ~switch:dst name))
      (Y.Yanc_fs.flow_names yfs ~cred dst)
  in
  App_intf.daemon
    ~name:(Printf.sprintf "migrator-mirror:%s->%s" src dst)
    ~pending:(fun () -> Fsnotify.Notifier.pending notifier > 0)
    (fun ~now:_ ->
      let evs = Fsnotify.Notifier.read_events ~max:batch notifier in
      if evs <> [] then
        if List.exists (fun (e : Fsnotify.Event.t) -> e.kind = Fsnotify.Event.Overflow) evs
        then resync ()
        else begin
          let dirty = Hashtbl.create 8 in
          List.iter
            (fun (e : Fsnotify.Event.t) ->
              match Vfs.Path.strip_prefix ~prefix:flows_dir e.path with
              | Some rest -> (
                match Vfs.Path.components rest with
                | flow :: _ -> Hashtbl.replace dirty flow ()
                | [] -> ())
              | None -> ())
            evs;
          Hashtbl.iter (fun flow () -> sync_flow flow) dirty
        end)
