module Y = Yancfs
module OF = Openflow

let map_action port_map = function
  | OF.Action.Output (OF.Action.Physical p) ->
    OF.Action.Output (OF.Action.Physical (port_map p))
  | a -> a

let map_match port_map (m : OF.Of_match.t) =
  { m with OF.Of_match.in_port = Option.map port_map m.OF.Of_match.in_port }

let copy_flows yfs ~cred ~src ~dst ?(port_map = Fun.id) ?(rename = Fun.id) () =
  let flows = Y.Yanc_fs.flow_names yfs ~cred src in
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok count -> (
        match Y.Yanc_fs.read_flow yfs ~cred ~switch:src name with
        | Error e -> Error (Printf.sprintf "%s/%s: %s" src name e)
        | Ok flow ->
          let flow =
            { flow with
              Y.Flowdir.of_match = map_match port_map flow.of_match;
              actions = List.map (map_action port_map) flow.actions;
              version = 0;
              buffer_id = None }
          in
          let target = rename name in
          let result =
            match
              Y.Yanc_fs.create_flow yfs ~cred ~switch:dst ~name:target flow
            with
            | Ok () -> Ok ()
            | Error Vfs.Errno.EEXIST ->
              let dir =
                Y.Layout.flow ~root:(Y.Yanc_fs.root yfs) ~switch:dst target
              in
              let version =
                Option.value ~default:0
                  (Y.Flowdir.read_version (Y.Yanc_fs.fs yfs) ~cred dir)
              in
              Y.Flowdir.write (Y.Yanc_fs.fs yfs) ~cred dir
                { flow with Y.Flowdir.version }
            | Error _ as e -> e
          in
          (match result with
          | Ok () -> Ok (count + 1)
          | Error e ->
            Error (Printf.sprintf "%s/%s: %s" dst target (Vfs.Errno.message e)))))
    (Ok 0) flows

let move_flows yfs ~cred ~src ~dst ?port_map () =
  match copy_flows yfs ~cred ~src ~dst ?port_map () with
  | Error _ as e -> e
  | Ok count ->
    List.iter
      (fun name -> ignore (Y.Yanc_fs.delete_flow yfs ~cred ~switch:src name))
      (Y.Yanc_fs.flow_names yfs ~cred src);
    Ok count

let oneshot yfs ~cred ~src ~dst =
  App_intf.oneshot ~name:"migrator" (fun ~now:_ ->
      match move_flows yfs ~cred ~src ~dst () with
      | Ok n -> Logs.info (fun m -> m "migrator: moved %d flows %s -> %s" n src dst)
      | Error e -> Logs.err (fun m -> m "migrator: %s" e))
