module Y = Yancfs
module OF = Openflow

type spec = { switch : string; name : string; flow : Y.Flowdir.t }

let ( let* ) = Result.bind

let parse_line line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "empty flow spec"
  | switch :: kvs ->
    let* pairs =
      List.fold_left
        (fun acc kv ->
          let* acc = acc in
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "missing '=' in %S" kv)
          | Some i ->
            Ok
              ((String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
              :: acc))
        (Ok []) kvs
    in
    let pairs = List.rev pairs in
    let* name =
      match List.assoc_opt "name" pairs with
      | Some n when Vfs.Path.valid_name n -> Ok n
      | Some n -> Error (Printf.sprintf "invalid flow name %S" n)
      | None -> Error "missing name="
    in
    let* flow =
      List.fold_left
        (fun acc (k, v) ->
          let* (flow : Y.Flowdir.t) = acc in
          if k = "name" then Ok flow
          else if k = "priority" then
            match int_of_string_opt v with
            | Some priority -> Ok { flow with Y.Flowdir.priority }
            | None -> Error (Printf.sprintf "priority: invalid value %S" v)
          else if k = "idle_timeout" then
            match int_of_string_opt v with
            | Some idle_timeout -> Ok { flow with Y.Flowdir.idle_timeout }
            | None -> Error (Printf.sprintf "idle_timeout: invalid value %S" v)
          else if k = "hard_timeout" then
            match int_of_string_opt v with
            | Some hard_timeout -> Ok { flow with Y.Flowdir.hard_timeout }
            | None -> Error (Printf.sprintf "hard_timeout: invalid value %S" v)
          else if String.length k > 6 && String.sub k 0 6 = "match." then
            let field = String.sub k 6 (String.length k - 6) in
            let* of_match = OF.Of_match.set_field flow.Y.Flowdir.of_match field v in
            Ok { flow with Y.Flowdir.of_match }
          else if String.length k > 7 && String.sub k 0 7 = "action." then
            let* actions = OF.Action.of_fields [ k, v ] in
            Ok { flow with Y.Flowdir.actions = flow.Y.Flowdir.actions @ actions }
          else Error (Printf.sprintf "unknown key %S" k))
        (Ok Y.Flowdir.default) pairs
    in
    Ok { switch; name; flow }

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go acc (lineno + 1) rest
      else (
        match parse_line trimmed with
        | Ok spec -> go (spec :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let push yfs ~cred specs =
  let all_switches = Y.Yanc_fs.switch_names yfs in
  List.fold_left
    (fun acc spec ->
      let* count = acc in
      let targets =
        if spec.switch = "*" then all_switches else [ spec.switch ]
      in
      List.fold_left
        (fun acc switch ->
          let* count = acc in
          let result =
            match Y.Yanc_fs.create_flow yfs ~cred ~switch ~name:spec.name spec.flow with
            | Ok () -> Ok ()
            | Error Vfs.Errno.EEXIST ->
              (* Update in place, preserving the version chain. *)
              let dir =
                Y.Layout.flow ~root:(Y.Yanc_fs.root yfs) ~switch spec.name
              in
              Result.map ignore
                (Y.Flowdir.update (Y.Yanc_fs.fs yfs) ~cred dir
                   (fun old ->
                     { spec.flow with Y.Flowdir.version = old.Y.Flowdir.version }))
            | Error e -> Error (Vfs.Errno.message e)
          in
          match result with
          | Ok () -> Ok (count + 1)
          | Error e ->
            Error (Printf.sprintf "%s/%s: %s" switch spec.name e))
        (Ok count) targets)
    (Ok 0) specs

let push_config yfs ~cred config =
  let* specs = parse config in
  push yfs ~cred specs

let oneshot yfs ~cred ~config =
  App_intf.oneshot ~name:"flow-pusher" (fun ~now:_ ->
      match push_config yfs ~cred config with
      | Ok n -> Logs.info (fun m -> m "flow-pusher: wrote %d flows" n)
      | Error e -> Logs.err (fun m -> m "flow-pusher: %s" e))

let watching yfs ~cred ~path =
  (* The paper's "static" pusher, made live: the config is itself a file
     in the tree, so a watch turns every edit into a push. A save storm
     coalesces into one Modified event, hence one push per drain. *)
  let fs = Y.Yanc_fs.fs yfs in
  let notifier = Fsnotify.Notifier.create fs in
  ignore
    (Fsnotify.Notifier.add_watch notifier path
       (Fsnotify.Notifier.mask
          Fsnotify.Event.[ Created; Modified; Moved_to; Overflow ]));
  App_intf.daemon ~name:"flow-pusher"
    ~pending:(fun () -> Fsnotify.Notifier.pending notifier > 0)
    (fun ~now:_ ->
      if Fsnotify.Notifier.read_events notifier <> [] then
        match Vfs.Fs.read_file fs ~cred path with
        | Error _ -> () (* deleted or unreadable: keep the installed flows *)
        | Ok config -> (
          match push_config yfs ~cred config with
          | Ok n -> Logs.info (fun m -> m "flow-pusher: wrote %d flows" n)
          | Error e -> Logs.err (fun m -> m "flow-pusher: %s" e)))
