module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "dhcpd"

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  server_ip : P.Ipv4_addr.t;
  server_mac : P.Mac.t;
  mutable pool : P.Ipv4_addr.t list;
  leased : (P.Mac.t, P.Ipv4_addr.t) Hashtbl.t;
  offered : (P.Mac.t, P.Ipv4_addr.t) Hashtbl.t;
  subscribed : (string, unit) Hashtbl.t;
}

let default_ip = Option.get (P.Ipv4_addr.of_string "10.0.255.254")

let create ?(cred = Vfs.Cred.root) ?(server_ip = default_ip)
    ?(server_mac = P.Mac.of_int 0x02ffffffff01) ~pool yfs =
  { yfs; cred; server_ip; server_mac; pool; leased = Hashtbl.create 32;
    offered = Hashtbl.create 32; subscribed = Hashtbl.create 16 }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

let reply_frame t ~(dhcp : P.Dhcp.t) =
  P.Eth.make ~src:t.server_mac ~dst:dhcp.chaddr
    (P.Eth.Ipv4
       (P.Ipv4.make ~src:t.server_ip ~dst:P.Ipv4_addr.broadcast
          (P.Ipv4.Udp
             { P.Udp.src_port = P.Dhcp.server_port;
               dst_port = P.Dhcp.client_port;
               payload = P.Udp.Dhcp dhcp })))

let netmask = Option.get (P.Ipv4_addr.of_string "255.255.0.0")

let offer_for t mac =
  match Hashtbl.find_opt t.leased mac with
  | Some ip -> Some ip
  | None -> (
    match Hashtbl.find_opt t.offered mac with
    | Some ip -> Some ip
    | None -> (
      match t.pool with
      | [] -> None
      | ip :: rest ->
        t.pool <- rest;
        Hashtbl.replace t.offered mac ip;
        Some ip))

let handle t ~switch (ev : Y.Eventdir.event) =
  match Y.Eventdir.frame_of ev with
  | Some
      { P.Eth.payload =
          P.Eth.Ipv4 { P.Ipv4.payload = P.Ipv4.Udp { P.Udp.payload = P.Udp.Dhcp dhcp; _ }; _ };
        _ } -> (
    let send reply =
      ignore
        (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~actions:[ OF.Action.Output (OF.Action.Physical ev.in_port) ]
           ~data:(P.Eth.to_wire (reply_frame t ~dhcp:reply)) ())
    in
    match dhcp.P.Dhcp.msg_type with
    | P.Dhcp.Discover -> (
      match offer_for t dhcp.chaddr with
      | None -> () (* pool exhausted: stay silent, client retries *)
      | Some ip ->
        send
          (P.Dhcp.make ~msg_type:P.Dhcp.Offer ~xid:dhcp.xid ~chaddr:dhcp.chaddr
             ~yiaddr:ip ~siaddr:t.server_ip ~server_id:t.server_ip
             ~lease:86400l ~netmask ()))
    | P.Dhcp.Request -> (
      let requested =
        match dhcp.requested_ip with
        | Some ip -> Some ip
        | None -> Hashtbl.find_opt t.offered dhcp.chaddr
      in
      match requested, Hashtbl.find_opt t.offered dhcp.chaddr with
      | Some ip, Some offered_ip when P.Ipv4_addr.equal ip offered_ip ->
        Hashtbl.remove t.offered dhcp.chaddr;
        Hashtbl.replace t.leased dhcp.chaddr ip;
        let name = Printf.sprintf "host-%012x" (P.Mac.to_int dhcp.chaddr) in
        ignore
          (Y.Yanc_fs.upsert_host t.yfs ~cred:t.cred ~name ~mac:dhcp.chaddr
             ~ip:(Some ip) ());
        send
          (P.Dhcp.make ~msg_type:P.Dhcp.Ack ~xid:dhcp.xid ~chaddr:dhcp.chaddr
             ~yiaddr:ip ~siaddr:t.server_ip ~server_id:t.server_ip
             ~lease:86400l ~netmask ())
      | Some ip, _ when Hashtbl.find_opt t.leased dhcp.chaddr = Some ip ->
        send
          (P.Dhcp.make ~msg_type:P.Dhcp.Ack ~xid:dhcp.xid ~chaddr:dhcp.chaddr
             ~yiaddr:ip ~siaddr:t.server_ip ~server_id:t.server_ip
             ~lease:86400l ~netmask ())
      | _ ->
        send
          (P.Dhcp.make ~msg_type:P.Dhcp.Nak ~xid:dhcp.xid ~chaddr:dhcp.chaddr
             ~server_id:t.server_ip ()))
    | P.Dhcp.Offer | P.Dhcp.Ack | P.Dhcp.Nak -> ())
  | Some _ | None -> ()

let run t ~now:_ =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
            ~app:app_name
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter (handle t ~switch)
        (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~app:app_name))
    (Y.Yanc_fs.switch_names t.yfs)

let app t = App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let leases t =
  Hashtbl.fold (fun mac ip acc -> (mac, ip) :: acc) t.leased []
  |> List.sort (fun (a, _) (b, _) -> P.Mac.compare a b)
