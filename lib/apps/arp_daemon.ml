module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "arpd"

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  subscribed : (string, unit) Hashtbl.t;
  mutable replies : int;
}

let create ?(cred = Vfs.Cred.root) yfs =
  { yfs; cred; subscribed = Hashtbl.create 16; replies = 0 }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

let lookup_ip t addr =
  List.find_map
    (fun name ->
      match Y.Yanc_fs.read_host t.yfs ~cred:t.cred name with
      | Ok (mac, Some ip, _) when P.Ipv4_addr.equal ip addr -> Some mac
      | Ok _ | Error _ -> None)
    (Y.Yanc_fs.host_names t.yfs ~cred:t.cred)

let handle t ~switch (ev : Y.Eventdir.event) =
  match Y.Eventdir.frame_of ev with
  | Some ({ P.Eth.payload = P.Eth.Arp ({ op = P.Arp.Request; _ } as arp); _ } as frame)
    -> (
    match lookup_ip t arp.P.Arp.tpa with
    | None -> ()
    | Some mac -> (
      match P.Builder.arp_reply_to frame ~mac with
      | None -> ()
      | Some reply ->
        t.replies <- t.replies + 1;
        ignore
          (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
             ~actions:[ OF.Action.Output (OF.Action.Physical ev.in_port) ]
             ~data:(P.Eth.to_wire reply) ())))
  | Some _ | None -> ()

let run t ~now:_ =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
            ~app:app_name
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter (handle t ~switch)
        (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~app:app_name))
    (Y.Yanc_fs.switch_names t.yfs)

let app t = App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let replies_sent t = t.replies
