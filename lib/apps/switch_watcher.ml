module Y = Yancfs

type change = Added of string | Removed of string

type t = {
  yfs : Y.Yanc_fs.t;
  notifier : Fsnotify.Notifier.t;
  batch : int;
  on_change : change -> unit;
  mutable log : (float * change) list;
  mutable present : string list;
}

let create ?(on_change = fun _ -> ()) ?cred ?(batch = 512) yfs =
  ignore cred;
  let notifier = Fsnotify.Notifier.create (Y.Yanc_fs.fs yfs) in
  ignore
    (Fsnotify.Notifier.add_watch notifier
       (Y.Layout.switches_dir ~root:(Y.Yanc_fs.root yfs))
       (Fsnotify.Notifier.mask
          Fsnotify.Event.[ Created; Deleted; Moved_from; Moved_to; Overflow ]));
  { yfs; notifier; batch; on_change; log = [];
    present = Y.Yanc_fs.switch_names yfs }

let record t ~now change =
  t.log <- (now, change) :: t.log;
  (match change with
  | Added name -> if not (List.mem name t.present) then t.present <- t.present @ [ name ]
  | Removed name -> t.present <- List.filter (fun n -> n <> name) t.present);
  t.on_change change

let run t ~now =
  List.iter
    (fun (ev : Fsnotify.Event.t) ->
      match ev.kind, ev.name with
      | Fsnotify.Event.Overflow, _ ->
        (* events were lost: resynchronize from a listing *)
        let actual = Y.Yanc_fs.switch_names t.yfs in
        List.iter
          (fun n -> if not (List.mem n t.present) then record t ~now (Added n))
          actual;
        List.iter
          (fun n -> if not (List.mem n actual) then record t ~now (Removed n))
          t.present
      | (Fsnotify.Event.Created | Fsnotify.Event.Moved_to), Some name ->
        record t ~now (Added name)
      | (Fsnotify.Event.Deleted | Fsnotify.Event.Moved_from), Some name ->
        record t ~now (Removed name)
      | _ -> ())
    (Fsnotify.Notifier.read_events ~max:t.batch t.notifier)

let app t =
  App_intf.daemon ~name:"switch-watcher"
    ~pending:(fun () -> Fsnotify.Notifier.pending t.notifier > 0)
    (fun ~now -> run t ~now)

let log t = List.rev t.log

let current t = t.present

let close t = Fsnotify.Notifier.close t.notifier
