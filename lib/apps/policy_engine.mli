(** The policy engine: network policy as files (ISSUE 10's tentpole).

    Every file under [/yanc/policy/] holds one program in the
    {!Policy.Syntax} concrete syntax. The engine watches the directory;
    on any change it reparses only the touched files, composes every
    readable program in parallel (file-name order), compiles the result
    once ({!Policy.Compile.to_flows}), and installs the rules as
    [pol_*] flows under {e every} switch's [flows/] — from where PR 6's
    dirty-flow commit queue carries them to hardware and PR 5's resync
    re-derives them after a disconnect. The whole chain is traced
    ([policy.parse] → [policy.compile] → [policy.diff] →
    [yancfs.flow_write]) and metered under [policy.*].

    Installation is an {e incremental diff}: rules are content-named,
    so the differ aligns the installed list with the desired one (LCS
    on names), keeps unchanged rules untouched — their files are never
    rewritten, so no flow_mods reach the switch — and writes only the
    changed segment into the priority gaps the initial numbering left.
    A one-clause edit of a large policy is O(changed) commits, which
    [test_policy] and the [@bench-smoke] gate assert via the
    [driver.commit.*] counters.

    Malformed input never tears the engine down: a file that fails to
    parse (or a composition that fails to compile) reports into
    [/yanc/policy/.errors/<name>] and the [policy.compile_errors]
    counter, while the last good rule set stays installed. *)

type t

val create :
  ?dir:Vfs.Path.t ->
  cred:Vfs.Cred.t ->
  Yancfs.Yanc_fs.t ->
  t
(** [dir] defaults to {!Yancfs.Layout.policy_root}. Creates [dir] and
    its [.errors/] subdirectory, starts the watches, and adopts any
    [pol_*] flows already installed (so a restarted engine diffs
    against them instead of reinstalling the world). *)

val app : t -> App_intf.t
(** A daemon named ["policyd"], pending exactly when the notifier has
    queued events or a recompile is still owed. *)

val status : t -> string
(** The [/yanc/.proc/policy] report: file/rule/error counts, last
    error, per-file parse state. *)

val desired : t -> Policy.Compile.flow_rule list
(** The rule set the engine currently wants installed (the last
    successful compile) — the "compiled policy" leg of the chaos
    harness's hardware ≡ filesystem ≡ policy invariant. *)

val flow_prefix : string
(** ["pol_"] — the namespace the engine owns inside each [flows/]
    directory; it never touches flows named otherwise. *)
