(** The ARP daemon (paper §2 names ARP as a protocol that deserves its
    own application): a proxy-ARP responder. It watches packet-ins for
    ARP requests and answers them directly from the [hosts/] directory
    (populated by the router or DHCP daemons), suppressing fabric-wide
    broadcast storms. Requests for unknown addresses are left alone for
    the router's broadcast path. *)

type t

val create : ?cred:Vfs.Cred.t -> Yancfs.Yanc_fs.t -> t

val run : t -> now:float -> unit

val app : t -> App_intf.t

val replies_sent : t -> int

val app_name : string
