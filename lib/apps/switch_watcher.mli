(** An event-driven inventory daemon, written the way paper §5.2
    prescribes: "to monitor for new switches a watch can be placed on
    the switches directory" — no polling, no protocol, one inotify-style
    watch. It keeps an arrival/departure log and can run a callback per
    event (e.g. to provision default flows on every new switch). *)

type change = Added of string | Removed of string

type t

val create :
  ?on_change:(change -> unit) -> ?cred:Vfs.Cred.t -> ?batch:int ->
  Yancfs.Yanc_fs.t -> t
(** Places the watch immediately; changes are processed on each {!run},
    at most [batch] (default 512) events per tick — leftovers carry to
    the next tick, so one arrival storm cannot starve other apps. *)

val run : t -> now:float -> unit

val app : t -> App_intf.t
(** The daemon reports pending work to the scheduler, so its tick is
    skipped entirely while no switch events are queued. *)

val log : t -> (float * change) list
(** All changes observed, oldest first, with the time they were seen. *)

val current : t -> string list
(** Switches believed present. *)

val close : t -> unit
