(** The accounting application (Figure 1 lists accounting among the
    master applications): a cron job that aggregates the per-flow and
    per-port counters the drivers refresh and appends per-switch usage
    records under [/var/accounting/]. *)

type usage = { switch : string; packets : int64; bytes : int64; flows : int }

val collect : Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> usage list

val run_to_dir :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> dir:Vfs.Path.t -> now:float ->
  (unit, Vfs.Errno.t) result
(** Append one CSV line ([time,packets,bytes,flows]) per switch to
    [<dir>/<switch>.csv]. *)

val app :
  Yancfs.Yanc_fs.t -> cred:Vfs.Cred.t -> dir:Vfs.Path.t -> period:float ->
  App_intf.t
