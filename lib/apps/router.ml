module Y = Yancfs
module P = Packet
module OF = Openflow

let app_name = "routerd"

type location = { switch : string; port : int }

type t = {
  yfs : Y.Yanc_fs.t;
  cred : Vfs.Cred.t;
  idle_timeout : int;
  priority : int;
  hosts : (P.Mac.t, location) Hashtbl.t;
  ips : (P.Ipv4_addr.t, P.Mac.t) Hashtbl.t;
  subscribed : (string, unit) Hashtbl.t;
  mutable paths : int;
  mutable flow_seq : int;
}

let create ?(cred = Vfs.Cred.root) ?(idle_timeout = 30) ?(priority = 200) yfs =
  { yfs; cred; idle_timeout; priority; hosts = Hashtbl.create 64;
    ips = Hashtbl.create 64; subscribed = Hashtbl.create 16; paths = 0;
    flow_seq = 0 }

let fs t = Y.Yanc_fs.fs t.yfs

let root t = Y.Yanc_fs.root t.yfs

(* Adjacency from the topology daemon's peer symlinks. *)
let adjacency t =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun switch ->
      List.iter
        (fun port ->
          match Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port with
          | Some (peer_sw, peer_port) ->
            Hashtbl.add adj switch (port, peer_sw, peer_port)
          | None -> ())
        (Y.Yanc_fs.port_numbers t.yfs ~cred:t.cred switch))
    (Y.Yanc_fs.switch_names t.yfs);
  adj

let edge_ports t switch =
  List.filter
    (fun port ->
      Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port = None
      &&
      match Y.Yanc_fs.read_port t.yfs ~cred:t.cred ~switch port with
      | Ok info -> not (info.admin_down || info.link_down)
      | Error _ -> false)
    (Y.Yanc_fs.port_numbers t.yfs ~cred:t.cred switch)

(* BFS shortest path; result is per-hop (switch, out_port, next_in_port),
   excluding the final host port. *)
let path t ~from_sw ~to_sw =
  if from_sw = to_sw then Some []
  else begin
    let adj = adjacency t in
    let visited = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace visited from_sw None;
    Queue.push from_sw queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let sw = Queue.pop queue in
      if sw = to_sw then found := true
      else
        List.iter
          (fun (port, peer_sw, peer_port) ->
            if not (Hashtbl.mem visited peer_sw) then begin
              Hashtbl.replace visited peer_sw (Some (sw, port, peer_port));
              Queue.push peer_sw queue
            end)
          (Hashtbl.find_all adj sw)
    done;
    if not !found then None
    else begin
      (* Walk back from the destination. *)
      let rec back sw acc =
        match Hashtbl.find visited sw with
        | None -> acc
        | Some (prev, out_port, in_port) ->
          back prev ((prev, out_port, in_port) :: acc)
      in
      Some (back to_sw [])
    end
  end

let learn t ~switch ~in_port frame =
  (* Only edge ports host endpoints. *)
  if Y.Yanc_fs.peer_of t.yfs ~cred:t.cred ~switch ~port:in_port = None then begin
    let mac = frame.P.Eth.src in
    if not (P.Mac.is_multicast mac) then begin
      let known = Hashtbl.find_opt t.hosts mac in
      Hashtbl.replace t.hosts mac { switch; port = in_port };
      let ip =
        match frame.P.Eth.payload with
        | P.Eth.Arp arp -> Some arp.P.Arp.spa
        | P.Eth.Ipv4 ip when not (P.Ipv4_addr.equal ip.P.Ipv4.src P.Ipv4_addr.any)
          -> Some ip.P.Ipv4.src
        | _ -> None
      in
      Option.iter (fun addr -> Hashtbl.replace t.ips addr mac) ip;
      if known = None || ip <> None then begin
        let name =
          Printf.sprintf "host-%012x" (P.Mac.to_int mac)
        in
        ignore
          (Y.Yanc_fs.upsert_host t.yfs ~cred:t.cred ~name ~mac ~ip
             ~attached_to:(switch, in_port) ())
      end
    end
  end

(* Deliver a frame to every edge port in the network except its ingress:
   loop-free broadcast on arbitrary topologies. *)
let broadcast t ~ingress ~data ~buffer_id =
  List.iter
    (fun switch ->
      let ports =
        List.filter
          (fun port -> ingress <> Some { switch; port })
          (edge_ports t switch)
      in
      if ports <> [] then begin
        let actions =
          List.map (fun p -> OF.Action.Output (OF.Action.Physical p)) ports
        in
        (* The ingress switch may hold the frame in a buffer. *)
        let buffer_id =
          match ingress, buffer_id with
          | Some { switch = isw; _ }, Some id when isw = switch -> Some id
          | _ -> None
        in
        ignore
          (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch
             ?buffer_id ~actions
             ~data:(if buffer_id = None then data else "")
             ())
      end)
    (Y.Yanc_fs.switch_names t.yfs)

let install_path t ~headers ~ingress ~dst_loc ~buffer_id ~data =
  match path t ~from_sw:ingress.switch ~to_sw:dst_loc.switch with
  | None ->
    (* Fabric not discovered yet: fall back to broadcast delivery. *)
    broadcast t ~ingress:(Some ingress) ~data ~buffer_id
  | Some hops ->
    t.paths <- t.paths + 1;
    let exact = OF.Of_match.exact_of_headers headers in
    (* Last hop first, ingress last, so no packet races an absent rule. *)
    let flows =
      (* (switch, in_port, out_port) per hop, then the final delivery. *)
      let rec build in_port = function
        | [] -> [ dst_loc.switch, in_port, dst_loc.port ]
        | (sw, out_port, next_in) :: rest ->
          (sw, in_port, out_port) :: build next_in rest
      in
      build ingress.port hops
    in
    List.iter
      (fun (sw, in_port, out_port) ->
        t.flow_seq <- t.flow_seq + 1;
        let is_ingress_hop = sw = ingress.switch && in_port = ingress.port in
        let flow =
          { Y.Flowdir.default with
            Y.Flowdir.of_match = { exact with OF.Of_match.in_port = Some in_port };
            actions = [ OF.Action.Output (OF.Action.Physical out_port) ];
            priority = t.priority;
            idle_timeout = t.idle_timeout;
            buffer_id = (if is_ingress_hop then buffer_id else None) }
        in
        let name = Printf.sprintf "path-%d" t.flow_seq in
        ignore (Y.Yanc_fs.create_flow t.yfs ~cred:t.cred ~switch:sw ~name flow);
        (* Unbuffered ingress: push the original packet along too. *)
        if is_ingress_hop && buffer_id = None then
          ignore
            (Y.Outdir.submit (fs t) ~cred:t.cred ~root:(root t) ~switch:sw
               ~in_port
               ~actions:[ OF.Action.Output (OF.Action.Physical out_port) ]
               ~data ()))
      (List.rev flows)

let handle_frame t ~switch (ev : Y.Eventdir.event) =
  match Y.Eventdir.frame_of ev with
  | None -> ()
  | Some frame -> (
    match frame.P.Eth.payload with
    | P.Eth.Lldp _ -> ()
    | _ ->
      learn t ~switch ~in_port:ev.in_port frame;
      let ingress = { switch; port = ev.in_port } in
      let dst = frame.P.Eth.dst in
      if P.Mac.is_multicast dst then
        broadcast t ~ingress:(Some ingress) ~data:ev.data ~buffer_id:ev.buffer_id
      else
        match Hashtbl.find_opt t.hosts dst with
        | Some dst_loc ->
          let headers = P.Headers.of_eth ~in_port:ev.in_port frame in
          install_path t ~headers ~ingress ~dst_loc ~buffer_id:ev.buffer_id
            ~data:ev.data
        | None ->
          broadcast t ~ingress:(Some ingress) ~data:ev.data
            ~buffer_id:ev.buffer_id)

let handle t ~switch (ev : Y.Eventdir.event) =
  let tracer = Telemetry.tracer (Y.Yanc_fs.telemetry t.yfs) in
  (* Pick the publishing driver's trace back up by sequence number. *)
  ignore (Telemetry.Tracer.resume tracer (Y.Layout.trace_key_event ev.seq));
  Telemetry.Tracer.span tracer ~stage:"app.routerd" (fun () ->
      handle_frame t ~switch ev)

let run t ~now:_ =
  List.iter
    (fun switch ->
      if not (Hashtbl.mem t.subscribed switch) then begin
        match
          Y.Eventdir.subscribe (fs t) ~cred:t.cred ~root:(root t) ~switch
            ~app:app_name
        with
        | Ok () -> Hashtbl.replace t.subscribed switch ()
        | Error _ -> ()
      end;
      List.iter (handle t ~switch)
        (Y.Eventdir.consume (fs t) ~cred:t.cred ~root:(root t) ~switch
           ~app:app_name))
    (Y.Yanc_fs.switch_names t.yfs)

let app t = App_intf.daemon ~name:app_name (fun ~now -> run t ~now)

let paths_installed t = t.paths

let hosts_tracked t = Hashtbl.length t.hosts
